// Package repro is a from-scratch Go reproduction of "System Mechanisms
// for Partial Rollback of Mobile Agent Execution" (Straßer & Rothermel,
// ICDCS 2000): a mobile-agent runtime with exactly-once step execution,
// compensation-based partial rollback (basic and optimized algorithms),
// hierarchical itineraries with automatic savepoint management, and all
// substrates (simulated network, stable storage, distributed transactions,
// transactional resources) built on the standard library only.
//
// See README.md for the architecture, DESIGN.md for the system inventory
// and experiment index, and EXPERIMENTS.md for paper-vs-measured results.
// The benchmarks in bench_test.go regenerate one experiment per paper
// figure; cmd/rollbacksim prints the full tables.
package repro
