#!/usr/bin/env sh
# bench.sh — snapshot the repo's perf surface for the PR trajectory.
#
# Usage: scripts/bench.sh [N]
#   N is the PR number used in the output names (default 1):
#     BENCH_PR<N>.json  experiment tables (machine-readable)
#     BENCH_PR<N>.txt   raw `go test -bench` output
#
# Compare two snapshots with your favorite diff / benchstat on the .txt
# files; the .json tables carry the counter-level metrics per figure.
set -eu

N="${1:-1}"
cd "$(dirname "$0")/.."

echo "== benchmarks (allocs + custom metrics) =="
go test -run '^$' -bench . -benchtime=1x -benchmem -cpu 4 . ./internal/protocol | tee "BENCH_PR${N}.txt"

echo "== experiment tables =="
go run ./cmd/rollbacksim -json "BENCH_PR${N}.json" >/dev/null
echo "wrote BENCH_PR${N}.json and BENCH_PR${N}.txt"
