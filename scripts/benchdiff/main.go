// Command benchdiff diffs two rollbacksim -json snapshots (the BENCH_PR<N>
// files) and prints a per-cell delta table for the numeric columns. It is
// advisory tooling for the CI bench-regression report: timing columns are
// noisy across runners, so deltas above the highlight threshold are
// flagged, never failed on. Counter columns (messages, stable writes,
// fsyncs) are deterministic and meaningful at any delta.
//
// Usage: benchdiff -base BENCH_PR3.json -new BENCH_PRci.json [-threshold 10]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
)

type jsonTable struct {
	Name   string     `json:"name"`
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	basePath := fs.String("base", "", "baseline rollbacksim JSON snapshot")
	newPath := fs.String("new", "", "fresh rollbacksim JSON snapshot")
	threshold := fs.Float64("threshold", 10, "percent delta flagged in the report")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *basePath == "" || *newPath == "" {
		return fmt.Errorf("-base and -new are required")
	}
	base, err := load(*basePath)
	if err != nil {
		return err
	}
	fresh, err := load(*newPath)
	if err != nil {
		return err
	}

	fmt.Printf("bench delta: %s -> %s (|Δ| >= %.0f%% flagged with !)\n\n", *basePath, *newPath, *threshold)
	flagged := 0
	for _, nt := range fresh {
		bt, ok := base[nt.Name]
		if !ok {
			fmt.Printf("== %s: new table (no baseline)\n", nt.Name)
			continue
		}
		fmt.Printf("== %s\n", nt.Name)
		if len(bt.Rows) != len(nt.Rows) {
			fmt.Printf("   shape changed: %d -> %d rows; skipping cell diff\n", len(bt.Rows), len(nt.Rows))
			continue
		}
		for i, newRow := range nt.Rows {
			baseRow := bt.Rows[i]
			if len(baseRow) != len(newRow) {
				fmt.Printf("   row %d: shape changed (%d -> %d cells)\n", i, len(baseRow), len(newRow))
				continue
			}
			label, labelLen := rowLabel(nt.Header, newRow)
			for c := range newRow {
				if c < labelLen {
					continue // identity column, not a measurement
				}
				b, bok := num(baseRow[c])
				n, nok := num(newRow[c])
				if !bok || !nok || (b == 0 && n == 0) {
					continue
				}
				var pct float64
				switch {
				case b == 0:
					pct = 100
				default:
					pct = (n - b) / b * 100
				}
				mark := " "
				if pct >= *threshold || pct <= -*threshold {
					mark = "!"
					flagged++
				}
				col := fmt.Sprintf("col%d", c)
				if c < len(nt.Header) {
					col = nt.Header[c]
				}
				fmt.Printf(" %s %-28s %-14s %14s -> %-14s %+8.1f%%\n",
					mark, label, col, baseRow[c], newRow[c], pct)
			}
		}
	}
	for name := range base {
		if _, ok := fresh[name]; !ok {
			fmt.Printf("== %s: table disappeared\n", name)
		}
	}
	fmt.Printf("\n%d cell(s) beyond the %.0f%% threshold (advisory: CI runners are noisy)\n", flagged, *threshold)
	return nil
}

func load(path string) (map[string]jsonTable, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var tables []jsonTable
	if err := json.Unmarshal(data, &tables); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]jsonTable, len(tables))
	for _, t := range tables {
		out[t.Name] = t
	}
	return out, nil
}

// rowLabel concatenates the leading identity cells (the first cell plus
// any further non-numeric ones: workers, store, conflict, ...) and
// reports how many cells it consumed.
func rowLabel(header []string, row []string) (string, int) {
	label := ""
	n := 0
	for i, cell := range row {
		if _, isNum := num(cell); isNum && i > 0 {
			break
		}
		name := fmt.Sprintf("c%d", i)
		if i < len(header) {
			name = header[i]
		}
		if label != "" {
			label += " "
		}
		label += name + "=" + cell
		n++
	}
	if label == "" {
		label = "row"
	}
	return label, n
}

func num(s string) (float64, bool) {
	f, err := strconv.ParseFloat(s, 64)
	return f, err == nil
}
