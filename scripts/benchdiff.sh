#!/usr/bin/env sh
# benchdiff.sh — diff two rollbacksim -json bench snapshots.
#
# Usage: scripts/benchdiff.sh [BASE.json] [NEW.json] [THRESHOLD%]
#   defaults: BASE = the newest committed BENCH_PR<N>.json,
#             NEW  = BENCH_PRci.json (what scripts/bench.sh ci produced),
#             THRESHOLD = 10
#
# Advisory: timing columns are noisy across CI runners; the report flags
# big deltas for a human eye, it never fails the build by itself.
set -eu
cd "$(dirname "$0")/.."

BASE="${1:-}"
if [ -z "$BASE" ]; then
    BASE=$(ls BENCH_PR[0-9]*.json 2>/dev/null | sort -V | tail -1 || true)
fi
NEW="${2:-BENCH_PRci.json}"
THRESHOLD="${3:-10}"

if [ -z "$BASE" ] || [ ! -f "$BASE" ]; then
    echo "benchdiff.sh: no baseline snapshot found (looked for BENCH_PR<N>.json)" >&2
    exit 1
fi
if [ ! -f "$NEW" ]; then
    echo "benchdiff.sh: fresh snapshot $NEW missing (run scripts/bench.sh ci first)" >&2
    exit 1
fi

exec go run ./scripts/benchdiff -base "$BASE" -new "$NEW" -threshold "$THRESHOLD"
