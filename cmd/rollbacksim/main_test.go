package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestListFlag(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "bogus"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestSingleCheapExperiment(t *testing.T) {
	for _, exp := range []string{"f2", "tlog", "tperf"} {
		if err := run([]string{"-exp", exp}); err != nil {
			t.Errorf("experiment %s: %v", exp, err)
		}
	}
}

func TestJSONOutput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	if err := run([]string{"-exp", "f2", "-json", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var tables []jsonTable
	if err := json.Unmarshal(data, &tables); err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || tables[0].Name != "f2" || len(tables[0].Rows) == 0 {
		t.Errorf("tables = %+v", tables)
	}
	if len(tables[0].Header) == 0 || len(tables[0].Rows[0]) != len(tables[0].Header) {
		t.Errorf("header/row mismatch: %+v", tables[0])
	}
}
