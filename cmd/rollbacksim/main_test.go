package main

import "testing"

func TestListFlag(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "bogus"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestSingleCheapExperiment(t *testing.T) {
	for _, exp := range []string{"f2", "tlog", "tperf"} {
		if err := run([]string{"-exp", exp}); err != nil {
			t.Errorf("experiment %s: %v", exp, err)
		}
	}
}
