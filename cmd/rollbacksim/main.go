// Command rollbacksim regenerates the experiments of EXPERIMENTS.md on the
// simulated cluster: one table per paper figure plus the §4.2/§4.3 prose
// claims (see DESIGN.md for the mapping).
//
// Usage:
//
//	rollbacksim                 # run every experiment
//	rollbacksim -exp f5         # run one experiment (f1..f6, tlog, tft, tperf, tput, stor, repl)
//	rollbacksim -list           # list experiments
//	rollbacksim -json out.json  # also write the tables as JSON
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rollbacksim:", err)
		os.Exit(1)
	}
}

// jsonTable is the machine-readable form of one experiment table, written
// by -json so successive PRs can diff a perf trajectory (see
// scripts/bench.sh, which snapshots them as BENCH_PR<N>.json).
type jsonTable struct {
	Name   string     `json:"name"`
	Title  string     `json:"title"`
	Note   string     `json:"note,omitempty"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
}

func run(args []string) error {
	fs := flag.NewFlagSet("rollbacksim", flag.ContinueOnError)
	exp := fs.String("exp", "", "run a single experiment (f1..f6, tlog, tft, tperf, tput, stor, repl, chaos)")
	list := fs.Bool("list", false, "list experiments and exit")
	jsonPath := fs.String("json", "", "write the experiment tables as JSON to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		fmt.Println("f1    Figure 1: step execution cost vs agent payload")
		fmt.Println("f2    Figure 2: rollback log layout and size")
		fmt.Println("f3    Figures 3-4: rollback cost vs steps rolled back")
		fmt.Println("f4    Figure 4: rollback under node crash + recovery")
		fmt.Println("f5    Figure 5: basic vs optimized rollback")
		fmt.Println("f6    Figure 6: log size, flat vs itinerary-managed")
		fmt.Println("tlog  §4.2: state vs transition logging")
		fmt.Println("tft   §4.3: rollback with an unreachable node")
		fmt.Println("tperf §4.4.1: remote-compensation strategy model ([16])")
		fmt.Println("tput  node throughput vs scheduler workers (see also cmd/loadgen)")
		fmt.Println("stor  stable-storage engines: durable Apply throughput + crash-recovery time")
		fmt.Println("repl  replicated stable storage: ack-mode cost on the step path")
		fmt.Println("chaos seeded fault schedules vs §4.3 invariants (replay: loadgen -chaos)")
		return nil
	}

	var out []jsonTable
	for _, e := range experiments.List() {
		if *exp != "" && e.Name != *exp {
			continue
		}
		tbl, err := e.Run()
		if err != nil {
			return fmt.Errorf("experiment %s: %w", e.Name, err)
		}
		tbl.Fprint(os.Stdout)
		out = append(out, jsonTable{
			Name: e.Name, Title: tbl.Title, Note: tbl.Note,
			Header: tbl.Header, Rows: tbl.Rows,
		})
	}
	if len(out) == 0 {
		return fmt.Errorf("unknown experiment %q (use -list)", *exp)
	}
	if *jsonPath != "" {
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nwrote %d experiment table(s) to %s\n", len(out), *jsonPath)
	}
	return nil
}
