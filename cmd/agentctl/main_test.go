package main

import (
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/demo"
	"repro/internal/network"
	"repro/internal/node"
	"repro/internal/resource"
	"repro/internal/stable"
)

// freeAddr reserves an ephemeral port and releases it for the caller —
// the client's listen address must be known before the node's peer list
// is built, so :0 cannot be used there directly.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	_ = l.Close()
	return addr
}

func TestRunFlagErrors(t *testing.T) {
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run([]string{"-listen", "not-an-address"}); err == nil {
		t.Error("bad listen address accepted")
	}
}

// TestRunUnknownBankNode: launching toward a node absent from the peer
// list must fail fast (permanent error), not hang until the timeout.
func TestRunUnknownBankNode(t *testing.T) {
	start := time.Now()
	err := run([]string{
		"-listen", "127.0.0.1:0",
		"-peers", "B=127.0.0.1:1",
		"-bank", "A", "-timeout", "5s",
	})
	if err == nil {
		t.Fatal("launch to unknown peer succeeded")
	}
	if !strings.Contains(err.Error(), "unknown node") {
		t.Errorf("error = %v, want unknown-node", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Errorf("unknown peer took %v, should fail fast", time.Since(start))
	}
}

// TestRunTimesOutWithoutNode: with a resolvable but dead peer the launch
// message is dropped (TCP dial fails) and the wait must end at -timeout.
func TestRunTimesOutWithoutNode(t *testing.T) {
	err := run([]string{
		"-listen", "127.0.0.1:0",
		"-peers", "A=127.0.0.1:1", // nothing listens there
		"-bank", "A", "-shop", "A", "-dir", "A",
		"-timeout", "300ms",
	})
	if err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Errorf("error = %v, want timeout", err)
	}
}

// TestRunSmoke drives the full client flow against an in-process node
// hosting all three demo resources: launch over real TCP, the demo
// scenario's partial rollback on the bad review, and the completion
// notification back to the client.
func TestRunSmoke(t *testing.T) {
	ctlAddr := freeAddr(t)
	reg := agent.NewRegistry()
	if err := demo.Register(reg); err != nil {
		t.Fatal(err)
	}
	ep, err := network.NewTCP(network.TCPConfig{
		Name: "A", Listen: "127.0.0.1:0",
		Peers: map[string]string{"ctl": ctlAddr},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	nodeAddr := ep.Addr()
	store := stable.NewMemStore(nil)
	n, err := node.New(node.Config{
		Name:       "A",
		Optimized:  true,
		RetryDelay: 2 * time.Millisecond,
		AckTimeout: time.Second,
	}, ep, store, reg,
		func(st stable.Store) (resource.Resource, error) { return resource.NewBank(st, "bank", false) },
		func(st stable.Store) (resource.Resource, error) {
			return resource.NewShop(st, "shop", resource.ShopConfig{Currency: "USD", Mode: resource.RefundCash, FeePercent: 10})
		},
		func(st stable.Store) (resource.Resource, error) { return resource.NewDirectory(st, "dir") },
	)
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	defer n.Stop()
	select {
	case <-n.Ready():
	case <-time.After(5 * time.Second):
		t.Fatal("node never became ready")
	}

	tx, err := n.Manager().Begin()
	if err != nil {
		t.Fatal(err)
	}
	rb, _ := n.Resource("bank")
	if err := rb.(*resource.Bank).OpenAccount(tx, "alice", 1000); err != nil {
		t.Fatal(err)
	}
	rs, _ := n.Resource("shop")
	if err := rs.(*resource.Shop).Restock(tx, "book", 5, 100); err != nil {
		t.Fatal(err)
	}
	rd, _ := n.Resource("dir")
	if err := rd.(*resource.Directory).Put(tx, "review/book", "bad"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	err = run([]string{
		"-name", "ctl", "-listen", ctlAddr,
		"-peers", "A=" + nodeAddr + ",ctl=" + ctlAddr,
		"-bank", "A", "-shop", "A", "-dir", "A",
		"-acct", "alice", "-id", "smoke-agent",
		"-timeout", "30s",
	})
	if err != nil {
		t.Fatalf("agentctl run: %v", err)
	}
}
