package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/obs"
	"repro/internal/trace"
)

// runMetrics scrapes a node admin plane's /metrics endpoint and renders
// the exposition as an aligned table, hiding zero-valued series unless
// -all is given.
func runMetrics(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("agentctl metrics", flag.ContinueOnError)
	var (
		obsURL  = fs.String("obs", "http://127.0.0.1:7901", "admin-plane base URL (agentnode -obs-addr)")
		filter  = fs.String("filter", "", "only show metrics whose name contains this substring")
		all     = fs.Bool("all", false, "include zero-valued metrics")
		timeout = fs.Duration("timeout", 5*time.Second, "scrape timeout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	body, err := httpGet(strings.TrimRight(*obsURL, "/")+"/metrics", *timeout)
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	shown := 0
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		name, value := line[:sp], line[sp+1:]
		if *filter != "" && !strings.Contains(name, *filter) {
			continue
		}
		if !*all {
			if v, err := strconv.ParseFloat(value, 64); err == nil && v == 0 {
				continue
			}
		}
		fmt.Fprintf(tw, "%s\t%s\n", name, value)
		shown++
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if shown == 0 {
		fmt.Fprintln(out, "no matching non-zero metrics (use -all to include zeros)")
	}
	return nil
}

// runRing fetches a node's membership view from the admin plane's /ring
// endpoint and renders it: one row per member with its status, epoch and
// owned fraction of the hash space, plus the node's local placement
// stats (queue depth, claims in flight, agents adopted via migration).
func runRing(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("agentctl ring", flag.ContinueOnError)
	var (
		obsURL  = fs.String("obs", "http://127.0.0.1:7901", "admin-plane base URL (agentnode -obs-addr)")
		timeout = fs.Duration("timeout", 5*time.Second, "fetch timeout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	body, err := httpGet(strings.TrimRight(*obsURL, "/")+"/ring", *timeout)
	if err != nil {
		return err
	}
	var d obs.RingDump
	if err := json.Unmarshal(body, &d); err != nil {
		return fmt.Errorf("decode ring: %w", err)
	}
	fmt.Fprintf(out, "node %s: %d members, %d vnodes/member, queue depth=%d claimed=%d adopted=%d\n",
		d.Node, len(d.Members), d.VNodes, d.Depth, d.Claimed, d.Adopted)
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "MEMBER\tSTATUS\tEPOCH\tSHARE")
	for _, m := range d.Members {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%.1f%%\n", m.Name, m.Status, m.Epoch, 100*m.Share)
	}
	return tw.Flush()
}

// runTrace fetches causal trace records from a node admin plane's /trace
// endpoint, optionally filtered, and pretty-prints them with timestamps
// relative to the first record.
func runTrace(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("agentctl trace", flag.ContinueOnError)
	var (
		obsURL  = fs.String("obs", "http://127.0.0.1:7901", "admin-plane base URL (agentnode -obs-addr)")
		txn     = fs.String("txn", "", "only records of this transaction")
		agentID = fs.String("agent", "", "only records of this agent (join-aware)")
		last    = fs.Int("last", 0, "only the last N records (0 = all)")
		timeout = fs.Duration("timeout", 5*time.Second, "fetch timeout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	q := url.Values{}
	if *txn != "" {
		q.Set("txn", *txn)
	}
	if *agentID != "" {
		q.Set("agent", *agentID)
	}
	if *last > 0 {
		q.Set("last", strconv.Itoa(*last))
	}
	u := strings.TrimRight(*obsURL, "/") + "/trace"
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	body, err := httpGet(u, *timeout)
	if err != nil {
		return err
	}
	rs, err := trace.DecodeJSON(body)
	if err != nil {
		return fmt.Errorf("decode trace: %w", err)
	}
	if len(rs) == 0 {
		fmt.Fprintln(out, "no trace records matched")
		return nil
	}
	nodes := map[string]bool{}
	for _, r := range rs {
		nodes[r.Node] = true
	}
	names := make([]string, 0, len(nodes))
	for n := range nodes {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(out, "%d records from node(s) %s\n", len(rs), strings.Join(names, ", "))
	base := rs[0].T
	for _, r := range rs {
		fmt.Fprintln(out, trace.FormatRecord(r, base))
	}
	return nil
}
