// Command agentctl launches demo agents into a TCP cluster of agentnode
// processes and waits for their completion notification (it acts as the
// agent's owner).
//
//	agentctl -name ctl -listen :7000 \
//	  -peers 'A=localhost:7001,B=localhost:7002,C=localhost:7003' \
//	  -bank A -shop B -dir C -acct alice -id trip1
//
// It also doubles as the operator client for a node's admin plane
// (agentnode -obs-addr):
//
//	agentctl metrics -obs http://localhost:7901 [-filter sched] [-all]
//	agentctl trace   -obs http://localhost:7901 [-txn A#12 | -agent trip1] [-last 50]
//	agentctl ring    -obs http://localhost:7901
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/demo"
	"repro/internal/network"
	"repro/internal/node"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "agentctl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) > 0 {
		switch args[0] {
		case "metrics":
			return runMetrics(args[1:], os.Stdout)
		case "trace":
			return runTrace(args[1:], os.Stdout)
		case "ring":
			return runRing(args[1:], os.Stdout)
		}
	}
	return runLaunch(args)
}

// httpGet fetches one admin-plane URL with a hard deadline.
func httpGet(url string, timeout time.Duration) ([]byte, error) {
	client := &http.Client{Timeout: timeout}
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	return body, nil
}

func runLaunch(args []string) error {
	fs := flag.NewFlagSet("agentctl", flag.ContinueOnError)
	var (
		name      = fs.String("name", "ctl", "this client's protocol name (must be in the nodes' peer lists)")
		listen    = fs.String("listen", ":7000", "listen address for completion notifications")
		peersFlag = fs.String("peers", "", "comma-separated name=host:port peer list")
		bankNode  = fs.String("bank", "A", "node hosting the bank")
		shopNode  = fs.String("shop", "B", "node hosting the shop")
		dirNode   = fs.String("dir", "C", "node hosting the directory")
		acct      = fs.String("acct", "alice", "bank account the agent draws from")
		id        = fs.String("id", "demo-agent", "agent ID")
		timeout   = fs.Duration("timeout", 60*time.Second, "wait timeout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	peers := make(map[string]string)
	for _, part := range strings.Split(*peersFlag, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) == 2 {
			peers[kv[0]] = kv[1]
		}
	}
	ep, err := network.NewTCP(network.TCPConfig{Name: *name, Listen: *listen, Peers: peers})
	if err != nil {
		return err
	}
	defer ep.Close()

	a, entered, err := demo.NewAgent(*id, *acct, *bankNode, *shopNode, *dirNode)
	if err != nil {
		return err
	}
	a.Owner = *name
	if err := node.AppendInitialSavepoints(a, entered, core.StateLogging); err != nil {
		return err
	}
	data, err := node.EncodeContainer(&node.Container{Mode: node.ModeStep, Agent: a})
	if err != nil {
		return err
	}
	launch, err := node.EncodeLaunch(*id, data)
	if err != nil {
		return err
	}
	if err := ep.Send(*bankNode, node.KindAgentLaunch, launch); err != nil {
		return err
	}
	fmt.Printf("launched agent %q at node %s, waiting for completion...\n", *id, *bankNode)

	deadline := time.NewTimer(*timeout)
	defer deadline.Stop()
	for {
		select {
		case msg, ok := <-ep.Recv():
			if !ok {
				return fmt.Errorf("endpoint closed")
			}
			switch msg.Kind {
			case "agent.launch.ack":
				fmt.Println("node accepted the agent into its input queue")
			case node.KindAgentDone:
				done, err := node.DecodeDone(msg.Payload)
				if err != nil {
					return err
				}
				if done.AgentID != *id {
					continue
				}
				if ack, err := node.EncodeDoneAck(done.AgentID); err == nil {
					_ = ep.Send(msg.From, node.KindAgentDoneAck, ack)
				}
				return report(done)
			}
		case <-deadline.C:
			return fmt.Errorf("timed out waiting for agent %q", *id)
		}
	}
}

func report(done node.Done) error {
	if done.Failed {
		return fmt.Errorf("agent failed: %s", done.Reason)
	}
	var decision, review string
	if err := done.Agent.SRO.MustGet("decision", &decision); err != nil {
		return err
	}
	if err := done.Agent.SRO.MustGet("review", &review); err != nil {
		return err
	}
	w, err := demo.Wallet(done.Agent.WRO)
	if err != nil {
		return err
	}
	noted, err := done.Agent.WRO.Has("note")
	if err != nil {
		return err
	}
	fmt.Printf("agent completed: decision=%s review=%s wallet=%d USD rolled-back=%v\n",
		decision, review, w.Total("USD"), noted)
	return nil
}
