package main

import (
	"bytes"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/membership"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/trace"
)

// startObs serves a populated admin plane on a free port (the same
// reserve-then-listen rig the launch tests use) and returns its base URL.
func startObs(t *testing.T) string {
	t.Helper()
	c := &metrics.Counters{}
	c.IncMessages(64)
	c.IncStepTxn()
	c.AddWireBytes("q.prepare", 128)
	var ts int64
	tr := trace.New("A", 64, func() int64 { ts += 1000; return ts })
	tr.Rec(trace.OpAgentStep, "A#1", "trip1", "buy", "", "", 1)
	tr.Rec(trace.OpTransition, "A#1", "", "AckReceived(commit)", "coord-active", "coord-idle", 2)
	tr.Rec(trace.OpTransition, "A#2", "", "PrepareReceived", "-", "staged", 1)
	m := membership.NewManager("A", 16,
		membership.Member{Name: "B", Status: membership.Alive, Epoch: 1})
	h := obs.Handler(obs.Config{
		Node: "A", Counters: c, Tracer: tr,
		Membership: m, Adopted: func() int { return 2 },
	})

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: h}
	go func() { _ = srv.Serve(l) }()
	t.Cleanup(func() { _ = srv.Close() })
	return "http://" + l.Addr().String()
}

func TestMetricsSubcommand(t *testing.T) {
	base := startObs(t)
	var out bytes.Buffer
	if err := runMetrics([]string{"-obs", base}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"repro_messages_total", "repro_step_txns_total",
		`repro_wire_msgs_by_kind_total{kind="q.prepare"}`} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	// Zero-valued series are hidden by default…
	if strings.Contains(got, "repro_comp_txns_total") {
		t.Errorf("zero metric shown without -all:\n%s", got)
	}
	// …and shown with -all.
	out.Reset()
	if err := runMetrics([]string{"-obs", base, "-all"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "repro_comp_txns_total") {
		t.Error("-all did not include zero metrics")
	}
	// -filter narrows by substring.
	out.Reset()
	if err := runMetrics([]string{"-obs", base, "-filter", "wire_msgs"}, &out); err != nil {
		t.Fatal(err)
	}
	if got := out.String(); !strings.Contains(got, "wire_msgs") || strings.Contains(got, "repro_messages_total") {
		t.Errorf("filter output:\n%s", got)
	}
}

func TestTraceSubcommand(t *testing.T) {
	base := startObs(t)
	var out bytes.Buffer
	if err := runTrace([]string{"-obs", base}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "3 records from node(s) A") {
		t.Errorf("header missing:\n%s", got)
	}
	if !strings.Contains(got, "edge=coord-active→coord-idle") {
		t.Errorf("transition edge missing:\n%s", got)
	}
	// Agent filter joins the txn-only transition through OpAgentStep.
	out.Reset()
	if err := runTrace([]string{"-obs", base, "-agent", "trip1"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "2 records") {
		t.Errorf("agent filter:\n%s", out.String())
	}
	out.Reset()
	if err := runTrace([]string{"-obs", base, "-txn", "A#2"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "1 records") {
		t.Errorf("txn filter:\n%s", out.String())
	}
	out.Reset()
	if err := runTrace([]string{"-obs", base, "-last", "1"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "1 records") {
		t.Errorf("last filter:\n%s", out.String())
	}
	out.Reset()
	if err := runTrace([]string{"-obs", base, "-txn", "nope"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "no trace records matched") {
		t.Errorf("empty result:\n%s", out.String())
	}
}

func TestRingSubcommand(t *testing.T) {
	base := startObs(t)
	var out bytes.Buffer
	if err := runRing([]string{"-obs", base}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"node A: 2 members, 16 vnodes/member",
		"adopted=2",
		"MEMBER", // table header
		"alive",
		"%", // rendered shares
	} {
		if !strings.Contains(got, want) {
			t.Errorf("ring output missing %q:\n%s", want, got)
		}
	}
	if err := runRing([]string{"-no-such-flag"}, &out); err == nil {
		t.Error("unknown ring flag accepted")
	}
}

// The subcommands must fail fast against a dead endpoint, honouring the
// scrape timeout rather than hanging.
func TestObsSubcommandsFailFast(t *testing.T) {
	dead := "http://" + freeAddr(t)
	start := time.Now()
	var out bytes.Buffer
	if err := runMetrics([]string{"-obs", dead, "-timeout", "500ms"}, &out); err == nil {
		t.Error("metrics against dead endpoint succeeded")
	}
	if err := runTrace([]string{"-obs", dead, "-timeout", "500ms"}, &out); err == nil {
		t.Error("trace against dead endpoint succeeded")
	}
	if time.Since(start) > 3*time.Second {
		t.Errorf("dead-endpoint scrape took %v", time.Since(start))
	}
	if err := runMetrics([]string{"-no-such-flag"}, &out); err == nil {
		t.Error("unknown metrics flag accepted")
	}
	if err := runTrace([]string{"-no-such-flag"}, &out); err == nil {
		t.Error("unknown trace flag accepted")
	}
}

// Subcommand dispatch must not shadow the launch flow's flag errors.
func TestSubcommandDispatch(t *testing.T) {
	if err := run([]string{"metrics", "-no-such-flag"}); err == nil {
		t.Error("metrics subcommand swallowed a flag error")
	}
	if err := run([]string{"trace", "-no-such-flag"}); err == nil {
		t.Error("trace subcommand swallowed a flag error")
	}
	if err := run([]string{"ring", "-no-such-flag"}); err == nil {
		t.Error("ring subcommand swallowed a flag error")
	}
}
