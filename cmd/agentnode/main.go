// Command agentnode runs one agent-system node as a standalone OS process
// over TCP, with a disk-backed stable store — the multi-process deployment
// of the system (gob on the wire and on disk). Killing the process and
// restarting it with the same -data directory exercises the crash-recovery
// protocol for real. The default -store=wal engine appends commits to
// checksummed log segments with index checkpoints, so restart replays
// only the log tail written since the last checkpoint; -store=file keeps
// the one-file-per-key layout of earlier deployments (the engines do not
// migrate in place — restart existing data dirs with the engine that
// wrote them).
//
// Example three-node cluster (plus the agentctl client as peer "ctl"):
//
//	agentnode -name A -listen :7001 -data /tmp/a \
//	  -peers 'A=localhost:7001,B=localhost:7002,C=localhost:7003,ctl=localhost:7000' \
//	  -resources bank=bank -seed 'bank:acct=alice:1000'
//	agentnode -name B -listen :7002 -data /tmp/b -peers ... \
//	  -resources shop=shop -seed 'shop:item=book:5:100'
//	agentnode -name C -listen :7003 -data /tmp/c -peers ... \
//	  -resources dir=dir -seed 'dir:key=review/book:bad'
//	agentctl -name ctl -listen :7000 -peers ... launch
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/agent"
	"repro/internal/demo"
	"repro/internal/membership"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/resource"
	"repro/internal/stable"
	_ "repro/internal/stable/wal" // registers the wal engine for stable.Open
	"repro/internal/trace"
	"repro/internal/txn"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "agentnode:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("agentnode", flag.ContinueOnError)
	var (
		name      = fs.String("name", "", "node name (required)")
		listen    = fs.String("listen", "", "listen address, e.g. :7001 (required)")
		dataDir   = fs.String("data", "", "stable storage directory (required)")
		peersFlag = fs.String("peers", "", "comma-separated name=host:port peer list")
		resFlag   = fs.String("resources", "", "comma-separated kind=name resource list (bank=, shop=, dir=)")
		seedFlag  = fs.String("seed", "", "semicolon-separated seeding directives: "+demo.FormatHint())
		optimized = fs.Bool("optimized", true, "use the optimized (Figure 5) rollback algorithm")
		workers   = fs.Int("workers", 1, "concurrent step-transaction workers (1 = the paper's serial node model)")
		obsAddr   = fs.String("obs-addr", "", "admin-plane listen address serving /metrics, /healthz, /trace, /ring and /debug/pprof (empty disables)")
		members   = fs.String("members", "", "comma-separated peer node names seeding the membership view; enables consistent-hash placement (@ring itinerary locations) and live rebalancing (empty keeps static wiring)")
		vnodes    = fs.Int("vnodes", 0, "virtual points per member on the consistent-hash ring (0 = default 128; only with -members)")
		traceRing = fs.Int("trace-ring", 0, "causal trace ring size per node (0 = default 16384, negative disables tracing)")
	)
	// The storage knobs (-store, -sync, -wal-*, -repl*) are the shared
	// flag surface: they parse into a stable.Spec in one place.
	sflags := stable.BindFlags(fs, stable.Spec{Engine: "wal", Sync: true})
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name == "" || *listen == "" || *dataDir == "" {
		return fmt.Errorf("-name, -listen and -data are required")
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil)).With("node", *name)
	peers, err := parsePeers(*peersFlag)
	if err != nil {
		return err
	}

	spec, err := sflags.Spec()
	if err != nil {
		return err
	}
	if spec.Repl.Enabled() {
		// Replication needs the multi-node runtime to wire a transport
		// between primaries and replica hosts (see stable.Spec.Repl); a
		// standalone process has no peers to hold its replicas.
		return fmt.Errorf("-repl is not supported by the standalone agentnode (replication is wired by the cluster runtime)")
	}
	spec.Dir = *dataDir
	store, err := openStore(spec, logger)
	if err != nil {
		return err
	}
	defer stable.Close(store)
	ep, err := network.NewTCP(network.TCPConfig{
		Name:   *name,
		Listen: *listen,
		Peers:  peers,
	})
	if err != nil {
		return err
	}
	defer ep.Close()

	reg := agent.NewRegistry()
	if err := demo.Register(reg); err != nil {
		return err
	}
	factories, err := parseResources(*resFlag)
	if err != nil {
		return err
	}
	counters := &metrics.Counters{}
	var tracer *trace.Tracer
	if *traceRing >= 0 {
		size := *traceRing
		if size == 0 {
			size = trace.DefaultRingSize
		}
		tracer = trace.New(*name, size, func() int64 { return time.Now().UnixNano() })
	}
	var mgr *membership.Manager
	if *members != "" {
		// Seeds are epoch-0 hints ("announce to these"); the flood and the
		// anti-entropy replies converge the real view after boot.
		var seed []membership.Member
		for _, p := range strings.Split(*members, ",") {
			if p = strings.TrimSpace(p); p != "" && p != *name {
				seed = append(seed, membership.Member{Name: p})
			}
		}
		mgr = membership.NewManager(*name, *vnodes, seed...)
	}
	n, err := node.New(node.Config{
		Name:       *name,
		Optimized:  *optimized,
		Workers:    *workers,
		Counters:   counters,
		Tracer:     tracer,
		Logger:     logger,
		Membership: mgr,
	}, ep, store, reg, factories...)
	if err != nil {
		return err
	}
	n.Start()
	defer n.Stop()

	var obsSrv *http.Server
	if *obsAddr != "" {
		obsSrv = &http.Server{
			Addr: *obsAddr,
			Handler: obs.Handler(obs.Config{
				Node:     *name,
				Counters: counters,
				Tracer:   tracer,
				Healthy: func() bool {
					select {
					case <-n.Ready():
						return true
					default:
						return false
					}
				},
				Membership: mgr,
				Queue:      n.Queue(),
				Adopted:    n.Adopted,
			}),
		}
		go func() {
			if err := obsSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				logger.Error("admin plane failed", "addr", *obsAddr, "err", err)
			}
		}()
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			_ = obsSrv.Shutdown(ctx)
		}()
		logger.Info("admin plane listening", "addr", *obsAddr)
	}

	<-n.Ready()
	logger.Info("node ready", "addr", ep.Addr(), "data", *dataDir)

	if *seedFlag != "" {
		if err := seed(n, *seedFlag, logger); err != nil {
			return err
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	logger.Info("node shutting down")
	return nil
}

// openStore builds the node's stable store through the unified
// stable.Open path. Opening a data directory that was written by a
// different engine is refused rather than silently starting empty — the
// layouts are disjoint, so the agent queue and resource states would all
// be invisible.
func openStore(spec stable.Spec, logger *slog.Logger) (stable.Store, error) {
	hasFileLayout := false
	if _, err := os.Stat(filepath.Join(spec.Dir, "kv")); err == nil {
		hasFileLayout = true
	}
	hasWALLayout := false
	if segs, _ := filepath.Glob(filepath.Join(spec.Dir, "*.seg")); len(segs) > 0 {
		hasWALLayout = true
	}
	switch spec.Engine {
	case "wal":
		if hasFileLayout {
			return nil, fmt.Errorf("data dir %s holds a file-store layout; restart with -store=file (engines do not migrate in place)", spec.Dir)
		}
	case "file":
		if hasWALLayout {
			return nil, fmt.Errorf("data dir %s holds a wal layout; restart with -store=wal (engines do not migrate in place)", spec.Dir)
		}
	case "mem":
		logger.Warn("-store=mem is volatile; a restart loses the input queue and all resource state")
	}
	return stable.Open(spec)
}

func parsePeers(s string) (map[string]string, error) {
	peers := make(map[string]string)
	if s == "" {
		return peers, nil
	}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 || kv[0] == "" || kv[1] == "" {
			return nil, fmt.Errorf("bad peer %q (want name=host:port)", part)
		}
		peers[kv[0]] = kv[1]
	}
	return peers, nil
}

func parseResources(s string) ([]node.ResourceFactory, error) {
	var out []node.ResourceFactory
	if s == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad resource %q (want kind=name)", part)
		}
		kind, rname := kv[0], kv[1]
		switch kind {
		case "bank":
			out = append(out, func(st stable.Store) (resource.Resource, error) {
				return resource.NewBank(st, rname, false)
			})
		case "shop":
			out = append(out, func(st stable.Store) (resource.Resource, error) {
				return resource.NewShop(st, rname, resource.ShopConfig{
					Currency: "USD", Mode: resource.RefundCash, FeePercent: 10,
				})
			})
		case "dir":
			out = append(out, func(st stable.Store) (resource.Resource, error) {
				return resource.NewDirectory(st, rname)
			})
		case "exchange":
			out = append(out, func(st stable.Store) (resource.Resource, error) {
				return resource.NewExchange(st, rname, 10)
			})
		default:
			return nil, fmt.Errorf("unknown resource kind %q", kind)
		}
	}
	return out, nil
}

// seed applies idempotent seeding directives inside local transactions;
// directives whose target already exists are skipped, so restarts with the
// same flags are safe.
func seed(n *node.Node, directives string, logger *slog.Logger) error {
	for _, d := range strings.Split(directives, ";") {
		d = strings.TrimSpace(d)
		if d == "" {
			continue
		}
		parts := strings.Split(d, ":")
		if len(parts) < 3 {
			return fmt.Errorf("bad seed %q (want %s)", d, demo.FormatHint())
		}
		tx, err := n.Manager().Begin()
		if err != nil {
			return err
		}
		if err := applySeed(n, tx, parts); err != nil {
			_ = tx.Abort()
			return fmt.Errorf("seed %q: %w", d, err)
		}
		if err := tx.Commit(); err != nil {
			return err
		}
		logger.Info("seeded", "directive", d)
	}
	return nil
}

func applySeed(n *node.Node, tx *txn.Tx, parts []string) error {
	rname := parts[0]
	r, ok := n.Resource(rname)
	if !ok {
		return fmt.Errorf("no resource %q", rname)
	}
	kv := strings.SplitN(parts[1], "=", 2)
	if len(kv) != 2 {
		return fmt.Errorf("bad key %q", parts[1])
	}
	switch res := r.(type) {
	case *resource.Bank:
		bal, err := strconv.ParseInt(parts[2], 10, 64)
		if err != nil {
			return err
		}
		if _, err := res.Balance(tx, kv[1]); err == nil {
			return nil // already seeded
		}
		return res.OpenAccount(tx, kv[1], bal)
	case *resource.Shop:
		if len(parts) < 4 {
			return fmt.Errorf("shop seed needs qty and price")
		}
		qty, err := strconv.Atoi(parts[2])
		if err != nil {
			return err
		}
		price, err := strconv.ParseInt(parts[3], 10, 64)
		if err != nil {
			return err
		}
		if have, err := res.StockOf(tx, kv[1]); err == nil && have > 0 {
			return nil
		}
		return res.Restock(tx, kv[1], qty, price)
	case *resource.Directory:
		return res.Put(tx, kv[1], parts[2])
	default:
		return fmt.Errorf("cannot seed resource kind %T", r)
	}
}
