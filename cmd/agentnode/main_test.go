package main

import (
	"log/slog"
	"strings"
	"testing"

	"repro/internal/stable"
)

func testLogger() *slog.Logger { return slog.New(slog.DiscardHandler) }

func TestParsePeers(t *testing.T) {
	peers, err := parsePeers("a=h1:1, b=h2:2,c=h3:3")
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 3 || peers["b"] != "h2:2" {
		t.Errorf("peers = %v", peers)
	}
	if got, err := parsePeers(""); err != nil || len(got) != 0 {
		t.Errorf("empty: %v, %v", got, err)
	}
	for _, bad := range []string{"noequals", "=addr", "name="} {
		if _, err := parsePeers(bad); err == nil {
			t.Errorf("bad peer %q accepted", bad)
		}
	}
}

func TestParseResources(t *testing.T) {
	factories, err := parseResources("bank=b1,shop=s1,dir=d1,exchange=e1")
	if err != nil {
		t.Fatal(err)
	}
	if len(factories) != 4 {
		t.Fatalf("factories = %d, want 4", len(factories))
	}
	store := stable.NewMemStore(nil)
	names := map[string]string{}
	for _, f := range factories {
		r, err := f(store)
		if err != nil {
			t.Fatal(err)
		}
		names[r.Name()] = r.Kind()
	}
	want := map[string]string{"b1": "bank", "s1": "shop", "d1": "directory", "e1": "exchange"}
	for n, k := range want {
		if names[n] != k {
			t.Errorf("resource %q kind = %q, want %q", n, names[n], k)
		}
	}
	if _, err := parseResources("alien=x"); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := parseResources("nokind"); err == nil {
		t.Error("malformed spec accepted")
	}
}

func TestRunRequiresFlags(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("missing flags accepted")
	}
	if err := run([]string{"-name", "A"}); err == nil {
		t.Error("missing listen/data accepted")
	}
}

// TestOpenStoreLayoutGuard: opening a data dir written by a different
// engine must be refused, never silently started empty.
func TestOpenStoreLayoutGuard(t *testing.T) {
	spec := func(engine, dir string) stable.Spec {
		return stable.Spec{Engine: engine, Dir: dir}
	}
	fileDir := t.TempDir()
	fs, err := openStore(spec("file", fileDir), testLogger())
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Apply(stable.Put("k", []byte("v"))); err != nil {
		t.Fatal(err)
	}
	if _, err := openStore(spec("wal", fileDir), testLogger()); err == nil {
		t.Error("wal engine opened a file-store layout")
	}

	walDir := t.TempDir()
	ws, err := openStore(spec("wal", walDir), testLogger())
	if err != nil {
		t.Fatal(err)
	}
	if err := ws.Apply(stable.Put("k", []byte("v"))); err != nil {
		t.Fatal(err)
	}
	_ = stable.Close(ws)
	if _, err := openStore(spec("file", walDir), testLogger()); err == nil {
		t.Error("file engine opened a wal layout")
	}
	// Reopening with the matching engine works.
	ws2, err := openStore(spec("wal", walDir), testLogger())
	if err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := ws2.Get("k"); !ok || string(v) != "v" {
		t.Errorf("wal reopen lost data: %q %v", v, ok)
	}
	_ = stable.Close(ws2)

	if _, err := openStore(spec("papyrus", t.TempDir()), testLogger()); err == nil {
		t.Error("unknown engine accepted")
	}
}

// TestRunRejectsRepl: the standalone process has no peers to hold
// replicas; -repl must be refused up front, not silently ignored.
func TestRunRejectsRepl(t *testing.T) {
	err := run([]string{"-name", "A", "-listen", ":0", "-data", t.TempDir(), "-repl", "2"})
	if err == nil || !strings.Contains(err.Error(), "-repl") {
		t.Errorf("standalone -repl accepted: %v", err)
	}
}
