package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestLoadgenSmoke runs a tiny sweep end to end and checks the JSON
// report shape.
func TestLoadgenSmoke(t *testing.T) {
	out := filepath.Join(t.TempDir(), "load.json")
	err := run([]string{
		"-nodes", "2", "-agents", "6", "-steps", "2", "-banks", "2",
		"-stepwork", "1ms", "-latency", "0",
		"-sweep", "1,2", "-json", out,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var reports []runReport
	if err := json.Unmarshal(data, &reports); err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("got %d reports, want 2", len(reports))
	}
	for _, r := range reports {
		if r.AgentsPerSec <= 0 || r.StepsPerSec <= 0 {
			t.Errorf("workers=%d: non-positive throughput %+v", r.Workers, r)
		}
		if r.P99MS < r.P50MS {
			t.Errorf("workers=%d: p99 %.3f < p50 %.3f", r.Workers, r.P99MS, r.P50MS)
		}
	}
	if reports[0].Workers != 1 || reports[1].Workers != 2 {
		t.Errorf("sweep order wrong: %v", reports)
	}
}

func TestLoadgenBadFlags(t *testing.T) {
	if err := run([]string{"-sweep", "1,zero"}); err == nil {
		t.Error("bad sweep accepted")
	}
	if err := run([]string{"-store", "papyrus"}); err == nil {
		t.Error("unknown store backend accepted")
	}
	if err := run([]string{"-chaos", "-store", "papyrus"}); err == nil {
		t.Error("chaos mode accepted an unknown store backend")
	}
}

// TestLoadgenChaosReplay replays one chaos seed through the CLI and
// checks the JSON report shape — the path CI's repro command takes.
func TestLoadgenChaosReplay(t *testing.T) {
	out := filepath.Join(t.TempDir(), "chaos.json")
	err := run([]string{
		"-chaos", "-chaos-seed", "1", "-nodes", "3", "-workers", "2",
		"-json", out,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var reports []chaosReport
	if err := json.Unmarshal(data, &reports); err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 {
		t.Fatalf("got %d chaos reports, want 1", len(reports))
	}
	r := reports[0]
	if r.Seed != 1 || r.Workers != 2 || r.Store != "mem" {
		t.Errorf("report header wrong: %+v", r)
	}
	if len(r.Violations) != 0 {
		t.Errorf("seed 1 violated invariants: %v", r.Violations)
	}
	if r.Crashes+r.Partitions+r.FaultWins == 0 {
		t.Error("schedule contained no fault windows at all")
	}
}

// TestLoadgenStoreBackends drives a tiny run against each storage engine
// and checks the durable backends actually hit stable storage.
func TestLoadgenStoreBackends(t *testing.T) {
	out := filepath.Join(t.TempDir(), "stores.json")
	err := run([]string{
		"-nodes", "2", "-agents", "4", "-steps", "2", "-banks", "2",
		"-stepwork", "1ms", "-latency", "0", "-workers", "2",
		"-storesweep", "-json", out,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var reports []runReport
	if err := json.Unmarshal(data, &reports); err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Fatalf("got %d reports, want 3 (mem, file, wal)", len(reports))
	}
	for _, r := range reports {
		if r.AgentsPerSec <= 0 {
			t.Errorf("store=%s: non-positive throughput", r.Store)
		}
		if r.StableWrites <= 0 {
			t.Errorf("store=%s: no stable writes recorded", r.Store)
		}
	}
}
