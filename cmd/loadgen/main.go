// Command loadgen drives the throughput load harness against a simulated
// cluster: K agents over M nodes with a configurable conflict ratio,
// reporting agents/sec and step-latency percentiles.
//
// Usage:
//
//	loadgen                                  # defaults: 64 agents, 4 nodes, 1 worker
//	loadgen -workers 8                       # 8 scheduler workers per node
//	loadgen -workers 8 -conflict 0.5         # half the agents pinned to one bank
//	loadgen -sweep 1,2,4,8 -json out.json    # worker sweep, machine-readable
//	loadgen -store wal                       # nodes on the log-structured WAL engine
//	loadgen -storesweep -workers 4           # backend sweep: mem vs file vs wal
//	loadgen -ring                            # consistent-hash placement (@ring steps)
//	loadgen -join -workers 4                 # boot a 5th node mid-run; live agents migrate to it
//	loadgen -repl 2                          # replicate every shard to 2 followers (quorum acks)
//	loadgen -repl 2 -repl-acks async         # replicate asynchronously (primary-only durability)
//	loadgen -chaos -chaos-seeds 20           # chaos sweep: 20 seeded fault schedules
//	loadgen -chaos -chaos-seed 7 -store wal  # replay one failing seed, print its schedule
//	loadgen -chaos -repl 2 -chaos-kill 2     # chaos with permanent machine kills + failover
//
// The per-step service time (-stepwork) is spent inside the step
// transaction with the bank lock held; it is what makes the workload
// wait-dominated, so throughput scales with -workers until conflicts
// serialize it.
//
// With -chaos the tool runs the deterministic fault-injection harness
// (internal/chaos) instead of the plain load: each seed expands into a
// schedule of node crashes, partitions, message drop/duplicate/reorder
// faults and latency spikes, executed against the workload while the
// §4.3 invariants are checked. A failing CI seed is replayed exactly with
// `-chaos -chaos-seed=N -store=<engine> -workers=<W>`; the exact schedule
// is printed and the exit status reflects the verdict.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/chaos"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/stable"
	"repro/internal/trace"
)

type runReport struct {
	Workers       int     `json:"workers"`
	Nodes         int     `json:"nodes"`
	Agents        int     `json:"agents"`
	Steps         int     `json:"steps"`
	Store         string  `json:"store"`
	Repl          int     `json:"repl,omitempty"`
	ReplAcks      string  `json:"repl_acks,omitempty"`
	Wire          string  `json:"wire"`
	Batching      bool    `json:"batching"`
	CtlBatching   bool    `json:"ctl_batching"`
	Ring          bool    `json:"ring,omitempty"`
	JoinMidRun    bool    `json:"join_mid_run,omitempty"`
	Migrations    int64   `json:"migrations,omitempty"`
	ConflictRatio float64 `json:"conflict_ratio"`
	StepWorkMS    float64 `json:"step_work_ms"`
	ElapsedMS     float64 `json:"elapsed_ms"`
	AgentsPerSec  float64 `json:"agents_per_sec"`
	StepsPerSec   float64 `json:"steps_per_sec"`
	P50MS         float64 `json:"p50_ms"`
	P90MS         float64 `json:"p90_ms"`
	P99MS         float64 `json:"p99_ms"`
	P999MS        float64 `json:"p999_ms"`
	InFlightPeak  int64   `json:"inflight_peak"`
	GoroutinePeak int     `json:"goroutine_peak"`
	ClaimConflict int64   `json:"claim_conflicts"`
	LockAborts    int64   `json:"lock_aborts"`
	Retries       int64   `json:"retries"`
	StableWrites  int64   `json:"stable_writes"`
	Fsyncs        int64   `json:"fsyncs"`
	ReplBatches   int64   `json:"repl_batches,omitempty"`
	Messages      int64   `json:"messages"`
	BytesSent     int64   `json:"bytes_sent"`
	// NetBatches / NetBatchedMsgs summarize per-link coalescing: how
	// many endpoint deliveries carried how many protocol messages.
	NetBatches     int64   `json:"net_batches"`
	NetBatchedMsgs int64   `json:"net_batched_msgs"`
	AvgBatchSize   float64 `json:"avg_batch_size"`
	// NetBatchSize is the frames-per-batch histogram, keyed by bucket
	// label ("1", "2-2", "3-4", ..., ">64").
	NetBatchSize map[string]int64 `json:"net_batch_size,omitempty"`
	// Control-plane batching effectiveness: how many stable group
	// commits retired how many decision/done GC ops
	// (decision_commits_per_txn < 1.0 is the coalescing win), how many
	// replies rode existing outbound batches, and how the timer-arm
	// volume relates to committed step transactions (per-peer coalesced
	// timers keep timers_per_txn far below the per-txn timer model).
	DecisionBatches      int64   `json:"decision_batches"`
	DecisionOps          int64   `json:"decision_ops"`
	DecisionCommitsPerTx float64 `json:"decision_commits_per_txn"`
	AckPiggybacked       int64   `json:"ack_piggybacked"`
	TimersArmed          int64   `json:"timers_armed"`
	TimersPerTxn         float64 `json:"timers_per_txn"`
	// StepLatencyBuckets is the raw step-latency reservoir histogram,
	// keyed by bucket label ("le_1ms", ..., "inf"); empty cells omitted.
	StepLatencyBuckets map[string]int64 `json:"step_latency_buckets,omitempty"`
	// WireBytesByKind is payload bytes on the wire per message kind;
	// WireMsgsByKind the matching message counts.
	WireBytesByKind map[string]int64 `json:"wire_bytes_by_kind,omitempty"`
	WireMsgsByKind  map[string]int64 `json:"wire_msgs_by_kind,omitempty"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	nodes := fs.Int("nodes", 4, "number of cluster nodes")
	workers := fs.Int("workers", 1, "scheduler workers per node")
	agents := fs.Int("agents", 64, "number of agents to launch")
	steps := fs.Int("steps", 8, "steps per agent (round-robin over nodes)")
	banks := fs.Int("banks", 8, "bank resources per node")
	conflict := fs.Float64("conflict", 0, "fraction of agents pinned to one bank [0,1]")
	stepwork := fs.Duration("stepwork", 8*time.Millisecond, "per-step service time inside the transaction")
	latency := fs.Duration("latency", 200*time.Microsecond, "one-way network latency")
	optimized := fs.Bool("optimized", false, "use the Figure-5 optimized rollback algorithm")
	sflags := stable.BindFlags(fs, stable.Spec{Engine: "mem"})
	wireFmt := fs.String("wire", "binary", "payload wire format: binary (fast path) | gob (legacy)")
	noBatch := fs.Bool("nobatch", false, "disable per-destination coalescing of protocol sends")
	noCtlBatch := fs.Bool("noctlbatch", false, "disable cross-transaction control-plane batching (per-txn resend timers, unstaged decision GC, no ack piggybacking) — A/B baseline")
	profileName := fs.String("profile", "", `named load profile: "shard-saturate" saturates GOMAXPROCS across the shards and sweeps 1x/10x in-flight agents (p99 should stay flat)`)
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile covering the whole run to this file")
	memProfile := fs.String("memprofile", "", "write a pprof heap profile at the end of the run to this file")
	storeSweep := fs.Bool("storesweep", false, "run the full backend sweep (mem, file, wal) per worker count")
	sweep := fs.String("sweep", "", "comma-separated worker counts to sweep (overrides -workers)")
	jsonPath := fs.String("json", "", "write the reports as JSON to this file")
	tracePath := fs.String("trace", "", "write the final run's causal trace as Chrome trace_event JSON (open in chrome://tracing or Perfetto)")
	noTrace := fs.Bool("notrace", false, "disable the per-node trace rings (tracing is on by default; used to measure its overhead)")
	ring := fs.Bool("ring", false, "place steps by consistent hash (membership layer on) instead of static round-robin wiring")
	joinMid := fs.Bool("join", false, "boot one extra node mid-run and let the rebalancer migrate its ring share of live agents over (implies -ring)")
	migrateBurst := fs.Int("migrateburst", 0, "max live-agent migrations per rebalancer sweep (0 = node default, negative = unbounded) — A/B the join-spike throttle")
	chaosMode := fs.Bool("chaos", false, "run the seeded fault-injection harness instead of the plain load")
	chaosSeed := fs.Int64("chaos-seed", -1, "chaos: replay exactly this seed (prints the schedule)")
	chaosSeeds := fs.Int("chaos-seeds", 5, "chaos: number of consecutive seeds to sweep")
	chaosBase := fs.Int64("chaos-base-seed", 1, "chaos: first seed of the sweep")
	chaosKill := fs.Int("chaos-kill", 0, "chaos: permanent machine kills per schedule (requires -repl with quorum acks)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch *wireFmt {
	case "binary", "gob":
	default:
		return fmt.Errorf("bad -wire %q (want binary or gob)", *wireFmt)
	}

	spec, err := sflags.Spec()
	if err != nil {
		return err
	}
	replAcks := ""
	if spec.Repl.Enabled() {
		switch spec.Repl.Acks {
		case 1:
			replAcks = "async"
		case stable.AcksQuorum:
			replAcks = "quorum"
		default:
			return fmt.Errorf("loadgen supports -repl-acks async or quorum (got %d explicit copies)", spec.Repl.Acks)
		}
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "loadgen: -memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the heap profile shows retained memory
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "loadgen: -memprofile:", err)
			}
		}()
	}

	if *chaosMode {
		return runChaos(chaosConfig{
			seed: *chaosSeed, seeds: *chaosSeeds, base: *chaosBase,
			store: spec.Engine, workers: *workers, nodes: *nodes,
			wire:       *wireFmt,
			noCtlBatch: *noCtlBatch,
			repl:       spec.Repl.Followers,
			replAcks:   replAcks,
			kills:      *chaosKill,
			jsonPath:   *jsonPath,
		})
	}
	if *chaosKill > 0 {
		return fmt.Errorf("-chaos-kill requires -chaos")
	}

	counts := []int{*workers}
	if *sweep != "" {
		counts = counts[:0]
		for _, f := range strings.Split(*sweep, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n < 1 {
				return fmt.Errorf("bad -sweep element %q", f)
			}
			counts = append(counts, n)
		}
	}

	backends := []string{spec.Engine}
	if *storeSweep {
		backends = experiments.StoreBackends
	}

	// A load point is one (workers, agents) cell; the plain worker sweep
	// holds agents fixed, a named profile may vary both.
	type loadPoint struct{ workers, agents int }
	points := make([]loadPoint, 0, len(counts)+1)
	for _, w := range counts {
		points = append(points, loadPoint{workers: w, agents: *agents})
	}
	switch *profileName {
	case "":
	case "shard-saturate":
		// Saturate the machine: enough workers per node to keep every
		// core busy, then 10x the in-flight agent backlog while holding
		// everything else fixed. With the control plane batched per peer
		// the p99 step latency should stay flat across the two points —
		// the timers, GC writes and acks no longer scale with the number
		// of in-flight transactions.
		if *sweep != "" {
			return fmt.Errorf("-profile shard-saturate and -sweep are mutually exclusive")
		}
		w := (runtime.GOMAXPROCS(0) + *nodes - 1) / *nodes
		if w < 2 {
			w = 2
		}
		points = []loadPoint{
			{workers: w, agents: *agents},
			{workers: w, agents: *agents * 10},
		}
	default:
		return fmt.Errorf("unknown -profile %q (want shard-saturate)", *profileName)
	}

	traceRing := 0
	if *noTrace {
		if *tracePath != "" {
			return fmt.Errorf("-trace and -notrace are mutually exclusive")
		}
		traceRing = -1
	}

	var reports []runReport
	var lastTrace []trace.Record
	for _, pt := range points {
		for _, backend := range backends {
			res, err := experiments.RunThroughput(experiments.ThroughputConfig{
				Nodes:         *nodes,
				Workers:       pt.workers,
				Agents:        pt.agents,
				Steps:         *steps,
				Banks:         *banks,
				ConflictRatio: *conflict,
				StepWork:      *stepwork,
				Latency:       *latency,
				Optimized:     *optimized,
				Store:         backend,
				Repl:          spec.Repl,
				WireGob:       *wireFmt == "gob",
				NoCoalesce:    *noBatch,
				NoCtlBatch:    *noCtlBatch,
				TraceRing:     traceRing,
				CollectTrace:  *tracePath != "",
				Ring:          *ring || *joinMid,
				JoinMidRun:    *joinMid,
				MigrateBurst:  *migrateBurst,
			})
			if err != nil {
				return err
			}
			r := runReport{
				Workers:        pt.workers,
				Nodes:          *nodes,
				Agents:         pt.agents,
				Steps:          *steps,
				Store:          backend,
				Repl:           spec.Repl.Followers,
				ReplAcks:       replAcks,
				Wire:           *wireFmt,
				Batching:       !*noBatch,
				CtlBatching:    !*noCtlBatch,
				Ring:           *ring || *joinMid,
				JoinMidRun:     *joinMid,
				Migrations:     res.Metrics.Migrations,
				ConflictRatio:  *conflict,
				StepWorkMS:     float64(stepwork.Microseconds()) / 1000,
				ElapsedMS:      float64(res.Elapsed.Microseconds()) / 1000,
				AgentsPerSec:   res.AgentsPerSec,
				StepsPerSec:    res.StepsPerSec,
				P50MS:          float64(res.P50.Microseconds()) / 1000,
				P90MS:          float64(res.Latency.P90.Microseconds()) / 1000,
				P99MS:          float64(res.P99.Microseconds()) / 1000,
				P999MS:         float64(res.Latency.P999.Microseconds()) / 1000,
				InFlightPeak:   res.Metrics.SchedInFlightPeak,
				GoroutinePeak:  res.GoroutinePeak,
				ClaimConflict:  res.Metrics.SchedClaimConflicts,
				LockAborts:     res.Metrics.SchedLockAborts,
				Retries:        res.Metrics.SchedRetries,
				StableWrites:   res.Metrics.StableWrites,
				Fsyncs:         res.Metrics.Fsyncs,
				ReplBatches:    res.Metrics.ReplBatches,
				Messages:       res.Metrics.Messages,
				BytesSent:      res.Metrics.BytesSent,
				NetBatches:     res.Metrics.NetBatches,
				NetBatchedMsgs: res.Metrics.NetBatchedMsgs,
			}
			if r.NetBatches > 0 {
				r.AvgBatchSize = float64(r.NetBatchedMsgs) / float64(r.NetBatches)
			}
			r.DecisionBatches = res.Metrics.DecisionBatches
			r.DecisionOps = res.Metrics.DecisionOps
			r.AckPiggybacked = res.Metrics.AckPiggybacked
			r.TimersArmed = res.Metrics.TimersArmed
			if st := res.Metrics.StepTxns; st > 0 {
				r.DecisionCommitsPerTx = float64(r.DecisionBatches) / float64(st)
				r.TimersPerTxn = float64(r.TimersArmed) / float64(st)
			}
			r.NetBatchSize = make(map[string]int64)
			for i, n := range res.Metrics.NetBatchSize {
				if n > 0 {
					r.NetBatchSize[metrics.BatchBucketLabel(i)] = n
				}
			}
			r.StepLatencyBuckets = make(map[string]int64)
			for i, n := range res.Latency.Buckets {
				if n > 0 {
					r.StepLatencyBuckets[metrics.LatencyBucketLabel(i)] = n
				}
			}
			r.WireBytesByKind = res.Metrics.WireBytesByKind
			r.WireMsgsByKind = res.Metrics.WireMsgsByKind
			lastTrace = res.TraceRecords
			reports = append(reports, r)
			fmt.Printf("workers=%-3d agents=%-5d store=%-4s wire=%-6s agents/s=%-8.1f steps/s=%-8.1f p50=%6.2fms p99=%7.2fms elapsed=%7.1fms inflight=%-3d goroutines=%-4d claimConf=%-4d lockAborts=%-3d retries=%-4d msgs=%-6d avgBatch=%.2f\n",
				r.Workers, r.Agents, r.Store, r.Wire, r.AgentsPerSec, r.StepsPerSec, r.P50MS, r.P99MS, r.ElapsedMS,
				r.InFlightPeak, r.GoroutinePeak, r.ClaimConflict, r.LockAborts, r.Retries, r.Messages, r.AvgBatchSize)
			fmt.Printf("control plane: ctl_batching=%v decision_commits/txn=%.3f decision_ops/commit=%.2f piggybacked=%d timers/txn=%.3f\n",
				r.CtlBatching, r.DecisionCommitsPerTx, safeDiv(r.DecisionOps, r.DecisionBatches), r.AckPiggybacked, r.TimersPerTxn)
			if r.Ring {
				fmt.Printf("ring placement: join_mid_run=%v migrations=%d\n", r.JoinMidRun, r.Migrations)
			}
			if r.Repl > 0 {
				fmt.Printf("replication: followers=%d acks=%s batches=%d\n", r.Repl, r.ReplAcks, r.ReplBatches)
			}
		}
	}
	if *profileName == "shard-saturate" && len(reports) == 2 {
		base, top := reports[0], reports[1]
		ratio := 0.0
		if base.P99MS > 0 {
			ratio = top.P99MS / base.P99MS
		}
		fmt.Printf("shard-saturate: %dx in-flight agents (%d→%d) = p99 %.2fms → %.2fms (%.2fx)\n",
			top.Agents/max(base.Agents, 1), base.Agents, top.Agents, base.P99MS, top.P99MS, ratio)
	} else if len(reports) > 1 && len(backends) == 1 {
		base, top := reports[0], reports[len(reports)-1]
		fmt.Printf("scaling: %d→%d workers = %.2fx agents/sec\n",
			base.Workers, top.Workers, top.AgentsPerSec/base.AgentsPerSec)
	}
	if *jsonPath != "" {
		data, err := json.MarshalIndent(reports, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %d report(s) to %s\n", len(reports), *jsonPath)
	}
	if *tracePath != "" {
		if err := writeChromeTrace(*tracePath, lastTrace); err != nil {
			return err
		}
		fmt.Printf("wrote %d trace records to %s (open in chrome://tracing)\n", len(lastTrace), *tracePath)
	}
	return nil
}

// writeChromeTrace exports the run's causal trace in Chrome trace_event
// format and re-validates the written bytes, so a malformed export fails
// the run instead of silently producing a file chrome://tracing rejects.
func writeChromeTrace(path string, rs []trace.Record) error {
	if len(rs) == 0 {
		return fmt.Errorf("-trace: run produced no trace records")
	}
	var buf strings.Builder
	if err := trace.WriteChromeTrace(&buf, rs); err != nil {
		return fmt.Errorf("-trace: %w", err)
	}
	if err := trace.ValidateChromeTrace([]byte(buf.String())); err != nil {
		return fmt.Errorf("-trace: generated file failed validation: %w", err)
	}
	return os.WriteFile(path, []byte(buf.String()), 0o644)
}

// safeDiv returns a/b as a float, 0 when b is 0.
func safeDiv(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

type chaosConfig struct {
	seed       int64 // >= 0: replay exactly this seed
	seeds      int
	base       int64
	store      string
	workers    int
	nodes      int
	wire       string
	noCtlBatch bool
	repl       int    // follower replicas per shard (0 disables)
	replAcks   string // "quorum" or "async"
	kills      int    // permanent machine kills per schedule
	jsonPath   string
}

type chaosReport struct {
	Seed       int64    `json:"seed"`
	Store      string   `json:"store"`
	Workers    int      `json:"workers"`
	Repl       int      `json:"repl,omitempty"`
	Kills      int      `json:"kills,omitempty"`
	Crashes    int      `json:"crashes"`
	Partitions int      `json:"partitions"`
	FaultWins  int      `json:"fault_windows"`
	Drops      int64    `json:"drops"`
	Dups       int64    `json:"dups"`
	Reorders   int64    `json:"reorders"`
	RolledBack int      `json:"rolled_back"`
	ElapsedMS  float64  `json:"elapsed_ms"`
	Violations []string `json:"violations,omitempty"`
}

// runChaos sweeps (or replays) chaos seeds; the exit status reflects the
// verdict so CI can gate on it.
func runChaos(cfg chaosConfig) error {
	seeds := make([]int64, 0, cfg.seeds)
	verbose := false
	if cfg.seed >= 0 {
		seeds, verbose = append(seeds, cfg.seed), true
	} else {
		for s := cfg.base; s < cfg.base+int64(cfg.seeds); s++ {
			seeds = append(seeds, s)
		}
	}
	var reports []chaosReport
	failed := 0
	for _, seed := range seeds {
		res, err := chaos.Run(chaos.Options{
			Seed:       seed,
			Store:      cfg.store,
			Workers:    cfg.workers,
			Nodes:      cfg.nodes,
			Wire:       cfg.wire,
			NoCtlBatch: cfg.noCtlBatch,
			Repl:       cfg.repl,
			ReplAcks:   cfg.replAcks,
			Kills:      cfg.kills,
		})
		if err != nil {
			return err
		}
		if verbose || res.Failed() {
			fmt.Print(res.Schedule.String())
		}
		fmt.Println(res.Summary())
		r := chaosReport{
			Seed: seed, Store: cfg.store, Workers: cfg.workers,
			Repl: cfg.repl, Kills: cfg.kills,
			Drops: res.Faults.Drops, Dups: res.Faults.Dups, Reorders: res.Faults.Reorders,
			RolledBack: res.RolledBack,
			ElapsedMS:  float64(res.Elapsed.Microseconds()) / 1000,
		}
		r.Crashes, r.Partitions, r.FaultWins = res.Schedule.Counts()
		for _, v := range res.Violations {
			r.Violations = append(r.Violations, v.String())
		}
		reports = append(reports, r)
		if res.Failed() {
			failed++
			for _, v := range res.Violations {
				fmt.Printf("  violation: %s\n", v)
			}
			repro := fmt.Sprintf("go run ./cmd/loadgen -chaos -chaos-seed=%d -store=%s -workers=%d -wire=%s",
				seed, cfg.store, cfg.workers, cfg.wire)
			if cfg.repl > 0 {
				repro += fmt.Sprintf(" -repl=%d -repl-acks=%s -chaos-kill=%d", cfg.repl, cfg.replAcks, cfg.kills)
			}
			fmt.Printf("  reproduce: %s\n", repro)
		}
	}
	if cfg.jsonPath != "" {
		data, err := json.MarshalIndent(reports, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %d chaos report(s) to %s\n", len(reports), cfg.jsonPath)
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d chaos seeds violated invariants", failed, len(seeds))
	}
	return nil
}
