// Package history implements the formal model of §3.1 (adopted from Korth,
// Levy & Silberschatz [8]): operations over the *augmented state* — the
// resource state merged with the agent's private data space — histories as
// sequences/compositions of operations, commutativity, and the soundness
// criterion for compensation.
//
// The package is executable mathematics: the property-based tests in this
// module check the paper's §3.2 claims against it (commuting bank
// operations yield sound histories; a balance-dependent operation destroys
// commutativity and soundness).
package history

import (
	"fmt"
	"sort"
	"strings"
)

// State is an augmented state: named integer-valued entities (account
// balances, stock levels, private agent counters). States are immutable
// from the operations' point of view; Apply returns a derived state.
type State map[string]int64

// Clone returns a deep copy of s.
func (s State) Clone() State {
	out := make(State, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// Equal reports component-wise equality treating absent keys as zero.
func (s State) Equal(o State) bool {
	for k, v := range s {
		if o[k] != v {
			return false
		}
	}
	for k, v := range o {
		if s[k] != v {
			return false
		}
	}
	return true
}

// String renders the state deterministically.
func (s State) String() string {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%d", k, s[k])
	}
	return "{" + strings.Join(parts, " ") + "}"
}

// Operation is one operation f on the augmented state. Operations may read
// and write any number of entities (§3.1 generalizes [8] in exactly this
// way).
type Operation interface {
	// Name identifies the operation in rendered histories.
	Name() string
	// Apply returns the state after the operation.
	Apply(s State) State
}

// History is a sequence of operations; as a function it is the composition
// f1 • f2 • ... • fn applied left to right (fi precedes fi+1).
type History []Operation

// Apply runs the whole history on s.
func (h History) Apply(s State) State {
	cur := s.Clone()
	for _, f := range h {
		cur = f.Apply(cur)
	}
	return cur
}

// Then concatenates histories.
func (h History) Then(o History) History {
	out := make(History, 0, len(h)+len(o))
	out = append(out, h...)
	return append(out, o...)
}

// String renders ⟨f1, f2, ...⟩.
func (h History) String() string {
	names := make([]string, len(h))
	for i, f := range h {
		names[i] = f.Name()
	}
	return "<" + strings.Join(names, ", ") + ">"
}

// EqualOn reports X ≡ Y over the given sample states: for all S in
// samples, X(S) = Y(S). (True history equality quantifies over all states;
// the tests use randomized samples as a sound refutation procedure.)
func EqualOn(x, y History, samples []State) bool {
	for _, s := range samples {
		if !x.Apply(s).Equal(y.Apply(s)) {
			return false
		}
	}
	return true
}

// CommuteOn reports whether X•Y ≡ Y•X over the sample states (§3.1).
func CommuteOn(x, y History, samples []State) bool {
	return EqualOn(x.Then(y), y.Then(x), samples)
}

// SoundOn checks the soundness criterion of [8] as stated in §3.2: with X
// being the history of T, CT and dep(T) (T, then the dependents, then the
// compensation, in the given interleaving) and Y the history of dep(T)
// alone, the compensation is sound iff X(S) = Y(S) for the initial states.
//
// The caller passes the concrete interleaving of dep(T) operations between
// T and CT via deps; SoundOn builds X = T • deps • CT and Y = deps.
func SoundOn(t, ct, deps History, samples []State) bool {
	x := t.Then(deps).Then(ct)
	return EqualOn(x, deps, samples)
}

// InverseOn reports T•CT ≡ I over the samples (the identity-restoring
// special case the soundness definition implies, §3.2).
func InverseOn(t, ct History, samples []State) bool {
	return EqualOn(t.Then(ct), History{}, samples)
}

// --- concrete operations (the paper's bank examples) -------------------

// fnOp is a generic named operation.
type fnOp struct {
	name string
	fn   func(State) State
}

func (o fnOp) Name() string        { return o.name }
func (o fnOp) Apply(s State) State { return o.fn(s.Clone()) }

// Op builds an operation from a function (for tests and experiments).
func Op(name string, fn func(State) State) Operation {
	return fnOp{name: name, fn: fn}
}

// Deposit returns deposit(acct, x): balance += x. Deposits and withdrawals
// on an overdraft-capable account commute (§3.2).
func Deposit(acct string, x int64) Operation {
	return fnOp{
		name: fmt.Sprintf("deposit(%s,%d)", acct, x),
		fn: func(s State) State {
			s[acct] += x
			return s
		},
	}
}

// Withdraw returns withdraw(acct, x): balance -= x (overdraft allowed; the
// guarded variant below models the non-overdraft account).
func Withdraw(acct string, x int64) Operation {
	return fnOp{
		name: fmt.Sprintf("withdraw(%s,%d)", acct, x),
		fn: func(s State) State {
			s[acct] -= x
			return s
		},
	}
}

// ConditionalSpend returns the paper's soundness-breaking transaction: "if
// I have enough money, then ..." — it reads the balance and spends only if
// at least threshold is available, recording the choice in flag.
func ConditionalSpend(acct string, threshold, amount int64, flag string) Operation {
	return fnOp{
		name: fmt.Sprintf("ifRich(%s>=%d)spend(%d)", acct, threshold, amount),
		fn: func(s State) State {
			if s[acct] >= threshold {
				s[acct] -= amount
				s[flag] = 1
			} else {
				s[flag] = -1
			}
			return s
		},
	}
}

// GuardedWithdraw models the non-overdraft account of §3.2's
// compensation-failure example: the withdrawal happens only if funds
// suffice, and failCounter counts failed attempts.
func GuardedWithdraw(acct string, x int64, failCounter string) Operation {
	return fnOp{
		name: fmt.Sprintf("gwithdraw(%s,%d)", acct, x),
		fn: func(s State) State {
			if s[acct] >= x {
				s[acct] -= x
			} else {
				s[failCounter]++
			}
			return s
		},
	}
}
