package history

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// sampleStates builds randomized augmented states over the given keys.
func sampleStates(r *rand.Rand, keys []string, n int) []State {
	out := make([]State, n)
	for i := range out {
		s := make(State, len(keys))
		for _, k := range keys {
			s[k] = int64(r.Intn(2000) - 500)
		}
		out[i] = s
	}
	return out
}

func TestDepositWithdrawCommute(t *testing.T) {
	// §3.2: "If the account may be overdrawn, these two operations
	// commute" — for arbitrary amounts and any interleaving.
	cfg := &quick.Config{MaxCount: 200}
	err := quick.Check(func(x, y int16, seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		samples := sampleStates(r, []string{"acct"}, 20)
		a := History{Deposit("acct", int64(x))}
		b := History{Withdraw("acct", int64(y))}
		return CommuteOn(a, b, samples)
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func TestDepositCompensationIsSound(t *testing.T) {
	// T = deposit(x), CT = withdraw(x), dep(T) uses only commuting
	// operations: the produced histories are sound.
	cfg := &quick.Config{MaxCount: 200}
	err := quick.Check(func(x int16, d1, d2 int16, seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		samples := sampleStates(r, []string{"acct"}, 20)
		tOp := History{Deposit("acct", int64(x))}
		ct := History{Withdraw("acct", int64(x))}
		deps := History{Deposit("acct", int64(d1)), Withdraw("acct", int64(d2))}
		return SoundOn(tOp, ct, deps, samples)
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func TestConditionalSpendBreaksCommutativity(t *testing.T) {
	// §3.2: a dependent transaction that uses the current balance to
	// decide ("if I have enough money, then ...") does not commute with
	// deposit/withdraw.
	r := rand.New(rand.NewSource(1))
	samples := sampleStates(r, []string{"acct", "flag"}, 50)
	dep := History{Deposit("acct", 100)}
	cond := History{ConditionalSpend("acct", 50, 10, "flag")}
	if CommuteOn(dep, cond, samples) {
		t.Error("conditional spend commutes with deposit; the paper's counter-example should break commutativity")
	}
}

func TestConditionalSpendBreaksSoundness(t *testing.T) {
	// With the conditional spender as dep(T), compensating the deposit
	// is no longer sound: dep(T) alone sees a different balance.
	samples := []State{{"acct": 0}} // spender's threshold is only met after T's deposit
	tOp := History{Deposit("acct", 100)}
	ct := History{Withdraw("acct", 100)}
	deps := History{ConditionalSpend("acct", 50, 10, "flag")}
	if SoundOn(tOp, ct, deps, samples) {
		t.Error("history with balance-dependent dep(T) reported sound; want unsound")
	}
}

func TestSoundnessImpliesInverse(t *testing.T) {
	// §3.2: "the definition of soundness implies that T•CT ≡ I".
	err := quick.Check(func(x int16, seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		samples := sampleStates(r, []string{"acct"}, 20)
		tOp := History{Deposit("acct", int64(x))}
		ct := History{Withdraw("acct", int64(x))}
		return InverseOn(tOp, ct, samples)
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Error(err)
	}
}

func TestGuardedWithdrawCompensationCanFail(t *testing.T) {
	// §3.2's compensation-failure example: T deposits 20 on a
	// non-overdraft account, another transaction withdraws everything,
	// and CT (withdraw 20) fails.
	s := State{"acct": 0, "fails": 0}
	tOp := Deposit("acct", 20)
	intruder := GuardedWithdraw("acct", 20, "fails")
	ct := GuardedWithdraw("acct", 20, "fails")

	afterT := tOp.Apply(s)
	afterIntruder := intruder.Apply(afterT)
	final := ct.Apply(afterIntruder)
	if final["fails"] != 1 {
		t.Errorf("compensation failures = %d, want 1 (balance drained by dependent txn)", final["fails"])
	}

	// Without the intruder the compensation succeeds and restores the
	// initial balance.
	direct := ct.Apply(afterT)
	if direct["acct"] != 0 || direct["fails"] != 0 {
		t.Errorf("unperturbed compensation: %s, want acct=0 fails=0", direct)
	}
}

func TestHistoryString(t *testing.T) {
	h := History{Deposit("a", 5), Withdraw("a", 3)}
	want := "<deposit(a,5), withdraw(a,3)>"
	if got := h.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestHistoryApplyDoesNotMutateInput(t *testing.T) {
	s := State{"acct": 10}
	History{Deposit("acct", 5)}.Apply(s)
	if s["acct"] != 10 {
		t.Errorf("input state mutated: %s", s)
	}
}

func TestEqualOnDistinguishesOrders(t *testing.T) {
	samples := []State{{"acct": 0, "flag": 0}}
	x := History{Deposit("acct", 100), ConditionalSpend("acct", 50, 10, "flag")}
	y := History{ConditionalSpend("acct", 50, 10, "flag"), Deposit("acct", 100)}
	if EqualOn(x, y, samples) {
		t.Error("different interleavings reported equal")
	}
}
