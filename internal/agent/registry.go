package agent

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/itinerary"
	"repro/internal/resource"
	"repro/internal/txn"
)

// StepContext is the interface a step method programs against. It is
// implemented by the node runtime; everything a step does to resources or
// remote queues happens inside the surrounding step transaction (§2).
type StepContext interface {
	// NodeName returns the node executing the step.
	NodeName() string
	// AgentID returns the executing agent's ID.
	AgentID() string
	// StepSeq returns the sequence number of the current step.
	StepSeq() int
	// SRO returns the agent's strongly reversible data space.
	SRO() *Space
	// WRO returns the agent's weakly reversible data space.
	WRO() *Space
	// Tx returns the step transaction; resource operations take it.
	Tx() *txn.Tx
	// Resource looks up a local resource manager by name.
	Resource(name string) (resource.Resource, bool)

	// LogComp appends a compensating operation for an effect of this
	// step. kind determines where the compensation may run (§4.4.1) and
	// what it may access. Compensations are executed in reverse order.
	LogComp(kind core.OpKind, op string, params core.Params)

	// Savepoint requests an (application-defined) agent savepoint to be
	// constituted at the end of this step (§2: savepoints can only be
	// constituted at the end of a step).
	Savepoint(id string)

	// Rollback requests a partial rollback to the given savepoint. The
	// returned error must be returned from the step; the runtime aborts
	// the step transaction and starts the rollback (Figure 4a).
	Rollback(spID string) error
	// RollbackCurrentSub rolls back the innermost sub-itinerary.
	RollbackCurrentSub() error
	// RollbackEnclosing rolls back n>=1 sub-itinerary levels: 1 is the
	// current sub, 2 also the one containing it, and so on (§4.4.2).
	RollbackEnclosing(n int) error
}

// CompContext is the interface compensating operations program against.
// The runtime enforces the access rules of §4.3/§4.4.1: resource
// compensations get no agent access, agent compensations no resource
// access, and strongly reversible objects are frozen throughout.
type CompContext interface {
	// NodeName returns the node executing the compensating operation.
	NodeName() string
	// Kind returns the operation-entry kind being executed.
	Kind() core.OpKind
	// Params returns the parameters stored in the operation entry.
	Params() core.Params
	// Tx returns the compensation transaction.
	Tx() *txn.Tx
	// WRO returns the weakly reversible data space; it fails for
	// resource compensation entries, which must not access the agent.
	WRO() (*Space, error)
	// Resource looks up a local resource; it fails for agent
	// compensation entries, which must not access resources.
	Resource(name string) (resource.Resource, error)
}

// StepFunc implements one step of an agent (the method of a step entry).
type StepFunc func(ctx StepContext) error

// CompFunc implements one compensating operation.
type CompFunc func(ctx CompContext) error

// StepHint reports which node-local resources a step method will touch
// when executed for the given agent at the given itinerary step. The
// scheduler uses the returned names as conflict keys for dispatch
// ordering — purely advisory, never enforcement: a step may still touch
// resources the hint missed (2PL arbitrates the truth).
type StepHint func(a *Agent, step itinerary.Step) []string

// StaticHint is a StepHint for methods with a fixed resource set.
func StaticHint(resources ...string) StepHint {
	return func(*Agent, itinerary.Step) []string { return resources }
}

// Registry maps method names to step and compensation functions. One
// registry is shared by all nodes of a cluster — the stand-in for code
// being available everywhere (see the code-mobility substitution note in
// DESIGN.md).
type Registry struct {
	mu    sync.RWMutex
	steps map[string]StepFunc
	comps map[string]CompFunc
	hints map[string]StepHint

	hintCount atomic.Int32
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		steps: make(map[string]StepFunc),
		comps: make(map[string]CompFunc),
		hints: make(map[string]StepHint),
	}
}

// RegisterStep registers a step method under name.
func (r *Registry) RegisterStep(name string, fn StepFunc) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.steps[name]; ok {
		return fmt.Errorf("agent: step %q already registered", name)
	}
	r.steps[name] = fn
	return nil
}

// RegisterComp registers a compensating operation under name.
func (r *Registry) RegisterComp(name string, fn CompFunc) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.comps[name]; ok {
		return fmt.Errorf("agent: compensation %q already registered", name)
	}
	r.comps[name] = fn
	return nil
}

// RegisterStepHints attaches a resource-conflict hint to a registered step
// method (see StepHint). Registering a hint for an unknown method or
// re-registering one is an error.
func (r *Registry) RegisterStepHints(name string, hint StepHint) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.steps[name]; !ok {
		return fmt.Errorf("agent: hints for unregistered step %q", name)
	}
	if _, ok := r.hints[name]; ok {
		return fmt.Errorf("agent: hints for step %q already registered", name)
	}
	r.hints[name] = hint
	r.hintCount.Add(1)
	return nil
}

// StepHintFor resolves the conflict hint of a step method, if any.
func (r *Registry) StepHintFor(name string) (StepHint, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	h, ok := r.hints[name]
	return h, ok
}

// HasHints reports whether any step hint is registered — a cheap gate so
// hint-less deployments skip container decoding in the dispatch path.
func (r *Registry) HasHints() bool { return r.hintCount.Load() > 0 }

// Step resolves a step method.
func (r *Registry) Step(name string) (StepFunc, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	fn, ok := r.steps[name]
	return fn, ok
}

// Comp resolves a compensating operation.
func (r *Registry) Comp(name string) (CompFunc, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	fn, ok := r.comps[name]
	return fn, ok
}

// RollbackRequest is the sentinel error a step returns (via
// StepContext.Rollback) to trigger a partial rollback to SpID.
type RollbackRequest struct {
	SpID string
}

// Error implements error.
func (r *RollbackRequest) Error() string {
	return "agent: rollback requested to savepoint " + r.SpID
}
