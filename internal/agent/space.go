// Package agent implements the mobile-agent model of §2 and §4.1: an
// autonomous object whose private data space is split into strongly
// reversible objects (restored from before-images in the rollback log) and
// weakly reversible objects (compensated by application-provided
// operations), executing an itinerary of steps with code resolved from a
// per-node registry.
//
// Code mobility substitution: Mole shipped Java classes with the agent; in
// Go, step and compensation functions are registered by name on every node
// and only the agent's *data* migrates (gob). See DESIGN.md.
package agent

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/wire"
)

// ErrFrozen is returned when strongly reversible objects are accessed
// during compensation — forbidden because a compensating operation would
// read the "old" state established after the savepoint (§4.3, Figure 3).
var ErrFrozen = errors.New("agent: strongly reversible objects are not accessible during compensation")

// Space is one half of the agent's private data space. Values are stored
// gob-encoded so a Space snapshot is a deep copy by construction and the
// Space serializes as part of the agent container.
type Space struct {
	Data map[string][]byte

	frozen bool // runtime-only: set while compensating (SRO space)
}

// NewSpace returns an empty data space.
func NewSpace() *Space { return &Space{Data: make(map[string][]byte)} }

// Freeze toggles access blocking; the node runtime freezes the SRO space
// for the duration of compensation transactions.
func (s *Space) Freeze(frozen bool) { s.frozen = frozen }

func (s *Space) check() error {
	if s.frozen {
		return ErrFrozen
	}
	if s.Data == nil {
		s.Data = make(map[string][]byte)
	}
	return nil
}

// Set stores v under key (gob-encoded).
func (s *Space) Set(key string, v any) error {
	if err := s.check(); err != nil {
		return err
	}
	data, err := wire.Encode(v)
	if err != nil {
		return fmt.Errorf("agent: set %q: %w", key, err)
	}
	s.Data[key] = data
	return nil
}

// Get decodes the value under key into out (a non-nil pointer). It
// returns false if the key does not exist.
func (s *Space) Get(key string, out any) (bool, error) {
	if err := s.check(); err != nil {
		return false, err
	}
	raw, ok := s.Data[key]
	if !ok {
		return false, nil
	}
	if err := wire.Decode(raw, out); err != nil {
		return false, fmt.Errorf("agent: get %q: %w", key, err)
	}
	return true, nil
}

// MustGet decodes the value under key into out, failing if absent.
func (s *Space) MustGet(key string, out any) error {
	ok, err := s.Get(key, out)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("agent: missing key %q", key)
	}
	return nil
}

// Delete removes key.
func (s *Space) Delete(key string) error {
	if err := s.check(); err != nil {
		return err
	}
	delete(s.Data, key)
	return nil
}

// Has reports whether key exists.
func (s *Space) Has(key string) (bool, error) {
	if err := s.check(); err != nil {
		return false, err
	}
	_, ok := s.Data[key]
	return ok, nil
}

// Keys returns all keys in sorted order.
func (s *Space) Keys() ([]string, error) {
	if err := s.check(); err != nil {
		return nil, err
	}
	keys := make([]string, 0, len(s.Data))
	for k := range s.Data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys, nil
}

// Snapshot returns a deep copy of the raw contents — the before-image
// written into savepoint entries. Snapshot ignores freezing (the system
// takes images, the application does not).
func (s *Space) Snapshot() map[string][]byte {
	out := make(map[string][]byte, len(s.Data))
	for k, v := range s.Data {
		c := make([]byte, len(v))
		copy(c, v)
		out[k] = c
	}
	return out
}

// Restore replaces the contents with the given image (deep copy).
func (s *Space) Restore(image map[string][]byte) {
	s.Data = make(map[string][]byte, len(image))
	for k, v := range image {
		c := make([]byte, len(v))
		copy(c, v)
		s.Data[k] = c
	}
}
