package agent

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/itinerary"
	"repro/internal/wire"
)

// Agent is the mobile agent object: identity, the split private data
// space, the itinerary with its cursor, and the attached rollback log
// (§4.2: "the log is attached to the agent and hence migrates with the
// agent from node to node").
type Agent struct {
	ID    string
	Owner string // node/endpoint notified on completion or failure

	// StepSeq numbers executed steps; it tags BOS/EOS entries and makes
	// step transactions identifiable.
	StepSeq int

	SRO *Space // strongly reversible objects (§4.1)
	WRO *Space // weakly reversible objects (§4.1)

	Itin   *itinerary.Itinerary
	Cursor itinerary.Cursor

	Log *core.Log
}

// New creates an agent with the given ID, owner and itinerary. The cursor
// is positioned before the first step; the IDs of sub-itineraries entered
// to reach it are returned so the launcher can write their savepoints.
func New(id, owner string, itin *itinerary.Itinerary) (*Agent, []string, error) {
	return NewAt(id, owner, itin, "")
}

// NewAt is New for a known launch node: sub-itineraries with a partial
// entry order (AnyOrder) that are entered on the way to the first step get
// a locality-aware concrete order starting from launchNode (§4.4.2's
// system-chosen order). With an empty launchNode the authored order is
// kept.
func NewAt(id, owner string, itin *itinerary.Itinerary, launchNode string) (*Agent, []string, error) {
	if id == "" {
		return nil, nil, errors.New("agent: empty ID")
	}
	var hook itinerary.EnterHook
	if launchNode != "" {
		hook = itinerary.LocalityOrder(launchNode)
	}
	cursor, entered, err := itin.StartHook(hook)
	if err != nil {
		return nil, nil, fmt.Errorf("agent %s: %w", id, err)
	}
	return &Agent{
		ID:     id,
		Owner:  owner,
		SRO:    NewSpace(),
		WRO:    NewSpace(),
		Itin:   itin,
		Cursor: cursor,
		Log:    &core.Log{},
	}, entered, nil
}

// Reserved SRO image keys under which the runtime snapshots system state
// (itinerary + cursor + step sequence) so that a rollback also restores the
// agent's position. The prefix cannot collide with application keys set
// through Space (applications choose their own keys; the runtime rejects
// this prefix in SystemImage).
const (
	sysPrefix     = "__sys/"
	sysKeyCursor  = sysPrefix + "cursor"
	sysKeyItin    = sysPrefix + "itinerary"
	sysKeyStepSeq = sysPrefix + "stepseq"
	sysKeyWRO     = sysPrefix + "wro"
)

// SystemImage returns the SRO snapshot augmented with the system state
// (cursor, itinerary, step counter); this is the image savepoint entries
// store.
func (a *Agent) SystemImage() (map[string][]byte, error) {
	img := a.SRO.Snapshot()
	for k := range img {
		if len(k) >= len(sysPrefix) && k[:len(sysPrefix)] == sysPrefix {
			return nil, fmt.Errorf("agent %s: reserved SRO key %q", a.ID, k)
		}
	}
	cur, err := wire.Encode(a.Cursor)
	if err != nil {
		return nil, err
	}
	itin, err := wire.Encode(a.Itin)
	if err != nil {
		return nil, err
	}
	img[sysKeyCursor] = cur
	img[sysKeyItin] = itin
	// The step counter takes the tagged-scalar fast path; RestoreSystemImage
	// still decodes gob-encoded counters from older savepoint images.
	img[sysKeyStepSeq] = wire.EncodeInt64(int64(a.StepSeq))
	return img, nil
}

// SystemImageWithWRO is SystemImage plus a before-image of the weakly
// reversible objects. The paper argues (§2, §4.1) that restoring WROs from
// images is WRONG — compensation produces information (refund notes,
// replacement cash) that an image restore would erase, and image-restored
// cash double-spends. This method exists only for the saga-style baseline
// (DESIGN.md S16b) that demonstrates the failure; the real mechanism never
// calls it.
func (a *Agent) SystemImageWithWRO() (map[string][]byte, error) {
	img, err := a.SystemImage()
	if err != nil {
		return nil, err
	}
	wro, err := wire.Encode(a.WRO.Snapshot())
	if err != nil {
		return nil, err
	}
	img[sysKeyWRO] = wro
	return img, nil
}

// RestoreSystemImage restores the SRO space and the system state from a
// savepoint image produced by SystemImage.
func (a *Agent) RestoreSystemImage(img map[string][]byte) error {
	raw, ok := img[sysKeyCursor]
	if !ok {
		return fmt.Errorf("agent %s: savepoint image lacks system state", a.ID)
	}
	// Decode into fresh values: gob omits zero-valued fields at encode
	// time, so decoding into the live (non-zero) fields would merge
	// instead of replace.
	var cursor itinerary.Cursor
	if err := wire.Decode(raw, &cursor); err != nil {
		return err
	}
	var itin itinerary.Itinerary
	if err := wire.Decode(img[sysKeyItin], &itin); err != nil {
		return err
	}
	var seq int
	if v, ok := wire.DecodeInt64(img[sysKeyStepSeq]); ok {
		seq = int(v)
	} else if err := wire.Decode(img[sysKeyStepSeq], &seq); err != nil {
		return err
	}
	a.Cursor = cursor
	a.Itin = &itin
	a.StepSeq = seq
	if wroRaw, ok := img[sysKeyWRO]; ok {
		// Saga-baseline image (SystemImageWithWRO): restore the WROs
		// from the before-image — deliberately wrong per §4.1, kept for
		// the S16b demonstration.
		var wroImg map[string][]byte
		if err := wire.Decode(wroRaw, &wroImg); err != nil {
			return err
		}
		a.WRO.Restore(wroImg)
	}
	app := make(map[string][]byte, len(img))
	for k, v := range img {
		if len(k) >= len(sysPrefix) && k[:len(sysPrefix)] == sysPrefix {
			continue
		}
		app[k] = v
	}
	a.SRO.Restore(app)
	return nil
}

// Encode serializes the agent (gob).
func (a *Agent) Encode() ([]byte, error) { return wire.Encode(a) }

// Decode deserializes an agent produced by Encode.
func Decode(data []byte) (*Agent, error) {
	var a Agent
	if err := wire.Decode(data, &a); err != nil {
		return nil, err
	}
	if a.SRO == nil {
		a.SRO = NewSpace()
	}
	if a.WRO == nil {
		a.WRO = NewSpace()
	}
	if a.Log == nil {
		a.Log = &core.Log{}
	}
	return &a, nil
}
