package agent

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/itinerary"
)

func testItinerary(t *testing.T) *itinerary.Itinerary {
	t.Helper()
	it, err := itinerary.New(&itinerary.Sub{ID: "s", Entries: []itinerary.Entry{
		itinerary.Step{Method: "m1", Loc: "n1"},
		itinerary.Step{Method: "m2", Loc: "n2"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	return it
}

func TestSpaceSetGet(t *testing.T) {
	s := NewSpace()
	if err := s.Set("n", int64(42)); err != nil {
		t.Fatal(err)
	}
	var n int64
	ok, err := s.Get("n", &n)
	if err != nil || !ok || n != 42 {
		t.Errorf("Get = %d, %v, %v", n, ok, err)
	}
	if ok, err := s.Get("missing", &n); err != nil || ok {
		t.Errorf("missing key: %v, %v", ok, err)
	}
	if err := s.MustGet("missing", &n); err == nil {
		t.Error("MustGet on missing key succeeded")
	}
	if has, _ := s.Has("n"); !has {
		t.Error("Has(n) = false")
	}
	if err := s.Delete("n"); err != nil {
		t.Fatal(err)
	}
	if has, _ := s.Has("n"); has {
		t.Error("key survived Delete")
	}
}

func TestSpaceKeysSorted(t *testing.T) {
	s := NewSpace()
	for _, k := range []string{"c", "a", "b"} {
		if err := s.Set(k, k); err != nil {
			t.Fatal(err)
		}
	}
	keys, err := s.Keys()
	if err != nil || !reflect.DeepEqual(keys, []string{"a", "b", "c"}) {
		t.Errorf("Keys = %v, %v", keys, err)
	}
}

func TestSpaceSnapshotRestoreDeepCopy(t *testing.T) {
	s := NewSpace()
	if err := s.Set("k", "original"); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	if err := s.Set("k", "changed"); err != nil {
		t.Fatal(err)
	}
	// Snapshot unaffected by later writes.
	s2 := NewSpace()
	s2.Restore(snap)
	var v string
	if err := s2.MustGet("k", &v); err != nil || v != "original" {
		t.Errorf("restored = %q, %v", v, err)
	}
	// Mutating the snapshot after Restore must not affect the space.
	snap["k"][0] = 'X'
	if err := s2.MustGet("k", &v); err != nil || v != "original" {
		t.Errorf("restore aliases snapshot: %q", v)
	}
}

func TestSpaceFreeze(t *testing.T) {
	s := NewSpace()
	if err := s.Set("k", 1); err != nil {
		t.Fatal(err)
	}
	s.Freeze(true)
	var n int
	if _, err := s.Get("k", &n); !errors.Is(err, ErrFrozen) {
		t.Errorf("Get while frozen: %v, want ErrFrozen", err)
	}
	if err := s.Set("k", 2); !errors.Is(err, ErrFrozen) {
		t.Errorf("Set while frozen: %v, want ErrFrozen", err)
	}
	if err := s.Delete("k"); !errors.Is(err, ErrFrozen) {
		t.Errorf("Delete while frozen: %v, want ErrFrozen", err)
	}
	if _, err := s.Keys(); !errors.Is(err, ErrFrozen) {
		t.Errorf("Keys while frozen: %v, want ErrFrozen", err)
	}
	// Snapshot is a system operation and still works.
	if snap := s.Snapshot(); len(snap) != 1 {
		t.Error("Snapshot blocked by freeze")
	}
	s.Freeze(false)
	if _, err := s.Get("k", &n); err != nil {
		t.Errorf("Get after unfreeze: %v", err)
	}
}

func TestAgentNew(t *testing.T) {
	a, entered, err := New("a1", "owner", testItinerary(t))
	if err != nil {
		t.Fatal(err)
	}
	if a.ID != "a1" || a.Owner != "owner" {
		t.Errorf("agent = %+v", a)
	}
	if !reflect.DeepEqual(entered, []string{"s"}) {
		t.Errorf("entered = %v", entered)
	}
	if _, _, err := New("", "o", testItinerary(t)); err == nil {
		t.Error("empty ID accepted")
	}
}

func TestSystemImageRoundTrip(t *testing.T) {
	a, _, err := New("a1", "o", testItinerary(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.SRO.Set("user", "data"); err != nil {
		t.Fatal(err)
	}
	a.StepSeq = 7
	img, err := a.SystemImage()
	if err != nil {
		t.Fatal(err)
	}

	// Diverge, then restore.
	if err := a.SRO.Set("user", "changed"); err != nil {
		t.Fatal(err)
	}
	if err := a.SRO.Set("extra", 1); err != nil {
		t.Fatal(err)
	}
	a.StepSeq = 99
	a.Cursor = itinerary.Cursor{Done: true}

	if err := a.RestoreSystemImage(img); err != nil {
		t.Fatal(err)
	}
	var v string
	if err := a.SRO.MustGet("user", &v); err != nil || v != "data" {
		t.Errorf("user = %q, %v", v, err)
	}
	if has, _ := a.SRO.Has("extra"); has {
		t.Error("extra key survived restore")
	}
	if a.StepSeq != 7 {
		t.Errorf("StepSeq = %d, want 7", a.StepSeq)
	}
	if a.Cursor.Done {
		t.Error("cursor not restored")
	}
	step, err := a.Itin.StepAt(a.Cursor)
	if err != nil || step.Method != "m1" {
		t.Errorf("restored cursor at %+v, %v", step, err)
	}
}

func TestSystemImageWithWRO(t *testing.T) {
	a, _, err := New("a1", "o", testItinerary(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.WRO.Set("cash", 500); err != nil {
		t.Fatal(err)
	}
	img, err := a.SystemImageWithWRO()
	if err != nil {
		t.Fatal(err)
	}
	// Change the WRO, then restore the saga-style image: the WRO is
	// (wrongly, per §4.1 — this mode exists for the baseline) reset.
	if err := a.WRO.Set("cash", 1); err != nil {
		t.Fatal(err)
	}
	if err := a.RestoreSystemImage(img); err != nil {
		t.Fatal(err)
	}
	var cash int
	if err := a.WRO.MustGet("cash", &cash); err != nil || cash != 500 {
		t.Errorf("cash = %d, %v; want 500 (image restored)", cash, err)
	}

	// A plain SystemImage must NOT touch the WRO on restore.
	img2, err := a.SystemImage()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.WRO.Set("cash", 7); err != nil {
		t.Fatal(err)
	}
	if err := a.RestoreSystemImage(img2); err != nil {
		t.Fatal(err)
	}
	if err := a.WRO.MustGet("cash", &cash); err != nil || cash != 7 {
		t.Errorf("cash = %d, %v; want 7 (WRO untouched by normal restore)", cash, err)
	}
}

func TestSystemImageRejectsReservedKeys(t *testing.T) {
	a, _, err := New("a1", "o", testItinerary(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.SRO.Set("__sys/evil", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := a.SystemImage(); err == nil {
		t.Error("reserved key accepted in SRO")
	}
}

func TestRestoreSystemImageRejectsPlainImage(t *testing.T) {
	a, _, err := New("a1", "o", testItinerary(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.RestoreSystemImage(map[string][]byte{"k": []byte("v")}); err == nil {
		t.Error("image without system state accepted")
	}
}

func TestAgentEncodeDecode(t *testing.T) {
	a, _, err := New("a1", "owner", testItinerary(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.SRO.Set("s", "sro"); err != nil {
		t.Fatal(err)
	}
	if err := a.WRO.Set("w", "wro"); err != nil {
		t.Fatal(err)
	}
	a.StepSeq = 3
	data, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != "a1" || got.StepSeq != 3 {
		t.Errorf("decoded = %+v", got)
	}
	var v string
	if err := got.SRO.MustGet("s", &v); err != nil || v != "sro" {
		t.Errorf("SRO lost: %q, %v", v, err)
	}
	if err := got.WRO.MustGet("w", &v); err != nil || v != "wro" {
		t.Errorf("WRO lost: %q, %v", v, err)
	}
	step, err := got.Itin.StepAt(got.Cursor)
	if err != nil || step.Method != "m1" {
		t.Errorf("itinerary lost: %+v, %v", step, err)
	}
}

func TestRegistryDuplicates(t *testing.T) {
	r := NewRegistry()
	if err := r.RegisterStep("s", func(StepContext) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterStep("s", func(StepContext) error { return nil }); err == nil {
		t.Error("duplicate step accepted")
	}
	if err := r.RegisterComp("c", func(CompContext) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterComp("c", func(CompContext) error { return nil }); err == nil {
		t.Error("duplicate comp accepted")
	}
	if _, ok := r.Step("s"); !ok {
		t.Error("registered step not found")
	}
	if _, ok := r.Comp("missing"); ok {
		t.Error("unregistered comp found")
	}
}

func TestRollbackRequestError(t *testing.T) {
	err := error(&RollbackRequest{SpID: "sp1"})
	var rr *RollbackRequest
	if !errors.As(err, &rr) || rr.SpID != "sp1" {
		t.Errorf("errors.As failed: %v", err)
	}
}

func TestRegistryStepHints(t *testing.T) {
	r := NewRegistry()
	if r.HasHints() {
		t.Error("empty registry claims hints")
	}
	if err := r.RegisterStepHints("nope", StaticHint("bank")); err == nil {
		t.Error("hint for unregistered step accepted")
	}
	if err := r.RegisterStep("s", func(StepContext) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterStepHints("s", StaticHint("bank", "shop")); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterStepHints("s", StaticHint("bank")); err == nil {
		t.Error("duplicate hint accepted")
	}
	if !r.HasHints() {
		t.Error("HasHints false after registration")
	}
	h, ok := r.StepHintFor("s")
	if !ok {
		t.Fatal("hint not resolvable")
	}
	keys := h(nil, itinerary.Step{})
	if len(keys) != 2 || keys[0] != "bank" || keys[1] != "shop" {
		t.Errorf("hint keys = %v", keys)
	}
	if _, ok := r.StepHintFor("other"); ok {
		t.Error("hint resolved for unknown method")
	}
}
