package itinerary

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/wire"
)

// figure6 builds the paper's sample itinerary (Figure 6):
//
//	I{ SI1{s1,s2,s3}, SI2{s7,s8}, SI3{ s6, SI4{s5,s4}, SI5{s9,s10} } }
//
// with the execution order of the §4.4.2 walk-through (SI3 begins with s6,
// then SI4 executes s5 before s4).
func figure6(t *testing.T) *Itinerary {
	t.Helper()
	it, err := New(
		&Sub{ID: "SI1", Entries: []Entry{
			Step{Method: "s1", Loc: "n1"},
			Step{Method: "s2", Loc: "n2"},
			Step{Method: "s3", Loc: "n3"},
		}},
		&Sub{ID: "SI2", Entries: []Entry{
			Step{Method: "s7", Loc: "n7"},
			Step{Method: "s8", Loc: "n8"},
		}},
		&Sub{ID: "SI3", Entries: []Entry{
			Step{Method: "s6", Loc: "n6"},
			&Sub{ID: "SI4", Entries: []Entry{
				Step{Method: "s5", Loc: "n5"},
				Step{Method: "s4", Loc: "n4"},
			}},
			&Sub{ID: "SI5", Entries: []Entry{
				Step{Method: "s9", Loc: "n9"},
				Step{Method: "s10", Loc: "n10"},
			}},
		}},
	)
	if err != nil {
		t.Fatal(err)
	}
	return it
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		subs []*Sub
	}{
		{"empty main", nil},
		{"empty sub", []*Sub{{ID: "a"}}},
		{"no sub id", []*Sub{{Entries: []Entry{Step{Method: "m", Loc: "l"}}}}},
		{"duplicate ids", []*Sub{
			{ID: "a", Entries: []Entry{Step{Method: "m", Loc: "l"}}},
			{ID: "a", Entries: []Entry{Step{Method: "m", Loc: "l"}}},
		}},
		{"nested duplicate", []*Sub{
			{ID: "a", Entries: []Entry{&Sub{ID: "a", Entries: []Entry{Step{Method: "m", Loc: "l"}}}}},
		}},
		{"step without loc", []*Sub{{ID: "a", Entries: []Entry{Step{Method: "m"}}}}},
		{"step without method", []*Sub{{ID: "a", Entries: []Entry{Step{Loc: "l"}}}}},
		{"nil sub", []*Sub{nil}},
	}
	for _, c := range cases {
		if _, err := New(c.subs...); err == nil {
			t.Errorf("%s: validation passed, want error", c.name)
		}
	}
}

func TestStartEntersNestedSubs(t *testing.T) {
	it, err := New(&Sub{ID: "outer", Entries: []Entry{
		&Sub{ID: "inner", Entries: []Entry{Step{Method: "m", Loc: "l"}}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	c, entered, err := it.Start()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(entered, []string{"outer", "inner"}) {
		t.Errorf("entered = %v, want [outer inner]", entered)
	}
	step, err := it.StepAt(c)
	if err != nil || step.Method != "m" {
		t.Errorf("first step = %+v, %v", step, err)
	}
}

// TestFullTraversal walks Figure 6 end to end, recording steps and
// boundary events.
func TestFullTraversal(t *testing.T) {
	it := figure6(t)
	c, entered, err := it.Start()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(entered, []string{"SI1"}) {
		t.Errorf("initial entered = %v", entered)
	}
	var steps []string
	type event struct {
		after   string
		left    []string
		topLeft string
		entered []string
	}
	var events []event
	for !c.Done {
		step, err := it.StepAt(c)
		if err != nil {
			t.Fatal(err)
		}
		steps = append(steps, step.Method)
		mv, err := it.Advance(c)
		if err != nil {
			t.Fatal(err)
		}
		if len(mv.Left)+len(mv.Entered) > 0 || mv.TopLevelLeft != "" {
			events = append(events, event{after: step.Method, left: mv.Left, topLeft: mv.TopLevelLeft, entered: mv.Entered})
		}
		c = mv.Next
	}
	wantSteps := []string{"s1", "s2", "s3", "s7", "s8", "s6", "s5", "s4", "s9", "s10"}
	if !reflect.DeepEqual(steps, wantSteps) {
		t.Errorf("steps = %v, want %v", steps, wantSteps)
	}
	wantEvents := []event{
		{after: "s3", left: []string{"SI1"}, topLeft: "SI1", entered: []string{"SI2"}},
		{after: "s8", left: []string{"SI2"}, topLeft: "SI2", entered: []string{"SI3"}},
		{after: "s6", entered: []string{"SI4"}},
		{after: "s4", left: []string{"SI4"}, entered: []string{"SI5"}},
		{after: "s10", left: []string{"SI5", "SI3"}, topLeft: "SI3"},
	}
	if !reflect.DeepEqual(events, wantEvents) {
		t.Errorf("events:\n got %+v\nwant %+v", events, wantEvents)
	}
}

func TestEnclosingSubs(t *testing.T) {
	it := figure6(t)
	// Position at s4 (inside SI4 inside SI3).
	c, err := it.SubStart("SI4")
	if err != nil {
		t.Fatal(err)
	}
	mv, err := it.Advance(c) // s5 -> s4
	if err != nil {
		t.Fatal(err)
	}
	ids, err := it.EnclosingSubs(mv.Next)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ids, []string{"SI3", "SI4"}) {
		t.Errorf("enclosing = %v, want [SI3 SI4]", ids)
	}
}

func TestSubStart(t *testing.T) {
	it := figure6(t)
	cases := map[string]string{
		"SI1": "s1",
		"SI2": "s7",
		"SI3": "s6",
		"SI4": "s5",
		"SI5": "s9",
	}
	for id, wantStep := range cases {
		c, err := it.SubStart(id)
		if err != nil {
			t.Fatalf("SubStart(%s): %v", id, err)
		}
		step, err := it.StepAt(c)
		if err != nil || step.Method != wantStep {
			t.Errorf("SubStart(%s) -> %s, %v; want %s", id, step.Method, err, wantStep)
		}
	}
	if _, err := it.SubStart("ghost"); err == nil {
		t.Error("SubStart(ghost) succeeded")
	}
}

func TestIsTopLevel(t *testing.T) {
	it := figure6(t)
	for id, want := range map[string]bool{"SI1": true, "SI2": true, "SI3": true, "SI4": false, "SI5": false} {
		if got := it.IsTopLevel(id); got != want {
			t.Errorf("IsTopLevel(%s) = %v, want %v", id, got, want)
		}
	}
}

func TestStepAtErrors(t *testing.T) {
	it := figure6(t)
	if _, err := it.StepAt(Cursor{Done: true}); !errors.Is(err, ErrDone) {
		t.Errorf("done cursor: err = %v, want ErrDone", err)
	}
	if _, err := it.StepAt(Cursor{Path: []int{99}}); !errors.Is(err, ErrInvalidPath) {
		t.Errorf("bad path: err = %v, want ErrInvalidPath", err)
	}
	// Path addressing a sub, not a step.
	if _, err := it.StepAt(Cursor{Path: []int{2, 1}}); !errors.Is(err, ErrInvalidPath) {
		t.Errorf("sub path: err = %v, want ErrInvalidPath", err)
	}
}

func TestAdvanceOnDone(t *testing.T) {
	it := figure6(t)
	if _, err := it.Advance(Cursor{Done: true}); !errors.Is(err, ErrDone) {
		t.Errorf("err = %v, want ErrDone", err)
	}
}

func TestGobRoundTrip(t *testing.T) {
	it := figure6(t)
	data, err := wire.Encode(it)
	if err != nil {
		t.Fatal(err)
	}
	var got Itinerary
	if err := wire.Decode(data, &got); err != nil {
		t.Fatal(err)
	}
	c, entered, err := got.Start()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(entered, []string{"SI1"}) {
		t.Errorf("entered after roundtrip = %v", entered)
	}
	step, err := got.StepAt(c)
	if err != nil || step.Method != "s1" {
		t.Errorf("first step after roundtrip = %+v, %v", step, err)
	}
	if got.IsTopLevel("SI4") {
		t.Error("structure corrupted by roundtrip")
	}
}

func TestStepAlternativesPreserved(t *testing.T) {
	it, err := New(&Sub{ID: "s", Entries: []Entry{
		Step{Method: "m", Loc: "primary", Alt: []string{"alt1", "alt2"}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	c, _, err := it.Start()
	if err != nil {
		t.Fatal(err)
	}
	step, err := it.StepAt(c)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(step.Alt, []string{"alt1", "alt2"}) {
		t.Errorf("Alt = %v", step.Alt)
	}
}
