// Package itinerary implements the hierarchical itinerary concept of
// §4.4.2 (and [14]): an itinerary describes which step an agent performs on
// which node and in which order, structured into nested sub-itineraries
// that double as rollback scopes.
//
// Rules from the paper:
//
//   - The main itinerary contains only sub-itineraries, no step entries.
//   - Entering a sub-itinerary automatically constitutes an agent
//     savepoint identified by the sub-itinerary's ID.
//   - A rollback always rolls back a complete sub-itinerary — the one
//     currently executed or an enclosing one.
//   - When a sub-itinerary completes, its savepoint (but not the
//     operation entries) can be removed from the rollback log.
//   - When a sub-itinerary directly contained in the main itinerary
//     completes, the whole rollback log is discarded; the agent can never
//     be rolled back past that point.
//
// The package is pure data + navigation; the node runtime drives the
// cursor and performs the log maintenance the events call for.
package itinerary

import (
	"errors"
	"fmt"

	"repro/internal/wire"
)

// Entry is one element of a (sub-)itinerary: either a Step or a nested
// *Sub.
type Entry interface {
	isEntry()
}

// Step is a step entry (meth()/loc): execute the registered step method on
// the given node. Alt lists nodes that may alternatively execute the step
// (and its compensation) when Loc is unreachable — the fault-tolerance hook
// of §4.3's discussion.
type Step struct {
	Method string
	Loc    string
	Alt    []string
}

// Sub is a nested sub-itinerary. Its ID names the automatic savepoint
// taken when the agent enters it and is the target of rollbacks of this
// scope. IDs must be unique within one itinerary.
//
// AnyOrder declares the order between the entries as *partial* (§4.4.2):
// the system chooses a concrete order when the sub is entered (see
// EnterHook / LocalityOrder in anyorder.go).
type Sub struct {
	ID       string
	Entries  []Entry
	AnyOrder bool
}

func (Step) isEntry() {}
func (*Sub) isEntry() {}

var _ = registerTypes()

func registerTypes() struct{} {
	wire.RegisterName("itin.Step", Step{})
	wire.RegisterName("itin.Sub", &Sub{})
	return struct{}{}
}

// Errors of the itinerary layer.
var (
	ErrDone        = errors.New("itinerary: execution finished")
	ErrInvalidPath = errors.New("itinerary: invalid cursor path")
)

// Itinerary is the main itinerary of an agent. It travels with the agent
// (it is data, not code) and is serialized into savepoint images so that a
// rollback also rolls back itinerary adaptations.
type Itinerary struct {
	Subs []*Sub
}

// New builds and validates a main itinerary from top-level sub-itineraries.
func New(subs ...*Sub) (*Itinerary, error) {
	it := &Itinerary{Subs: subs}
	if err := it.Validate(); err != nil {
		return nil, err
	}
	return it, nil
}

// Validate checks the structural rules: at least one top-level
// sub-itinerary, no step entries in the main itinerary (enforced by
// construction), unique sub IDs, no empty subs, and steps with methods and
// locations.
func (it *Itinerary) Validate() error {
	if len(it.Subs) == 0 {
		return errors.New("itinerary: main itinerary has no sub-itineraries")
	}
	seen := make(map[string]bool)
	for _, sub := range it.Subs {
		if err := validateSub(sub, seen); err != nil {
			return err
		}
	}
	return nil
}

func validateSub(sub *Sub, seen map[string]bool) error {
	if sub == nil {
		return errors.New("itinerary: nil sub-itinerary")
	}
	if sub.ID == "" {
		return errors.New("itinerary: sub-itinerary without ID")
	}
	if seen[sub.ID] {
		return fmt.Errorf("itinerary: duplicate sub-itinerary ID %q", sub.ID)
	}
	seen[sub.ID] = true
	if len(sub.Entries) == 0 {
		return fmt.Errorf("itinerary: sub-itinerary %q is empty", sub.ID)
	}
	for _, e := range sub.Entries {
		switch v := e.(type) {
		case Step:
			if v.Method == "" || v.Loc == "" {
				return fmt.Errorf("itinerary: step in %q missing method or location", sub.ID)
			}
		case *Sub:
			if err := validateSub(v, seen); err != nil {
				return err
			}
		default:
			return fmt.Errorf("itinerary: unknown entry type %T in %q", e, sub.ID)
		}
	}
	return nil
}

// Cursor identifies the next step to execute as an index path: Path[0]
// indexes Itinerary.Subs, each following element indexes the Entries of
// the sub at the previous level. Done marks a finished execution. Cursor
// is a value type and gob-serializable.
type Cursor struct {
	Path []int
	Done bool
}

// entryAt resolves the entry at path; path must address a valid entry.
func (it *Itinerary) entryAt(path []int) (Entry, error) {
	if len(path) == 0 {
		return nil, ErrInvalidPath
	}
	if path[0] < 0 || path[0] >= len(it.Subs) {
		return nil, fmt.Errorf("%w: top index %d", ErrInvalidPath, path[0])
	}
	var cur Entry = it.Subs[path[0]]
	for _, idx := range path[1:] {
		sub, ok := cur.(*Sub)
		if !ok {
			return nil, fmt.Errorf("%w: descends into step", ErrInvalidPath)
		}
		if idx < 0 || idx >= len(sub.Entries) {
			return nil, fmt.Errorf("%w: index %d in %q", ErrInvalidPath, idx, sub.ID)
		}
		cur = sub.Entries[idx]
	}
	return cur, nil
}

// StepAt returns the step entry at the cursor.
func (it *Itinerary) StepAt(c Cursor) (Step, error) {
	if c.Done {
		return Step{}, ErrDone
	}
	e, err := it.entryAt(c.Path)
	if err != nil {
		return Step{}, err
	}
	step, ok := e.(Step)
	if !ok {
		return Step{}, fmt.Errorf("%w: cursor addresses a sub-itinerary", ErrInvalidPath)
	}
	return step, nil
}

func errEmptySub(id string) error {
	return fmt.Errorf("itinerary: sub-itinerary %q is empty", id)
}

// descendFirst extends path down to the first step leaf, returning the
// leaf path and the IDs of subs entered on the way (outermost first).
func descendFirst(e Entry, path []int) ([]int, []string, error) {
	return descendFirstHook(e, path, nil)
}

// Start returns the cursor of the first step and the sub IDs entered to
// reach it (outermost first — these all need savepoints before the first
// step runs).
func (it *Itinerary) Start() (Cursor, []string, error) {
	return it.StartHook(nil)
}

// Move describes the sub-itinerary boundary events of one cursor advance.
type Move struct {
	// Next is the cursor of the next step (Done when execution ends).
	Next Cursor
	// Left lists sub IDs whose execution completed, innermost first.
	// For each: remove its savepoint from the log; if it is a top-level
	// sub (TopLevelLeft), discard the whole log instead (§4.4.2).
	Left []string
	// TopLevelLeft is the completed top-level sub, if any ("" otherwise).
	TopLevelLeft string
	// Entered lists sub IDs newly entered, outermost first. Each needs a
	// savepoint before the next step runs; all but the first of a run
	// entered without an intervening step share the first one's state
	// (special savepoints, §4.4.2).
	Entered []string
}

// Advance computes the move from cursor c (which must address a step) to
// the following step in depth-first order.
func (it *Itinerary) Advance(c Cursor) (Move, error) {
	return it.AdvanceHook(c, nil)
}

// EnclosingSubs returns the IDs of the sub-itineraries containing the
// cursor, outermost first. The last element is the innermost (current)
// sub-itinerary — the default rollback scope.
func (it *Itinerary) EnclosingSubs(c Cursor) ([]string, error) {
	if c.Done || len(c.Path) == 0 {
		return nil, ErrDone
	}
	var ids []string
	for i := 1; i <= len(c.Path); i++ {
		e, err := it.entryAt(c.Path[:i])
		if err != nil {
			return nil, err
		}
		if sub, ok := e.(*Sub); ok {
			ids = append(ids, sub.ID)
		}
	}
	return ids, nil
}

// SubStart returns the cursor of the first step of the sub-itinerary with
// the given ID (used to resume execution after a rollback to that sub's
// savepoint).
func (it *Itinerary) SubStart(id string) (Cursor, error) {
	path := findSub(it.Subs, []int{}, id)
	if path == nil {
		return Cursor{}, fmt.Errorf("itinerary: no sub-itinerary %q", id)
	}
	e, err := it.entryAt(path)
	if err != nil {
		return Cursor{}, err
	}
	leafPath, _, err := descendFirst(e, path)
	if err != nil {
		return Cursor{}, err
	}
	return Cursor{Path: leafPath}, nil
}

// IsTopLevel reports whether id names a sub-itinerary directly contained
// in the main itinerary.
func (it *Itinerary) IsTopLevel(id string) bool {
	for _, sub := range it.Subs {
		if sub.ID == id {
			return true
		}
	}
	return false
}

func findSub(subs []*Sub, prefix []int, id string) []int {
	for i, sub := range subs {
		path := append(append([]int(nil), prefix...), i)
		if sub.ID == id {
			return path
		}
		if p := findSubIn(sub, path, id); p != nil {
			return p
		}
	}
	return nil
}

func findSubIn(sub *Sub, prefix []int, id string) []int {
	for j, e := range sub.Entries {
		s, ok := e.(*Sub)
		if !ok {
			continue
		}
		entryPath := append(append([]int(nil), prefix...), j)
		if s.ID == id {
			return entryPath
		}
		if p := findSubIn(s, entryPath, id); p != nil {
			return p
		}
	}
	return nil
}
