package itinerary

// Partial order support (§4.4.2: "The order defined between the entries of
// a (sub-)itinerary may be partial, allowing the system to choose which
// entry to execute as the next entry").
//
// A Sub with AnyOrder=true leaves the execution order of its entries to
// the system. The runtime fixes a concrete order the moment the sub is
// entered, by reordering its Entries in place — legal because the
// itinerary is agent *data* ("may be adapted during the execution", §2)
// and the reordered itinerary is captured in the very savepoint that
// guards the sub, so a rollback restores both position and chosen order
// consistently.
//
// The system's choice is delegated to an EnterHook; the node runtime
// supplies a locality-aware one (visit entries whose first step is on the
// current node first, then greedily by hop count).

// EnterHook is invoked when execution is about to descend into a sub,
// before its first entry is chosen. The hook may permute sub.Entries; it
// must not add or remove entries.
type EnterHook func(sub *Sub)

// StartHook is Start with an EnterHook applied to every sub entered on the
// way to the first step.
func (it *Itinerary) StartHook(hook EnterHook) (Cursor, []string, error) {
	if err := it.Validate(); err != nil {
		return Cursor{}, nil, err
	}
	path, entered, err := descendFirstHook(it.Subs[0], []int{0}, hook)
	if err != nil {
		return Cursor{}, nil, err
	}
	return Cursor{Path: path}, entered, nil
}

// AdvanceHook is Advance with an EnterHook applied to every sub the move
// descends into.
func (it *Itinerary) AdvanceHook(c Cursor, hook EnterHook) (Move, error) {
	if c.Done {
		return Move{}, ErrDone
	}
	if _, err := it.StepAt(c); err != nil {
		return Move{}, err
	}
	var move Move
	path := append([]int(nil), c.Path...)
	for len(path) > 1 {
		parentEntry, err := it.entryAt(path[:len(path)-1])
		if err != nil {
			return Move{}, err
		}
		parent := parentEntry.(*Sub)
		idx := path[len(path)-1]
		if idx+1 < len(parent.Entries) {
			next := parent.Entries[idx+1]
			leafPath, entered, err := descendFirstHook(next, append(path[:len(path)-1], idx+1), hook)
			if err != nil {
				return Move{}, err
			}
			move.Next = Cursor{Path: leafPath}
			move.Entered = entered
			return move, nil
		}
		move.Left = append(move.Left, parent.ID)
		if len(path) == 2 {
			move.TopLevelLeft = parent.ID
		}
		path = path[:len(path)-1]
	}
	topIdx := path[0]
	if topIdx+1 < len(it.Subs) {
		leafPath, entered, err := descendFirstHook(it.Subs[topIdx+1], []int{topIdx + 1}, hook)
		if err != nil {
			return Move{}, err
		}
		move.Next = Cursor{Path: leafPath}
		move.Entered = entered
		return move, nil
	}
	move.Next = Cursor{Done: true}
	return move, nil
}

// descendFirstHook is descendFirst with the hook applied at each sub
// before its first entry is selected.
func descendFirstHook(e Entry, path []int, hook EnterHook) ([]int, []string, error) {
	var entered []string
	for {
		sub, ok := e.(*Sub)
		if !ok {
			return path, entered, nil
		}
		if hook != nil && sub.AnyOrder {
			hook(sub)
		}
		entered = append(entered, sub.ID)
		if len(sub.Entries) == 0 {
			return nil, nil, errEmptySub(sub.ID)
		}
		path = append(path, 0)
		e = sub.Entries[0]
	}
}

// FirstLoc returns the node of the first step reached when executing e
// (descending into nested subs); used by ordering heuristics.
func FirstLoc(e Entry) string {
	for {
		switch v := e.(type) {
		case Step:
			return v.Loc
		case *Sub:
			if len(v.Entries) == 0 {
				return ""
			}
			e = v.Entries[0]
		default:
			return ""
		}
	}
}

// LocalityOrder returns an EnterHook that greedily orders a sub's entries
// as a nearest-neighbour tour over node names starting from the given
// node: entries whose first step runs on the "current" position come
// first, minimizing agent transfers across the sub. Ties keep the
// original relative order (stable).
func LocalityOrder(startNode string) EnterHook {
	return func(sub *Sub) {
		remaining := append([]Entry(nil), sub.Entries...)
		ordered := make([]Entry, 0, len(remaining))
		current := startNode
		for len(remaining) > 0 {
			pick := 0
			for i, e := range remaining {
				if FirstLoc(e) == current {
					pick = i
					break
				}
			}
			chosen := remaining[pick]
			ordered = append(ordered, chosen)
			remaining = append(remaining[:pick], remaining[pick+1:]...)
			if loc := lastLoc(chosen); loc != "" {
				current = loc
			}
		}
		copy(sub.Entries, ordered)
	}
}

// lastLoc returns the node of the final step of e.
func lastLoc(e Entry) string {
	for {
		switch v := e.(type) {
		case Step:
			return v.Loc
		case *Sub:
			if len(v.Entries) == 0 {
				return ""
			}
			e = v.Entries[len(v.Entries)-1]
		default:
			return ""
		}
	}
}
