package itinerary

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomItinerary builds a random valid itinerary and returns it with the
// number of step entries it contains.
func randomItinerary(r *rand.Rand) (*Itinerary, int) {
	var stepCount int
	var subSeq int
	var build func(depth int) *Sub
	build = func(depth int) *Sub {
		subSeq++
		sub := &Sub{ID: fmt.Sprintf("sub%d", subSeq), AnyOrder: r.Intn(4) == 0}
		n := 1 + r.Intn(3)
		for i := 0; i < n; i++ {
			if depth < 3 && r.Intn(4) == 0 {
				sub.Entries = append(sub.Entries, build(depth+1))
				continue
			}
			stepCount++
			sub.Entries = append(sub.Entries, Step{
				Method: fmt.Sprintf("m%d", stepCount),
				Loc:    fmt.Sprintf("n%d", r.Intn(4)),
			})
		}
		return sub
	}
	top := 1 + r.Intn(3)
	subs := make([]*Sub, top)
	for i := range subs {
		subs[i] = build(1)
	}
	it, err := New(subs...)
	if err != nil {
		panic(err)
	}
	return it, stepCount
}

// TestPropertyTraversalVisitsEveryStepOnce: any valid itinerary, traversed
// with or without a locality hook, executes every step exactly once and
// balances sub-itinerary enter/leave events.
func TestPropertyTraversalVisitsEveryStepOnce(t *testing.T) {
	err := quick.Check(func(seed int64, useHook bool) bool {
		r := rand.New(rand.NewSource(seed))
		it, want := randomItinerary(r)
		hook := EnterHook(nil)
		if useHook {
			hook = LocalityOrder("n0")
		}
		c, entered, err := it.StartHook(hook)
		if err != nil {
			return false
		}
		seen := make(map[string]bool)
		open := len(entered)
		for !c.Done {
			step, err := it.StepAt(c)
			if err != nil {
				return false
			}
			if seen[step.Method] {
				return false // visited twice
			}
			seen[step.Method] = true
			mv, err := it.AdvanceHook(c, hook)
			if err != nil {
				return false
			}
			open += len(mv.Entered) - len(mv.Left)
			c = mv.Next
		}
		// All steps visited, all subs left.
		return len(seen) == want && open == 0
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

// TestPropertySubStartReachesEveryStepOfSub: for every sub in a random
// itinerary, resuming at SubStart and traversing visits exactly the sub's
// steps before leaving it.
func TestPropertySubStartReachesEveryStepOfSub(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		it, _ := randomItinerary(r)
		var subs []*Sub
		var collect func(s *Sub)
		collect = func(s *Sub) {
			subs = append(subs, s)
			for _, e := range s.Entries {
				if nested, ok := e.(*Sub); ok {
					collect(nested)
				}
			}
		}
		for _, s := range it.Subs {
			collect(s)
		}
		for _, sub := range subs {
			want := countSteps(sub)
			c, err := it.SubStart(sub.ID)
			if err != nil {
				return false
			}
			visited := 0
			for !c.Done {
				enclosing, err := it.EnclosingSubs(c)
				if err != nil {
					return false
				}
				inside := false
				for _, id := range enclosing {
					if id == sub.ID {
						inside = true
					}
				}
				if !inside {
					break
				}
				visited++
				mv, err := it.Advance(c)
				if err != nil {
					return false
				}
				c = mv.Next
			}
			if visited != want {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Error(err)
	}
}

func countSteps(s *Sub) int {
	n := 0
	for _, e := range s.Entries {
		switch v := e.(type) {
		case Step:
			n++
		case *Sub:
			n += countSteps(v)
		}
	}
	return n
}
