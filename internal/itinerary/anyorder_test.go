package itinerary

import (
	"reflect"
	"testing"
)

func TestFirstLocAndLastLoc(t *testing.T) {
	step := Step{Method: "m", Loc: "n1"}
	if got := FirstLoc(step); got != "n1" {
		t.Errorf("FirstLoc(step) = %q", got)
	}
	sub := &Sub{ID: "s", Entries: []Entry{
		Step{Method: "a", Loc: "x"},
		Step{Method: "b", Loc: "y"},
	}}
	if got := FirstLoc(sub); got != "x" {
		t.Errorf("FirstLoc(sub) = %q", got)
	}
	if got := lastLoc(sub); got != "y" {
		t.Errorf("lastLoc(sub) = %q", got)
	}
	nested := &Sub{ID: "outer", Entries: []Entry{sub}}
	if got := FirstLoc(nested); got != "x" {
		t.Errorf("FirstLoc(nested) = %q", got)
	}
}

func TestLocalityOrderPrefersCurrentNode(t *testing.T) {
	sub := &Sub{ID: "s", AnyOrder: true, Entries: []Entry{
		Step{Method: "a", Loc: "n2"},
		Step{Method: "b", Loc: "n3"},
		Step{Method: "c", Loc: "n1"},
		Step{Method: "d", Loc: "n3"},
	}}
	LocalityOrder("n3")(sub)
	var order []string
	for _, e := range sub.Entries {
		order = append(order, e.(Step).Method)
	}
	// Start at n3: pick b (n3), stay n3: pick d (n3), then no n3 entry:
	// fall back to first remaining (a at n2), then c.
	want := []string{"b", "d", "a", "c"}
	if !reflect.DeepEqual(order, want) {
		t.Errorf("order = %v, want %v", order, want)
	}
}

func TestLocalityOrderStableWhenNoMatch(t *testing.T) {
	sub := &Sub{ID: "s", AnyOrder: true, Entries: []Entry{
		Step{Method: "a", Loc: "x"},
		Step{Method: "b", Loc: "y"},
	}}
	LocalityOrder("elsewhere")(sub)
	if sub.Entries[0].(Step).Method != "a" || sub.Entries[1].(Step).Method != "b" {
		t.Errorf("order changed without locality match: %v", sub.Entries)
	}
}

func TestStartHookAppliesOnlyToAnyOrder(t *testing.T) {
	ordered := &Sub{ID: "fixed", Entries: []Entry{
		Step{Method: "a", Loc: "n2"},
		Step{Method: "b", Loc: "n1"},
	}}
	it, err := New(ordered)
	if err != nil {
		t.Fatal(err)
	}
	c, _, err := it.StartHook(LocalityOrder("n1"))
	if err != nil {
		t.Fatal(err)
	}
	step, err := it.StepAt(c)
	if err != nil || step.Method != "a" {
		t.Errorf("fixed-order sub reordered: first step %+v, %v", step, err)
	}
}

func TestAdvanceHookReordersEnteredSub(t *testing.T) {
	it, err := New(&Sub{ID: "outer", Entries: []Entry{
		Step{Method: "start", Loc: "n2"},
		&Sub{ID: "inner", AnyOrder: true, Entries: []Entry{
			Step{Method: "far", Loc: "n9"},
			Step{Method: "near", Loc: "n2"},
		}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	c, _, err := it.Start()
	if err != nil {
		t.Fatal(err)
	}
	// Advancing from "start" (on n2) into the AnyOrder sub with a
	// locality hook for n2 must pick "near" first.
	mv, err := it.AdvanceHook(c, LocalityOrder("n2"))
	if err != nil {
		t.Fatal(err)
	}
	step, err := it.StepAt(mv.Next)
	if err != nil || step.Method != "near" {
		t.Errorf("first step of reordered sub = %+v, %v; want near", step, err)
	}
	if !reflect.DeepEqual(mv.Entered, []string{"inner"}) {
		t.Errorf("entered = %v", mv.Entered)
	}
	// Traverse to completion; both steps must still execute exactly once.
	var seen []string
	cur := mv.Next
	for !cur.Done {
		s, err := it.StepAt(cur)
		if err != nil {
			t.Fatal(err)
		}
		seen = append(seen, s.Method)
		m, err := it.AdvanceHook(cur, LocalityOrder(s.Loc))
		if err != nil {
			t.Fatal(err)
		}
		cur = m.Next
	}
	if !reflect.DeepEqual(seen, []string{"near", "far"}) {
		t.Errorf("traversal = %v", seen)
	}
}
