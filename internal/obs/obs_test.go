package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/trace"
)

func testHandler(healthy bool) (http.Handler, *metrics.Counters, *trace.Tracer) {
	c := &metrics.Counters{}
	c.IncMessages(42)
	c.AddWireBytes("q.prepare", 100)
	var t0 int64
	tr := trace.New("n1", 64, func() int64 { t0 += 10; return t0 })
	tr.Rec(trace.OpAgentStep, "txn-1", "agent-1", "work", "", "", 1)
	tr.Rec(trace.OpTransition, "txn-1", "", "AckReceived", "coord-active", "coord-idle", 2)
	tr.Rec(trace.OpTransition, "txn-2", "", "PrepareReceived", "-", "staged", 1)
	h := Handler(Config{
		Node:     "n1",
		Counters: c,
		Tracer:   tr,
		Healthy:  func() bool { return healthy },
	})
	return h, c, tr
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestMetricsEndpoint(t *testing.T) {
	h, _, _ := testHandler(true)
	rec := get(t, h, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type = %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"repro_messages_total 1",
		"repro_bytes_sent_total 42",
		`repro_wire_bytes_by_kind_total{kind="q.prepare"} 100`,
		`repro_wire_msgs_by_kind_total{kind="q.prepare"} 1`,
		"# TYPE repro_step_latency_seconds summary",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestHealthz(t *testing.T) {
	h, _, _ := testHandler(true)
	rec := get(t, h, "/healthz")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "ok n1") {
		t.Errorf("healthz = %d %q", rec.Code, rec.Body.String())
	}
	h, _, _ = testHandler(false)
	rec = get(t, h, "/healthz")
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("unhealthy status = %d", rec.Code)
	}
}

func TestTraceEndpointFilters(t *testing.T) {
	h, _, _ := testHandler(true)

	decode := func(rec *httptest.ResponseRecorder) []trace.Record {
		t.Helper()
		if rec.Code != http.StatusOK {
			t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
		}
		rs, err := trace.DecodeJSON(rec.Body.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		return rs
	}

	if rs := decode(get(t, h, "/trace")); len(rs) != 3 {
		t.Errorf("unfiltered records = %d, want 3", len(rs))
	}
	if rs := decode(get(t, h, "/trace?txn=txn-2")); len(rs) != 1 || rs[0].Txn != "txn-2" {
		t.Errorf("txn filter = %+v", rs)
	}
	// agent filter joins txn-only records through the OpAgentStep record.
	if rs := decode(get(t, h, "/trace?agent=agent-1")); len(rs) != 2 {
		t.Errorf("agent filter records = %d, want 2", len(rs))
	}
	if rs := decode(get(t, h, "/trace?last=1")); len(rs) != 1 {
		t.Errorf("last=1 records = %d", len(rs))
	}
	if rec := get(t, h, "/trace?last=bogus"); rec.Code != http.StatusBadRequest {
		t.Errorf("bad last status = %d", rec.Code)
	}
	// The body must be a plain JSON array (Chrome-trace export lives on
	// the loadgen side; the endpoint serves raw records).
	var arr []json.RawMessage
	if err := json.Unmarshal(get(t, h, "/trace").Body.Bytes(), &arr); err != nil {
		t.Fatalf("trace body is not a JSON array: %v", err)
	}
}

func TestTraceDisabled(t *testing.T) {
	h := Handler(Config{Node: "n1"})
	if rec := get(t, h, "/trace"); rec.Code != http.StatusNotFound {
		t.Errorf("disabled trace status = %d", rec.Code)
	}
}

func TestPprofIndex(t *testing.T) {
	h, _, _ := testHandler(true)
	rec := get(t, h, "/debug/pprof/")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "goroutine") {
		t.Errorf("pprof index = %d", rec.Code)
	}
	// The cmdline endpoint is the cheapest non-index pprof handler.
	if rec := get(t, h, "/debug/pprof/cmdline"); rec.Code != http.StatusOK {
		t.Errorf("pprof cmdline = %d", rec.Code)
	}
}
