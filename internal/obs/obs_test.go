package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/membership"
	"repro/internal/metrics"
	"repro/internal/stable"
	"repro/internal/trace"
)

func testHandler(healthy bool) (http.Handler, *metrics.Counters, *trace.Tracer) {
	c := &metrics.Counters{}
	c.IncMessages(42)
	c.AddWireBytes("q.prepare", 100)
	var t0 int64
	tr := trace.New("n1", 64, func() int64 { t0 += 10; return t0 })
	tr.Rec(trace.OpAgentStep, "txn-1", "agent-1", "work", "", "", 1)
	tr.Rec(trace.OpTransition, "txn-1", "", "AckReceived", "coord-active", "coord-idle", 2)
	tr.Rec(trace.OpTransition, "txn-2", "", "PrepareReceived", "-", "staged", 1)
	h := Handler(Config{
		Node:     "n1",
		Counters: c,
		Tracer:   tr,
		Healthy:  func() bool { return healthy },
	})
	return h, c, tr
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestMetricsEndpoint(t *testing.T) {
	h, _, _ := testHandler(true)
	rec := get(t, h, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type = %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"repro_messages_total 1",
		"repro_bytes_sent_total 42",
		`repro_wire_bytes_by_kind_total{kind="q.prepare"} 100`,
		`repro_wire_msgs_by_kind_total{kind="q.prepare"} 1`,
		"# TYPE repro_step_latency_seconds summary",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestHealthz(t *testing.T) {
	h, _, _ := testHandler(true)
	rec := get(t, h, "/healthz")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "ok n1") {
		t.Errorf("healthz = %d %q", rec.Code, rec.Body.String())
	}
	h, _, _ = testHandler(false)
	rec = get(t, h, "/healthz")
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("unhealthy status = %d", rec.Code)
	}
}

func TestTraceEndpointFilters(t *testing.T) {
	h, _, _ := testHandler(true)

	decode := func(rec *httptest.ResponseRecorder) []trace.Record {
		t.Helper()
		if rec.Code != http.StatusOK {
			t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
		}
		rs, err := trace.DecodeJSON(rec.Body.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		return rs
	}

	if rs := decode(get(t, h, "/trace")); len(rs) != 3 {
		t.Errorf("unfiltered records = %d, want 3", len(rs))
	}
	if rs := decode(get(t, h, "/trace?txn=txn-2")); len(rs) != 1 || rs[0].Txn != "txn-2" {
		t.Errorf("txn filter = %+v", rs)
	}
	// agent filter joins txn-only records through the OpAgentStep record.
	if rs := decode(get(t, h, "/trace?agent=agent-1")); len(rs) != 2 {
		t.Errorf("agent filter records = %d, want 2", len(rs))
	}
	if rs := decode(get(t, h, "/trace?last=1")); len(rs) != 1 {
		t.Errorf("last=1 records = %d", len(rs))
	}
	if rec := get(t, h, "/trace?last=bogus"); rec.Code != http.StatusBadRequest {
		t.Errorf("bad last status = %d", rec.Code)
	}
	// The body must be a plain JSON array (Chrome-trace export lives on
	// the loadgen side; the endpoint serves raw records).
	var arr []json.RawMessage
	if err := json.Unmarshal(get(t, h, "/trace").Body.Bytes(), &arr); err != nil {
		t.Fatalf("trace body is not a JSON array: %v", err)
	}
}

func TestTraceDisabled(t *testing.T) {
	h := Handler(Config{Node: "n1"})
	if rec := get(t, h, "/trace"); rec.Code != http.StatusNotFound {
		t.Errorf("disabled trace status = %d", rec.Code)
	}
}

func TestRingEndpoint(t *testing.T) {
	m := membership.NewManager("n1", 16,
		membership.Member{Name: "n2", Status: membership.Alive, Epoch: 1},
		membership.Member{Name: "n3", Status: membership.Left, Epoch: 2})
	q := stable.NewQueue(stable.NewMemStore(nil), "q/")
	if err := q.Enqueue("a1", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	h := Handler(Config{
		Node:       "n1",
		Membership: m,
		Queue:      q,
		Adopted:    func() int { return 3 },
	})
	rec := get(t, h, "/ring")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf("content type = %q", ct)
	}
	var d RingDump
	if err := json.Unmarshal(rec.Body.Bytes(), &d); err != nil {
		t.Fatal(err)
	}
	if d.Node != "n1" || d.VNodes != 16 {
		t.Errorf("node/vnodes = %q/%d", d.Node, d.VNodes)
	}
	if d.Depth != 1 || d.Claimed != 0 || d.Adopted != 3 {
		t.Errorf("placement stats = depth=%d claimed=%d adopted=%d", d.Depth, d.Claimed, d.Adopted)
	}
	if len(d.Members) != 3 {
		t.Fatalf("members = %+v", d.Members)
	}
	total := 0.0
	byName := map[string]RingMember{}
	for _, mm := range d.Members {
		byName[mm.Name] = mm
		total += mm.Share
	}
	// Left members report a zero share; the live ones split the space.
	if byName["n3"].Status != "left" || byName["n3"].Share != 0 {
		t.Errorf("left member = %+v", byName["n3"])
	}
	if byName["n1"].Status != "alive" || byName["n1"].Share <= 0 || byName["n2"].Share <= 0 {
		t.Errorf("live members = %+v %+v", byName["n1"], byName["n2"])
	}
	if total < 0.999 || total > 1.001 {
		t.Errorf("shares sum to %v, want ~1", total)
	}
}

func TestRingDisabled(t *testing.T) {
	h := Handler(Config{Node: "n1"})
	if rec := get(t, h, "/ring"); rec.Code != http.StatusNotFound {
		t.Errorf("disabled ring status = %d", rec.Code)
	}
}

func TestPprofIndex(t *testing.T) {
	h, _, _ := testHandler(true)
	rec := get(t, h, "/debug/pprof/")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "goroutine") {
		t.Errorf("pprof index = %d", rec.Code)
	}
	// The cmdline endpoint is the cheapest non-index pprof handler.
	if rec := get(t, h, "/debug/pprof/cmdline"); rec.Code != http.StatusOK {
		t.Errorf("pprof cmdline = %d", rec.Code)
	}
}
