// Package obs is the node admin plane: one http.Handler exposing
// operational telemetry for a running agent node — Prometheus metrics,
// a health probe, the Go pprof endpoints and the causal trace ring.
//
// The handler is transport-agnostic (callers mount it on any listener)
// and read-only: every endpoint snapshots state without perturbing the
// protocol hot paths beyond what the tracer and counters already cost.
package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"strconv"

	"repro/internal/membership"
	"repro/internal/metrics"
	"repro/internal/stable"
	"repro/internal/trace"
)

// Config wires the admin plane to one node's observable state.
type Config struct {
	// Node is the node name reported by /healthz.
	Node string
	// Counters backs /metrics; nil serves an empty snapshot.
	Counters *metrics.Counters
	// Tracer backs /trace; nil makes /trace return 404.
	Tracer *trace.Tracer
	// Healthy reports whether the node is serving (e.g. recovery done);
	// nil means always healthy.
	Healthy func() bool
	// Membership backs /ring; nil makes /ring return 404 (the node runs
	// static wiring).
	Membership *membership.Manager
	// Queue adds local queue depth/claims to /ring; may be nil.
	Queue *stable.Queue
	// Adopted reports how many agents migrated in; may be nil.
	Adopted func() int
}

// RingMember is one member entry in the /ring dump.
type RingMember struct {
	Name   string  `json:"name"`
	Status string  `json:"status"`
	Epoch  int64   `json:"epoch"`
	Share  float64 `json:"share"` // fraction of the hash space owned; 0 when Left
}

// RingDump is the /ring response: this node's membership view, the ring
// ownership it derives, and the local agent-placement stats. Exported so
// agentctl decodes the same shape it serves.
type RingDump struct {
	Node    string       `json:"node"`
	VNodes  int          `json:"vnodes"`
	Members []RingMember `json:"members"`
	Depth   int          `json:"queue_depth"`
	Claimed int          `json:"queue_claimed"`
	Adopted int          `json:"adopted"`
}

// Handler returns the admin-plane HTTP handler:
//
//	/metrics            Prometheus text exposition of the counters
//	/healthz            200 "ok <node>" or 503 while not ready
//	/trace              causal trace ring as a JSON record array;
//	                    ?txn=ID, ?agent=ID filter, ?last=N tails
//	/ring               membership view + consistent-hash shares +
//	                    local placement stats as JSON (404 when the
//	                    node runs static wiring)
//	/debug/pprof/...    the standard Go profiling endpoints
func Handler(cfg Config) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		var s metrics.Snapshot
		var lat metrics.LatencySummary
		if cfg.Counters != nil {
			s = cfg.Counters.Snapshot()
			lat = cfg.Counters.StepLatency()
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = metrics.WritePrometheus(w, s, lat)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if cfg.Healthy != nil && !cfg.Healthy() {
			w.WriteHeader(http.StatusServiceUnavailable)
			_, _ = w.Write([]byte("not ready " + cfg.Node + "\n"))
			return
		}
		_, _ = w.Write([]byte("ok " + cfg.Node + "\n"))
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Tracer == nil {
			http.Error(w, "tracing disabled", http.StatusNotFound)
			return
		}
		rs := cfg.Tracer.Snapshot()
		if txn := r.URL.Query().Get("txn"); txn != "" {
			rs = trace.FilterTxn(rs, txn)
		}
		if ag := r.URL.Query().Get("agent"); ag != "" {
			rs = trace.FilterAgent(rs, ag)
		}
		if last := r.URL.Query().Get("last"); last != "" {
			n, err := strconv.Atoi(last)
			if err != nil || n < 0 {
				http.Error(w, "bad last parameter", http.StatusBadRequest)
				return
			}
			if n < len(rs) {
				rs = rs[len(rs)-n:]
			}
		}
		trace.CausalSort(rs)
		w.Header().Set("Content-Type", "application/json")
		_ = trace.WriteJSON(w, rs)
	})
	mux.HandleFunc("/ring", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Membership == nil {
			http.Error(w, "membership disabled", http.StatusNotFound)
			return
		}
		view := cfg.Membership.View()
		ring := cfg.Membership.Ring()
		shares := ring.Shares()
		d := RingDump{Node: cfg.Node, VNodes: ring.VNodes()}
		for _, m := range view.Members {
			d.Members = append(d.Members, RingMember{
				Name:   m.Name,
				Status: m.Status.String(),
				Epoch:  m.Epoch,
				Share:  shares[m.Name],
			})
		}
		if cfg.Queue != nil {
			d.Depth, _ = cfg.Queue.Len()
			d.Claimed = cfg.Queue.Claimed()
		}
		if cfg.Adopted != nil {
			d.Adopted = cfg.Adopted()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(d)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
