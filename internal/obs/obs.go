// Package obs is the node admin plane: one http.Handler exposing
// operational telemetry for a running agent node — Prometheus metrics,
// a health probe, the Go pprof endpoints and the causal trace ring.
//
// The handler is transport-agnostic (callers mount it on any listener)
// and read-only: every endpoint snapshots state without perturbing the
// protocol hot paths beyond what the tracer and counters already cost.
package obs

import (
	"net/http"
	"net/http/pprof"
	"strconv"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// Config wires the admin plane to one node's observable state.
type Config struct {
	// Node is the node name reported by /healthz.
	Node string
	// Counters backs /metrics; nil serves an empty snapshot.
	Counters *metrics.Counters
	// Tracer backs /trace; nil makes /trace return 404.
	Tracer *trace.Tracer
	// Healthy reports whether the node is serving (e.g. recovery done);
	// nil means always healthy.
	Healthy func() bool
}

// Handler returns the admin-plane HTTP handler:
//
//	/metrics            Prometheus text exposition of the counters
//	/healthz            200 "ok <node>" or 503 while not ready
//	/trace              causal trace ring as a JSON record array;
//	                    ?txn=ID, ?agent=ID filter, ?last=N tails
//	/debug/pprof/...    the standard Go profiling endpoints
func Handler(cfg Config) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		var s metrics.Snapshot
		var lat metrics.LatencySummary
		if cfg.Counters != nil {
			s = cfg.Counters.Snapshot()
			lat = cfg.Counters.StepLatency()
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = metrics.WritePrometheus(w, s, lat)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if cfg.Healthy != nil && !cfg.Healthy() {
			w.WriteHeader(http.StatusServiceUnavailable)
			_, _ = w.Write([]byte("not ready " + cfg.Node + "\n"))
			return
		}
		_, _ = w.Write([]byte("ok " + cfg.Node + "\n"))
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Tracer == nil {
			http.Error(w, "tracing disabled", http.StatusNotFound)
			return
		}
		rs := cfg.Tracer.Snapshot()
		if txn := r.URL.Query().Get("txn"); txn != "" {
			rs = trace.FilterTxn(rs, txn)
		}
		if ag := r.URL.Query().Get("agent"); ag != "" {
			rs = trace.FilterAgent(rs, ag)
		}
		if last := r.URL.Query().Get("last"); last != "" {
			n, err := strconv.Atoi(last)
			if err != nil || n < 0 {
				http.Error(w, "bad last parameter", http.StatusBadRequest)
				return
			}
			if n < len(rs) {
				rs = rs[len(rs)-n:]
			}
		}
		trace.CausalSort(rs)
		w.Header().Set("Content-Type", "application/json")
		_ = trace.WriteJSON(w, rs)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
