//go:build !race

package experiments

// raceDetectorEnabled reports whether this build runs under the race
// detector.
const raceDetectorEnabled = false
