package experiments

import (
	"fmt"
	"time"

	"repro/internal/stable"
)

// Repl is the `repl` experiment: the price of replicated stable storage
// on the step-transaction path. Every node's store streams committed
// batches to two follower replicas; the ack mode decides whether a
// commit returns as soon as it is locally durable (async — the
// unreplicated tail can die with the machine) or only after a majority
// of copies holds it (quorum — an acknowledged batch survives one
// permanent machine loss). The table prices that durability against the
// unreplicated baseline.
func Repl() (*Table, error) {
	t := &Table{
		Title: "REPL: replicated stable storage — ack-mode cost on the step path (32 agents, 4 nodes, 6 steps, 4 ms/step, 4 workers)",
		Note:  "followers=2 per shard; async acks return after the local commit, quorum acks wait for a majority of copies",
		Header: []string{"mode", "followers", "agents/s", "steps/s",
			"p50 ms", "p99 ms", "elapsed ms"},
	}
	modes := []struct {
		name string
		repl stable.ReplSpec
	}{
		{"unreplicated", stable.ReplSpec{}},
		{"async", stable.ReplSpec{Followers: 2, Acks: 1}},
		{"quorum", stable.ReplSpec{Followers: 2, Acks: stable.AcksQuorum}},
	}
	for _, m := range modes {
		res, err := RunThroughput(ThroughputConfig{
			Nodes:    4,
			Agents:   32,
			Steps:    6,
			Workers:  4,
			StepWork: 4 * time.Millisecond,
			Latency:  expLatency,
			Repl:     m.repl,
		})
		if err != nil {
			return nil, fmt.Errorf("repl %s: %w", m.name, err)
		}
		t.AddRow(m.name, m.repl.Followers, res.AgentsPerSec, res.StepsPerSec,
			float64(res.P50.Microseconds())/1000,
			float64(res.P99.Microseconds())/1000,
			float64(res.Elapsed.Microseconds())/1000)
	}
	return t, nil
}
