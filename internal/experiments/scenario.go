package experiments

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/agent"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/itinerary"
	"repro/internal/metrics"
	"repro/internal/node"
	"repro/internal/resource"
	"repro/internal/stable"
	"repro/internal/txn"
)

// runTimeout bounds every experiment agent run.
const runTimeout = 60 * time.Second

// PipelineConfig configures the generic workload used by most figures: an
// agent executes Steps steps round-robin over Nodes nodes; every step
// deposits into the node-local bank, optionally stores PayloadBytes of
// data in a strongly reversible object, and logs compensating operations —
// a mixed entry when the step's Mixed flag is set, otherwise a resource
// entry plus an agent entry. A final step triggers a partial rollback of
// the whole sub-itinerary (first pass only); the second pass completes.
type PipelineConfig struct {
	Nodes        int
	Steps        int
	Mixed        []bool // per-step mixed flag; nil means all false
	PayloadBytes int
	Optimized    bool
	LogMode      core.LogMode
	Latency      time.Duration
	Rollback     bool
	// SavepointEveryStep makes every step constitute a manual savepoint
	// (the flat-log variant of the Fig. 6 experiment).
	SavepointEveryStep bool
	// TopLevelGroup splits the steps into top-level sub-itineraries of
	// this size (0 = single sub). Completing each group discards the
	// rollback log (§4.4.2). Only valid with Rollback=false.
	TopLevelGroup int
}

// PipelineResult reports one run.
type PipelineResult struct {
	Elapsed time.Duration
	Metrics metrics.Snapshot
	Agent   *agent.Agent
	Failed  bool
	Reason  string
}

const (
	depositPerStep = 10
	sinkAccount    = "sink"
)

func workerName(i int) string { return fmt.Sprintf("w%d", i) }

// BuildPipelineCluster assembles the cluster and registers the workload.
func BuildPipelineCluster(cfg PipelineConfig) (*cluster.Cluster, error) {
	cl := cluster.New(cluster.Options{
		Optimized:   cfg.Optimized,
		LogMode:     cfg.LogMode,
		Latency:     cfg.Latency,
		RetryDelay:  2 * time.Millisecond,
		AckTimeout:  2 * time.Second,
		MaxAttempts: 100,
	})
	for i := 0; i < cfg.Nodes; i++ {
		bank := func(store stable.Store) (resource.Resource, error) {
			return resource.NewBank(store, "bank", true)
		}
		if err := cl.AddNode(workerName(i), node.ResourceFactory(bank)); err != nil {
			return nil, err
		}
	}
	reg := cl.Registry()

	if err := reg.RegisterStep("exp.work", func(ctx agent.StepContext) error {
		seq := ctx.StepSeq()
		var mixed []bool
		if _, err := ctx.WRO().Get("mixedflags", &mixed); err != nil {
			return err
		}
		var payload int
		if _, err := ctx.WRO().Get("payload", &payload); err != nil {
			return err
		}
		if payload > 0 {
			if err := ctx.SRO().Set(fmt.Sprintf("data%d", seq), make([]byte, payload)); err != nil {
				return err
			}
		}
		r, ok := ctx.Resource("bank")
		if !ok {
			return errors.New("exp.work: no bank")
		}
		if err := r.(*resource.Bank).Deposit(ctx.Tx(), sinkAccount, depositPerStep); err != nil {
			return err
		}
		if cfg.SavepointEveryStep {
			ctx.Savepoint(fmt.Sprintf("sp%d", seq))
		}
		if seq < len(mixed) && mixed[seq] {
			ctx.LogComp(core.OpMixed, "exp.comp.mixed", core.NewParams().
				Set("amt", int64(depositPerStep)))
			return nil
		}
		ctx.LogComp(core.OpResource, "exp.comp.res", core.NewParams().
			Set("amt", int64(depositPerStep)))
		ctx.LogComp(core.OpAgent, "exp.comp.agent", core.NewParams())
		return nil
	}); err != nil {
		return nil, err
	}

	if err := reg.RegisterStep("exp.decide", func(ctx agent.StepContext) error {
		rolled, err := ctx.WRO().Has("rolled")
		if err != nil {
			return err
		}
		if rolled {
			return ctx.SRO().Set("ok", true)
		}
		return ctx.RollbackCurrentSub()
	}); err != nil {
		return nil, err
	}

	withdraw := func(ctx agent.CompContext) error {
		var amt int64
		if err := ctx.Params().Get("amt", &amt); err != nil {
			return err
		}
		r, err := ctx.Resource("bank")
		if err != nil {
			return err
		}
		return r.(*resource.Bank).Withdraw(ctx.Tx(), sinkAccount, amt)
	}
	markRolled := func(ctx agent.CompContext) error {
		wro, err := ctx.WRO()
		if err != nil {
			return err
		}
		return wro.Set("rolled", true)
	}
	if err := reg.RegisterComp("exp.comp.res", withdraw); err != nil {
		return nil, err
	}
	if err := reg.RegisterComp("exp.comp.agent", markRolled); err != nil {
		return nil, err
	}
	if err := reg.RegisterComp("exp.comp.mixed", func(ctx agent.CompContext) error {
		if err := withdraw(ctx); err != nil {
			return err
		}
		return markRolled(ctx)
	}); err != nil {
		return nil, err
	}

	if err := cl.Start(); err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Nodes; i++ {
		name := workerName(i)
		nd, ok := cl.Node(name)
		if !ok {
			return nil, fmt.Errorf("experiments: node %s missing", name)
		}
		if err := cl.WithTx(name, func(tx *txn.Tx, _ *node.Node) error {
			r, _ := nd.Resource("bank")
			return r.(*resource.Bank).OpenAccount(tx, sinkAccount, 0)
		}); err != nil {
			return nil, err
		}
	}
	return cl, nil
}

// pipelineItinerary builds the itinerary for cfg.
func pipelineItinerary(cfg PipelineConfig) (*itinerary.Itinerary, error) {
	step := func(i int) itinerary.Entry {
		return itinerary.Step{Method: "exp.work", Loc: workerName(i % cfg.Nodes)}
	}
	if cfg.TopLevelGroup > 0 {
		if cfg.Rollback {
			return nil, errors.New("experiments: TopLevelGroup with Rollback is not supported")
		}
		var subs []*itinerary.Sub
		for start := 0; start < cfg.Steps; start += cfg.TopLevelGroup {
			end := start + cfg.TopLevelGroup
			if end > cfg.Steps {
				end = cfg.Steps
			}
			sub := &itinerary.Sub{ID: fmt.Sprintf("part%d", start)}
			for i := start; i < end; i++ {
				sub.Entries = append(sub.Entries, step(i))
			}
			subs = append(subs, sub)
		}
		subs = append(subs, &itinerary.Sub{ID: "final", Entries: []itinerary.Entry{
			itinerary.Step{Method: "exp.decide", Loc: workerName(0)},
		}})
		return itinerary.New(subs...)
	}
	sub := &itinerary.Sub{ID: "job"}
	for i := 0; i < cfg.Steps; i++ {
		sub.Entries = append(sub.Entries, step(i))
	}
	sub.Entries = append(sub.Entries, itinerary.Step{Method: "exp.decide", Loc: workerName(0)})
	return itinerary.New(sub)
}

// launchPipeline builds and launches the pipeline agent on cl.
func launchPipeline(cl *cluster.Cluster, cfg PipelineConfig, id string) (<-chan cluster.Result, error) {
	it, err := pipelineItinerary(cfg)
	if err != nil {
		return nil, err
	}
	a, entered, err := agent.New(id, "", it)
	if err != nil {
		return nil, err
	}
	mixed := cfg.Mixed
	if mixed == nil {
		mixed = make([]bool, cfg.Steps)
	}
	if err := a.WRO.Set("mixedflags", mixed); err != nil {
		return nil, err
	}
	if err := a.WRO.Set("payload", cfg.PayloadBytes); err != nil {
		return nil, err
	}
	if !cfg.Rollback {
		if err := a.WRO.Set("rolled", true); err != nil {
			return nil, err
		}
	}
	return cl.Launch(a, entered, workerName(0))
}

// RunPipeline executes one pipeline agent to completion and returns
// duration, metric deltas and the final agent.
func RunPipeline(cfg PipelineConfig) (PipelineResult, error) {
	cl, err := BuildPipelineCluster(cfg)
	if err != nil {
		return PipelineResult{}, err
	}
	defer cl.Close()
	return RunPipelineOn(cl, cfg, "exp-agent")
}

func RunPipelineOn(cl *cluster.Cluster, cfg PipelineConfig, id string) (PipelineResult, error) {
	before := cl.Counters().Snapshot()
	start := time.Now()
	ch, err := launchPipeline(cl, cfg, id)
	if err != nil {
		return PipelineResult{}, err
	}
	timer := time.NewTimer(runTimeout)
	defer timer.Stop()
	select {
	case res := <-ch:
		elapsed := time.Since(start)
		out := PipelineResult{
			Elapsed: elapsed,
			Metrics: cl.Counters().Snapshot().Sub(before),
			Agent:   res.Agent,
			Failed:  res.Failed,
			Reason:  res.Reason,
		}
		if !res.Failed {
			if err := verifyPipeline(cl, cfg); err != nil {
				return out, err
			}
		}
		return out, nil
	case <-timer.C:
		return PipelineResult{}, fmt.Errorf("experiments: agent %s timed out", id)
	}
}

// verifyPipeline checks the money invariant: the sum over all sink
// accounts equals Steps×deposit — forward runs deposit once, rollback runs
// deposit, compensate, and deposit again.
func verifyPipeline(cl *cluster.Cluster, cfg PipelineConfig) error {
	var total int64
	for i := 0; i < cfg.Nodes; i++ {
		name := workerName(i)
		nd, ok := cl.Node(name)
		if !ok {
			return fmt.Errorf("experiments: node %s missing", name)
		}
		if err := cl.WithTx(name, func(tx *txn.Tx, _ *node.Node) error {
			r, _ := nd.Resource("bank")
			bal, err := r.(*resource.Bank).Balance(tx, sinkAccount)
			total += bal
			return err
		}); err != nil {
			return err
		}
	}
	want := int64(cfg.Steps) * depositPerStep
	if total != want {
		return fmt.Errorf("experiments: sink total %d, want %d (compensation incorrect)", total, want)
	}
	return nil
}

// MixedFlags returns a Steps-length flag vector with the given fraction of
// mixed-compensation steps, spread evenly.
func MixedFlags(steps int, fraction float64) []bool {
	out := make([]bool, steps)
	if fraction <= 0 {
		return out
	}
	want := int(fraction*float64(steps) + 0.5)
	if want > steps {
		want = steps
	}
	if want == 0 {
		return out
	}
	stride := float64(steps) / float64(want)
	for k := 0; k < want; k++ {
		out[int(float64(k)*stride)] = true
	}
	return out
}
