package experiments

import (
	"errors"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/agent"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/itinerary"
	"repro/internal/metrics"
	"repro/internal/node"
	"repro/internal/resource"
	"repro/internal/stable"
	"repro/internal/trace"
	"repro/internal/txn"
)

// ThroughputConfig configures the multi-agent load workload driving the
// concurrent step scheduler: Agents agents, each executing Steps step
// transactions round-robin over Nodes nodes, every step depositing into
// one of Banks bank resources per node. ConflictRatio pins that fraction
// of the agents to bank 0, so their step transactions contend on one 2PL
// lock; the rest spread over the remaining banks.
type ThroughputConfig struct {
	Nodes   int
	Workers int
	Agents  int
	Steps   int
	Banks   int
	// ConflictRatio in [0,1]: fraction of agents pinned to bank0.
	ConflictRatio float64
	// StepWork is simulated per-step service time, spent *inside* the
	// step transaction while the bank lock is held (the paper's steps
	// are long-running transactions). It is what makes the workload
	// wait-dominated: scheduler workers overlap this held time, so
	// throughput scales with Workers even on one core — except where
	// conflicting agents serialize on the lock.
	StepWork  time.Duration
	Latency   time.Duration
	Optimized bool
	// Store selects the stable-storage backend under every node: "mem"
	// (default), "file" or "wal" — the backend sweep for the engine
	// comparison. Durable backends root their files under StoreDir
	// (RunThroughput provisions a temp dir when empty).
	Store    string
	StoreDir string
	// Repl replicates every node's store (stable.Spec.Repl): Followers
	// replicas per shard, Acks selecting async vs quorum durability. The
	// `repl` experiment sweeps the ack modes to price synchronous
	// replication.
	Repl stable.ReplSpec
	// WireGob forces the legacy gob payload encoding on every node; the
	// default is the binary fast-path codec (cluster.Options.WireGob).
	WireGob bool
	// NoCoalesce disables per-destination batching of one protocol
	// transition's sends (cluster.Options.NoCoalesce). A/B sweeps.
	NoCoalesce bool
	// NoCtlBatch disables cross-transaction control-plane batching
	// (cluster.Options.NoCtlBatch). A/B sweeps.
	NoCtlBatch bool
	// MigrateBurst bounds migrations per rebalancer sweep
	// (cluster.Options.MigrateBurst); 0 keeps the node default.
	MigrateBurst int
	// Timeout bounds the whole run; zero uses the experiment default
	// (large load points under the race detector need more).
	Timeout time.Duration
	// TraceRing sizes the per-node causal trace rings
	// (cluster.Options.TraceRing: 0 = default on, negative disables).
	TraceRing int
	// CollectTrace copies the merged trace records into
	// ThroughputResult.TraceRecords after the run (they are dropped
	// otherwise — a full sweep's records would dwarf the report).
	CollectTrace bool
	// Ring runs the cluster with the membership layer on and places
	// every step by consistent hash (@ring itinerary locations) instead
	// of static round-robin wiring.
	Ring bool
	// JoinMidRun boots one extra node partway through the run (Ring
	// only): every node's rebalancer migrates the new node's ring share
	// of live agents over while the load keeps flowing, and the
	// exactly-once sink check at the end covers the migrated steps.
	JoinMidRun bool
}

func (cfg *ThroughputConfig) fillDefaults() {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 4
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.Agents <= 0 {
		cfg.Agents = 64
	}
	if cfg.Steps <= 0 {
		cfg.Steps = 8
	}
	if cfg.Banks <= 0 {
		cfg.Banks = 8
	}
}

// ThroughputResult reports one load run.
type ThroughputResult struct {
	Elapsed      time.Duration
	AgentsPerSec float64
	StepsPerSec  float64
	P50, P99     time.Duration // successful step-attempt latency
	// Latency carries the full distribution behind the P50/P99
	// convenience fields: p90/p999 and the reservoir histogram.
	Latency metrics.LatencySummary
	// GoroutinePeak is the peak runtime.NumGoroutine observed while the
	// agents were in flight. The event-driven protocol core keeps it
	// O(nodes × workers) — independent of the number of in-flight
	// agents/transactions, which previously each cost a polling cycle.
	GoroutinePeak int
	Metrics       metrics.Snapshot
	// TraceRecords is the merged causal trace of the run, populated only
	// when ThroughputConfig.CollectTrace is set.
	TraceRecords []trace.Record
}

const tputDeposit = 1

// bankName returns the bank resource an agent uses, honouring the
// conflict pinning (the flag vector is spread evenly, like MixedFlags).
func tputBank(i int, cfg ThroughputConfig, conflicted []bool) string {
	if conflicted[i] {
		return "bank0"
	}
	return fmt.Sprintf("bank%d", i%cfg.Banks)
}

// BuildThroughputCluster assembles the cluster: Nodes nodes, Banks bank
// resources each, the load step (with its scheduler conflict hint) and a
// matching compensation registered.
func BuildThroughputCluster(cfg ThroughputConfig) (*cluster.Cluster, error) {
	counters := &metrics.Counters{}
	if cfg.Store != "" && cfg.Store != "mem" && cfg.StoreDir == "" {
		return nil, fmt.Errorf("throughput: backend %q needs a StoreDir", cfg.Store)
	}
	spec, err := StoreSpec(cfg.Store, cfg.StoreDir, counters)
	if err != nil {
		return nil, err
	}
	spec.Repl = cfg.Repl
	cl := cluster.New(cluster.Options{
		Optimized:    cfg.Optimized,
		Latency:      cfg.Latency,
		Workers:      cfg.Workers,
		RetryDelay:   2 * time.Millisecond,
		AckTimeout:   2 * time.Second,
		MaxAttempts:  100,
		WireGob:      cfg.WireGob,
		NoCoalesce:   cfg.NoCoalesce,
		NoCtlBatch:   cfg.NoCtlBatch,
		MigrateBurst: cfg.MigrateBurst,
		Counters:     counters,
		Store:        spec,
		TraceRing:    cfg.TraceRing,
		Membership:   cfg.Ring,
	})
	for i := 0; i < cfg.Nodes; i++ {
		if err := cl.AddNode(workerName(i), tputFactories(cfg)...); err != nil {
			return nil, err
		}
	}
	reg := cl.Registry()
	if err := reg.RegisterStep("tput.work", func(ctx agent.StepContext) error {
		var bank string
		if _, err := ctx.WRO().Get("bank", &bank); err != nil {
			return err
		}
		r, ok := ctx.Resource(bank)
		if !ok {
			return errors.New("tput.work: no bank " + bank)
		}
		if err := r.(*resource.Bank).Deposit(ctx.Tx(), sinkAccount, tputDeposit); err != nil {
			return err
		}
		if cfg.StepWork > 0 {
			time.Sleep(cfg.StepWork) // service time, lock held
		}
		ctx.LogComp(core.OpResource, "tput.comp", core.NewParams().
			Set("bank", bank).Set("amt", int64(tputDeposit)))
		return nil
	}); err != nil {
		return nil, err
	}
	if err := reg.RegisterStepHints("tput.work",
		func(a *agent.Agent, _ itinerary.Step) []string {
			var bank string
			if _, err := a.WRO.Get("bank", &bank); err != nil {
				return nil
			}
			return []string{bank}
		}); err != nil {
		return nil, err
	}
	if err := reg.RegisterComp("tput.comp", func(ctx agent.CompContext) error {
		var bank string
		if err := ctx.Params().Get("bank", &bank); err != nil {
			return err
		}
		var amt int64
		if err := ctx.Params().Get("amt", &amt); err != nil {
			return err
		}
		r, err := ctx.Resource(bank)
		if err != nil {
			return err
		}
		return r.(*resource.Bank).Withdraw(ctx.Tx(), sinkAccount, amt)
	}); err != nil {
		return nil, err
	}
	if err := cl.Start(); err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Nodes; i++ {
		if err := tputOpenSinks(cl, workerName(i), cfg.Banks); err != nil {
			return nil, err
		}
	}
	return cl, nil
}

// tputFactories builds the per-node bank resource set (shared by the
// initial nodes and any node joined mid-run).
func tputFactories(cfg ThroughputConfig) []node.ResourceFactory {
	var factories []node.ResourceFactory
	for b := 0; b < cfg.Banks; b++ {
		name := fmt.Sprintf("bank%d", b)
		factories = append(factories, func(store stable.Store) (resource.Resource, error) {
			return resource.NewBank(store, name, true)
		})
	}
	return factories
}

// tputOpenSinks opens the sink account in every bank on one node.
func tputOpenSinks(cl *cluster.Cluster, name string, banks int) error {
	nd, ok := cl.Node(name)
	if !ok {
		return fmt.Errorf("throughput: node %s missing", name)
	}
	return cl.WithTx(name, func(tx *txn.Tx, _ *node.Node) error {
		for b := 0; b < banks; b++ {
			r, _ := nd.Resource(fmt.Sprintf("bank%d", b))
			if err := r.(*resource.Bank).OpenAccount(tx, sinkAccount, 0); err != nil {
				return err
			}
		}
		return nil
	})
}

// tputItinerary builds one agent's itinerary: Steps steps round-robin over
// the nodes, starting at node start.
func tputItinerary(id string, start int, cfg ThroughputConfig) (*itinerary.Itinerary, error) {
	sub := &itinerary.Sub{ID: "load-" + id}
	for s := 0; s < cfg.Steps; s++ {
		loc := workerName((start + s) % cfg.Nodes)
		if cfg.Ring {
			// A distinct ring key per step spreads the agent's steps over
			// the owners (and hands a mid-run joiner its fair share of the
			// remaining steps) instead of pinning each agent to one node.
			loc = fmt.Sprintf("%s:%s-s%d", node.RingLoc, id, s)
		}
		sub.Entries = append(sub.Entries, itinerary.Step{Method: "tput.work", Loc: loc})
	}
	return itinerary.New(sub)
}

// RunThroughput launches cfg.Agents agents concurrently, waits for every
// completion, verifies the deposit invariant and reports throughput and
// step-latency percentiles.
func RunThroughput(cfg ThroughputConfig) (ThroughputResult, error) {
	cfg.fillDefaults()
	if cfg.JoinMidRun && !cfg.Ring {
		return ThroughputResult{}, errors.New("throughput: JoinMidRun needs Ring placement (a joiner owns nothing under static wiring)")
	}
	if cfg.Store != "" && cfg.Store != "mem" && cfg.StoreDir == "" {
		dir, err := os.MkdirTemp("", "tput-"+cfg.Store)
		if err != nil {
			return ThroughputResult{}, err
		}
		defer os.RemoveAll(dir)
		cfg.StoreDir = dir
	}
	cl, err := BuildThroughputCluster(cfg)
	if err != nil {
		return ThroughputResult{}, err
	}
	defer cl.Close()

	conflicted := MixedFlags(cfg.Agents, cfg.ConflictRatio)
	type launch struct {
		a       *agent.Agent
		entered []string
		at      string
	}
	launches := make([]launch, cfg.Agents)
	for i := 0; i < cfg.Agents; i++ {
		id := fmt.Sprintf("load%04d", i)
		start := i % cfg.Nodes
		it, err := tputItinerary(id, start, cfg)
		if err != nil {
			return ThroughputResult{}, err
		}
		a, entered, err := agent.NewAt(id, "", it, workerName(start))
		if err != nil {
			return ThroughputResult{}, err
		}
		if err := a.WRO.Set("bank", tputBank(i, cfg, conflicted)); err != nil {
			return ThroughputResult{}, err
		}
		launches[i] = launch{a: a, entered: entered, at: workerName(start)}
	}

	before := cl.Counters().Snapshot()
	start := time.Now()
	// Sample the process goroutine count while the load is in flight:
	// the steady-state count must track workers, not in-flight agents.
	gorSamples := make(chan int, 1)
	gorStop := make(chan struct{})
	go func() {
		peak := runtime.NumGoroutine()
		ticker := time.NewTicker(2 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-gorStop:
				gorSamples <- peak
				return
			case <-ticker.C:
				if n := runtime.NumGoroutine(); n > peak {
					peak = n
				}
			}
		}
	}()
	chans := make([]<-chan cluster.Result, cfg.Agents)
	for i, l := range launches {
		ch, err := cl.Launch(l.a, l.entered, l.at)
		if err != nil {
			close(gorStop)
			<-gorSamples
			return ThroughputResult{}, err
		}
		chans[i] = ch
	}
	joinErr := make(chan error, 1)
	if cfg.JoinMidRun {
		go func() {
			// Land the join mid-run: late enough that the load is spread
			// out, early enough that plenty of steps remain to migrate.
			delay := time.Duration(cfg.Steps) * cfg.StepWork / 3
			if delay < 25*time.Millisecond {
				delay = 25 * time.Millisecond
			}
			time.Sleep(delay)
			name := workerName(cfg.Nodes)
			if err := cl.Join(name, tputFactories(cfg)...); err != nil {
				joinErr <- err
				return
			}
			// Steps migrated here before the sinks open fail and retry.
			joinErr <- tputOpenSinks(cl, name, cfg.Banks)
		}()
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = runTimeout
	}
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	var runErr error
	for _, ch := range chans {
		select {
		case res := <-ch:
			if res.Failed {
				runErr = fmt.Errorf("throughput: agent %s failed: %s", res.AgentID, res.Reason)
			}
		case <-deadline.C:
			runErr = errors.New("throughput: agents timed out")
		}
		if runErr != nil {
			break
		}
	}
	elapsed := time.Since(start)
	close(gorStop)
	gorPeak := <-gorSamples
	if runErr == nil && cfg.JoinMidRun {
		if err := <-joinErr; err != nil {
			runErr = fmt.Errorf("throughput: mid-run join: %w", err)
		}
	}
	if runErr != nil {
		return ThroughputResult{}, runErr
	}

	// Invariant: every step deposited exactly once. NodeNames covers the
	// mid-run joiner too — migrated steps deposited into its banks.
	var total int64
	for _, name := range cl.NodeNames() {
		nd, _ := cl.Node(name)
		if err := cl.WithTx(name, func(tx *txn.Tx, _ *node.Node) error {
			for b := 0; b < cfg.Banks; b++ {
				r, _ := nd.Resource(fmt.Sprintf("bank%d", b))
				bal, err := r.(*resource.Bank).Balance(tx, sinkAccount)
				if err != nil {
					return err
				}
				total += bal
			}
			return nil
		}); err != nil {
			return ThroughputResult{}, err
		}
	}
	if want := int64(cfg.Agents * cfg.Steps * tputDeposit); total != want {
		return ThroughputResult{}, fmt.Errorf("throughput: sink total %d, want %d (exactly-once violated)", total, want)
	}

	var recs []trace.Record
	if cfg.CollectTrace {
		recs = cl.TraceRecords()
	}
	lat := cl.Counters().StepLatency()
	sec := elapsed.Seconds()
	return ThroughputResult{
		Elapsed:       elapsed,
		AgentsPerSec:  float64(cfg.Agents) / sec,
		StepsPerSec:   float64(cfg.Agents*cfg.Steps) / sec,
		P50:           lat.P50,
		P99:           lat.P99,
		Latency:       lat,
		GoroutinePeak: gorPeak,
		Metrics:       cl.Counters().Snapshot().Sub(before),
		TraceRecords:  recs,
	}, nil
}

// tputStepWork is the per-step service time of the `tput` experiment:
// large against the per-step CPU cost, so the table measures scheduler
// overlap rather than single-core CPU saturation.
const tputStepWork = 8 * time.Millisecond

// Throughput is the worker-scaling experiment (`tput`): the 64-agent load
// on 4 nodes at increasing per-node worker counts and varying conflict
// ratios. Steps hold their transaction (and bank lock) for tputStepWork,
// so worker concurrency — overlapping held time, not raw CPU — is what
// the scaling column measures. The acceptance bar is Workers=8 ≥ 3×
// Workers=1 on the non-conflicting rows; the conflict rows show 2PL
// serialization capping exactly the pinned fraction of the load.
func Throughput() (*Table, error) {
	t := &Table{
		Title: "TPUT: node throughput vs scheduler workers (64 agents, 4 nodes, 8 steps, 8 ms/step service time)",
		Note:  "conflict c pins c·agents to one bank/node (2PL-serialized); the rest spread over 8 banks",
		Header: []string{"workers", "conflict", "agents/s", "steps/s", "p50 ms", "p99 ms",
			"elapsed ms", "inflight peak", "claim conf", "lock aborts", "retries"},
	}
	type pt struct {
		workers  int
		conflict float64
	}
	pts := []pt{
		{1, 0}, {2, 0}, {4, 0}, {8, 0},
		{1, 0.5}, {8, 0.5},
		{1, 1}, {8, 1},
	}
	for _, p := range pts {
		res, err := RunThroughput(ThroughputConfig{
			Workers:       p.workers,
			ConflictRatio: p.conflict,
			StepWork:      tputStepWork,
			Latency:       expLatency,
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(p.workers, fmt.Sprintf("%.2f", p.conflict),
			res.AgentsPerSec, res.StepsPerSec,
			float64(res.P50.Microseconds())/1000,
			float64(res.P99.Microseconds())/1000,
			float64(res.Elapsed.Microseconds())/1000,
			res.Metrics.SchedInFlightPeak,
			res.Metrics.SchedClaimConflicts,
			res.Metrics.SchedLockAborts,
			res.Metrics.SchedRetries)
	}
	return t, nil
}
