package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/stable"
)

// TestPipelineForward: the generic workload completes a forward run and
// the money invariant holds (checked inside RunPipeline).
func TestPipelineForward(t *testing.T) {
	res, err := RunPipeline(PipelineConfig{Nodes: 2, Steps: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed {
		t.Fatalf("failed: %s", res.Reason)
	}
	if res.Metrics.StepTxns != 4 { // 3 work + decide
		t.Errorf("step txns = %d, want 4", res.Metrics.StepTxns)
	}
	if res.Metrics.CompTxns != 0 {
		t.Errorf("comp txns = %d, want 0 in a forward run", res.Metrics.CompTxns)
	}
}

// TestPipelineRollbackCounts: a full rollback compensates every step
// exactly once.
func TestPipelineRollbackCounts(t *testing.T) {
	for _, optimized := range []bool{false, true} {
		res, err := RunPipeline(PipelineConfig{
			Nodes: 3, Steps: 4, Rollback: true, Optimized: optimized,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Failed {
			t.Fatalf("optimized=%v failed: %s", optimized, res.Reason)
		}
		if res.Metrics.CompTxns != 4 {
			t.Errorf("optimized=%v: comp txns = %d, want 4", optimized, res.Metrics.CompTxns)
		}
		var ok bool
		if err := res.Agent.SRO.MustGet("ok", &ok); err != nil || !ok {
			t.Errorf("optimized=%v: ok = %v, %v", optimized, ok, err)
		}
	}
}

// TestPipelineOptimizedSavesTransfers is the Figure-5 claim in miniature.
func TestPipelineOptimizedSavesTransfers(t *testing.T) {
	basic, err := RunPipeline(PipelineConfig{Nodes: 3, Steps: 6, Rollback: true})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := RunPipeline(PipelineConfig{Nodes: 3, Steps: 6, Rollback: true, Optimized: true})
	if err != nil {
		t.Fatal(err)
	}
	if opt.Metrics.AgentTransfers >= basic.Metrics.AgentTransfers {
		t.Errorf("optimized transfers %d >= basic %d",
			opt.Metrics.AgentTransfers, basic.Metrics.AgentTransfers)
	}
	if opt.Metrics.RemoteCompBatches == 0 {
		t.Error("optimized run shipped no RCE batches")
	}
}

// TestPipelineAllMixedEqualsBasic: at mixed fraction 1 both algorithms
// produce identical transfer counts (the F5 convergence point).
func TestPipelineAllMixedEqualsBasic(t *testing.T) {
	mixed := MixedFlags(4, 1)
	basic, err := RunPipeline(PipelineConfig{Nodes: 3, Steps: 4, Mixed: mixed, Rollback: true})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := RunPipeline(PipelineConfig{Nodes: 3, Steps: 4, Mixed: mixed, Rollback: true, Optimized: true})
	if err != nil {
		t.Fatal(err)
	}
	if basic.Metrics.AgentTransfers != opt.Metrics.AgentTransfers {
		t.Errorf("transfers differ at mixed=1: basic %d, optimized %d",
			basic.Metrics.AgentTransfers, opt.Metrics.AgentTransfers)
	}
	if opt.Metrics.RemoteCompBatches != 0 {
		t.Errorf("RCE batches = %d at mixed=1, want 0", opt.Metrics.RemoteCompBatches)
	}
}

// TestPipelineTopLevelGroupsDiscardLog: grouped top-level sub-itineraries
// bound the peak log size.
func TestPipelineTopLevelGroupsDiscardLog(t *testing.T) {
	flat, err := RunPipeline(PipelineConfig{
		Nodes: 2, Steps: 8, PayloadBytes: 256, SavepointEveryStep: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	grouped, err := RunPipeline(PipelineConfig{
		Nodes: 2, Steps: 8, PayloadBytes: 256, TopLevelGroup: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if grouped.Metrics.LogBytesPeak >= flat.Metrics.LogBytesPeak {
		t.Errorf("grouped peak %d >= flat peak %d",
			grouped.Metrics.LogBytesPeak, flat.Metrics.LogBytesPeak)
	}
}

func TestMixedFlags(t *testing.T) {
	if got := MixedFlags(8, 0); countTrue(got) != 0 {
		t.Errorf("fraction 0: %v", got)
	}
	if got := MixedFlags(8, 1); countTrue(got) != 8 {
		t.Errorf("fraction 1: %v", got)
	}
	if got := MixedFlags(8, 0.5); countTrue(got) != 4 {
		t.Errorf("fraction 0.5: %v (want 4 set)", got)
	}
	if got := MixedFlags(8, 2); countTrue(got) != 8 {
		t.Errorf("fraction >1 clamps: %v", got)
	}
}

func countTrue(bs []bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		Title:  "demo",
		Note:   "a note",
		Header: []string{"col", "value"},
	}
	tbl.AddRow("x", 1.5)
	tbl.AddRow("longer-cell", 10)
	var buf bytes.Buffer
	tbl.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"== demo ==", "a note", "col", "longer-cell", "1.50", "10"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestSmallFigures runs the cheap, deterministic experiment runners.
func TestSmallFigures(t *testing.T) {
	if _, err := Fig2(); err != nil {
		t.Errorf("Fig2: %v", err)
	}
	if _, err := TLog(); err != nil {
		t.Errorf("TLog: %v", err)
	}
	if _, err := TPerf(); err != nil {
		t.Errorf("TPerf: %v", err)
	}
}

func TestList(t *testing.T) {
	want := []string{"f1", "f2", "f3", "f4", "f5", "f6", "tlog", "tft", "tperf", "tput", "stor", "repl", "chaos"}
	got := List()
	if len(got) != len(want) {
		t.Fatalf("List has %d experiments, want %d", len(got), len(want))
	}
	for i, e := range got {
		if e.Name != want[i] || e.Run == nil {
			t.Errorf("List[%d] = %q (run nil: %v), want %q", i, e.Name, e.Run == nil, want[i])
		}
	}
}

// TestChaosExperiment: the chaos table runs its sweep with every row
// passing (any violation lands in the verdict column).
func TestChaosExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-engine chaos sweep")
	}
	tbl, err := Chaos()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("chaos table has %d rows, want 5", len(tbl.Rows))
	}
	verdict := len(tbl.Header) - 1
	for _, row := range tbl.Rows {
		if row[verdict] != "OK" {
			t.Errorf("seed %s (%s/%s): verdict %q", row[0], row[1], row[2], row[verdict])
		}
	}
}

// TestTransitionLoggingPipeline: the pipeline under transition logging
// still restores correctly after a rollback.
func TestTransitionLoggingPipeline(t *testing.T) {
	res, err := RunPipeline(PipelineConfig{
		Nodes: 2, Steps: 3, PayloadBytes: 128,
		LogMode: core.TransitionLogging, Rollback: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed {
		t.Fatalf("failed: %s", res.Reason)
	}
}

// TestThroughputHarness: a small load run completes, the exactly-once
// deposit invariant holds (checked inside RunThroughput), and the report
// is sane.
func TestThroughputHarness(t *testing.T) {
	res, err := RunThroughput(ThroughputConfig{
		Nodes: 2, Workers: 4, Agents: 8, Steps: 3, Banks: 2,
		ConflictRatio: 0.5, StepWork: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AgentsPerSec <= 0 || res.StepsPerSec <= 0 {
		t.Errorf("non-positive throughput: %+v", res)
	}
	if res.P50 <= 0 || res.P99 < res.P50 {
		t.Errorf("implausible percentiles p50=%v p99=%v", res.P50, res.P99)
	}
	if res.Metrics.StepTxns != 8*3 {
		t.Errorf("step txns = %d, want 24", res.Metrics.StepTxns)
	}
	if res.Metrics.SchedClaims == 0 {
		t.Error("scheduler claimed nothing; pool not engaged")
	}
}

// TestThroughputReplicated: the `repl` experiment's wiring — a load run
// with quorum-replicated stores completes with the exactly-once sink
// invariant intact (checked inside RunThroughput) and with replication
// actually engaged on the commit path.
func TestThroughputReplicated(t *testing.T) {
	res, err := RunThroughput(ThroughputConfig{
		Nodes: 3, Workers: 2, Agents: 9, Steps: 3, Banks: 2,
		StepWork: time.Millisecond,
		Repl:     stable.ReplSpec{Followers: 2, Acks: stable.AcksQuorum},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.StepTxns != 9*3 {
		t.Errorf("step txns = %d, want 27", res.Metrics.StepTxns)
	}
	if res.Metrics.ReplBatches == 0 {
		t.Error("no batches replicated; Repl spec not wired through")
	}
}

// TestThroughputJoinMidRun: the join smoke the CI loadgen job runs — ring
// placement with a 5th node booting mid-run. The exactly-once sink check
// inside RunThroughput (sum over all nodes, including the joiner) is the
// zero-lost/zero-duplicated-steps assertion; here we additionally require
// that the joiner actually received load via transactional migrations.
func TestThroughputJoinMidRun(t *testing.T) {
	res, err := RunThroughput(ThroughputConfig{
		Nodes: 4, Workers: 2, Agents: 24, Steps: 6, Banks: 2,
		StepWork: 4 * time.Millisecond, Ring: true, JoinMidRun: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.StepTxns != 24*6 {
		t.Errorf("step txns = %d, want 144", res.Metrics.StepTxns)
	}
	if res.Metrics.Migrations == 0 {
		t.Error("mid-run join triggered no migrations")
	}
	t.Logf("migrations=%d bytes=%d aborts=%d refusals=%d",
		res.Metrics.Migrations, res.Metrics.MigrationBytes,
		res.Metrics.MigrationAborts, res.Metrics.AdoptionRefusals)
}

// JoinMidRun without ring placement is a configuration error: a joiner
// owns nothing under static wiring, so the run would assert vacuously.
func TestThroughputJoinNeedsRing(t *testing.T) {
	if _, err := RunThroughput(ThroughputConfig{JoinMidRun: true}); err == nil {
		t.Fatal("JoinMidRun without Ring accepted")
	}
}
