package experiments

import (
	"fmt"

	"repro/internal/chaos"
)

// Chaos is the `chaos` experiment: a small sweep of seeded fault
// schedules (node crashes, partitions, message drop/duplicate/reorder,
// latency spikes) over engine × worker combinations, asserting the §4.3
// global invariants per run. The CI chaos-matrix job sweeps far more
// seeds; this table is the reproducible sample in the experiment suite.
// Any seed replays with one command (see the table note).
func Chaos() (*Table, error) {
	t := &Table{
		Title: "CHAOS: seeded fault schedules vs §4.3 global invariants",
		Note: "replay: go run ./cmd/loadgen -chaos -chaos-seed=N -store=<engine> -workers=<W>;\n" +
			"invariants: exactly-once steps, per-agent FIFO, compensated rollbacks, drained queues, clean store reopen",
		Header: []string{"seed", "store", "workers", "crashes", "partitions", "fault wins",
			"drops", "dups", "reorders", "rolled back", "elapsed ms", "verdict"},
	}
	type pt struct {
		seed    int64
		store   string
		workers int
	}
	pts := []pt{
		{1, "mem", 1}, {2, "mem", 8}, {3, "file", 1},
		{4, "wal", 1}, {5, "wal", 8},
	}
	for _, p := range pts {
		res, err := chaos.Run(chaos.Options{Seed: p.seed, Store: p.store, Workers: p.workers})
		if err != nil {
			return nil, fmt.Errorf("chaos seed %d (%s/%d): %w", p.seed, p.store, p.workers, err)
		}
		verdict := "OK"
		if res.Failed() {
			verdict = fmt.Sprintf("%d VIOLATIONS", len(res.Violations))
		}
		crashes, parts, faultWins := res.Schedule.Counts()
		t.AddRow(p.seed, p.store, p.workers, crashes, parts, faultWins,
			res.Faults.Drops, res.Faults.Dups, res.Faults.Reorders,
			res.RolledBack, float64(res.Elapsed.Microseconds())/1000, verdict)
	}
	return t, nil
}
