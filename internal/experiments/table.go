// Package experiments regenerates every figure of the paper as a measured
// experiment (the technical-report version has no empirical tables; its
// figures are mechanism figures whose performance claims are made in
// prose — see DESIGN.md and EXPERIMENTS.md for the mapping).
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is one experiment's output: a titled grid of rows printed in the
// style of a paper table.
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Fprint renders the table.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "%s\n", t.Note)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", w, c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	printRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range t.Rows {
		printRow(row)
	}
}
