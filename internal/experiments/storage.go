package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/stable"
	"repro/internal/stable/wal" // linked for the engine registration; typed asserts below
)

// StoreBackends names the pluggable stable-storage engines the harnesses
// can sweep: "mem" (volatile map), "file" (one file per key + journal),
// "wal" (log-structured segments + checkpoints).
var StoreBackends = []string{"mem", "file", "wal"}

// StoreSpec builds the cluster storage Spec for one backend of the
// sweep. Durable backends root per-node directories under baseDir (the
// cluster derives them with Spec.ForNode); Sync is left off — the
// simulation convention, matching MemStore semantics — while the `stor`
// experiment measures the Sync-on path explicitly.
func StoreSpec(backend, baseDir string, counters *metrics.Counters) (stable.Spec, error) {
	switch backend {
	case "":
		backend = "mem"
	case "mem", "file", "wal":
	default:
		return stable.Spec{}, fmt.Errorf("unknown store backend %q (want %v)", backend, StoreBackends)
	}
	return stable.Spec{Engine: backend, Dir: baseDir, Counters: counters}, nil
}

// --- grouped Apply throughput (durable path) --------------------------

// ApplyBenchConfig drives concurrent committers against one store with
// fsync on — the durable group-commit path every step transaction pays.
type ApplyBenchConfig struct {
	Backend   string // "file" or "wal"
	Workers   int    // concurrent Apply callers
	Batches   int    // total batches across all workers
	ValueSize int
	Dir       string
}

// ApplyBenchResult reports one durable-throughput run.
type ApplyBenchResult struct {
	Elapsed      time.Duration
	BatchesPerS  float64
	GroupCommits int64
	Fsyncs       int64
	FsyncMeanMS  float64
}

// RunApplyBench measures grouped Apply throughput with Sync on.
func RunApplyBench(cfg ApplyBenchConfig) (ApplyBenchResult, error) {
	switch cfg.Backend {
	case "file", "wal":
	default:
		return ApplyBenchResult{}, fmt.Errorf("apply bench: unsupported backend %q", cfg.Backend)
	}
	counters := &metrics.Counters{}
	store, err := stable.Open(stable.Spec{Engine: cfg.Backend, Dir: cfg.Dir, Sync: true, Counters: counters})
	if err != nil {
		return ApplyBenchResult{}, err
	}
	defer stable.Close(store)
	grouped, ok := store.(interface{ GroupCommits() int64 })
	if !ok {
		return ApplyBenchResult{}, fmt.Errorf("apply bench: engine %q does not report group commits", cfg.Backend)
	}
	groupCommits := grouped.GroupCommits

	val := make([]byte, cfg.ValueSize)
	perWorker := cfg.Batches / cfg.Workers
	var wg sync.WaitGroup
	errs := make(chan error, cfg.Workers)
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				key := fmt.Sprintf("w%d/k%d", w, i%64)
				if err := store.Apply(stable.Put(key, val), stable.Put(key+"/meta", val[:16])); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return ApplyBenchResult{}, err
	}
	elapsed := time.Since(start)

	snap := counters.Snapshot()
	res := ApplyBenchResult{
		Elapsed:      elapsed,
		BatchesPerS:  float64(cfg.Workers*perWorker) / elapsed.Seconds(),
		GroupCommits: groupCommits(),
		Fsyncs:       snap.Fsyncs,
	}
	if snap.Fsyncs > 0 {
		res.FsyncMeanMS = float64(snap.FsyncNanos) / float64(snap.Fsyncs) / 1e6
	}
	return res, nil
}

// --- recovery time vs history --------------------------------------

// RecoveryBenchConfig writes a batch history (churning over a growing
// live key set), "crashes" (abandons the store), and measures how long a
// fresh incarnation takes to become useful again: engine recovery (open:
// journal/checkpoint load + log replay) plus the §4.3-style full scan of
// the live keys (the input-queue replay reads every queued container).
type RecoveryBenchConfig struct {
	Backend   string // "file", "wal", "wal-nockpt"
	History   int    // total batches written before the crash
	ValueSize int
	Dir       string
}

// RecoveryBenchResult reports one recovery measurement.
type RecoveryBenchResult struct {
	LiveKeys      int
	OpenMS        float64 // engine recovery: open + replay to ready
	ScanMS        float64 // list + read every live key (queue replay)
	BytesReplayed int64   // wal: log bytes scanned during open
}

func (cfg RecoveryBenchConfig) open(dir string) (stable.Store, error) {
	switch cfg.Backend {
	case "file":
		return stable.Open(stable.Spec{Engine: "file", Dir: dir})
	case "wal":
		return stable.Open(stable.Spec{Engine: "wal", Dir: dir,
			WAL: stable.WALSpec{CheckpointEvery: 256 << 10, NoBackground: true}})
	case "wal-nockpt":
		return stable.Open(stable.Spec{Engine: "wal", Dir: dir,
			WAL: stable.WALSpec{CheckpointEvery: -1, NoBackground: true}})
	default:
		return nil, fmt.Errorf("recovery bench: unsupported backend %q", cfg.Backend)
	}
}

// RunRecoveryBench builds the history and measures recovery.
func RunRecoveryBench(cfg RecoveryBenchConfig) (RecoveryBenchResult, error) {
	if cfg.ValueSize == 0 {
		cfg.ValueSize = 256
	}
	s, err := cfg.open(cfg.Dir)
	if err != nil {
		return RecoveryBenchResult{}, err
	}
	// The live set grows with history (completed-agent records, queue
	// entries): 1 new key every 4 batches, the rest churn existing keys.
	liveKeys := cfg.History / 4
	if liveKeys == 0 {
		liveKeys = 1
	}
	val := make([]byte, cfg.ValueSize)
	for i := 0; i < cfg.History; i++ {
		key := fmt.Sprintf("q/e/%010d", i%liveKeys)
		if err := s.Apply(stable.Put(key, val)); err != nil {
			return RecoveryBenchResult{}, err
		}
	}
	// For the checkpointing wal backend the final checkpoint is driven
	// explicitly (NoBackground keeps the write phase deterministic),
	// followed by a fixed-size tail — the "data written since the last
	// checkpoint" that bounds the replay regardless of total history.
	if w, ok := s.(*wal.Store); ok && cfg.Backend == "wal" {
		if err := w.Checkpoint(); err != nil {
			return RecoveryBenchResult{}, err
		}
		const tailBatches = 256
		for i := 0; i < tailBatches; i++ {
			key := fmt.Sprintf("q/e/%010d", i%liveKeys)
			if err := s.Apply(stable.Put(key, val)); err != nil {
				return RecoveryBenchResult{}, err
			}
		}
	}
	// Crash: abandon the instance without shutdown (handles leak until
	// process exit, exactly like a kill -9's).

	start := time.Now()
	r, err := cfg.open(cfg.Dir)
	if err != nil {
		return RecoveryBenchResult{}, err
	}
	openD := time.Since(start)

	scanStart := time.Now()
	keys, err := r.Keys("q/e/")
	if err != nil {
		return RecoveryBenchResult{}, err
	}
	for _, k := range keys {
		if _, ok, err := r.Get(k); err != nil || !ok {
			return RecoveryBenchResult{}, fmt.Errorf("recovery bench: lost key %q: %v", k, err)
		}
	}
	scanD := time.Since(scanStart)

	res := RecoveryBenchResult{
		LiveKeys: len(keys),
		OpenMS:   float64(openD.Microseconds()) / 1000,
		ScanMS:   float64(scanD.Microseconds()) / 1000,
	}
	if w, ok := r.(*wal.Store); ok {
		res.BytesReplayed = w.Recovery().BytesReplayed
	}
	_ = stable.Close(r)
	_ = stable.Close(s)
	return res, nil
}

// Storage is the `stor` experiment: the pluggable-engine comparison.
// Part 1 measures the durable (fsync-on) grouped Apply path — the cost
// every step-transaction commit pays — for the file engine vs the WAL
// engine. Part 2 measures time-to-recover after a crash as the total
// history grows: the WAL's checkpoint bounds its replay (roughly flat),
// while scanning a per-key-file store grows linearly with the live set,
// and a WAL without checkpoints grows linearly with the whole history.
func Storage() (*Table, error) {
	t := &Table{
		Title: "STOR: stable-storage engines — durable Apply throughput and crash-recovery time",
		Note: "apply: 4 committers, 512 B values, fsync on; recovery: history of 1-op batches, live set = history/4,\n" +
			"wal checkpoint interval 256 KiB; open = engine recovery, scan = read back every live key (§4.3 queue replay)",
		Header: []string{"backend", "phase", "history", "live keys", "batches/s",
			"commits", "fsyncs", "fsync ms", "open ms", "scan ms", "replayed KiB"},
	}

	tmp, err := os.MkdirTemp("", "stor")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tmp)

	for _, backend := range []string{"file", "wal"} {
		res, err := RunApplyBench(ApplyBenchConfig{
			Backend:   backend,
			Workers:   4,
			Batches:   400,
			ValueSize: 512,
			Dir:       filepath.Join(tmp, "apply-"+backend),
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(backend, "apply", "-", "-", res.BatchesPerS,
			res.GroupCommits, res.Fsyncs, fmt.Sprintf("%.3f", res.FsyncMeanMS),
			"-", "-", "-")
	}

	for _, backend := range []string{"file", "wal", "wal-nockpt"} {
		for _, history := range []int{1024, 4096, 16384} {
			res, err := RunRecoveryBench(RecoveryBenchConfig{
				Backend: backend,
				History: history,
				Dir:     filepath.Join(tmp, fmt.Sprintf("rec-%s-%d", backend, history)),
			})
			if err != nil {
				return nil, err
			}
			t.AddRow(backend, "recovery", history, res.LiveKeys, "-", "-", "-", "-",
				fmt.Sprintf("%.2f", res.OpenMS), fmt.Sprintf("%.2f", res.ScanMS),
				res.BytesReplayed>>10)
		}
	}
	return t, nil
}
