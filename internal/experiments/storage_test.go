package experiments

import (
	"path/filepath"
	"testing"

	"repro/internal/stable"
)

// TestApplyBenchBackends smoke-runs the durable-throughput harness for
// both engines and sanity-checks the group-commit and fsync accounting.
func TestApplyBenchBackends(t *testing.T) {
	for _, backend := range []string{"file", "wal"} {
		res, err := RunApplyBench(ApplyBenchConfig{
			Backend:   backend,
			Workers:   2,
			Batches:   24,
			ValueSize: 64,
			Dir:       filepath.Join(t.TempDir(), backend),
		})
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		if res.BatchesPerS <= 0 {
			t.Errorf("%s: non-positive throughput", backend)
		}
		if res.GroupCommits <= 0 || res.GroupCommits > 24 {
			t.Errorf("%s: group commits = %d", backend, res.GroupCommits)
		}
		if res.Fsyncs <= 0 {
			t.Errorf("%s: no fsyncs counted on the durable path", backend)
		}
	}
}

// TestRecoveryBenchBackends runs the recovery harness small and checks
// the shape of the claim: the checkpointed WAL replays less than the
// checkpoint-less one, and every backend recovers the same live set.
func TestRecoveryBenchBackends(t *testing.T) {
	const history = 512
	results := map[string]RecoveryBenchResult{}
	for _, backend := range []string{"file", "wal", "wal-nockpt"} {
		res, err := RunRecoveryBench(RecoveryBenchConfig{
			Backend: backend,
			History: history,
			Dir:     filepath.Join(t.TempDir(), backend),
		})
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		if res.LiveKeys != history/4 {
			t.Errorf("%s: live keys = %d, want %d", backend, res.LiveKeys, history/4)
		}
		results[backend] = res
	}
	if results["wal"].BytesReplayed >= results["wal-nockpt"].BytesReplayed {
		t.Errorf("checkpoint did not bound the replay: ckpt %d >= nockpt %d",
			results["wal"].BytesReplayed, results["wal-nockpt"].BytesReplayed)
	}
}

// TestStoreSpecBackends covers the backend selector used by the cluster
// harnesses: every named backend resolves to a Spec that opens through
// the unified stable.Open path.
func TestStoreSpecBackends(t *testing.T) {
	if spec, err := StoreSpec("", "", nil); err != nil || spec.Engine != "mem" {
		t.Errorf("empty backend: spec=%+v err=%v (want the mem default)", spec, err)
	}
	dir := t.TempDir()
	for _, backend := range []string{"mem", "file", "wal"} {
		spec, err := StoreSpec(backend, dir, nil)
		if err != nil {
			t.Fatalf("%s spec: %v", backend, err)
		}
		s, err := stable.Open(spec.ForNode("n0-" + backend))
		if err != nil {
			t.Fatalf("%s store: %v", backend, err)
		}
		if err := s.Apply(); err != nil {
			t.Errorf("%s store unusable: %v", backend, err)
		}
		_ = stable.Close(s)
	}
	if _, err := StoreSpec("papyrus", dir, nil); err == nil {
		t.Error("unknown backend accepted")
	}
}
