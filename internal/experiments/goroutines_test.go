package experiments

import (
	"testing"
	"time"
)

// TestGoroutinesBoundedUnderLoad pins the O(workers) goroutine bound of
// the event-driven protocol core: 1000 in-flight agents over 4 nodes ×
// 8 workers must not cost a goroutine per agent or per in-flight
// transaction. The steady-state population is the fixed per-node crew
// (dispatcher, timer wheel, scheduler dispatcher, workers, recovery)
// plus transient RCE executions and network deliveries — nothing scales
// with the agents sitting in the input queues; the measured peak is
// ~50. A regression that re-introduces per-transaction goroutines (the
// pre-PR-5 polling cycles) blows past the bound immediately.
//
// Under the race detector the contended scheduler workload runs orders
// of magnitude slower (the PR-4 baseline could not even finish 128
// agents inside the harness deadline), so the race build scales the
// point down; the bound still sits well below the agent count.
func TestGoroutinesBoundedUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("load test")
	}
	const (
		nodes   = 4
		workers = 8
	)
	agents := 1000
	if raceDetectorEnabled {
		agents = 128
	}
	res, err := RunThroughput(ThroughputConfig{
		Nodes:    nodes,
		Workers:  workers,
		Agents:   agents,
		Steps:    2,
		Banks:    8,
		StepWork: 200 * time.Microsecond,
		Timeout:  4 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Fixed crew: ~4 goroutines per node (dispatcher, wheel, pool
	// dispatcher, recovery) + workers, the cluster collector, the test
	// runtime, and headroom for transient deliveries/RCE executions —
	// ~2× the measured peak of ~50, and far below the agent count.
	bound := nodes*(workers+6) + 60
	if res.GoroutinePeak > bound {
		t.Errorf("goroutine peak %d exceeds O(workers) bound %d for %d in-flight agents",
			res.GoroutinePeak, bound, agents)
	}
	if res.GoroutinePeak >= agents {
		t.Errorf("goroutine peak %d scales with agents (%d) — per-transaction goroutines are back",
			res.GoroutinePeak, agents)
	}
	t.Logf("goroutine peak %d for %d agents on %d nodes × %d workers (bound %d)",
		res.GoroutinePeak, agents, nodes, workers, bound)
}
