package experiments

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/agent"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/itinerary"
	"repro/internal/node"
	"repro/internal/resource"
	"repro/internal/stable"
	"repro/internal/txn"
)

// expLatency is the simulated one-way network latency used by the
// cluster-based experiments; it makes transfer counts visible in elapsed
// times without slowing the suite down.
const expLatency = 200 * time.Microsecond

// Fig1 measures the normal (forward) execution of Figure 1: per-step cost
// and agent transfer volume as the agent's strongly reversible payload
// grows. The paper's model predicts transfer size — and with it per-step
// latency — to grow with the agent state the protocol must move and log.
func Fig1() (*Table, error) {
	t := &Table{
		Title:  "F1 (Figure 1): step execution cost vs agent payload",
		Note:   "8 steps over 4 nodes, forward execution only (no rollback)",
		Header: []string{"payload B/step", "elapsed ms", "ms/step", "transfers", "transfer KB", "stable KB"},
	}
	for _, payload := range []int{0, 1 << 10, 8 << 10, 32 << 10} {
		res, err := RunPipeline(PipelineConfig{
			Nodes: 4, Steps: 8, PayloadBytes: payload,
			Latency: expLatency,
		})
		if err != nil {
			return nil, err
		}
		if res.Failed {
			return nil, errors.New("fig1: " + res.Reason)
		}
		ms := float64(res.Elapsed.Microseconds()) / 1000
		t.AddRow(payload, ms, ms/8,
			res.Metrics.AgentTransfers,
			float64(res.Metrics.AgentTransferByte)/1024,
			float64(res.Metrics.StableBytes)/1024)
	}
	return t, nil
}

// Fig2 reproduces the rollback-log layout of Figure 2 and measures the
// encoded log size as the number of operation entries per step grows.
func Fig2() (*Table, error) {
	t := &Table{
		Title:  "F2 (Figure 2): rollback log layout and size vs operation entries per step",
		Header: []string{"OEs/step", "steps", "entries", "encoded KB", "B/entry"},
	}
	for _, p := range []int{1, 4, 16, 64} {
		var l core.Log
		if err := l.AppendSavepoint("k", map[string][]byte{"v": make([]byte, 64)}, core.StateLogging, true); err != nil {
			return nil, err
		}
		const steps = 8
		for s := 0; s < steps; s++ {
			l.Append(&core.BeginStepEntry{Node: "n", Seq: s})
			for i := 0; i < p; i++ {
				l.Append(&core.OpEntry{
					Kind:   core.OpResource,
					Op:     "bank.untransfer",
					Params: core.NewParams().Set("from", "a").Set("to", "b").Set("amt", int64(i)),
				})
			}
			l.Append(&core.EndStepEntry{Node: "n", Seq: s})
		}
		size, err := l.EncodedSize()
		if err != nil {
			return nil, err
		}
		t.AddRow(p, steps, l.Len(), float64(size)/1024, float64(size)/float64(l.Len()))
	}
	// Layout check: the exact Figure-2 sequence.
	var l core.Log
	if err := l.AppendSavepoint("k", nil, core.StateLogging, true); err != nil {
		return nil, err
	}
	l.Append(&core.BeginStepEntry{Node: "n", Seq: 0})
	l.Append(&core.OpEntry{Kind: core.OpResource, Op: "oe1", Params: core.NewParams()})
	l.Append(&core.OpEntry{Kind: core.OpResource, Op: "oe2", Params: core.NewParams()})
	l.Append(&core.EndStepEntry{Node: "n", Seq: 0})
	t.Note = "layout: " + l.String()
	return t, nil
}

// Fig3 measures partial-rollback cost (Figure 3/4 mechanism) as a function
// of the number of committed steps rolled back: the rollback revisits every
// step's node in reverse, so cost should grow linearly with rollback depth.
func Fig3() (*Table, error) {
	t := &Table{
		Title:  "F3 (Figures 3-4): rollback cost vs steps rolled back (basic algorithm)",
		Note:   "forward column is the same workload without the rollback; diff isolates the rollback",
		Header: []string{"steps", "forward ms", "with-rollback ms", "rollback ms", "comp txns", "comp ops", "transfers"},
	}
	for _, k := range []int{2, 4, 8, 16} {
		fwd, err := RunPipeline(PipelineConfig{
			Nodes: 4, Steps: k, Latency: expLatency,
		})
		if err != nil {
			return nil, err
		}
		rb, err := RunPipeline(PipelineConfig{
			Nodes: 4, Steps: k, Latency: expLatency, Rollback: true,
		})
		if err != nil {
			return nil, err
		}
		if fwd.Failed || rb.Failed {
			return nil, fmt.Errorf("fig3: failed: %s %s", fwd.Reason, rb.Reason)
		}
		fms := float64(fwd.Elapsed.Microseconds()) / 1000
		rms := float64(rb.Elapsed.Microseconds()) / 1000
		t.AddRow(k, fms, rms, rms-2*fms, rb.Metrics.CompTxns, rb.Metrics.CompOps, rb.Metrics.AgentTransfers)
	}
	return t, nil
}

// Fig4 injects a node crash into a running rollback and verifies the
// mechanism's eventual-completion guarantee (Figure 4 discussion, §4.3):
// the agent and its log survive in stable input queues, the crashed node
// recovers, the compensation transaction restarts, and the rollback still
// produces exactly-once compensation.
func Fig4() (*Table, error) {
	t := &Table{
		Title:  "F4 (Figure 4): rollback completion under node crash + recovery",
		Note:   "8 steps over 4 nodes, basic algorithm; w2 crashes after the first compensation commits and recovers 25 ms later",
		Header: []string{"variant", "completed", "elapsed ms", "comp txns", "comp txn aborts", "step txn aborts"},
	}
	for _, crash := range []bool{false, true} {
		cfg := PipelineConfig{Nodes: 4, Steps: 8, Latency: expLatency, Rollback: true}
		cl, err := BuildPipelineCluster(cfg)
		if err != nil {
			return nil, err
		}
		if crash {
			go func() {
				deadline := time.Now().Add(runTimeout)
				for time.Now().Before(deadline) {
					if cl.Counters().Snapshot().CompTxns >= 1 {
						if err := cl.Crash("w2"); err == nil {
							time.Sleep(25 * time.Millisecond)
							_ = cl.Recover("w2")
						}
						return
					}
					time.Sleep(time.Millisecond)
				}
			}()
		}
		res, err := RunPipelineOn(cl, cfg, "fig4-agent")
		cl.Close()
		if err != nil {
			return nil, err
		}
		variant := "no crash"
		if crash {
			variant = "crash w2 during rollback"
		}
		t.AddRow(variant, !res.Failed,
			float64(res.Elapsed.Microseconds())/1000,
			res.Metrics.CompTxns, res.Metrics.CompTxnAborts, res.Metrics.StepTxnAborts)
	}
	return t, nil
}

// Fig5 is the headline comparison: the basic rollback algorithm (Figure 4)
// against the optimized one (Figure 5) across the fraction of steps whose
// compensation contains a mixed entry. Prose claim (§4.4.1): the
// optimization avoids agent transfers and reduces network load whenever no
// mixed entry forces the agent to the resource node; the two algorithms
// converge as the mixed fraction approaches 1.
func Fig5() (*Table, error) {
	t := &Table{
		Title:  "F5 (Figure 5): basic vs optimized rollback vs mixed-compensation fraction",
		Note:   "12 steps over 5 nodes, all rolled back; transfers/bytes cover the whole run (forward legs are identical)",
		Header: []string{"mixed frac", "algorithm", "agent transfers", "transfer KB", "RCE batches", "messages", "elapsed ms"},
	}
	for _, frac := range []float64{0, 0.25, 0.5, 0.75, 1} {
		for _, optimized := range []bool{false, true} {
			res, err := RunPipeline(PipelineConfig{
				Nodes: 5, Steps: 12,
				Mixed:     MixedFlags(12, frac),
				Optimized: optimized,
				Latency:   expLatency,
				Rollback:  true,
			})
			if err != nil {
				return nil, err
			}
			if res.Failed {
				return nil, errors.New("fig5: " + res.Reason)
			}
			alg := "basic (Fig. 4)"
			if optimized {
				alg = "optimized (Fig. 5)"
			}
			t.AddRow(fmt.Sprintf("%.2f", frac), alg,
				res.Metrics.AgentTransfers,
				float64(res.Metrics.AgentTransferByte)/1024,
				res.Metrics.RemoteCompBatches,
				res.Metrics.Messages,
				float64(res.Elapsed.Microseconds())/1000)
		}
	}
	return t, nil
}

// Fig6 measures the log-size reduction of the itinerary integration
// (Figure 6, §4.4.2): flat per-step savepoints versus hierarchical
// top-level sub-itineraries that discard the log on completion, under both
// state and transition logging.
func Fig6() (*Table, error) {
	t := &Table{
		Title:  "F6 (Figure 6): rollback-log size — flat savepoints vs itinerary-managed",
		Note:   "24 steps, 512 B of new SRO data per step; peak = largest encoded log observed",
		Header: []string{"structure", "logging", "savepoints", "peak log KB"},
	}
	type variant struct {
		name  string
		group int
		spAll bool
		mode  core.LogMode
	}
	variants := []variant{
		{"flat, savepoint every step", 0, true, core.StateLogging},
		{"flat, savepoint every step", 0, true, core.TransitionLogging},
		{"4 top-level subs of 6", 6, false, core.StateLogging},
		{"4 top-level subs of 6", 6, false, core.TransitionLogging},
	}
	for _, v := range variants {
		res, err := RunPipeline(PipelineConfig{
			Nodes: 4, Steps: 24,
			PayloadBytes:       512,
			LogMode:            v.mode,
			Latency:            expLatency,
			SavepointEveryStep: v.spAll,
			TopLevelGroup:      v.group,
		})
		if err != nil {
			return nil, err
		}
		if res.Failed {
			return nil, errors.New("fig6: " + res.Reason)
		}
		mode := "state"
		if v.mode == core.TransitionLogging {
			mode = "transition"
		}
		t.AddRow(v.name, mode, res.Metrics.Savepoints, float64(res.Metrics.LogBytesPeak)/1024)
	}
	return t, nil
}

// TLog compares state and transition logging of strongly reversible
// objects (§4.2) in isolation: savepoint-entry sizes for an SRO set of
// fixed size with a varying mutation fraction between savepoints.
func TLog() (*Table, error) {
	t := &Table{
		Title:  "T-log (§4.2): savepoint size — state vs transition logging",
		Note:   "64 SRO objects x 512 B, 8 savepoints; fraction of objects mutated between savepoints varies",
		Header: []string{"mutated frac", "state log KB", "transition log KB", "ratio"},
	}
	const (
		objects = 64
		objSize = 512
		spCount = 8
	)
	for _, frac := range []float64{0.05, 0.25, 1.0} {
		sizes := make(map[core.LogMode]int, 2)
		for _, mode := range []core.LogMode{core.StateLogging, core.TransitionLogging} {
			sro := make(map[string][]byte, objects)
			for i := 0; i < objects; i++ {
				sro[fmt.Sprintf("obj%02d", i)] = make([]byte, objSize)
			}
			var l core.Log
			mutate := int(frac * objects)
			for sp := 0; sp < spCount; sp++ {
				for i := 0; i < mutate; i++ {
					key := fmt.Sprintf("obj%02d", (sp*mutate+i)%objects)
					buf := make([]byte, objSize)
					buf[0] = byte(sp + 1)
					sro[key] = buf
				}
				if err := l.AppendSavepoint(fmt.Sprintf("sp%d", sp), sro, mode, true); err != nil {
					return nil, err
				}
				// Sanity: reconstruction matches the captured state.
				got, err := l.ReconstructSRO(fmt.Sprintf("sp%d", sp))
				if err != nil {
					return nil, err
				}
				if len(got) != len(sro) {
					return nil, errors.New("tlog: reconstruction mismatch")
				}
			}
			size, err := l.EncodedSize()
			if err != nil {
				return nil, err
			}
			sizes[mode] = size
		}
		state := float64(sizes[core.StateLogging]) / 1024
		trans := float64(sizes[core.TransitionLogging]) / 1024
		t.AddRow(fmt.Sprintf("%.2f", frac), state, trans, trans/state)
	}
	return t, nil
}

// TFT demonstrates the §4.3 discussion: a rollback whose compensation node
// is permanently unreachable blocks, while alternative nodes recorded in
// the end-of-step entry let the fault-tolerant variant complete.
func TFT() (*Table, error) {
	t := &Table{
		Title:  "T-ft (§4.3): rollback with a permanently unreachable node",
		Note:   "the payment node dies after the step commits; 'alt' names an alternative node in the step entry",
		Header: []string{"variant", "outcome", "waited ms"},
	}
	for _, withAlt := range []bool{false, true} {
		outcome, waited, err := runUnreachable(withAlt)
		if err != nil {
			return nil, err
		}
		variant := "no alternatives"
		if withAlt {
			variant = "alternative node in EOS"
		}
		t.AddRow(variant, outcome, float64(waited.Microseconds())/1000)
	}
	return t, nil
}

// runUnreachable builds the three-node pay/decide scenario, kills the
// payment node permanently after its step committed, and reports whether
// the agent completes.
func runUnreachable(withAlt bool) (string, time.Duration, error) {
	cl := cluster.New(cluster.Options{
		Optimized:   true,
		Latency:     expLatency,
		RetryDelay:  2 * time.Millisecond,
		AckTimeout:  50 * time.Millisecond,
		MaxAttempts: 60,
	})
	defer cl.Close()
	bank := func(store stable.Store) (resource.Resource, error) {
		return resource.NewBank(store, "bank", true)
	}
	for _, n := range []string{"home", "res", "alt"} {
		var fs []node.ResourceFactory
		if n != "home" {
			fs = append(fs, node.ResourceFactory(bank))
		}
		if err := cl.AddNode(n, fs...); err != nil {
			return "", 0, err
		}
	}
	var decideStarted atomic.Bool
	reg := cl.Registry()
	if err := reg.RegisterStep("tft.pay", func(ctx agent.StepContext) error {
		if again, err := ctx.WRO().Has("second"); err != nil || again {
			return err
		}
		r, _ := ctx.Resource("bank")
		if err := r.(*resource.Bank).Deposit(ctx.Tx(), "m", 100); err != nil {
			return err
		}
		ctx.LogComp(core.OpResource, "tft.comp.pay", core.NewParams().Set("amt", int64(100)))
		ctx.LogComp(core.OpAgent, "tft.comp.mark", core.NewParams())
		return nil
	}); err != nil {
		return "", 0, err
	}
	if err := reg.RegisterStep("tft.decide", func(ctx agent.StepContext) error {
		decideStarted.Store(true)
		if done, err := ctx.WRO().Has("second"); err != nil {
			return err
		} else if done {
			return nil
		}
		return ctx.RollbackCurrentSub()
	}); err != nil {
		return "", 0, err
	}
	if err := reg.RegisterComp("tft.comp.pay", func(ctx agent.CompContext) error {
		r, err := ctx.Resource("bank")
		if err != nil {
			return err
		}
		var amt int64
		if err := ctx.Params().Get("amt", &amt); err != nil {
			return err
		}
		return r.(*resource.Bank).Withdraw(ctx.Tx(), "m", amt)
	}); err != nil {
		return "", 0, err
	}
	if err := reg.RegisterComp("tft.comp.mark", func(ctx agent.CompContext) error {
		wro, err := ctx.WRO()
		if err != nil {
			return err
		}
		return wro.Set("second", true)
	}); err != nil {
		return "", 0, err
	}
	if err := cl.Start(); err != nil {
		return "", 0, err
	}
	for _, n := range []string{"res", "alt"} {
		name := n
		nd, _ := cl.Node(name)
		if err := cl.WithTx(name, func(tx *txn.Tx, _ *node.Node) error {
			r, _ := nd.Resource("bank")
			return r.(*resource.Bank).OpenAccount(tx, "m", 0)
		}); err != nil {
			return "", 0, err
		}
	}

	payStep := itinerary.Step{Method: "tft.pay", Loc: "res"}
	if withAlt {
		payStep.Alt = []string{"alt"}
	}
	it, err := itinerary.New(&itinerary.Sub{ID: "job", Entries: []itinerary.Entry{
		payStep,
		itinerary.Step{Method: "tft.decide", Loc: "home"},
	}})
	if err != nil {
		return "", 0, err
	}
	a, entered, err := agent.New("tft-agent", "", it)
	if err != nil {
		return "", 0, err
	}
	start := time.Now()
	ch, err := cl.Launch(a, entered, "res")
	if err != nil {
		return "", 0, err
	}
	// Kill the payment node once the agent safely moved past it.
	for !decideStarted.Load() {
		if time.Since(start) > runTimeout {
			return "", 0, errors.New("tft: decide never reached")
		}
		time.Sleep(time.Millisecond)
	}
	if err := cl.Crash("res"); err != nil {
		return "", 0, err
	}

	timeout := 2 * time.Second
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case res := <-ch:
		if res.Failed {
			return "failed: " + res.Reason, time.Since(start), nil
		}
		return "completed via alternative", time.Since(start), nil
	case <-timer.C:
		return "blocked (still retrying)", timeout, nil
	}
}

// Experiment is one named experiment of the suite.
type Experiment struct {
	Name string
	Run  func() (*Table, error)
}

// List returns every experiment in suite order.
func List() []Experiment {
	return []Experiment{
		{"f1", Fig1}, {"f2", Fig2}, {"f3", Fig3}, {"f4", Fig4},
		{"f5", Fig5}, {"f6", Fig6}, {"tlog", TLog}, {"tft", TFT},
		{"tperf", TPerf}, {"tput", Throughput}, {"stor", Storage},
		{"repl", Repl}, {"chaos", Chaos},
	}
}
