//go:build race

package experiments

// raceDetectorEnabled reports whether this build runs under the race
// detector; load tests scale themselves down accordingly (the detector
// stretches contended scheduler workloads far beyond its nominal
// overhead).
const raceDetectorEnabled = true
