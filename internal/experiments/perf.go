package experiments

import (
	"fmt"
	"time"

	"repro/internal/perfmodel"
)

// TPerf evaluates the §4.4.1 further-optimization model (after Straßer &
// Schwehm [16]): for growing agent sizes, which strategy — migrating the
// agent, shipping the resource compensation entries (Figure 5b), or plain
// RPC per operation — completes a step's remote compensation fastest. The
// Figure-5 implementation corresponds to the ship-entries column; the
// model explains *why* it wins once agents carry state.
func TPerf() (*Table, error) {
	link := perfmodel.Link{Latency: 200 * time.Microsecond, ThroughputBps: 10e6}
	t := &Table{
		Title: "T-perf (§4.4.1, model of [16]): remote-compensation strategy vs agent size",
		Note: fmt.Sprintf("LAN model: %v one-way latency, %.0f MB/s; 4 ops, 1 KiB entry list; crossover at %d B agent",
			link.Latency, link.ThroughputBps/1e6, perfmodel.CrossoverAgentBytes(1024, link)),
		Header: []string{"agent KB", "migrate ms", "ship ms", "rpc ms", "model picks"},
	}
	for _, agentKB := range []int{1, 4, 16, 64, 256, 1024} {
		st := perfmodel.Step{
			AgentBytes: agentKB << 10,
			EntryBytes: 1024,
			Ops:        4,
		}
		mig := perfmodel.Cost(perfmodel.MigrateAgent, st, link)
		ship := perfmodel.Cost(perfmodel.ShipEntries, st, link)
		rpc := perfmodel.Cost(perfmodel.RPC, st, link)
		pick, _ := perfmodel.Pick(st, link)
		t.AddRow(agentKB,
			float64(mig.Microseconds())/1000,
			float64(ship.Microseconds())/1000,
			float64(rpc.Microseconds())/1000,
			pick.String())
	}
	return t, nil
}
