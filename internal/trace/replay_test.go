package trace_test

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/cluster"
	"repro/internal/itinerary"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/node"
	"repro/internal/resource"
	"repro/internal/stable"
	"repro/internal/trace"
)

// runTracedCluster executes one three-node agent run on a frozen
// VirtualClock and returns the canonical JSONL export of its merged
// trace.
func runTracedCluster(t *testing.T) []byte {
	t.Helper()
	vc := network.NewVirtualClock(time.Time{})
	cl := cluster.New(cluster.Options{
		Optimized: true,
		Clock:     vc,
		Counters:  &metrics.Counters{},
	})
	bank := func(name string) node.ResourceFactory {
		return func(store stable.Store) (resource.Resource, error) {
			return resource.NewBank(store, name, false)
		}
	}
	for _, n := range []string{"A", "B", "C"} {
		if err := cl.AddNode(n, bank("bank-"+n)); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.Registry().RegisterStep("replay.noop", func(ctx agent.StepContext) error {
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := cl.Start(); err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	it, err := itinerary.New(&itinerary.Sub{ID: "trip", Entries: []itinerary.Entry{
		itinerary.Step{Method: "replay.noop", Loc: "A"},
		itinerary.Step{Method: "replay.noop", Loc: "B"},
		itinerary.Step{Method: "replay.noop", Loc: "C"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	a, entered, err := agent.New("replay-agent", "", it)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Run(a, entered, "A", 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed {
		t.Fatalf("agent failed: %s", res.Reason)
	}

	// The completion notification races the last ack deliveries (done
	// acks, commit acks), so quiesce before snapshotting: the *settled*
	// record multiset is the deterministic one.
	rs := cl.TraceRecords()
	for settled, last := 0, -1; settled < 10; {
		rs = cl.TraceRecords()
		if len(rs) == last {
			settled++
		} else {
			settled, last = 0, len(rs)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(rs) == 0 {
		t.Fatal("traced cluster produced no records (tracing should be on by default)")
	}
	trace.CanonicalSort(rs)
	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, rs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestReplayByteIdentical is the tracer's determinism contract: two runs
// of the same workload on a frozen VirtualClock over a loss-free network
// produce byte-identical canonical trace exports, even though goroutine
// interleaving (and hence ring claim order) differs between runs.
func TestReplayByteIdentical(t *testing.T) {
	first := runTracedCluster(t)
	second := runTracedCluster(t)
	if !bytes.Equal(first, second) {
		la, lb := diffLine(first, second)
		t.Fatalf("same-seed replays diverged:\nrun1: %s\nrun2: %s", la, lb)
	}
}

// diffLine returns the first differing line pair for a readable failure.
func diffLine(a, b []byte) (string, string) {
	as := bytes.Split(a, []byte("\n"))
	bs := bytes.Split(b, []byte("\n"))
	for i := 0; i < len(as) && i < len(bs); i++ {
		if !bytes.Equal(as[i], bs[i]) {
			return string(as[i]), string(bs[i])
		}
	}
	return "<run1 has " + itoa(len(as)) + " lines>", "<run2 has " + itoa(len(bs)) + " lines>"
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var d []byte
	for n > 0 {
		d = append([]byte{byte('0' + n%10)}, d...)
		n /= 10
	}
	return string(d)
}
