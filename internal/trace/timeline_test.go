package trace

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// fixture: two agents on two nodes; the transitions carry only txn IDs
// and must be joined to their agents through the OpAgentStep records.
func timelineFixture() []Record {
	return []Record{
		{Seq: 1, T: 10, Op: OpAgentStep, Node: "A", Txn: "A#1", Agent: "trip1", Name: "buy"},
		{Seq: 2, T: 20, Op: OpTransition, Node: "A", Txn: "A#1", Name: "PrepareReceived", A: "-", B: "staged", N: 1},
		{Seq: 3, T: 30, Op: OpWireSend, Node: "A", Txn: "A#1", Name: "q.commit", A: "B", N: 64},
		{Seq: 4, T: 15, Op: OpAgentStep, Node: "B", Txn: "B#7", Agent: "trip2", Name: "sell"},
		{Seq: 5, T: 25, Op: OpTransition, Node: "B", Txn: "B#7", Name: "AckReceived(commit)", A: "coord-active", B: "coord-idle", N: 0},
		{Seq: 6, T: 40, Op: OpBatchFlush, Node: "A", A: "B", N: 3}, // node-level, no agent
	}
}

func TestTxnAgentsJoin(t *testing.T) {
	rs := timelineFixture()
	byTxn := TxnAgents(rs)
	want := map[string]string{"A#1": "trip1", "B#7": "trip2"}
	if !reflect.DeepEqual(byTxn, want) {
		t.Errorf("TxnAgents = %v, want %v", byTxn, want)
	}
	if ag := AgentOf(rs[1], byTxn); ag != "trip1" {
		t.Errorf("AgentOf(txn-only transition) = %q, want trip1", ag)
	}
	if ag := AgentOf(rs[5], byTxn); ag != "" {
		t.Errorf("AgentOf(batch flush) = %q, want \"\"", ag)
	}
}

func TestBuildTimelines(t *testing.T) {
	tls := BuildTimelines(timelineFixture())
	if len(tls) != 2 {
		t.Fatalf("%d timelines, want 2", len(tls))
	}
	if tls[0].Agent != "trip1" || tls[1].Agent != "trip2" {
		t.Fatalf("agents = %s, %s (want sorted trip1, trip2)", tls[0].Agent, tls[1].Agent)
	}
	if n := len(tls[0].Records); n != 3 {
		t.Errorf("trip1 has %d records, want 3 (join must pull in txn-only records)", n)
	}
	for i := 1; i < len(tls[0].Records); i++ {
		if tls[0].Records[i-1].T > tls[0].Records[i].T {
			t.Errorf("trip1 timeline not causally ordered at %d", i)
		}
	}
}

func TestFilters(t *testing.T) {
	rs := timelineFixture()
	if got := FilterTxn(rs, "B#7"); len(got) != 2 {
		t.Errorf("FilterTxn(B#7) = %d records, want 2", len(got))
	}
	if got := FilterAgent(rs, "trip1"); len(got) != 3 {
		t.Errorf("FilterAgent(trip1) = %d records, want 3 (join-aware)", len(got))
	}
	if got := FilterAgent(rs, "nobody"); len(got) != 0 {
		t.Errorf("FilterAgent(nobody) = %d records, want 0", len(got))
	}
}

func TestCausalSortOrder(t *testing.T) {
	rs := []Record{
		{Seq: 9, T: 5, Node: "B"},
		{Seq: 1, T: 5, Node: "A"},
		{Seq: 2, T: 3, Node: "Z"},
		{Seq: 1, T: 5, Node: "B"},
	}
	CausalSort(rs)
	want := []Record{
		{Seq: 2, T: 3, Node: "Z"},
		{Seq: 1, T: 5, Node: "A"},
		{Seq: 1, T: 5, Node: "B"},
		{Seq: 9, T: 5, Node: "B"},
	}
	if !reflect.DeepEqual(rs, want) {
		t.Errorf("CausalSort = %v", rs)
	}
}

// CanonicalSort must produce the same order regardless of the racy claim
// sequence — permute Seq, sort, and the content order must not move.
func TestCanonicalSortSeqFree(t *testing.T) {
	base := timelineFixture()
	a := append([]Record(nil), base...)
	b := append([]Record(nil), base...)
	// Reverse b and scramble its Seq values.
	for i, j := 0, len(b)-1; i < j; i, j = i+1, j-1 {
		b[i], b[j] = b[j], b[i]
	}
	for i := range b {
		b[i].Seq = uint64(100 - i)
	}
	CanonicalSort(a)
	CanonicalSort(b)
	for i := range a {
		x, y := a[i], b[i]
		x.Seq, y.Seq = 0, 0
		if !reflect.DeepEqual(x, y) {
			t.Fatalf("canonical order diverged at %d:\n%+v\n%+v", i, x, y)
		}
	}
}

func TestBuildPostMortem(t *testing.T) {
	pms := BuildPostMortem(timelineFixture(), []string{"trip1"})
	if len(pms) != 1 {
		t.Fatalf("%d post-mortems, want 1", len(pms))
	}
	pm := pms[0]
	if pm.Agent != "trip1" || pm.LastTxn != "A#1" {
		t.Errorf("agent/txn = %s/%s, want trip1/A#1", pm.Agent, pm.LastTxn)
	}
	if pm.LastEvent != "PrepareReceived" || pm.LastEdge != "- → staged" {
		t.Errorf("last transition = %s [%s]", pm.LastEvent, pm.LastEdge)
	}
	if len(pm.Tail) != 3 {
		t.Errorf("tail = %d records, want 3", len(pm.Tail))
	}

	var sb strings.Builder
	WritePostMortem(&sb, pms)
	text := sb.String()
	for _, want := range []string{"agent trip1", "last txn A#1", "last edge PrepareReceived [- → staged]", "wire-send"} {
		if !strings.Contains(text, want) {
			t.Errorf("post-mortem text missing %q:\n%s", want, text)
		}
	}
}

// The tail must be bounded so a post-mortem of a long-lived agent stays
// readable (and the chaos artifact stays small).
func TestPostMortemTailBounded(t *testing.T) {
	rs := []Record{{Seq: 1, T: 1, Op: OpAgentStep, Node: "A", Txn: "A#1", Agent: "ag", Name: "s"}}
	for i := 0; i < 200; i++ {
		rs = append(rs, Record{Seq: uint64(i + 2), T: int64(i + 2), Op: OpTransition,
			Node: "A", Txn: "A#1", Name: fmt.Sprintf("ev%d", i), A: "x", B: "y"})
	}
	pms := BuildPostMortem(rs, nil)
	if len(pms) != 1 || len(pms[0].Tail) != tailLen {
		t.Fatalf("tail = %d records, want cap %d", len(pms[0].Tail), tailLen)
	}
	last := pms[0].Tail[len(pms[0].Tail)-1]
	if last.Name != "ev199" {
		t.Errorf("tail must keep the newest records, ends at %q", last.Name)
	}
}
