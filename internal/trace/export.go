package trace

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"time"
)

// jsonRecord is the export view of a Record. Seq is deliberately absent:
// it encodes racy claim order, and leaving it out is what lets canonical
// exports of the same run be byte-identical (see CanonicalSort).
type jsonRecord struct {
	T     int64  `json:"t"`
	Op    string `json:"op"`
	Node  string `json:"node"`
	Txn   string `json:"txn,omitempty"`
	Agent string `json:"agent,omitempty"`
	Name  string `json:"name,omitempty"`
	A     string `json:"a,omitempty"`
	B     string `json:"b,omitempty"`
	N     int64  `json:"n,omitempty"`
}

func toJSONRecord(r Record) jsonRecord {
	return jsonRecord{T: r.T, Op: r.Op.String(), Node: r.Node, Txn: r.Txn,
		Agent: r.Agent, Name: r.Name, A: r.A, B: r.B, N: r.N}
}

// WriteJSONL writes records one JSON object per line, in the order
// given (callers pick CausalSort or CanonicalSort first).
func WriteJSONL(w io.Writer, rs []Record) error {
	enc := json.NewEncoder(w)
	for _, r := range rs {
		if err := enc.Encode(toJSONRecord(r)); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON writes records as one JSON array (the /trace wire format).
func WriteJSON(w io.Writer, rs []Record) error {
	out := make([]jsonRecord, len(rs))
	for i, r := range rs {
		out[i] = toJSONRecord(r)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// DecodeJSON parses the WriteJSON wire format back into records (Seq
// stays zero — it does not survive export). Used by agentctl.
func DecodeJSON(data []byte) ([]Record, error) {
	var in []jsonRecord
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, err
	}
	ops := make(map[string]Op, len(opNames))
	for op, name := range opNames {
		if name != "" {
			ops[name] = Op(op)
		}
	}
	out := make([]Record, len(in))
	for i, r := range in {
		out[i] = Record{T: r.T, Op: ops[r.Op], Node: r.Node, Txn: r.Txn,
			Agent: r.Agent, Name: r.Name, A: r.A, B: r.B, N: r.N}
	}
	return out, nil
}

// FormatRecord renders one record as a text line, with time relative to
// base (pass 0 for absolute nanoseconds).
func FormatRecord(r Record, base int64) string {
	s := fmt.Sprintf("t=+%-10s %-4s %-12s", time.Duration(r.T-base), r.Node, r.Op)
	if r.Name != "" {
		s += " " + r.Name
	}
	if r.Txn != "" {
		s += " txn=" + r.Txn
	}
	if r.Agent != "" {
		s += " agent=" + r.Agent
	}
	if r.Op == OpTransition {
		s += fmt.Sprintf(" edge=%s→%s effects=%d", r.A, r.B, r.N)
	} else {
		if r.A != "" {
			s += " peer=" + r.A
		}
		if r.N != 0 {
			s += fmt.Sprintf(" n=%d", r.N)
		}
	}
	return s
}

// Chrome trace_event export. The output is the JSON-object flavor
// ({"traceEvents": [...]}) with one process per node and one thread per
// agent, loadable in chrome://tracing and Perfetto:
//
//   - metadata ("M") events name processes and threads,
//   - every record is an instant ("i") event at its clock time,
//   - each (agent, txn) pair additionally gets a complete ("X") span
//     from its first to its last record, which is what renders the
//     per-transaction timeline bars.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace exports records as Chrome trace_event JSON.
func WriteChromeTrace(w io.Writer, rs []Record) error {
	rs = append([]Record(nil), rs...)
	CausalSort(rs)

	byTxn := TxnAgents(rs)
	var minT int64
	if len(rs) > 0 {
		minT = rs[0].T
	}
	us := func(t int64) float64 { return float64(t-minT) / 1e3 }

	// Stable pid per node, tid per agent (tid 0 = node-level events).
	nodes := map[string]bool{}
	agents := map[string]bool{}
	for _, r := range rs {
		nodes[r.Node] = true
		if ag := AgentOf(r, byTxn); ag != "" {
			agents[ag] = true
		}
	}
	pid := stableIndex(nodes, 1)
	tid := stableIndex(agents, 1)

	tr := chromeTrace{DisplayTimeUnit: "ms"}
	for name, id := range pid {
		tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: id,
			Args: map[string]any{"name": "node " + name},
		})
	}
	for name, id := range tid {
		for _, p := range pid {
			tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: p, Tid: id,
				Args: map[string]any{"name": "agent " + name},
			})
		}
	}

	// Per-(agent, txn) span bounds.
	type spanKey struct{ agent, txn string }
	type span struct{ first, last int64 }
	spans := map[spanKey]*span{}
	for _, r := range rs {
		ag := AgentOf(r, byTxn)
		if ag == "" || r.Txn == "" {
			continue
		}
		k := spanKey{ag, r.Txn}
		sp, ok := spans[k]
		if !ok {
			spans[k] = &span{first: r.T, last: r.T}
			continue
		}
		if r.T < sp.first {
			sp.first = r.T
		}
		if r.T > sp.last {
			sp.last = r.T
		}
	}
	keys := make([]spanKey, 0, len(spans))
	for k := range spans {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].agent != keys[j].agent {
			return keys[i].agent < keys[j].agent
		}
		return keys[i].txn < keys[j].txn
	})
	for _, k := range keys {
		sp := spans[k]
		tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
			Name: "txn " + k.txn, Ph: "X", Ts: us(sp.first), Dur: us(sp.last) - us(sp.first),
			Pid: pid[coordNode(k.txn)], Tid: tid[k.agent],
			Args: map[string]any{"txn": k.txn, "agent": k.agent},
		})
	}

	for _, r := range rs {
		ev := chromeEvent{
			Name: r.Op.String(), Ph: "i", Ts: us(r.T), S: "t",
			Pid: pid[r.Node], Tid: tid[AgentOf(r, byTxn)],
			Args: map[string]any{},
		}
		if r.Name != "" {
			ev.Name = r.Op.String() + " " + r.Name
		}
		if r.Txn != "" {
			ev.Args["txn"] = r.Txn
		}
		if r.Op == OpTransition {
			ev.Args["edge"] = r.A + "→" + r.B
			ev.Args["effects"] = r.N
		} else {
			if r.A != "" {
				ev.Args["peer"] = r.A
			}
			if r.N != 0 {
				ev.Args["n"] = r.N
			}
		}
		tr.TraceEvents = append(tr.TraceEvents, ev)
	}

	enc := json.NewEncoder(w)
	return enc.Encode(tr)
}

// coordNode extracts the coordinator node from a "node#seq" txn ID
// ("" when the ID has no node prefix).
func coordNode(txnID string) string {
	for i := len(txnID) - 1; i >= 0; i-- {
		if txnID[i] == '#' {
			return txnID[:i]
		}
	}
	return ""
}

func stableIndex(set map[string]bool, base int) map[string]int {
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make(map[string]int, len(names))
	for i, n := range names {
		out[n] = base + i
	}
	return out
}

// ValidateChromeTrace checks that data is structurally valid Chrome
// trace_event JSON: a traceEvents array whose entries all carry a name,
// a known phase, a pid, and (for non-metadata events) a timestamp.
// loadgen -trace runs this on its own output so CI's smoke run fails
// loudly on a malformed export.
func ValidateChromeTrace(data []byte) error {
	var tr struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tr); err != nil {
		return fmt.Errorf("chrome trace: not valid JSON: %w", err)
	}
	if len(tr.TraceEvents) == 0 {
		return errors.New("chrome trace: empty traceEvents")
	}
	for i, ev := range tr.TraceEvents {
		name, ok := ev["name"].(string)
		if !ok || name == "" {
			return fmt.Errorf("chrome trace: event %d: missing name", i)
		}
		ph, ok := ev["ph"].(string)
		if !ok {
			return fmt.Errorf("chrome trace: event %d (%s): missing ph", i, name)
		}
		switch ph {
		case "M", "i", "X", "B", "E", "b", "e", "C":
		default:
			return fmt.Errorf("chrome trace: event %d (%s): unknown phase %q", i, name, ph)
		}
		if _, ok := ev["pid"].(float64); !ok {
			return fmt.Errorf("chrome trace: event %d (%s): missing pid", i, name)
		}
		if ph != "M" {
			if _, ok := ev["ts"].(float64); !ok {
				return fmt.Errorf("chrome trace: event %d (%s): missing ts", i, name)
			}
		}
		if ph == "X" {
			if _, ok := ev["dur"]; !ok {
				// Zero-length spans omit dur via omitempty; accept them.
				continue
			}
		}
	}
	return nil
}
