// Package trace is a lock-light, bounded ring-buffer event tracer. Each
// node owns one ring of fixed-size records indexed by an atomic cursor:
// writers claim a slot with a single atomic add and overwrite the oldest
// record in place, so the ring is cheap enough to stay on by default and
// never grows. Records are stamped with the node name, transaction ID,
// agent entry ID and the node's network.Clock time (injected as a plain
// func so this package depends on nothing), which makes traces
// deterministic under a frozen VirtualClock: the same seed replayed
// twice yields the same record multiset, and CanonicalSort turns that
// multiset into byte-identical exports.
//
// The package is three layers:
//
//   - Tracer: the per-node ring (this file). All methods are nil-safe so
//     instrumentation sites never branch on configuration.
//   - timeline.go: grouping records into per-agent causal timelines,
//     joining txn-only records to agents via the worker's step records.
//   - export.go: JSONL, Chrome trace_event JSON and text post-mortems.
package trace

import (
	"sync"
	"sync/atomic"
)

// Op identifies what a record describes.
type Op uint8

const (
	// OpTransition is one Machine.Step: event in, state edge, effects out.
	OpTransition Op = iota + 1
	// OpTimerArm / OpTimerFire / OpTimerCancel follow a protocol timer
	// through the wheel. Name carries the timer ID ("kind|subject").
	OpTimerArm
	OpTimerFire
	OpTimerCancel
	// OpWireSend / OpWireRecv are one protocol message leaving or
	// entering the node. Name is the message kind, A the peer, N bytes.
	OpWireSend
	OpWireRecv
	// OpBatchFlush is one coalesced per-destination flush; A is the
	// destination, N the number of frames in the batch.
	OpBatchFlush
	// OpSchedClaim / OpSchedRetry / OpSchedAbort are scheduler decisions
	// about a queued agent. Agent is the queue entry ID.
	OpSchedClaim
	OpSchedRetry
	OpSchedAbort
	// OpAgentStep is the worker starting a unit of agent work (a step,
	// a compensation run, or the final done record). It is the join
	// table: the only record kind that always carries both the agent ID
	// and the step transaction ID.
	OpAgentStep
	// OpStable is a stable-store transaction outcome (Name is one of
	// commit, abort, prepare, commit-prepared; Txn the transaction).
	OpStable
	// OpMember is a membership view change (Name is the event — merge,
	// set-status, announce; A the subject member, B its status).
	OpMember
	// OpMigrate follows one agent migration hand-off (Name is start,
	// commit, abort or refuse; Agent the migrating agent, A the source,
	// B the destination, N the container bytes).
	OpMigrate
	// OpCtlFlush is one coalesced control-plane GC flush: decision-record
	// clears and done-record drops from concurrent transitions applied as
	// a single group commit. N is the number of staged ops in the batch.
	OpCtlFlush
	// OpPiggyback is one deferred ack/status frame riding an outbound
	// batch already headed to its peer instead of flushing its own frame
	// (Name is the message kind, A the peer, N the payload bytes).
	OpPiggyback
)

var opNames = [...]string{
	OpTransition:  "transition",
	OpTimerArm:    "timer-arm",
	OpTimerFire:   "timer-fire",
	OpTimerCancel: "timer-cancel",
	OpWireSend:    "wire-send",
	OpWireRecv:    "wire-recv",
	OpBatchFlush:  "batch-flush",
	OpSchedClaim:  "sched-claim",
	OpSchedRetry:  "sched-retry",
	OpSchedAbort:  "sched-abort",
	OpAgentStep:   "agent-step",
	OpStable:      "stable",
	OpMember:      "member",
	OpMigrate:     "migrate",
	OpCtlFlush:    "ctl-flush",
	OpPiggyback:   "piggyback",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return "op?"
}

// Record is one traced event. The meaning of Name, A, B and N depends on
// Op (see the Op constants); unused fields stay zero. Seq is the ring
// cursor value that claimed the slot — unique per tracer, monotonic in
// claim order, and deliberately excluded from canonical exports because
// claim order between goroutines is not deterministic even when the
// record contents are.
type Record struct {
	Seq   uint64
	T     int64 // clock time, nanoseconds
	Op    Op
	Node  string
	Txn   string
	Agent string
	Name  string
	A     string // transition: state before; wire/batch: peer
	B     string // transition: state after
	N     int64  // transition: effect count; wire: bytes; batch: frames; timer-arm: duration; sched: attempt
}

// slot holds one record behind its own mutex. A per-slot mutex keeps the
// hot path race-clean without a global lock: writers only contend when
// two claims are exactly one ring-length apart, which at any sane ring
// size means never.
type slot struct {
	mu  sync.Mutex
	rec Record
}

// Tracer is a per-node bounded ring. The zero value is not usable; a nil
// *Tracer is, and records nothing.
type Tracer struct {
	node  string
	now   func() int64
	mask  uint64
	cur   atomic.Uint64
	slots []slot
}

// DefaultRingSize is the per-node ring capacity when none is given:
// large enough to hold the full history of a small run and the recent
// past of a large one, small enough (~2 MiB of records) to keep per node.
const DefaultRingSize = 1 << 14

// New builds a tracer for one node. size is rounded up to a power of
// two (0 or negative selects DefaultRingSize). now supplies timestamps
// in nanoseconds — pass the node's network.Clock so traces are
// deterministic under VirtualClock; a nil now stamps zero.
func New(node string, size int, now func() int64) *Tracer {
	if size <= 0 {
		size = DefaultRingSize
	}
	n := 1
	for n < size {
		n <<= 1
	}
	if now == nil {
		now = func() int64 { return 0 }
	}
	return &Tracer{node: node, now: now, mask: uint64(n - 1), slots: make([]slot, n)}
}

// Node returns the node name the tracer was built for ("" on nil).
func (t *Tracer) Node() string {
	if t == nil {
		return ""
	}
	return t.node
}

// Rec appends one record to the ring. It is the hot path: one atomic
// add, one uncontended mutex, one struct assignment, zero allocations.
// Safe on a nil tracer.
func (t *Tracer) Rec(op Op, txn, agent, name, a, b string, n int64) {
	if t == nil {
		return
	}
	seq := t.cur.Add(1)
	s := &t.slots[seq&t.mask]
	ts := t.now()
	s.mu.Lock()
	s.rec = Record{Seq: seq, T: ts, Op: op, Node: t.node, Txn: txn, Agent: agent, Name: name, A: a, B: b, N: n}
	s.mu.Unlock()
}

// Snapshot copies the ring's live records, ordered by claim sequence.
// Safe to call concurrently with writers; a record being overwritten at
// snapshot time appears as either its old or its new value, never torn.
func (t *Tracer) Snapshot() []Record {
	if t == nil {
		return nil
	}
	out := make([]Record, 0, len(t.slots))
	for i := range t.slots {
		s := &t.slots[i]
		s.mu.Lock()
		r := s.rec
		s.mu.Unlock()
		if r.Seq != 0 {
			out = append(out, r)
		}
	}
	sortRecords(out, func(x, y Record) bool { return x.Seq < y.Seq })
	return out
}

// Len reports how many records have ever been claimed (not the ring
// occupancy). Safe on nil.
func (t *Tracer) Len() uint64 {
	if t == nil {
		return 0
	}
	return t.cur.Load()
}
