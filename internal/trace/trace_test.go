package trace

import (
	"sync"
	"sync/atomic"
	"testing"
)

// seqClock returns a now func that ticks once per call, so record times
// are distinct and ordered by claim without touching the wall clock.
func seqClock() func() int64 {
	var t int64
	return func() int64 { t++; return t }
}

func TestRingWraparound(t *testing.T) {
	tr := New("n1", 8, seqClock())
	for i := int64(1); i <= 20; i++ {
		tr.Rec(OpWireSend, "", "", "kind", "peer", "", i)
	}
	rs := tr.Snapshot()
	if len(rs) != 8 {
		t.Fatalf("snapshot after wrap = %d records, want 8", len(rs))
	}
	// The ring keeps exactly the newest 8 claims, in claim order.
	for i, r := range rs {
		wantSeq := uint64(13 + i)
		if r.Seq != wantSeq {
			t.Errorf("record %d: seq = %d, want %d", i, r.Seq, wantSeq)
		}
		if r.N != int64(wantSeq) {
			t.Errorf("record %d: payload N = %d, want %d (oldest records must be overwritten)", i, r.N, wantSeq)
		}
	}
	if tr.Len() != 20 {
		t.Errorf("Len = %d, want 20 (total claims, not occupancy)", tr.Len())
	}
}

func TestRingSizeRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{5, 8}, {8, 8}, {9, 16}, {1, 1},
		{0, DefaultRingSize}, {-3, DefaultRingSize},
	} {
		tr := New("n", tc.in, nil)
		if got := len(tr.slots); got != tc.want {
			t.Errorf("New(size=%d): %d slots, want %d", tc.in, got, tc.want)
		}
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	tr.Rec(OpTransition, "t", "a", "ev", "s1", "s2", 1) // must not panic
	if rs := tr.Snapshot(); rs != nil {
		t.Errorf("nil Snapshot = %v, want nil", rs)
	}
	if tr.Len() != 0 || tr.Node() != "" {
		t.Errorf("nil Len/Node = %d/%q", tr.Len(), tr.Node())
	}
}

// TestRecAllocs pins the hot path at zero allocations: the ring is on by
// default, so a Rec that allocates would tax every protocol transition.
func TestRecAllocs(t *testing.T) {
	tr := New("n", 64, seqClock())
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Rec(OpTransition, "w0#1", "agent", "PrepareReceived", "staged", "locked", 2)
	})
	if allocs != 0 {
		t.Errorf("Rec allocates %.1f objects per call, want 0", allocs)
	}
}

// TestConcurrentHammer drives writers and snapshotters concurrently; run
// under -race it proves the per-slot locking keeps records untorn.
func TestConcurrentHammer(t *testing.T) {
	var clock atomic.Int64
	tr := New("n", 256, func() int64 { return clock.Add(1) })
	const writers, perWriter = 8, 2000
	var writeWG, readWG sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		writeWG.Add(1)
		go func(w int) {
			defer writeWG.Done()
			for i := 0; i < perWriter; i++ {
				tr.Rec(OpSchedClaim, "", "agent", "", "", "", int64(w))
			}
		}(w)
	}
	readWG.Add(1)
	go func() {
		defer readWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, r := range tr.Snapshot() {
				if r.Op != OpSchedClaim || r.Agent != "agent" {
					t.Errorf("torn record: %+v", r)
					return
				}
			}
		}
	}()
	writeWG.Wait()
	close(stop)
	readWG.Wait()

	if tr.Len() != writers*perWriter {
		t.Errorf("Len = %d, want %d", tr.Len(), writers*perWriter)
	}
	rs := tr.Snapshot()
	if len(rs) != 256 {
		t.Fatalf("final snapshot = %d records, want full ring of 256", len(rs))
	}
	seen := make(map[uint64]bool, len(rs))
	for i, r := range rs {
		if seen[r.Seq] {
			t.Errorf("duplicate seq %d", r.Seq)
		}
		seen[r.Seq] = true
		if i > 0 && rs[i-1].Seq >= r.Seq {
			t.Errorf("snapshot not seq-ordered at %d: %d >= %d", i, rs[i-1].Seq, r.Seq)
		}
	}
}
