package trace

import (
	"sort"
	"strings"
)

func sortRecords(rs []Record, less func(a, b Record) bool) {
	sort.Slice(rs, func(i, j int) bool { return less(rs[i], rs[j]) })
}

// CausalSort orders records for reading: by clock time, then node, then
// claim sequence. Under a wall clock this is the causal order of the
// run; it is the order post-mortems and the /trace endpoint present.
func CausalSort(rs []Record) {
	sortRecords(rs, func(a, b Record) bool {
		if a.T != b.T {
			return a.T < b.T
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Seq < b.Seq
	})
}

// CanonicalSort orders records by content alone — time, node, agent,
// txn, op, name, edge, N — ignoring the claim sequence. Claim order
// between goroutines is scheduler-dependent, but in a loss-free run
// under a frozen VirtualClock the record *multiset* is deterministic;
// sorting by content (and omitting Seq from exports) therefore yields
// byte-identical output across same-seed replays. Ties are records with
// identical content, so their relative order cannot matter.
func CanonicalSort(rs []Record) {
	sortRecords(rs, func(a, b Record) bool {
		if a.T != b.T {
			return a.T < b.T
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		if a.Agent != b.Agent {
			return a.Agent < b.Agent
		}
		if a.Txn != b.Txn {
			return a.Txn < b.Txn
		}
		if a.Op != b.Op {
			return a.Op < b.Op
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		if a.A != b.A {
			return a.A < b.A
		}
		if a.B != b.B {
			return a.B < b.B
		}
		return a.N < b.N
	})
}

// Merge combines per-node snapshots into one record set (no ordering
// guarantees; sort with CausalSort or CanonicalSort).
func Merge(snapshots ...[]Record) []Record {
	total := 0
	for _, s := range snapshots {
		total += len(s)
	}
	out := make([]Record, 0, total)
	for _, s := range snapshots {
		out = append(out, s...)
	}
	return out
}

// TxnAgents builds the txn → agent join table from records that carry
// both IDs (the worker's OpAgentStep records, by construction the only
// place that knows both sides of the mapping).
func TxnAgents(rs []Record) map[string]string {
	m := make(map[string]string)
	for _, r := range rs {
		if r.Txn != "" && r.Agent != "" {
			m[r.Txn] = r.Agent
		}
	}
	return m
}

// AgentOf resolves the agent a record belongs to, using the join table
// for records that only name a transaction. Returns "" for records tied
// to neither (node-level events like batch flushes).
func AgentOf(r Record, byTxn map[string]string) string {
	if r.Agent != "" {
		return r.Agent
	}
	if r.Txn != "" {
		return byTxn[r.Txn]
	}
	return ""
}

// Timeline is the causally ordered record sequence of one agent —
// its itinerary steps, the step transactions they ran, and every
// protocol transition, timer and wire hop those transactions caused.
type Timeline struct {
	Agent   string
	Records []Record
}

// BuildTimelines groups a merged record set into per-agent timelines,
// joining txn-only records to their agents via TxnAgents. Records that
// resolve to no agent are dropped. Timelines come back sorted by agent
// ID, each internally in causal order.
func BuildTimelines(rs []Record) []Timeline {
	byTxn := TxnAgents(rs)
	groups := make(map[string][]Record)
	for _, r := range rs {
		if ag := AgentOf(r, byTxn); ag != "" {
			groups[ag] = append(groups[ag], r)
		}
	}
	agents := make([]string, 0, len(groups))
	for ag := range groups {
		agents = append(agents, ag)
	}
	sort.Strings(agents)
	out := make([]Timeline, 0, len(agents))
	for _, ag := range agents {
		recs := groups[ag]
		CausalSort(recs)
		out = append(out, Timeline{Agent: ag, Records: recs})
	}
	return out
}

// FilterTxn keeps records of one transaction.
func FilterTxn(rs []Record, txn string) []Record {
	var out []Record
	for _, r := range rs {
		if r.Txn == txn {
			out = append(out, r)
		}
	}
	return out
}

// FilterAgent keeps one agent's records (join-aware, like BuildTimelines).
func FilterAgent(rs []Record, agent string) []Record {
	byTxn := TxnAgents(rs)
	var out []Record
	for _, r := range rs {
		if AgentOf(r, byTxn) == agent {
			out = append(out, r)
		}
	}
	return out
}

// AgentPostMortem is the tail of one agent's timeline with its last
// known transaction and protocol state edge pulled out — the summary a
// failing chaos seed prints per stuck agent.
type AgentPostMortem struct {
	Agent     string
	LastTxn   string // most recent transaction the agent touched
	LastEvent string // event name of its last protocol transition
	LastEdge  string // "before → after" state edge of that transition
	Tail      []Record
}

// tailLen bounds how much of each timeline a post-mortem reproduces.
const tailLen = 48

// BuildPostMortem summarizes the named agents' timelines (all agents
// with any records when agents is nil).
func BuildPostMortem(rs []Record, agents []string) []AgentPostMortem {
	tls := BuildTimelines(rs)
	want := make(map[string]bool, len(agents))
	for _, a := range agents {
		want[a] = true
	}
	var out []AgentPostMortem
	for _, tl := range tls {
		if agents != nil && !want[tl.Agent] {
			continue
		}
		pm := AgentPostMortem{Agent: tl.Agent}
		for i := len(tl.Records) - 1; i >= 0; i-- {
			r := tl.Records[i]
			if pm.LastTxn == "" && r.Txn != "" {
				pm.LastTxn = r.Txn
			}
			if pm.LastEvent == "" && r.Op == OpTransition {
				pm.LastEvent = r.Name
				pm.LastEdge = r.A + " → " + r.B
			}
			if pm.LastTxn != "" && pm.LastEvent != "" {
				break
			}
		}
		tail := tl.Records
		if len(tail) > tailLen {
			tail = tail[len(tail)-tailLen:]
		}
		pm.Tail = tail
		out = append(out, pm)
	}
	return out
}

// WritePostMortem renders post-mortems as readable text.
func WritePostMortem(sb *strings.Builder, pms []AgentPostMortem) {
	for i, pm := range pms {
		if i > 0 {
			sb.WriteString("\n")
		}
		sb.WriteString("agent " + pm.Agent)
		if pm.LastTxn != "" {
			sb.WriteString("  last txn " + pm.LastTxn)
		}
		if pm.LastEvent != "" {
			sb.WriteString("  last edge " + pm.LastEvent + " [" + pm.LastEdge + "]")
		}
		sb.WriteString("\n")
		var base int64
		if len(pm.Tail) > 0 {
			base = pm.Tail[0].T
		}
		for _, r := range pm.Tail {
			sb.WriteString("  " + FormatRecord(r, base) + "\n")
		}
	}
}
