package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestFormatRecord(t *testing.T) {
	tr := Record{T: 2500, Op: OpTransition, Node: "A", Txn: "A#1",
		Name: "PrepareReceived", A: "-", B: "staged", N: 2}
	got := FormatRecord(tr, 500)
	for _, want := range []string{"t=+2µs", "A", "transition", "PrepareReceived", "txn=A#1", "edge=-→staged effects=2"} {
		if !strings.Contains(got, want) {
			t.Errorf("transition line missing %q: %s", want, got)
		}
	}
	wire := Record{T: 100, Op: OpWireSend, Node: "B", Name: "q.commit", A: "C", N: 64}
	got = FormatRecord(wire, 0)
	for _, want := range []string{"wire-send", "q.commit", "peer=C", "n=64"} {
		if !strings.Contains(got, want) {
			t.Errorf("wire line missing %q: %s", want, got)
		}
	}
	if strings.Contains(got, "edge=") {
		t.Errorf("non-transition rendered an edge: %s", got)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	rs := timelineFixture()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, rs); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeJSON(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(rs) {
		t.Fatalf("round trip: %d records, want %d", len(back), len(rs))
	}
	for i := range rs {
		want := rs[i]
		want.Seq = 0 // Seq does not survive export, by design
		if !reflect.DeepEqual(back[i], want) {
			t.Errorf("record %d: %+v, want %+v", i, back[i], want)
		}
	}
}

// Exports must not leak the racy claim sequence: its presence would break
// byte-identical same-seed replays.
func TestExportsOmitSeq(t *testing.T) {
	rs := timelineFixture()
	var jl, ja bytes.Buffer
	if err := WriteJSONL(&jl, rs); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&ja, rs); err != nil {
		t.Fatal(err)
	}
	for name, out := range map[string]string{"jsonl": jl.String(), "json": ja.String()} {
		if strings.Contains(strings.ToLower(out), "seq") {
			t.Errorf("%s export leaks Seq:\n%s", name, out)
		}
	}
	if lines := strings.Count(strings.TrimRight(jl.String(), "\n"), "\n") + 1; lines != len(rs) {
		t.Errorf("jsonl = %d lines, want %d", lines, len(rs))
	}
}

func TestChromeTraceValidates(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, timelineFixture()); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Errorf("our own export fails validation: %v", err)
	}
	out := buf.String()
	for _, want := range []string{`"process_name"`, `"thread_name"`, "node A", "agent trip1", "txn A#1", `"ph":"X"`, `"ph":"i"`} {
		if !strings.Contains(out, want) {
			t.Errorf("chrome trace missing %q", want)
		}
	}
}

func TestValidateChromeTraceRejects(t *testing.T) {
	bad := map[string]string{
		"not json":      "{",
		"empty events":  `{"traceEvents":[]}`,
		"missing name":  `{"traceEvents":[{"ph":"i","pid":1,"ts":0}]}`,
		"unknown phase": `{"traceEvents":[{"name":"x","ph":"?","pid":1,"ts":0}]}`,
		"missing pid":   `{"traceEvents":[{"name":"x","ph":"i","ts":0}]}`,
		"missing ts":    `{"traceEvents":[{"name":"x","ph":"i","pid":1}]}`,
	}
	for what, data := range bad {
		if err := ValidateChromeTrace([]byte(data)); err == nil {
			t.Errorf("%s accepted", what)
		}
	}
	ok := `{"traceEvents":[{"name":"m","ph":"M","pid":1}]}` // metadata needs no ts
	if err := ValidateChromeTrace([]byte(ok)); err != nil {
		t.Errorf("metadata-only trace rejected: %v", err)
	}
}

func TestCoordNode(t *testing.T) {
	for in, want := range map[string]string{"w0#12": "w0", "A#1": "A", "noid": "", "a#b#3": "a#b"} {
		if got := coordNode(in); got != want {
			t.Errorf("coordNode(%q) = %q, want %q", in, got, want)
		}
	}
}
