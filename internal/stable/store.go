// Package stable provides the stable storage required by the exactly-once
// execution protocol and the rollback mechanism.
//
// The paper keeps agents in per-node *agent input queues* residing on
// stable storage (§2) and requires that the agent, its rollback log and the
// rollback target survive node crashes between transactions (§4.3). This
// package provides:
//
//   - Store: a key-value store whose mutations are applied in atomic
//     batches, so a transaction commit (queue removal + remote hand-off
//     bookkeeping + decision record) is a single crash-consistent action.
//   - MemStore: in-memory store that survives *simulated* node crashes
//     (the cluster keeps it while the node's volatile state is discarded).
//   - FileStore: gob/raw files with a write-ahead journal, surviving real
//     process death (used by cmd/agentnode).
//   - Queue: a FIFO agent input queue with staged (prepared) entries for
//     two-phase commit.
package stable

import "errors"

// Op is one mutation in an atomic batch. A nil Value deletes the key.
type Op struct {
	Key   string
	Value []byte
}

// Put returns an Op writing value under key.
func Put(key string, value []byte) Op { return Op{Key: key, Value: value} }

// Del returns an Op deleting key.
func Del(key string) Op { return Op{Key: key} }

// ErrClosed is returned by stores after Close.
var ErrClosed = errors.New("stable: store closed")

// Store is a crash-consistent key-value store. Apply executes the whole
// batch atomically with respect to crashes and concurrent readers.
type Store interface {
	// Get returns the value stored under key, and whether it exists.
	Get(key string) ([]byte, bool, error)
	// Keys returns all keys with the given prefix in lexicographic order.
	Keys(prefix string) ([]string, error)
	// Apply executes the batch atomically.
	Apply(batch ...Op) error
}
