// Package stable provides the stable storage required by the exactly-once
// execution protocol and the rollback mechanism.
//
// The paper keeps agents in per-node *agent input queues* residing on
// stable storage (§2) and requires that the agent, its rollback log and the
// rollback target survive node crashes between transactions (§4.3). This
// package provides:
//
//   - Store: a key-value store whose mutations are applied in atomic
//     batches, so a transaction commit (queue removal + remote hand-off
//     bookkeeping + decision record) is a single crash-consistent action.
//   - Spec/Open: the single configuration value and constructor through
//     which every engine (and the replication wrapper around it) is built.
//   - MemStore: in-memory store that survives *simulated* node crashes
//     (the cluster keeps it while the node's volatile state is discarded).
//   - FileStore: gob/raw files with a write-ahead journal, surviving real
//     process death (used by cmd/agentnode).
//   - Queue: a FIFO agent input queue with staged (prepared) entries for
//     two-phase commit.
//
// The log-structured WAL engine lives in the stable/wal subpackage and the
// primary/backup replication layer in stable/repl; both register with or
// wrap the engines opened here.
package stable

import "errors"

// Op is one mutation in an atomic batch. A nil Value deletes the key.
type Op struct {
	Key   string
	Value []byte
}

// Put returns an Op writing value under key.
func Put(key string, value []byte) Op { return Op{Key: key, Value: value} }

// Del returns an Op deleting key.
func Del(key string) Op { return Op{Key: key} }

// ErrClosed is returned by stores after Close.
var ErrClosed = errors.New("stable: store closed")

// Reader is the read half of a store.
type Reader interface {
	// Get returns the value stored under key, and whether it exists.
	Get(key string) ([]byte, bool, error)
	// Keys returns all keys with the given prefix in lexicographic order.
	Keys(prefix string) ([]string, error)
}

// Applier is the write half of a store. Apply executes the whole batch
// atomically with respect to crashes and concurrent readers.
type Applier interface {
	// Apply executes the batch atomically.
	Apply(batch ...Op) error
}

// Store is a crash-consistent key-value store: the composition of the
// Reader and Applier halves. Optional behaviours are expressed as
// capability interfaces (Reopener, Replicated) rather than widening this
// one.
type Store interface {
	Reader
	Applier
}

// Reopener is the capability of durable engines that hold an open handle
// (files, segment writers) on their directory. Crash simulation must
// Close the handle before the directory can be reopened through Open,
// and process shutdown must Close it to release resources. In-memory
// stores do not implement it.
type Reopener interface {
	Store
	Close() error
}

// ReplStatus describes the replication state of a Replicated store.
type ReplStatus struct {
	// Epoch counts promotions: it bumps each time a different physical
	// copy becomes the authoritative one.
	Epoch uint64
	// LSN is the sequence number of the last locally committed record.
	LSN uint64
	// Acked maps each follower to the highest LSN it has durably
	// acknowledged in the current epoch.
	Acked map[string]uint64
}

// Replicated is the capability of stores that ship committed batches to
// follower replicas (stable/repl). Callers use it to observe replication
// lag and to wait for quiescence in tests.
type Replicated interface {
	Store
	ReplStatus() ReplStatus
}

// Close releases s if it is a durable engine holding a handle (a
// Reopener); volatile stores are left untouched. It replaces the
// io.Closer type-assertions previously scattered over crash/shutdown
// paths: closing is an engine capability, not an accident of
// implementation.
func Close(s Store) error {
	if r, ok := s.(Reopener); ok {
		return r.Close()
	}
	return nil
}
