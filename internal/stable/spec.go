package stable

import (
	"fmt"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/metrics"
)

// Spec is the single configuration value for stable storage. Every
// component that used to hand-roll an engine factory — cluster options,
// the chaos harness, the experiment tables, and the cmd flag surfaces —
// now carries one Spec and constructs stores through Open.
type Spec struct {
	// Engine selects the storage engine: "mem" (default), "file", or any
	// engine registered via RegisterEngine ("wal" once the stable/wal
	// package is linked in).
	Engine string
	// Dir is the engine's data directory (ignored by "mem"). Multi-node
	// runtimes derive per-node directories with ForNode.
	Dir string
	// Sync forces fsync before a batch is acknowledged, making "stable"
	// mean stable across power loss rather than just process death.
	Sync bool
	// WAL tunes the log-structured engine; ignored by others.
	WAL WALSpec
	// Repl configures primary/backup replication on top of the engine.
	// The zero value disables replication. Replication is wired by the
	// multi-node runtime (cluster) because it needs a transport; Open
	// itself returns the unreplicated engine.
	Repl ReplSpec
	// Counters receives storage metrics; may be nil.
	Counters *metrics.Counters
}

// WALSpec tunes the log-structured engine. Zero values select the
// engine's defaults; negative CheckpointEvery disables automatic
// checkpoints (matching wal.Options).
type WALSpec struct {
	SegmentSize     int64
	CheckpointEvery int64
	// NoBackground disables the maintenance goroutine (benchmarks that
	// drive checkpoints and compaction explicitly).
	NoBackground bool
}

// ReplSpec configures primary/backup replication of committed batches.
type ReplSpec struct {
	// Followers is the number of follower replicas per shard. 0 disables
	// replication.
	Followers int
	// Acks is the number of copies (counting the primary) that must hold
	// a batch before Apply returns. 0 or 1 means asynchronous shipping:
	// the batch is on the wire but only the primary's copy is guaranteed.
	// AcksQuorum selects a majority of 1+Followers copies.
	Acks int
}

// AcksQuorum selects synchronous replication to a majority of copies
// when assigned to ReplSpec.Acks.
const AcksQuorum = -1

// Enabled reports whether replication is configured.
func (r ReplSpec) Enabled() bool { return r.Followers > 0 }

// FollowerAcks resolves Acks to the number of *follower* acknowledgements
// an Apply must collect before returning: 0 for asynchronous shipping,
// Followers/2+... for AcksQuorum (a majority of the 1+Followers copies,
// counting the primary's own durable write).
func (r ReplSpec) FollowerAcks() int {
	n := r.Acks
	if n == AcksQuorum {
		n = (1+r.Followers)/2 + 1
	}
	n-- // the primary's local commit is the first copy
	if n < 0 {
		n = 0
	}
	if n > r.Followers {
		n = r.Followers
	}
	return n
}

// ForNode returns a copy of the Spec rooted at the node's own directory.
func (s Spec) ForNode(node string) Spec {
	if s.Dir != "" {
		s.Dir = filepath.Join(s.Dir, node)
	}
	return s
}

// Durable reports whether the engine persists outside process memory —
// i.e. whether crash simulation must Close and re-Open it to exercise
// real recovery.
func (s Spec) Durable() bool { return s.Engine != "" && s.Engine != "mem" }

var (
	enginesMu sync.Mutex
	engines   = map[string]func(Spec) (Store, error){}
)

// RegisterEngine installs a named engine constructor. Engines living in
// subpackages (stable/wal) register themselves in an init func; a
// program selects the engines it links by importing them.
func RegisterEngine(name string, open func(Spec) (Store, error)) {
	enginesMu.Lock()
	defer enginesMu.Unlock()
	if _, dup := engines[name]; dup {
		panic(fmt.Sprintf("stable: engine %q registered twice", name))
	}
	engines[name] = open
}

// Engines returns the registered engine names, sorted.
func Engines() []string {
	enginesMu.Lock()
	defer enginesMu.Unlock()
	names := make([]string, 0, len(engines))
	for n := range engines {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Open constructs the store described by spec. It is the only
// non-test construction path for storage engines.
func Open(spec Spec) (Store, error) {
	name := spec.Engine
	if name == "" {
		name = "mem"
	}
	enginesMu.Lock()
	open, ok := engines[name]
	enginesMu.Unlock()
	if !ok {
		return nil, fmt.Errorf("stable: unknown engine %q (registered: %v; is its package linked in?)", name, Engines())
	}
	if name != "mem" && spec.Dir == "" {
		return nil, fmt.Errorf("stable: engine %q needs a data directory", name)
	}
	return open(spec)
}

func init() {
	RegisterEngine("mem", func(spec Spec) (Store, error) {
		return NewMemStore(spec.Counters), nil
	})
	RegisterEngine("file", func(spec Spec) (Store, error) {
		return OpenFileStoreWith(spec.Dir, spec.Counters, FileStoreOptions{Sync: spec.Sync})
	})
}
