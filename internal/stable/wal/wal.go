// Package wal implements a log-structured stable.Store: batches append as
// length-prefixed, checksummed records to an active segment file, an
// in-memory hash index maps every live key to its value's location,
// segments rotate at a configurable size, a background compactor rewrites
// the live keys of cold segments and deletes them, and periodic
// checkpoints persist the index so crash recovery replays only the log
// tail written since the last checkpoint (bounded recovery).
//
// Durability contract matches stable.FileStore: Apply returns only after
// the group holding the batch is on disk — in the OS page cache by
// default (surviving process death), fsynced when Options.Sync is set
// (surviving power loss). Group commit is preserved from the FileStore:
// concurrent Apply callers coalesce into a single record append and a
// single fsync.
package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
	"repro/internal/stable"
)

// Options tunes a WAL store.
type Options struct {
	// Sync forces an fsync of the active segment before a group is
	// acknowledged (and fsyncs rotations), making "stable" mean stable
	// across power loss rather than just process death.
	Sync bool
	// SegmentSize is the rotation threshold in bytes (default 4 MiB).
	SegmentSize int64
	// CheckpointEvery triggers an automatic index checkpoint after that
	// many appended bytes (default 1 MiB). Negative disables automatic
	// checkpoints (recovery then replays from the newest persisted
	// checkpoint, or the whole log if none was ever written).
	CheckpointEvery int64
	// CompactFraction is the garbage fraction (dead bytes / segment size)
	// at which a checkpoint-covered sealed segment is compacted (default
	// 0.5). Negative disables the compactor.
	CompactFraction float64
	// NoBackground disables the maintenance goroutine; checkpoints and
	// compaction then only happen through explicit Checkpoint/Compact
	// calls (tests and experiments).
	NoBackground bool
	// Counters receives metrics; may be nil.
	Counters *metrics.Counters
}

func (o *Options) fillDefaults() {
	if o.SegmentSize == 0 {
		o.SegmentSize = 4 << 20
	}
	if o.CheckpointEvery == 0 {
		o.CheckpointEvery = 1 << 20
	}
	if o.CompactFraction == 0 {
		o.CompactFraction = 0.5
	}
}

// RecoveryStats describes what Open had to do to rebuild the store.
type RecoveryStats struct {
	CheckpointLoaded bool  // a valid checkpoint bounded the replay
	CheckpointKeys   int   // index entries restored from the checkpoint
	SegmentsScanned  int   // segments the replay had to read
	OpsReplayed      int   // record ops applied on top of the checkpoint
	BytesReplayed    int64 // bytes the replay had to scan
	TornTailBytes    int64 // bytes truncated off the active segment
}

// Store is the log-structured engine. It implements stable.Store plus
// Close; see the package comment for the design.
type Store struct {
	dir      string
	opts     Options
	counters *metrics.Counters

	// mu guards the index, the segment table and the active segment's
	// append state. Readers (Get/Keys) take it shared; appends (group
	// leader, compactor rewrites) take it exclusive only for index and
	// tail updates — file writes happen under wmu so readers are never
	// blocked behind disk I/O.
	mu     sync.RWMutex
	index  map[string]loc
	segs   map[uint32]*segment
	active *segment
	closed bool

	// wmu serializes writers (group leader, compactor, rotation) so tail
	// writes and their index publication happen in log order.
	wmu sync.Mutex

	totalAppended int64 // bytes ever appended (monotonic)
	ckpt          ckptPos
	ckptAppended  int64 // totalAppended at the last checkpoint
	ckptMu        sync.Mutex

	// Group commit (same leader/follower shape as stable.FileStore).
	gmu    sync.Mutex
	gcond  *sync.Cond
	queue  []*applyWaiter
	leader bool

	groupCommits atomic.Int64
	recovery     RecoveryStats

	maintCh chan struct{}
	stopCh  chan struct{}
	wg      sync.WaitGroup
}

type applyWaiter struct {
	ops       []stable.Op
	err       error
	committed bool
}

var _ stable.Store = (*Store)(nil)

// Open opens (creating if necessary) a WAL store rooted at dir, running
// crash recovery: load the newest checkpoint, replay the log tail, and
// truncate a torn final record.
func Open(dir string, opts Options) (*Store, error) {
	opts.fillDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create dir: %w", err)
	}
	s := &Store{
		dir:      dir,
		opts:     opts,
		counters: opts.Counters,
		index:    make(map[string]loc),
		segs:     make(map[uint32]*segment),
		maintCh:  make(chan struct{}, 1),
		stopCh:   make(chan struct{}),
	}
	s.gcond = sync.NewCond(&s.gmu)
	if err := s.recover(); err != nil {
		return nil, err
	}
	if !opts.NoBackground {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.maintain()
		}()
	}
	return s, nil
}

// Recovery returns what Open did to rebuild the store.
func (s *Store) Recovery() RecoveryStats { return s.recovery }

// GroupCommits returns the number of record appends performed; under
// concurrent Apply load it is lower than the Apply count by the
// coalescing factor.
func (s *Store) GroupCommits() int64 { return s.groupCommits.Load() }

// --- recovery ---------------------------------------------------------

func (s *Store) recover() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("wal: read dir: %w", err)
	}
	var ids []uint32
	for _, e := range entries {
		if id, ok := parseSegmentName(e.Name()); ok {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	index, pos, err := loadCheckpoint(s.dir)
	switch {
	case err == nil:
		s.index = index
		s.ckpt = pos
		s.recovery.CheckpointLoaded = true
		s.recovery.CheckpointKeys = len(index)
	case errors.Is(err, errNoCheckpoint):
		// Full replay from the oldest surviving segment.
	default:
		return err
	}

	for _, id := range ids {
		path := filepath.Join(s.dir, segmentName(id))
		f, err := os.OpenFile(path, os.O_RDWR, 0o644)
		if err != nil {
			return fmt.Errorf("wal: open segment: %w", err)
		}
		fi, err := f.Stat()
		if err != nil {
			_ = f.Close()
			return err
		}
		seg := &segment{id: id, f: f, size: fi.Size()}
		s.segs[id] = seg

		start := int64(-1) // -1: fully covered by the checkpoint, skip scan
		switch {
		case id > s.ckpt.seg:
			start = 0
		case id == s.ckpt.seg:
			start = s.ckpt.off
		}
		last := id == ids[len(ids)-1]
		if start >= 0 && start < seg.size {
			s.recovery.SegmentsScanned++
			end, err := scanRecords(f, start, func(op scanOp, recEnd int64) error {
				s.applyToIndex(op, id)
				return nil
			})
			s.recovery.BytesReplayed += end - start
			if err != nil {
				if !errors.Is(err, errTorn) || !last {
					_ = f.Close()
					return fmt.Errorf("wal: segment %d: %w", id, err)
				}
				// Torn tail of the final segment: the record never
				// committed — truncate it away.
				s.recovery.TornTailBytes = seg.size - end
				if err := f.Truncate(end); err != nil {
					_ = f.Close()
					return fmt.Errorf("wal: truncate torn tail: %w", err)
				}
				if err := f.Sync(); err != nil {
					_ = f.Close()
					return err
				}
				seg.size = end
			}
		}
	}

	// Rebuild live-byte accounting from the final index.
	for key, l := range s.index {
		if seg, ok := s.segs[l.seg]; ok {
			seg.live += l.vlen + int64(len(key))
		} else {
			return fmt.Errorf("wal: index references missing segment %d", l.seg)
		}
	}

	// Garbage-collect segments fully covered by the checkpoint that no
	// index entry references (left over from a crash between re-checkpoint
	// and delete in the compactor).
	for id, seg := range s.segs {
		if id < s.ckpt.seg && seg.live == 0 {
			_ = seg.f.Close()
			if err := os.Remove(seg.path(s.dir)); err != nil && !os.IsNotExist(err) {
				return err
			}
			delete(s.segs, id)
		}
	}

	// The checkpoint's own segment is never compacted away, so its
	// absence means the directory was tampered with.
	if s.ckpt.seg != 0 && s.segs[s.ckpt.seg] == nil {
		return fmt.Errorf("wal: checkpoint position references missing segment %d", s.ckpt.seg)
	}

	// Open (or create) the active segment: the highest id, which the
	// check above guarantees is at or past the checkpoint position.
	if len(s.segs) == 0 {
		if err := s.createSegmentLocked(1); err != nil {
			return err
		}
	} else {
		for _, seg := range s.segs {
			if s.active == nil || seg.id > s.active.id {
				s.active = seg
			}
		}
	}
	for _, seg := range s.segs {
		s.totalAppended += seg.size
	}
	// Bytes replayed are exactly the bytes appended since the last
	// checkpoint; with no checkpoint the whole history is "since".
	s.ckptAppended = s.totalAppended - s.recovery.BytesReplayed
	if !s.recovery.CheckpointLoaded {
		s.ckptAppended = 0
	}
	return nil
}

// applyToIndex applies one replayed op to the index (no live accounting —
// that is rebuilt wholesale after replay).
func (s *Store) applyToIndex(op scanOp, seg uint32) {
	s.recovery.OpsReplayed++
	if op.del {
		delete(s.index, op.key)
		return
	}
	s.index[op.key] = loc{seg: seg, voff: op.valOff, vlen: op.valLen}
}

// createSegmentLocked creates segment id and makes it active. Callers
// hold the write path (recovery is single-threaded; runtime rotation holds
// wmu and mu).
func (s *Store) createSegmentLocked(id uint32) error {
	path := filepath.Join(s.dir, segmentName(id))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	if s.opts.Sync {
		if err := syncDirObserved(s.dir, s.counters); err != nil {
			_ = f.Close()
			return err
		}
	}
	seg := &segment{id: id, f: f}
	s.segs[id] = seg
	s.active = seg
	return nil
}

// --- Store interface --------------------------------------------------

// Get implements stable.Store: an index lookup plus one pread from the
// owning segment. The read races benignly with compaction deleting the
// segment; a read from a closed file is retried against the fresh index
// (the compactor republishes the key's location before closing the file).
func (s *Store) Get(key string) ([]byte, bool, error) {
	for {
		s.mu.RLock()
		if s.closed {
			s.mu.RUnlock()
			return nil, false, stable.ErrClosed
		}
		l, ok := s.index[key]
		var f *os.File
		if ok {
			f = s.segs[l.seg].f
		}
		s.mu.RUnlock()
		if !ok {
			return nil, false, nil
		}
		buf := make([]byte, l.vlen)
		if _, err := f.ReadAt(buf, l.voff); err != nil && l.vlen > 0 {
			if errors.Is(err, os.ErrClosed) {
				continue // compacted under us; the index has the new home
			}
			return nil, false, fmt.Errorf("wal: get %q: %w", key, err)
		}
		return buf, true, nil
	}
}

// Keys implements stable.Store.
func (s *Store) Keys(prefix string) ([]string, error) {
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return nil, stable.ErrClosed
	}
	keys := make([]string, 0, 16)
	for k := range s.index {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	s.mu.RUnlock()
	sort.Strings(keys)
	return keys, nil
}

// Apply implements stable.Store with group commit: the calling goroutine
// enqueues its batch and waits until a leader commits it. Whenever no
// leader is active, one queued caller takes over, appends every batch
// queued at that moment (its own included) as one record + one fsync, and
// hands leadership to the next queued caller.
func (s *Store) Apply(batch ...stable.Op) error {
	w := &applyWaiter{ops: batch}
	s.gmu.Lock()
	s.queue = append(s.queue, w)
	for !w.committed && s.leader {
		s.gcond.Wait()
	}
	if w.committed {
		err := w.err
		s.gmu.Unlock()
		return err
	}
	s.leader = true
	group := s.queue
	s.queue = nil
	s.gmu.Unlock()

	err := s.commitGroup(group)

	s.gmu.Lock()
	for _, g := range group {
		g.err = err
		g.committed = true
	}
	s.leader = false
	s.gmu.Unlock()
	s.gcond.Broadcast()
	return err // w is part of group
}

// commitGroup durably appends the concatenated ops of one group as a
// single record and publishes them in the index.
func (s *Store) commitGroup(group []*applyWaiter) error {
	total := 0
	for _, g := range group {
		total += len(g.ops)
	}
	if total == 0 {
		return nil
	}
	ops := make([]stable.Op, 0, total)
	for _, g := range group {
		ops = append(ops, g.ops...)
	}
	if err := s.append(ops, false); err != nil {
		return err
	}
	s.groupCommits.Add(1)
	if s.counters != nil {
		var bytes int64
		for _, op := range ops {
			bytes += int64(len(op.Value))
		}
		s.counters.IncStableWrite(bytes)
	}
	s.maybeKickMaintenance()
	return nil
}

// append writes one record holding ops to the active segment (rotating
// first if it is full), fsyncs it when the store is in Sync mode, and
// publishes the new locations in the index. rewrite marks compactor
// rewrites: each op is kept only if its key still lives at the expected
// origLocs entry (a concurrent Apply may have overwritten or deleted it).
// The filter runs under wmu *before* the record is written — the index
// only changes under wmu, so a dropped op can never reach the log. That
// ordering is what makes recovery's blind last-writer-wins replay
// correct: a rewrite record on disk holds only values that were current
// when it was appended, so anything newer sits later in the log.
func (s *Store) append(ops []stable.Op, rewrite bool, origLocs ...loc) error {
	s.wmu.Lock()
	defer s.wmu.Unlock()

	if rewrite {
		s.mu.RLock()
		kept := ops[:0]
		for i, op := range ops {
			if cur, ok := s.index[op.Key]; ok && cur == origLocs[i] {
				kept = append(kept, op)
			}
		}
		s.mu.RUnlock()
		ops = kept
		if len(ops) == 0 {
			return nil
		}
	}

	rb, valOffs, err := encodeRecord(ops)
	if err != nil {
		return err
	}
	defer payloadPool.Put(rb)

	s.mu.RLock()
	closed := s.closed
	active := s.active
	base := active.size
	s.mu.RUnlock()
	if closed {
		return stable.ErrClosed
	}

	// Rotate when the record does not fit (an oversized record still gets
	// a fresh segment to itself, so segments stay near SegmentSize).
	if base > 0 && base+int64(len(rb.b)) > s.opts.SegmentSize {
		if err := s.rotate(active); err != nil {
			return err
		}
		s.mu.RLock()
		active = s.active
		base = active.size
		s.mu.RUnlock()
	}

	if _, err := active.f.WriteAt(rb.b, base); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	if s.opts.Sync {
		if err := timedSync(active.f.Sync, s.counters); err != nil {
			return fmt.Errorf("wal: sync segment: %w", err)
		}
	}

	// Publish: index updates and tail advance, in log order (wmu held).
	s.mu.Lock()
	for i, op := range ops {
		if old, ok := s.index[op.Key]; ok {
			if seg := s.segs[old.seg]; seg != nil {
				seg.live -= old.vlen + int64(len(op.Key))
			}
		}
		if op.Value == nil {
			delete(s.index, op.Key)
			continue
		}
		l := loc{seg: active.id, voff: base + int64(valOffs[i]), vlen: int64(len(op.Value))}
		s.index[op.Key] = l
		active.live += l.vlen + int64(len(op.Key))
	}
	active.size = base + int64(len(rb.b))
	s.totalAppended += int64(len(rb.b))
	s.mu.Unlock()
	return nil
}

// rotate seals the active segment and starts the next one. Caller holds
// wmu.
func (s *Store) rotate(active *segment) error {
	if s.opts.Sync {
		if err := timedSync(active.f.Sync, s.counters); err != nil {
			return fmt.Errorf("wal: seal segment: %w", err)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.createSegmentLocked(active.id + 1); err != nil {
		return err
	}
	if s.counters != nil {
		s.counters.IncWALRotation()
	}
	return nil
}

// Close stops background maintenance and closes all segment files. Apply
// is durable on return, so Close performs no extra flush; operations
// after Close return stable.ErrClosed.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.stopCh)
	s.wg.Wait()
	// wmu first: an in-flight group leader or compactor rewrite that
	// passed its closed-check must finish its WriteAt/Sync on open files;
	// later writers see closed under wmu and bail with ErrClosed.
	s.wmu.Lock()
	defer s.wmu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	var err error
	for _, seg := range s.segs {
		if cerr := seg.f.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// --- maintenance ------------------------------------------------------

func (s *Store) maybeKickMaintenance() {
	if s.opts.NoBackground {
		return
	}
	s.mu.RLock()
	due := s.opts.CheckpointEvery > 0 && s.totalAppended-s.ckptAppended >= s.opts.CheckpointEvery
	if !due && s.opts.CompactFraction > 0 {
		due = s.compactableLocked() != nil
	}
	s.mu.RUnlock()
	if due {
		select {
		case s.maintCh <- struct{}{}:
		default:
		}
	}
}

// maintain is the background goroutine: checkpoint when enough bytes were
// appended, then compact what the checkpoint newly covers.
func (s *Store) maintain() {
	for {
		select {
		case <-s.stopCh:
			return
		case <-s.maintCh:
		}
		s.mu.RLock()
		ckptDue := s.opts.CheckpointEvery > 0 && s.totalAppended-s.ckptAppended >= s.opts.CheckpointEvery
		s.mu.RUnlock()
		if ckptDue {
			if err := s.Checkpoint(); err != nil {
				continue // transient I/O trouble; retry on the next kick
			}
		}
		if s.opts.CompactFraction > 0 {
			_ = s.Compact()
		}
	}
}

// Checkpoint persists the current index snapshot and replay position.
// Recovery after a checkpoint replays only records appended after it.
func (s *Store) Checkpoint() error {
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()

	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return stable.ErrClosed
	}
	pos := ckptPos{seg: s.active.id, off: s.active.size}
	activeF := s.active.f
	appended := s.totalAppended
	idx := make(map[string]loc, len(s.index))
	for k, l := range s.index {
		idx[k] = l
	}
	s.mu.RUnlock()

	// The checkpoint's position claims everything before it is durable;
	// make it so even in no-Sync mode (rare call, bounded cost).
	if err := timedSync(activeF.Sync, s.counters); err != nil {
		return fmt.Errorf("wal: sync before checkpoint: %w", err)
	}
	if err := writeCheckpoint(s.dir, pos, idx, s.counters); err != nil {
		return err
	}
	s.mu.Lock()
	if pos.seg > s.ckpt.seg || (pos.seg == s.ckpt.seg && pos.off > s.ckpt.off) {
		s.ckpt = pos
		s.ckptAppended = appended
	}
	s.mu.Unlock()
	if s.counters != nil {
		s.counters.IncWALCheckpoint()
	}
	return nil
}

// compactableLocked returns a sealed, checkpoint-covered segment whose
// garbage fraction exceeds the threshold (or nil). Caller holds mu.
func (s *Store) compactableLocked() *segment {
	for id, seg := range s.segs {
		if id >= s.ckpt.seg || seg == s.active || seg.size == 0 {
			continue
		}
		garbage := seg.size - seg.live
		if seg.live == 0 || float64(garbage) >= float64(seg.size)*s.opts.CompactFraction {
			return seg
		}
	}
	return nil
}

// Compact rewrites the live records of every eligible cold segment into
// the log tail, re-checkpoints (so no persisted state references the old
// segments), and deletes them. Eligible: sealed, fully covered by the
// last checkpoint, garbage fraction over Options.CompactFraction.
// Returns the number of segments reclaimed.
func (s *Store) Compact() error {
	for {
		s.mu.RLock()
		seg := s.compactableLocked()
		s.mu.RUnlock()
		if seg == nil {
			return nil
		}
		if err := s.compactSegment(seg); err != nil {
			return err
		}
	}
}

// compactSegment moves one segment's live data to the tail and deletes
// the file.
func (s *Store) compactSegment(seg *segment) error {
	// Collect the keys currently homed in this segment.
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return stable.ErrClosed
	}
	var keys []string
	var locs []loc
	for k, l := range s.index {
		if l.seg == seg.id {
			keys = append(keys, k)
			locs = append(locs, l)
		}
	}
	size := seg.size
	live := seg.live
	s.mu.RUnlock()

	// Rewrite in bounded chunks: read each value (locations are stable —
	// only this compactor deletes segments, and overwrites never reuse
	// space), then append with per-op re-verification.
	const chunkBytes = 1 << 20
	var ops []stable.Op
	var origs []loc
	var chunk int64
	flush := func() error {
		if len(ops) == 0 {
			return nil
		}
		if err := s.append(ops, true, origs...); err != nil {
			return err
		}
		ops, origs, chunk = ops[:0], origs[:0], 0
		return nil
	}
	for i, k := range keys {
		l := locs[i]
		buf := make([]byte, l.vlen)
		if _, err := seg.f.ReadAt(buf, l.voff); err != nil && l.vlen > 0 {
			return fmt.Errorf("wal: compact read %q: %w", k, err)
		}
		ops = append(ops, stable.Put(k, buf))
		origs = append(origs, l)
		chunk += l.vlen
		if chunk >= chunkBytes {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}

	// Persist an index that no longer references the segment, then drop
	// it. A crash in between leaves an unreferenced file that open-time
	// GC removes.
	if err := s.Checkpoint(); err != nil {
		return err
	}
	s.mu.Lock()
	if seg.live != 0 {
		// New references appeared only if append republished into it —
		// impossible (appends go to the tail) — or accounting drifted;
		// leave the segment for the next pass rather than losing data.
		s.mu.Unlock()
		return fmt.Errorf("wal: segment %d still has %d live bytes after rewrite", seg.id, seg.live)
	}
	delete(s.segs, seg.id)
	s.mu.Unlock()
	_ = seg.f.Close()
	if err := os.Remove(seg.path(s.dir)); err != nil && !os.IsNotExist(err) {
		return err
	}
	if s.counters != nil {
		s.counters.IncWALCompaction(size - live)
	}
	return nil
}
