package wal

import "repro/internal/stable"

// The engine self-registers so stable.Open(Spec{Engine: "wal"}) works in
// any program that links this package; programs select their engines by
// importing them (database/sql driver style).
func init() {
	stable.RegisterEngine("wal", func(spec stable.Spec) (stable.Store, error) {
		return Open(spec.Dir, Options{
			Sync:            spec.Sync,
			SegmentSize:     spec.WAL.SegmentSize,
			CheckpointEvery: spec.WAL.CheckpointEvery,
			NoBackground:    spec.WAL.NoBackground,
			Counters:        spec.Counters,
		})
	})
}
