package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/stable"
)

// TestTornWriteMatrix simulates a crash mid-append at every possible
// point: the active segment is truncated at every byte offset of its
// final record (including zero extra bytes and the full header), the
// store is reopened, and the state must be exactly "everything before the
// final record" — the torn record dropped cleanly, never corrupted state,
// never lost earlier batches.
func TestTornWriteMatrix(t *testing.T) {
	// Build a reference store: several committed batches, then one final
	// record whose every prefix we will crash inside.
	master := t.TempDir()
	s := openTest(t, master, Options{})
	for i := 0; i < 8; i++ {
		if err := s.Apply(
			stable.Put(fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("v%d", i))),
			stable.Put("overwritten", []byte(fmt.Sprintf("gen%d", i))),
		); err != nil {
			t.Fatal(err)
		}
	}
	segPath := filepath.Join(master, segmentName(1))
	fi, err := os.Stat(segPath)
	if err != nil {
		t.Fatal(err)
	}
	preLen := fi.Size()
	// The final record: overwrites one key, adds one, deletes one.
	if err := s.Apply(
		stable.Put("overwritten", []byte("final")),
		stable.Put("late", []byte("arrival")),
		stable.Del("k0"),
	); err != nil {
		t.Fatal(err)
	}
	fi, err = os.Stat(segPath)
	if err != nil {
		t.Fatal(err)
	}
	fullLen := fi.Size()
	if fullLen <= preLen {
		t.Fatalf("final record added no bytes: %d -> %d", preLen, fullLen)
	}
	_ = s.Close()
	segData, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}

	verifyPreState := func(t *testing.T, s *Store) {
		t.Helper()
		for i := 0; i < 8; i++ {
			v, ok, err := s.Get(fmt.Sprintf("k%d", i))
			if err != nil || !ok || string(v) != fmt.Sprintf("v%d", i) {
				t.Fatalf("k%d = %q %v %v", i, v, ok, err)
			}
		}
		if v, _, _ := s.Get("overwritten"); string(v) != "gen7" {
			t.Fatalf("overwritten = %q, want pre-crash gen7", v)
		}
		if _, ok, _ := s.Get("late"); ok {
			t.Fatal("torn record's new key visible")
		}
	}

	for cut := preLen; cut < fullLen; cut++ {
		t.Run(fmt.Sprintf("cut=%d", cut-preLen), func(t *testing.T) {
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, segmentName(1)), segData[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			r, err := Open(dir, Options{NoBackground: true})
			if err != nil {
				t.Fatalf("reopen with torn tail: %v", err)
			}
			defer r.Close()
			if got := r.Recovery().TornTailBytes; got != cut-preLen {
				t.Errorf("TornTailBytes = %d, want %d", got, cut-preLen)
			}
			verifyPreState(t, r)
			// The store must accept new writes after truncation, and the
			// re-appended record must survive another reopen.
			if err := r.Apply(stable.Put("after", []byte("crash"))); err != nil {
				t.Fatal(err)
			}
			_ = r.Close()
			r2, err := Open(dir, Options{NoBackground: true})
			if err != nil {
				t.Fatal(err)
			}
			defer r2.Close()
			verifyPreState(t, r2)
			if v, ok, _ := r2.Get("after"); !ok || string(v) != "crash" {
				t.Fatalf("post-truncation write lost: %q %v", v, ok)
			}
		})
	}

	// Sanity: the untouched file replays the final record completely.
	r, err := Open(master, Options{NoBackground: true})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if v, _, _ := r.Get("overwritten"); string(v) != "final" {
		t.Fatalf("full replay: overwritten = %q", v)
	}
	if _, ok, _ := r.Get("k0"); ok {
		t.Fatal("full replay: delete lost")
	}
	keys, _ := r.Keys("k")
	sort.Strings(keys)
	if len(keys) != 7 {
		t.Fatalf("full replay keys = %v", keys)
	}
}

// TestTornTailBitFlip covers the other torn-write shape: the final record
// is complete in length but its payload bytes are damaged (a partially
// persisted sector). Every single-byte corruption of the final record must
// be detected by the CRC and the record dropped.
func TestTornTailBitFlip(t *testing.T) {
	master := t.TempDir()
	s := openTest(t, master, Options{})
	if err := s.Apply(stable.Put("base", []byte("safe"))); err != nil {
		t.Fatal(err)
	}
	segPath := filepath.Join(master, segmentName(1))
	fi, _ := os.Stat(segPath)
	preLen := fi.Size()
	if err := s.Apply(stable.Put("victim", []byte("payload-bytes-here"))); err != nil {
		t.Fatal(err)
	}
	_ = s.Close()
	segData, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}

	for off := preLen; off < int64(len(segData)); off++ {
		corrupted := append([]byte(nil), segData...)
		corrupted[off] ^= 0x01
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), corrupted, 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := Open(dir, Options{NoBackground: true})
		if err != nil {
			t.Fatalf("off %d: reopen: %v", off, err)
		}
		if v, ok, _ := r.Get("base"); !ok || string(v) != "safe" {
			t.Fatalf("off %d: base = %q %v", off, v, ok)
		}
		if v, ok, _ := r.Get("victim"); ok {
			// A flip inside the length word can shorten the record to a
			// still-valid prefix only if the CRC also matched — which the
			// CRC makes astronomically unlikely; any surviving "victim"
			// must carry the intact value.
			t.Fatalf("off %d: corrupt record surfaced victim=%q", off, v)
		}
		_ = r.Close()
	}
}
