package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/stable"
)

// Segment file format. A segment is a sequence of records, each holding
// one committed group of batch ops:
//
//	u32le payload length | u32le CRC-32 (IEEE) of payload | payload
//
// payload:
//
//	uvarint nops
//	per op: uvarint len(key) | key | uvarint len(value)+1 | value
//
// A value length field of 0 encodes a delete (tombstone); field v encodes
// a put of v-1 value bytes. The CRC covers the payload only; the length
// word is validated by bounds checks during scan. A record is the
// crash-atomicity unit: recovery drops a record whose length or CRC does
// not check out, which (for the final record of the final segment) is
// exactly a torn write.

const (
	recHeaderSize = 8
	// maxRecordSize bounds a single record so a corrupt length word cannot
	// drive allocation; 1 GiB is far above any agent container.
	maxRecordSize = 1 << 30
	segSuffix     = ".seg"
)

var (
	// errTorn reports a truncated or corrupt record during a segment scan.
	errTorn = errors.New("wal: torn record")
)

// segmentName formats the file name of segment id.
func segmentName(id uint32) string { return fmt.Sprintf("%08d%s", id, segSuffix) }

// parseSegmentName extracts the id from a segment file name.
func parseSegmentName(name string) (uint32, bool) {
	if len(name) != 8+len(segSuffix) || name[8:] != segSuffix {
		return 0, false
	}
	var id uint32
	for _, c := range name[:8] {
		if c < '0' || c > '9' {
			return 0, false
		}
		id = id*10 + uint32(c-'0')
	}
	return id, true
}

// segment is one log file. size and live are guarded by the engine lock.
type segment struct {
	id   uint32
	f    *os.File
	size int64 // bytes appended (file size)
	live int64 // payload bytes of records still referenced by the index
}

func (s *segment) path(dir string) string { return filepath.Join(dir, segmentName(s.id)) }

// recBuf is a pooled record buffer; b holds header + payload.
type recBuf struct{ b []byte }

var payloadPool = sync.Pool{New: func() any { return new(recBuf) }}

// encodeRecord serializes a group of ops into a full record (header +
// payload) inside a pooled buffer; the caller returns it with
// payloadPool.Put when done. valOffs holds the offset of each op's value
// *within the record*, -1 for deletes; value offsets become absolute by
// adding the record's position in its segment.
func encodeRecord(ops []stable.Op) (rb *recBuf, valOffs []int, err error) {
	rb = payloadPool.Get().(*recBuf)
	buf := rb.b[:0]
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // header placeholder
	var tmp [binary.MaxVarintLen64]byte
	put := func(n uint64) {
		buf = append(buf, tmp[:binary.PutUvarint(tmp[:], n)]...)
	}
	put(uint64(len(ops)))
	valOffs = make([]int, len(ops))
	for i, op := range ops {
		put(uint64(len(op.Key)))
		buf = append(buf, op.Key...)
		if op.Value == nil {
			put(0)
			valOffs[i] = -1
			continue
		}
		put(uint64(len(op.Value)) + 1)
		valOffs[i] = len(buf)
		buf = append(buf, op.Value...)
	}
	rb.b = buf
	payload := buf[recHeaderSize:]
	if len(payload) > maxRecordSize {
		payloadPool.Put(rb)
		return nil, nil, fmt.Errorf("wal: record of %d bytes exceeds the %d limit", len(payload), maxRecordSize)
	}
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	return rb, valOffs, nil
}

// scanOp is one decoded op during a segment scan: the value offset is
// absolute within the segment file (-1 for a delete).
type scanOp struct {
	key    string
	valOff int64
	valLen int64
	del    bool
}

// scanRecords reads records from r starting at offset off, invoking fn for
// every op of every valid record (recEnd is the file offset just past the
// record). It returns the offset just past the last valid record. A short
// read, bad length or CRC mismatch stops the scan with errTorn wrapped
// alongside the good offset — the caller decides whether a torn tail is
// recoverable (final segment) or corruption (earlier segment).
func scanRecords(r io.ReaderAt, off int64, fn func(op scanOp, recEnd int64) error) (int64, error) {
	var hdr [recHeaderSize]byte
	for {
		if n, err := r.ReadAt(hdr[:], off); err != nil {
			if n == 0 && err == io.EOF {
				return off, nil // clean end
			}
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return off, errTorn // partial header
			}
			return off, err
		}
		plen := int64(binary.LittleEndian.Uint32(hdr[0:4]))
		wantCRC := binary.LittleEndian.Uint32(hdr[4:8])
		// No valid record is empty (empty groups are never appended), so a
		// zero length word is a torn or zero-filled tail, not corruption.
		if plen == 0 || plen > maxRecordSize {
			return off, errTorn
		}
		rb := payloadPool.Get().(*recBuf)
		if int64(cap(rb.b)) < plen {
			rb.b = make([]byte, plen)
		}
		payload := rb.b[:plen]
		rb.b = payload
		if _, err := r.ReadAt(payload, off+recHeaderSize); err != nil {
			payloadPool.Put(rb)
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return off, errTorn // truncated payload
			}
			return off, err
		}
		if crc32.ChecksumIEEE(payload) != wantCRC {
			payloadPool.Put(rb)
			return off, errTorn
		}
		recEnd := off + recHeaderSize + plen
		err := decodePayload(payload, off+recHeaderSize, recEnd, fn)
		payloadPool.Put(rb)
		if err != nil {
			// The CRC checked out, so a malformed payload is an encoder
			// bug or targeted corruption, not a torn write.
			return off, fmt.Errorf("wal: malformed record at offset %d: %w", off, err)
		}
		off = recEnd
	}
}

// decodePayload walks one validated record payload. base is the absolute
// file offset of the payload's first byte.
func decodePayload(payload []byte, base, recEnd int64, fn func(op scanOp, recEnd int64) error) error {
	pos := 0
	next := func() (uint64, error) {
		n, w := binary.Uvarint(payload[pos:])
		if w <= 0 {
			return 0, errors.New("bad varint")
		}
		pos += w
		return n, nil
	}
	nops, err := next()
	if err != nil {
		return err
	}
	for i := uint64(0); i < nops; i++ {
		klen, err := next()
		if err != nil {
			return err
		}
		if uint64(len(payload)-pos) < klen {
			return errors.New("key overruns payload")
		}
		key := string(payload[pos : pos+int(klen)])
		pos += int(klen)
		vfield, err := next()
		if err != nil {
			return err
		}
		op := scanOp{key: key, del: vfield == 0}
		if !op.del {
			vlen := vfield - 1
			if uint64(len(payload)-pos) < vlen {
				return errors.New("value overruns payload")
			}
			op.valOff = base + int64(pos)
			op.valLen = int64(vlen)
			pos += int(vlen)
		}
		if err := fn(op, recEnd); err != nil {
			return err
		}
	}
	if pos != len(payload) {
		return errors.New("trailing bytes in record")
	}
	return nil
}
