package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/stable"
)

// openTest opens a store with small limits and no background goroutine so
// tests drive rotation/checkpoint/compaction deterministically.
func openTest(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	opts.NoBackground = true
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

func TestBasicsAndReopen(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{})
	if err := s.Apply(stable.Put("a", []byte("1")), stable.Put("b", []byte("2"))); err != nil {
		t.Fatal(err)
	}
	if err := s.Apply(stable.Put("a", []byte("1'")), stable.Del("b"), stable.Put("c", nil)); err != nil {
		t.Fatal(err)
	}
	check := func(s *Store) {
		t.Helper()
		if v, ok, err := s.Get("a"); err != nil || !ok || string(v) != "1'" {
			t.Fatalf("a = %q %v %v", v, ok, err)
		}
		if _, ok, _ := s.Get("b"); ok {
			t.Fatal("b survived delete")
		}
		// Put(k, nil) is Del per the Op contract.
		if _, ok, _ := s.Get("c"); ok {
			t.Fatal("nil-value put resurrected c")
		}
		keys, err := s.Keys("")
		if err != nil || !reflect.DeepEqual(keys, []string{"a"}) {
			t.Fatalf("keys = %v %v", keys, err)
		}
	}
	check(s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openTest(t, dir, Options{})
	check(s2)
	if s2.Recovery().CheckpointLoaded {
		t.Error("no checkpoint was written, yet recovery claims one")
	}
}

func TestEmptyValueRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{})
	if err := s.Apply(stable.Put("empty", []byte{})); err != nil {
		t.Fatal(err)
	}
	v, ok, err := s.Get("empty")
	if err != nil || !ok || len(v) != 0 {
		t.Fatalf("empty value = %v %v %v", v, ok, err)
	}
	_ = s.Close()
	s2 := openTest(t, dir, Options{})
	if v, ok, err := s2.Get("empty"); err != nil || !ok || len(v) != 0 {
		t.Fatalf("empty value after reopen = %v %v %v", v, ok, err)
	}
}

func TestRotation(t *testing.T) {
	dir := t.TempDir()
	c := &metrics.Counters{}
	s := openTest(t, dir, Options{SegmentSize: 256, Counters: c})
	val := make([]byte, 100)
	for i := 0; i < 10; i++ {
		if err := s.Apply(stable.Put(fmt.Sprintf("k%02d", i), val)); err != nil {
			t.Fatal(err)
		}
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "*.seg"))
	if len(segs) < 3 {
		t.Fatalf("expected rotation to produce several segments, got %v", segs)
	}
	if c.Snapshot().WALRotations == 0 {
		t.Error("no rotations counted")
	}
	// All keys must survive a reopen that replays every segment.
	_ = s.Close()
	s2 := openTest(t, dir, Options{SegmentSize: 256})
	for i := 0; i < 10; i++ {
		if _, ok, err := s2.Get(fmt.Sprintf("k%02d", i)); err != nil || !ok {
			t.Fatalf("k%02d lost after rotation+reopen: %v %v", i, ok, err)
		}
	}
	if got := s2.Recovery().SegmentsScanned; got != len(segs) {
		t.Errorf("replay scanned %d segments, want %d", got, len(segs))
	}
}

func TestCheckpointBoundsReplay(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{SegmentSize: 1 << 10})
	val := make([]byte, 64)
	for i := 0; i < 64; i++ {
		if err := s.Apply(stable.Put(fmt.Sprintf("k%02d", i%8), val)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// A little tail past the checkpoint.
	for i := 0; i < 4; i++ {
		if err := s.Apply(stable.Put(fmt.Sprintf("t%d", i), val)); err != nil {
			t.Fatal(err)
		}
	}
	_ = s.Close()

	s2 := openTest(t, dir, Options{SegmentSize: 1 << 10})
	rs := s2.Recovery()
	if !rs.CheckpointLoaded {
		t.Fatal("checkpoint not loaded")
	}
	if rs.CheckpointKeys != 8 {
		t.Errorf("checkpoint keys = %d, want 8", rs.CheckpointKeys)
	}
	if rs.OpsReplayed != 4 {
		t.Errorf("replayed %d ops past the checkpoint, want 4", rs.OpsReplayed)
	}
	for i := 0; i < 8; i++ {
		if _, ok, _ := s2.Get(fmt.Sprintf("k%02d", i)); !ok {
			t.Errorf("k%02d missing", i)
		}
	}
	for i := 0; i < 4; i++ {
		if _, ok, _ := s2.Get(fmt.Sprintf("t%d", i)); !ok {
			t.Errorf("t%d missing", i)
		}
	}
}

func TestCheckpointReplayOrderPreservesLastWriter(t *testing.T) {
	// A key overwritten after the checkpoint must come back with the new
	// value: replayed records win over the checkpointed location.
	dir := t.TempDir()
	s := openTest(t, dir, Options{})
	if err := s.Apply(stable.Put("k", []byte("old"))); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Apply(stable.Put("k", []byte("new")), stable.Put("d", []byte("x"))); err != nil {
		t.Fatal(err)
	}
	if err := s.Apply(stable.Del("d")); err != nil {
		t.Fatal(err)
	}
	_ = s.Close()
	s2 := openTest(t, dir, Options{})
	if v, _, _ := s2.Get("k"); string(v) != "new" {
		t.Fatalf("k = %q after replay, want new", v)
	}
	if _, ok, _ := s2.Get("d"); ok {
		t.Fatal("post-checkpoint delete lost in replay")
	}
}

func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	c := &metrics.Counters{}
	s := openTest(t, dir, Options{SegmentSize: 512, Counters: c})
	val := make([]byte, 100)
	// Churn a small key set so early segments are almost all garbage.
	for i := 0; i < 40; i++ {
		if err := s.Apply(stable.Put(fmt.Sprintf("k%d", i%4), val)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	before, _ := filepath.Glob(filepath.Join(dir, "*.seg"))
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	after, _ := filepath.Glob(filepath.Join(dir, "*.seg"))
	if len(after) >= len(before) {
		t.Fatalf("compaction did not delete segments: %d -> %d", len(before), len(after))
	}
	snap := c.Snapshot()
	if snap.WALCompactions == 0 || snap.WALCompactedBytes == 0 {
		t.Errorf("compaction not counted: %+v", snap)
	}
	// All live keys intact, both now and after a reopen.
	verify := func(s *Store) {
		t.Helper()
		for i := 0; i < 4; i++ {
			if v, ok, err := s.Get(fmt.Sprintf("k%d", i)); err != nil || !ok || len(v) != 100 {
				t.Fatalf("k%d after compaction: %v %v", i, ok, err)
			}
		}
		keys, _ := s.Keys("")
		if len(keys) != 4 {
			t.Fatalf("keys after compaction = %v", keys)
		}
	}
	verify(s)
	_ = s.Close()
	s2 := openTest(t, dir, Options{SegmentSize: 512})
	verify(s2)
}

func TestCompactionRaceWithOverwrite(t *testing.T) {
	// Keys overwritten between the compactor's read and its rewrite must
	// keep the new value (the re-verification under the lock drops the
	// stale rewrite). Simulate by overwriting through the normal path
	// while compaction runs repeatedly.
	dir := t.TempDir()
	s := openTest(t, dir, Options{SegmentSize: 256})
	val := make([]byte, 64)
	for i := 0; i < 64; i++ {
		if err := s.Apply(stable.Put(fmt.Sprintf("k%d", i%8), val)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			_ = s.Apply(stable.Put(fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("final%d", i))))
		}
	}()
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i := 0; i < 8; i++ {
		v, ok, err := s.Get(fmt.Sprintf("k%d", i))
		if err != nil || !ok || string(v) != fmt.Sprintf("final%d", i) {
			t.Fatalf("k%d = %q %v %v, want final%d", i, v, ok, err, i)
		}
	}
}

// TestStaleRewriteNeverReachesLog pins the crash-recovery contract of
// compactor rewrites: a rewrite whose key was overwritten (or deleted)
// since the compactor read it must be dropped BEFORE the record is
// written — recovery replays the log blindly last-writer-wins, so a
// stale value appended after the overwrite's record would win the replay
// if the process crashed before the post-compaction checkpoint.
func TestStaleRewriteNeverReachesLog(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{})
	if err := s.Apply(stable.Put("k", []byte("v1")), stable.Put("d", []byte("x1"))); err != nil {
		t.Fatal(err)
	}
	s.mu.RLock()
	lk, ld := s.index["k"], s.index["d"]
	s.mu.RUnlock()

	// The "concurrent" overwrite and delete land first.
	if err := s.Apply(stable.Put("k", []byte("v2")), stable.Del("d")); err != nil {
		t.Fatal(err)
	}
	// The compactor's rewrite arrives with the pre-overwrite locations:
	// both ops are stale and must not reach the log.
	if err := s.append([]stable.Op{stable.Put("k", []byte("v1")), stable.Put("d", []byte("x1"))},
		true, lk, ld); err != nil {
		t.Fatal(err)
	}
	_ = s.Close()

	// Crash here (no checkpoint): blind replay must still yield v2 and
	// keep d deleted.
	r := openTest(t, dir, Options{})
	if v, _, _ := r.Get("k"); string(v) != "v2" {
		t.Fatalf("replay resurrected stale rewrite: k = %q, want v2", v)
	}
	if _, ok, _ := r.Get("d"); ok {
		t.Fatal("replay resurrected deleted key from stale rewrite")
	}
}

func TestGroupCommitCoalesces(t *testing.T) {
	// Sync mode + fat values make each commit slow enough that concurrent
	// callers pile up behind the leader and coalesce.
	s := openTest(t, t.TempDir(), Options{Sync: true})
	const callers, iters = 8, 25
	val := make([]byte, 16<<10)
	var wg sync.WaitGroup
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				val := append(append([]byte(nil), val...), byte(i))
				if err := s.Apply(stable.Put(fmt.Sprintf("g%d", g), val)); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	applies := int64(callers * iters)
	if got := s.GroupCommits(); got >= applies {
		t.Errorf("no coalescing: %d commits for %d applies", got, applies)
	}
	for g := 0; g < callers; g++ {
		if v, ok, _ := s.Get(fmt.Sprintf("g%d", g)); !ok || v[len(v)-1] != iters-1 {
			t.Errorf("g%d = %v, want final write", g, ok)
		}
	}
}

func TestClosedStoreErrors(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Apply(stable.Put("k", []byte("v"))); err != stable.ErrClosed {
		t.Errorf("Apply after close = %v, want ErrClosed", err)
	}
	if _, _, err := s.Get("k"); err != stable.ErrClosed {
		t.Errorf("Get after close = %v, want ErrClosed", err)
	}
	if _, err := s.Keys(""); err != stable.ErrClosed {
		t.Errorf("Keys after close = %v, want ErrClosed", err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("double close = %v", err)
	}
}

func TestSyncModeCountsFsyncs(t *testing.T) {
	c := &metrics.Counters{}
	s := openTest(t, t.TempDir(), Options{Sync: true, Counters: c})
	for i := 0; i < 4; i++ {
		if err := s.Apply(stable.Put("k", []byte{byte(i)})); err != nil {
			t.Fatal(err)
		}
	}
	snap := c.Snapshot()
	if snap.Fsyncs == 0 || snap.FsyncNanos == 0 {
		t.Errorf("fsyncs not observed: %+v", snap)
	}
}

func TestCorruptionInNonFinalSegmentRejected(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{SegmentSize: 128})
	val := make([]byte, 64)
	for i := 0; i < 8; i++ {
		if err := s.Apply(stable.Put(fmt.Sprintf("k%d", i), val)); err != nil {
			t.Fatal(err)
		}
	}
	_ = s.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "*.seg"))
	if len(segs) < 2 {
		t.Fatalf("need ≥2 segments, got %v", segs)
	}
	// Flip a payload byte in the FIRST segment: checksum mismatch that is
	// not a torn tail must refuse to open, not silently drop data.
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{NoBackground: true}); err == nil {
		t.Fatal("open succeeded over corrupt non-final segment")
	}
}

func TestBackgroundMaintenance(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SegmentSize: 1 << 10, CheckpointEvery: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	val := make([]byte, 128)
	for i := 0; i < 256; i++ {
		if err := s.Apply(stable.Put(fmt.Sprintf("k%d", i%8), val)); err != nil {
			t.Fatal(err)
		}
	}
	// The maintenance goroutine runs asynchronously; wait for its first
	// checkpoint to land before simulating the crash.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := os.Stat(filepath.Join(dir, "checkpoint")); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background maintenance never wrote a checkpoint")
		}
		time.Sleep(time.Millisecond)
	}
	_ = s.Close()
	s2 := openTest(t, dir, Options{})
	if !s2.Recovery().CheckpointLoaded {
		t.Fatal("background maintenance never checkpointed")
	}
	// ~36 KiB were appended; any landed checkpoint bounds the replay
	// strictly below the full history (the exact bound is timing
	// dependent; TestCheckpointBoundsReplay pins it deterministically).
	if s2.Recovery().BytesReplayed >= 36<<10 {
		t.Errorf("replay not bounded: %d bytes", s2.Recovery().BytesReplayed)
	}
	for i := 0; i < 8; i++ {
		if _, ok, _ := s2.Get(fmt.Sprintf("k%d", i)); !ok {
			t.Errorf("k%d missing after background maintenance", i)
		}
	}
}
