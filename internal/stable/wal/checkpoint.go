package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"time"

	"repro/internal/metrics"
)

// Checkpoint file: a point-in-time snapshot of the live-key index plus the
// log position it reflects, so recovery replays only records at or after
// that position instead of the whole history (§4.3's bounded replay).
//
//	magic "WALCKPT1"
//	u32le segment id | u64le offset        (replay position)
//	u64le entry count
//	per entry: uvarint len(key) | key | u32le seg | u64le valOff | u64le valLen
//	u32le CRC-32 (IEEE) of everything above
//
// The file is written to a temp name, fsynced and renamed over
// "checkpoint", so there is always exactly one complete checkpoint (or
// none, on a store that never checkpointed). Every location in a persisted
// checkpoint points into a segment that still exists: the compactor
// re-checkpoints *before* deleting a rewritten segment.

const ckptName = "checkpoint"

var ckptMagic = []byte("WALCKPT1")

// ckptPos is a log position: all records strictly before (seg, off) are
// reflected by the index snapshot.
type ckptPos struct {
	seg uint32
	off int64
}

// loc is one index entry: where a key's current value lives. A deleted key
// has no loc. vlen 0 with voff 0 is a zero-length value.
type loc struct {
	seg  uint32
	voff int64
	vlen int64
}

var errNoCheckpoint = errors.New("wal: no checkpoint")

// writeCheckpoint atomically persists the index snapshot (fsynced file +
// directory, regardless of the Sync option: checkpoints gate what recovery
// replays, so a stale-but-complete checkpoint must be what a crash leaves
// behind). counters (may be nil) observes the fsyncs.
func writeCheckpoint(dir string, pos ckptPos, index map[string]loc, counters *metrics.Counters) error {
	buf := make([]byte, 0, 64+len(index)*48)
	buf = append(buf, ckptMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, pos.seg)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(pos.off))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(index)))
	for key, l := range index {
		buf = binary.AppendUvarint(buf, uint64(len(key)))
		buf = append(buf, key...)
		buf = binary.LittleEndian.AppendUint32(buf, l.seg)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(l.voff))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(l.vlen))
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))

	path := filepath.Join(dir, ckptName)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create checkpoint: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		_ = f.Close()
		return fmt.Errorf("wal: write checkpoint: %w", err)
	}
	if err := timedSync(f.Sync, counters); err != nil {
		_ = f.Close()
		return fmt.Errorf("wal: sync checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("wal: install checkpoint: %w", err)
	}
	return syncDirObserved(dir, counters)
}

// timedSync runs one fsync-like call, reporting its latency to counters.
func timedSync(sync func() error, counters *metrics.Counters) error {
	start := time.Now()
	err := sync()
	if counters != nil {
		counters.ObserveFsync(time.Since(start))
	}
	return err
}

// loadCheckpoint reads and validates the checkpoint, returning the index
// snapshot and replay position. errNoCheckpoint means none exists;
// a present-but-invalid checkpoint is an error (it was fsynced before
// rename, so a CRC failure is real corruption, not a crash artifact).
func loadCheckpoint(dir string) (map[string]loc, ckptPos, error) {
	data, err := os.ReadFile(filepath.Join(dir, ckptName))
	if os.IsNotExist(err) {
		return nil, ckptPos{}, errNoCheckpoint
	}
	if err != nil {
		return nil, ckptPos{}, err
	}
	if len(data) < len(ckptMagic)+4+8+8+4 || string(data[:len(ckptMagic)]) != string(ckptMagic) {
		return nil, ckptPos{}, errors.New("wal: malformed checkpoint")
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return nil, ckptPos{}, errors.New("wal: checkpoint checksum mismatch")
	}
	pos := len(ckptMagic)
	cp := ckptPos{
		seg: binary.LittleEndian.Uint32(body[pos:]),
		off: int64(binary.LittleEndian.Uint64(body[pos+4:])),
	}
	count := binary.LittleEndian.Uint64(body[pos+12:])
	pos += 20
	index := make(map[string]loc, count)
	for i := uint64(0); i < count; i++ {
		klen, w := binary.Uvarint(body[pos:])
		if w <= 0 || uint64(len(body)-pos-w) < klen {
			return nil, ckptPos{}, errors.New("wal: checkpoint entry overrun")
		}
		pos += w
		key := string(body[pos : pos+int(klen)])
		pos += int(klen)
		if len(body)-pos < 20 {
			return nil, ckptPos{}, errors.New("wal: checkpoint entry overrun")
		}
		index[key] = loc{
			seg:  binary.LittleEndian.Uint32(body[pos:]),
			voff: int64(binary.LittleEndian.Uint64(body[pos+4:])),
			vlen: int64(binary.LittleEndian.Uint64(body[pos+12:])),
		}
		pos += 20
	}
	if pos != len(body) {
		return nil, ckptPos{}, errors.New("wal: trailing bytes in checkpoint")
	}
	return index, cp, nil
}

// syncDirObserved fsyncs a directory so renames and file creations in it
// are durable, reporting the latency to counters (may be nil).
func syncDirObserved(dir string, counters *metrics.Counters) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = timedSync(d.Sync, counters)
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
