package stable

import (
	"flag"
	"fmt"
	"strconv"
)

// SpecFlags is the shared storage flag surface. Every cmd binds the same
// flag names through BindFlags and resolves them with Spec, so a storage
// knob spells and behaves identically across agentnode, loadgen and the
// chaos/experiment runners — the flags parse into a Spec in exactly one
// place.
type SpecFlags struct {
	engine    *string
	sync      *bool
	segSize   *int64
	ckptEvery *int64
	followers *int
	acks      *string
}

// BindFlags registers the storage flags on fs, seeded with def's values
// as defaults. Call Spec after fs.Parse.
func BindFlags(fs *flag.FlagSet, def Spec) *SpecFlags {
	engine := def.Engine
	if engine == "" {
		engine = "mem"
	}
	defAcks := "quorum"
	if def.Repl.Acks == 1 {
		defAcks = "async"
	}
	return &SpecFlags{
		engine:    fs.String("store", engine, "stable storage engine: wal (log-structured segments + checkpoints), file (one file per key), mem (volatile, testing only)"),
		sync:      fs.Bool("sync", def.Sync, "fsync stable-storage writes (crash-safe across power loss); disable for simulations and throwaway deployments"),
		segSize:   fs.Int64("wal-segment", def.WAL.SegmentSize, "wal engine: segment rotation size in bytes (0 = default 4 MiB)"),
		ckptEvery: fs.Int64("wal-checkpoint", def.WAL.CheckpointEvery, "wal engine: bytes appended between index checkpoints (0 = default 1 MiB, negative disables)"),
		followers: fs.Int("repl", def.Repl.Followers, "follower replicas per node shard (0 disables replication)"),
		acks:      fs.String("repl-acks", defAcks, "replication ack mode: async (primary-only durability, lowest latency), quorum (majority of copies before a batch is acknowledged), or an explicit copy count"),
	}
}

// Spec resolves the parsed flags into a Spec. Dir and Counters are the
// caller's to fill in — they are deployment wiring, not tuning.
func (f *SpecFlags) Spec() (Spec, error) {
	spec := Spec{
		Engine: *f.engine,
		Sync:   *f.sync,
		WAL: WALSpec{
			SegmentSize:     *f.segSize,
			CheckpointEvery: *f.ckptEvery,
		},
		Repl: ReplSpec{Followers: *f.followers},
	}
	if spec.Repl.Followers < 0 {
		return Spec{}, fmt.Errorf("-repl must be >= 0 (got %d)", spec.Repl.Followers)
	}
	switch *f.acks {
	case "async":
		spec.Repl.Acks = 1
	case "quorum":
		spec.Repl.Acks = AcksQuorum
	default:
		n, err := strconv.Atoi(*f.acks)
		if err != nil || n < 1 {
			return Spec{}, fmt.Errorf("bad -repl-acks %q (want async, quorum, or a copy count >= 1)", *f.acks)
		}
		spec.Repl.Acks = n
	}
	return spec, nil
}
