// Package storetest is the shared conformance and crash-matrix suite for
// stable.Store implementations. Every engine (MemStore, FileStore, the
// WAL engine, and any future backend) runs the same battery:
//
//   - Conformance: interface semantics — get/keys/apply, batch atomicity
//     (property-based), value isolation, queue linearization over the
//     store (property-based).
//   - CrashMatrix: for durable engines, random batch histories crashed at
//     every fsync boundary (i.e. after every committed Apply — the
//     engine's contract is that an acknowledged batch is durable), then
//     reopened and verified against a model, including double-reopens and
//     reopen-then-write-then-crash chains.
//
// The suite lives outside the _test files so the stable package, the wal
// package and engine packages added later can all invoke it without
// import cycles.
package storetest

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/stable"
)

// Factory builds a fresh, empty store for one subtest.
type Factory func(t *testing.T) stable.Store

// ReopenFactory opens (or re-opens) a durable store rooted at dir. The
// suite calls it multiple times on the same dir to model process
// restarts; the returned store is closed (via the stable.Reopener
// capability) when the suite is done with that incarnation.
type ReopenFactory func(t *testing.T, dir string) stable.Store

// Conformance runs the interface-semantics battery against one engine.
func Conformance(t *testing.T, f Factory) {
	t.Run("Basics", func(t *testing.T) { testBasics(t, f(t)) })
	t.Run("ValueIsolation", func(t *testing.T) { testValueIsolation(t, f(t)) })
	t.Run("PrefixKeys", func(t *testing.T) { testPrefixKeys(t, f(t)) })
	t.Run("BatchAtomicity", func(t *testing.T) { testBatchAtomicity(t, f) })
	t.Run("QueueLinearization", func(t *testing.T) { testQueueLinearization(t, f) })
}

func testBasics(t *testing.T, s stable.Store) {
	if _, ok, err := s.Get("missing"); err != nil || ok {
		t.Errorf("missing key: %v %v", ok, err)
	}
	if err := s.Apply(stable.Put("a/1", []byte("x")), stable.Put("a/2", []byte("y")), stable.Put("b/1", []byte("z"))); err != nil {
		t.Fatal(err)
	}
	v, ok, err := s.Get("a/1")
	if err != nil || !ok || string(v) != "x" {
		t.Errorf("get a/1 = %q %v %v", v, ok, err)
	}
	keys, err := s.Keys("a/")
	if err != nil || !reflect.DeepEqual(keys, []string{"a/1", "a/2"}) {
		t.Errorf("keys = %v, %v", keys, err)
	}
	if err := s.Apply(stable.Del("a/1"), stable.Put("a/2", []byte("y2"))); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get("a/1"); ok {
		t.Error("a/1 survived delete")
	}
	v, _, _ = s.Get("a/2")
	if string(v) != "y2" {
		t.Errorf("a/2 = %q, want y2", v)
	}
	// Deleting a key that never existed is a no-op, not an error.
	if err := s.Apply(stable.Del("ghost")); err != nil {
		t.Errorf("delete of missing key: %v", err)
	}
	// Empty batch commits trivially.
	if err := s.Apply(); err != nil {
		t.Errorf("empty batch: %v", err)
	}
}

func testValueIsolation(t *testing.T, s stable.Store) {
	orig := []byte("hello")
	if err := s.Apply(stable.Put("k", orig)); err != nil {
		t.Fatal(err)
	}
	orig[0] = 'X' // mutate caller's buffer after commit
	v, _, _ := s.Get("k")
	if string(v) != "hello" {
		t.Errorf("stored value shares caller's buffer: %q", v)
	}
	v[0] = 'Y' // mutate returned buffer
	v2, _, _ := s.Get("k")
	if string(v2) != "hello" {
		t.Errorf("returned value aliases store: %q", v2)
	}
}

func testPrefixKeys(t *testing.T, s stable.Store) {
	for _, k := range []string{"q/e/3", "q/e/1", "q/s/t9", "other", "q/e/2"} {
		if err := s.Apply(stable.Put(k, []byte{1})); err != nil {
			t.Fatal(err)
		}
	}
	keys, err := s.Keys("q/e/")
	if err != nil || !reflect.DeepEqual(keys, []string{"q/e/1", "q/e/2", "q/e/3"}) {
		t.Errorf("prefix keys = %v %v", keys, err)
	}
	all, err := s.Keys("")
	if err != nil || len(all) != 5 {
		t.Errorf("all keys = %v %v", all, err)
	}
}

// testBatchAtomicity: applying a batch is equivalent to applying its
// deduplicated last-writer-wins projection key by key.
func testBatchAtomicity(t *testing.T, f Factory) {
	err := quick.Check(func(seed int64, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw%16) + 1
		batch := make([]stable.Op, n)
		model := map[string]string{}
		for i := range batch {
			key := fmt.Sprintf("k%d", r.Intn(5))
			if r.Intn(3) == 0 {
				batch[i] = stable.Del(key)
				model[key] = ""
			} else {
				val := fmt.Sprintf("v%d", i)
				batch[i] = stable.Put(key, []byte(val))
				model[key] = val
			}
		}
		s := f(t)
		defer closeStore(s)
		if err := s.Apply(batch...); err != nil {
			return false
		}
		for key, want := range model {
			v, ok, err := s.Get(key)
			if err != nil {
				return false
			}
			if want == "" {
				if ok {
					return false
				}
				continue
			}
			if !ok || string(v) != want {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Error(err)
	}
}

// testQueueLinearization: any random interleaving of direct enqueues and
// prepare/commit/abort staged insertions over the store yields exactly
// the committed entries, in reservation order, with no duplicates or
// resurrections.
func testQueueLinearization(t *testing.T, f Factory) {
	err := quick.Check(func(seed int64, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw%24) + 1
		s := f(t)
		defer closeStore(s)
		q := stable.NewQueue(s, "q/")

		type staged struct {
			txn string
			id  string
		}
		var open []staged     // prepared, undecided
		var expected []string // ids in reservation order, "" = never visible

		for i := 0; i < n; i++ {
			switch r.Intn(4) {
			case 0: // direct enqueue
				id := fmt.Sprintf("direct%d", i)
				if err := q.Enqueue(id, []byte(id)); err != nil {
					return false
				}
				expected = append(expected, id)
			case 1: // prepare
				st := staged{txn: fmt.Sprintf("t%d", i), id: fmt.Sprintf("staged%d", i)}
				if err := q.Prepare(st.txn, st.id, []byte(st.id)); err != nil {
					return false
				}
				open = append(open, st)
				expected = append(expected, "pending:"+st.txn)
			case 2: // commit one open staging
				if len(open) == 0 {
					continue
				}
				k := r.Intn(len(open))
				st := open[k]
				open = append(open[:k], open[k+1:]...)
				if err := q.CommitStaged(st.txn); err != nil {
					return false
				}
				for j, e := range expected {
					if e == "pending:"+st.txn {
						expected[j] = st.id
					}
				}
			default: // abort one open staging
				if len(open) == 0 {
					continue
				}
				k := r.Intn(len(open))
				st := open[k]
				open = append(open[:k], open[k+1:]...)
				if err := q.AbortStaged(st.txn); err != nil {
					return false
				}
				for j, e := range expected {
					if e == "pending:"+st.txn {
						expected[j] = ""
					}
				}
			}
		}
		// Abort everything still open so visibility is final.
		for _, st := range open {
			if err := q.AbortStaged(st.txn); err != nil {
				return false
			}
			for j, e := range expected {
				if e == "pending:"+st.txn {
					expected[j] = ""
				}
			}
		}
		// Drain and compare.
		var got []string
		for {
			e, err := q.Peek()
			if err != nil {
				return false
			}
			if e == nil {
				break
			}
			got = append(got, e.ID)
			if err := s.Apply(q.RemoveOp(e)); err != nil {
				return false
			}
		}
		var want []string
		for _, e := range expected {
			if e != "" {
				want = append(want, e)
			}
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Error(err)
	}
}

// CrashMatrix runs randomized batch histories against a durable engine,
// crashing at every fsync boundary. The engines under test acknowledge a
// batch only once it is durable, so "crash after the i-th Apply returned"
// — abandoning the running instance without any shutdown — is exactly the
// fsync-boundary crash; reopening must recover the first i batches and
// nothing else. Mid-write (torn) crashes below the batch boundary are
// engine-specific and covered by the engines' own torn-write tests.
func CrashMatrix(t *testing.T, open ReopenFactory) {
	const nBatches = 12
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			history, models := buildHistory(seed, nBatches)
			for i := 0; i <= nBatches; i++ {
				i := i
				t.Run(fmt.Sprintf("crash_after=%d", i), func(t *testing.T) {
					dir := t.TempDir()
					s := open(t, dir)
					for _, batch := range history[:i] {
						if err := s.Apply(batch...); err != nil {
							t.Fatal(err)
						}
					}
					// Crash: abandon s without shutdown; a second
					// incarnation on the same dir must see exactly the
					// acknowledged batches. (The file handles of the
					// abandoned instance leak until test exit, like a
					// kill -9's would until process exit.)
					r := open(t, dir)
					verifyModel(t, r, models[i])
					closeStore(r)
					closeStore(s)

					// Reopen once more, write one batch, crash, verify
					// the recovery-then-write-then-crash chain.
					r2 := open(t, dir)
					if err := r2.Apply(stable.Put("post/crash", []byte{byte(i)})); err != nil {
						t.Fatal(err)
					}
					r3 := open(t, dir)
					want := copyModel(models[i])
					want["post/crash"] = string([]byte{byte(i)})
					verifyModel(t, r3, want)
					closeStore(r3)
					closeStore(r2)
				})
			}
		})
	}
}

// buildHistory generates nBatches random batches over a small key space
// and the expected model after each prefix.
func buildHistory(seed int64, nBatches int) ([][]stable.Op, []map[string]string) {
	r := rand.New(rand.NewSource(seed))
	model := map[string]string{}
	history := make([][]stable.Op, nBatches)
	models := make([]map[string]string, nBatches+1)
	models[0] = copyModel(model)
	for i := 0; i < nBatches; i++ {
		n := r.Intn(4) + 1
		batch := make([]stable.Op, n)
		for j := 0; j < n; j++ {
			key := fmt.Sprintf("k/%d", r.Intn(8))
			if r.Intn(4) == 0 {
				batch[j] = stable.Del(key)
				delete(model, key)
			} else {
				val := fmt.Sprintf("s%d-b%d-o%d-%d", seed, i, j, r.Int())
				batch[j] = stable.Put(key, []byte(val))
				model[key] = val
			}
		}
		history[i] = batch
		models[i+1] = copyModel(model)
	}
	return history, models
}

func copyModel(m map[string]string) map[string]string {
	c := make(map[string]string, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

func verifyModel(t *testing.T, s stable.Store, model map[string]string) {
	t.Helper()
	keys, err := s.Keys("")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != len(model) {
		t.Errorf("recovered %d keys, want %d (%v)", len(keys), len(model), keys)
	}
	for k, want := range model {
		v, ok, err := s.Get(k)
		if err != nil || !ok || string(v) != want {
			t.Errorf("recovered %q = %q %v %v, want %q", k, v, ok, err, want)
		}
	}
}

func closeStore(s stable.Store) {
	_ = stable.Close(s)
}
