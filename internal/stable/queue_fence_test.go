package stable

import "testing"

// The claim fence withholds matching agents from Claim without touching
// visibility, FIFO order or Len; TryClaim bypasses it (the migration
// path) and refuses entries that are claimed or already consumed.
func TestQueueFenceAndTryClaim(t *testing.T) {
	q := NewQueue(NewMemStore(nil), "q/")
	for _, id := range []string{"a", "b", "c"} {
		if err := q.Enqueue(id, []byte("data-"+id)); err != nil {
			t.Fatal(err)
		}
	}

	q.SetFence(func(id string) bool { return id == "a" || id == "b" })
	e, depth, err := q.Claim(nil)
	if err != nil {
		t.Fatal(err)
	}
	if depth != 3 {
		t.Fatalf("depth = %d, want 3 (fenced entries stay visible)", depth)
	}
	if e == nil || e.ID != "c" {
		t.Fatalf("Claim = %+v, want the unfenced agent c", e)
	}

	// The rebalancer's targeted claim bypasses the fence...
	entries, err := q.Entries()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 || entries[0].ID != "a" {
		t.Fatalf("Entries = %d rows, head %v", len(entries), entries[0])
	}
	fa, ok, err := q.TryClaim(entries[0])
	if err != nil || !ok {
		t.Fatalf("TryClaim(a) ok=%v err=%v", ok, err)
	}
	if string(fa.Data) != "data-a" {
		t.Fatalf("TryClaim re-read data %q", fa.Data)
	}
	// ...but cannot double-claim.
	if _, ok, _ := q.TryClaim(entries[0]); ok {
		t.Fatal("TryClaim succeeded on a claimed entry")
	}

	// A consumed entry (removed + released) is refused, not resurrected.
	if err := q.store.Apply(q.RemoveOp(fa)); err != nil {
		t.Fatal(err)
	}
	q.Release(fa)
	if _, ok, _ := q.TryClaim(entries[0]); ok {
		t.Fatal("TryClaim resurrected a consumed entry")
	}

	// Lifting the fence wakes Claim for the remaining fenced agent.
	notify := q.Notify()
	q.SetFence(nil)
	select {
	case <-notify:
	default:
		t.Fatal("SetFence(nil) did not signal waiting consumers")
	}
	e2, _, err := q.Claim(nil)
	if err != nil {
		t.Fatal(err)
	}
	if e2 == nil || e2.ID != "b" {
		t.Fatalf("post-fence Claim = %+v, want b", e2)
	}
}

// Per-agent FIFO holds across the fence boundary: TryClaim refuses a
// younger entry while the worker path holds the agent's older one.
func TestTryClaimRespectsPerAgentFIFO(t *testing.T) {
	q := NewQueue(NewMemStore(nil), "q/")
	if err := q.Enqueue("a", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := q.Enqueue("a", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	head, _, err := q.Claim(nil)
	if err != nil || head == nil {
		t.Fatalf("claim head: %v %v", head, err)
	}
	entries, err := q.Entries()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := q.TryClaim(entries[1]); ok {
		t.Fatal("TryClaim took a younger entry of an in-flight agent")
	}
	q.Release(head)
	if _, ok, _ := q.TryClaim(entries[0]); !ok {
		t.Fatal("TryClaim refused a released head entry")
	}
}
