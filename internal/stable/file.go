package stable

import (
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/wire"
)

// FileStoreOptions tunes durability and caching of a FileStore.
type FileStoreOptions struct {
	// Sync forces fsync of every written file and its parent directory
	// before a batch is acknowledged, making "stable" mean stable across
	// power loss, not just process death. cmd/agentnode enables it;
	// simulations and benchmarks leave it off.
	Sync bool
	// CacheEntries bounds the read-through Get cache by entry count.
	// 0 selects the default (4096 entries); negative disables caching.
	// The cache is additionally bounded in bytes (see cacheMaxBytes);
	// values too large to be worth caching are never inserted.
	CacheEntries int
}

const (
	defaultCacheEntries = 4096
	// cacheMaxBytes bounds the cache's total value bytes so caching large
	// values (queued agent containers) cannot double the store's memory
	// footprint; cacheMaxValue keeps any single huge value from churning
	// the whole cache.
	cacheMaxBytes = 64 << 20
	cacheMaxValue = 4 << 20
)

// FileStore is a Store persisting each key as a file under a directory,
// with a write-ahead journal making Apply atomic across process crashes.
//
// Layout:
//
//	<dir>/journal            pending batch (gob of []Op), if present
//	<dir>/kv/<hex(key)>      value files
//
// Apply uses group commit: concurrent callers coalesce into a single
// journal write (one gob batch holding every caller's ops, via temp file +
// rename so the journal itself is atomic) followed by one fan-out apply,
// so N concurrent commits cost one journal round-trip instead of N.
// OpenFileStore replays a surviving journal; replay is idempotent because
// ops are plain puts/deletes. Get is served from a bounded read-through
// cache invalidated by Apply.
type FileStore struct {
	dir      string
	kvDir    string
	counters *metrics.Counters
	opts     FileStoreOptions

	// mu guards the cache and write-side file visibility; gen counts
	// applied batches so a cache-miss read can detect that a write
	// happened concurrently and skip inserting a possibly-stale value.
	mu         sync.RWMutex
	cache      map[string][]byte
	cacheBytes int
	gen        uint64

	// gmu guards the group-commit queue; gcond wakes queued callers when
	// the leader finishes so one of them can take over leadership.
	gmu    sync.Mutex
	gcond  *sync.Cond
	queue  []*applyWaiter
	leader bool

	groupCommits atomic.Int64
}

// applyWaiter is one Apply call waiting for its group to commit.
type applyWaiter struct {
	ops       []Op
	err       error
	committed bool
}

var _ Store = (*FileStore)(nil)

// OpenFileStore opens (creating if necessary) a FileStore rooted at dir
// with default options (no fsync, default cache) and replays any pending
// journal. counters may be nil.
func OpenFileStore(dir string, counters *metrics.Counters) (*FileStore, error) {
	return OpenFileStoreWith(dir, counters, FileStoreOptions{})
}

// OpenFileStoreWith is OpenFileStore with explicit options.
func OpenFileStoreWith(dir string, counters *metrics.Counters, opts FileStoreOptions) (*FileStore, error) {
	kvDir := filepath.Join(dir, "kv")
	if err := os.MkdirAll(kvDir, 0o755); err != nil {
		return nil, fmt.Errorf("stable: create store dir: %w", err)
	}
	s := &FileStore{dir: dir, kvDir: kvDir, counters: counters, opts: opts}
	s.gcond = sync.NewCond(&s.gmu)
	if opts.CacheEntries >= 0 {
		s.cache = make(map[string][]byte)
	}
	if err := s.replayJournal(); err != nil {
		return nil, err
	}
	return s, nil
}

// GroupCommits returns the number of journal commits performed; with
// concurrent Apply callers it is lower than the number of Apply calls by
// the coalescing factor. Exposed for benchmarks and tests.
func (s *FileStore) GroupCommits() int64 { return s.groupCommits.Load() }

func (s *FileStore) journalPath() string { return filepath.Join(s.dir, "journal") }

func (s *FileStore) keyPath(key string) string {
	return filepath.Join(s.kvDir, hex.EncodeToString([]byte(key)))
}

func (s *FileStore) cacheCap() int {
	if s.opts.CacheEntries > 0 {
		return s.opts.CacheEntries
	}
	return defaultCacheEntries
}

// cachePut stores value under key in the cache (copying it); a nil value
// removes the entry. The cache is bounded by entry count and total bytes;
// when either bound is hit it is reset wholesale — O(1) amortized, and
// hot keys repopulate on their next read. Values above cacheMaxValue are
// never cached (a few huge containers would evict everything else).
func (s *FileStore) cachePut(key string, value []byte) {
	if s.cache == nil {
		return
	}
	if old, ok := s.cache[key]; ok {
		s.cacheBytes -= len(old)
		delete(s.cache, key)
	}
	if value == nil || len(value) > cacheMaxValue {
		return
	}
	if len(s.cache) >= s.cacheCap() || s.cacheBytes+len(value) > cacheMaxBytes {
		s.cache = make(map[string][]byte)
		s.cacheBytes = 0
	}
	c := make([]byte, len(value))
	copy(c, value)
	s.cache[key] = c
	s.cacheBytes += len(c)
}

func (s *FileStore) replayJournal() error {
	data, err := os.ReadFile(s.journalPath())
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("stable: read journal: %w", err)
	}
	var batch []Op
	if err := wire.Decode(data, &batch); err != nil {
		// A torn journal means the batch never committed; discard it.
		return os.Remove(s.journalPath())
	}
	if err := s.applyOps(batch); err != nil {
		return err
	}
	return os.Remove(s.journalPath())
}

// Get implements Store. Hits are served from the read-through cache;
// misses read the key file without holding any lock (value files are
// replaced by atomic rename, so a read sees a complete old or new value)
// and insert into the cache only if no batch was applied meanwhile, so a
// concurrent Apply can never be shadowed by a stale cache entry.
func (s *FileStore) Get(key string) ([]byte, bool, error) {
	s.mu.RLock()
	if v, ok := s.cache[key]; ok {
		out := make([]byte, len(v))
		copy(out, v)
		s.mu.RUnlock()
		return out, true, nil
	}
	gen := s.gen
	s.mu.RUnlock()

	data, err := os.ReadFile(s.keyPath(key))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("stable: get %q: %w", key, err)
	}
	if s.cache != nil {
		s.mu.Lock()
		if s.gen == gen {
			s.cachePut(key, data)
		}
		s.mu.Unlock()
	}
	return data, true, nil
}

// Keys implements Store.
func (s *FileStore) Keys(prefix string) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	entries, err := os.ReadDir(s.kvDir)
	if err != nil {
		return nil, fmt.Errorf("stable: list keys: %w", err)
	}
	var keys []string
	for _, e := range entries {
		raw, err := hex.DecodeString(e.Name())
		if err != nil {
			continue // not a key file
		}
		key := string(raw)
		if strings.HasPrefix(key, prefix) {
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	return keys, nil
}

// Apply implements Store with group commit: the calling goroutine enqueues
// its batch and waits until a leader commits it. Whenever no leader is
// active, one queued caller takes over, commits every batch queued at
// that moment (its own included) as one journal write + fan-out apply,
// and hands leadership to the next queued caller. Each leader commits
// exactly one group and then returns, so sustained concurrent traffic
// rotates leadership instead of starving one caller. All batches of a
// group share one crash-consistency point: the journal holds the whole
// group, so replay after a crash applies every batch of the group or
// none.
func (s *FileStore) Apply(batch ...Op) error {
	w := &applyWaiter{ops: batch}
	s.gmu.Lock()
	s.queue = append(s.queue, w)
	for !w.committed && s.leader {
		s.gcond.Wait()
	}
	if w.committed {
		err := w.err
		s.gmu.Unlock()
		return err
	}
	// Become the leader for every batch queued right now.
	s.leader = true
	group := s.queue
	s.queue = nil
	s.gmu.Unlock()

	err := s.commitGroup(group)

	s.gmu.Lock()
	for _, g := range group {
		g.err = err
		g.committed = true
	}
	s.leader = false
	s.gmu.Unlock()
	s.gcond.Broadcast()
	return err // w is part of group
}

// commitGroup durably commits the concatenated ops of one group.
func (s *FileStore) commitGroup(group []*applyWaiter) error {
	total := 0
	for _, g := range group {
		total += len(g.ops)
	}
	ops := make([]Op, 0, total)
	for _, g := range group {
		ops = append(ops, g.ops...)
	}
	data, err := wire.Encode(ops)
	if err != nil {
		return err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.writeFileAtomic(s.journalPath(), data); err != nil {
		return fmt.Errorf("stable: write journal: %w", err)
	}
	if s.opts.Sync {
		if err := s.syncDir(s.dir); err != nil {
			return fmt.Errorf("stable: sync journal dir: %w", err)
		}
	}
	if err := s.applyOps(ops); err != nil {
		return err
	}
	if s.opts.Sync {
		if err := s.syncDir(s.kvDir); err != nil {
			return fmt.Errorf("stable: sync kv dir: %w", err)
		}
	}
	if err := os.Remove(s.journalPath()); err != nil {
		return fmt.Errorf("stable: clear journal: %w", err)
	}
	s.groupCommits.Add(1)
	if s.counters != nil {
		var bytes int64
		for _, op := range ops {
			bytes += int64(len(op.Value))
		}
		s.counters.IncStableWrite(bytes)
	}
	return nil
}

// applyOps writes the op files and keeps the cache coherent. Callers hold
// s.mu (except single-threaded journal replay during open).
func (s *FileStore) applyOps(batch []Op) error {
	s.gen++
	for _, op := range batch {
		path := s.keyPath(op.Key)
		if op.Value == nil {
			if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
				return fmt.Errorf("stable: delete %q: %w", op.Key, err)
			}
			s.cachePut(op.Key, nil)
			continue
		}
		if err := s.writeFileAtomic(path, op.Value); err != nil {
			return fmt.Errorf("stable: put %q: %w", op.Key, err)
		}
		s.cachePut(op.Key, op.Value)
	}
	return nil
}

// writeFileAtomic writes data to path via temp file + rename; with
// opts.Sync the file contents are fsynced before the rename (the parent
// directory is synced once per batch by the caller).
func (s *FileStore) writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		return err
	}
	if s.opts.Sync {
		start := time.Now()
		err := f.Sync()
		if s.counters != nil {
			s.counters.ObserveFsync(time.Since(start))
		}
		if err != nil {
			_ = f.Close()
			return err
		}
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// syncDir fsyncs a directory so renames within it are durable.
func (s *FileStore) syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	start := time.Now()
	err = d.Sync()
	if s.counters != nil {
		s.counters.ObserveFsync(time.Since(start))
	}
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
