package stable

import (
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/metrics"
	"repro/internal/wire"
)

// FileStore is a Store persisting each key as a file under a directory,
// with a write-ahead journal making Apply atomic across process crashes.
//
// Layout:
//
//	<dir>/journal            pending batch (gob of []Op), if present
//	<dir>/kv/<hex(key)>      value files
//
// Apply first writes the batch to the journal (via temp file + rename so
// the journal itself is atomic), then applies each op, then removes the
// journal. OpenFileStore replays a surviving journal; replay is idempotent
// because ops are plain puts/deletes.
type FileStore struct {
	mu       sync.RWMutex
	dir      string
	kvDir    string
	counters *metrics.Counters
}

var _ Store = (*FileStore)(nil)

// OpenFileStore opens (creating if necessary) a FileStore rooted at dir and
// replays any pending journal. counters may be nil.
func OpenFileStore(dir string, counters *metrics.Counters) (*FileStore, error) {
	kvDir := filepath.Join(dir, "kv")
	if err := os.MkdirAll(kvDir, 0o755); err != nil {
		return nil, fmt.Errorf("stable: create store dir: %w", err)
	}
	s := &FileStore{dir: dir, kvDir: kvDir, counters: counters}
	if err := s.replayJournal(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *FileStore) journalPath() string { return filepath.Join(s.dir, "journal") }

func (s *FileStore) keyPath(key string) string {
	return filepath.Join(s.kvDir, hex.EncodeToString([]byte(key)))
}

func (s *FileStore) replayJournal() error {
	data, err := os.ReadFile(s.journalPath())
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("stable: read journal: %w", err)
	}
	var batch []Op
	if err := wire.Decode(data, &batch); err != nil {
		// A torn journal means the batch never committed; discard it.
		return os.Remove(s.journalPath())
	}
	if err := s.applyOps(batch); err != nil {
		return err
	}
	return os.Remove(s.journalPath())
}

// Get implements Store.
func (s *FileStore) Get(key string) ([]byte, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, err := os.ReadFile(s.keyPath(key))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("stable: get %q: %w", key, err)
	}
	return data, true, nil
}

// Keys implements Store.
func (s *FileStore) Keys(prefix string) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	entries, err := os.ReadDir(s.kvDir)
	if err != nil {
		return nil, fmt.Errorf("stable: list keys: %w", err)
	}
	var keys []string
	for _, e := range entries {
		raw, err := hex.DecodeString(e.Name())
		if err != nil {
			continue // not a key file
		}
		key := string(raw)
		if strings.HasPrefix(key, prefix) {
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	return keys, nil
}

// Apply implements Store.
func (s *FileStore) Apply(batch ...Op) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, err := wire.Encode(batch)
	if err != nil {
		return err
	}
	if err := writeFileAtomic(s.journalPath(), data); err != nil {
		return fmt.Errorf("stable: write journal: %w", err)
	}
	if err := s.applyOps(batch); err != nil {
		return err
	}
	if err := os.Remove(s.journalPath()); err != nil {
		return fmt.Errorf("stable: clear journal: %w", err)
	}
	if s.counters != nil {
		var bytes int64
		for _, op := range batch {
			bytes += int64(len(op.Value))
		}
		s.counters.IncStableWrite(bytes)
	}
	return nil
}

func (s *FileStore) applyOps(batch []Op) error {
	for _, op := range batch {
		path := s.keyPath(op.Key)
		if op.Value == nil {
			if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
				return fmt.Errorf("stable: delete %q: %w", op.Key, err)
			}
			continue
		}
		if err := writeFileAtomic(path, op.Value); err != nil {
			return fmt.Errorf("stable: put %q: %w", op.Key, err)
		}
	}
	return nil
}

func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
