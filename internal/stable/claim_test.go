package stable

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestQueueClaimLease(t *testing.T) {
	storeImpls(t, func(t *testing.T, s Store) {
		q := NewQueue(s, "q/")
		for _, id := range []string{"a", "b", "c"} {
			if err := q.Enqueue(id, []byte(id)); err != nil {
				t.Fatal(err)
			}
		}
		// Claims hand out distinct entries oldest-first.
		e1, depth, err := q.Claim(nil)
		if err != nil || e1 == nil || e1.ID != "a" {
			t.Fatalf("claim 1: %v %v", e1, err)
		}
		if depth != 3 {
			t.Errorf("observed depth = %d, want 3", depth)
		}
		e2, _, err := q.Claim(nil)
		if err != nil || e2 == nil || e2.ID != "b" {
			t.Fatalf("claim 2: %v %v", e2, err)
		}
		if q.Claimed() != 2 {
			t.Errorf("Claimed = %d, want 2", q.Claimed())
		}
		// Peek still sees the oldest entry: claims do not remove.
		if e, _ := q.Peek(); e == nil || e.ID != "a" {
			t.Errorf("peek under claim = %v", e)
		}
		// Releasing makes the entry claimable again, in order.
		q.Release(e1)
		e3, _, err := q.Claim(nil)
		if err != nil || e3 == nil || e3.ID != "a" {
			t.Fatalf("re-claim: %v %v", e3, err)
		}
		// Consuming an entry durably, then releasing the claim.
		if err := s.Apply(q.RemoveOp(e3)); err != nil {
			t.Fatal(err)
		}
		q.Release(e3)
		e4, _, err := q.Claim(nil)
		if err != nil || e4 == nil || e4.ID != "c" {
			t.Fatalf("claim after remove: %v %v", e4, err)
		}
		if e, _, err := q.Claim(nil); err != nil || e != nil {
			t.Fatalf("claim on drained queue: %v %v", e, err)
		}
	})
}

func TestQueueClaimPerAgentFIFO(t *testing.T) {
	storeImpls(t, func(t *testing.T, s Store) {
		q := NewQueue(s, "q/")
		// Two entries for agent x, one for agent y, in age order x1 y x2.
		if err := q.Enqueue("x", []byte("x1")); err != nil {
			t.Fatal(err)
		}
		if err := q.Enqueue("y", []byte("y1")); err != nil {
			t.Fatal(err)
		}
		if err := q.Enqueue("x", []byte("x2")); err != nil {
			t.Fatal(err)
		}
		e1, _, _ := q.Claim(nil)
		if e1 == nil || string(e1.Data) != "x1" {
			t.Fatalf("claim 1 = %v", e1)
		}
		// x's younger entry is withheld while x1 is claimed; y is free.
		e2, _, _ := q.Claim(nil)
		if e2 == nil || e2.ID != "y" {
			t.Fatalf("claim 2 = %v", e2)
		}
		if e, _, _ := q.Claim(nil); e != nil {
			t.Fatalf("x2 handed out while x1 in flight: %v", e)
		}
		// Consume x1 (the normal step-commit path), then release: x's
		// younger entry becomes claimable.
		if err := s.Apply(q.RemoveOp(e1)); err != nil {
			t.Fatal(err)
		}
		q.Release(e1)
		e3, _, _ := q.Claim(nil)
		if e3 == nil || string(e3.Data) != "x2" {
			t.Fatalf("claim after release = %v", e3)
		}
	})
}

func TestQueueClaimSkip(t *testing.T) {
	storeImpls(t, func(t *testing.T, s Store) {
		q := NewQueue(s, "q/")
		for _, id := range []string{"cooling", "ready"} {
			if err := q.Enqueue(id, nil); err != nil {
				t.Fatal(err)
			}
		}
		e, _, err := q.Claim(func(id string) bool { return id == "cooling" })
		if err != nil || e == nil || e.ID != "ready" {
			t.Fatalf("claim with skip = %v %v", e, err)
		}
		// The vetoed agent stays claimable once the veto lifts.
		e2, _, err := q.Claim(nil)
		if err != nil || e2 == nil || e2.ID != "cooling" {
			t.Fatalf("claim after veto = %v %v", e2, err)
		}
	})
}

// TestQueueClaimVolatile models a crash: a fresh Queue over the same store
// sees claimed-but-unremoved entries again (§4.3: the agent still resides
// in the input queue).
func TestQueueClaimVolatile(t *testing.T) {
	storeImpls(t, func(t *testing.T, s Store) {
		q := NewQueue(s, "q/")
		for i := 0; i < 3; i++ {
			if err := q.Enqueue(fmt.Sprintf("a%d", i), nil); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 3; i++ {
			if e, _, _ := q.Claim(nil); e == nil {
				t.Fatal("claim came up empty")
			}
		}
		q2 := NewQueue(s, "q/")
		for i := 0; i < 3; i++ {
			e, _, err := q2.Claim(nil)
			if err != nil || e == nil {
				t.Fatalf("post-crash claim %d: %v %v", i, e, err)
			}
		}
	})
}

// TestQueueClaimCachedIDsStayCorrect drives the entryIDs cache through
// enqueue / claim / remove / release / re-enqueue churn and checks the
// hand-out order never deviates from a cache-less queue.
func TestQueueClaimCachedIDsStayCorrect(t *testing.T) {
	storeImpls(t, func(t *testing.T, s Store) {
		q := NewQueue(s, "q/")
		// Interleave two agents, claim through twice so the second pass
		// is served from the warm cache.
		for round := 0; round < 2; round++ {
			for i := 0; i < 4; i++ {
				if err := q.Enqueue(fmt.Sprintf("ag%d", i%2), []byte(fmt.Sprintf("r%d-%d", round, i))); err != nil {
					t.Fatal(err)
				}
			}
			var claimed []*Entry
			for i := 0; i < 2; i++ {
				e, _, err := q.Claim(nil)
				if err != nil || e == nil {
					t.Fatalf("round %d claim %d: %v %v", round, i, e, err)
				}
				if want := fmt.Sprintf("r%d-%d", round, i); string(e.Data) != want {
					t.Fatalf("round %d claim %d = %q, want %q", round, i, e.Data, want)
				}
				claimed = append(claimed, e)
			}
			// Younger entries of both agents are withheld.
			if e, _, _ := q.Claim(nil); e != nil {
				t.Fatalf("round %d: withheld entry handed out: %v", round, e)
			}
			for _, e := range claimed {
				if err := s.Apply(q.RemoveOp(e)); err != nil {
					t.Fatal(err)
				}
				q.Release(e)
			}
			for i := 2; i < 4; i++ {
				e, _, err := q.Claim(nil)
				if err != nil || e == nil {
					t.Fatalf("round %d tail claim: %v %v", round, e, err)
				}
				if want := fmt.Sprintf("r%d-%d", round, i); string(e.Data) != want {
					t.Fatalf("round %d tail = %q, want %q", round, e.Data, want)
				}
				if err := s.Apply(q.RemoveOp(e)); err != nil {
					t.Fatal(err)
				}
				q.Release(e)
			}
		}
	})
}

// BenchmarkQueueClaimWithheld measures one Claim call over a queue whose
// visible entries are all withheld (every agent has its oldest entry in
// flight) — the scheduler's steady state under load. Before the entryIDs
// cache this re-read and re-decoded every withheld entry from the store
// per call (O(depth) gob decodes); with it the scan is pure map lookups.
func BenchmarkQueueClaimWithheld(b *testing.B) {
	for _, agents := range []int{64, 512, 4096} {
		b.Run(fmt.Sprintf("agents=%d", agents), func(b *testing.B) {
			s := NewMemStore(nil)
			q := NewQueue(s, "q/")
			payload := make([]byte, 1024)
			for i := 0; i < agents; i++ {
				id := fmt.Sprintf("agent%05d", i)
				// Oldest entry (will be claimed) + a younger withheld one.
				if err := q.Enqueue(id, payload); err != nil {
					b.Fatal(err)
				}
				if err := q.Enqueue(id, payload); err != nil {
					b.Fatal(err)
				}
			}
			for i := 0; i < agents; i++ {
				e, _, err := q.Claim(nil)
				if err != nil || e == nil {
					b.Fatalf("setup claim %d: %v %v", i, e, err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e, _, err := q.Claim(nil)
				if err != nil {
					b.Fatal(err)
				}
				if e != nil {
					b.Fatal("claim should find everything withheld")
				}
			}
		})
	}
}

// TestQueueNotifyBroadcast checks the no-missed-wakeup contract for N
// concurrent waiters: grab the channel, find the queue empty, block — an
// enqueue wakes every waiter.
func TestQueueNotifyBroadcast(t *testing.T) {
	q := NewQueue(NewMemStore(nil), "q/")
	const waiters = 8
	var wg sync.WaitGroup
	woke := make(chan int, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				ch := q.Notify() // grab BEFORE the emptiness check
				if e, _, _ := q.Claim(nil); e != nil {
					woke <- i
					return
				}
				select {
				case <-ch:
				case <-time.After(5 * time.Second):
					t.Errorf("waiter %d missed the wakeup", i)
					return
				}
			}
		}(i)
	}
	// All waiters park, then entries arrive one by one; every waiter must
	// eventually claim one even though signals race with parking.
	for i := 0; i < waiters; i++ {
		time.Sleep(time.Millisecond)
		if err := q.Enqueue(fmt.Sprintf("w%d", i), nil); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if len(woke) != waiters {
		t.Fatalf("%d waiters woke, want %d", len(woke), waiters)
	}
}
