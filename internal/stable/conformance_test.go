package stable_test

import (
	"testing"
	"time"

	"repro/internal/stable"
	"repro/internal/stable/repl"
	"repro/internal/stable/storetest"
	"repro/internal/stable/wal"
)

// TestStoreConformance runs the shared conformance battery against every
// engine. CI's storage matrix selects one engine per job via
// -run 'TestStoreConformance/<engine>'.
func TestStoreConformance(t *testing.T) {
	t.Run("mem", func(t *testing.T) {
		storetest.Conformance(t, func(t *testing.T) stable.Store {
			return stable.NewMemStore(nil)
		})
	})
	t.Run("file", func(t *testing.T) {
		storetest.Conformance(t, func(t *testing.T) stable.Store {
			s, err := stable.OpenFileStore(t.TempDir(), nil)
			if err != nil {
				t.Fatal(err)
			}
			return s
		})
	})
	t.Run("wal", func(t *testing.T) {
		storetest.Conformance(t, func(t *testing.T) stable.Store {
			s, err := wal.Open(t.TempDir(), wal.Options{NoBackground: true})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { _ = s.Close() })
			return s
		})
	})
	// The WAL engine must also conform with aggressive rotation,
	// checkpointing and compaction churning underneath the interface.
	t.Run("wal-tiny-segments", func(t *testing.T) {
		storetest.Conformance(t, func(t *testing.T) stable.Store {
			s, err := wal.Open(t.TempDir(), wal.Options{
				SegmentSize:     128,
				CheckpointEvery: 256,
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { _ = s.Close() })
			return s
		})
	})
	// The replication wrapper is itself a stable.Store and must preserve
	// the engine semantics exactly — including hiding its own meta record
	// from readers. Unbound, so commits retain locally (nothing to ack).
	t.Run("repl", func(t *testing.T) {
		storetest.Conformance(t, func(t *testing.T) stable.Store {
			inner, err := wal.Open(t.TempDir(), wal.Options{NoBackground: true})
			if err != nil {
				t.Fatal(err)
			}
			s, err := repl.Wrap(inner, repl.Options{
				Shard: "n0", Followers: []string{"n1"}, Acks: 1,
				ResendEvery: time.Hour,
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { _ = s.Close() })
			return s
		})
	})
}

// TestStoreCrashMatrix crashes each durable engine at every fsync
// boundary of randomized histories and verifies recovery (MemStore is
// volatile by design and exempt).
func TestStoreCrashMatrix(t *testing.T) {
	t.Run("file", func(t *testing.T) {
		storetest.CrashMatrix(t, func(t *testing.T, dir string) stable.Store {
			s, err := stable.OpenFileStore(dir, nil)
			if err != nil {
				t.Fatal(err)
			}
			return s
		})
	})
	t.Run("wal", func(t *testing.T) {
		storetest.CrashMatrix(t, func(t *testing.T, dir string) stable.Store {
			s, err := wal.Open(dir, wal.Options{NoBackground: true})
			if err != nil {
				t.Fatal(err)
			}
			return s
		})
	})
	// Small segments + eager checkpoints and compaction: recovery must
	// compose with rotation and checkpoint-bounded replay at every crash
	// point. Maintenance runs synchronously through the wrapper (an
	// abandoned instance's background goroutine would keep mutating the
	// directory after the "crash", which a dead process cannot).
	t.Run("wal-tiny-segments", func(t *testing.T) {
		storetest.CrashMatrix(t, func(t *testing.T, dir string) stable.Store {
			s, err := wal.Open(dir, wal.Options{
				SegmentSize:  96,
				NoBackground: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			return &ckptEveryN{Store: s, every: 3}
		})
	})
	// A replicated store's crash durability is its inner engine's: every
	// crash point must recover identically through the wrapper, with the
	// replication position resuming alongside. (Abandoned incarnations
	// keep an inert resend goroutine until test exit, like their leaked
	// file handles.)
	t.Run("repl", func(t *testing.T) {
		storetest.CrashMatrix(t, func(t *testing.T, dir string) stable.Store {
			inner, err := wal.Open(dir, wal.Options{NoBackground: true})
			if err != nil {
				t.Fatal(err)
			}
			s, err := repl.Wrap(inner, repl.Options{
				Shard: "n0", Followers: []string{"n1"}, Acks: 1,
				ResendEvery: time.Hour,
			})
			if err != nil {
				t.Fatal(err)
			}
			return s
		})
	})
}

// ckptEveryN checkpoints and compacts after every N applies,
// synchronously, so crash points land on both sides of checkpoints.
type ckptEveryN struct {
	*wal.Store
	n     int
	every int
}

func (c *ckptEveryN) Apply(ops ...stable.Op) error {
	if err := c.Store.Apply(ops...); err != nil {
		return err
	}
	c.n++
	if c.n%c.every == 0 {
		if err := c.Store.Checkpoint(); err != nil {
			return err
		}
		if err := c.Store.Compact(); err != nil {
			return err
		}
	}
	return nil
}
