package stable

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/wire"
)

// storeImpls runs a subtest against both store implementations.
func storeImpls(t *testing.T, fn func(t *testing.T, s Store)) {
	t.Helper()
	t.Run("mem", func(t *testing.T) { fn(t, NewMemStore(nil)) })
	t.Run("file", func(t *testing.T) {
		s, err := OpenFileStore(t.TempDir(), nil)
		if err != nil {
			t.Fatal(err)
		}
		fn(t, s)
	})
}

// Store interface conformance (basics, value isolation, batch atomicity,
// queue linearization) lives in the shared suite: see storetest and
// conformance_test.go, which run it against every engine.

func TestFileStorePersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s1, err := OpenFileStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Apply(Put("key", []byte("persisted"))); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenFileStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	v, ok, err := s2.Get("key")
	if err != nil || !ok || string(v) != "persisted" {
		t.Errorf("reopen: %q %v %v", v, ok, err)
	}
}

func TestFileStoreJournalReplay(t *testing.T) {
	// Simulate a crash between journal write and batch apply: a valid
	// journal exists, the kv files do not. Opening must replay it.
	dir := t.TempDir()
	batch := []Op{Put("a", []byte("1")), Del("b")}
	data, err := wire.Encode(batch)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dir, "kv"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "journal"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := OpenFileStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	v, ok, err := s.Get("a")
	if err != nil || !ok || string(v) != "1" {
		t.Errorf("journal not replayed: %q %v %v", v, ok, err)
	}
	if _, err := os.Stat(filepath.Join(dir, "journal")); !os.IsNotExist(err) {
		t.Error("journal not cleared after replay")
	}
}

func TestFileStoreTornJournalDiscarded(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "kv"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "journal"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := OpenFileStore(dir, nil)
	if err != nil {
		t.Fatalf("torn journal should be discarded, got %v", err)
	}
	if _, ok, _ := s.Get("a"); ok {
		t.Error("torn journal applied")
	}
}

func TestQueueFIFO(t *testing.T) {
	storeImpls(t, func(t *testing.T, s Store) {
		q := NewQueue(s, "q/")
		for _, id := range []string{"first", "second", "third"} {
			if err := q.Enqueue(id, []byte(id+"-data")); err != nil {
				t.Fatal(err)
			}
		}
		if n, _ := q.Len(); n != 3 {
			t.Fatalf("Len = %d, want 3", n)
		}
		for _, want := range []string{"first", "second", "third"} {
			e, err := q.Peek()
			if err != nil || e == nil {
				t.Fatalf("peek: %v %v", e, err)
			}
			if e.ID != want || string(e.Data) != want+"-data" {
				t.Errorf("peeked %q, want %q", e.ID, want)
			}
			if err := s.Apply(q.RemoveOp(e)); err != nil {
				t.Fatal(err)
			}
		}
		e, err := q.Peek()
		if err != nil || e != nil {
			t.Errorf("empty queue peek = %v, %v", e, err)
		}
	})
}

func TestQueueStagedLifecycle(t *testing.T) {
	storeImpls(t, func(t *testing.T, s Store) {
		q := NewQueue(s, "q/")
		if err := q.Prepare("tx1", "agent1", []byte("d1")); err != nil {
			t.Fatal(err)
		}
		// Invisible while staged.
		if e, _ := q.Peek(); e != nil {
			t.Error("staged entry visible")
		}
		staged, err := q.StagedTxns()
		if err != nil || !reflect.DeepEqual(staged, []string{"tx1"}) {
			t.Errorf("staged = %v, %v", staged, err)
		}
		// Prepare is idempotent.
		if err := q.Prepare("tx1", "agent1", []byte("d1")); err != nil {
			t.Fatal(err)
		}
		if err := q.CommitStaged("tx1"); err != nil {
			t.Fatal(err)
		}
		e, err := q.Peek()
		if err != nil || e == nil || e.ID != "agent1" {
			t.Fatalf("after commit: %v %v", e, err)
		}
		// Commit is idempotent.
		if err := q.CommitStaged("tx1"); err != nil {
			t.Fatal(err)
		}
		if n, _ := q.Len(); n != 1 {
			t.Errorf("duplicate commit duplicated entry: len %d", n)
		}
	})
}

func TestQueueAbortStaged(t *testing.T) {
	s := NewMemStore(nil)
	q := NewQueue(s, "q/")
	if err := q.Prepare("tx1", "a", []byte("d")); err != nil {
		t.Fatal(err)
	}
	if err := q.AbortStaged("tx1"); err != nil {
		t.Fatal(err)
	}
	if staged, _ := q.StagedTxns(); len(staged) != 0 {
		t.Errorf("staged after abort = %v", staged)
	}
	// Commit after abort is a no-op (no resurrection).
	if err := q.CommitStaged("tx1"); err != nil {
		t.Fatal(err)
	}
	if e, _ := q.Peek(); e != nil {
		t.Error("aborted entry resurrected by commit")
	}
}

func TestQueueStagedKeepsReservedPosition(t *testing.T) {
	s := NewMemStore(nil)
	q := NewQueue(s, "q/")
	if err := q.Prepare("tx1", "early", nil); err != nil {
		t.Fatal(err)
	}
	if err := q.Enqueue("late", nil); err != nil {
		t.Fatal(err)
	}
	if err := q.CommitStaged("tx1"); err != nil {
		t.Fatal(err)
	}
	e, err := q.Peek()
	if err != nil || e == nil || e.ID != "early" {
		t.Errorf("head = %v, want early (reserved position)", e)
	}
}

func TestQueueEnqueueOps(t *testing.T) {
	s := NewMemStore(nil)
	q := NewQueue(s, "q/")
	ops, err := q.EnqueueOps("a1", []byte("d"))
	if err != nil {
		t.Fatal(err)
	}
	// Not visible until the ops are applied.
	if e, _ := q.Peek(); e != nil {
		t.Error("entry visible before ops applied")
	}
	if err := s.Apply(ops...); err != nil {
		t.Fatal(err)
	}
	e, err := q.Peek()
	if err != nil || e == nil || e.ID != "a1" {
		t.Errorf("after apply: %v %v", e, err)
	}
}

func TestQueueNotify(t *testing.T) {
	s := NewMemStore(nil)
	q := NewQueue(s, "q/")
	// Broadcast contract: grab the channel first; a later enqueue closes
	// it, waking every holder.
	ch := q.Notify()
	if err := q.Enqueue("a", nil); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
	default:
		t.Error("no notification after enqueue")
	}
	// A channel grabbed after the signal only reports future arrivals.
	select {
	case <-q.Notify():
		t.Error("stale notification on fresh channel")
	default:
	}
}

func TestQueueSeparatePrefixes(t *testing.T) {
	s := NewMemStore(nil)
	q1 := NewQueue(s, "q1/")
	q2 := NewQueue(s, "q2/")
	if err := q1.Enqueue("a", nil); err != nil {
		t.Fatal(err)
	}
	if e, _ := q2.Peek(); e != nil {
		t.Error("queues share entries across prefixes")
	}
}
