package stable

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"

	"repro/internal/wire"
)

// TestFileStoreApplyConcurrent hammers Apply from many goroutines and
// verifies that every caller's batch took full effect, the journal is
// gone, and a reopen sees the same state — i.e. group commit preserves
// per-batch atomicity and durability while coalescing journal writes.
func TestFileStoreApplyConcurrent(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFileStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	const writes = 40
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < writes; i++ {
				// Each batch writes the goroutine's counter key and a
				// shadow key; both must always agree.
				v := []byte(strconv.Itoa(i))
				err := s.Apply(
					Put(fmt.Sprintf("g%d", g), v),
					Put(fmt.Sprintf("g%d/shadow", g), v),
				)
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	check := func(st Store, label string) {
		for g := 0; g < goroutines; g++ {
			v, ok, err := st.Get(fmt.Sprintf("g%d", g))
			if err != nil || !ok {
				t.Fatalf("%s: g%d missing: %v %v", label, g, ok, err)
			}
			sh, ok, err := st.Get(fmt.Sprintf("g%d/shadow", g))
			if err != nil || !ok {
				t.Fatalf("%s: g%d shadow missing: %v %v", label, g, ok, err)
			}
			if string(v) != strconv.Itoa(writes-1) || string(sh) != string(v) {
				t.Errorf("%s: g%d = %q shadow %q, want %d", label, g, v, sh, writes-1)
			}
		}
	}
	check(s, "live")
	if _, err := os.Stat(filepath.Join(dir, "journal")); !os.IsNotExist(err) {
		t.Error("journal left behind after quiescence")
	}
	if got, want := s.GroupCommits(), int64(goroutines*writes); got > want {
		t.Errorf("GroupCommits = %d > Apply calls %d", got, want)
	}
	reopened, err := OpenFileStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	check(reopened, "reopened")
}

// TestFileStoreGroupJournalReplay simulates a crash after a *group*
// journal (several callers' batches coalesced) was written but before the
// ops were applied: replay must apply every batch of the group.
func TestFileStoreGroupJournalReplay(t *testing.T) {
	dir := t.TempDir()
	group := []Op{
		// caller 1's batch
		Put("a", []byte("1")), Put("a/shadow", []byte("1")),
		// caller 2's batch
		Put("b", []byte("2")), Del("stale"),
	}
	data, err := wire.Encode(group)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dir, "kv"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "journal"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := OpenFileStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	for key, want := range map[string]string{"a": "1", "a/shadow": "1", "b": "2"} {
		v, ok, err := s.Get(key)
		if err != nil || !ok || string(v) != want {
			t.Errorf("replayed %q = %q %v %v, want %q", key, v, ok, err, want)
		}
	}
	if _, ok, _ := s.Get("stale"); ok {
		t.Error("deleted key resurrected by replay")
	}
	if _, err := os.Stat(filepath.Join(dir, "journal")); !os.IsNotExist(err) {
		t.Error("journal not cleared after replay")
	}
}

// TestFileStoreGetCache: a second Get must be served from the cache (the
// backing file is removed out from under the store to prove it), and
// Apply must keep the cache coherent.
func TestFileStoreGetCache(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFileStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Apply(Put("k", []byte("v1"))); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := s.Get("k"); !ok || string(v) != "v1" {
		t.Fatalf("first get = %q %v", v, ok)
	}
	// Remove the file behind the store's back; the cache must still hit.
	if err := os.Remove(s.keyPath("k")); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := s.Get("k"); !ok || string(v) != "v1" {
		t.Errorf("cached get = %q %v, want v1", v, ok)
	}
	// A write-through updates the cache …
	if err := s.Apply(Put("k", []byte("v2"))); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := s.Get("k"); string(v) != "v2" {
		t.Errorf("after update = %q, want v2", v)
	}
	// … and a delete evicts it.
	if err := s.Apply(Del("k")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get("k"); ok {
		t.Error("deleted key still served from cache")
	}
}

func TestFileStoreCacheDisabled(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFileStoreWith(dir, nil, FileStoreOptions{CacheEntries: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Apply(Put("k", []byte("v"))); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(s.keyPath("k")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get("k"); ok {
		t.Error("cache served a value with caching disabled")
	}
}

func TestFileStoreCacheBounded(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFileStoreWith(dir, nil, FileStoreOptions{CacheEntries: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := s.Apply(Put(fmt.Sprintf("k%d", i), []byte("v"))); err != nil {
			t.Fatal(err)
		}
	}
	s.mu.RLock()
	n := len(s.cache)
	s.mu.RUnlock()
	if n > 4 {
		t.Errorf("cache holds %d entries, cap 4", n)
	}
	// Every key still readable (falls through to files).
	for i := 0; i < 20; i++ {
		if _, ok, err := s.Get(fmt.Sprintf("k%d", i)); err != nil || !ok {
			t.Fatalf("k%d unreadable: %v %v", i, ok, err)
		}
	}
}

// TestFileStoreSyncOption smoke-tests the fsync path end to end (correct
// data, journal cleared); the actual durability claim is not testable
// without killing the kernel.
func TestFileStoreSyncOption(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFileStoreWith(dir, nil, FileStoreOptions{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Apply(Put("a", []byte("x")), Put("b", []byte("y")), Del("a")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get("a"); ok {
		t.Error("deleted key present")
	}
	if v, ok, _ := s.Get("b"); !ok || string(v) != "y" {
		t.Errorf("b = %q %v", v, ok)
	}
	if _, err := os.Stat(filepath.Join(dir, "journal")); !os.IsNotExist(err) {
		t.Error("journal left behind")
	}
}

// TestQueueSeqCacheSurvivesRestart: the cached tail counter must pick up
// where the persisted counter left off when a fresh Queue (post-crash)
// opens the same store.
func TestQueueSeqCacheSurvivesRestart(t *testing.T) {
	s := NewMemStore(nil)
	q1 := NewQueue(s, "q/")
	for i := 0; i < 3; i++ {
		if err := q1.Enqueue(fmt.Sprintf("a%d", i), nil); err != nil {
			t.Fatal(err)
		}
	}
	// "Crash": a fresh queue over the same store.
	q2 := NewQueue(s, "q/")
	if err := q2.Enqueue("a3", nil); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"a0", "a1", "a2", "a3"} {
		e, err := q2.Peek()
		if err != nil || e == nil || e.ID != want {
			t.Fatalf("head = %v %v, want %s", e, err, want)
		}
		if err := s.Apply(q2.RemoveOp(e)); err != nil {
			t.Fatal(err)
		}
	}
}
