package stable

import (
	"sort"
	"strings"
	"sync"

	"repro/internal/metrics"
)

// MemStore is an in-memory Store. In the simulated cluster the MemStore is
// owned by the cluster, not the node, so it survives injected node crashes
// exactly like a disk would; only the node's volatile state is lost.
//
// Apply holds the store lock for the whole batch, so a batch is atomic with
// respect to both concurrent readers and simulated crash points (which can
// only occur between Go statements of other goroutines, never inside the
// critical section).
type MemStore struct {
	mu       sync.RWMutex
	data     map[string][]byte
	counters *metrics.Counters
}

var _ Store = (*MemStore)(nil)

// NewMemStore returns an empty MemStore. counters may be nil.
func NewMemStore(counters *metrics.Counters) *MemStore {
	return &MemStore{
		data:     make(map[string][]byte),
		counters: counters,
	}
}

// Get implements Store.
func (s *MemStore) Get(key string) ([]byte, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.data[key]
	if !ok {
		return nil, false, nil
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out, true, nil
}

// Keys implements Store.
func (s *MemStore) Keys(prefix string) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var keys []string
	for k := range s.data {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys, nil
}

// Apply implements Store.
func (s *MemStore) Apply(batch ...Op) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var bytes int64
	for _, op := range batch {
		if op.Value == nil {
			delete(s.data, op.Key)
			continue
		}
		v := make([]byte, len(op.Value))
		copy(v, op.Value)
		s.data[op.Key] = v
		bytes += int64(len(v))
	}
	if s.counters != nil {
		s.counters.IncStableWrite(bytes)
	}
	return nil
}

// Len returns the number of stored keys (for tests).
func (s *MemStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}
