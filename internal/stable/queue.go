package stable

import (
	"errors"
	"fmt"
	"strconv"
	"sync"

	"repro/internal/wire"
)

// Queue is the agent input queue of one node (§2 of the paper): a FIFO of
// opaque agent containers on stable storage. It supports two write paths:
//
//   - Enqueue: direct, atomic insertion (used when an owner launches an
//     agent into the system).
//   - Prepare/CommitStaged/AbortStaged: two-phase insertion used by the
//     distributed step and compensation transactions. A prepared entry is
//     durable but invisible; committing makes it visible at the queue
//     position reserved at prepare time.
//
// Removal is exposed as a batch Op (RemoveOp) so the destructive read of an
// agent at the start of a step transaction commits atomically with the rest
// of the transaction: if the step aborts or the node crashes, the agent is
// still in the queue (§2, §4.3).
//
// For concurrent consumers the queue adds claim/lease semantics (Claim,
// Release): a claim marks an entry as taken by one worker without removing
// it. Claims are volatile — a fresh Queue over the same store (i.e. after a
// crash) starts with no claims, so recovery sees every unprocessed entry
// exactly as the serial runtime does, preserving §4.3's "the agent still
// resides in the input queue" invariant.
type Queue struct {
	store  Store
	prefix string

	mu     sync.Mutex
	notify chan struct{}

	// Volatile claims: store key -> agent ID, plus a per-agent count so
	// Claim can preserve per-agent FIFO order (a younger entry for an
	// agent is never handed out while an older one is claimed).
	claimed    map[string]string
	claimedIDs map[string]int

	// entryIDs caches the agent ID of visible entries by store key. The
	// claim scan consults it so withheld entries (claimed keys, younger
	// entries of in-flight agents, vetoed agents) cost a map lookup, not
	// a store read plus a gob decode per entry per call — with hundreds
	// of agents in flight the old scan re-decoded every withheld entry
	// on every Claim. Entries are decoded at most once per lifetime; the
	// cache is pruned against the live key set when it outgrows it.
	entryIDs map[string]string

	// view caches the sorted visible-key listing for the claim scan.
	// Every visibility transition invalidates it through signal(): queue
	// methods (Enqueue, CommitStaged) signal directly, and the external
	// paths — EnqueueOps/RemoveOp batches committed by a worker's
	// transaction — are always followed by the worker's Release, which
	// signals. Until that Release the removed key is still in claimed
	// and the scan skips it, so a stale view never surfaces a dead
	// entry; as a second line of defense, a winner whose entry vanished
	// from the store refreshes the view and rescans instead of failing.
	view      []string
	viewValid bool

	// seq caches the next sequence number after the first read, so tail
	// reservations cost no store round-trip. The store copy is only read
	// again by a fresh Queue (i.e. after a crash/restart), and every
	// reservation persists seq+1 in the same batch as its entry, so the
	// cache and the store can never diverge observably.
	seq       uint64
	seqLoaded bool

	// fence, when set, withholds matching agents from the worker Claim
	// path. The membership rebalancer installs it while migrating agents
	// away (and the drain before a Leave fences everything), so workers
	// stop opening new step transactions on entries that are about to be
	// handed to another node. TryClaim bypasses the fence — it *is* the
	// rebalancer's path. Like claims, the fence is volatile.
	fence func(id string) bool
}

// Entry is one committed queue element.
type Entry struct {
	ID   string // application-level identifier (agent ID)
	Data []byte // opaque container bytes

	key string // store key, used by RemoveOp
}

// stagedRec is the durable form of a prepared insertion.
type stagedRec struct {
	Seq  uint64
	ID   string
	Data []byte
}

// entryRec is the durable form of a committed entry.
type entryRec struct {
	ID   string
	Data []byte
}

// NewQueue returns a queue stored under the given key prefix.
func NewQueue(store Store, prefix string) *Queue {
	return &Queue{
		store:      store,
		prefix:     prefix,
		notify:     make(chan struct{}),
		claimed:    make(map[string]string),
		claimedIDs: make(map[string]int),
		entryIDs:   make(map[string]string),
	}
}

// Notify returns a channel that is closed when the next entry becomes
// visible (or a claim is released) — a broadcast, so any number of waiting
// consumers wake. Grab the channel *before* checking the queue, then wait
// on it only if the check came up empty; that ordering cannot miss a
// wakeup. Each signal replaces the channel, so loop and re-grab.
func (q *Queue) Notify() <-chan struct{} {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.notify
}

func (q *Queue) signal() {
	q.viewValid = false
	close(q.notify)
	q.notify = make(chan struct{})
}

func (q *Queue) seqKey() string           { return q.prefix + "seq" }
func (q *Queue) entryKey(n uint64) string { return fmt.Sprintf("%se/%016d", q.prefix, n) }
func (q *Queue) stageKey(txn string) string {
	return q.prefix + "s/" + txn
}

// nextSeq reserves the next sequence number and returns the op persisting
// the successor; the caller includes it in the batch that uses the number.
// The caller must hold q.mu. The counter is read from the store once and
// cached; a reservation whose batch never commits burns the number, which
// only leaves a harmless gap in the ordering.
func (q *Queue) nextSeq() (uint64, Op, error) {
	if !q.seqLoaded {
		raw, ok, err := q.store.Get(q.seqKey())
		if err != nil {
			return 0, Op{}, err
		}
		if ok {
			n, err := strconv.ParseUint(string(raw), 10, 64)
			if err != nil {
				return 0, Op{}, fmt.Errorf("stable: corrupt queue seq: %w", err)
			}
			q.seq = n
		}
		q.seqLoaded = true
	}
	n := q.seq
	q.seq = n + 1
	return n, Put(q.seqKey(), []byte(strconv.FormatUint(n+1, 10))), nil
}

// Enqueue atomically inserts a committed entry at the tail.
func (q *Queue) Enqueue(id string, data []byte) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	seq, seqOp, err := q.nextSeq()
	if err != nil {
		return err
	}
	rec, err := wire.Encode(entryRec{ID: id, Data: data})
	if err != nil {
		return err
	}
	if err := q.store.Apply(seqOp, Put(q.entryKey(seq), rec)); err != nil {
		return err
	}
	q.entryIDs[q.entryKey(seq)] = id
	q.signal()
	return nil
}

// EnqueueOps reserves a tail position immediately (the sequence number is
// burnt even if the surrounding transaction aborts) and returns the batch
// Ops that make the entry visible; include them in the transaction's
// commit batch. This is how a step transaction atomically re-enqueues an
// agent on the *same* node without two-phase commit.
func (q *Queue) EnqueueOps(id string, data []byte) ([]Op, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	seq, seqOp, err := q.nextSeq()
	if err != nil {
		return nil, err
	}
	if err := q.store.Apply(seqOp); err != nil {
		return nil, err
	}
	rec, err := wire.Encode(entryRec{ID: id, Data: data})
	if err != nil {
		return nil, err
	}
	// Cache the ID now: the entry only becomes visible if the caller's
	// transaction commits the ops, and a stale cache entry for a position
	// that never materializes is pruned with the rest.
	q.entryIDs[q.entryKey(seq)] = id
	return []Op{Put(q.entryKey(seq), rec)}, nil
}

// Prepare stages an insertion under txnID. The entry is durable but not
// visible until CommitStaged. Prepare is idempotent per txnID.
func (q *Queue) Prepare(txnID, id string, data []byte) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if _, ok, err := q.store.Get(q.stageKey(txnID)); err != nil {
		return err
	} else if ok {
		return nil // already prepared (coordinator retry)
	}
	seq, seqOp, err := q.nextSeq()
	if err != nil {
		return err
	}
	rec, err := wire.Encode(stagedRec{Seq: seq, ID: id, Data: data})
	if err != nil {
		return err
	}
	return q.store.Apply(seqOp, Put(q.stageKey(txnID), rec))
}

// CommitStaged makes the entry staged under txnID visible. It is
// idempotent: committing an unknown txnID is a no-op (already committed).
func (q *Queue) CommitStaged(txnID string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	raw, ok, err := q.store.Get(q.stageKey(txnID))
	if err != nil {
		return err
	}
	if !ok {
		return nil
	}
	var st stagedRec
	if err := wire.Decode(raw, &st); err != nil {
		return fmt.Errorf("stable: corrupt staged entry %q: %w", txnID, err)
	}
	rec, err := wire.Encode(entryRec{ID: st.ID, Data: st.Data})
	if err != nil {
		return err
	}
	if err := q.store.Apply(
		Del(q.stageKey(txnID)),
		Put(q.entryKey(st.Seq), rec),
	); err != nil {
		return err
	}
	q.entryIDs[q.entryKey(st.Seq)] = st.ID
	q.signal()
	return nil
}

// AbortStaged discards the entry staged under txnID. Idempotent.
func (q *Queue) AbortStaged(txnID string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.store.Apply(Del(q.stageKey(txnID)))
}

// StagedTxns returns the transaction IDs with prepared entries; used by
// crash recovery to resolve in-doubt transactions with the coordinator.
func (q *Queue) StagedTxns() ([]string, error) {
	keys, err := q.store.Keys(q.prefix + "s/")
	if err != nil {
		return nil, err
	}
	txns := make([]string, len(keys))
	for i, k := range keys {
		txns[i] = k[len(q.prefix)+2:]
	}
	return txns, nil
}

// Peek returns the oldest visible entry, or nil if the queue is empty.
func (q *Queue) Peek() (*Entry, error) {
	keys, err := q.store.Keys(q.prefix + "e/")
	if err != nil {
		return nil, err
	}
	if len(keys) == 0 {
		return nil, nil
	}
	raw, ok, err := q.store.Get(keys[0])
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("stable: queue entry %q vanished", keys[0])
	}
	var rec entryRec
	if err := wire.Decode(raw, &rec); err != nil {
		return nil, fmt.Errorf("stable: corrupt queue entry %q: %w", keys[0], err)
	}
	return &Entry{ID: rec.ID, Data: rec.Data, key: keys[0]}, nil
}

// Claim returns the oldest visible entry that is not claimed and whose
// agent has no claimed entry (per-agent FIFO: while one worker holds an
// agent's oldest entry, younger entries of the same agent are withheld).
// skip, if non-nil, lets the caller veto agents (e.g. retry back-off); a
// vetoed agent's entries stay unclaimed. Returns a nil entry when nothing
// is claimable; depth is the number of visible entries observed by the
// scan (a free queue-depth sample for the caller's metrics). The claim is
// volatile: it is not persisted, and a fresh Queue over the same store
// starts unclaimed.
//
// Cost: entries passed over (claimed, withheld behind an in-flight agent,
// vetoed) are judged from the entryIDs cache — no store reads, no
// decodes — so the per-claim cost stays flat as the queue deepens with
// in-flight agents; exactly one store read fetches the winning entry, and
// each entry is decoded at most once over its lifetime.
func (q *Queue) Claim(skip func(id string) bool) (e *Entry, depth int, err error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	// One retry: a fresh view resolves the benign vanished-entry race
	// (removal committed, Release pending); a vanish that survives a
	// fresh listing is real corruption and propagates.
	for attempt := 0; ; attempt++ {
		e, depth, err = q.claimScan(skip)
		if errors.Is(err, errEntryVanished) && attempt == 0 {
			q.viewValid = false
			continue
		}
		return e, depth, err
	}
}

// claimScan is one pass of the claim scan over the (possibly cached)
// visible-key view. Caller holds q.mu.
func (q *Queue) claimScan(skip func(id string) bool) (e *Entry, depth int, err error) {
	if !q.viewValid {
		keys, err := q.store.Keys(q.prefix + "e/")
		if err != nil {
			return nil, 0, err
		}
		q.view = keys
		q.viewValid = true
		q.pruneEntryIDs(keys)
	}
	depth = len(q.view)
	for _, k := range q.view {
		if _, taken := q.claimed[k]; taken {
			continue
		}
		id, cached := q.entryIDs[k]
		var data []byte
		if !cached {
			var rec entryRec
			if rec, err = q.readEntry(k); err != nil {
				return nil, depth, err
			}
			id, data = rec.ID, rec.Data
			q.entryIDs[k] = id
		}
		if q.claimedIDs[id] > 0 {
			continue // an older entry of this agent is in flight
		}
		if skip != nil && skip(id) {
			continue
		}
		if q.fence != nil && q.fence(id) {
			continue // withheld for migration (see SetFence)
		}
		if cached {
			var rec entryRec
			if rec, err = q.readEntry(k); err != nil {
				return nil, depth, err
			}
			data = rec.Data
		}
		q.claimed[k] = id
		q.claimedIDs[id]++
		return &Entry{ID: id, Data: data, key: k}, depth, nil
	}
	return nil, depth, nil
}

// errEntryVanished marks a listed entry missing from the store: benign
// when the listing was cached (refresh and rescan), corruption when not.
var errEntryVanished = errors.New("stable: queue entry vanished")

// readEntry fetches and decodes one committed entry record.
func (q *Queue) readEntry(key string) (entryRec, error) {
	raw, ok, err := q.store.Get(key)
	if err != nil {
		return entryRec{}, err
	}
	if !ok {
		return entryRec{}, fmt.Errorf("%w: %q", errEntryVanished, key)
	}
	var rec entryRec
	if err := wire.Decode(raw, &rec); err != nil {
		return entryRec{}, fmt.Errorf("stable: corrupt queue entry %q: %w", key, err)
	}
	return rec, nil
}

// pruneEntryIDs drops cache entries for removed queue positions once the
// cache has outgrown the live key set — O(live) work amortized over at
// least as many removals.
func (q *Queue) pruneEntryIDs(live []string) {
	if len(q.entryIDs) <= 2*len(live)+64 {
		return
	}
	fresh := make(map[string]string, len(live))
	for _, k := range live {
		if id, ok := q.entryIDs[k]; ok {
			fresh[k] = id
		}
	}
	q.entryIDs = fresh
}

// Release drops the claim on e. Call it after the entry was durably
// removed (the claim bookkeeping is discarded) or when the worker gives
// the entry up for another consumer (the entry becomes claimable again,
// and blocked consumers are woken).
func (q *Queue) Release(e *Entry) {
	q.mu.Lock()
	defer q.mu.Unlock()
	id, ok := q.claimed[e.key]
	if !ok {
		return
	}
	delete(q.claimed, e.key)
	if q.claimedIDs[id] <= 1 {
		delete(q.claimedIDs, id)
	} else {
		q.claimedIDs[id]--
	}
	q.signal()
}

// Claimed returns the number of currently claimed entries.
func (q *Queue) Claimed() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.claimed)
}

// SetFence installs (or, with nil, removes) the claim fence: Claim passes
// over entries whose agent ID f reports as fenced, exactly as if they were
// claimed by someone else. Fenced entries stay visible, keep their FIFO
// position and still count toward Len — only the worker hand-out path is
// gated. A fence change wakes blocked consumers so a lifted fence is
// noticed without a new enqueue.
func (q *Queue) SetFence(f func(id string) bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.fence = f
	q.signal()
}

// Entries returns the visible entries in FIFO order, including claimed
// and fenced ones — the rebalancer's sweep listing. Entries that vanish
// between the key listing and the read (a removal committing under a
// released claim) are skipped rather than reported as corruption.
func (q *Queue) Entries() ([]*Entry, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	keys, err := q.store.Keys(q.prefix + "e/")
	if err != nil {
		return nil, err
	}
	out := make([]*Entry, 0, len(keys))
	for _, k := range keys {
		rec, err := q.readEntry(k)
		if errors.Is(err, errEntryVanished) {
			continue
		}
		if err != nil {
			return nil, err
		}
		out = append(out, &Entry{ID: rec.ID, Data: rec.Data, key: k})
	}
	return out, nil
}

// TryClaim claims the specific entry e (by queue position), bypassing the
// fence — the migration path's targeted claim. It fails (ok=false) when
// the entry is claimed, when its agent has another entry in flight, or
// when the entry is no longer in the store (consumed since the listing).
// On success it returns the entry re-read from the store, so the caller
// migrates the current container bytes, never a stale listing's.
func (q *Queue) TryClaim(e *Entry) (*Entry, bool, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if _, taken := q.claimed[e.key]; taken {
		return nil, false, nil
	}
	rec, err := q.readEntry(e.key)
	if errors.Is(err, errEntryVanished) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	if q.claimedIDs[rec.ID] > 0 {
		return nil, false, nil // an older entry of this agent is in flight
	}
	q.claimed[e.key] = rec.ID
	q.claimedIDs[rec.ID]++
	return &Entry{ID: rec.ID, Data: rec.Data, key: e.key}, true, nil
}

// RemoveOp returns the batch Op deleting e; include it in the commit batch
// of the transaction that consumed the entry.
func (q *Queue) RemoveOp(e *Entry) Op { return Del(e.key) }

// Len returns the number of visible entries.
func (q *Queue) Len() (int, error) {
	keys, err := q.store.Keys(q.prefix + "e/")
	if err != nil {
		return 0, err
	}
	return len(keys), nil
}
