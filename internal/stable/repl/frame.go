// Package repl replicates a stable store's committed batches to follower
// replicas on other nodes, so a *permanently* lost node's stable state —
// its agent input queue, rollback logs and 2PC decision records — can be
// promoted on a survivor and recovery can run the normal
// replay-stable-survivors-as-events path.
//
// The paper (§4.3) assumes every fault is temporary: a crashed node
// returns with its disk. This layer removes that assumption. Each node's
// store is a shard with one primary (the owning node) and K followers.
// The primary assigns every committed group-commit batch a log sequence
// number (LSN), persists it together with the batch, and streams the
// batch to the followers as CRC-framed records over a dedicated
// replication endpoint ("<node>!repl"). Followers apply records in LSN
// order into their own replica store and acknowledge cumulatively; gaps
// and restarts heal through primary-driven resends and, when the
// retained tail no longer reaches back far enough, full snapshot
// manifests. Acks are configurable: asynchronous (primary-only
// durability) or a quorum of copies before Apply returns — the quorum
// mode is what makes 2PC decision records survive a coordinator's
// permanent death, because the decision replicates before any
// participant can learn it.
//
// Promotion bumps an epoch persisted with the replica: the surviving
// copy with the highest (epoch, LSN) becomes the new authoritative store
// and the remaining followers converge on it via snapshots.
package repl

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"strings"

	"repro/internal/stable"
)

// Wire frame kinds of the replication plane.
const (
	// KindAppend carries one committed record (an encoded Record).
	KindAppend = "repl.append"
	// KindAck carries a follower's cumulative durable position (an
	// encoded Ack).
	KindAck = "repl.ack"
	// KindSnapshot carries a full state manifest for catch-up (an
	// encoded Snapshot).
	KindSnapshot = "repl.snapshot"
)

// Suffix distinguishes a node's replication endpoint from its protocol
// endpoint. The network layer treats both as the same host for
// partitions and crashes.
const Suffix = "!repl"

// Endpoint returns the replication endpoint name of a node.
func Endpoint(node string) string { return node + Suffix }

// NodeOf returns the node owning a replication endpoint name.
func NodeOf(endpoint string) string {
	return strings.TrimSuffix(endpoint, Suffix)
}

// Record is one committed batch of the primary's log.
type Record struct {
	Shard string // owning node of the replicated store
	Epoch uint64 // promotion epoch the record was written in
	LSN   uint64 // position in the shard's log, starting at 1
	Ops   []stable.Op
}

// Ack is a follower's cumulative durable position for one shard.
type Ack struct {
	Shard string
	Epoch uint64
	LSN   uint64
}

// Snapshot is a full manifest of a shard's state at (Epoch, LSN), used
// when a follower is too far behind the retained record tail (or on the
// wrong epoch) to catch up record by record.
type Snapshot struct {
	Shard string
	Epoch uint64
	LSN   uint64
	Ops   []stable.Op // puts only
}

// Frame layout: u32 body length | u32 CRC-32 (IEEE) of body | body.
// The length prefix is redundant over a datagram transport but keeps the
// frames self-delimiting on a stream, and the CRC rejects corruption
// independent of the transport.

func frame(body []byte) []byte {
	out := make([]byte, 8, 8+len(body))
	binary.BigEndian.PutUint32(out[0:4], uint32(len(body)))
	binary.BigEndian.PutUint32(out[4:8], crc32.ChecksumIEEE(body))
	return append(out, body...)
}

func unframe(payload []byte) ([]byte, error) {
	if len(payload) < 8 {
		return nil, fmt.Errorf("repl: frame truncated (%d bytes)", len(payload))
	}
	n := binary.BigEndian.Uint32(payload[0:4])
	body := payload[8:]
	if uint32(len(body)) != n {
		return nil, fmt.Errorf("repl: frame length mismatch (header %d, got %d)", n, len(body))
	}
	if crc := crc32.ChecksumIEEE(body); crc != binary.BigEndian.Uint32(payload[4:8]) {
		return nil, fmt.Errorf("repl: frame CRC mismatch")
	}
	return body, nil
}

func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

func appendString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// appendOps encodes ops as: count, then per op key and value, where the
// value length is shifted by one so 0 encodes a delete (nil value).
func appendOps(b []byte, ops []stable.Op) []byte {
	b = appendUvarint(b, uint64(len(ops)))
	for _, op := range ops {
		b = appendString(b, op.Key)
		if op.Value == nil {
			b = appendUvarint(b, 0)
			continue
		}
		b = appendUvarint(b, uint64(len(op.Value))+1)
		b = append(b, op.Value...)
	}
	return b
}

type reader struct {
	b   []byte
	err error
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.err = fmt.Errorf("repl: bad varint")
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *reader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if uint64(len(r.b)) < n {
		r.err = fmt.Errorf("repl: string truncated")
		return ""
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s
}

func (r *reader) ops() []stable.Op {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.b)) { // each op takes >= 1 byte
		r.err = fmt.Errorf("repl: op count %d exceeds frame", n)
		return nil
	}
	ops := make([]stable.Op, 0, n)
	for i := uint64(0); i < n && r.err == nil; i++ {
		key := r.str()
		vl := r.uvarint()
		if r.err != nil {
			return nil
		}
		if vl == 0 {
			ops = append(ops, stable.Del(key))
			continue
		}
		vl--
		if uint64(len(r.b)) < vl {
			r.err = fmt.Errorf("repl: value truncated")
			return nil
		}
		val := make([]byte, vl)
		copy(val, r.b[:vl])
		r.b = r.b[vl:]
		ops = append(ops, stable.Put(key, val))
	}
	return ops
}

// EncodeRecord serializes a record into a CRC-framed payload.
func EncodeRecord(rec Record) []byte {
	body := appendString(nil, rec.Shard)
	body = appendUvarint(body, rec.Epoch)
	body = appendUvarint(body, rec.LSN)
	body = appendOps(body, rec.Ops)
	return frame(body)
}

// DecodeRecord parses a payload produced by EncodeRecord.
func DecodeRecord(payload []byte) (Record, error) {
	body, err := unframe(payload)
	if err != nil {
		return Record{}, err
	}
	r := reader{b: body}
	rec := Record{Shard: r.str(), Epoch: r.uvarint(), LSN: r.uvarint()}
	rec.Ops = r.ops()
	return rec, r.err
}

// EncodeAck serializes an ack into a CRC-framed payload.
func EncodeAck(ack Ack) []byte {
	body := appendString(nil, ack.Shard)
	body = appendUvarint(body, ack.Epoch)
	body = appendUvarint(body, ack.LSN)
	return frame(body)
}

// DecodeAck parses a payload produced by EncodeAck.
func DecodeAck(payload []byte) (Ack, error) {
	body, err := unframe(payload)
	if err != nil {
		return Ack{}, err
	}
	r := reader{b: body}
	ack := Ack{Shard: r.str(), Epoch: r.uvarint(), LSN: r.uvarint()}
	return ack, r.err
}

// EncodeSnapshot serializes a snapshot into a CRC-framed payload.
func EncodeSnapshot(snap Snapshot) []byte {
	body := appendString(nil, snap.Shard)
	body = appendUvarint(body, snap.Epoch)
	body = appendUvarint(body, snap.LSN)
	body = appendOps(body, snap.Ops)
	return frame(body)
}

// DecodeSnapshot parses a payload produced by EncodeSnapshot.
func DecodeSnapshot(payload []byte) (Snapshot, error) {
	body, err := unframe(payload)
	if err != nil {
		return Snapshot{}, err
	}
	r := reader{b: body}
	snap := Snapshot{Shard: r.str(), Epoch: r.uvarint(), LSN: r.uvarint()}
	snap.Ops = r.ops()
	return snap, r.err
}
