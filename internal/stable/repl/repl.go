package repl

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/stable"
)

// metaKey persists the shard's replication position (epoch, LSN) inside
// the underlying store, atomically with every replicated batch. The NUL
// prefix keeps it out of every application namespace; the Reader side of
// the wrapper hides it.
const metaKey = "\x00repl"

func metaOp(epoch, lsn uint64) stable.Op {
	v := make([]byte, 16)
	binary.BigEndian.PutUint64(v[0:8], epoch)
	binary.BigEndian.PutUint64(v[8:16], lsn)
	return stable.Put(metaKey, v)
}

// ReadMeta returns the replication position persisted in a store: the
// epoch and LSN of the last batch it durably holds. A store never
// written through the replication layer reports (0, 0). The cluster's
// failover uses it to pick the most caught-up replica.
func ReadMeta(s stable.Reader) (epoch, lsn uint64, err error) {
	v, ok, err := s.Get(metaKey)
	if err != nil || !ok {
		return 0, 0, err
	}
	if len(v) != 16 {
		return 0, 0, fmt.Errorf("repl: corrupt meta record (%d bytes)", len(v))
	}
	return binary.BigEndian.Uint64(v[0:8]), binary.BigEndian.Uint64(v[8:16]), nil
}

// SendFunc transmits one replication frame to a replication endpoint.
// Errors are the transport's problem: the resend loop retries until the
// follower acknowledges.
type SendFunc func(to, kind string, payload []byte)

// Options configures the primary side of one replicated shard.
type Options struct {
	// Shard is the owning node's name.
	Shard string
	// Followers are the nodes holding replicas of this shard.
	Followers []string
	// Acks is the number of *follower* acknowledgements an Apply must
	// collect before returning (stable.ReplSpec.FollowerAcks). 0 ships
	// asynchronously.
	Acks int
	// Retain bounds the record tail kept in memory for resends; a
	// follower further behind catches up by snapshot. Default 256.
	Retain int
	// ResendEvery is the lag-repair cadence. Default 25ms.
	ResendEvery time.Duration
	// Clock drives the resend loop; nil uses the wall clock.
	Clock network.Clock
	// Promote bumps the persisted epoch at open: a different physical
	// copy (a promoted follower replica) is becoming the authoritative
	// one, and records it writes must not be confused with same-LSN
	// records of the previous authority.
	Promote bool
	// Counters receives replication instrumentation; nil disables it.
	Counters *metrics.Counters
}

type waiter struct {
	lsn uint64
	ch  chan struct{}
}

// Store is the primary side of a replicated shard: a stable.Store
// wrapper that assigns every committed batch an LSN (persisted with the
// batch), streams it to the followers, and optionally blocks Apply until
// a quorum of copies holds it. It implements the stable.Replicated and
// stable.Reopener capabilities.
type Store struct {
	inner     stable.Store
	shard     string
	followers []string
	need      int
	retain    int
	every     time.Duration
	clock     network.Clock
	counters  *metrics.Counters

	// mu guards all replication state below and is held across
	// inner.Apply in the commit path, so snapshots observe a consistent
	// (state, LSN) pair.
	mu         sync.Mutex
	epoch      uint64
	lsn        uint64
	tail       [][]byte // encoded KindAppend frames, tailStart..lsn
	tailStart  uint64   // LSN of tail[0]; 0 when tail is empty
	acked      map[string]uint64
	ackedEpoch map[string]uint64
	waiters    []waiter
	send       SendFunc
	closed     bool

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup

	// group commit: concurrent Apply calls elect a leader that commits,
	// ships and (in quorum mode) awaits acks for the whole group as one
	// record, mirroring the WAL engine's group commit underneath.
	gmu     sync.Mutex
	queue   []*applyReq
	leading bool
}

type applyReq struct {
	ops  []stable.Op
	done chan error
}

var (
	_ stable.Replicated = (*Store)(nil)
	_ stable.Reopener   = (*Store)(nil)
)

// Wrap makes inner the authoritative copy of opts.Shard and returns the
// replicating wrapper. The position persisted in inner is resumed; with
// opts.Promote the epoch is bumped and durably re-persisted first.
func Wrap(inner stable.Store, opts Options) (*Store, error) {
	if opts.Shard == "" {
		return nil, fmt.Errorf("repl: Options.Shard is required")
	}
	if strings.Contains(opts.Shard, "!") {
		return nil, fmt.Errorf("repl: shard name %q must not contain '!'", opts.Shard)
	}
	epoch, lsn, err := ReadMeta(inner)
	if err != nil {
		return nil, err
	}
	if opts.Promote {
		epoch++
		if err := inner.Apply(metaOp(epoch, lsn)); err != nil {
			return nil, err
		}
	}
	if opts.Retain == 0 {
		opts.Retain = 256
	}
	if opts.ResendEvery == 0 {
		opts.ResendEvery = 25 * time.Millisecond
	}
	if opts.Clock == nil {
		opts.Clock = network.WallClock()
	}
	if opts.Acks > len(opts.Followers) {
		opts.Acks = len(opts.Followers)
	}
	s := &Store{
		inner:      inner,
		shard:      opts.Shard,
		followers:  append([]string(nil), opts.Followers...),
		need:       opts.Acks,
		retain:     opts.Retain,
		every:      opts.ResendEvery,
		clock:      opts.Clock,
		counters:   opts.Counters,
		epoch:      epoch,
		lsn:        lsn,
		acked:      make(map[string]uint64),
		ackedEpoch: make(map[string]uint64),
		stop:       make(chan struct{}),
	}
	s.wg.Add(1)
	go s.resendLoop()
	return s, nil
}

// Shard returns the owning node's name.
func (s *Store) Shard() string { return s.shard }

// Followers returns the configured follower set.
func (s *Store) Followers() []string { return append([]string(nil), s.followers...) }

// Bind connects the primary to its transport. Until bound (and while
// unbound after a simulated crash), commits still apply locally and are
// retained for the resend loop to ship once a transport returns.
func (s *Store) Bind(send SendFunc) {
	s.mu.Lock()
	s.send = send
	s.mu.Unlock()
}

// Unbind detaches the transport and releases every Apply blocked on a
// quorum wait. Callers must detach the node from the network *first*:
// a released Apply's caller may still run briefly, and the network being
// down is what guarantees it cannot externalize an under-replicated
// commit (the commit itself is durable locally and ships on recovery).
func (s *Store) Unbind() {
	s.mu.Lock()
	s.send = nil
	s.releaseWaitersLocked()
	s.mu.Unlock()
}

func (s *Store) releaseWaitersLocked() {
	for _, w := range s.waiters {
		close(w.ch)
	}
	s.waiters = nil
}

// Get hides the replication meta record and delegates to the inner
// engine.
func (s *Store) Get(key string) ([]byte, bool, error) {
	if key == metaKey {
		return nil, false, nil
	}
	return s.inner.Get(key)
}

// Keys hides the replication meta record and delegates to the inner
// engine.
func (s *Store) Keys(prefix string) ([]string, error) {
	keys, err := s.inner.Keys(prefix)
	if err != nil {
		return nil, err
	}
	out := keys[:0]
	for _, k := range keys {
		if k != metaKey {
			out = append(out, k)
		}
	}
	return out, nil
}

// Apply commits the batch locally, ships it to the followers, and in
// quorum mode blocks until enough copies acknowledged. Concurrent
// appliers are group-committed.
func (s *Store) Apply(batch ...stable.Op) error {
	req := &applyReq{ops: batch, done: make(chan error, 1)}
	s.gmu.Lock()
	s.queue = append(s.queue, req)
	if s.leading {
		s.gmu.Unlock()
		return <-req.done
	}
	s.leading = true
	for len(s.queue) > 0 {
		group := s.queue
		s.queue = nil
		s.gmu.Unlock()
		err := s.commitGroup(group)
		for _, r := range group {
			r.done <- err
		}
		s.gmu.Lock()
	}
	s.leading = false
	s.gmu.Unlock()
	return <-req.done
}

func (s *Store) commitGroup(group []*applyReq) error {
	var ops []stable.Op
	if len(group) == 1 {
		ops = group[0].ops
	} else {
		for _, r := range group {
			ops = append(ops, r.ops...)
		}
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return stable.ErrClosed
	}
	epoch, next := s.epoch, s.lsn+1
	full := make([]stable.Op, 0, len(ops)+1)
	full = append(full, ops...)
	full = append(full, metaOp(epoch, next))
	if err := s.inner.Apply(full...); err != nil {
		s.mu.Unlock()
		return err
	}
	s.lsn = next
	frame := EncodeRecord(Record{Shard: s.shard, Epoch: epoch, LSN: next, Ops: ops})
	if s.tailStart == 0 {
		s.tailStart = next
	}
	s.tail = append(s.tail, frame)
	if len(s.tail) > s.retain {
		drop := len(s.tail) - s.retain
		s.tail = append([][]byte(nil), s.tail[drop:]...)
		s.tailStart += uint64(drop)
	}
	send := s.send
	s.mu.Unlock()

	if send != nil {
		if s.counters != nil && len(s.followers) > 0 {
			s.counters.IncReplBatch()
		}
		for _, f := range s.followers {
			send(Endpoint(f), KindAppend, frame)
		}
	}
	if s.need > 0 {
		s.waitAcked(next)
	}
	return nil
}

// waitAcked blocks until need followers acknowledged lsn in the current
// epoch, or until the store is unbound/closed (see Unbind for why the
// release is safe).
func (s *Store) waitAcked(lsn uint64) {
	s.mu.Lock()
	if s.closed || s.send == nil || s.countAckedLocked(lsn) >= s.need {
		s.mu.Unlock()
		return
	}
	ch := make(chan struct{})
	s.waiters = append(s.waiters, waiter{lsn: lsn, ch: ch})
	s.mu.Unlock()
	<-ch
}

func (s *Store) countAckedLocked(lsn uint64) int {
	n := 0
	for _, f := range s.followers {
		if s.ackedEpoch[f] == s.epoch && s.acked[f] >= lsn {
			n++
		}
	}
	return n
}

// HandleAck records a follower's cumulative durable position and wakes
// the Apply calls it satisfies. Acks are follower-authoritative: a
// restarted follower may legitimately report a *lower* position than
// before, which re-arms the resend loop.
func (s *Store) HandleAck(follower string, ack Ack) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ack.Shard != s.shard {
		return
	}
	if s.counters != nil {
		s.counters.IncReplAck()
	}
	s.acked[follower] = ack.LSN
	s.ackedEpoch[follower] = ack.Epoch
	if len(s.waiters) == 0 {
		return
	}
	keep := s.waiters[:0]
	for _, w := range s.waiters {
		if s.countAckedLocked(w.lsn) >= s.need {
			close(w.ch)
			continue
		}
		keep = append(keep, w)
	}
	s.waiters = keep
}

// ResetFollower forgets a follower's acknowledged position. The cluster
// calls it when the follower's machine is rebuilt from scratch (a
// permanent kill): the old ack state describes a disk that no longer
// exists, and keeping it would both stop the resend loop from ever
// re-replicating onto the reborn node and let a later failover promote
// a copy the primary wrongly believes is caught up.
func (s *Store) ResetFollower(name string) {
	s.mu.Lock()
	delete(s.acked, name)
	delete(s.ackedEpoch, name)
	s.mu.Unlock()
}

// ReplStatus implements the stable.Replicated capability.
func (s *Store) ReplStatus() stable.ReplStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := stable.ReplStatus{Epoch: s.epoch, LSN: s.lsn, Acked: make(map[string]uint64, len(s.followers))}
	for _, f := range s.followers {
		if s.ackedEpoch[f] == s.epoch {
			st.Acked[f] = s.acked[f]
		} else {
			st.Acked[f] = 0
		}
	}
	return st
}

// Sync runs one synchronous lag-repair pass (what the resend loop does
// on its cadence): every follower behind the log receives either the
// missing tail records or, past the retained tail or across an epoch
// change, a full snapshot.
func (s *Store) Sync() {
	type out struct {
		to, kind string
		payload  []byte
	}
	s.mu.Lock()
	send := s.send
	if send == nil || s.closed {
		s.mu.Unlock()
		return
	}
	var outs []out
	var snap []byte // built at most once per pass
	for _, f := range s.followers {
		aEpoch, a := s.ackedEpoch[f], s.acked[f]
		if aEpoch == s.epoch && a >= s.lsn {
			continue
		}
		if aEpoch == s.epoch && s.tailStart != 0 && a+1 >= s.tailStart {
			const burst = 64
			for l := a + 1; l <= s.lsn && l < a+1+burst; l++ {
				outs = append(outs, out{Endpoint(f), KindAppend, s.tail[l-s.tailStart]})
			}
			continue
		}
		if snap == nil {
			var err error
			if snap, err = s.encodeSnapshotLocked(); err != nil {
				continue
			}
		}
		if s.counters != nil {
			s.counters.IncReplSnapshot()
		}
		outs = append(outs, out{Endpoint(f), KindSnapshot, snap})
	}
	s.mu.Unlock()
	for _, o := range outs {
		send(o.to, o.kind, o.payload)
	}
}

// encodeSnapshotLocked dumps the full inner state at the current
// position. The caller holds s.mu, which also serializes commits, so the
// dump is consistent with (epoch, lsn).
func (s *Store) encodeSnapshotLocked() ([]byte, error) {
	keys, err := s.inner.Keys("")
	if err != nil {
		return nil, err
	}
	sort.Strings(keys)
	snap := Snapshot{Shard: s.shard, Epoch: s.epoch, LSN: s.lsn}
	for _, k := range keys {
		if k == metaKey {
			continue
		}
		v, ok, err := s.inner.Get(k)
		if err != nil {
			return nil, err
		}
		if ok {
			snap.Ops = append(snap.Ops, stable.Put(k, v))
		}
	}
	return EncodeSnapshot(snap), nil
}

func (s *Store) resendLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stop:
			return
		case <-s.clock.After(s.every):
			s.Sync()
		}
	}
}

// Close stops replication, releases blocked Apply calls and closes the
// inner engine if it holds a handle.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.send = nil
	s.releaseWaitersLocked()
	s.mu.Unlock()
	s.stopOnce.Do(func() { close(s.stop) })
	s.wg.Wait()
	return stable.Close(s.inner)
}
