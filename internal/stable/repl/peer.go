package repl

import "fmt"

// Peer ties one node's replication plane together: its primary store (if
// the node owns a replicated shard) and its follower host, behind one
// replication endpoint. The owner pumps inbound frames into Deliver;
// outbound frames go through the SendFunc.
type Peer struct {
	node    string
	primary *Store
	host    *Host
	send    SendFunc
}

// NewPeer wires primary (may be nil) and host (may be nil) to a
// transport and returns the frame dispatcher.
func NewPeer(node string, primary *Store, host *Host, send SendFunc) *Peer {
	p := &Peer{node: node, primary: primary, host: host, send: send}
	if primary != nil {
		primary.Bind(send)
	}
	return p
}

// Announce reports the durable position of every replica this node holds
// to the shard's primary. Called once after (re)boot so primaries learn
// immediately where a restarted — or wiped — follower stands instead of
// discovering it on the next append.
func (p *Peer) Announce() {
	if p.host == nil {
		return
	}
	for _, shard := range p.host.Shards() {
		if ack, ok := p.host.Position(shard); ok {
			p.send(Endpoint(shard), KindAck, EncodeAck(ack))
		}
	}
}

// Deliver dispatches one inbound replication frame. from is the sending
// replication endpoint; append/snapshot frames are acknowledged back to
// it with the replica's resulting position.
func (p *Peer) Deliver(from, kind string, payload []byte) error {
	switch kind {
	case KindAppend:
		rec, err := DecodeRecord(payload)
		if err != nil {
			return err
		}
		if p.host == nil {
			return fmt.Errorf("repl: peer %s hosts no replicas", p.node)
		}
		ack, err := p.host.ApplyRecord(rec)
		if err != nil {
			return err
		}
		p.send(from, KindAck, EncodeAck(ack))
		return nil
	case KindSnapshot:
		snap, err := DecodeSnapshot(payload)
		if err != nil {
			return err
		}
		if p.host == nil {
			return fmt.Errorf("repl: peer %s hosts no replicas", p.node)
		}
		ack, err := p.host.ApplySnapshot(snap)
		if err != nil {
			return err
		}
		p.send(from, KindAck, EncodeAck(ack))
		return nil
	case KindAck:
		ack, err := DecodeAck(payload)
		if err != nil {
			return err
		}
		if p.primary != nil {
			p.primary.HandleAck(NodeOf(from), ack)
		}
		return nil
	default:
		return fmt.Errorf("repl: unknown frame kind %q", kind)
	}
}

// Stop detaches the primary from the transport (releasing quorum waits);
// see Store.Unbind for the safety argument.
func (p *Peer) Stop() {
	if p.primary != nil {
		p.primary.Unbind()
	}
}
