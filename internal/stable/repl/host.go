package repl

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/stable"
)

// Host is the follower side of replication on one node: the set of
// replica stores this node holds for other nodes' shards. Records apply
// in LSN order; anything else — duplicates, gaps, stale epochs — is
// answered with the replica's current position so the primary's resend
// loop can repair the stream (or ship a snapshot).
type Host struct {
	self string
	// factory opens a fresh, empty replica store for a shard this node
	// has no replica of yet (first contact, or the previous replica was
	// promoted away or destroyed). May be nil: unknown shards are then
	// rejected.
	factory func(shard string) (stable.Store, error)

	mu       sync.Mutex
	replicas map[string]*replica
}

type replica struct {
	store stable.Store
	epoch uint64
	lsn   uint64
}

// NewHost creates an empty follower host for node self.
func NewHost(self string, factory func(shard string) (stable.Store, error)) *Host {
	return &Host{self: self, factory: factory, replicas: make(map[string]*replica)}
}

// Attach registers an existing replica store for shard, resuming the
// position persisted in it.
func (h *Host) Attach(shard string, store stable.Store) error {
	epoch, lsn, err := ReadMeta(store)
	if err != nil {
		return err
	}
	h.mu.Lock()
	h.replicas[shard] = &replica{store: store, epoch: epoch, lsn: lsn}
	h.mu.Unlock()
	return nil
}

// Detach removes and returns the replica store of shard, if any. The
// cluster uses it at promotion: the replica stops following and becomes
// the shard's authoritative store.
func (h *Host) Detach(shard string) (stable.Store, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	r, ok := h.replicas[shard]
	if !ok {
		return nil, false
	}
	delete(h.replicas, shard)
	return r.store, true
}

// Shards returns the shards this host holds replicas of, sorted.
func (h *Host) Shards() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, 0, len(h.replicas))
	for s := range h.replicas {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Position returns the durable position of the replica of shard.
func (h *Host) Position(shard string) (Ack, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	r, ok := h.replicas[shard]
	if !ok {
		return Ack{}, false
	}
	return Ack{Shard: shard, Epoch: r.epoch, LSN: r.lsn}, true
}

func (h *Host) replicaLocked(shard string) (*replica, error) {
	if r, ok := h.replicas[shard]; ok {
		return r, nil
	}
	if h.factory == nil {
		return nil, fmt.Errorf("repl: host %s has no replica of shard %s", h.self, shard)
	}
	store, err := h.factory(shard)
	if err != nil {
		return nil, err
	}
	epoch, lsn, err := ReadMeta(store)
	if err != nil {
		return nil, err
	}
	r := &replica{store: store, epoch: epoch, lsn: lsn}
	h.replicas[shard] = r
	return r, nil
}

// ApplyRecord applies one streamed record if it continues the replica's
// log — same or newer epoch, exactly the next LSN — and returns the
// replica's durable position either way, which the peer acks back to the
// primary.
func (h *Host) ApplyRecord(rec Record) (Ack, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	r, err := h.replicaLocked(rec.Shard)
	if err != nil {
		return Ack{}, err
	}
	if rec.Epoch >= r.epoch && rec.LSN == r.lsn+1 {
		full := make([]stable.Op, 0, len(rec.Ops)+1)
		full = append(full, rec.Ops...)
		full = append(full, metaOp(rec.Epoch, rec.LSN))
		if err := r.store.Apply(full...); err != nil {
			return Ack{}, err
		}
		r.epoch, r.lsn = rec.Epoch, rec.LSN
	}
	return Ack{Shard: rec.Shard, Epoch: r.epoch, LSN: r.lsn}, nil
}

// ApplySnapshot installs a full state manifest, replacing the replica's
// contents wholesale in one atomic batch, unless the replica is already
// at or past the manifest's position.
func (h *Host) ApplySnapshot(snap Snapshot) (Ack, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	r, err := h.replicaLocked(snap.Shard)
	if err != nil {
		return Ack{}, err
	}
	ahead := snap.Epoch < r.epoch || (snap.Epoch == r.epoch && snap.LSN <= r.lsn)
	if !ahead {
		keys, err := r.store.Keys("")
		if err != nil {
			return Ack{}, err
		}
		batch := make([]stable.Op, 0, len(keys)+len(snap.Ops)+1)
		for _, k := range keys {
			batch = append(batch, stable.Del(k))
		}
		batch = append(batch, snap.Ops...)
		batch = append(batch, metaOp(snap.Epoch, snap.LSN))
		if err := r.store.Apply(batch...); err != nil {
			return Ack{}, err
		}
		r.epoch, r.lsn = snap.Epoch, snap.LSN
	}
	return Ack{Shard: snap.Shard, Epoch: r.epoch, LSN: r.lsn}, nil
}
