package repl_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/stable"
	"repro/internal/stable/repl"
)

// testNet routes frames between peers by replication endpoint name,
// synchronously, with an optional drop hook.
type testNet struct {
	mu    sync.Mutex
	peers map[string]*repl.Peer
	drop  func(to, kind string) bool
}

func newTestNet() *testNet {
	return &testNet{peers: make(map[string]*repl.Peer)}
}

func (tn *testNet) register(node string, p *repl.Peer) {
	tn.mu.Lock()
	tn.peers[repl.Endpoint(node)] = p
	tn.mu.Unlock()
}

func (tn *testNet) sender(node string) repl.SendFunc {
	from := repl.Endpoint(node)
	return func(to, kind string, payload []byte) {
		tn.mu.Lock()
		p := tn.peers[to]
		drop := tn.drop
		tn.mu.Unlock()
		if p == nil || (drop != nil && drop(to, kind)) {
			return
		}
		_ = p.Deliver(from, kind, payload)
	}
}

func (tn *testNet) setDrop(f func(to, kind string) bool) {
	tn.mu.Lock()
	tn.drop = f
	tn.mu.Unlock()
}

// follower bundles one follower node's host, its replica store of the
// shard under test, and its peer.
type follower struct {
	name  string
	store stable.Store
	host  *repl.Host
	peer  *repl.Peer
}

func newFollower(t *testing.T, tn *testNet, name, shard string) *follower {
	t.Helper()
	f := &follower{name: name, store: stable.NewMemStore(nil)}
	f.host = repl.NewHost(name, nil)
	if err := f.host.Attach(shard, f.store); err != nil {
		t.Fatal(err)
	}
	f.peer = repl.NewPeer(name, nil, f.host, tn.sender(name))
	tn.register(name, f.peer)
	return f
}

// newPrimary wraps a fresh mem store as the primary of shard "p".
func newPrimary(t *testing.T, tn *testNet, acks int, followers ...string) (*repl.Store, stable.Store) {
	t.Helper()
	inner := stable.NewMemStore(nil)
	s, err := repl.Wrap(inner, repl.Options{
		Shard:       "p",
		Followers:   followers,
		Acks:        acks,
		ResendEvery: time.Hour, // only explicit Sync() in tests
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	tn.register("p", repl.NewPeer("p", s, nil, tn.sender("p")))
	return s, inner
}

// dump flattens a store (including the hidden meta record) for
// byte-identical comparison.
func dump(t *testing.T, s stable.Reader) string {
	t.Helper()
	keys, err := s.Keys("")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, k := range keys {
		v, ok, err := s.Get(k)
		if err != nil || !ok {
			t.Fatalf("get %q: ok=%v err=%v", k, ok, err)
		}
		fmt.Fprintf(&buf, "%q=%q\n", k, v)
	}
	return buf.String()
}

func TestFrameRoundtrip(t *testing.T) {
	rec := repl.Record{Shard: "n1", Epoch: 3, LSN: 42, Ops: []stable.Op{
		stable.Put("a", []byte("x")),
		stable.Del("b"),
		stable.Put("c", nil), // nil-valued put must survive as a put... see below
	}}
	// A nil-valued Put is indistinguishable from a Del on the wire (the
	// codec reserves length 0 for deletes); normalize the expectation.
	rec.Ops[2] = stable.Del("c")
	got, err := repl.DecodeRecord(repl.EncodeRecord(rec))
	if err != nil {
		t.Fatal(err)
	}
	if got.Shard != rec.Shard || got.Epoch != rec.Epoch || got.LSN != rec.LSN || len(got.Ops) != 3 {
		t.Fatalf("record roundtrip: got %+v", got)
	}
	if got.Ops[0].Key != "a" || string(got.Ops[0].Value) != "x" || got.Ops[1].Value != nil {
		t.Fatalf("ops roundtrip: got %+v", got.Ops)
	}

	ack := repl.Ack{Shard: "n1", Epoch: 1, LSN: 7}
	if got, err := repl.DecodeAck(repl.EncodeAck(ack)); err != nil || got != ack {
		t.Fatalf("ack roundtrip: %+v, %v", got, err)
	}

	// Corruption must be rejected, not misparsed.
	frame := repl.EncodeRecord(rec)
	frame[len(frame)-1] ^= 0xff
	if _, err := repl.DecodeRecord(frame); err == nil {
		t.Fatal("corrupted frame decoded without error")
	}
	if _, err := repl.DecodeAck(repl.EncodeAck(ack)[:5]); err == nil {
		t.Fatal("truncated frame decoded without error")
	}
}

func TestReplicateBasicAndMetaHidden(t *testing.T) {
	tn := newTestNet()
	s, inner := newPrimary(t, tn, 2, "f1", "f2")
	f1 := newFollower(t, tn, "f1", "p")
	f2 := newFollower(t, tn, "f2", "p")

	if err := s.Apply(stable.Put("k1", []byte("v1"))); err != nil {
		t.Fatal(err)
	}
	if err := s.Apply(stable.Put("k2", []byte("v2")), stable.Del("k1")); err != nil {
		t.Fatal(err)
	}

	// Quorum acks mean both followers hold both records already.
	for _, f := range []*follower{f1, f2} {
		if d := dump(t, f.store); d != dump(t, inner) {
			t.Errorf("follower %s diverged:\n%s\nvs primary:\n%s", f.name, d, dump(t, inner))
		}
	}

	// The wrapper hides the meta record from readers...
	if _, ok, _ := s.Get("\x00repl"); ok {
		t.Error("meta record visible through Get")
	}
	keys, err := s.Keys("")
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if k[0] == 0 {
			t.Errorf("meta record visible through Keys: %q", k)
		}
	}
	// ...but persists the position in the engine.
	if epoch, lsn, _ := repl.ReadMeta(inner); epoch != 0 || lsn != 2 {
		t.Errorf("meta = (%d, %d), want (0, 2)", epoch, lsn)
	}
	st := s.ReplStatus()
	if st.LSN != 2 || st.Acked["f1"] != 2 || st.Acked["f2"] != 2 {
		t.Errorf("status = %+v", st)
	}
}

func TestQuorumBlocksUntilAck(t *testing.T) {
	tn := newTestNet()
	s, _ := newPrimary(t, tn, 1, "f1")
	newFollower(t, tn, "f1", "p")

	tn.setDrop(func(to, kind string) bool { return kind == repl.KindAppend })
	done := make(chan error, 1)
	go func() { done <- s.Apply(stable.Put("k", []byte("v"))) }()
	select {
	case err := <-done:
		t.Fatalf("Apply returned without a follower ack (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	tn.setDrop(nil)
	s.Sync() // repair the dropped append
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Apply still blocked after the follower caught up")
	}
}

func TestUnbindReleasesQuorumWait(t *testing.T) {
	tn := newTestNet()
	s, _ := newPrimary(t, tn, 1, "f1")
	newFollower(t, tn, "f1", "p")
	tn.setDrop(func(to, kind string) bool { return kind == repl.KindAppend })
	done := make(chan error, 1)
	go func() { done <- s.Apply(stable.Put("k", []byte("v"))) }()
	time.Sleep(20 * time.Millisecond)
	s.Unbind()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err) // the commit is locally durable; the wait just ends
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Unbind did not release the quorum wait")
	}
}

func TestCatchUpTailAndSnapshot(t *testing.T) {
	tn := newTestNet()
	inner := stable.NewMemStore(nil)
	s, err := repl.Wrap(inner, repl.Options{
		Shard: "p", Followers: []string{"f1"}, Acks: 0,
		Retain: 4, ResendEvery: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	tn.register("p", repl.NewPeer("p", s, nil, tn.sender("p")))
	f1 := newFollower(t, tn, "f1", "p")

	// Drop everything while committing 3 records: within the retained
	// tail, Sync repairs record by record.
	tn.setDrop(func(to, kind string) bool { return true })
	for i := 0; i < 3; i++ {
		if err := s.Apply(stable.Put(fmt.Sprintf("k%d", i), []byte("v"))); err != nil {
			t.Fatal(err)
		}
	}
	tn.setDrop(nil)
	s.Sync()
	if d, want := dump(t, f1.store), dump(t, inner); d != want {
		t.Fatalf("tail catch-up diverged:\n%s\nvs\n%s", d, want)
	}

	// Now fall behind beyond the tail: catch-up must go through a
	// snapshot manifest.
	tn.setDrop(func(to, kind string) bool { return true })
	for i := 0; i < 10; i++ {
		if err := s.Apply(stable.Put(fmt.Sprintf("k%d", i), []byte("v2")), stable.Del("k0")); err != nil {
			t.Fatal(err)
		}
	}
	tn.setDrop(func(to, kind string) bool { return kind == repl.KindAppend })
	s.Sync() // only the snapshot gets through
	if d, want := dump(t, f1.store), dump(t, inner); d != want {
		t.Fatalf("snapshot catch-up diverged:\n%s\nvs\n%s", d, want)
	}
}

func TestPromotionEpochFencesOldPrimary(t *testing.T) {
	tn := newTestNet()
	s, _ := newPrimary(t, tn, 2, "f1", "f2")
	f1 := newFollower(t, tn, "f1", "p")
	f2 := newFollower(t, tn, "f2", "p")
	if err := s.Apply(stable.Put("k", []byte("v1"))); err != nil {
		t.Fatal(err)
	}

	// "p" dies; f1's replica is promoted to authoritative.
	s.Unbind()
	promotedStore, ok := f1.host.Detach("p")
	if !ok {
		t.Fatal("f1 holds no replica of p")
	}
	promoted, err := repl.Wrap(promotedStore, repl.Options{
		Shard: "p", Followers: []string{"f2"}, Acks: 1,
		ResendEvery: time.Hour, Promote: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = promoted.Close() })
	tn.register("p", repl.NewPeer("p", promoted, nil, tn.sender("p")))

	if err := promoted.Apply(stable.Put("k", []byte("v2"))); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := f2.store.Get("k"); string(v) != "v2" {
		t.Fatalf("f2 did not follow the promoted primary: k=%q", v)
	}

	// A record from the deposed primary's epoch must be rejected by the
	// follower that already advanced.
	stale := repl.EncodeRecord(repl.Record{Shard: "p", Epoch: 0, LSN: 2, Ops: []stable.Op{stable.Put("k", []byte("stale"))}})
	if _, err := f2.host.ApplyRecord(mustDecodeRecord(t, stale)); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := f2.store.Get("k"); string(v) != "v2" {
		t.Fatalf("stale-epoch record overwrote promoted state: k=%q", v)
	}
	if st := promoted.ReplStatus(); st.Epoch != 1 {
		t.Fatalf("promoted epoch = %d, want 1", st.Epoch)
	}
}

func mustDecodeRecord(t *testing.T, frame []byte) repl.Record {
	t.Helper()
	rec, err := repl.DecodeRecord(frame)
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

// TestDivergenceProperty is the randomized convergence property: under
// seeded random message drops, follower reboots, follower wipes and
// primary restarts, every follower's replica is byte-identical to the
// primary's store at quiescence.
func TestDivergenceProperty(t *testing.T) {
	const (
		seeds     = 10
		rounds    = 120
		followerN = 3
	)
	for seed := int64(0); seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			tn := newTestNet()
			inner := stable.NewMemStore(nil)
			names := make([]string, followerN)
			for i := range names {
				names[i] = fmt.Sprintf("f%d", i)
			}
			wrap := func(st stable.Store, promote bool) *repl.Store {
				s, err := repl.Wrap(st, repl.Options{
					Shard: "p", Followers: names, Acks: 0,
					Retain: 4, ResendEvery: time.Hour, Promote: promote,
				})
				if err != nil {
					t.Fatal(err)
				}
				tn.register("p", repl.NewPeer("p", s, nil, tn.sender("p")))
				return s
			}
			s := wrap(inner, false)
			followers := make([]*follower, followerN)
			for i, n := range names {
				followers[i] = newFollower(t, tn, n, "p")
			}

			// Random drops throughout the active phase.
			tn.setDrop(func(to, kind string) bool { return rng.Intn(100) < 30 })
			keys := []string{"a", "b", "c", "d", "e", "f"}
			for r := 0; r < rounds; r++ {
				switch rng.Intn(10) {
				case 0: // follower reboot: fresh host resumed from the persisted position
					i := rng.Intn(followerN)
					f := followers[i]
					f.host = repl.NewHost(f.name, nil)
					if err := f.host.Attach("p", f.store); err != nil {
						t.Fatal(err)
					}
					f.peer = repl.NewPeer(f.name, nil, f.host, tn.sender(f.name))
					tn.register(f.name, f.peer)
				case 1: // follower wipe: permanent loss, empty store
					i := rng.Intn(followerN)
					f := followers[i]
					f.store = stable.NewMemStore(nil)
					f.host = repl.NewHost(f.name, nil)
					if err := f.host.Attach("p", f.store); err != nil {
						t.Fatal(err)
					}
					f.peer = repl.NewPeer(f.name, nil, f.host, tn.sender(f.name))
					tn.register(f.name, f.peer)
				case 2: // primary restart: close and re-wrap the same engine
					if err := s.Close(); err != nil {
						t.Fatal(err)
					}
					s = wrap(inner, false)
				default: // a random batch
					n := 1 + rng.Intn(3)
					batch := make([]stable.Op, 0, n)
					for j := 0; j < n; j++ {
						k := keys[rng.Intn(len(keys))]
						if rng.Intn(4) == 0 {
							batch = append(batch, stable.Del(k))
						} else {
							batch = append(batch, stable.Put(k, []byte(fmt.Sprintf("r%d.%d", r, j))))
						}
					}
					if err := s.Apply(batch...); err != nil {
						t.Fatal(err)
					}
				}
			}

			// Quiescence: lossless network, repair until converged.
			tn.setDrop(nil)
			want := dump(t, inner)
			deadline := time.Now().Add(10 * time.Second)
			for {
				s.Sync()
				st := s.ReplStatus()
				converged := true
				for _, f := range names {
					if st.Acked[f] < st.LSN {
						converged = false
					}
				}
				if converged {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("followers never converged: %+v", st)
				}
			}
			for _, f := range followers {
				if d := dump(t, f.store); d != want {
					t.Errorf("seed %d: follower %s diverged:\n%s\nvs primary:\n%s", seed, f.name, d, want)
				}
			}
			_ = s.Close()
		})
	}
}
