package stable

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestPropertyQueueLinearization: any random interleaving of direct
// enqueues and prepare/commit/abort staged insertions yields exactly the
// committed entries, in reservation order, with no duplicates or
// resurrections.
func TestPropertyQueueLinearization(t *testing.T) {
	err := quick.Check(func(seed int64, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw%24) + 1
		store := NewMemStore(nil)
		q := NewQueue(store, "q/")

		type staged struct {
			txn string
			id  string
		}
		var open []staged     // prepared, undecided
		var expected []string // ids in reservation order, "" = never visible

		for i := 0; i < n; i++ {
			switch r.Intn(4) {
			case 0: // direct enqueue
				id := fmt.Sprintf("direct%d", i)
				if err := q.Enqueue(id, []byte(id)); err != nil {
					return false
				}
				expected = append(expected, id)
			case 1: // prepare
				s := staged{txn: fmt.Sprintf("t%d", i), id: fmt.Sprintf("staged%d", i)}
				if err := q.Prepare(s.txn, s.id, []byte(s.id)); err != nil {
					return false
				}
				open = append(open, s)
				expected = append(expected, "pending:"+s.txn)
			case 2: // commit one open staging
				if len(open) == 0 {
					continue
				}
				k := r.Intn(len(open))
				s := open[k]
				open = append(open[:k], open[k+1:]...)
				if err := q.CommitStaged(s.txn); err != nil {
					return false
				}
				for j, e := range expected {
					if e == "pending:"+s.txn {
						expected[j] = s.id
					}
				}
			default: // abort one open staging
				if len(open) == 0 {
					continue
				}
				k := r.Intn(len(open))
				s := open[k]
				open = append(open[:k], open[k+1:]...)
				if err := q.AbortStaged(s.txn); err != nil {
					return false
				}
				for j, e := range expected {
					if e == "pending:"+s.txn {
						expected[j] = ""
					}
				}
			}
		}
		// Abort everything still open so visibility is final.
		for _, s := range open {
			if err := q.AbortStaged(s.txn); err != nil {
				return false
			}
			for j, e := range expected {
				if e == "pending:"+s.txn {
					expected[j] = ""
				}
			}
		}
		// Drain and compare.
		var got []string
		for {
			e, err := q.Peek()
			if err != nil {
				return false
			}
			if e == nil {
				break
			}
			got = append(got, e.ID)
			if err := store.Apply(q.RemoveOp(e)); err != nil {
				return false
			}
		}
		var want []string
		for _, e := range expected {
			if e != "" {
				want = append(want, e)
			}
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 150})
	if err != nil {
		t.Error(err)
	}
}

// TestPropertyStoreBatchAtomicity: applying a batch is equivalent to
// applying its deduplicated last-writer-wins projection key by key.
func TestPropertyStoreBatchAtomicity(t *testing.T) {
	err := quick.Check(func(seed int64, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw%16) + 1
		batch := make([]Op, n)
		model := map[string]string{}
		for i := range batch {
			key := fmt.Sprintf("k%d", r.Intn(5))
			if r.Intn(3) == 0 {
				batch[i] = Del(key)
				model[key] = ""
			} else {
				val := fmt.Sprintf("v%d", i)
				batch[i] = Put(key, []byte(val))
				model[key] = val
			}
		}
		store := NewMemStore(nil)
		if err := store.Apply(batch...); err != nil {
			return false
		}
		for key, want := range model {
			v, ok, err := store.Get(key)
			if err != nil {
				return false
			}
			if want == "" {
				if ok {
					return false
				}
				continue
			}
			if !ok || string(v) != want {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}
