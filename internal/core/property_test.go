package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomSROSequence drives a random sequence of SRO states: each step
// mutates/adds/deletes random keys.
func randomSROSequence(r *rand.Rand, steps int) []map[string][]byte {
	state := make(map[string][]byte)
	out := make([]map[string][]byte, 0, steps)
	for i := 0; i < steps; i++ {
		// Mutate 0..4 keys.
		for m := r.Intn(5); m > 0; m-- {
			key := fmt.Sprintf("k%d", r.Intn(8))
			switch r.Intn(3) {
			case 0:
				delete(state, key)
			default:
				val := make([]byte, 1+r.Intn(16))
				r.Read(val)
				state[key] = val
			}
		}
		snap := make(map[string][]byte, len(state))
		for k, v := range state {
			c := make([]byte, len(v))
			copy(c, v)
			snap[k] = c
		}
		out = append(out, snap)
	}
	return out
}

// TestPropertyTransitionEqualsState: for any random savepoint sequence,
// reconstructing any savepoint yields identical images under state and
// transition logging (§4.2: the two logging modes are interchangeable).
func TestPropertyTransitionEqualsState(t *testing.T) {
	err := quick.Check(func(seed int64, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw%6) + 2
		states := randomSROSequence(r, n)
		var stateLog, transLog Log
		for i, s := range states {
			id := fmt.Sprintf("sp%d", i)
			if err := stateLog.AppendSavepoint(id, s, StateLogging, true); err != nil {
				return false
			}
			if err := transLog.AppendSavepoint(id, s, TransitionLogging, true); err != nil {
				return false
			}
		}
		for i := range states {
			id := fmt.Sprintf("sp%d", i)
			a, err := stateLog.ReconstructSRO(id)
			if err != nil {
				return false
			}
			b, err := transLog.ReconstructSRO(id)
			if err != nil {
				return false
			}
			if !imagesEqual(a, b) || !imagesEqual(a, states[i]) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 120})
	if err != nil {
		t.Error(err)
	}
}

// TestPropertyRemovalPreservesReconstruction: removing any non-referenced
// savepoint never changes the reconstruction of the remaining ones, in
// either logging mode (the §4.4.2 "non-trivial task").
func TestPropertyRemovalPreservesReconstruction(t *testing.T) {
	err := quick.Check(func(seed int64, nRaw, victimRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw%5) + 3
		victim := int(victimRaw) % n
		states := randomSROSequence(r, n)
		for _, mode := range []LogMode{StateLogging, TransitionLogging} {
			var l Log
			for i, s := range states {
				if err := l.AppendSavepoint(fmt.Sprintf("sp%d", i), s, mode, true); err != nil {
					return false
				}
			}
			if err := l.RemoveSavepoint(fmt.Sprintf("sp%d", victim)); err != nil {
				return false
			}
			for i := range states {
				if i == victim {
					continue
				}
				got, err := l.ReconstructSRO(fmt.Sprintf("sp%d", i))
				if err != nil || !imagesEqual(got, states[i]) {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 120})
	if err != nil {
		t.Error(err)
	}
}

// TestPropertyAppendPopRoundTrip: the log is a faithful stack — popping
// returns exactly the appended entries in reverse, and the encoded form
// round-trips at every prefix.
func TestPropertyAppendPopRoundTrip(t *testing.T) {
	err := quick.Check(func(seed int64, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw % 32)
		var l Log
		var kinds []string
		for i := 0; i < n; i++ {
			switch r.Intn(3) {
			case 0:
				l.Append(&BeginStepEntry{Node: "n", Seq: i})
				kinds = append(kinds, "BOS")
			case 1:
				l.Append(&OpEntry{Kind: OpAgent, Op: "op", Params: NewParams()})
				kinds = append(kinds, "OE")
			default:
				l.Append(&EndStepEntry{Node: "n", Seq: i})
				kinds = append(kinds, "EOS")
			}
		}
		for i := n - 1; i >= 0; i-- {
			e, err := l.Pop()
			if err != nil || EntryName(e) != kinds[i] {
				return false
			}
		}
		_, err := l.Pop()
		return err != nil // empty
	}, &quick.Config{MaxCount: 150})
	if err != nil {
		t.Error(err)
	}
}
