package core

import (
	"testing"

	"repro/internal/wire"
)

// rebuildSize re-measures a log's entries from scratch, the way a fresh
// Log decoded from a container would.
func rebuildSize(t *testing.T, l *Log) int {
	t.Helper()
	fresh := &Log{Entries: append([]Entry(nil), l.Entries...)}
	sz, err := fresh.EncodedSize()
	if err != nil {
		t.Fatal(err)
	}
	return sz
}

func sampleStep(l *Log, seq int) {
	l.Append(&BeginStepEntry{Node: "n", Seq: seq})
	l.Append(&OpEntry{
		Kind:   OpResource,
		Op:     "bank.untransfer",
		Params: NewParams().Set("from", "a").Set("to", "b").Set("amt", int64(seq)),
	})
	l.Append(&EndStepEntry{Node: "n", Seq: seq})
}

func TestEncodedSizeIncrementalMatchesRebuild(t *testing.T) {
	var l Log
	if err := l.AppendSavepoint("sp", map[string][]byte{"v": make([]byte, 512)}, StateLogging, true); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 8; s++ {
		sampleStep(&l, s)
		got, err := l.EncodedSize()
		if err != nil {
			t.Fatal(err)
		}
		if want := rebuildSize(t, &l); got != want {
			t.Fatalf("after step %d: incremental %d != rebuilt %d", s, got, want)
		}
	}
}

func TestEncodedSizePopSubtracts(t *testing.T) {
	var l Log
	if err := l.AppendSavepoint("sp", map[string][]byte{"v": make([]byte, 64)}, StateLogging, true); err != nil {
		t.Fatal(err)
	}
	sampleStep(&l, 0)
	sampleStep(&l, 1)
	full, err := l.EncodedSize()
	if err != nil {
		t.Fatal(err)
	}
	for l.Len() > 4 { // pop step 1's entries
		if _, err := l.Pop(); err != nil {
			t.Fatal(err)
		}
	}
	popped, err := l.EncodedSize()
	if err != nil {
		t.Fatal(err)
	}
	if popped >= full {
		t.Errorf("size after pop %d not smaller than %d", popped, full)
	}
	// After pops, memoized sizes may differ from a rebuild by the gob
	// type descriptors the popped entries carried; the drift must stay
	// within that framing overhead.
	want := rebuildSize(t, &l)
	diff := popped - want
	if diff < 0 {
		diff = -diff
	}
	if diff > 256 {
		t.Errorf("size after pop %d drifts %dB from rebuilt %d", popped, diff, want)
	}
}

func TestEncodedSizeInvalidatedByRemoveSavepoint(t *testing.T) {
	var l Log
	img := map[string][]byte{"v": make([]byte, 128)}
	if err := l.AppendSavepoint("a", img, TransitionLogging, false); err != nil {
		t.Fatal(err)
	}
	img["v"] = make([]byte, 256)
	if err := l.AppendSavepoint("b", img, TransitionLogging, false); err != nil {
		t.Fatal(err)
	}
	if _, err := l.EncodedSize(); err != nil {
		t.Fatal(err)
	}
	if err := l.RemoveSavepoint("a"); err != nil {
		t.Fatal(err)
	}
	got, err := l.EncodedSize()
	if err != nil {
		t.Fatal(err)
	}
	if want := rebuildSize(t, &l); got != want {
		t.Errorf("after RemoveSavepoint: %d != rebuilt %d (memo not invalidated?)", got, want)
	}
}

// TestEncodedSizeAllocsAmortized guards the O(appended entries) claim: a
// repeated call on an unchanged log must do no measuring work at all.
func TestEncodedSizeAllocsAmortized(t *testing.T) {
	var l Log
	for s := 0; s < 64; s++ {
		sampleStep(&l, s)
	}
	if _, err := l.EncodedSize(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := l.EncodedSize(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("EncodedSize on unchanged log allocs/op = %.1f, want 0", allocs)
	}
}

func TestParamsSetFastPathAllocs(t *testing.T) {
	p := NewParams()
	raw := []byte{1, 2, 3}
	cases := []struct {
		name  string
		set   func()
		bound float64
	}{
		// One value slice + possible map-bucket churn per Set.
		{"int64", func() { p.Set("k", int64(42)) }, 2},
		{"string", func() { p.Set("k", "hello world") }, 2},
		{"bytes", func() { p.Set("k", raw) }, 2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			c.set() // warm the map
			allocs := testing.AllocsPerRun(100, c.set)
			if allocs > c.bound {
				t.Errorf("Set allocs/op = %.1f, want <= %.0f (gob path would be ~10+)", allocs, c.bound)
			}
		})
	}
}

func TestParamsFastPathInterop(t *testing.T) {
	// A gob-encoded value (legacy format) must still decode through Get.
	p := Params{"legacy": wire.MustEncode(int64(7))}
	var n int64
	if err := p.Get("legacy", &n); err != nil || n != 7 {
		t.Errorf("legacy gob param = %d, %v", n, err)
	}
	// int set / int64 get and vice versa share the tagged encoding.
	p.Set("a", 5)
	if err := p.Get("a", &n); err != nil || n != 5 {
		t.Errorf("int->int64 = %d, %v", n, err)
	}
	var i int
	p.Set("b", int64(9))
	if err := p.Get("b", &i); err != nil || i != 9 {
		t.Errorf("int64->int = %d, %v", i, err)
	}
	// A tagged scalar read into an incompatible type errors instead of
	// silently misdecoding.
	var s string
	if err := p.Get("a", &s); err == nil {
		t.Error("int param decoded into string")
	}
	// Non-scalar values still round-trip via gob.
	type blob struct{ X, Y int }
	p.Set("blob", blob{X: 1, Y: 2})
	var bl blob
	if err := p.Get("blob", &bl); err != nil || bl.X != 1 || bl.Y != 2 {
		t.Errorf("struct param = %+v, %v", bl, err)
	}
}

// TestParamsGobRoundTripTagged: tagged params survive the container's gob
// encoding (they are opaque []byte values inside the map).
func TestParamsGobRoundTripTagged(t *testing.T) {
	in := NewParams().Set("amt", int64(-12)).Set("who", "alice").Set("raw", []byte{9, 8})
	data, err := wire.Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Params
	if err := wire.Decode(data, &out); err != nil {
		t.Fatal(err)
	}
	var amt int64
	var who string
	var raw []byte
	if err := out.Get("amt", &amt); err != nil || amt != -12 {
		t.Errorf("amt = %d, %v", amt, err)
	}
	if err := out.Get("who", &who); err != nil || who != "alice" {
		t.Errorf("who = %q, %v", who, err)
	}
	if err := out.Get("raw", &raw); err != nil || len(raw) != 2 {
		t.Errorf("raw = %v, %v", raw, err)
	}
}

func TestEncodedSizeGrowsPerEntry(t *testing.T) {
	var l Log
	prev := 0
	for s := 0; s < 16; s++ {
		sampleStep(&l, s)
		sz, err := l.EncodedSize()
		if err != nil {
			t.Fatal(err)
		}
		if sz <= prev {
			t.Fatalf("size %d at step %d did not grow from %d", sz, s, prev)
		}
		prev = sz
	}
}
