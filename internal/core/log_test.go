package core

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/wire"
)

func img(pairs ...string) map[string][]byte {
	out := make(map[string][]byte, len(pairs)/2)
	for i := 0; i+1 < len(pairs); i += 2 {
		out[pairs[i]] = []byte(pairs[i+1])
	}
	return out
}

func TestLogAppendPopLast(t *testing.T) {
	var l Log
	if l.Last() != nil {
		t.Error("Last on empty log should be nil")
	}
	if _, err := l.Pop(); !errors.Is(err, ErrEmptyLog) {
		t.Errorf("Pop on empty log: err = %v, want ErrEmptyLog", err)
	}
	bos := &BeginStepEntry{Node: "n1", Seq: 0}
	oe := &OpEntry{Kind: OpResource, Op: "x", Params: NewParams()}
	eos := &EndStepEntry{Node: "n1", Seq: 0}
	l.Append(bos)
	l.Append(oe)
	l.Append(eos)
	if l.Len() != 3 {
		t.Fatalf("Len = %d, want 3", l.Len())
	}
	if l.Last() != Entry(eos) {
		t.Error("Last != appended EOS")
	}
	got, err := l.Pop()
	if err != nil || got != Entry(eos) {
		t.Errorf("Pop = %v, %v; want EOS", got, err)
	}
	if l.Len() != 2 {
		t.Errorf("Len after pop = %d, want 2", l.Len())
	}
}

func TestLogFigure2Layout(t *testing.T) {
	// Reproduce Figure 2: ... SPk BOSn OEn,1 ... OEn,p EOSn BOSn+1 ...
	var l Log
	if err := l.AppendSavepoint("k", img("v", "1"), StateLogging, false); err != nil {
		t.Fatal(err)
	}
	l.Append(&BeginStepEntry{Node: "n", Seq: 7})
	for i := 0; i < 3; i++ {
		l.Append(&OpEntry{Kind: OpResource, Op: "op", Params: NewParams()})
	}
	l.Append(&EndStepEntry{Node: "n", Seq: 7})
	l.Append(&BeginStepEntry{Node: "m", Seq: 8})
	want := "SP(k) BOS(n/7) OE(resource:op) OE(resource:op) OE(resource:op) EOS(n/7) BOS(m/8)"
	if got := l.String(); got != want {
		t.Errorf("log layout:\n got %s\nwant %s", got, want)
	}
}

func TestSavepointStateLoggingRestore(t *testing.T) {
	var l Log
	src := img("a", "1", "b", "2")
	if err := l.AppendSavepoint("sp1", src, StateLogging, true); err != nil {
		t.Fatal(err)
	}
	// Mutating the source must not affect the stored image.
	src["a"] = []byte("mutated")
	got, err := l.ReconstructSRO("sp1")
	if err != nil {
		t.Fatal(err)
	}
	if string(got["a"]) != "1" || string(got["b"]) != "2" {
		t.Errorf("reconstructed image = %v", got)
	}
}

func TestSavepointDuplicateRejected(t *testing.T) {
	var l Log
	if err := l.AppendSavepoint("sp", img(), StateLogging, false); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendSavepoint("sp", img(), StateLogging, false); err == nil {
		t.Error("duplicate savepoint accepted")
	}
}

func TestTransitionLoggingChain(t *testing.T) {
	var l Log
	s1 := img("a", "1", "b", "2")
	s2 := img("a", "1", "b", "3", "c", "4") // b changed, c added
	s3 := img("b", "3", "c", "4")           // a deleted
	for i, s := range []map[string][]byte{s1, s2, s3} {
		id := []string{"sp1", "sp2", "sp3"}[i]
		if err := l.AppendSavepoint(id, s, TransitionLogging, true); err != nil {
			t.Fatal(err)
		}
		l.Append(&BeginStepEntry{Node: "n", Seq: i})
		l.Append(&EndStepEntry{Node: "n", Seq: i})
	}
	// First savepoint carries the base image; later ones carry deltas.
	sp1 := l.Entries[0].(*SavepointEntry)
	if sp1.Image == nil || sp1.Delta != nil {
		t.Error("sp1 should carry a base image")
	}
	sp2 := l.Entries[3].(*SavepointEntry)
	if sp2.Image != nil || sp2.Delta == nil {
		t.Error("sp2 should carry a delta")
	}
	if len(sp2.Delta.Changed) != 2 || len(sp2.Delta.Deleted) != 0 {
		t.Errorf("sp2 delta = %+v, want 2 changed 0 deleted", sp2.Delta)
	}
	sp3 := l.Entries[6].(*SavepointEntry)
	if len(sp3.Delta.Changed) != 0 || len(sp3.Delta.Deleted) != 1 || sp3.Delta.Deleted[0] != "a" {
		t.Errorf("sp3 delta = %+v, want deletion of a", sp3.Delta)
	}
	for i, want := range []map[string][]byte{s1, s2, s3} {
		id := []string{"sp1", "sp2", "sp3"}[i]
		got, err := l.ReconstructSRO(id)
		if err != nil {
			t.Fatal(err)
		}
		if !imagesEqual(got, want) {
			t.Errorf("reconstruct %s = %v, want %v", id, got, want)
		}
	}
}

func imagesEqual(a, b map[string][]byte) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if string(b[k]) != string(v) {
			return false
		}
	}
	return true
}

func TestSpecialSavepointResolution(t *testing.T) {
	var l Log
	if err := l.AppendSavepoint("outer", img("k", "v"), StateLogging, true); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendSpecialSavepoint("inner", "outer", true); err != nil {
		t.Fatal(err)
	}
	got, err := l.ReconstructSRO("inner")
	if err != nil {
		t.Fatal(err)
	}
	if string(got["k"]) != "v" {
		t.Errorf("special savepoint resolution = %v", got)
	}
	if !strings.Contains(l.String(), "SP*(inner->outer)") {
		t.Errorf("log rendering lacks special savepoint: %s", l.String())
	}
}

func TestSpecialSavepointMissingRef(t *testing.T) {
	var l Log
	if err := l.AppendSpecialSavepoint("inner", "ghost", true); !errors.Is(err, ErrNoSuchSavepoint) {
		t.Errorf("err = %v, want ErrNoSuchSavepoint", err)
	}
}

func TestRemoveSavepointStateMode(t *testing.T) {
	var l Log
	for _, id := range []string{"a", "b", "c"} {
		if err := l.AppendSavepoint(id, img("x", id), StateLogging, true); err != nil {
			t.Fatal(err)
		}
		l.Append(&BeginStepEntry{Node: "n", Seq: 0})
		l.Append(&EndStepEntry{Node: "n", Seq: 0})
	}
	if err := l.RemoveSavepoint("b"); err != nil {
		t.Fatal(err)
	}
	if l.HasSavepoint("b") {
		t.Error("savepoint b still present")
	}
	for _, id := range []string{"a", "c"} {
		got, err := l.ReconstructSRO(id)
		if err != nil || string(got["x"]) != id {
			t.Errorf("reconstruct %s after removal = %v, %v", id, got, err)
		}
	}
}

func TestRemoveSavepointTransitionModeMerges(t *testing.T) {
	// Removing a middle (or base) savepoint under transition logging must
	// re-base the next one — "a non-trivial task" per §4.4.2.
	states := []map[string][]byte{
		img("a", "1"),
		img("a", "2", "b", "9"),
		img("a", "3"),
	}
	for _, victim := range []string{"sp0", "sp1"} {
		var l Log
		for i, s := range states {
			id := []string{"sp0", "sp1", "sp2"}[i]
			if err := l.AppendSavepoint(id, s, TransitionLogging, true); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.RemoveSavepoint(victim); err != nil {
			t.Fatalf("remove %s: %v", victim, err)
		}
		for i, id := range []string{"sp0", "sp1", "sp2"} {
			if id == victim {
				continue
			}
			got, err := l.ReconstructSRO(id)
			if err != nil {
				t.Fatalf("reconstruct %s after removing %s: %v", id, victim, err)
			}
			if !imagesEqual(got, states[i]) {
				t.Errorf("after removing %s: reconstruct %s = %v, want %v", victim, id, got, states[i])
			}
		}
	}
}

func TestRemoveSavepointBlockedBySpecialRef(t *testing.T) {
	var l Log
	if err := l.AppendSavepoint("outer", img(), StateLogging, true); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendSpecialSavepoint("inner", "outer", true); err != nil {
		t.Fatal(err)
	}
	if err := l.RemoveSavepoint("outer"); err == nil {
		t.Error("removal of referenced savepoint succeeded, want error")
	}
	if err := l.RemoveSavepoint("inner"); err != nil {
		t.Fatal(err)
	}
	if err := l.RemoveSavepoint("outer"); err != nil {
		t.Errorf("removal after dereference: %v", err)
	}
}

func TestRemoveMissingSavepoint(t *testing.T) {
	var l Log
	if err := l.RemoveSavepoint("ghost"); !errors.Is(err, ErrNoSuchSavepoint) {
		t.Errorf("err = %v, want ErrNoSuchSavepoint", err)
	}
}

func TestLastIsSavepointAndSavepoints(t *testing.T) {
	var l Log
	if l.LastIsSavepoint("a") {
		t.Error("empty log claims savepoint")
	}
	if err := l.AppendSavepoint("a", img(), StateLogging, false); err != nil {
		t.Fatal(err)
	}
	if !l.LastIsSavepoint("a") || l.LastIsSavepoint("b") {
		t.Error("LastIsSavepoint mismatch")
	}
	l.Append(&BeginStepEntry{})
	if l.LastIsSavepoint("a") {
		t.Error("LastIsSavepoint true after BOS")
	}
	if err := l.AppendSavepoint("b", img(), StateLogging, false); err != nil {
		t.Fatal(err)
	}
	got := l.Savepoints()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Savepoints = %v", got)
	}
}

func TestLogClearAndEncodedSize(t *testing.T) {
	var l Log
	if sz, err := l.EncodedSize(); err != nil || sz != 0 {
		t.Errorf("empty log size = %d, %v", sz, err)
	}
	if err := l.AppendSavepoint("a", img("k", strings.Repeat("v", 1000)), StateLogging, false); err != nil {
		t.Fatal(err)
	}
	sz1, err := l.EncodedSize()
	if err != nil || sz1 < 1000 {
		t.Errorf("size = %d, %v; want >= 1000", sz1, err)
	}
	l.Clear()
	if l.Len() != 0 {
		t.Error("Clear left entries")
	}
}

func TestLogGobRoundTrip(t *testing.T) {
	var l Log
	if err := l.AppendSavepoint("sp", img("a", "1"), StateLogging, true); err != nil {
		t.Fatal(err)
	}
	l.Append(&BeginStepEntry{Node: "n1", Seq: 3})
	l.Append(&OpEntry{Kind: OpMixed, Op: "comp.x", Params: NewParams().Set("amt", int64(42))})
	l.Append(&EndStepEntry{Node: "n1", Seq: 3, HasMixed: true, AltNodes: []string{"n2"}})
	if err := l.AppendSpecialSavepoint("inner", "sp", true); err != nil {
		t.Fatal(err)
	}

	data, err := wire.Encode(&l)
	if err != nil {
		t.Fatal(err)
	}
	var got Log
	if err := wire.Decode(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.String() != l.String() {
		t.Errorf("roundtrip:\n got %s\nwant %s", got.String(), l.String())
	}
	op := got.Entries[2].(*OpEntry)
	var amt int64
	if err := op.Params.Get("amt", &amt); err != nil || amt != 42 {
		t.Errorf("param amt = %d, %v", amt, err)
	}
	eos := got.Entries[3].(*EndStepEntry)
	if !eos.HasMixed || len(eos.AltNodes) != 1 {
		t.Errorf("EOS lost flags: %+v", eos)
	}
}

func TestParams(t *testing.T) {
	p := NewParams().Set("s", "hello").Set("n", int64(-7)).Set("b", []byte{1, 2})
	var s string
	if err := p.Get("s", &s); err != nil || s != "hello" {
		t.Errorf("s = %q, %v", s, err)
	}
	var n int64
	if err := p.Get("n", &n); err != nil || n != -7 {
		t.Errorf("n = %d, %v", n, err)
	}
	var b []byte
	if err := p.Get("b", &b); err != nil || len(b) != 2 {
		t.Errorf("b = %v, %v", b, err)
	}
	if err := p.Get("missing", &s); err == nil {
		t.Error("missing param: no error")
	}
}

func TestOpKindString(t *testing.T) {
	cases := map[OpKind]string{
		OpResource: "resource",
		OpAgent:    "agent",
		OpMixed:    "mixed",
		OpKind(9):  "OpKind(9)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestEntryName(t *testing.T) {
	cases := []struct {
		e    Entry
		want string
	}{
		{&SavepointEntry{}, "SP"},
		{&BeginStepEntry{}, "BOS"},
		{&OpEntry{}, "OE"},
		{&EndStepEntry{}, "EOS"},
	}
	for _, c := range cases {
		if got := EntryName(c.e); got != c.want {
			t.Errorf("EntryName(%T) = %q, want %q", c.e, got, c.want)
		}
	}
}

func TestTransitionBaseAfterClear(t *testing.T) {
	// After Clear, the next savepoint becomes a fresh base image.
	var l Log
	if err := l.AppendSavepoint("a", img("x", "1"), TransitionLogging, true); err != nil {
		t.Fatal(err)
	}
	l.Clear()
	if err := l.AppendSavepoint("b", img("x", "2"), TransitionLogging, true); err != nil {
		t.Fatal(err)
	}
	sp := l.Entries[0].(*SavepointEntry)
	if sp.Image == nil {
		t.Error("savepoint after Clear lacks base image")
	}
	got, err := l.ReconstructSRO("b")
	if err != nil || string(got["x"]) != "2" {
		t.Errorf("reconstruct b = %v, %v", got, err)
	}
}
