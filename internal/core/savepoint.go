package core

import (
	"fmt"
	"sort"
)

// AppendSavepoint captures the given SRO snapshot in a new savepoint entry
// appended to the log. Under StateLogging the full image is stored; under
// TransitionLogging only the difference against the previous data-carrying
// savepoint is stored, except that the first savepoint in the log always
// carries a full base image (§4.2).
func (l *Log) AppendSavepoint(id string, sro map[string][]byte, mode LogMode, auto bool) error {
	if l.HasSavepoint(id) {
		return fmt.Errorf("core: savepoint %q already in log", id)
	}
	sp := &SavepointEntry{ID: id, Mode: mode, Auto: auto}
	switch mode {
	case StateLogging:
		sp.Image = copyImage(sro)
	case TransitionLogging:
		prev, err := l.lastSROState()
		if err != nil {
			return err
		}
		if prev == nil {
			sp.Image = copyImage(sro) // base image
		} else {
			sp.Delta = computeDelta(prev, sro)
		}
	default:
		return fmt.Errorf("core: unknown log mode %d", mode)
	}
	l.Append(sp)
	return nil
}

// AppendSpecialSavepoint appends a data-less savepoint whose SRO state is
// that of the (earlier) savepoint refID (§4.4.2).
func (l *Log) AppendSpecialSavepoint(id, refID string, auto bool) error {
	if l.HasSavepoint(id) {
		return fmt.Errorf("core: savepoint %q already in log", id)
	}
	if !l.HasSavepoint(refID) {
		return fmt.Errorf("%w: special savepoint %q references %q", ErrNoSuchSavepoint, id, refID)
	}
	l.Append(&SavepointEntry{ID: id, Special: true, RefID: refID, Auto: auto})
	return nil
}

// ReconstructSRO returns the SRO state recorded at savepoint id, resolving
// special savepoints and, under transition logging, replaying the delta
// chain from the base image forward.
func (l *Log) ReconstructSRO(id string) (map[string][]byte, error) {
	idx := l.savepointIndex(id)
	if idx < 0 {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchSavepoint, id)
	}
	sp := l.Entries[idx].(*SavepointEntry)
	if sp.Special {
		return l.ReconstructSRO(sp.RefID)
	}
	if sp.Mode == StateLogging || sp.Delta == nil {
		return copyImage(sp.Image), nil
	}
	// Transition logging: replay forward from the base image.
	var state map[string][]byte
	for i := 0; i <= idx; i++ {
		cur, ok := l.Entries[i].(*SavepointEntry)
		if !ok || cur.Special {
			continue
		}
		switch {
		case cur.Delta == nil:
			state = copyImage(cur.Image)
		case state == nil:
			return nil, fmt.Errorf("core: savepoint %q has no base image in log", id)
		default:
			applyDelta(state, cur.Delta)
		}
	}
	return state, nil
}

// RemoveSavepoint removes savepoint id from the log once its sub-itinerary
// completed (§4.4.2). Under transition logging the removed savepoint's
// delta is merged into the next data-carrying savepoint — "a non-trivial
// task" the paper flags; this is the implementation. Removal fails if a
// special savepoint still references id.
func (l *Log) RemoveSavepoint(id string) error {
	idx := l.savepointIndex(id)
	if idx < 0 {
		return fmt.Errorf("%w: %q", ErrNoSuchSavepoint, id)
	}
	for _, e := range l.Entries {
		if sp, ok := e.(*SavepointEntry); ok && sp.Special && sp.RefID == id {
			return fmt.Errorf("core: savepoint %q still referenced by special savepoint %q", id, sp.ID)
		}
	}
	victim := l.Entries[idx].(*SavepointEntry)
	if !victim.Special && victim.Mode == TransitionLogging {
		// Re-base the next data-carrying savepoint before the chain
		// breaks.
		for j := idx + 1; j < len(l.Entries); j++ {
			next, ok := l.Entries[j].(*SavepointEntry)
			if !ok || next.Special {
				continue
			}
			state, err := l.ReconstructSRO(next.ID)
			if err != nil {
				return err
			}
			if victim.Delta == nil {
				// Victim was the base: the next savepoint becomes
				// the new base image.
				next.Image = state
				next.Delta = nil
			} else {
				prev, err := l.reconstructBefore(idx)
				if err != nil {
					return err
				}
				next.Image = nil
				next.Delta = computeDelta(prev, state)
			}
			break
		}
	}
	l.Entries = append(l.Entries[:idx], l.Entries[idx+1:]...)
	// Removal splices mid-log and may have rewritten the next savepoint's
	// image/delta in place; the size memo is no longer a valid prefix.
	l.invalidateSizes()
	return nil
}

// lastSROState reconstructs the state of the last data-carrying savepoint,
// or returns nil if the log has none.
func (l *Log) lastSROState() (map[string][]byte, error) {
	for i := len(l.Entries) - 1; i >= 0; i-- {
		if sp, ok := l.Entries[i].(*SavepointEntry); ok && !sp.Special {
			return l.ReconstructSRO(sp.ID)
		}
	}
	return nil, nil
}

// reconstructBefore reconstructs the state of the last data-carrying
// savepoint strictly before index idx.
func (l *Log) reconstructBefore(idx int) (map[string][]byte, error) {
	for i := idx - 1; i >= 0; i-- {
		if sp, ok := l.Entries[i].(*SavepointEntry); ok && !sp.Special {
			return l.ReconstructSRO(sp.ID)
		}
	}
	return map[string][]byte{}, nil
}

func copyImage(src map[string][]byte) map[string][]byte {
	out := make(map[string][]byte, len(src))
	for k, v := range src {
		c := make([]byte, len(v))
		copy(c, v)
		out[k] = c
	}
	return out
}

// computeDelta returns the delta transforming prev into cur.
func computeDelta(prev, cur map[string][]byte) *SRODelta {
	d := &SRODelta{Changed: make(map[string][]byte)}
	for k, v := range cur {
		if old, ok := prev[k]; !ok || !bytesEqual(old, v) {
			c := make([]byte, len(v))
			copy(c, v)
			d.Changed[k] = c
		}
	}
	for k := range prev {
		if _, ok := cur[k]; !ok {
			d.Deleted = append(d.Deleted, k)
		}
	}
	sort.Strings(d.Deleted)
	return d
}

// applyDelta mutates state forward by d.
func applyDelta(state map[string][]byte, d *SRODelta) {
	for k, v := range d.Changed {
		c := make([]byte, len(v))
		copy(c, v)
		state[k] = c
	}
	for _, k := range d.Deleted {
		delete(state, k)
	}
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
