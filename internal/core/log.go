// Package core implements the agent rollback log of §4.2 — the data
// structure the whole rollback mechanism revolves around.
//
// The log is attached to the agent and migrates with it. It is a stack of
// four entry kinds (Figure 2):
//
//	SP   savepoint entry: restore information for the strongly
//	     reversible objects, via a full image (state logging) or a delta
//	     against the previous savepoint (transition logging);
//	BOS  begin-of-step entry: node that executed the step;
//	OE   operation entry: one compensating operation + parameters, of
//	     resource, agent or mixed kind (§4.4.1);
//	EOS  end-of-step entry: node, the has-mixed flag used by the
//	     optimized rollback, and alternative nodes for fault-tolerant
//	     compensation (§4.3 discussion).
//
// To compensate step n the operation entries between its EOS and BOS are
// executed in reverse log order (OEn,p … OEn,1).
package core

import (
	"errors"
	"fmt"

	"repro/internal/wire"
)

// OpKind classifies a compensating operation entry (§4.4.1).
type OpKind int

// Operation entry kinds.
const (
	// OpResource compensations touch only the resource state space; all
	// information they need travels in the entry's parameters. They can
	// be shipped to the resource node without the agent.
	OpResource OpKind = iota + 1
	// OpAgent compensations touch only weakly reversible objects of the
	// agent; they run wherever the agent resides.
	OpAgent
	// OpMixed compensations need both; the agent must be transferred to
	// the node where the step executed.
	OpMixed
)

// String returns the kind name.
func (k OpKind) String() string {
	switch k {
	case OpResource:
		return "resource"
	case OpAgent:
		return "agent"
	case OpMixed:
		return "mixed"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// LogMode selects how strongly reversible objects are logged (§4.2).
type LogMode int

// Logging modes for strongly reversible objects.
const (
	// StateLogging writes a complete image of the SROs per savepoint.
	StateLogging LogMode = iota + 1
	// TransitionLogging writes differences between adjacent savepoints;
	// the oldest savepoint in the log always carries a full base image.
	TransitionLogging
)

// Params carries the parameters of a compensating operation as named,
// gob-encoded values.
type Params map[string][]byte

// NewParams returns an empty parameter set.
func NewParams() Params { return make(Params) }

// Set stores v under key and returns the receiver for chaining. The
// common scalar kinds (int64/int, string, []byte) take a zero-gob fast
// path under stable wire tags (see wire.Tagged); every other type is
// gob-encoded as before. Both formats decode through Get.
func (p Params) Set(key string, v any) Params {
	switch x := v.(type) {
	case int64:
		p[key] = wire.EncodeInt64(x)
	case int:
		p[key] = wire.EncodeInt64(int64(x))
	case string:
		p[key] = wire.EncodeString(x)
	case []byte:
		p[key] = wire.EncodeBytes(x)
	default:
		p[key] = wire.MustEncode(v)
	}
	return p
}

// Get decodes the value under key into out (a non-nil pointer).
func (p Params) Get(key string, out any) error {
	raw, ok := p[key]
	if !ok {
		return fmt.Errorf("core: missing parameter %q", key)
	}
	if !wire.Tagged(raw) {
		return wire.Decode(raw, out)
	}
	switch o := out.(type) {
	case *int64:
		if v, ok := wire.DecodeInt64(raw); ok {
			*o = v
			return nil
		}
	case *int:
		if v, ok := wire.DecodeInt64(raw); ok {
			*o = int(v)
			return nil
		}
	case *string:
		if v, ok := wire.DecodeString(raw); ok {
			*o = v
			return nil
		}
	case *[]byte:
		if v, ok := wire.DecodeBytes(raw); ok {
			*o = v
			return nil
		}
	}
	return fmt.Errorf("core: parameter %q: cannot decode tagged scalar into %T", key, out)
}

// Entry is one rollback-log entry.
type Entry interface {
	// entryName returns the short name used in log dumps (SP/BOS/OE/EOS).
	entryName() string
}

// SavepointEntry marks an agent savepoint (§4.2). Exactly one of
// Image/Delta is meaningful for data-carrying savepoints; Special
// savepoints carry no data and reference an earlier savepoint whose state
// they share (§4.4.2: a sub-itinerary starting immediately after its parent
// reuses the parent's savepoint data).
type SavepointEntry struct {
	ID   string
	Mode LogMode

	// Image is the full SRO image (state logging, or the base savepoint
	// under transition logging).
	Image map[string][]byte
	// Delta is the difference against the previous savepoint in the log
	// (transition logging only).
	Delta *SRODelta

	// Special marks a data-less savepoint referencing RefID.
	Special bool
	RefID   string

	// Auto marks savepoints placed automatically by the itinerary layer.
	Auto bool
}

// SRODelta is the difference between the SRO states of two adjacent
// savepoints: Changed holds the values *at this savepoint* for keys that
// differ from the previous one; Deleted lists keys the previous savepoint
// had but this one does not.
type SRODelta struct {
	Changed map[string][]byte
	Deleted []string
}

// BeginStepEntry logs the start of a step (§4.2).
type BeginStepEntry struct {
	Node string
	Seq  int
}

// OpEntry logs one compensating operation (§4.2, §4.4.1).
type OpEntry struct {
	Kind   OpKind
	Op     string // compensation operation name in the registry
	Params Params
}

// EndStepEntry logs the end of a step. HasMixed is the optimization flag of
// §4.4.1 ("include a flag in the end-of-step entry indicating whether a
// mixed compensation entry is contained in the step"); AltNodes lists nodes
// that can alternatively execute the step's compensation (§4.3 discussion).
type EndStepEntry struct {
	Node     string
	Seq      int
	HasMixed bool
	AltNodes []string
}

func (*SavepointEntry) entryName() string { return "SP" }
func (*BeginStepEntry) entryName() string { return "BOS" }
func (*OpEntry) entryName() string        { return "OE" }
func (*EndStepEntry) entryName() string   { return "EOS" }

// EntryName returns the short display name of e (SP/BOS/OE/EOS).
func EntryName(e Entry) string { return e.entryName() }

// registerTypes makes all entry types known to gob under stable names.
var _ = registerTypes()

func registerTypes() struct{} {
	wire.RegisterName("core.SP", &SavepointEntry{})
	wire.RegisterName("core.BOS", &BeginStepEntry{})
	wire.RegisterName("core.OE", &OpEntry{})
	wire.RegisterName("core.EOS", &EndStepEntry{})
	return struct{}{}
}

// Errors of the log layer.
var (
	ErrEmptyLog         = errors.New("core: rollback log is empty")
	ErrNoSuchSavepoint  = errors.New("core: no such savepoint in log")
	ErrNotCompensatable = errors.New("core: log does not end with a complete step")
)

// Log is the agent rollback log. It is a stack: entries are appended at
// step commit and popped (from the end) during rollback. The zero value is
// an empty log; Log is gob-serializable as part of the agent container
// (the unexported size-accounting fields are volatile and rebuilt lazily
// after decode).
type Log struct {
	Entries []Entry

	// Incremental encoded-size accounting. sizes memoizes the encoded
	// size of each measured entry (a prefix of Entries), produced through
	// one persistent sizing session so gob type descriptors are charged
	// once per stream, like one container encode. Pop subtracts the
	// popped entry's memoized size; structural edits elsewhere in the log
	// (RemoveSavepoint) invalidate the whole memo. Entries must not be
	// mutated after they are appended, or the memo goes stale.
	sizer   *wire.SizingEncoder
	sizes   []int
	sizeSum int
}

// Append adds e at the end of the log. Its size is measured lazily on the
// next EncodedSize call.
func (l *Log) Append(e Entry) { l.Entries = append(l.Entries, e) }

// Len returns the number of entries.
func (l *Log) Len() int { return len(l.Entries) }

// Last returns the final entry, or nil if the log is empty.
func (l *Log) Last() Entry {
	if len(l.Entries) == 0 {
		return nil
	}
	return l.Entries[len(l.Entries)-1]
}

// Pop removes and returns the final entry (LOG.pop() in Figure 4b).
func (l *Log) Pop() (Entry, error) {
	if len(l.Entries) == 0 {
		return nil, ErrEmptyLog
	}
	e := l.Entries[len(l.Entries)-1]
	l.Entries = l.Entries[:len(l.Entries)-1]
	if len(l.sizes) > len(l.Entries) {
		// The popped entry was measured: subtract its memoized size so
		// the memo stays a valid prefix.
		l.sizeSum -= l.sizes[len(l.sizes)-1]
		l.sizes = l.sizes[:len(l.sizes)-1]
	}
	return e, nil
}

// Clear discards all entries (§4.4.2: completion of a sub-itinerary of the
// main itinerary deletes all rollback information).
func (l *Log) Clear() {
	l.Entries = nil
	l.invalidateSizes()
}

// invalidateSizes discards the size memo; the next EncodedSize call
// re-measures the whole log. Called after structural edits that are not
// stack pushes/pops.
func (l *Log) invalidateSizes() {
	l.sizer = nil
	l.sizes = l.sizes[:0]
	l.sizeSum = 0
}

// EncodedSize returns the serialized size of the log in bytes, used by the
// log-size experiments (F6, T-log) and the per-step log metrics. The size
// is tracked incrementally: each call measures only the entries appended
// since the last call, so per-step accounting is O(entries appended that
// step) amortized instead of re-encoding the whole log. The reported value
// is the size of the entries as one encode stream; it can differ from a
// full container encode by a few bytes of framing when entries carrying
// gob type descriptors are popped.
func (l *Log) EncodedSize() (int, error) {
	if len(l.Entries) == 0 {
		return 0, nil
	}
	if l.sizer == nil {
		l.sizes = l.sizes[:0]
		l.sizeSum = 0
		l.sizer = wire.NewSizingEncoder()
	}
	for i := len(l.sizes); i < len(l.Entries); i++ {
		n, err := l.sizer.Size(l.Entries[i])
		if err != nil {
			l.invalidateSizes()
			return 0, err
		}
		l.sizes = append(l.sizes, n)
		l.sizeSum += n
	}
	return l.sizeSum, nil
}

// savepointIndex returns the index of the savepoint with the given ID, or
// -1. Special savepoints match their own ID (not their RefID).
func (l *Log) savepointIndex(id string) int {
	for i, e := range l.Entries {
		if sp, ok := e.(*SavepointEntry); ok && sp.ID == id {
			return i
		}
	}
	return -1
}

// HasSavepoint reports whether a savepoint with the given ID exists.
func (l *Log) HasSavepoint(id string) bool { return l.savepointIndex(id) >= 0 }

// LastIsSavepoint reports whether the final log entry is the savepoint with
// the given ID — the "savepoint spID reached" test of Figures 4 and 5.
func (l *Log) LastIsSavepoint(id string) bool {
	sp, ok := l.Last().(*SavepointEntry)
	return ok && sp.ID == id
}

// Savepoints returns the IDs of all savepoints in log order.
func (l *Log) Savepoints() []string {
	var ids []string
	for _, e := range l.Entries {
		if sp, ok := e.(*SavepointEntry); ok {
			ids = append(ids, sp.ID)
		}
	}
	return ids
}

// String renders the log compactly, e.g. "SP(a) BOS(n1/0) OE(res) EOS(n1/0)".
func (l *Log) String() string {
	out := make([]byte, 0, 16*len(l.Entries))
	for i, e := range l.Entries {
		if i > 0 {
			out = append(out, ' ')
		}
		switch v := e.(type) {
		case *SavepointEntry:
			if v.Special {
				out = append(out, ("SP*(" + v.ID + "->" + v.RefID + ")")...)
			} else {
				out = append(out, ("SP(" + v.ID + ")")...)
			}
		case *BeginStepEntry:
			out = append(out, fmt.Sprintf("BOS(%s/%d)", v.Node, v.Seq)...)
		case *OpEntry:
			out = append(out, ("OE(" + v.Kind.String() + ":" + v.Op + ")")...)
		case *EndStepEntry:
			out = append(out, fmt.Sprintf("EOS(%s/%d)", v.Node, v.Seq)...)
		default:
			out = append(out, "?"...)
		}
	}
	return string(out)
}
