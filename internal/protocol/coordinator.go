package protocol

// Coordinator role: this node runs the decision side of a distributed
// step/compensation transaction. States per transaction:
//
//	(absent) --CoordPrepare*--> active --CoordDecided(commit)--> pendingCtl
//	                              |                                  |
//	                              | CoordDecided(abort)              | all CtlAcks in
//	                              v                                  v
//	                           (absent)                          (absent) + ClearDecision
//
// While active, in-doubt queries are answered with silence (the
// decision is still open — the participant re-asks). Once absent, a
// query is answered from the stable decision record alone: record
// present ⇒ committed, otherwise presumed abort. Commit control
// messages are resent on a per-transaction timer until every
// participant acknowledged; abort notifications go out exactly once
// (presumed abort covers their loss).

// coordTxn is the coordinator-side state of one distributed
// transaction.
type coordTxn struct {
	active  bool
	pending map[Participant]bool // unacked commit controls
}

func (m *Machine) coordTxnFor(txnID string) *coordTxn {
	c, ok := m.coord[txnID]
	if !ok {
		c = &coordTxn{}
		m.coord[txnID] = c
	}
	return c
}

// coordPrepareEnqueue marks the transaction active *before* the
// prepare leaves this node, so a racing in-doubt query cannot be
// answered "abort" while the decision is still open.
func (m *Machine) coordPrepareEnqueue(e CoordPrepareEnqueue) []Effect {
	m.coordTxnFor(e.TxnID).active = true
	return []Effect{SendMsg{
		To:      e.Dest,
		Kind:    KindEnqueuePrepare,
		Payload: &PrepareMsg{TxnID: e.TxnID, EntryID: e.EntryID, Data: e.Data},
	}}
}

func (m *Machine) coordPrepareRCE(e CoordPrepareRCE) []Effect {
	m.coordTxnFor(e.TxnID).active = true
	return []Effect{SendMsg{
		To:      e.Dest,
		Kind:    KindRCEExec,
		Payload: &RCEExecMsg{TxnID: e.TxnID, Ops: e.Ops},
	}}
}

// coordDecided closes the decision. On commit the participants are
// driven to commit reliably (per-transaction resend timer); on abort
// they are notified once and the transaction is forgotten — presumed
// abort resolves anything the notification misses.
func (m *Machine) coordDecided(e CoordDecided) []Effect {
	var effs []Effect
	if !e.Commit {
		for _, p := range e.Parts {
			effs = append(effs, SendMsg{To: p.Node, Kind: p.ctlKind(false), Payload: &CtlMsg{TxnID: e.TxnID}})
		}
		delete(m.coord, e.TxnID)
		return effs
	}
	c := m.coordTxnFor(e.TxnID)
	c.active = false
	if len(e.Parts) == 0 {
		// Purely local commit: nothing to drive, nothing to remember.
		delete(m.coord, e.TxnID)
		return nil
	}
	c.pending = make(map[Participant]bool, len(e.Parts))
	for _, p := range e.Parts {
		c.pending[p] = true
		effs = append(effs, SendMsg{To: p.Node, Kind: p.ctlKind(true), Payload: &CtlMsg{TxnID: e.TxnID}})
	}
	if !m.batch() {
		return append(effs, ArmTimer{ID: timerID(timerCtl, e.TxnID), D: m.cfg.RetryInterval})
	}
	// Coalesced mode: the first controls still go out per-transaction
	// (the driver's outbound batch groups them per destination); only the
	// resend obligation joins the shared per-peer timer.
	for _, p := range e.Parts {
		effs = append(effs, m.enqueue(timerPeerCtl, p.Node, dueEntry{id: e.TxnID, aux: partAux(p.Kind)}, m.cfg.RetryInterval)...)
	}
	return effs
}

// ackReceived handles every acknowledgement kind: prepare/exec acks
// are routed to the worker blocked on them; control acks retire the
// coordinator's reliable-resend obligation, and the last commit ack
// garbage-collects the decision record.
func (m *Machine) ackReceived(e AckReceived) []Effect {
	switch e.Kind {
	case KindEnqueuePrepareAck, KindRCEExecAck:
		return []Effect{DeliverAck{Kind: e.Kind, TxnID: e.TxnID, OK: e.OK, Err: e.Err}}
	}
	pk, commit, ok := CtlKindOf(e.Kind)
	if !ok {
		return nil
	}
	if !e.OK {
		// The participant could not apply the control (e.g. a transient
		// store error committing its staged entry): keep the pending
		// obligation so the resend timer drives it again — retiring it
		// here would garbage-collect the decision record while the
		// participant is still in doubt.
		return nil
	}
	c, exists := m.coord[e.TxnID]
	if !exists || !c.pending[Participant{Node: e.From, Kind: pk}] {
		return nil // duplicate or stale ack
	}
	delete(c.pending, Participant{Node: e.From, Kind: pk})
	if len(c.pending) > 0 {
		return nil
	}
	delete(m.coord, e.TxnID)
	var effs []Effect
	if !m.batch() {
		// Coalesced entries are dropped lazily at the next per-peer fire;
		// only the legacy per-transaction timer needs an eager cancel.
		effs = append(effs, CancelTimer{ID: timerID(timerCtl, e.TxnID)})
	}
	if commit {
		// Every participant acknowledged the commit: the decision
		// record can be garbage-collected.
		effs = append(effs, ClearDecision{TxnID: e.TxnID})
	}
	return effs
}

// queryReceived answers a participant's in-doubt query. A decision
// record in the store means committed; a still-active transaction
// means "no answer yet" (stay silent, the participant retries); a
// known transaction with pending commit controls means committed even
// if the driver's store read raced the commit (the machine state is
// authoritative: pending controls only exist after the decision record
// landed durably); otherwise the transaction never committed —
// presumed abort.
func (m *Machine) queryReceived(e QueryReceived) []Effect {
	committed := e.StoreDecided
	if !committed {
		if c, ok := m.coord[e.TxnID]; ok {
			if c.active {
				return nil // outcome not decided yet; participant will re-ask
			}
			// Decided commit, acks still outstanding: the driver's
			// Decided read predates the commit — answer from state.
			committed = len(c.pending) > 0
		}
	}
	return []Effect{SendMsg{
		To:      e.From,
		Kind:    KindTxnStatus,
		Payload: &StatusMsg{TxnID: e.TxnID, Committed: committed},
	}}
}

// ctlTimer resends the outstanding commit controls of one transaction.
func (m *Machine) ctlTimer(txnID string) []Effect {
	c, ok := m.coord[txnID]
	if !ok || len(c.pending) == 0 {
		return nil
	}
	var effs []Effect
	for p := range c.pending {
		effs = append(effs, SendMsg{To: p.Node, Kind: p.ctlKind(true), Payload: &CtlMsg{TxnID: txnID}})
	}
	sortSends(effs)
	effs = append(effs, ArmTimer{ID: timerID(timerCtl, txnID), D: m.cfg.RetryInterval})
	return effs
}
