package protocol

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/wire"
)

// FuzzWireRoundTrip differentially fuzzes the two wire formats: for every
// fast-path message type, a value built from the fuzz input must decode to
// the same Go value whether it crossed the wire as gob or as the binary
// codec. The same input also drives rejection checks: truncated binary
// frames must error, bit-flipped frames must never panic (and if one still
// parses, its re-encoding must be stable), and arbitrary bytes fed
// straight into the decoders must be handled gracefully.
func FuzzWireRoundTrip(f *testing.F) {
	f.Add("n1#7", "agent-3", "", []byte("container"), true, byte(0), []byte{0x90, 0x01})
	f.Add("", "", "node recovering", []byte{}, false, byte(3), []byte("not binary"))
	f.Add("txn", "e", "x", []byte{0x90, 0x05, 0xff}, true, byte(0xff), []byte{0x90})
	f.Fuzz(func(t *testing.T, txn, entry, errStr string, data []byte, ok bool, sel byte, raw []byte) {
		var ops []*core.OpEntry
		if sel&0x08 == 0 {
			ops = []*core.OpEntry{{
				Kind:   core.OpKind(sel % 4),
				Op:     entry,
				Params: core.Params{txn: data, errStr: nil},
			}}
			if sel&0x10 != 0 {
				ops = append(ops, &core.OpEntry{Op: "second"})
			}
		}
		msgs := []struct {
			msg  wire.BinaryMessage
			zero func() wire.BinaryMessage
		}{
			{&PrepareMsg{TxnID: txn, EntryID: entry, Data: data}, func() wire.BinaryMessage { return &PrepareMsg{} }},
			{&AckMsg{TxnID: txn, OK: ok, Err: errStr}, func() wire.BinaryMessage { return &AckMsg{} }},
			{&CtlMsg{TxnID: txn}, func() wire.BinaryMessage { return &CtlMsg{} }},
			{&StatusMsg{TxnID: txn, Committed: ok}, func() wire.BinaryMessage { return &StatusMsg{} }},
			{&RCEExecMsg{TxnID: txn, Ops: ops}, func() wire.BinaryMessage { return &RCEExecMsg{} }},
			{&CtlBatchMsg{Items: batchItems(txn, entry, ok, sel)}, func() wire.BinaryMessage { return &CtlBatchMsg{} }},
			{&QueryBatchMsg{TxnIDs: batchTxns(txn, entry, sel)}, func() wire.BinaryMessage { return &QueryBatchMsg{} }},
		}
		for _, tc := range msgs {
			gobEnc, err := wire.Encode(tc.msg)
			if err != nil {
				t.Fatalf("%T: gob encode: %v", tc.msg, err)
			}
			binEnc := tc.msg.AppendTo(nil)
			viaGob, viaBin := tc.zero(), tc.zero()
			if err := Decode(gobEnc, viaGob); err != nil {
				t.Fatalf("%T: gob decode: %v", tc.msg, err)
			}
			if err := Decode(binEnc, viaBin); err != nil {
				t.Fatalf("%T: binary decode: %v", tc.msg, err)
			}
			if !reflect.DeepEqual(viaGob, viaBin) {
				t.Fatalf("%T: wire formats disagree\n gob %#v\n bin %#v", tc.msg, viaGob, viaBin)
			}

			// Every strict prefix of a valid frame must be rejected: all
			// fields are mandatory and decoders demand full consumption.
			// Checking each prefix is quadratic, so long frames are
			// sampled (short ones, where the interesting boundaries live,
			// are covered exhaustively; TestBinaryCodecRejectsCorruptInput
			// does the exhaustive sweep on a fixed message).
			stride := 1 + len(binEnc)/64
			for i := 0; i < len(binEnc); i += stride {
				if err := tc.zero().DecodeFrom(binEnc[:i]); err == nil {
					t.Fatalf("%T: truncation at %d/%d accepted", tc.msg, i, len(binEnc))
				}
			}

			// Bit flips: decoding must never panic; an encoding that still
			// parses must re-encode to something that parses to the same
			// value (no decoder state leaks between fields).
			if len(binEnc) > 0 {
				flipped := append([]byte(nil), binEnc...)
				pos := int(sel) % len(flipped)
				flipped[pos] ^= 1 << (sel % 8)
				mutant := tc.zero()
				if err := mutant.DecodeFrom(flipped); err == nil {
					again := tc.zero()
					if err := again.DecodeFrom(mutant.AppendTo(nil)); err != nil {
						t.Fatalf("%T: re-encoding of accepted mutant rejected: %v", tc.msg, err)
					}
					if !reflect.DeepEqual(mutant, again) {
						t.Fatalf("%T: mutant re-encode not stable", tc.msg)
					}
				}
			}

			// Arbitrary bytes straight into the decoder: error or success,
			// never a panic or runaway allocation.
			_ = tc.zero().DecodeFrom(raw)
			_ = Decode(raw, tc.zero())
		}
	})
}

// batchItems derives a CtlBatchMsg item list from the fuzz input: nil,
// one item or two, with the flag combinations driven by sel.
func batchItems(txn, entry string, ok bool, sel byte) []CtlBatchItem {
	if sel&0x20 != 0 {
		return nil
	}
	items := []CtlBatchItem{{TxnID: txn, RCE: ok, Commit: sel&0x01 != 0}}
	if sel&0x40 != 0 {
		items = append(items, CtlBatchItem{TxnID: entry, Commit: true})
	}
	return items
}

// batchTxns derives a QueryBatchMsg transaction list the same way.
func batchTxns(txn, entry string, sel byte) []string {
	if sel&0x20 != 0 {
		return nil
	}
	txns := []string{txn}
	if sel&0x40 != 0 {
		txns = append(txns, entry)
	}
	return txns
}
