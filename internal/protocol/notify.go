package protocol

// Notifier role: an agent's durable completion record must reach its
// owner reliably. The record is sent when written, resent on a
// per-agent timer, and garbage-collected on the owner's ack. Recovery
// replays surviving records through DoneRecorded as well — the states
// and edges are identical for the live and the recovered case.

func (m *Machine) doneRecorded(e DoneRecorded) []Effect {
	m.done[e.AgentID] = e.Owner
	effs := []Effect{ResendDone{AgentID: e.AgentID}}
	if m.batch() {
		if e.Owner == "" {
			return effs // unroutable record; nothing to retry against
		}
		return append(effs, m.enqueue(timerPeerDone, e.Owner, dueEntry{id: e.AgentID}, m.cfg.RetryInterval)...)
	}
	return append(effs, ArmTimer{ID: timerID(timerDone, e.AgentID), D: m.cfg.RetryInterval})
}

// doneAcked garbage-collects the completion record. The record is
// dropped even when untracked (an ack can arrive after a crash erased
// the volatile state but before recovery replayed the record).
func (m *Machine) doneAcked(e DoneAcked) []Effect {
	delete(m.done, e.AgentID)
	if m.batch() {
		return []Effect{DropDone{AgentID: e.AgentID}}
	}
	return []Effect{
		CancelTimer{ID: timerID(timerDone, e.AgentID)},
		DropDone{AgentID: e.AgentID},
	}
}

func (m *Machine) doneTimer(agentID string) []Effect {
	if _, ok := m.done[agentID]; !ok {
		return nil
	}
	return []Effect{
		ResendDone{AgentID: agentID},
		ArmTimer{ID: timerID(timerDone, agentID), D: m.cfg.RetryInterval},
	}
}
