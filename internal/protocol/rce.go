package protocol

// RCE role (Figure 5b, resource-node half): execute a shipped
// resource-compensation-entry list inside a prepared branch of the
// coordinator's compensation transaction. States per transaction:
//
//	(absent) --RCEExecReceived--> executing --BranchPrepared(ok)--> prepared
//	    |                            |                                 |
//	    |                            | StatusReceived/CtlReceived      | verdict
//	    |                            |     (abort)                     v
//	    |                            v                             (absent) +
//	    |                     executingAborted                     Commit/AbortBranch
//	    |                            |
//	    |                            | BranchPrepared(any)
//	    |                            v
//	    |                 (absent) + AbortBranch + refused ack
//	    |
//	RecoveredBranch--> inDoubt --verdict--> (absent) + ResolveBranchRecord
//
// The executing→executingAborted edge is the PR-4 chaos catch (seed
// 2): the coordinator's presumed abort overtakes an execution that is
// blocked on a resource lock. A branch prepared *after* its
// coordinator aborted would be a zombie — prepared, lock-holding,
// already presumed-aborted — and under retry pressure those zombie
// holds chain into a livelock where no attempt can prepare inside the
// coordinator's ack window. What was a cross-map poison check
// (rceInFlight/rceAborted) is now this ordinary transition.
//
// A prepared branch left undecided for StaleAfter starts querying its
// coordinator (the coordinator may have aborted silently); the timer
// then re-arms on RetryInterval.

// branchState is the lifecycle position of one RCE branch.
type branchState int

const (
	// branchExecuting: the driver is running the compensation list
	// (possibly blocked on resource locks).
	branchExecuting branchState = iota + 1
	// branchExecutingAborted: the coordinator's verdict (abort)
	// overtook the still-running execution; the branch must abort
	// instead of preparing.
	branchExecutingAborted
	// branchPrepared: durably prepared and acknowledged; awaiting the
	// coordinator's decision.
	branchPrepared
	// branchInDoubt: a crash-surviving branch record with no live
	// transaction; resolution replays or drops the durable record.
	branchInDoubt
)

// branch is the participant-side state of one RCE branch.
type branch struct {
	state   branchState
	replyTo string // coordinator endpoint awaiting the exec ack
	ops     int64  // compensation entries in the branch (metrics)
}

// rceExecReceived starts (or deduplicates) a branch execution.
func (m *Machine) rceExecReceived(e RCEExecReceived) []Effect {
	if !m.ready {
		return []Effect{SendMsg{
			To:      e.From,
			Kind:    KindRCEExecAck,
			Payload: &AckMsg{TxnID: e.TxnID, OK: false, Err: "node recovering"},
		}}
	}
	if b, ok := m.branches[e.TxnID]; ok {
		switch b.state {
		case branchExecuting, branchExecutingAborted:
			return nil // already executing; its ack will answer the retry too
		case branchPrepared:
			// Duplicate request (lost ack): already prepared.
			return []Effect{SendMsg{
				To:      e.From,
				Kind:    KindRCEExecAck,
				Payload: &AckMsg{TxnID: e.TxnID, OK: true},
			}}
		case branchInDoubt:
			// The coordinator is retrying an execution whose previous
			// incarnation prepared durably before a crash; fall through
			// to a fresh execution under the same transaction ID.
		}
	}
	m.branches[e.TxnID] = &branch{state: branchExecuting, replyTo: e.From, ops: int64(len(e.Ops))}
	exec := ExecBranch{TxnID: e.TxnID, ReplyTo: e.From, Ops: e.Ops}
	if m.batch() {
		// Any queued stale/query entry for the previous incarnation is
		// filtered lazily at the next per-peer fire.
		return []Effect{exec}
	}
	return []Effect{
		CancelTimer{ID: timerID(timerBranch, e.TxnID)},
		exec,
	}
}

// branchPrepared lands the driver's execution result on the current
// state. The abort-overtook-execution edge resolves here: the branch
// was prepared durably, but the coordinator already presumed it
// aborted, so it is aborted (releasing its locks) instead of being
// registered — and the coordinator is told so.
func (m *Machine) branchPrepared(e BranchPrepared) []Effect {
	b, ok := m.branches[e.TxnID]
	if !ok {
		// No state at all (the verdict already settled everything);
		// the stray parked transaction is aborted so it cannot sit on
		// its locks.
		if e.OK {
			return []Effect{AbortBranch{TxnID: e.TxnID}}
		}
		return nil
	}
	if b.state != branchExecuting && b.state != branchExecutingAborted {
		// Duplicate completion for a branch that already prepared (or a
		// recovered record): the live state owns the parked
		// transaction — ignore the stray.
		return nil
	}
	if !e.OK {
		// Execution or prepare failed; the driver already aborted the
		// branch transaction.
		delete(m.branches, e.TxnID)
		return []Effect{SendMsg{
			To:      b.replyTo,
			Kind:    KindRCEExecAck,
			Payload: &AckMsg{TxnID: e.TxnID, OK: false, Err: e.Err},
		}}
	}
	if b.state == branchExecutingAborted {
		// The coordinator aborted while the compensations were running
		// (lock waits make that window wide). Registering the branch
		// now would create a zombie: prepared, lock-holding, and
		// already presumed-aborted by its coordinator.
		delete(m.branches, e.TxnID)
		return []Effect{
			AbortBranch{TxnID: e.TxnID},
			SendMsg{
				To:      b.replyTo,
				Kind:    KindRCEExecAck,
				Payload: &AckMsg{TxnID: e.TxnID, OK: false, Err: "aborted by coordinator during execution"},
			},
		}
	}
	b.state = branchPrepared
	effs := []Effect{
		CountCompOps{N: b.ops},
		SendMsg{
			To:      b.replyTo,
			Kind:    KindRCEExecAck,
			Payload: &AckMsg{TxnID: e.TxnID, OK: true},
		},
	}
	if !m.batch() {
		return append(effs, ArmTimer{ID: timerID(timerBranch, e.TxnID), D: m.cfg.StaleAfter})
	}
	co := Coordinator(e.TxnID)
	if co == "" || co == m.cfg.Node {
		// No remote coordinator to query; the verdict arrives locally.
		return effs
	}
	return append(effs, m.enqueue(timerPeerStale, co, dueEntry{id: e.TxnID, aux: auxBranch}, m.cfg.StaleAfter)...)
}

// resolveBranch applies a coordinator verdict to whatever branch state
// exists: a live prepared transaction, a still-running execution (the
// poison edge), a recovered record, or nothing (then only the durable
// record — if any — is replayed or dropped).
func (m *Machine) resolveBranch(txnID string, commit bool) []Effect {
	b, ok := m.branches[txnID]
	if !ok {
		// Crash-surviving branch record (no live Tx): replay/drop the
		// redo.
		return []Effect{ResolveBranchRecord{TxnID: txnID, Commit: commit}}
	}
	switch b.state {
	case branchPrepared:
		delete(m.branches, txnID)
		eff := Effect(CommitBranch{TxnID: txnID})
		if !commit {
			eff = AbortBranch{TxnID: txnID}
		}
		if m.batch() {
			return []Effect{eff}
		}
		return []Effect{CancelTimer{ID: timerID(timerBranch, txnID)}, eff}
	case branchExecuting:
		if !commit {
			// The abort overtook the branch: its RCE execution is still
			// running (typically blocked on a resource lock). Poison it
			// so it aborts instead of preparing.
			b.state = branchExecutingAborted
		}
		return []Effect{ResolveBranchRecord{TxnID: txnID, Commit: commit}}
	case branchExecutingAborted:
		return []Effect{ResolveBranchRecord{TxnID: txnID, Commit: commit}}
	case branchInDoubt:
		delete(m.branches, txnID)
		if m.batch() {
			return []Effect{ResolveBranchRecord{TxnID: txnID, Commit: commit}}
		}
		return []Effect{
			CancelTimer{ID: timerID(timerBranch, txnID)},
			ResolveBranchRecord{TxnID: txnID, Commit: commit},
		}
	}
	return nil
}

// recoveredBranch replays a crash-surviving in-doubt branch record:
// query the coordinator immediately, then on the usual cadence. Live
// branch state outranks the replay — a record surviving next to a live
// execution or prepared transaction is that transaction's own record.
func (m *Machine) recoveredBranch(e RecoveredBranch) []Effect {
	if b, ok := m.branches[e.TxnID]; ok && b.state != branchInDoubt {
		return nil
	}
	m.branches[e.TxnID] = &branch{state: branchInDoubt}
	co := Coordinator(e.TxnID)
	if co == "" || co == m.cfg.Node {
		return nil
	}
	effs := []Effect{SendMsg{To: co, Kind: KindTxnQuery, Payload: &CtlMsg{TxnID: e.TxnID}}}
	if m.batch() {
		return append(effs, m.enqueue(timerPeerQuery, co, dueEntry{id: e.TxnID, aux: auxBranch}, m.cfg.RetryInterval)...)
	}
	return append(effs, ArmTimer{ID: timerID(timerBranch, e.TxnID), D: m.cfg.RetryInterval})
}

// branchTimer queries the coordinator about a branch that has sat
// undecided past its threshold (the coordinator may have aborted
// silently — presumed abort never pushes a verdict on its own).
func (m *Machine) branchTimer(txnID string) []Effect {
	b, ok := m.branches[txnID]
	if !ok || (b.state != branchPrepared && b.state != branchInDoubt) {
		return nil
	}
	co := Coordinator(txnID)
	if co == "" || co == m.cfg.Node {
		return nil
	}
	return []Effect{
		SendMsg{To: co, Kind: KindTxnQuery, Payload: &CtlMsg{TxnID: txnID}},
		ArmTimer{ID: timerID(timerBranch, txnID), D: m.cfg.RetryInterval},
	}
}
