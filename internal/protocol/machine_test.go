package protocol_test

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/protocol"
)

// newReady builds a ready machine in legacy per-transaction timer mode
// (NoCtlBatch): the tests below pin the exact per-txn arm/cancel
// behaviour that mode keeps. The coalesced default is covered by
// timers_test.go.
func newReady(node string) *protocol.Machine {
	m := protocol.NewMachine(protocol.Config{
		Node:          node,
		RetryInterval: 50 * time.Millisecond,
		StaleAfter:    300 * time.Millisecond,
		NoCtlBatch:    true,
	})
	m.Step(protocol.ReadyReached{})
	return m
}

// pick returns all effects of type T, in emission order.
func pick[T protocol.Effect](effs []protocol.Effect) []T {
	var out []T
	for _, e := range effs {
		if t, ok := e.(T); ok {
			out = append(out, t)
		}
	}
	return out
}

func TestCoordinatorLifecycle(t *testing.T) {
	m := newReady("co")
	const txn = "co#1"

	// Prepare marks the transaction active and ships the prepare.
	effs := m.Step(protocol.CoordPrepareEnqueue{TxnID: txn, Dest: "p", EntryID: "a1", Data: []byte("x")})
	sends := pick[protocol.SendMsg](effs)
	if len(sends) != 1 || sends[0].Kind != protocol.KindEnqueuePrepare || sends[0].To != "p" {
		t.Fatalf("prepare effects = %+v", effs)
	}
	if s := m.Stats(); s.CoordActive != 1 {
		t.Fatalf("stats after prepare: %+v", s)
	}

	// While active and undecided, queries are answered with silence.
	if effs := m.Step(protocol.QueryReceived{TxnID: txn, From: "p", StoreDecided: false}); len(effs) != 0 {
		t.Fatalf("active query answered: %+v", effs)
	}
	// With the decision record present, queries answer committed even
	// while active (commit landed, ctls still going out).
	effs = m.Step(protocol.QueryReceived{TxnID: txn, From: "p", StoreDecided: true})
	st := pick[protocol.SendMsg](effs)
	if len(st) != 1 || !st[0].Payload.(*protocol.StatusMsg).Committed {
		t.Fatalf("decided query = %+v", effs)
	}

	// Decide commit with two participants: two ctl sends + retry timer.
	parts := []protocol.Participant{
		{Node: "p", Kind: protocol.PartQueue},
		{Node: "r", Kind: protocol.PartRCE},
	}
	effs = m.Step(protocol.CoordDecided{TxnID: txn, Commit: true, Parts: parts})
	if got := pick[protocol.SendMsg](effs); len(got) != 2 {
		t.Fatalf("decided effects = %+v", effs)
	}
	if got := pick[protocol.ArmTimer](effs); len(got) != 1 {
		t.Fatalf("no ctl retry timer armed: %+v", effs)
	}
	if s := m.Stats(); s.CoordActive != 0 || s.CoordPendingCtl != 1 {
		t.Fatalf("stats after decide: %+v", s)
	}

	// The retry timer resends only the outstanding controls.
	effs = m.Step(protocol.TimerFired{ID: "ctl|" + txn})
	if got := pick[protocol.SendMsg](effs); len(got) != 2 {
		t.Fatalf("timer resend = %+v", effs)
	}

	// A query whose store read raced the commit (StoreDecided=false but
	// controls pending) must answer committed from machine state — a
	// presumed-abort answer here would let the participant abort a
	// committed hand-off and lose the agent.
	effs = m.Step(protocol.QueryReceived{TxnID: txn, From: "p", StoreDecided: false})
	race := pick[protocol.SendMsg](effs)
	if len(race) != 1 || !race[0].Payload.(*protocol.StatusMsg).Committed {
		t.Fatalf("racing query answered %+v, want committed", effs)
	}

	// A refused control ack (participant store error) must not retire
	// the obligation: the resend timer keeps driving it.
	effs = m.Step(protocol.AckReceived{Kind: protocol.KindEnqueueCommitAck, TxnID: txn, From: "p", OK: false, Err: "io"})
	if len(effs) != 0 {
		t.Fatalf("refused ctl ack produced effects: %+v", effs)
	}
	if s := m.Stats(); s.CoordPendingCtl != 1 {
		t.Fatalf("refused ctl ack retired the obligation: %+v", s)
	}

	// First ack retires one participant; no decision GC yet.
	effs = m.Step(protocol.AckReceived{Kind: protocol.KindEnqueueCommitAck, TxnID: txn, From: "p", OK: true})
	if len(pick[protocol.ClearDecision](effs)) != 0 {
		t.Fatalf("decision cleared early: %+v", effs)
	}
	// Duplicate ack is ignored.
	if effs := m.Step(protocol.AckReceived{Kind: protocol.KindEnqueueCommitAck, TxnID: txn, From: "p", OK: true}); len(effs) != 0 {
		t.Fatalf("duplicate ack produced effects: %+v", effs)
	}
	// Last ack clears the decision record and the timer.
	effs = m.Step(protocol.AckReceived{Kind: protocol.KindRCECommitAck, TxnID: txn, From: "r", OK: true})
	if len(pick[protocol.ClearDecision](effs)) != 1 || len(pick[protocol.CancelTimer](effs)) != 1 {
		t.Fatalf("final ack effects = %+v", effs)
	}
	if s := m.Stats(); s.CoordPendingCtl != 0 {
		t.Fatalf("pending ctl after all acks: %+v", s)
	}
	// Fired timer for the settled transaction does nothing (one-shot,
	// self-healing).
	if effs := m.Step(protocol.TimerFired{ID: "ctl|" + txn}); len(effs) != 0 {
		t.Fatalf("stale ctl timer produced effects: %+v", effs)
	}

	// Forgotten transaction: presumed abort.
	effs = m.Step(protocol.QueryReceived{TxnID: txn, From: "p", StoreDecided: false})
	ans := pick[protocol.SendMsg](effs)
	if len(ans) != 1 || ans[0].Payload.(*protocol.StatusMsg).Committed {
		t.Fatalf("presumed abort answer = %+v", effs)
	}
}

func TestCoordinatorAbortNotifiesOnce(t *testing.T) {
	m := newReady("co")
	const txn = "co#2"
	m.Step(protocol.CoordPrepareRCE{TxnID: txn, Dest: "r", Ops: nil})
	effs := m.Step(protocol.CoordDecided{TxnID: txn, Commit: false, Parts: []protocol.Participant{{Node: "r", Kind: protocol.PartRCE}}})
	sends := pick[protocol.SendMsg](effs)
	if len(sends) != 1 || sends[0].Kind != protocol.KindRCEAbort {
		t.Fatalf("abort effects = %+v", effs)
	}
	if got := pick[protocol.ArmTimer](effs); len(got) != 0 {
		t.Fatalf("abort armed a retry timer: %+v", effs)
	}
	if s := m.Stats(); s.CoordActive != 0 || s.CoordPendingCtl != 0 {
		t.Fatalf("coordinator state lingers after abort: %+v", s)
	}
}

func TestParticipantStagedLifecycle(t *testing.T) {
	m := newReady("p")
	const txn = "co#3"

	effs := m.Step(protocol.PrepareReceived{TxnID: txn, EntryID: "a1", From: "co", Data: []byte("x")})
	stage := pick[protocol.StageEntry](effs)
	if len(stage) != 1 || stage[0].AckKind != protocol.KindEnqueuePrepareAck {
		t.Fatalf("prepare effects = %+v", effs)
	}
	effs = m.Step(protocol.StageOutcome{TxnID: txn, OK: true})
	if got := pick[protocol.ArmTimer](effs); len(got) != 1 || got[0].ID != "staged|"+txn {
		t.Fatalf("stage outcome effects = %+v", effs)
	}
	if s := m.Stats(); s.Staged != 1 {
		t.Fatalf("stats = %+v", s)
	}

	// The in-doubt timer queries the coordinator and re-arms.
	effs = m.Step(protocol.TimerFired{ID: "staged|" + txn})
	q := pick[protocol.SendMsg](effs)
	if len(q) != 1 || q[0].Kind != protocol.KindTxnQuery || q[0].To != "co" {
		t.Fatalf("staged timer effects = %+v", effs)
	}
	if len(pick[protocol.ArmTimer](effs)) != 1 {
		t.Fatalf("staged timer did not re-arm: %+v", effs)
	}

	// The commit control resolves the stage, acks with the outcome, and
	// cancels the query cycle.
	effs = m.Step(protocol.CtlReceived{TxnID: txn, From: "co", Commit: true})
	res := pick[protocol.ResolveStaged](effs)
	if len(res) != 1 || !res[0].Commit || res[0].AckTo != "co" || res[0].AckKind != protocol.KindEnqueueCommitAck {
		t.Fatalf("ctl effects = %+v", effs)
	}
	if len(pick[protocol.CancelTimer](effs)) != 1 {
		t.Fatalf("staged timer not canceled: %+v", effs)
	}
	if s := m.Stats(); s.Staged != 0 {
		t.Fatalf("staged state lingers: %+v", s)
	}
	// The timer that may already be in flight self-heals.
	if effs := m.Step(protocol.TimerFired{ID: "staged|" + txn}); len(effs) != 0 {
		t.Fatalf("stale staged timer produced effects: %+v", effs)
	}
}

func TestParticipantRefusesWhileRecovering(t *testing.T) {
	m := protocol.NewMachine(protocol.Config{Node: "p"})
	effs := m.Step(protocol.PrepareReceived{TxnID: "co#4", EntryID: "a", From: "co"})
	acks := pick[protocol.SendMsg](effs)
	if len(acks) != 1 || acks[0].Payload.(*protocol.AckMsg).OK {
		t.Fatalf("recovering prepare = %+v", effs)
	}
	effs = m.Step(protocol.RCEExecReceived{TxnID: "co#4", From: "co"})
	acks = pick[protocol.SendMsg](effs)
	if len(acks) != 1 || acks[0].Payload.(*protocol.AckMsg).OK {
		t.Fatalf("recovering exec = %+v", effs)
	}
}

func TestRCEBranchHappyPath(t *testing.T) {
	m := newReady("p")
	const txn = "co#5"
	ops := []*core.OpEntry{{Kind: core.OpResource, Op: "c"}}

	effs := m.Step(protocol.RCEExecReceived{TxnID: txn, From: "co", Ops: ops})
	if got := pick[protocol.ExecBranch](effs); len(got) != 1 {
		t.Fatalf("exec effects = %+v", effs)
	}
	// A duplicate request while executing is silently deduplicated.
	if effs := m.Step(protocol.RCEExecReceived{TxnID: txn, From: "co", Ops: ops}); len(effs) != 0 {
		t.Fatalf("duplicate exec produced effects: %+v", effs)
	}
	effs = m.Step(protocol.BranchPrepared{TxnID: txn, OK: true})
	acks := pick[protocol.SendMsg](effs)
	if len(acks) != 1 || !acks[0].Payload.(*protocol.AckMsg).OK {
		t.Fatalf("prepared effects = %+v", effs)
	}
	if got := pick[protocol.ArmTimer](effs); len(got) != 1 || got[0].ID != "branch|"+txn {
		t.Fatalf("stale-branch timer not armed: %+v", effs)
	}
	if got := pick[protocol.CountCompOps](effs); len(got) != 1 || got[0].N != 1 {
		t.Fatalf("comp ops not counted: %+v", effs)
	}
	// A duplicate request after prepare re-acks (lost ack).
	effs = m.Step(protocol.RCEExecReceived{TxnID: txn, From: "co", Ops: ops})
	if acks := pick[protocol.SendMsg](effs); len(acks) != 1 || !acks[0].Payload.(*protocol.AckMsg).OK {
		t.Fatalf("duplicate-after-prepare = %+v", effs)
	}

	// Commit control settles the parked transaction.
	effs = m.Step(protocol.CtlReceived{TxnID: txn, From: "co", Commit: true, RCE: true})
	if got := pick[protocol.CommitBranch](effs); len(got) != 1 {
		t.Fatalf("commit ctl effects = %+v", effs)
	}
	if acks := pick[protocol.SendMsg](effs); len(acks) != 1 || acks[0].Kind != protocol.KindRCECommitAck {
		t.Fatalf("commit ctl ack = %+v", effs)
	}
	if s := m.Stats(); s.BranchesPrepared != 0 {
		t.Fatalf("branch state lingers: %+v", s)
	}
}

func TestRCEStaleBranchQueriesCoordinator(t *testing.T) {
	m := newReady("p")
	const txn = "co#6"
	m.Step(protocol.RCEExecReceived{TxnID: txn, From: "co", Ops: nil})
	m.Step(protocol.BranchPrepared{TxnID: txn, OK: true})
	effs := m.Step(protocol.TimerFired{ID: "branch|" + txn})
	q := pick[protocol.SendMsg](effs)
	if len(q) != 1 || q[0].Kind != protocol.KindTxnQuery || q[0].To != "co" {
		t.Fatalf("stale branch timer = %+v", effs)
	}
	if len(pick[protocol.ArmTimer](effs)) != 1 {
		t.Fatalf("stale branch timer did not re-arm: %+v", effs)
	}
	// Presumed abort resolves it.
	effs = m.Step(protocol.StatusReceived{TxnID: txn, Committed: false})
	if got := pick[protocol.AbortBranch](effs); len(got) != 1 {
		t.Fatalf("status abort = %+v", effs)
	}
}

func TestRecoveredBranchResolution(t *testing.T) {
	m := newReady("p")
	const txn = "co#7"
	effs := m.Step(protocol.RecoveredBranch{TxnID: txn})
	q := pick[protocol.SendMsg](effs)
	if len(q) != 1 || q[0].Kind != protocol.KindTxnQuery {
		t.Fatalf("recovered branch = %+v", effs)
	}
	if s := m.Stats(); s.BranchesInDoubt != 1 {
		t.Fatalf("stats = %+v", s)
	}
	effs = m.Step(protocol.StatusReceived{TxnID: txn, Committed: true})
	rec := pick[protocol.ResolveBranchRecord](effs)
	if len(rec) != 1 || !rec[0].Commit {
		t.Fatalf("recovered resolution = %+v", effs)
	}
	if s := m.Stats(); s.BranchesInDoubt != 0 {
		t.Fatalf("in-doubt state lingers: %+v", s)
	}
}

func TestNotifierResendCycle(t *testing.T) {
	m := newReady("n")
	effs := m.Step(protocol.DoneRecorded{AgentID: "a1", Owner: "own"})
	if len(pick[protocol.ResendDone](effs)) != 1 || len(pick[protocol.ArmTimer](effs)) != 1 {
		t.Fatalf("done recorded = %+v", effs)
	}
	effs = m.Step(protocol.TimerFired{ID: "done|a1"})
	if len(pick[protocol.ResendDone](effs)) != 1 || len(pick[protocol.ArmTimer](effs)) != 1 {
		t.Fatalf("done timer = %+v", effs)
	}
	effs = m.Step(protocol.DoneAcked{AgentID: "a1"})
	if len(pick[protocol.DropDone](effs)) != 1 || len(pick[protocol.CancelTimer](effs)) != 1 {
		t.Fatalf("done acked = %+v", effs)
	}
	if effs := m.Step(protocol.TimerFired{ID: "done|a1"}); len(effs) != 0 {
		t.Fatalf("stale done timer = %+v", effs)
	}
	if s := m.Stats(); s.DonePending != 0 {
		t.Fatalf("done state lingers: %+v", s)
	}
}

func TestSelfCoordinatedStagedSkipsQueryCycle(t *testing.T) {
	m := newReady("p")
	// A transaction coordinated by this very node never queries itself.
	m.Step(protocol.PrepareReceived{TxnID: "p#9", EntryID: "a", From: "p", Data: nil})
	effs := m.Step(protocol.StageOutcome{TxnID: "p#9", OK: true})
	if len(pick[protocol.ArmTimer](effs)) != 0 {
		t.Fatalf("self-coordinated staged armed a query timer: %+v", effs)
	}
}

func TestCoordinatorOf(t *testing.T) {
	cases := map[string]string{
		"nodeA#42":    "nodeA",
		"a#b#7":       "a#b", // last separator wins
		"noseparator": "",
	}
	for id, want := range cases {
		if got := protocol.Coordinator(id); got != want {
			t.Errorf("Coordinator(%q) = %q, want %q", id, got, want)
		}
	}
}

func TestPopToTarget(t *testing.T) {
	mkLog := func() *core.Log {
		l := &core.Log{}
		if err := l.AppendSavepoint("base", map[string][]byte{}, core.StateLogging, true); err != nil {
			t.Fatal(err)
		}
		l.Append(&core.BeginStepEntry{Node: "n", Seq: 0})
		l.Append(&core.EndStepEntry{Node: "n", Seq: 0})
		if err := l.AppendSavepoint("target", map[string][]byte{}, core.StateLogging, true); err != nil {
			t.Fatal(err)
		}
		if err := l.AppendSpecialSavepoint("stale1", "target", true); err != nil {
			t.Fatal(err)
		}
		if err := l.AppendSpecialSavepoint("stale2", "target", true); err != nil {
			t.Fatal(err)
		}
		return l
	}

	// Target buried under stale savepoints: they are popped, target kept.
	l := mkLog()
	reached, popped := protocol.PopToTarget(l, "target")
	if !reached || popped != 2 {
		t.Errorf("reached=%v popped=%d, want true/2", reached, popped)
	}
	if !l.LastIsSavepoint("target") {
		t.Errorf("log after pops: %s", l)
	}

	// Target not in the trailing savepoint run: everything trailing is
	// popped (Figure 4b's savepoint pop), reached=false.
	l2 := mkLog()
	reached, popped = protocol.PopToTarget(l2, "base")
	if reached || popped != 3 {
		t.Errorf("reached=%v popped=%d, want false/3", reached, popped)
	}
	if _, ok := l2.Last().(*core.EndStepEntry); !ok {
		t.Errorf("log after pops: %s", l2)
	}

	// Non-savepoint tail: nothing popped.
	l3 := &core.Log{}
	l3.Append(&core.EndStepEntry{Node: "n"})
	reached, popped = protocol.PopToTarget(l3, "x")
	if reached || popped != 0 {
		t.Errorf("reached=%v popped=%d, want false/0", reached, popped)
	}
}

func TestPeekEOS(t *testing.T) {
	l := &core.Log{}
	if _, ok := protocol.PeekEOS(l); ok {
		t.Error("PeekEOS on empty log")
	}
	l.Append(&core.BeginStepEntry{Node: "n", Seq: 0})
	l.Append(&core.EndStepEntry{Node: "resnode", Seq: 0, HasMixed: true})
	if err := l.AppendSavepoint("sp", map[string][]byte{}, core.StateLogging, true); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendSpecialSavepoint("sp2", "sp", true); err != nil {
		t.Fatal(err)
	}
	eos, ok := protocol.PeekEOS(l)
	if !ok || eos.Node != "resnode" || !eos.HasMixed {
		t.Errorf("PeekEOS = %+v, %v", eos, ok)
	}
	// A BOS directly at the tail (malformed for peeking) yields no EOS.
	l2 := &core.Log{}
	l2.Append(&core.BeginStepEntry{Node: "n"})
	if _, ok := protocol.PeekEOS(l2); ok {
		t.Error("PeekEOS found EOS behind a BOS tail")
	}
}

func TestPickDestination(t *testing.T) {
	alts := []string{"alt1", "alt2"}
	for attempt := 1; attempt <= 3; attempt++ {
		if got := protocol.PickDestination("primary", alts, attempt); got != "primary" {
			t.Errorf("attempt %d: %q, want primary", attempt, got)
		}
	}
	if got := protocol.PickDestination("primary", alts, 4); got != "alt1" {
		t.Errorf("attempt 4: %q, want alt1", got)
	}
	if got := protocol.PickDestination("primary", alts, 5); got != "alt2" {
		t.Errorf("attempt 5: %q, want alt2", got)
	}
	if got := protocol.PickDestination("primary", alts, 6); got != "alt1" {
		t.Errorf("attempt 6: %q, want alt1 (wrap)", got)
	}
	// Without alternatives the primary is used forever.
	if got := protocol.PickDestination("primary", nil, 99); got != "primary" {
		t.Errorf("no alts: %q", got)
	}
}

func TestCompensationRouting(t *testing.T) {
	mixed := &core.EndStepEntry{Node: "res", HasMixed: true}
	plain := &core.EndStepEntry{Node: "res"}
	if got := protocol.CompensationDest(plain, false, "here"); got != "res" {
		t.Errorf("basic dest = %q", got)
	}
	if got := protocol.CompensationDest(plain, true, "here"); got != "here" {
		t.Errorf("optimized dest = %q (agent must stay)", got)
	}
	if got := protocol.CompensationDest(mixed, true, "here"); got != "res" {
		t.Errorf("optimized mixed dest = %q (agent must travel)", got)
	}
	if !protocol.CompensateLocally(plain, false, "here") {
		t.Error("basic mode must compensate locally")
	}
	if protocol.CompensateLocally(plain, true, "here") {
		t.Error("optimized non-mixed remote step must split")
	}
	if !protocol.CompensateLocally(plain, true, "res") {
		t.Error("step executed here must compensate locally")
	}

	aces, rces, err := protocol.SplitCompOps([]*core.OpEntry{
		{Kind: core.OpAgent, Op: "a1"},
		{Kind: core.OpResource, Op: "r1"},
		{Kind: core.OpAgent, Op: "a2"},
	})
	if err != nil || len(aces) != 2 || len(rces) != 1 {
		t.Errorf("split = %v / %v / %v", aces, rces, err)
	}
	if _, _, err := protocol.SplitCompOps([]*core.OpEntry{{Kind: core.OpMixed, Op: "m"}}); err == nil {
		t.Error("mixed entry accepted in non-mixed split")
	}
}

func TestPopLastStep(t *testing.T) {
	l := &core.Log{}
	l.Append(&core.BeginStepEntry{Node: "n", Seq: 0})
	l.Append(&core.OpEntry{Kind: core.OpAgent, Op: "op1"})
	l.Append(&core.OpEntry{Kind: core.OpResource, Op: "op2"})
	l.Append(&core.EndStepEntry{Node: "n", Seq: 0})
	eos, ops, err := protocol.PopLastStep(l)
	if err != nil || eos.Node != "n" {
		t.Fatalf("PopLastStep: %v, %v", eos, err)
	}
	// Reverse execution order: op2 before op1.
	if len(ops) != 2 || ops[0].Op != "op2" || ops[1].Op != "op1" {
		t.Errorf("ops = %v", ops)
	}
	if l.Len() != 0 {
		t.Errorf("log not fully popped: %d entries", l.Len())
	}
	// A log without an EOS at the tail is malformed.
	l2 := &core.Log{}
	l2.Append(&core.BeginStepEntry{Node: "n"})
	if _, _, err := protocol.PopLastStep(l2); err == nil {
		t.Error("malformed log accepted")
	}
}
