package protocol

import (
	"fmt"

	"repro/internal/core"
)

// Rollback routing: the pure decision half of the basic (Figure 4) and
// optimized (Figure 5) rollback mechanisms. The node driver owns the
// transactional execution — popping the log inside a compensation
// transaction, running compensating operations, shipping containers —
// but every *decision* (where the next compensation transaction runs,
// whether the agent travels, which entries ship as an RCE list, when
// the rollback is finished) is computed here, free of I/O, so the
// permutation and fuzz suites can exercise it directly.

// PopToTarget pops trailing savepoint entries that are not the
// rollback target; it reports whether the target savepoint is (now)
// the final log entry, and how many entries were popped. Non-target
// savepoints above the target belong to execution that is being rolled
// back and are discarded, generalizing Figure 4b's single "if (last
// log entry is savepoint) LOG.pop()" to stacked savepoints.
func PopToTarget(l *core.Log, spID string) (reached bool, popped int) {
	for {
		sp, ok := l.Last().(*core.SavepointEntry)
		if !ok {
			return false, popped
		}
		if sp.ID == spID {
			return true, popped
		}
		if _, err := l.Pop(); err != nil {
			return false, popped
		}
		popped++
	}
}

// PeekEOS returns the most recent end-of-step entry, skipping trailing
// savepoints.
func PeekEOS(l *core.Log) (*core.EndStepEntry, bool) {
	for i := l.Len() - 1; i >= 0; i-- {
		switch e := l.Entries[i].(type) {
		case *core.SavepointEntry:
			continue
		case *core.EndStepEntry:
			return e, true
		default:
			return nil, false
		}
	}
	return nil, false
}

// CompensationDest picks the node that runs the next compensation
// transaction for the step behind eos. Basic algorithm (Figure 4b):
// always the node where the step executed. Optimized (Figure 5a): the
// agent only travels when the step logged a mixed compensation entry —
// otherwise it stays at self and the resource compensation entries are
// shipped instead.
func CompensationDest(eos *core.EndStepEntry, optimized bool, self string) string {
	if optimized && !eos.HasMixed {
		return self
	}
	return eos.Node
}

// CompensateLocally reports whether the step's compensating operations
// run entirely inside the local transaction: the basic algorithm, a
// step with mixed entries (the agent was brought to the resource
// node), or a step that executed on this very node.
func CompensateLocally(eos *core.EndStepEntry, optimized bool, self string) bool {
	return !optimized || eos.HasMixed || eos.Node == self
}

// SplitCompOps groups a step's compensation entries for the Figure-5b
// split: agent compensation entries run locally, resource compensation
// entries ship to the resource node. A mixed entry in a step flagged
// non-mixed is a protocol violation.
func SplitCompOps(ops []*core.OpEntry) (aces, rces []*core.OpEntry, err error) {
	for _, op := range ops {
		switch op.Kind {
		case core.OpAgent:
			aces = append(aces, op)
		case core.OpResource:
			rces = append(rces, op)
		default:
			return nil, nil, fmt.Errorf("protocol: mixed entry in step flagged non-mixed")
		}
	}
	return aces, rces, nil
}

// PopLastStep pops one executed step off the log tail — the EOS entry,
// then the operation entries until (and including) the BOS — and
// returns the end-of-step entry plus the operation entries in reverse
// execution order, the order compensations must run in (§4.2).
func PopLastStep(l *core.Log) (*core.EndStepEntry, []*core.OpEntry, error) {
	last, err := l.Pop()
	if err != nil {
		return nil, nil, fmt.Errorf("protocol: compensate: %w", err)
	}
	eos, ok := last.(*core.EndStepEntry)
	if !ok {
		return nil, nil, fmt.Errorf("protocol: compensate: expected end-of-step entry, got %s", core.EntryName(last))
	}
	var ops []*core.OpEntry
	for {
		e, err := l.Pop()
		if err != nil {
			return nil, nil, fmt.Errorf("protocol: compensate: truncated step in log: %w", err)
		}
		if _, ok := e.(*core.BeginStepEntry); ok {
			return eos, ops, nil
		}
		op, ok := e.(*core.OpEntry)
		if !ok {
			return nil, nil, fmt.Errorf("protocol: compensate: unexpected %s inside step", core.EntryName(e))
		}
		ops = append(ops, op)
	}
}

// PickDestination returns the node to send an agent to, falling back
// to alternative nodes after repeated failed attempts (the
// fault-tolerant variant of [11] referenced in §4.3's discussion).
func PickDestination(primary string, alts []string, attempt int) string {
	if attempt <= 3 || len(alts) == 0 {
		return primary
	}
	return alts[(attempt-4)%len(alts)]
}
