package protocol

import (
	"repro/internal/core"
	"repro/internal/wire"
)

// Message kinds of the node protocol. The q.* family implements the
// two-phase hand-off of agent containers between input queues (the
// remote half of a distributed step/compensation transaction); the
// rce.* family ships resource-compensation-entry lists to the resource
// node in the optimized rollback (Figure 5b); txn.query resolves
// in-doubt participants after crashes (presumed abort).
const (
	KindEnqueuePrepare    = "q.prepare"
	KindEnqueuePrepareAck = "q.prepare.ack"
	KindEnqueueCommit     = "q.commit"
	KindEnqueueCommitAck  = "q.commit.ack"
	KindEnqueueAbort      = "q.abort"
	KindEnqueueAbortAck   = "q.abort.ack"

	KindTxnQuery  = "txn.query"
	KindTxnStatus = "txn.status"

	KindRCEExec      = "rce.exec"
	KindRCEExecAck   = "rce.exec.ack"
	KindRCECommit    = "rce.commit"
	KindRCECommitAck = "rce.commit.ack"
	KindRCEAbort     = "rce.abort"
	KindRCEAbortAck  = "rce.abort.ack"

	// Cross-transaction control-plane batches (PR-10): one coalesced
	// resend-timer fire per peer travels as one frame instead of one
	// frame per transaction. Receivers explode them back into the
	// per-transaction events of the kinds above.
	KindCtlBatch   = "ctl.batch"
	KindQueryBatch = "query.batch"
)

// PartKind distinguishes the two participant flavors of a distributed
// transaction — a staged queue entry and a prepared RCE branch — which
// use different control-message families.
type PartKind int

// Participant kinds.
const (
	// PartQueue is a destination queue holding a staged container
	// (q.commit / q.abort control messages).
	PartQueue PartKind = iota + 1
	// PartRCE is a resource node holding a prepared compensation branch
	// (rce.commit / rce.abort control messages).
	PartRCE
)

// Participant is one remote prepared participant of a distributed
// transaction, as tracked by the coordinator.
type Participant struct {
	Node string
	Kind PartKind
}

// ctlKind returns the control message kind for this participant and
// decision.
func (p Participant) ctlKind(commit bool) string {
	switch {
	case p.Kind == PartRCE && commit:
		return KindRCECommit
	case p.Kind == PartRCE:
		return KindRCEAbort
	case commit:
		return KindEnqueueCommit
	default:
		return KindEnqueueAbort
	}
}

// CtlKindOf maps an ack kind back to the (participant kind, commit)
// pair it acknowledges; ok=false for non-ctl ack kinds.
func CtlKindOf(ackKind string) (kind PartKind, commit, ok bool) {
	switch ackKind {
	case KindEnqueueCommitAck:
		return PartQueue, true, true
	case KindEnqueueAbortAck:
		return PartQueue, false, true
	case KindRCECommitAck:
		return PartRCE, true, true
	case KindRCEAbortAck:
		return PartRCE, false, true
	}
	return 0, false, false
}

// PrepareMsg asks the destination to durably stage a container
// insertion under the coordinator's transaction ID.
type PrepareMsg struct {
	TxnID   string
	EntryID string
	Data    []byte
}

// AckMsg acknowledges a protocol request. OK=false carries the refusal
// reason (e.g. node still recovering).
type AckMsg struct {
	TxnID string
	OK    bool
	Err   string
}

// CtlMsg carries commit/abort/query instructions for a transaction.
type CtlMsg struct {
	TxnID string
}

// StatusMsg answers a txn.query: Committed=false means abort (presumed
// abort: no decision record implies the transaction never committed).
type StatusMsg struct {
	TxnID     string
	Committed bool
}

// RCEExecMsg ships the resource compensation entries of one step to
// the node where the step executed, to be run inside the (distributed)
// compensation transaction identified by TxnID (§4.4.1).
type RCEExecMsg struct {
	TxnID string
	Ops   []*core.OpEntry
}

// CtlBatchItem is one coalesced commit/abort control: semantically
// identical to a CtlMsg of kind ctlKind — RCE selects the rce.* family,
// Commit the commit/abort verdict.
type CtlBatchItem struct {
	TxnID  string
	RCE    bool
	Commit bool
}

// CtlBatchMsg carries every control the per-peer resend timer owed one
// participant at fire time as a single frame (kind ctl.batch). The
// receiver applies the items in order as independent CtlReceived events.
type CtlBatchMsg struct {
	Items []CtlBatchItem
}

// QueryBatchMsg carries the coalesced in-doubt queries of one per-peer
// timer fire to a single coordinator (kind query.batch); each entry is
// one txn.query.
type QueryBatchMsg struct {
	TxnIDs []string
}

var _ = registerMessages()

// registerMessages keeps the wire names these payloads had when they
// lived in internal/node, so encoded streams stay compatible.
func registerMessages() struct{} {
	wire.RegisterName("node.enqueuePrepare", &PrepareMsg{})
	wire.RegisterName("node.ack", &AckMsg{})
	wire.RegisterName("node.txnCtl", &CtlMsg{})
	wire.RegisterName("node.txnStatus", &StatusMsg{})
	wire.RegisterName("node.rceExec", &RCEExecMsg{})
	wire.RegisterName("node.ctlBatch", &CtlBatchMsg{})
	wire.RegisterName("node.queryBatch", &QueryBatchMsg{})
	return struct{}{}
}
