package protocol_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/protocol"
)

// FuzzProtocolEvents drives random event sequences — including orders a
// correct driver would never produce — through the machine and asserts:
// no panics, only well-formed effects (parseable timer IDs, known
// message kinds, non-nil payloads), the driver contract on branch
// settles (a Commit/AbortBranch only for a parked transaction, plus the
// defensive stray-completion abort), and the terminal invariant that
// once every in-flight execution completes and every transaction
// receives a verdict, no branch state survives — every prepared branch
// resolves.
func FuzzProtocolEvents(f *testing.F) {
	f.Add([]byte{0x01, 0x12, 0x23, 0x34, 0x45})
	f.Add([]byte{0x20, 0x30, 0x50, 0x60, 0x70, 0x80})
	f.Add([]byte("chaos-seed-2"))
	f.Add([]byte{0x00, 0xff, 0x10, 0x41, 0x52, 0x63, 0x74, 0x85, 0x96})
	f.Fuzz(func(t *testing.T, data []byte) {
		m := protocol.NewMachine(protocol.Config{Node: "self"})
		model := newDriverModel(t)
		// Half the runs exercise the recovering (not-ready) phase first.
		if len(data) > 0 && data[0]%2 == 0 {
			model.apply(m.Step(protocol.ReadyReached{}))
		}

		txns := []string{"co#1", "co#2", "self#3", "peer#4"}
		agents := []string{"a1", "a2"}
		ops := []*core.OpEntry{{Kind: core.OpResource, Op: "c"}}
		for i := 0; i+1 < len(data); i += 2 {
			txn := txns[int(data[i+1])%len(txns)]
			ag := agents[int(data[i+1])%len(agents)]
			switch data[i] % 16 {
			case 0:
				model.apply(m.Step(protocol.CoordPrepareEnqueue{TxnID: txn, Dest: "peer", EntryID: ag, Data: []byte("d")}))
			case 1:
				model.apply(m.Step(protocol.CoordPrepareRCE{TxnID: txn, Dest: "peer", Ops: ops}))
			case 2:
				model.apply(m.Step(protocol.CoordDecided{TxnID: txn, Commit: data[i+1]%2 == 0, Parts: []protocol.Participant{
					{Node: "peer", Kind: protocol.PartQueue},
				}}))
			case 3:
				kinds := []string{
					protocol.KindEnqueuePrepareAck, protocol.KindRCEExecAck,
					protocol.KindEnqueueCommitAck, protocol.KindEnqueueAbortAck,
					protocol.KindRCECommitAck, protocol.KindRCEAbortAck,
				}
				model.apply(m.Step(protocol.AckReceived{Kind: kinds[int(data[i+1])%len(kinds)], TxnID: txn, From: "peer", OK: true}))
			case 4:
				model.apply(m.Step(protocol.QueryReceived{TxnID: txn, From: "peer", StoreDecided: data[i+1]%3 == 0}))
			case 5:
				model.apply(m.Step(protocol.StatusReceived{TxnID: txn, Committed: data[i+1]%2 == 0}))
			case 6:
				model.apply(m.Step(protocol.PrepareReceived{TxnID: txn, EntryID: ag, From: "peer", Data: []byte("d")}))
			case 7:
				model.apply(m.Step(protocol.StageOutcome{TxnID: txn, OK: data[i+1]%2 == 0}))
			case 8:
				model.apply(m.Step(protocol.CtlReceived{TxnID: txn, From: "peer", Commit: data[i+1]%2 == 0, RCE: data[i+1]%3 == 0}))
			case 9:
				model.apply(m.Step(protocol.RCEExecReceived{TxnID: txn, From: "peer", Ops: ops}))
			case 10:
				// Execution completion honouring the driver contract
				// when possible, deliberately stray otherwise.
				if model.outstanding[txn] > 0 {
					model.outstanding[txn]--
					if data[i+1]%4 == 0 {
						model.apply(m.Step(protocol.BranchPrepared{TxnID: txn, OK: false, Err: "exec failed"}))
					} else {
						model.parked[txn] = true
						model.apply(m.Step(protocol.BranchPrepared{TxnID: txn, OK: true}))
					}
				} else {
					model.apply(m.Step(protocol.BranchPrepared{TxnID: txn, OK: true}))
				}
			case 11:
				model.apply(m.Step(protocol.DoneRecorded{AgentID: ag, Owner: "owner"}))
			case 12:
				model.apply(m.Step(protocol.DoneAcked{AgentID: ag}))
			case 13:
				model.apply(m.Step(protocol.RecoveredStaged{TxnID: txn}))
			case 14:
				model.apply(m.Step(protocol.RecoveredBranch{TxnID: txn}))
			case 15:
				// Fire an armed timer (or a stale/garbage one).
				id := model.anyTimer()
				if id == "" {
					id = fmt.Sprintf("garbage|%s", txn)
				}
				model.apply(m.Step(protocol.TimerFired{ID: id}))
			}
		}

		// Quiescence drive: complete every outstanding execution, then
		// deliver a final verdict for every transaction and agent ack.
		model.apply(m.Step(protocol.ReadyReached{}))
		for _, txn := range txns {
			for model.outstanding[txn] > 0 {
				model.outstanding[txn]--
				model.parked[txn] = true
				model.apply(m.Step(protocol.BranchPrepared{TxnID: txn, OK: true}))
			}
		}
		for _, txn := range txns {
			model.apply(m.Step(protocol.StatusReceived{TxnID: txn, Committed: false}))
			model.apply(m.Step(protocol.AckReceived{Kind: protocol.KindEnqueueCommitAck, TxnID: txn, From: "peer", OK: true}))
			model.apply(m.Step(protocol.AckReceived{Kind: protocol.KindRCECommitAck, TxnID: txn, From: "peer", OK: true}))
		}
		for _, ag := range agents {
			model.apply(m.Step(protocol.DoneAcked{AgentID: ag}))
		}

		st := m.Stats()
		if st.BranchesExec != 0 || st.BranchesPrepared != 0 || st.BranchesInDoubt != 0 {
			t.Fatalf("branch state survives quiescence: %+v", st)
		}
		if st.Staged != 0 {
			t.Fatalf("staged state survives verdicts: %+v", st)
		}
		if st.DonePending != 0 {
			t.Fatalf("done state survives acks: %+v", st)
		}
		for txn, p := range model.parked {
			if p {
				t.Fatalf("parked branch %s never settled", txn)
			}
		}
		// Every armed timer must be safe to fire on dead state: no
		// re-arm, no new sends for settled transactions.
		for _, id := range model.timerIDs() {
			effs := m.Step(protocol.TimerFired{ID: id})
			for _, eff := range effs {
				if _, ok := eff.(protocol.ArmTimer); ok {
					// A re-arm is only legal for state that still
					// exists; nothing exists after quiescence.
					t.Fatalf("timer %s re-armed on dead state: %+v", id, effs)
				}
			}
		}
	})
}

// driverModel tracks the driver-side obligations the effects create, and
// validates effect well-formedness as they stream out.
type driverModel struct {
	t           *testing.T
	outstanding map[string]int  // ExecBranch effects awaiting completion
	parked      map[string]bool // prepared branch transactions parked
	timers      map[string]bool // armed timer IDs
}

func newDriverModel(t *testing.T) *driverModel {
	return &driverModel{
		t:           t,
		outstanding: make(map[string]int),
		parked:      make(map[string]bool),
		timers:      make(map[string]bool),
	}
}

var knownKinds = map[string]bool{
	protocol.KindEnqueuePrepare: true, protocol.KindEnqueuePrepareAck: true,
	protocol.KindEnqueueCommit: true, protocol.KindEnqueueCommitAck: true,
	protocol.KindEnqueueAbort: true, protocol.KindEnqueueAbortAck: true,
	protocol.KindTxnQuery: true, protocol.KindTxnStatus: true,
	protocol.KindRCEExec: true, protocol.KindRCEExecAck: true,
	protocol.KindRCECommit: true, protocol.KindRCECommitAck: true,
	protocol.KindRCEAbort: true, protocol.KindRCEAbortAck: true,
	protocol.KindCtlBatch: true, protocol.KindQueryBatch: true,
}

func (d *driverModel) apply(effs []protocol.Effect) {
	for _, eff := range effs {
		switch e := eff.(type) {
		case protocol.SendMsg:
			if !knownKinds[e.Kind] {
				d.t.Fatalf("send with unknown kind %q", e.Kind)
			}
			if e.To == "" || e.Payload == nil {
				d.t.Fatalf("malformed send: %+v", e)
			}
		case protocol.ExecBranch:
			d.outstanding[e.TxnID]++
		case protocol.CommitBranch:
			if !d.parked[e.TxnID] {
				d.t.Fatalf("CommitBranch for unparked txn %s", e.TxnID)
			}
			d.parked[e.TxnID] = false
		case protocol.AbortBranch:
			// Legal for parked transactions and as the defensive answer
			// to a stray completion (the driver treats unknown txns as a
			// no-op), so no parked precondition.
			d.parked[e.TxnID] = false
		case protocol.ArmTimer:
			if !validTimerID(e.ID) || e.D <= 0 {
				d.t.Fatalf("malformed ArmTimer: %+v", e)
			}
			d.timers[e.ID] = true
		case protocol.CancelTimer:
			if !validTimerID(e.ID) {
				d.t.Fatalf("malformed CancelTimer: %+v", e)
			}
			delete(d.timers, e.ID)
		case protocol.StageEntry:
			if e.AckKind != protocol.KindEnqueuePrepareAck {
				d.t.Fatalf("StageEntry with ack kind %q", e.AckKind)
			}
		case protocol.ResolveStaged:
			if e.AckTo != "" && !knownKinds[e.AckKind] {
				d.t.Fatalf("ResolveStaged with unknown ack kind %q", e.AckKind)
			}
		case protocol.CountCompOps:
			if e.N < 0 {
				d.t.Fatalf("negative comp-op count: %+v", e)
			}
		}
	}
}

func validTimerID(id string) bool {
	i := strings.Index(id, "|")
	return i > 0 && i < len(id)-1
}

func (d *driverModel) anyTimer() string {
	for id := range d.timers {
		return id
	}
	return ""
}

func (d *driverModel) timerIDs() []string {
	out := make([]string, 0, len(d.timers))
	for id := range d.timers {
		out = append(out, id)
	}
	return out
}
