// Package protocol is the event-driven core of the distributed
// protocols in §3–§4 of the paper: the step-transaction two-phase
// commit of the queue hand-off, remote compensation via RCE lists
// (Figure 5b), presumed-abort in-doubt resolution, and the reliable
// completion-notification cycle.
//
// Everything here is a pure, single-threaded state machine. A
// transition consumes exactly one Event — an inbound protocol message,
// a timer firing, a local decision of the worker (begin / decide /
// execution finished), or a recovery replay — and returns the list of
// Effects the driver must apply: outbound messages, stable-store
// writes, prepared-transaction commits/aborts, timer arm/cancel, and
// metric counts. The machine never starts a goroutine, owns no
// channel, and performs no I/O; facts that live in stable storage (the
// presumed-abort decision record) are passed in on the event by the
// driver. That makes every protocol decision — including the PR-4
// chaos catch, an abort overtaking a lock-blocked RCE execution — an
// ordinary state edge that permutation tests and fuzzers can cover
// without a cluster, a store, or a clock.
//
// The driver (internal/node) serializes Step calls, translates wire
// messages to events, applies effects in order, and runs every timer
// on one network.TimerWheel per node, so steady-state goroutine count
// is O(workers) rather than O(in-flight transactions).
package protocol

import (
	"repro/internal/core"

	"strings"
	"time"
)

// Config are the machine's only tunables. The zero value of either
// duration falls back to a sane default so a zero-config machine is
// usable in tests.
type Config struct {
	// Node is the local node's network name (transaction IDs it
	// coordinates are "<Node>#<seq>").
	Node string
	// RetryInterval is the cadence of control-message resends, in-doubt
	// queries and completion-notification resends (the old dispatcher
	// tick, RetryDelay*5 in node terms).
	RetryInterval time.Duration
	// StaleAfter is how long a prepared RCE branch may sit undecided
	// before the participant starts querying its coordinator
	// (2*AckTimeout in node terms).
	StaleAfter time.Duration
	// NoCtlBatch restores the per-transaction control-plane timers of
	// PR ≤9 (one ctl-resend/in-doubt-query/notification timer per txn,
	// eagerly canceled). The default false runs the coalesced
	// per-(peer, class) scheduler of timers.go. A/B comparisons and the
	// loadgen -noctlbatch flag only.
	NoCtlBatch bool
}

func (c *Config) fillDefaults() {
	if c.RetryInterval <= 0 {
		c.RetryInterval = 50 * time.Millisecond
	}
	if c.StaleAfter <= 0 {
		c.StaleAfter = 4 * time.Second
	}
}

// Machine holds the protocol state of one node across all three roles:
// coordinator of its own distributed transactions, participant in
// queue hand-offs, and RCE/rollback participant (Figure 5b resource
// side), plus the completion notifier. Step is the single transition
// function; it must be externally serialized (the driver guarantees
// one Step at a time) and is otherwise a pure state+effects fold.
type Machine struct {
	cfg   Config
	ready bool

	coord    map[string]*coordTxn // transactions this node coordinates
	staged   map[string]string    // staged queue txn → coordinator node
	branches map[string]*branch   // RCE branch per transaction
	done     map[string]string    // undelivered completion: agent → owner

	// scheds holds the coalesced per-(class, peer) timer slots (see
	// timers.go), keyed by their wheel timer ID "<class>|<peer>".
	scheds map[string]*peerSched

	transitions int64
}

// NewMachine creates an empty machine for one node.
func NewMachine(cfg Config) *Machine {
	cfg.fillDefaults()
	return &Machine{
		cfg:      cfg,
		coord:    make(map[string]*coordTxn),
		staged:   make(map[string]string),
		branches: make(map[string]*branch),
		done:     make(map[string]string),
		scheds:   make(map[string]*peerSched),
	}
}

// Event is one protocol input. Events are plain data; the driver
// enriches them with the stable-store facts a decision needs (e.g.
// QueryReceived.StoreDecided) so the machine itself stays I/O-free.
type Event interface{ isEvent() }

// Effect is one output the driver must apply. Effects are emitted in
// application order; all of them are either idempotent or guarded by
// machine state, so a crash between effect applications is recovered
// by the protocol's own retry/presumed-abort cycle.
type Effect interface{ isEffect() }

// --- events -----------------------------------------------------------

// CoordPrepareEnqueue opens the coordinator decision for TxnID (queries
// now answer "undecided") and ships the prepare of a queue hand-off.
type CoordPrepareEnqueue struct {
	TxnID   string
	Dest    string
	EntryID string
	Data    []byte
}

// CoordPrepareRCE opens the coordinator decision for TxnID and ships a
// resource-compensation-entry list to the resource node (Figure 5b).
type CoordPrepareRCE struct {
	TxnID string
	Dest  string
	Ops   []*core.OpEntry
}

// CoordDecided closes the coordinator decision: Commit=true after the
// local commit (with the decision record durably in the store) drives
// the participants to commit reliably; Commit=false notifies them of
// the abort once (best effort — presumed abort covers the loss).
type CoordDecided struct {
	TxnID  string
	Commit bool
	Parts  []Participant
}

// AckReceived is any protocol acknowledgement. Kind is the ack message
// kind (KindEnqueuePrepareAck, KindRCECommitAck, ...).
type AckReceived struct {
	Kind  string
	TxnID string
	From  string
	OK    bool
	Err   string
}

// QueryReceived is a participant's in-doubt query for a transaction
// this node coordinated. StoreDecided is the driver-supplied fact
// whether the decision record exists in stable storage.
type QueryReceived struct {
	TxnID        string
	From         string
	StoreDecided bool
}

// StatusReceived is a coordinator's answer to an in-doubt query:
// Committed=false means presumed abort.
type StatusReceived struct {
	TxnID     string
	Committed bool
}

// PrepareReceived is the participant half of the queue hand-off: the
// coordinator asks this node to durably stage a container insertion.
type PrepareReceived struct {
	TxnID   string
	EntryID string
	From    string
	Data    []byte
}

// StageOutcome reports the driver's attempt to stage the entry
// (queue.Prepare). Only an OK outcome makes the transaction in-doubt.
type StageOutcome struct {
	TxnID string
	OK    bool
}

// CtlReceived is a commit/abort control message from the coordinator,
// for a staged queue entry (RCE=false) or an RCE branch (RCE=true).
type CtlReceived struct {
	TxnID  string
	From   string
	Commit bool
	RCE    bool
}

// RCEExecReceived asks this node to execute a resource-compensation
// list inside a prepared branch of the coordinator's compensation
// transaction (Figure 5b, resource-node half).
type RCEExecReceived struct {
	TxnID string
	From  string
	Ops   []*core.OpEntry
}

// BranchPrepared reports the driver's branch execution: OK=true means
// the branch transaction is durably prepared and parked; OK=false
// means it failed and was already aborted by the driver.
type BranchPrepared struct {
	TxnID string
	OK    bool
	Err   string
}

// DoneRecorded announces a durably recorded completion notification
// that must reach Owner reliably.
type DoneRecorded struct {
	AgentID string
	Owner   string
}

// DoneAcked is the owner's acknowledgement of a completion
// notification.
type DoneAcked struct{ AgentID string }

// RecoveredStaged replays a crash-surviving staged queue entry whose
// coordinator is remote; the machine re-enters the in-doubt query
// cycle for it.
type RecoveredStaged struct{ TxnID string }

// RecoveredBranch replays a crash-surviving prepared branch record
// (no live transaction); resolution goes through the branch record.
type RecoveredBranch struct{ TxnID string }

// ReadyReached marks the end of recovery: prepares and RCE executions
// are accepted from now on.
type ReadyReached struct{}

// TimerFired delivers an expired timer previously armed via ArmTimer.
type TimerFired struct{ ID string }

func (CoordPrepareEnqueue) isEvent() {}
func (CoordPrepareRCE) isEvent()     {}
func (CoordDecided) isEvent()        {}
func (AckReceived) isEvent()         {}
func (QueryReceived) isEvent()       {}
func (StatusReceived) isEvent()      {}
func (PrepareReceived) isEvent()     {}
func (StageOutcome) isEvent()        {}
func (CtlReceived) isEvent()         {}
func (RCEExecReceived) isEvent()     {}
func (BranchPrepared) isEvent()      {}
func (DoneRecorded) isEvent()        {}
func (DoneAcked) isEvent()           {}
func (RecoveredStaged) isEvent()     {}
func (RecoveredBranch) isEvent()     {}
func (ReadyReached) isEvent()        {}
func (TimerFired) isEvent()          {}

// --- effects ----------------------------------------------------------

// SendMsg transmits one protocol message; Payload is one of the
// message structs of this package (fire and forget — loss is covered
// by retries and presumed abort).
type SendMsg struct {
	To      string
	Kind    string
	Payload any
}

// DeliverAck routes an acknowledgement to the local worker blocked on
// it (the driver's waiter plumbing).
type DeliverAck struct {
	Kind  string
	TxnID string
	OK    bool
	Err   string
}

// StageEntry asks the driver to durably stage the container insertion
// (queue.Prepare), acknowledge with the real outcome under AckKind,
// and feed the result back as a StageOutcome event.
type StageEntry struct {
	TxnID   string
	EntryID string
	From    string
	Data    []byte
	AckKind string
}

// ResolveStaged commits (Commit=true) or aborts a staged queue entry.
// When AckTo is non-empty the driver acknowledges with the operation's
// outcome under AckKind. Both queue operations are idempotent.
type ResolveStaged struct {
	TxnID   string
	Commit  bool
	AckTo   string
	AckKind string
}

// CommitBranch / AbortBranch settle the live prepared branch
// transaction parked by the driver for TxnID.
type CommitBranch struct{ TxnID string }

// AbortBranch aborts the parked branch transaction (releasing its
// resource locks).
type AbortBranch struct{ TxnID string }

// ResolveBranchRecord replays or drops the crash-surviving durable
// branch record for TxnID (txn.Manager.ResolveBranch).
type ResolveBranchRecord struct {
	TxnID  string
	Commit bool
}

// ExecBranch asks the driver to execute the compensation list inside a
// fresh branch transaction (off the dispatcher — compensations wait on
// resource locks), park the prepared transaction, and feed the result
// back as a BranchPrepared event.
type ExecBranch struct {
	TxnID   string
	ReplyTo string
	Ops     []*core.OpEntry
}

// ClearDecision garbage-collects the presumed-abort decision record:
// every participant acknowledged the commit.
type ClearDecision struct{ TxnID string }

// ResendDone (re)sends the durable completion record for AgentID to
// its owner.
type ResendDone struct{ AgentID string }

// DropDone deletes the durable completion record (owner acked).
type DropDone struct{ AgentID string }

// ArmTimer schedules (or re-schedules) the named timer on the node's
// timer wheel.
type ArmTimer struct {
	ID string
	D  time.Duration
}

// CancelTimer disarms the named timer.
type CancelTimer struct{ ID string }

// CountCompOps bumps the compensating-operations metric (the branch
// prepared successfully).
type CountCompOps struct{ N int64 }

func (SendMsg) isEffect()             {}
func (DeliverAck) isEffect()          {}
func (StageEntry) isEffect()          {}
func (ResolveStaged) isEffect()       {}
func (CommitBranch) isEffect()        {}
func (AbortBranch) isEffect()         {}
func (ResolveBranchRecord) isEffect() {}
func (ExecBranch) isEffect()          {}
func (ClearDecision) isEffect()       {}
func (ResendDone) isEffect()          {}
func (DropDone) isEffect()            {}
func (ArmTimer) isEffect()            {}
func (CancelTimer) isEffect()         {}
func (CountCompOps) isEffect()        {}

// --- transition dispatch ----------------------------------------------

// Step consumes one event and returns the effects to apply, in order.
// It is the package's only mutating entry point and must be serialized
// by the caller.
func (m *Machine) Step(ev Event) []Effect {
	m.transitions++
	switch e := ev.(type) {
	case CoordPrepareEnqueue:
		return m.coordPrepareEnqueue(e)
	case CoordPrepareRCE:
		return m.coordPrepareRCE(e)
	case CoordDecided:
		return m.coordDecided(e)
	case AckReceived:
		return m.ackReceived(e)
	case QueryReceived:
		return m.queryReceived(e)
	case StatusReceived:
		return m.resolve(e.TxnID, e.Committed, nil)
	case PrepareReceived:
		return m.prepareReceived(e)
	case StageOutcome:
		return m.stageOutcome(e)
	case CtlReceived:
		return m.ctlReceived(e)
	case RCEExecReceived:
		return m.rceExecReceived(e)
	case BranchPrepared:
		return m.branchPrepared(e)
	case DoneRecorded:
		return m.doneRecorded(e)
	case DoneAcked:
		return m.doneAcked(e)
	case RecoveredStaged:
		return m.recoveredStaged(e)
	case RecoveredBranch:
		return m.recoveredBranch(e)
	case ReadyReached:
		m.ready = true
		return nil
	case TimerFired:
		return m.timerFired(e)
	default:
		return nil
	}
}

// Transitions returns the number of Step calls processed.
func (m *Machine) Transitions() int64 { return m.transitions }

// Stats is a snapshot of the machine's per-role state sizes; tests and
// invariant checkers use it to assert terminal conditions (e.g. every
// prepared branch resolved).
type Stats struct {
	CoordActive      int // coordinator decisions still open
	CoordPendingCtl  int // decided commits awaiting participant acks
	Staged           int // in-doubt staged queue entries tracked
	BranchesExec     int // RCE executions in flight (incl. poisoned)
	BranchesPrepared int // prepared branches awaiting decision
	BranchesInDoubt  int // recovered branch records awaiting verdict
	DonePending      int // completion notifications awaiting ack
}

// Stats reports the current state sizes.
func (m *Machine) Stats() Stats {
	var s Stats
	for _, c := range m.coord {
		if c.active {
			s.CoordActive++
		}
		if len(c.pending) > 0 {
			s.CoordPendingCtl++
		}
	}
	s.Staged = len(m.staged)
	for _, b := range m.branches {
		switch b.state {
		case branchExecuting, branchExecutingAborted:
			s.BranchesExec++
		case branchPrepared:
			s.BranchesPrepared++
		case branchInDoubt:
			s.BranchesInDoubt++
		}
	}
	s.DonePending = len(m.done)
	return s
}

// Coordinator extracts the coordinator node from a transaction ID
// ("node#seq"); it returns "" for IDs without a separator.
func Coordinator(txnID string) string {
	if i := strings.LastIndex(txnID, "#"); i >= 0 {
		return txnID[:i]
	}
	return ""
}

// --- timer identifiers ------------------------------------------------

// Timer ID namespaces. IDs are "<kind>|<txn or agent id>".
const (
	timerCtl    = "ctl"    // coordinator ctl-resend cycle per txn
	timerStaged = "staged" // participant in-doubt query per staged txn
	timerBranch = "branch" // participant stale-branch query per branch
	timerDone   = "done"   // owner notification resend per agent
)

func timerID(kind, id string) string { return kind + "|" + id }

// splitTimerID splits "<kind>|<id>"; ok=false for malformed IDs.
func splitTimerID(tid string) (kind, id string, ok bool) {
	i := strings.Index(tid, "|")
	if i < 0 {
		return "", "", false
	}
	return tid[:i], tid[i+1:], true
}

// timerFired dispatches an expired timer to its role. A timer whose
// subject is gone (resolved between arm and fire) produces no effects
// and is not re-armed — timers are one-shot and self-healing.
func (m *Machine) timerFired(e TimerFired) []Effect {
	kind, id, ok := splitTimerID(e.ID)
	if !ok {
		return nil
	}
	switch kind {
	case timerCtl:
		return m.ctlTimer(id)
	case timerStaged:
		return m.stagedTimer(id)
	case timerBranch:
		return m.branchTimer(id)
	case timerDone:
		return m.doneTimer(id)
	case timerPeerCtl:
		return m.peerCtlTimer(id)
	case timerPeerQuery:
		return m.peerQueryTimer(id)
	case timerPeerStale:
		return m.peerStaleTimer(id)
	case timerPeerDone:
		return m.peerDoneTimer(id)
	default:
		return nil
	}
}
