package protocol

import "time"

// Coalesced control-plane timers (PR-10). The per-transaction resend and
// in-doubt-query timers of PR ≤9 arm one wheel timer per in-flight
// transaction: 10k in-flight transactions mean 10k armed timers and 10k
// single-message resend frames per interval — exactly the ack/resend
// saturation the PR-6 in-flight sweep measured. The batch scheduler
// replaces them with one timer per (peer, class): every obligation of
// one class headed to the same peer shares a timer and drains as one
// multi-transaction frame, so armed timers scale O(peers) and resend
// traffic O(peers · classes) instead of O(txns).
//
// Mechanics: each (class, peer) slot keeps a two-bucket due-list. An
// enqueue lands in `due` and arms the wheel timer when the slot is idle,
// in `pending` when a timer is already ticking. A fire drains `due`,
// promotes `pending`, filters every drained entry against the
// authoritative role maps (coord/staged/branches/done) and emits one
// batched frame for the survivors — a single survivor goes out as the
// legacy per-transaction message, so mixed-version peers and the
// unbatched receive path stay byte-identical. Survivors re-enqueue
// (re-arming the timer); an entry therefore fires between 1× and 2× its
// interval after enqueue, never early.
//
// Removal is lazy: resolving a transaction does NOT cancel anything.
// The next fire filters the dead entry out, and a slot whose buckets
// empty is deleted without re-arming — so a quiescent machine goes
// silent within one interval, which is what the fuzz quiescence
// invariant (fire every armed timer, demand no re-arm) pins.
//
// Timer IDs are "<class>|<peer>". Classes (distinct from the per-txn
// kinds so legacy and batch IDs can never collide):
const (
	// timerPeerCtl coalesces the coordinator's commit-control resends
	// per participant peer (replaces timerCtl).
	timerPeerCtl = "pctl"
	// timerPeerQuery coalesces in-doubt queries — staged entries and
	// recovered/stale branches — per coordinator peer (replaces
	// timerStaged and the query cadence of timerBranch).
	timerPeerQuery = "pquery"
	// timerPeerStale coalesces the StaleAfter threshold of prepared
	// branches per coordinator peer; a fire hands the still-prepared
	// branches to timerPeerQuery (replaces the first timerBranch arm).
	timerPeerStale = "pstale"
	// timerPeerDone coalesces completion-notification resends per owner
	// peer (replaces timerDone).
	timerPeerDone = "pdone"
)

// dueEntry is one coalesced timer obligation: the transaction (or agent)
// it tracks plus a class-specific discriminator.
type dueEntry struct {
	id  string // txn ID (ctl/query/stale) or agent ID (done)
	aux string // ctl: participant kind; query: entry source
}

// dueEntry aux values.
const (
	auxQueue  = "q"      // ctl entry drives a staged-queue participant
	auxRCE    = "rce"    // ctl entry drives an RCE-branch participant
	auxStaged = "staged" // query entry tracks a staged queue entry
	auxBranch = "branch" // query entry tracks a prepared/in-doubt branch
)

func partAux(k PartKind) string {
	if k == PartRCE {
		return auxRCE
	}
	return auxQueue
}

func auxPart(aux string) PartKind {
	if aux == auxRCE {
		return PartRCE
	}
	return PartQueue
}

// peerSched is the two-bucket due-list of one (class, peer) slot.
type peerSched struct {
	armed   bool
	due     []dueEntry // drained by the next fire
	pending []dueEntry // enqueued while armed; promoted on fire
	queued  map[dueEntry]struct{}
}

// batch reports whether the coalesced control-plane timers are active
// (the default; Config.NoCtlBatch restores the per-txn timers).
func (m *Machine) batch() bool { return !m.cfg.NoCtlBatch }

// enqueue registers one obligation on the (class, peer) slot, arming the
// shared wheel timer when the slot was idle. Duplicate entries (already
// queued in either bucket) are no-ops, so retry-pressure events cannot
// multiply timer load.
func (m *Machine) enqueue(class, peer string, e dueEntry, interval time.Duration) []Effect {
	key := timerID(class, peer)
	ps := m.scheds[key]
	if ps == nil {
		ps = &peerSched{queued: make(map[dueEntry]struct{})}
		m.scheds[key] = ps
	}
	if _, ok := ps.queued[e]; ok {
		return nil
	}
	ps.queued[e] = struct{}{}
	if !ps.armed {
		ps.armed = true
		ps.due = append(ps.due, e)
		return []Effect{ArmTimer{ID: key, D: interval}}
	}
	ps.pending = append(ps.pending, e)
	return nil
}

// takeDue drains the due bucket of one (class, peer) slot — the entries
// enqueued at least one full interval ago — returning only the entries
// still live, and promotes the still-live pending entries into the due
// bucket. Dead entries in either bucket are dropped on the spot, so a
// fire on fully dead state leaves the slot empty and nothing re-arms
// (the fuzz quiescence invariant). The caller emits for the survivors
// and re-enqueues them (which re-arms); rearm covers the promoted
// bucket when no survivor did.
func (m *Machine) takeDue(class, peer string, live func(dueEntry) bool) []dueEntry {
	ps := m.scheds[timerID(class, peer)]
	if ps == nil {
		return nil
	}
	var fired []dueEntry
	for _, e := range ps.due {
		delete(ps.queued, e)
		if live(e) {
			fired = append(fired, e)
		}
	}
	var promoted []dueEntry
	for _, e := range ps.pending {
		if live(e) {
			promoted = append(promoted, e)
		} else {
			delete(ps.queued, e)
		}
	}
	ps.due = promoted
	ps.pending = nil
	ps.armed = false
	return fired
}

// rearm re-arms the (class, peer) timer when promoted entries remain
// after a fire whose survivors did not re-arm it, and garbage-collects a
// fully drained slot.
func (m *Machine) rearm(class, peer string, interval time.Duration) []Effect {
	key := timerID(class, peer)
	ps := m.scheds[key]
	if ps == nil {
		return nil
	}
	if !ps.armed {
		if len(ps.due) > 0 {
			ps.armed = true
			return []Effect{ArmTimer{ID: key, D: interval}}
		}
		delete(m.scheds, key)
	}
	return nil
}

// peerCtlTimer resends every still-pending commit control headed to one
// participant peer as a single frame. Controls are live while the
// coordinator transaction still holds the matching pending obligation;
// acked or re-decided entries drop out lazily.
func (m *Machine) peerCtlTimer(peer string) []Effect {
	fired := m.takeDue(timerPeerCtl, peer, func(e dueEntry) bool {
		c, ok := m.coord[e.id]
		return ok && c.pending[Participant{Node: peer, Kind: auxPart(e.aux)}]
	})
	var items []CtlBatchItem
	var effs []Effect
	for _, e := range fired {
		items = append(items, CtlBatchItem{TxnID: e.id, RCE: e.aux == auxRCE, Commit: true})
		effs = append(effs, m.enqueue(timerPeerCtl, peer, e, m.cfg.RetryInterval)...)
	}
	effs = append(effs, m.rearm(timerPeerCtl, peer, m.cfg.RetryInterval)...)
	switch len(items) {
	case 0:
		return effs
	case 1:
		// A lone survivor travels as the legacy per-transaction control,
		// byte-identical to the unbatched path.
		p := Participant{Node: peer, Kind: PartQueue}
		if items[0].RCE {
			p.Kind = PartRCE
		}
		send := SendMsg{To: peer, Kind: p.ctlKind(true), Payload: &CtlMsg{TxnID: items[0].TxnID}}
		return append([]Effect{send}, effs...)
	default:
		send := SendMsg{To: peer, Kind: KindCtlBatch, Payload: &CtlBatchMsg{Items: items}}
		return append([]Effect{send}, effs...)
	}
}

// peerQueryTimer re-asks one coordinator about every in-doubt entry this
// node still tracks for it: staged queue entries and prepared/in-doubt
// branches, deduplicated per transaction, as a single frame.
func (m *Machine) peerQueryTimer(peer string) []Effect {
	fired := m.takeDue(timerPeerQuery, peer, func(e dueEntry) bool { return m.queryLive(peer, e) })
	var txns []string
	seen := map[string]bool{}
	var effs []Effect
	for _, e := range fired {
		if !seen[e.id] {
			seen[e.id] = true
			txns = append(txns, e.id)
		}
		effs = append(effs, m.enqueue(timerPeerQuery, peer, e, m.cfg.RetryInterval)...)
	}
	effs = append(effs, m.rearm(timerPeerQuery, peer, m.cfg.RetryInterval)...)
	return append(m.querySend(peer, txns), effs...)
}

// queryLive reports whether an in-doubt query obligation still matters:
// the staged entry (or branch) exists and peer is still its coordinator.
func (m *Machine) queryLive(peer string, e dueEntry) bool {
	switch e.aux {
	case auxStaged:
		co, ok := m.staged[e.id]
		return ok && co == peer
	case auxBranch:
		b, ok := m.branches[e.id]
		return ok && (b.state == branchPrepared || b.state == branchInDoubt) &&
			Coordinator(e.id) == peer
	}
	return false
}

// querySend emits the in-doubt queries for txns as one frame (legacy
// single-transaction query when only one survived).
func (m *Machine) querySend(peer string, txns []string) []Effect {
	switch len(txns) {
	case 0:
		return nil
	case 1:
		return []Effect{SendMsg{To: peer, Kind: KindTxnQuery, Payload: &CtlMsg{TxnID: txns[0]}}}
	default:
		return []Effect{SendMsg{To: peer, Kind: KindQueryBatch, Payload: &QueryBatchMsg{TxnIDs: txns}}}
	}
}

// peerStaleTimer fires the StaleAfter threshold for prepared branches
// coordinated by one peer: every branch still prepared starts the query
// cadence (an immediate query, then RetryInterval re-asks via
// timerPeerQuery) — the same first-query-after-StaleAfter behaviour the
// per-txn branch timer had.
func (m *Machine) peerStaleTimer(peer string) []Effect {
	fired := m.takeDue(timerPeerStale, peer, func(e dueEntry) bool {
		b, ok := m.branches[e.id]
		return ok && b.state == branchPrepared && Coordinator(e.id) == peer
	})
	var txns []string
	var effs []Effect
	for _, e := range fired {
		txns = append(txns, e.id)
		effs = append(effs, m.enqueue(timerPeerQuery, peer, dueEntry{id: e.id, aux: auxBranch}, m.cfg.RetryInterval)...)
	}
	effs = append(effs, m.rearm(timerPeerStale, peer, m.cfg.StaleAfter)...)
	return append(m.querySend(peer, txns), effs...)
}

// peerDoneTimer resends every undelivered completion notification headed
// to one owner. The resends are ResendDone effects (the driver re-reads
// the durable record), so there is no batch wire kind here — the
// driver's per-destination outbound batch already coalesces the frames.
func (m *Machine) peerDoneTimer(peer string) []Effect {
	fired := m.takeDue(timerPeerDone, peer, func(e dueEntry) bool { return m.done[e.id] == peer })
	var effs []Effect
	for _, e := range fired {
		effs = append(effs, ResendDone{AgentID: e.id})
		effs = append(effs, m.enqueue(timerPeerDone, peer, e, m.cfg.RetryInterval)...)
	}
	return append(effs, m.rearm(timerPeerDone, peer, m.cfg.RetryInterval)...)
}

// SchedSlots reports the number of (class, peer) timer slots the batch
// scheduler currently tracks; tests use it to pin the O(peers) bound.
func (m *Machine) SchedSlots() int { return len(m.scheds) }
