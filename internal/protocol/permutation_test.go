package protocol_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/protocol"
)

// TestRCEAbortPermutations is the pure re-expression of the PR-4 chaos
// catch (TestRCEAbortOvertakesPrepare): for every interleaving of
// abort verdicts, exec requests and execution completions — no cluster,
// no store, no clock — an abort that lands during the branch lifetime
// must never leave a prepared, lock-holding branch behind, and a
// prepared branch that escapes (abort delivered before the execution
// even started) must carry the stale-branch query timer that resolves
// it. The driver contract is modeled explicitly: an execution
// completion can only be delivered after the machine emitted the
// matching ExecBranch effect, and parked transactions are tracked
// through the Commit/AbortBranch effects.
func TestRCEAbortPermutations(t *testing.T) {
	// Event alphabets: e = exec request, p = execution completes
	// (prepared OK), a = abort verdict (coordinator's presumed abort).
	alphabets := [][]byte{
		{'e', 'p', 'a'},
		{'e', 'p', 'a', 'a'},      // duplicated abort (retry pressure)
		{'e', 'e', 'p', 'a'},      // duplicated exec request
		{'e', 'p', 'e', 'p', 'a'}, // re-execution after settle
	}
	for _, alphabet := range alphabets {
		for _, seq := range permutations(alphabet) {
			runRCEPermutation(t, seq)
		}
	}
}

// permutations returns all distinct orderings of the symbol multiset.
func permutations(sym []byte) [][]byte {
	if len(sym) <= 1 {
		return [][]byte{append([]byte(nil), sym...)}
	}
	var out [][]byte
	seen := map[byte]bool{}
	for i, s := range sym {
		if seen[s] {
			continue
		}
		seen[s] = true
		rest := make([]byte, 0, len(sym)-1)
		rest = append(rest, sym[:i]...)
		rest = append(rest, sym[i+1:]...)
		for _, p := range permutations(rest) {
			out = append(out, append([]byte{s}, p...))
		}
	}
	return out
}

func runRCEPermutation(t *testing.T, seq []byte) {
	t.Helper()
	name := string(seq)
	m := newReady("p")
	const txn = "co#1"
	ops := []*core.OpEntry{{Kind: core.OpResource, Op: "c"}}

	outstanding := 0         // ExecBranch effects not yet completed
	parked := false          // a prepared branch transaction is parked (driver side)
	timerArmed := false      // branch|txn timer currently armed
	abortSeen := false       // an abort verdict was delivered...
	abortDuringLife := false // ...while the machine held branch state

	apply := func(effs []protocol.Effect) {
		for _, eff := range effs {
			switch e := eff.(type) {
			case protocol.ExecBranch:
				outstanding++
			case protocol.CommitBranch:
				t.Fatalf("%s: CommitBranch emitted without any commit verdict", name)
			case protocol.AbortBranch:
				parked = false
			case protocol.ArmTimer:
				if e.ID == "branch|"+txn {
					timerArmed = true
				}
			case protocol.CancelTimer:
				if e.ID == "branch|"+txn {
					timerArmed = false
				}
			}
		}
	}

	for _, s := range seq {
		switch s {
		case 'e':
			apply(m.Step(protocol.RCEExecReceived{TxnID: txn, From: "co", Ops: ops}))
		case 'p':
			if outstanding == 0 {
				continue // driver contract: no completion without an execution
			}
			outstanding--
			// The driver parks the prepared transaction before feeding
			// the completion; the machine then decides its fate.
			parked = true
			apply(m.Step(protocol.BranchPrepared{TxnID: txn, OK: true}))
		case 'a':
			st := m.Stats()
			if st.BranchesExec+st.BranchesPrepared > 0 {
				abortDuringLife = true
			}
			abortSeen = true
			apply(m.Step(protocol.StatusReceived{TxnID: txn, Committed: false}))
		}
	}
	// Drain outstanding executions (they always complete eventually).
	for outstanding > 0 {
		outstanding--
		parked = true
		apply(m.Step(protocol.BranchPrepared{TxnID: txn, OK: true}))
	}

	st := m.Stats()
	if st.BranchesExec != 0 {
		t.Fatalf("%s: execution state lingers: %+v", name, st)
	}
	if abortDuringLife {
		// The heart of the PR-4 fix: an abort that overlapped the branch
		// lifetime must leave nothing prepared and nothing parked...
		if parked && !timerArmed {
			t.Fatalf("%s: zombie branch parked without a query timer", name)
		}
		if st.BranchesPrepared > 0 && !timerArmed {
			t.Fatalf("%s: prepared branch survives abort without a query timer", name)
		}
		// ...unless a *later* execution re-prepared it, in which case the
		// stale-branch query cycle must be armed to resolve it.
	}
	if abortSeen && !abortDuringLife && parked {
		// Abort arrived before the execution started: the zombie is
		// unavoidable at this layer and must be covered by the query
		// cycle.
		if !timerArmed {
			t.Fatalf("%s: pre-execution abort left a parked branch without a query timer", name)
		}
	}
	if parked && st.BranchesPrepared == 0 {
		t.Fatalf("%s: parked transaction with no machine state to settle it", name)
	}
}

// TestRCEAbortOvertakesPrepareEdge pins the exact seed-2 interleaving:
// exec starts, abort lands while executing, execution completes. The
// machine must abort the parked branch and refuse the coordinator —
// the executing→executingAborted edge.
func TestRCEAbortOvertakesPrepareEdge(t *testing.T) {
	m := newReady("p")
	const txn = "co#2"
	m.Step(protocol.RCEExecReceived{TxnID: txn, From: "co", Ops: nil})
	m.Step(protocol.StatusReceived{TxnID: txn, Committed: false})
	effs := m.Step(protocol.BranchPrepared{TxnID: txn, OK: true})

	if got := pick[protocol.AbortBranch](effs); len(got) != 1 {
		t.Fatalf("no AbortBranch on the poison edge: %+v", effs)
	}
	acks := pick[protocol.SendMsg](effs)
	if len(acks) != 1 {
		t.Fatalf("acks = %+v", effs)
	}
	ack := acks[0].Payload.(*protocol.AckMsg)
	if ack.OK {
		t.Fatal("zombie branch acknowledged")
	}
	if want := "aborted by coordinator during execution"; ack.Err != want {
		t.Errorf("refusal = %q, want %q", ack.Err, want)
	}
	if s := m.Stats(); s.BranchesExec+s.BranchesPrepared != 0 {
		t.Fatalf("branch state lingers: %+v", s)
	}
	// The tombstone must not outlive the execution: a fresh abort for an
	// unknown transaction resolves via the branch record only.
	effs = m.Step(protocol.StatusReceived{TxnID: txn, Committed: false})
	if got := pick[protocol.ResolveBranchRecord](effs); len(got) != 1 {
		t.Fatalf("post-settle abort = %+v", effs)
	}
	if s := m.Stats(); s.BranchesExec != 0 {
		t.Fatalf("tombstone recorded without an in-flight execution: %+v", s)
	}
}
