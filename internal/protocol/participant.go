package protocol

import "sort"

// Participant role (queue hand-off): this node durably stages a
// container insertion under the coordinator's transaction and waits
// for the decision. States per transaction:
//
//	(absent) --PrepareReceived--> staging --StageOutcome(ok)--> staged
//	   staged --CtlReceived/StatusReceived--> (absent) + commit/abort of the stage
//
// A staged transaction with a remote coordinator is in-doubt: a
// per-transaction timer queries the coordinator on RetryInterval until
// the verdict arrives (presumed abort answers queries the coordinator
// no longer remembers). Control messages and verdicts are idempotent
// on the queue, so duplicates are harmless.

// prepareReceived stages a container insertion (participant prepare of
// the queue hand-off); a recovering node refuses.
func (m *Machine) prepareReceived(e PrepareReceived) []Effect {
	if !m.ready {
		return []Effect{SendMsg{
			To:      e.From,
			Kind:    KindEnqueuePrepareAck,
			Payload: &AckMsg{TxnID: e.TxnID, OK: false, Err: "node recovering"},
		}}
	}
	return []Effect{StageEntry{
		TxnID:   e.TxnID,
		EntryID: e.EntryID,
		From:    e.From,
		Data:    e.Data,
		AckKind: KindEnqueuePrepareAck,
	}}
}

// stageOutcome records a successfully staged transaction and, when its
// coordinator is remote, starts the in-doubt query cycle.
func (m *Machine) stageOutcome(e StageOutcome) []Effect {
	if !e.OK {
		return nil
	}
	co := Coordinator(e.TxnID)
	m.staged[e.TxnID] = co
	if co == "" || co == m.cfg.Node {
		return nil // self-coordinated: recovery resolves from the local decision record
	}
	if m.batch() {
		return m.enqueue(timerPeerQuery, co, dueEntry{id: e.TxnID, aux: auxStaged}, m.cfg.RetryInterval)
	}
	return []Effect{ArmTimer{ID: timerID(timerStaged, e.TxnID), D: m.cfg.RetryInterval}}
}

// recoveredStaged replays a crash-surviving staged entry with a remote
// coordinator: query immediately, then on the usual cadence.
func (m *Machine) recoveredStaged(e RecoveredStaged) []Effect {
	co := Coordinator(e.TxnID)
	m.staged[e.TxnID] = co
	if co == "" || co == m.cfg.Node {
		return nil
	}
	effs := []Effect{SendMsg{To: co, Kind: KindTxnQuery, Payload: &CtlMsg{TxnID: e.TxnID}}}
	if m.batch() {
		return append(effs, m.enqueue(timerPeerQuery, co, dueEntry{id: e.TxnID, aux: auxStaged}, m.cfg.RetryInterval)...)
	}
	return append(effs, ArmTimer{ID: timerID(timerStaged, e.TxnID), D: m.cfg.RetryInterval})
}

// ctlReceived applies the coordinator's explicit commit/abort. Queue
// controls settle only the staged entry (acknowledged with the queue
// operation's outcome); RCE controls resolve every local trace of the
// transaction and always acknowledge.
func (m *Machine) ctlReceived(e CtlReceived) []Effect {
	if !e.RCE {
		ackKind := KindEnqueueAbortAck
		if e.Commit {
			ackKind = KindEnqueueCommitAck
		}
		m.dropStaged(e.TxnID)
		resolve := ResolveStaged{TxnID: e.TxnID, Commit: e.Commit, AckTo: e.From, AckKind: ackKind}
		if m.batch() {
			return []Effect{resolve}
		}
		return []Effect{
			CancelTimer{ID: timerID(timerStaged, e.TxnID)},
			resolve,
		}
	}
	ackKind := KindRCEAbortAck
	if e.Commit {
		ackKind = KindRCECommitAck
	}
	effs := m.resolve(e.TxnID, e.Commit, nil)
	return append(effs, SendMsg{
		To:      e.From,
		Kind:    ackKind,
		Payload: &AckMsg{TxnID: e.TxnID, OK: true},
	})
}

// resolve settles every local trace of a transaction with the
// coordinator's verdict: the staged queue entry, the live RCE branch
// (prepared or still executing — the abort-overtakes-execution edge),
// and the crash-surviving branch record. extra effects are appended
// after the resolution set.
func (m *Machine) resolve(txnID string, commit bool, extra []Effect) []Effect {
	var effs []Effect
	if !m.batch() {
		effs = append(effs, CancelTimer{ID: timerID(timerStaged, txnID)})
	}
	effs = append(effs, ResolveStaged{TxnID: txnID, Commit: commit})
	m.dropStaged(txnID)
	effs = append(effs, m.resolveBranch(txnID, commit)...)
	return append(effs, extra...)
}

func (m *Machine) dropStaged(txnID string) { delete(m.staged, txnID) }

// stagedTimer re-asks the coordinator about one in-doubt staged entry.
func (m *Machine) stagedTimer(txnID string) []Effect {
	co, ok := m.staged[txnID]
	if !ok || co == "" || co == m.cfg.Node {
		return nil
	}
	return []Effect{
		SendMsg{To: co, Kind: KindTxnQuery, Payload: &CtlMsg{TxnID: txnID}},
		ArmTimer{ID: timerID(timerStaged, txnID), D: m.cfg.RetryInterval},
	}
}

// sortSends orders a run of SendMsg effects by (To, Kind) so effects
// derived from map iteration stay deterministic.
func sortSends(effs []Effect) {
	sort.SliceStable(effs, func(i, j int) bool {
		a, aok := effs[i].(SendMsg)
		b, bok := effs[j].(SendMsg)
		if !aok || !bok {
			return false
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Kind < b.Kind
	})
}
