package protocol

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/wire"
)

// fastPathMessages returns one populated value of every message type with
// a binary codec, plus a fresh-zero factory for decoding into.
func fastPathMessages() []struct {
	name string
	msg  wire.BinaryMessage
	zero func() wire.BinaryMessage
} {
	return []struct {
		name string
		msg  wire.BinaryMessage
		zero func() wire.BinaryMessage
	}{
		{"prepare", &PrepareMsg{TxnID: "n1#7", EntryID: "agent-3", Data: []byte("container-bytes")},
			func() wire.BinaryMessage { return &PrepareMsg{} }},
		{"ack", &AckMsg{TxnID: "n1#7", OK: false, Err: "node recovering"},
			func() wire.BinaryMessage { return &AckMsg{} }},
		{"ctl", &CtlMsg{TxnID: "n1#7"},
			func() wire.BinaryMessage { return &CtlMsg{} }},
		{"status", &StatusMsg{TxnID: "n1#7", Committed: true},
			func() wire.BinaryMessage { return &StatusMsg{} }},
		{"rce-exec", &RCEExecMsg{TxnID: "n1#7", Ops: []*core.OpEntry{
			{Kind: core.OpResource, Op: "withdraw", Params: core.Params{"amount": []byte("100"), "acct": []byte("a-9")}},
			{Kind: core.OpAgent, Op: "noop"},
		}}, func() wire.BinaryMessage { return &RCEExecMsg{} }},
		{"ctl-batch", &CtlBatchMsg{Items: []CtlBatchItem{
			{TxnID: "n1#7", Commit: true},
			{TxnID: "n1#9", RCE: true, Commit: true},
			{TxnID: "n2#1"},
		}}, func() wire.BinaryMessage { return &CtlBatchMsg{} }},
		{"query-batch", &QueryBatchMsg{TxnIDs: []string{"n1#7", "n2#4"}},
			func() wire.BinaryMessage { return &QueryBatchMsg{} }},
	}
}

func TestBinaryCodecRoundTrip(t *testing.T) {
	for _, tc := range fastPathMessages() {
		enc := tc.msg.AppendTo(nil)
		if !wire.Binary(enc) {
			t.Fatalf("%s: encoding does not carry the binary version byte", tc.name)
		}
		got := tc.zero()
		if err := got.DecodeFrom(enc); err != nil {
			t.Fatalf("%s: decode: %v", tc.name, err)
		}
		if !reflect.DeepEqual(got, tc.msg) {
			t.Fatalf("%s: round trip mismatch\n got %#v\nwant %#v", tc.name, got, tc.msg)
		}
		// Decode must also route through the generic entry point.
		got2 := tc.zero()
		if err := Decode(enc, got2); err != nil {
			t.Fatalf("%s: Decode: %v", tc.name, err)
		}
		if !reflect.DeepEqual(got2, tc.msg) {
			t.Fatalf("%s: Decode mismatch", tc.name)
		}
	}
}

// TestBinaryCodecGobEquivalence checks both wire formats round-trip to the
// same value — the fallback path must be semantically interchangeable.
func TestBinaryCodecGobEquivalence(t *testing.T) {
	for _, tc := range fastPathMessages() {
		gobEnc, err := wire.Encode(tc.msg)
		if err != nil {
			t.Fatalf("%s: gob encode: %v", tc.name, err)
		}
		viaGob, viaBin := tc.zero(), tc.zero()
		if err := Decode(gobEnc, viaGob); err != nil {
			t.Fatalf("%s: gob decode: %v", tc.name, err)
		}
		if err := Decode(tc.msg.AppendTo(nil), viaBin); err != nil {
			t.Fatalf("%s: binary decode: %v", tc.name, err)
		}
		if !reflect.DeepEqual(viaGob, viaBin) {
			t.Fatalf("%s: formats disagree\n gob %#v\n bin %#v", tc.name, viaGob, viaBin)
		}
	}
}

// TestBinaryCodecEmptyFieldsMatchGob pins the empty→nil convention: a gob
// round trip turns empty slices/maps into nil, and the binary decoders
// must produce the same shape or differential comparisons break.
func TestBinaryCodecEmptyFieldsMatchGob(t *testing.T) {
	src := &RCEExecMsg{TxnID: "t", Ops: []*core.OpEntry{{Op: "x", Params: core.Params{}}}}
	viaGob, viaBin := &RCEExecMsg{}, &RCEExecMsg{}
	gobEnc, err := wire.Encode(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := Decode(gobEnc, viaGob); err != nil {
		t.Fatal(err)
	}
	if err := Decode(src.AppendTo(nil), viaBin); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(viaGob, viaBin) {
		t.Fatalf("empty-field shapes disagree\n gob %#v\n bin %#v", viaGob.Ops[0], viaBin.Ops[0])
	}

	p := &PrepareMsg{TxnID: "t", Data: []byte{}}
	dec := &PrepareMsg{}
	if err := dec.DecodeFrom(p.AppendTo(nil)); err != nil {
		t.Fatal(err)
	}
	if dec.Data != nil {
		t.Fatalf("empty Data must decode to nil, got %#v", dec.Data)
	}
}

func TestBinaryCodecZeroCopyData(t *testing.T) {
	enc := (&PrepareMsg{TxnID: "t", EntryID: "e", Data: []byte("payload")}).AppendTo(nil)
	var m PrepareMsg
	if err := m.DecodeFrom(enc); err != nil {
		t.Fatal(err)
	}
	if len(m.Data) == 0 || &m.Data[0] != &enc[len(enc)-len(m.Data)] {
		t.Fatal("PrepareMsg.Data must alias the input buffer")
	}
}

func TestBinaryCodecRejectsCorruptInput(t *testing.T) {
	enc := (&PrepareMsg{TxnID: "txn", EntryID: "e", Data: []byte("data")}).AppendTo(nil)
	// Every strict prefix must be rejected: all fields are mandatory and
	// the decoder demands full consumption.
	for i := 0; i < len(enc); i++ {
		var m PrepareMsg
		if err := m.DecodeFrom(enc[:i]); err == nil {
			t.Fatalf("truncation at %d accepted", i)
		}
	}
	// Wrong type byte.
	var ack AckMsg
	if err := ack.DecodeFrom(enc); !errors.Is(err, wire.ErrCorrupt) {
		t.Fatalf("type confusion: got %v", err)
	}
	// Declared op count beyond the buffer must fail before allocating.
	bad := append([]byte{wire.BinaryVersion, TypeRCEExec}, wire.AppendString(nil, "t")...)
	bad = wire.AppendUvarint(bad, 1<<62)
	var rce RCEExecMsg
	if err := rce.DecodeFrom(bad); !errors.Is(err, wire.ErrCorrupt) {
		t.Fatalf("giant op count: got %v", err)
	}
	// Binary payload routed into a type without a codec.
	var part Participant
	if err := Decode(enc, &part); !errors.Is(err, wire.ErrCorrupt) {
		t.Fatalf("codec-less target: got %v", err)
	}
}

func TestBinaryCodecDeterministicParams(t *testing.T) {
	m := &RCEExecMsg{TxnID: "t", Ops: []*core.OpEntry{{Op: "o", Params: core.Params{
		"b": []byte("2"), "a": []byte("1"), "c": []byte("3"),
	}}}}
	first := m.AppendTo(nil)
	for i := 0; i < 16; i++ {
		if !bytes.Equal(first, m.AppendTo(nil)) {
			t.Fatal("RCEExecMsg encoding must be deterministic (sorted Params keys)")
		}
	}
}

// TestBinaryCodecAllocs guards the acceptance budget: ≤2 allocs to decode
// a fast-path message (string copies only; []byte fields alias the input)
// and zero allocs to encode into a reused buffer.
func TestBinaryCodecAllocs(t *testing.T) {
	if testing.CoverMode() != "" {
		t.Skip("coverage instrumentation allocates")
	}
	cases := []struct {
		name   string
		msg    wire.BinaryMessage
		zero   func() wire.BinaryMessage
		budget float64
	}{
		{"prepare", &PrepareMsg{TxnID: "n1#7", EntryID: "agent-3", Data: bytes.Repeat([]byte("x"), 512)},
			func() wire.BinaryMessage { return &PrepareMsg{} }, 2},
		{"ack", &AckMsg{TxnID: "n1#7", OK: true},
			func() wire.BinaryMessage { return &AckMsg{} }, 1},
		{"ctl", &CtlMsg{TxnID: "n1#7"},
			func() wire.BinaryMessage { return &CtlMsg{} }, 1},
		{"status", &StatusMsg{TxnID: "n1#7", Committed: true},
			func() wire.BinaryMessage { return &StatusMsg{} }, 1},
	}
	for _, tc := range cases {
		enc := tc.msg.AppendTo(nil)
		dst := tc.zero()
		if got := testing.AllocsPerRun(200, func() {
			if err := dst.DecodeFrom(enc); err != nil {
				t.Fatal(err)
			}
		}); got > tc.budget {
			t.Errorf("%s: decode allocates %.0f/op, budget %.0f", tc.name, got, tc.budget)
		}
		buf := make([]byte, 0, len(enc))
		if got := testing.AllocsPerRun(200, func() {
			buf = tc.msg.AppendTo(buf[:0])
		}); got > 0 {
			t.Errorf("%s: encode into reused buffer allocates %.0f/op", tc.name, got)
		}
	}
}
