package protocol_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/protocol"
)

// newBatch builds a ready machine in the default coalesced-timer mode.
// Interval choices are irrelevant to these tests: the machine is pure,
// so a "fire" is just Step(TimerFired{...}) — the tests single-step the
// clock by hand, which is what makes coalesced firing deterministic.
func newBatch(node string) *protocol.Machine {
	m := protocol.NewMachine(protocol.Config{
		Node:          node,
		RetryInterval: 50 * time.Millisecond,
		StaleAfter:    300 * time.Millisecond,
	})
	m.Step(protocol.ReadyReached{})
	return m
}

// armedIDs returns the IDs of every ArmTimer effect, in order.
func armedIDs(effs []protocol.Effect) []string {
	var ids []string
	for _, a := range pick[protocol.ArmTimer](effs) {
		ids = append(ids, a.ID)
	}
	return ids
}

// decide drives one committed coordinator decision with a single
// queue participant on peer.
func decide(m *protocol.Machine, txn, peer string) []protocol.Effect {
	return m.Step(protocol.CoordDecided{TxnID: txn, Commit: true, Parts: []protocol.Participant{
		{Node: peer, Kind: protocol.PartQueue},
	}})
}

// TestPeerCtlTimerCoalescesResends pins the tentpole behaviour: many
// decided transactions headed to one participant peer share a single
// resend timer, and a fire with more than one survivor emits one
// multi-transaction CtlBatchMsg frame instead of N singles.
func TestPeerCtlTimerCoalescesResends(t *testing.T) {
	m := newBatch("co")

	// First decision arms the shared (pctl, p) timer...
	if ids := armedIDs(decide(m, "co#1", "p")); len(ids) != 1 || ids[0] != "pctl|p" {
		t.Fatalf("first decide armed %v, want [pctl|p]", ids)
	}
	// ...the second rides the already-armed slot: no new timer.
	if ids := armedIDs(decide(m, "co#2", "p")); len(ids) != 0 {
		t.Fatalf("second decide armed %v, want none", ids)
	}
	if m.SchedSlots() != 1 {
		t.Fatalf("SchedSlots = %d, want 1", m.SchedSlots())
	}

	// First fire drains only the due bucket (co#1 — enqueued a full
	// interval ago); co#2 was pending and is promoted. A single
	// survivor travels as the legacy per-transaction frame.
	effs := m.Step(protocol.TimerFired{ID: "pctl|p"})
	sends := pick[protocol.SendMsg](effs)
	if len(sends) != 1 || sends[0].Kind != protocol.KindEnqueueCommit {
		t.Fatalf("first fire sends = %+v", sends)
	}
	if sends[0].Payload.(*protocol.CtlMsg).TxnID != "co#1" {
		t.Fatalf("first fire resent %+v, want co#1", sends[0].Payload)
	}
	if ids := armedIDs(effs); len(ids) != 1 || ids[0] != "pctl|p" {
		t.Fatalf("first fire re-armed %v", ids)
	}

	// Second fire finds both transactions due: one CtlBatchMsg frame.
	effs = m.Step(protocol.TimerFired{ID: "pctl|p"})
	sends = pick[protocol.SendMsg](effs)
	if len(sends) != 1 || sends[0].Kind != protocol.KindCtlBatch || sends[0].To != "p" {
		t.Fatalf("second fire sends = %+v", sends)
	}
	items := sends[0].Payload.(*protocol.CtlBatchMsg).Items
	got := map[string]bool{}
	for _, it := range items {
		if it.RCE || !it.Commit {
			t.Fatalf("batch item %+v, want queue commit", it)
		}
		got[it.TxnID] = true
	}
	if len(items) != 2 || !got["co#1"] || !got["co#2"] {
		t.Fatalf("batch items = %+v, want co#1+co#2", items)
	}

	// Retirement is lazy: the ack cancels nothing, the next fire
	// filters the dead entry and resends only the survivor.
	effs = m.Step(protocol.AckReceived{Kind: protocol.KindEnqueueCommitAck, TxnID: "co#1", From: "p", OK: true})
	if n := len(pick[protocol.CancelTimer](effs)); n != 0 {
		t.Fatalf("ack canceled %d timers, want lazy retirement", n)
	}
	effs = m.Step(protocol.TimerFired{ID: "pctl|p"})
	sends = pick[protocol.SendMsg](effs)
	if len(sends) != 1 || sends[0].Kind != protocol.KindEnqueueCommit ||
		sends[0].Payload.(*protocol.CtlMsg).TxnID != "co#2" {
		t.Fatalf("post-ack fire sends = %+v, want lone co#2 legacy frame", sends)
	}

	// Last ack, then the fire on fully dead state: no send, no re-arm,
	// slot garbage-collected — the quiescence invariant.
	m.Step(protocol.AckReceived{Kind: protocol.KindEnqueueCommitAck, TxnID: "co#2", From: "p", OK: true})
	effs = m.Step(protocol.TimerFired{ID: "pctl|p"})
	if len(effs) != 0 {
		t.Fatalf("fire on dead state emitted %+v", effs)
	}
	if m.SchedSlots() != 0 {
		t.Fatalf("SchedSlots = %d after quiescence, want 0", m.SchedSlots())
	}
}

// TestPeerQueryTimerCoalescesInDoubt drives two staged entries plus a
// recovered branch for the same coordinator through the shared query
// timer: the fire emits one QueryBatchMsg with per-transaction dedup
// (a staged entry and a branch of the same transaction ask once).
func TestPeerQueryTimerCoalescesInDoubt(t *testing.T) {
	m := newBatch("p")

	stage := func(txn string) []protocol.Effect {
		m.Step(protocol.PrepareReceived{TxnID: txn, EntryID: "e-" + txn, From: "co", Data: []byte("x")})
		return m.Step(protocol.StageOutcome{TxnID: txn, OK: true})
	}
	if ids := armedIDs(stage("co#1")); len(ids) != 1 || ids[0] != "pquery|co" {
		t.Fatalf("first stage armed %v, want [pquery|co]", ids)
	}
	if ids := armedIDs(stage("co#2")); len(ids) != 0 {
		t.Fatalf("second stage armed %v, want none", ids)
	}
	// A recovered branch of co#1 joins the same slot: the immediate
	// recovery query goes out, but no second timer appears.
	effs := m.Step(protocol.RecoveredBranch{TxnID: "co#1"})
	if ids := armedIDs(effs); len(ids) != 0 {
		t.Fatalf("recovered branch armed %v, want none", ids)
	}
	if m.SchedSlots() != 1 {
		t.Fatalf("SchedSlots = %d, want 1", m.SchedSlots())
	}

	// Fire until both buckets have cycled into due, then check the
	// batched frame dedups co#1 (staged + branch entries).
	m.Step(protocol.TimerFired{ID: "pquery|co"})
	effs = m.Step(protocol.TimerFired{ID: "pquery|co"})
	sends := pick[protocol.SendMsg](effs)
	if len(sends) != 1 || sends[0].Kind != protocol.KindQueryBatch || sends[0].To != "co" {
		t.Fatalf("query fire sends = %+v", sends)
	}
	txns := sends[0].Payload.(*protocol.QueryBatchMsg).TxnIDs
	got := map[string]bool{}
	for _, id := range txns {
		got[id] = true
	}
	if len(txns) != 2 || !got["co#1"] || !got["co#2"] {
		t.Fatalf("query batch = %v, want deduped co#1+co#2", txns)
	}

	// Verdicts settle everything; the next fires drain to silence.
	m.Step(protocol.StatusReceived{TxnID: "co#1", Committed: true})
	m.Step(protocol.StatusReceived{TxnID: "co#2", Committed: false})
	m.Step(protocol.TimerFired{ID: "pquery|co"})
	if effs := m.Step(protocol.TimerFired{ID: "pquery|co"}); len(effs) != 0 {
		t.Fatalf("fire after verdicts emitted %+v", effs)
	}
	if m.SchedSlots() != 0 {
		t.Fatalf("SchedSlots = %d after verdicts, want 0", m.SchedSlots())
	}
}

// TestPeerStaleTimerHandsOffToQuery pins the branch path: a prepared
// RCE branch joins the per-peer stale timer, and its fire both asks the
// coordinator immediately and moves the branch onto the shared query
// cadence.
func TestPeerStaleTimerHandsOffToQuery(t *testing.T) {
	m := newBatch("r")

	m.Step(protocol.RCEExecReceived{TxnID: "co#9", From: "co"})
	effs := m.Step(protocol.BranchPrepared{TxnID: "co#9", OK: true})
	if ids := armedIDs(effs); len(ids) != 1 || ids[0] != "pstale|co" {
		t.Fatalf("branch prepared armed %v, want [pstale|co]", ids)
	}

	effs = m.Step(protocol.TimerFired{ID: "pstale|co"})
	sends := pick[protocol.SendMsg](effs)
	if len(sends) != 1 || sends[0].Kind != protocol.KindTxnQuery ||
		sends[0].Payload.(*protocol.CtlMsg).TxnID != "co#9" {
		t.Fatalf("stale fire sends = %+v, want one co#9 query", sends)
	}
	ids := armedIDs(effs)
	if len(ids) != 1 || ids[0] != "pquery|co" {
		t.Fatalf("stale fire armed %v, want handoff to [pquery|co]", ids)
	}

	// The verdict resolves the branch; the pending query obligation
	// dies lazily and the slot drains.
	m.Step(protocol.StatusReceived{TxnID: "co#9", Committed: true})
	if effs := m.Step(protocol.TimerFired{ID: "pquery|co"}); len(pick[protocol.SendMsg](effs)) != 0 {
		t.Fatalf("query fire after verdict sent %+v", effs)
	}
	if m.SchedSlots() != 0 {
		t.Fatalf("SchedSlots = %d, want 0", m.SchedSlots())
	}
}

// TestPeerDoneTimerCoalesces drives two completion notifications to one
// owner through the shared done timer; resends surface as per-agent
// ResendDone effects (the driver re-reads the durable record) and
// retire lazily on ack.
func TestPeerDoneTimerCoalesces(t *testing.T) {
	m := newBatch("n")

	if ids := armedIDs(m.Step(protocol.DoneRecorded{AgentID: "a1", Owner: "own"})); len(ids) != 1 || ids[0] != "pdone|own" {
		t.Fatalf("first done armed %v, want [pdone|own]", ids)
	}
	if ids := armedIDs(m.Step(protocol.DoneRecorded{AgentID: "a2", Owner: "own"})); len(ids) != 0 {
		t.Fatalf("second done armed %v, want none", ids)
	}

	m.Step(protocol.TimerFired{ID: "pdone|own"})
	effs := m.Step(protocol.TimerFired{ID: "pdone|own"})
	resends := pick[protocol.ResendDone](effs)
	if len(resends) != 2 {
		t.Fatalf("second fire resends = %+v, want both agents", resends)
	}

	effs = m.Step(protocol.DoneAcked{AgentID: "a1"})
	if n := len(pick[protocol.CancelTimer](effs)); n != 0 {
		t.Fatalf("done ack canceled %d timers, want lazy retirement", n)
	}
	effs = m.Step(protocol.TimerFired{ID: "pdone|own"})
	resends = pick[protocol.ResendDone](effs)
	if len(resends) != 1 || resends[0].AgentID != "a2" {
		t.Fatalf("post-ack fire resends = %+v, want lone a2", resends)
	}

	m.Step(protocol.DoneAcked{AgentID: "a2"})
	m.Step(protocol.TimerFired{ID: "pdone|own"})
	if m.SchedSlots() != 0 {
		t.Fatalf("SchedSlots = %d after acks, want 0", m.SchedSlots())
	}
}

// TestBatchTimersScaleWithPeersNotTxns is the acceptance pin: with 1000
// in-flight transactions spread over 4 peers, the coalesced scheduler
// arms exactly one timer per peer, where the legacy mode arms one per
// transaction.
func TestBatchTimersScaleWithPeersNotTxns(t *testing.T) {
	const txns, peers = 1000, 4

	armTotal := func(m *protocol.Machine) int {
		total := 0
		for i := 0; i < txns; i++ {
			total += len(armedIDs(decide(m, fmt.Sprintf("co#%d", i), fmt.Sprintf("p%d", i%peers))))
		}
		return total
	}

	m := newBatch("co")
	if got := armTotal(m); got != peers {
		t.Errorf("batch mode armed %d timers for %d txns, want %d (one per peer)", got, txns, peers)
	}
	if got := m.SchedSlots(); got != peers {
		t.Errorf("batch mode SchedSlots = %d, want %d", got, peers)
	}

	legacy := newReady("co") // NoCtlBatch
	if got := armTotal(legacy); got != txns {
		t.Errorf("legacy mode armed %d timers, want one per txn (%d)", got, txns)
	}
	if got := legacy.SchedSlots(); got != 0 {
		t.Errorf("legacy mode SchedSlots = %d, want 0", got)
	}
}

// TestBatchedFramesMatchUnbatchedPerTxn is the differential check: the
// per-transaction (destination, kind, txn) resend obligations carried
// by batched frames, once exploded item-by-item the way the receive
// path does, are exactly the set the legacy per-transaction timers
// send. Only the framing changes, never the protocol content.
func TestBatchedFramesMatchUnbatchedPerTxn(t *testing.T) {
	parts := map[string]protocol.PartKind{
		"co#1": protocol.PartQueue,
		"co#2": protocol.PartRCE,
		"co#3": protocol.PartQueue,
	}
	driveAll := func(m *protocol.Machine) []protocol.Effect {
		var armed []string
		for txn, kind := range parts {
			effs := m.Step(protocol.CoordDecided{TxnID: txn, Commit: true, Parts: []protocol.Participant{
				{Node: "p", Kind: kind},
			}})
			armed = append(armed, armedIDs(effs)...)
		}
		// Fire every armed timer twice: in batch mode the first fire
		// drains the due bucket and promotes the rest, the second
		// drains everything (plus re-sends the first survivor — set
		// semantics below absorb the duplicate).
		var out []protocol.Effect
		for pass := 0; pass < 2; pass++ {
			for _, id := range armed {
				out = append(out, m.Step(protocol.TimerFired{ID: id})...)
			}
		}
		return out
	}

	// explode flattens sends into per-transaction obligations, undoing
	// the batch framing exactly like the dispatcher's receive path.
	explode := func(effs []protocol.Effect) map[string]bool {
		set := map[string]bool{}
		for _, s := range pick[protocol.SendMsg](effs) {
			switch p := s.Payload.(type) {
			case *protocol.CtlMsg:
				set[s.To+"/"+s.Kind+"/"+p.TxnID] = true
			case *protocol.CtlBatchMsg:
				for _, it := range p.Items {
					kind := protocol.KindEnqueueCommit
					if it.RCE {
						kind = protocol.KindRCECommit
					}
					if !it.Commit {
						t.Fatalf("abort in resend batch: %+v", it)
					}
					set[s.To+"/"+kind+"/"+it.TxnID] = true
				}
			default:
				t.Fatalf("unexpected resend payload %T", p)
			}
		}
		return set
	}

	batched := explode(driveAll(newBatch("co")))
	legacy := explode(driveAll(newReady("co")))
	if len(batched) != len(parts) || len(legacy) != len(parts) {
		t.Fatalf("obligation sets: batched %d, legacy %d, want %d each", len(batched), len(legacy), len(parts))
	}
	for k := range legacy {
		if !batched[k] {
			t.Errorf("legacy obligation %q missing from batched set", k)
		}
	}
	for k := range batched {
		if !legacy[k] {
			t.Errorf("batched obligation %q missing from legacy set", k)
		}
	}
}
