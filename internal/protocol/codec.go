package protocol

import (
	"fmt"
	"slices"
	"sort"

	"repro/internal/core"
	"repro/internal/wire"
)

// Hand-rolled binary codec for the high-volume protocol messages. Every
// payload is wire.BinaryVersion, a type byte from the table below, then
// the struct fields in declaration order via the wire varint helpers.
// The legacy gob encoding remains valid on the wire forever: the
// version byte cannot start a gob stream, so Decode routes each payload
// by its first byte and mixed-version links interoperate (a gob-only
// peer's messages decode here; enabling the binary *encoder* requires
// peers at least at this decoder version — see DESIGN.md "Wire
// format").
//
// Type bytes (protocol block 0x01..0x0f; never renumber):
const (
	// TypePrepare carries PrepareMsg (kind q.prepare).
	TypePrepare byte = 0x01
	// TypeAck carries AckMsg (every *.ack kind and agent.done.ack).
	TypeAck byte = 0x02
	// TypeCtl carries CtlMsg (q.commit, q.abort, rce.commit, rce.abort,
	// txn.query).
	TypeCtl byte = 0x03
	// TypeStatus carries StatusMsg (txn.status).
	TypeStatus byte = 0x04
	// TypeRCEExec carries RCEExecMsg (rce.exec).
	TypeRCEExec byte = 0x05
	// TypeCtlBatch carries CtlBatchMsg (ctl.batch).
	TypeCtlBatch byte = 0x06
	// TypeQueryBatch carries QueryBatchMsg (query.batch).
	TypeQueryBatch byte = 0x07
)

// Decode decodes one inbound payload into v, taking the binary fast
// path when the payload starts with the binary version byte and falling
// back to gob otherwise. This is the dispatcher's single entry point,
// so a node decodes both its own wire format and a previous-version
// (gob-only) peer's transparently.
func Decode(data []byte, v any) error {
	if wire.Binary(data) {
		bm, ok := v.(wire.BinaryMessage)
		if !ok {
			return fmt.Errorf("%w: binary payload for %T without a binary codec", wire.ErrCorrupt, v)
		}
		return bm.DecodeFrom(data)
	}
	return wire.Decode(data, v)
}

// body validates the payload header against the expected type byte.
func body(data []byte, want byte) ([]byte, error) {
	typ, b, err := wire.SplitBinary(data)
	if err != nil {
		return nil, err
	}
	if typ != want {
		return nil, fmt.Errorf("%w: payload type 0x%02x, want 0x%02x", wire.ErrCorrupt, typ, want)
	}
	return b, nil
}

// --- PrepareMsg -------------------------------------------------------

// AppendTo implements wire.BinaryMessage.
func (m *PrepareMsg) AppendTo(buf []byte) []byte {
	buf = slices.Grow(buf, 2+len(m.TxnID)+len(m.EntryID)+len(m.Data)+16)
	buf = append(buf, wire.BinaryVersion, TypePrepare)
	buf = wire.AppendString(buf, m.TxnID)
	buf = wire.AppendString(buf, m.EntryID)
	return wire.AppendBytes(buf, m.Data)
}

// DecodeFrom implements wire.BinaryMessage. Data aliases buf.
func (m *PrepareMsg) DecodeFrom(buf []byte) error {
	b, err := body(buf, TypePrepare)
	if err != nil {
		return err
	}
	if m.TxnID, b, err = wire.ReadString(b); err != nil {
		return err
	}
	if m.EntryID, b, err = wire.ReadString(b); err != nil {
		return err
	}
	if m.Data, b, err = wire.ReadBytes(b); err != nil {
		return err
	}
	return wire.Done(b)
}

// --- AckMsg -----------------------------------------------------------

// AppendTo implements wire.BinaryMessage.
func (m *AckMsg) AppendTo(buf []byte) []byte {
	buf = slices.Grow(buf, 2+len(m.TxnID)+len(m.Err)+16)
	buf = append(buf, wire.BinaryVersion, TypeAck)
	buf = wire.AppendString(buf, m.TxnID)
	buf = wire.AppendBool(buf, m.OK)
	return wire.AppendString(buf, m.Err)
}

// DecodeFrom implements wire.BinaryMessage.
func (m *AckMsg) DecodeFrom(buf []byte) error {
	b, err := body(buf, TypeAck)
	if err != nil {
		return err
	}
	if m.TxnID, b, err = wire.ReadString(b); err != nil {
		return err
	}
	if m.OK, b, err = wire.ReadBool(b); err != nil {
		return err
	}
	if m.Err, b, err = wire.ReadString(b); err != nil {
		return err
	}
	return wire.Done(b)
}

// --- CtlMsg -----------------------------------------------------------

// AppendTo implements wire.BinaryMessage.
func (m *CtlMsg) AppendTo(buf []byte) []byte {
	buf = slices.Grow(buf, 2+len(m.TxnID)+8)
	buf = append(buf, wire.BinaryVersion, TypeCtl)
	return wire.AppendString(buf, m.TxnID)
}

// DecodeFrom implements wire.BinaryMessage.
func (m *CtlMsg) DecodeFrom(buf []byte) error {
	b, err := body(buf, TypeCtl)
	if err != nil {
		return err
	}
	if m.TxnID, b, err = wire.ReadString(b); err != nil {
		return err
	}
	return wire.Done(b)
}

// --- StatusMsg --------------------------------------------------------

// AppendTo implements wire.BinaryMessage.
func (m *StatusMsg) AppendTo(buf []byte) []byte {
	buf = slices.Grow(buf, 2+len(m.TxnID)+8)
	buf = append(buf, wire.BinaryVersion, TypeStatus)
	buf = wire.AppendString(buf, m.TxnID)
	return wire.AppendBool(buf, m.Committed)
}

// DecodeFrom implements wire.BinaryMessage.
func (m *StatusMsg) DecodeFrom(buf []byte) error {
	b, err := body(buf, TypeStatus)
	if err != nil {
		return err
	}
	if m.TxnID, b, err = wire.ReadString(b); err != nil {
		return err
	}
	if m.Committed, b, err = wire.ReadBool(b); err != nil {
		return err
	}
	return wire.Done(b)
}

// --- RCEExecMsg -------------------------------------------------------

// AppendTo implements wire.BinaryMessage. Params keys are written in
// sorted order so an encoding is deterministic for identical messages
// (gob gives no such guarantee for maps).
func (m *RCEExecMsg) AppendTo(buf []byte) []byte {
	buf = slices.Grow(buf, 2+len(m.TxnID)+16+32*len(m.Ops))
	buf = append(buf, wire.BinaryVersion, TypeRCEExec)
	buf = wire.AppendString(buf, m.TxnID)
	buf = wire.AppendUvarint(buf, uint64(len(m.Ops)))
	for _, op := range m.Ops {
		if op == nil {
			// gob flattens a nil pointer to the zero value; match it.
			op = &core.OpEntry{}
		}
		buf = wire.AppendUvarint(buf, uint64(op.Kind))
		buf = wire.AppendString(buf, op.Op)
		// Params count is shifted by one so nil and empty stay distinct
		// across a round trip, exactly as gob keeps them (slices collapse
		// to nil at length zero, maps only when nil).
		if op.Params == nil {
			buf = wire.AppendUvarint(buf, 0)
			continue
		}
		buf = wire.AppendUvarint(buf, uint64(len(op.Params))+1)
		if len(op.Params) > 0 {
			keys := make([]string, 0, len(op.Params))
			for k := range op.Params {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				buf = wire.AppendString(buf, k)
				buf = wire.AppendBytes(buf, op.Params[k])
			}
		}
	}
	return buf
}

// maxInlineOps bounds the declared op count honoured before the decoder
// checks it against the remaining bytes, so a corrupt header cannot
// force a giant pre-allocation.
const maxInlineOps = 1 << 20

// --- CtlBatchMsg ------------------------------------------------------

// AppendTo implements wire.BinaryMessage.
func (m *CtlBatchMsg) AppendTo(buf []byte) []byte {
	buf = slices.Grow(buf, 2+8+len(m.Items)*24)
	buf = append(buf, wire.BinaryVersion, TypeCtlBatch)
	buf = wire.AppendUvarint(buf, uint64(len(m.Items)))
	for _, it := range m.Items {
		buf = wire.AppendString(buf, it.TxnID)
		buf = wire.AppendBool(buf, it.RCE)
		buf = wire.AppendBool(buf, it.Commit)
	}
	return buf
}

// DecodeFrom implements wire.BinaryMessage. TxnIDs alias buf.
func (m *CtlBatchMsg) DecodeFrom(buf []byte) error {
	b, err := body(buf, TypeCtlBatch)
	if err != nil {
		return err
	}
	n, b, err := wire.ReadUvarint(b)
	if err != nil {
		return err
	}
	// Every item costs at least 3 bytes (length prefix + two bools);
	// reject counts the remaining buffer cannot possibly hold.
	if n > maxInlineOps || n > uint64(len(b)) {
		return fmt.Errorf("%w: %d ctl-batch items exceed buffer", wire.ErrCorrupt, n)
	}
	m.Items = nil
	if n > 0 {
		m.Items = make([]CtlBatchItem, 0, n)
	}
	for i := uint64(0); i < n; i++ {
		var it CtlBatchItem
		if it.TxnID, b, err = wire.ReadString(b); err != nil {
			return err
		}
		if it.RCE, b, err = wire.ReadBool(b); err != nil {
			return err
		}
		if it.Commit, b, err = wire.ReadBool(b); err != nil {
			return err
		}
		m.Items = append(m.Items, it)
	}
	return wire.Done(b)
}

// --- QueryBatchMsg ----------------------------------------------------

// AppendTo implements wire.BinaryMessage.
func (m *QueryBatchMsg) AppendTo(buf []byte) []byte {
	buf = slices.Grow(buf, 2+8+len(m.TxnIDs)*20)
	buf = append(buf, wire.BinaryVersion, TypeQueryBatch)
	buf = wire.AppendUvarint(buf, uint64(len(m.TxnIDs)))
	for _, id := range m.TxnIDs {
		buf = wire.AppendString(buf, id)
	}
	return buf
}

// DecodeFrom implements wire.BinaryMessage. TxnIDs alias buf.
func (m *QueryBatchMsg) DecodeFrom(buf []byte) error {
	b, err := body(buf, TypeQueryBatch)
	if err != nil {
		return err
	}
	n, b, err := wire.ReadUvarint(b)
	if err != nil {
		return err
	}
	if n > maxInlineOps || n > uint64(len(b)) {
		return fmt.Errorf("%w: %d query-batch entries exceed buffer", wire.ErrCorrupt, n)
	}
	m.TxnIDs = nil
	if n > 0 {
		m.TxnIDs = make([]string, 0, n)
	}
	for i := uint64(0); i < n; i++ {
		var id string
		if id, b, err = wire.ReadString(b); err != nil {
			return err
		}
		m.TxnIDs = append(m.TxnIDs, id)
	}
	return wire.Done(b)
}

// DecodeFrom implements wire.BinaryMessage. Params values alias buf.
func (m *RCEExecMsg) DecodeFrom(buf []byte) error {
	b, err := body(buf, TypeRCEExec)
	if err != nil {
		return err
	}
	if m.TxnID, b, err = wire.ReadString(b); err != nil {
		return err
	}
	nOps, b, err := wire.ReadUvarint(b)
	if err != nil {
		return err
	}
	// Every op costs at least 3 bytes on the wire; reject counts the
	// remaining buffer cannot possibly hold.
	if nOps > maxInlineOps || nOps > uint64(len(b)) {
		return fmt.Errorf("%w: %d ops exceed buffer", wire.ErrCorrupt, nOps)
	}
	m.Ops = nil
	if nOps > 0 {
		m.Ops = make([]*core.OpEntry, 0, nOps)
	}
	for i := uint64(0); i < nOps; i++ {
		op := &core.OpEntry{}
		kind, rest, err := wire.ReadUvarint(b)
		if err != nil {
			return err
		}
		b = rest
		op.Kind = core.OpKind(kind)
		if op.Op, b, err = wire.ReadString(b); err != nil {
			return err
		}
		nParams, rest, err := wire.ReadUvarint(b)
		if err != nil {
			return err
		}
		b = rest
		if nParams > 0 {
			nParams-- // shifted count: 0 is nil, n+1 is n entries
			if nParams > uint64(len(b)) {
				return fmt.Errorf("%w: %d params exceed buffer", wire.ErrCorrupt, nParams)
			}
			op.Params = make(core.Params, nParams)
			for j := uint64(0); j < nParams; j++ {
				var k string
				var v []byte
				if k, b, err = wire.ReadString(b); err != nil {
					return err
				}
				if v, b, err = wire.ReadBytes(b); err != nil {
					return err
				}
				op.Params[k] = v
			}
		}
		m.Ops = append(m.Ops, op)
	}
	return wire.Done(b)
}
