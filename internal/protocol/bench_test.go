package protocol_test

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/protocol"
)

// BenchmarkProtocolTransitions measures the raw transition throughput of
// the machine over a representative protocol mix: one full coordinator
// commit cycle (prepare → ack → decide → ctl ack), one participant
// hand-off (prepare → stage → commit ctl), and one RCE branch lifecycle
// (exec → prepared → commit) — 10 transitions per iteration. The
// machine is the single-threaded heart of every node, so ns/op here
// bounds a node's protocol decision rate.
func BenchmarkProtocolTransitions(b *testing.B) {
	m := protocol.NewMachine(protocol.Config{
		Node:          "co",
		RetryInterval: 50 * time.Millisecond,
		StaleAfter:    time.Second,
	})
	m.Step(protocol.ReadyReached{})
	ops := []*core.OpEntry{{Kind: core.OpResource, Op: "c"}}
	parts := []protocol.Participant{{Node: "p", Kind: protocol.PartQueue}}
	data := []byte("container")

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		txn := "co#1" // IDs may repeat: every cycle fully settles its state

		// Coordinator commit cycle.
		m.Step(protocol.CoordPrepareEnqueue{TxnID: txn, Dest: "p", EntryID: "a", Data: data})
		m.Step(protocol.AckReceived{Kind: protocol.KindEnqueuePrepareAck, TxnID: txn, From: "p", OK: true})
		m.Step(protocol.CoordDecided{TxnID: txn, Commit: true, Parts: parts})
		m.Step(protocol.AckReceived{Kind: protocol.KindEnqueueCommitAck, TxnID: txn, From: "p", OK: true})

		// Participant hand-off.
		m.Step(protocol.PrepareReceived{TxnID: "peer#2", EntryID: "a", From: "peer", Data: data})
		m.Step(protocol.StageOutcome{TxnID: "peer#2", OK: true})
		m.Step(protocol.CtlReceived{TxnID: "peer#2", From: "peer", Commit: true})

		// RCE branch lifecycle.
		m.Step(protocol.RCEExecReceived{TxnID: "peer#3", From: "peer", Ops: ops})
		m.Step(protocol.BranchPrepared{TxnID: "peer#3", OK: true})
		m.Step(protocol.CtlReceived{TxnID: "peer#3", From: "peer", Commit: true, RCE: true})
	}
	b.StopTimer()
	if s := m.Stats(); s.CoordPendingCtl != 0 || s.Staged != 0 || s.BranchesPrepared != 0 {
		b.Fatalf("state leaked across cycles: %+v", s)
	}
	b.ReportMetric(float64(m.Transitions())/float64(b.N), "transitions/op")
}
