package protocol

// Observability helpers: pure, allocation-free views of events and
// machine state for the trace ring. EventInfo names an event and pulls
// out its subject IDs without the caller type-switching over the event
// set; StateOf renders the machine's current state for one subject as a
// short label so a transition record can carry a "before → after" edge.

// EventInfo returns a stable name for the event plus the transaction
// and/or agent entry it concerns ("" when the event has no such
// subject). For acks the name is the ack's message kind, which already
// identifies the protocol round precisely.
func EventInfo(ev Event) (name, txnID, agentID string) {
	switch e := ev.(type) {
	case CoordPrepareEnqueue:
		return "CoordPrepareEnqueue", e.TxnID, e.EntryID
	case CoordPrepareRCE:
		return "CoordPrepareRCE", e.TxnID, ""
	case CoordDecided:
		if e.Commit {
			return "CoordDecided(commit)", e.TxnID, ""
		}
		return "CoordDecided(abort)", e.TxnID, ""
	case AckReceived:
		return e.Kind, e.TxnID, ""
	case QueryReceived:
		return "QueryReceived", e.TxnID, ""
	case StatusReceived:
		if e.Committed {
			return "StatusReceived(commit)", e.TxnID, ""
		}
		return "StatusReceived(abort)", e.TxnID, ""
	case PrepareReceived:
		return "PrepareReceived", e.TxnID, e.EntryID
	case StageOutcome:
		if e.OK {
			return "StageOutcome(ok)", e.TxnID, ""
		}
		return "StageOutcome(fail)", e.TxnID, ""
	case CtlReceived:
		switch {
		case e.RCE && e.Commit:
			return "CtlReceived(rce-commit)", e.TxnID, ""
		case e.RCE:
			return "CtlReceived(rce-abort)", e.TxnID, ""
		case e.Commit:
			return "CtlReceived(commit)", e.TxnID, ""
		default:
			return "CtlReceived(abort)", e.TxnID, ""
		}
	case RCEExecReceived:
		return "RCEExecReceived", e.TxnID, ""
	case BranchPrepared:
		if e.OK {
			return "BranchPrepared(ok)", e.TxnID, ""
		}
		return "BranchPrepared(fail)", e.TxnID, ""
	case DoneRecorded:
		return "DoneRecorded", "", e.AgentID
	case DoneAcked:
		return "DoneAcked", "", e.AgentID
	case RecoveredStaged:
		return "RecoveredStaged", e.TxnID, ""
	case RecoveredBranch:
		return "RecoveredBranch", e.TxnID, ""
	case ReadyReached:
		return "ReadyReached", "", ""
	case TimerFired:
		name, txnID, agentID = "TimerFired", "", ""
		if kind, id, ok := splitTimerID(e.ID); ok {
			switch {
			case batchTimerClass(kind):
				// Coalesced per-peer timer: the ID names a peer, and the
				// fire concerns many transactions — no single subject.
			case kind == timerDone:
				agentID = id
			default:
				txnID = id
			}
		}
		return name, txnID, agentID
	default:
		return "Event?", "", ""
	}
}

// TimerInfo resolves a timer ID to the transaction or agent it tracks.
// Coalesced per-peer timers ("pctl|..." etc.) track many transactions
// and resolve to no subject; exactly one of the results is non-empty
// for well-formed per-transaction IDs.
func TimerInfo(timerID string) (txnID, agentID string) {
	kind, id, ok := splitTimerID(timerID)
	if !ok || batchTimerClass(kind) {
		return "", ""
	}
	if kind == timerDone {
		return "", id
	}
	return id, ""
}

// batchTimerClass reports whether kind names a coalesced per-peer timer
// class from timers.go.
func batchTimerClass(kind string) bool {
	switch kind {
	case timerPeerCtl, timerPeerQuery, timerPeerStale, timerPeerDone:
		return true
	}
	return false
}

// StateOf labels the machine's current state for a subject: the
// coordinator/participant role a transaction is in, or the
// completion-notification state of an agent. "-" means the machine
// holds no state for the subject (the terminal/absent state). Must be
// called under the same serialization as Step.
func (m *Machine) StateOf(txnID, agentID string) string {
	if txnID != "" {
		if c, ok := m.coord[txnID]; ok {
			switch {
			case c.active:
				return "coord-active"
			case len(c.pending) > 0:
				return "coord-pending-ctl"
			default:
				return "coord-idle"
			}
		}
		if _, ok := m.staged[txnID]; ok {
			return "staged"
		}
		if b, ok := m.branches[txnID]; ok {
			switch b.state {
			case branchExecuting:
				return "branch-executing"
			case branchExecutingAborted:
				return "branch-executing-aborted"
			case branchPrepared:
				return "branch-prepared"
			case branchInDoubt:
				return "branch-in-doubt"
			default:
				return "branch?"
			}
		}
		return "-"
	}
	if agentID != "" {
		if _, ok := m.done[agentID]; ok {
			return "done-pending"
		}
		return "-"
	}
	return "-"
}
