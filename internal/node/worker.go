package node

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/agent"
	"repro/internal/core"
	"repro/internal/itinerary"
	"repro/internal/protocol"
	"repro/internal/sched"
	"repro/internal/stable"
	"repro/internal/trace"
	"repro/internal/txn"
	"repro/internal/wire"
)

// permanentError marks failures that retrying cannot fix (unknown step
// code, corrupt log, rollback to a savepoint not in the log, operations
// declared non-compensable).
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

func permanent(err error) error { return &permanentError{err: err} }

func isPermanent(err error) bool {
	var p *permanentError
	return errors.As(err, &p)
}

// errImmediateRollback reports that a requested rollback targeted the
// savepoint directly before the aborting step: the rollback is already
// complete and the next step transaction starts from the queue (Figure 4a,
// first case). It is surfaced as a retryable error so the worker's attempt
// accounting still bounds rollback/retry loops.
var errImmediateRollback = errors.New("node: rollback finished at immediate savepoint")

// doneRec is the durable completion record re-sent to the owner until
// acknowledged.
type doneRec struct {
	Owner string
	Msg   doneMsg
}

func init() { wire.RegisterName("node.doneRec", &doneRec{}) }

const donePrefix = "done/"

func doneKey(agentID string) string          { return donePrefix + agentID }
func stableDelDone(agentID string) stable.Op { return stable.Del(doneKey(agentID)) }

// recoverThenWork resolves in-doubt work, loads resources, then starts
// the step scheduler pool over the input queue. The pool is only started
// after recovery completes, so in-doubt transactions are resolved before
// any new step transaction can observe resource state.
func (n *Node) recoverThenWork() {
	if !n.runRecovery() {
		return
	}
	n.step(protocol.ReadyReached{})
	close(n.ready)
	pool := sched.New(sched.Config{
		Workers:     n.cfg.Workers,
		RetryDelay:  n.cfg.RetryDelay,
		MaxAttempts: n.cfg.MaxAttempts,
		Queue:       n.queue,
		Exec:        n.process,
		Permanent:   isPermanent,
		Fail:        n.failAgent,
		Hints:       n.conflictKeys,
		Busy:        n.lockBusy,
		Counters:    n.cfg.Counters,
		Tracer:      n.cfg.Tracer,
	})
	// Publish AND start the pool inside one critical section: Stop
	// snapshots n.pool under the same mutex, so it either sees no pool
	// (recovery lost the race and never starts it) or a fully started
	// one — Pool.Stop's wg.Wait must never run concurrently with
	// Pool.Start's wg.Add. Start only launches goroutines; it does not
	// block, so holding mu here is safe.
	n.mu.Lock()
	select {
	case <-n.stop:
		n.mu.Unlock()
		return
	default:
		n.pool = pool
		pool.Start()
	}
	n.mu.Unlock()
}

// conflictKeys derives the scheduler's conflict hints for one queued
// container: the resource names the next step method declared through
// Registry.RegisterStepHints. Hint-less methods — and rollback
// containers, whose compensations span many steps — return nil and
// schedule freely; 2PL remains the arbiter of actual conflicts.
func (n *Node) conflictKeys(e *stable.Entry) []string {
	if !n.registry.HasHints() {
		return nil // skip the container decode entirely
	}
	c, err := DecodeContainer(e.Data)
	if err != nil || c.Mode != ModeStep || c.Agent == nil {
		return nil
	}
	step, err := c.Agent.Itin.StepAt(c.Agent.Cursor)
	if err != nil {
		return nil
	}
	hint, ok := n.registry.StepHintFor(step.Method)
	if !ok {
		return nil
	}
	return hint(c.Agent, step)
}

// lockBusy reports whether the transaction lock of the named local
// resource is currently held — the scheduler's lock-conflict hint
// (txn.Lock.Busy).
func (n *Node) lockBusy(key string) bool {
	r, ok := n.Resource(key)
	if !ok {
		return false
	}
	return r.ConflictLock().Busy()
}

// runRecovery resolves in-doubt prepared work (staged queue entries and
// prepared branches) with the respective coordinators by replaying the
// stable-storage survivors into the protocol machine, then re-loads the
// resource managers from the stable store and replays undelivered
// completion notifications. It returns false if the node was stopped
// first.
func (n *Node) runRecovery() bool {
	for {
		staged, err := n.queue.StagedTxns()
		if err != nil {
			return false
		}
		branches, err := n.mgr.InDoubtBranches()
		if err != nil {
			return false
		}
		if len(staged)+len(branches) == 0 {
			break
		}
		for i, id := range append(append([]string(nil), staged...), branches...) {
			co := protocol.Coordinator(id)
			if co == "" || co == n.cfg.Name {
				// Self-coordinated: after a crash nothing is active,
				// so the decision record alone decides.
				committed, err := n.mgr.Decided(id)
				if err == nil {
					n.step(protocol.StatusReceived{TxnID: id, Committed: committed})
				}
				continue
			}
			if i < len(staged) {
				n.step(protocol.RecoveredStaged{TxnID: id})
			} else {
				n.step(protocol.RecoveredBranch{TxnID: id})
			}
		}
		select {
		case <-n.stop:
			return false
		case <-n.clock.After(n.cfg.RetryDelay * 5):
		}
	}
	for _, f := range n.factories {
		r, err := f(n.store)
		if err != nil {
			// A resource that cannot load makes the node useless;
			// keep it not-ready (steps routed here will time out and
			// use alternatives) rather than serve corrupt state.
			n.cfg.Logger.Error("node recovery: resource load failed, staying not-ready",
				"node", n.cfg.Name, "err", err)
			return false
		}
		n.mu.Lock()
		n.resources[r.Name()] = r
		n.mu.Unlock()
	}
	n.replayDone()
	return true
}

// replayDone re-enters crash-surviving completion records into the
// notifier's resend cycle.
func (n *Node) replayDone() {
	keys, err := n.store.Keys(donePrefix)
	if err != nil {
		return
	}
	for _, k := range keys {
		raw, ok, err := n.store.Get(k)
		if err != nil || !ok {
			continue
		}
		var rec doneRec
		if err := wire.Decode(raw, &rec); err != nil {
			continue
		}
		n.step(protocol.DoneRecorded{AgentID: strings.TrimPrefix(k, donePrefix), Owner: rec.Owner})
	}
}

// process decodes and executes one queued container. Decoding is fresh on
// every attempt: an aborted attempt's in-memory mutations vanish and the
// stable queue copy is authoritative — the paper's "the state of the agent
// and the rollback log read from stable storage is the state before the
// execution of the aborting step transaction".
func (n *Node) process(entry *stable.Entry, attempt int) error {
	c, err := DecodeContainer(entry.Data)
	if err != nil {
		return permanent(fmt.Errorf("node %s: corrupt container %q: %w", n.cfg.Name, entry.ID, err))
	}
	switch c.Mode {
	case ModeStep:
		return n.runStep(entry, c, attempt)
	case ModeRollback:
		return n.runCompensation(entry, c, attempt)
	default:
		return permanent(fmt.Errorf("node %s: unknown container mode %d", n.cfg.Name, c.Mode))
	}
}

// failAgent removes the container and reports permanent failure to the
// agent's owner.
func (n *Node) failAgent(entry *stable.Entry, cause error) {
	c, err := DecodeContainer(entry.Data)
	if err != nil || c.Agent == nil {
		// Undeliverable: drop the poisoned entry.
		n.cfg.Logger.Error("dropping poisoned queue entry",
			"node", n.cfg.Name, "entry", entry.ID, "cause", cause)
		_ = n.store.Apply(n.queue.RemoveOp(entry))
		return
	}
	n.cfg.Logger.Warn("agent failed permanently",
		"node", n.cfg.Name, "agent", c.Agent.ID, "cause", cause)
	tx, err := n.mgr.Begin()
	if err != nil {
		return
	}
	tx.AddCommitOps(n.queue.RemoveOp(entry))
	if err := n.finishAgent(tx, c.Agent, true, cause.Error()); err != nil {
		_ = tx.Abort()
	}
}

// finishAgent records completion durably within tx, commits, and hands
// the notification to the protocol machine's notifier role (sent now,
// re-sent on its timer until acknowledged).
func (n *Node) finishAgent(tx *txn.Tx, a *agent.Agent, failed bool, reason string) error {
	if tr := n.cfg.Tracer; tr != nil {
		tr.Rec(trace.OpAgentStep, tx.ID(), a.ID, "finish", "", "", 0)
	}
	data, err := EncodeContainer(&Container{Mode: ModeStep, Agent: a})
	if err != nil {
		return err
	}
	rec := doneRec{
		Owner: a.Owner,
		Msg:   doneMsg{AgentID: a.ID, Failed: failed, Reason: reason, Data: data},
	}
	raw, err := wire.Encode(&rec)
	if err != nil {
		return err
	}
	tx.AddCommitOps(stable.Put(doneKey(a.ID), raw))
	if err := tx.Commit(); err != nil {
		return err
	}
	// Count the committed step transaction BEFORE the notification goes
	// out: once the owner sees the done message it may snapshot metrics,
	// and the final step must already be in them.
	if !failed && n.cfg.Counters != nil {
		n.cfg.Counters.IncStepTxn()
	}
	n.step(protocol.DoneRecorded{AgentID: a.ID, Owner: a.Owner})
	return nil
}

// runStep executes the next itinerary step inside a step transaction (§2):
// destructive read from the input queue, step method invocation, log
// append (BOS, operation entries, EOS), savepoint constitution, and the
// two-phase hand-off of the agent to the next node's input queue.
func (n *Node) runStep(entry *stable.Entry, c *Container, attempt int) error {
	a := c.Agent
	step, err := a.Itin.StepAt(a.Cursor)
	if err != nil {
		return permanent(fmt.Errorf("node %s: agent %s cursor: %w", n.cfg.Name, a.ID, err))
	}
	fn, ok := n.registry.Step(step.Method)
	if !ok {
		return permanent(fmt.Errorf("node %s: unknown step method %q", n.cfg.Name, step.Method))
	}

	tx, err := n.mgr.Begin()
	if err != nil {
		return err
	}
	// The join record for timeline reconstruction: the worker is the only
	// place that knows both the agent entry and its step transaction.
	if tr := n.cfg.Tracer; tr != nil {
		tr.Rec(trace.OpAgentStep, tx.ID(), a.ID, step.Method, "", "", int64(attempt))
	}
	tx.AddCommitOps(n.queue.RemoveOp(entry))
	seq := a.StepSeq
	sctx := &stepCtx{node: n, a: a, tx: tx, seq: seq}
	if err := fn(sctx); err != nil {
		abortErr := tx.Abort()
		if n.cfg.Counters != nil {
			n.cfg.Counters.IncStepTxnAbort()
		}
		if abortErr != nil {
			return abortErr
		}
		var rb *agent.RollbackRequest
		if errors.As(err, &rb) {
			return n.startRollback(entry, rb.SpID)
		}
		// §2: abort and restart the step transaction.
		return fmt.Errorf("node %s: step %q aborted: %w", n.cfg.Name, step.Method, err)
	}

	// Step body succeeded: append the step's log entries.
	a.StepSeq = seq + 1
	hasMixed := false
	a.Log.Append(&core.BeginStepEntry{Node: n.cfg.Name, Seq: seq})
	for _, op := range sctx.ops {
		if op.Kind == core.OpMixed {
			hasMixed = true
		}
		a.Log.Append(op)
	}
	a.Log.Append(&core.EndStepEntry{
		Node:     n.cfg.Name,
		Seq:      seq,
		HasMixed: hasMixed,
		AltNodes: step.Alt,
	})

	// Advance the itinerary and maintain savepoints (§4.4.2). Subs with
	// a partial entry order get a concrete, locality-aware order fixed
	// the moment they are entered; the reordered itinerary is captured
	// in the sub's savepoint, so rollback restores the same order.
	move, err := a.Itin.AdvanceHook(a.Cursor, itinerary.LocalityOrder(n.cfg.Name))
	if err != nil {
		_ = tx.Abort()
		return permanent(fmt.Errorf("node %s: advance itinerary: %w", n.cfg.Name, err))
	}
	a.Cursor = move.Next
	if move.TopLevelLeft != "" {
		// Completing a top-level sub-itinerary discards all rollback
		// information: the agent can never be rolled back past here.
		a.Log.Clear()
	} else {
		for _, id := range move.Left {
			if a.Log.HasSavepoint(id) {
				if err := a.Log.RemoveSavepoint(id); err != nil {
					_ = tx.Abort()
					return permanent(fmt.Errorf("node %s: remove savepoint %q: %w", n.cfg.Name, id, err))
				}
			}
		}
	}
	if !move.Next.Done {
		ids := append(append([]string(nil), sctx.saveReqs...), move.Entered...)
		for _, id := range ids {
			if err := n.appendSavepoint(a, id); err != nil {
				_ = tx.Abort()
				return permanent(err)
			}
		}
	}
	n.observeLogSize(a)

	if move.Next.Done {
		// finishAgent counts the committed step transaction itself,
		// before the completion notification can race a metrics reader.
		if err := n.finishAgent(tx, a, false, ""); err != nil {
			_ = tx.Abort()
			return err
		}
		return nil
	}

	next, err := a.Itin.StepAt(a.Cursor)
	if err != nil {
		_ = tx.Abort()
		return permanent(err)
	}
	dest := protocol.PickDestination(next.Loc, next.Alt, attempt)
	if key, ok := RingKey(next.Loc, a.ID); ok {
		if n.members == nil {
			_ = tx.Abort()
			return permanent(fmt.Errorf("node %s: agent %s location %q needs the membership layer", n.cfg.Name, a.ID, next.Loc))
		}
		dest = n.ringDest(key)
	}
	var onCommit func()
	if n.cfg.Counters != nil {
		onCommit = n.cfg.Counters.IncStepTxn
	}
	return n.shipContainer(tx, &Container{Mode: ModeStep, Agent: a}, dest, nil, onCommit)
}

// appendSavepoint constitutes a savepoint at the current end of the log.
func (n *Node) appendSavepoint(a *agent.Agent, id string) error {
	if a.Log.HasSavepoint(id) {
		// Re-entry after a rollback to this savepoint: it is still in
		// the log and still valid.
		return nil
	}
	if n.cfg.Counters != nil {
		n.cfg.Counters.IncSavepoints()
	}
	return appendSavepointTo(a, id, n.cfg.LogMode, n.cfg.SagaBaseline)
}

// appendSavepointTo writes one savepoint at the current end of the log. If
// the log already ends with a savepoint, the new one shares its state and
// is written as a data-less special savepoint referencing the existing one
// (§4.4.2); the reference is flattened to the root data-carrying entry so
// removal order between nested scopes stays unconstrained.
func appendSavepointTo(a *agent.Agent, id string, mode core.LogMode, sagaWRO bool) error {
	if sp, ok := a.Log.Last().(*core.SavepointEntry); ok {
		ref := sp.ID
		if sp.Special {
			ref = sp.RefID
		}
		return a.Log.AppendSpecialSavepoint(id, ref, true)
	}
	img, err := a.SystemImage()
	if sagaWRO {
		img, err = a.SystemImageWithWRO()
	}
	if err != nil {
		return err
	}
	return a.Log.AppendSavepoint(id, img, mode, true)
}

// AppendInitialSavepoints constitutes the savepoints of the
// sub-itineraries entered to reach an agent's first step; launchers call
// it before enqueueing a fresh agent.
func AppendInitialSavepoints(a *agent.Agent, entered []string, mode core.LogMode) error {
	return AppendInitialSavepointsMode(a, entered, mode, false)
}

// AppendInitialSavepointsMode is AppendInitialSavepoints with the
// saga-baseline switch (S16b ablation).
func AppendInitialSavepointsMode(a *agent.Agent, entered []string, mode core.LogMode, sagaWRO bool) error {
	for _, id := range entered {
		if a.Log.HasSavepoint(id) {
			continue
		}
		if err := appendSavepointTo(a, id, mode, sagaWRO); err != nil {
			return err
		}
	}
	return nil
}

func (n *Node) observeLogSize(a *agent.Agent) {
	if n.cfg.Counters == nil {
		return
	}
	if sz, err := a.Log.EncodedSize(); err == nil {
		n.cfg.Counters.ObserveLogBytes(int64(sz))
	}
}

// startRollback implements Figure 4a / 5a: after the aborting step
// transaction rolled back, a new transaction re-reads the agent and log
// from stable storage and either finishes immediately (savepoint directly
// before the aborting step) or routes the agent into its first
// compensation transaction — the routing decisions are
// protocol.PopToTarget / protocol.CompensationDest.
func (n *Node) startRollback(entry *stable.Entry, spID string) error {
	c, err := DecodeContainer(entry.Data) // fresh pre-step state
	if err != nil {
		return permanent(err)
	}
	a := c.Agent
	if !a.Log.HasSavepoint(spID) {
		return permanent(fmt.Errorf("node %s: agent %s: no savepoint %q in log (non-compensable or discarded)", n.cfg.Name, a.ID, spID))
	}
	if reached, popped := protocol.PopToTarget(a.Log, spID); reached {
		// Savepoint set directly before the aborting step: rollback is
		// finished. If stale savepoints above the target were popped,
		// rewrite the queued container so they do not linger.
		if popped > 0 {
			tx, err := n.mgr.Begin()
			if err != nil {
				return err
			}
			tx.AddCommitOps(n.queue.RemoveOp(entry))
			data, err := EncodeContainer(&Container{Mode: ModeStep, Agent: a})
			if err != nil {
				_ = tx.Abort()
				return permanent(err)
			}
			ops, err := n.queue.EnqueueOps(a.ID, data)
			if err != nil {
				_ = tx.Abort()
				return err
			}
			tx.AddCommitOps(ops...)
			if err := tx.Commit(); err != nil {
				return err
			}
		}
		return errImmediateRollback
	}

	eos, ok := protocol.PeekEOS(a.Log)
	if !ok {
		return permanent(fmt.Errorf("node %s: agent %s: savepoint %q unreachable (no end-of-step entry)", n.cfg.Name, a.ID, spID))
	}
	dest := protocol.CompensationDest(eos, n.cfg.Optimized, n.cfg.Name)
	tx, err := n.mgr.Begin()
	if err != nil {
		return err
	}
	tx.AddCommitOps(n.queue.RemoveOp(entry))
	return n.shipContainer(tx, &Container{Mode: ModeRollback, SpID: spID, Agent: a}, dest, nil, nil)
}

// shipContainer finishes a transaction that hands the container to dest:
// a local enqueue joins the commit batch directly; a remote hand-off runs
// two-phase commit with the destination queue (prepare, decide+commit
// locally, reliably commit remotely). Extra pre-prepared participants
// (the RCE branch of Figure 5b) are committed with the same decision.
// onCommit (may be nil) is the caller's metric hook, run just before the
// commit lands (see commitDistributed).
func (n *Node) shipContainer(tx *txn.Tx, c *Container, dest string, parts []protocol.Participant, onCommit func()) error {
	data, err := EncodeContainer(c)
	if err != nil {
		_ = tx.Abort()
		n.abortParts(tx, parts)
		return permanent(err)
	}
	hook := onCommit
	if dest != n.cfg.Name && n.cfg.Counters != nil {
		hook = func() {
			n.cfg.Counters.IncAgentTransfer(int64(len(data)))
			if onCommit != nil {
				onCommit()
			}
		}
	}
	if dest == n.cfg.Name {
		ops, err := n.queue.EnqueueOps(c.Agent.ID, data)
		if err != nil {
			_ = tx.Abort()
			n.abortParts(tx, parts)
			return err
		}
		tx.AddCommitOps(ops...)
		return n.commitDistributed(tx, parts, hook)
	}
	prep, err := n.prepareEnqueueRemote(tx, dest, c.Agent.ID, data)
	if err != nil {
		_ = tx.Abort()
		n.abortParts(tx, parts)
		return fmt.Errorf("node %s: hand-off to %s: %w", n.cfg.Name, dest, err)
	}
	return n.commitDistributed(tx, append(parts, prep), hook)
}
