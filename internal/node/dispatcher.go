package node

import (
	"time"

	"repro/internal/agent"
	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/txn"
	"repro/internal/wire"
)

// dispatch is the message-handling goroutine. It serves the participant
// side of the distributed step/compensation transactions and, on every
// tick, re-sends unacknowledged control messages and resolves in-doubt
// prepared work by querying coordinators (presumed abort).
func (n *Node) dispatch() {
	ticker := time.NewTicker(n.cfg.RetryDelay * 5)
	defer ticker.Stop()
	for {
		select {
		case <-n.stop:
			return
		case msg, ok := <-n.ep.Recv():
			if !ok {
				return
			}
			n.handle(msg)
		case <-ticker.C:
			n.tick()
		}
	}
}

func (n *Node) handle(msg network.Message) {
	switch msg.Kind {
	case kindEnqueuePrepare:
		n.handleEnqueuePrepare(msg)
	case kindEnqueueCommit:
		n.handleEnqueueCtl(msg, true)
	case kindEnqueueAbort:
		n.handleEnqueueCtl(msg, false)
	case kindTxnQuery:
		n.handleTxnQuery(msg)
	case kindTxnStatus:
		n.handleTxnStatus(msg)
	case kindRCEExec:
		// Executed asynchronously: compensating operations wait on
		// resource locks, and a blocked dispatcher could not deliver
		// the acknowledgements the worker's own transaction needs —
		// classic head-of-line blocking.
		n.spawnRCEExec(msg)
	case kindRCECommit:
		n.handleRCECtl(msg, true)
	case kindRCEAbort:
		n.handleRCECtl(msg, false)
	case kindAgentLaunch:
		n.handleLaunch(msg)
	case kindAgentDoneAck:
		n.handleDoneAck(msg)
	case kindEnqueuePrepareAck, kindRCEExecAck:
		var ack ackMsg
		if err := wire.Decode(msg.Payload, &ack); err == nil {
			n.deliverAck(msg.Kind, ack.TxnID, ack)
		}
	case kindEnqueueCommitAck, kindEnqueueAbortAck, kindRCECommitAck, kindRCEAbortAck:
		var ack ackMsg
		if err := wire.Decode(msg.Payload, &ack); err != nil {
			return
		}
		commitAck := msg.Kind == kindEnqueueCommitAck || msg.Kind == kindRCECommitAck
		if n.ctlAcked(ctlKindOf(msg.Kind), ack.TxnID) && commitAck && !n.hasPendingCtl(ack.TxnID) {
			// Every participant acknowledged the commit: the decision
			// record can be garbage-collected.
			_ = n.store.Apply(n.mgr.ClearDecisionOp(ack.TxnID))
		}
	}
}

// ctlKindOf maps an ack kind back to the control kind it acknowledges.
func ctlKindOf(ackKind string) string {
	switch ackKind {
	case kindEnqueueCommitAck:
		return kindEnqueueCommit
	case kindEnqueueAbortAck:
		return kindEnqueueAbort
	case kindRCECommitAck:
		return kindRCECommit
	case kindRCEAbortAck:
		return kindRCEAbort
	default:
		return ackKind
	}
}

// handleEnqueuePrepare durably stages a container insertion (participant
// prepare of the queue hand-off).
func (n *Node) handleEnqueuePrepare(msg network.Message) {
	var req enqueuePrepareMsg
	if err := wire.Decode(msg.Payload, &req); err != nil {
		return
	}
	reply := ackMsg{TxnID: req.TxnID, OK: true}
	if !n.isReady() {
		reply.OK = false
		reply.Err = "node recovering"
	} else if err := n.queue.Prepare(req.TxnID, req.EntryID, req.Data); err != nil {
		reply.OK = false
		reply.Err = err.Error()
	}
	n.send(msg.From, kindEnqueuePrepareAck, &reply)
}

// handleEnqueueCtl commits or aborts a staged insertion. Both operations
// are idempotent, so duplicated control messages are harmless.
func (n *Node) handleEnqueueCtl(msg network.Message, commit bool) {
	var req txnCtlMsg
	if err := wire.Decode(msg.Payload, &req); err != nil {
		return
	}
	var err error
	ackKind := kindEnqueueAbortAck
	if commit {
		err = n.queue.CommitStaged(req.TxnID)
		ackKind = kindEnqueueCommitAck
	} else {
		err = n.queue.AbortStaged(req.TxnID)
	}
	reply := ackMsg{TxnID: req.TxnID, OK: err == nil}
	if err != nil {
		reply.Err = err.Error()
	}
	n.send(msg.From, ackKind, &reply)
}

// handleTxnQuery answers a participant's in-doubt query about a
// transaction this node coordinated. Three cases: a decision record means
// committed; a still-active transaction means "no answer yet" (stay
// silent, the participant retries); otherwise the transaction never
// committed — presumed abort.
func (n *Node) handleTxnQuery(msg network.Message) {
	var req txnCtlMsg
	if err := wire.Decode(msg.Payload, &req); err != nil {
		return
	}
	committed, err := n.mgr.Decided(req.TxnID)
	if err != nil {
		return
	}
	if !committed {
		n.mu.Lock()
		active := n.activeTxns[req.TxnID]
		n.mu.Unlock()
		if active {
			return // outcome not decided yet; participant will re-ask
		}
	}
	n.send(msg.From, kindTxnStatus, &txnStatusMsg{TxnID: req.TxnID, Committed: committed})
}

// handleTxnStatus resolves local in-doubt work with a coordinator verdict:
// staged queue entries, live prepared RCE branches, and crash-surviving
// branch records.
func (n *Node) handleTxnStatus(msg network.Message) {
	var st txnStatusMsg
	if err := wire.Decode(msg.Payload, &st); err != nil {
		return
	}
	n.resolveTxn(st.TxnID, st.Committed)
}

func (n *Node) resolveTxn(txnID string, committed bool) {
	// Staged queue entry?
	if committed {
		_ = n.queue.CommitStaged(txnID)
	} else {
		_ = n.queue.AbortStaged(txnID)
	}
	// Live prepared branch?
	n.mu.Lock()
	branch, live := n.rceBranches[txnID]
	if live {
		delete(n.rceBranches, txnID)
	}
	if !live && !committed && n.rceInFlight[txnID] {
		// The abort overtook the branch: its RCE execution is still
		// running (typically blocked on a resource lock). Poison it so
		// it aborts instead of preparing — a branch prepared *after*
		// the coordinator's presumed abort would hold its locks until
		// the stale-branch query cycle, and under retry pressure those
		// zombie holds chain into a livelock where no attempt can ever
		// prepare inside the coordinator's ack window.
		n.rceAborted[txnID] = true
	}
	n.mu.Unlock()
	if live {
		if committed {
			_ = branch.tx.CommitPrepared()
		} else {
			_ = branch.tx.Abort()
		}
		return
	}
	// Crash-surviving branch record (no live Tx): replay/drop the redo.
	_ = n.mgr.ResolveBranch(txnID, committed)
}

// spawnRCEExec runs handleRCEExec on its own goroutine, deduplicating
// concurrent requests for the same transaction.
func (n *Node) spawnRCEExec(msg network.Message) {
	var req rceExecMsg
	if err := wire.Decode(msg.Payload, &req); err != nil {
		return
	}
	n.mu.Lock()
	if n.rceInFlight[req.TxnID] {
		n.mu.Unlock()
		return // already executing; its ack will answer the retry too
	}
	n.rceInFlight[req.TxnID] = true
	n.mu.Unlock()
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		defer func() {
			n.mu.Lock()
			delete(n.rceInFlight, req.TxnID)
			delete(n.rceAborted, req.TxnID)
			n.mu.Unlock()
		}()
		n.handleRCEExec(msg)
	}()
}

// handleRCEExec executes a resource-compensation-entry list inside a
// prepared branch of the coordinator's compensation transaction — the
// resource-node half of Figure 5b. The acknowledgement is the paper's ACK;
// it is sent only after the branch is durably prepared so that commit is
// atomic across both nodes.
func (n *Node) handleRCEExec(msg network.Message) {
	var req rceExecMsg
	if err := wire.Decode(msg.Payload, &req); err != nil {
		return
	}
	reply := ackMsg{TxnID: req.TxnID, OK: true}
	if !n.isReady() {
		reply.OK = false
		reply.Err = "node recovering"
		n.send(msg.From, kindRCEExecAck, &reply)
		return
	}
	n.mu.Lock()
	_, live := n.rceBranches[req.TxnID]
	n.mu.Unlock()
	if live {
		// Duplicate request (lost ack): already prepared.
		n.send(msg.From, kindRCEExecAck, &reply)
		return
	}
	tx := n.mgr.BeginWithID(req.TxnID)
	err := n.execCompOps(tx, nil, req.Ops)
	if err == nil {
		err = tx.Prepare()
	}
	if err != nil {
		_ = tx.Abort()
		reply.OK = false
		reply.Err = err.Error()
		n.send(msg.From, kindRCEExecAck, &reply)
		return
	}
	n.mu.Lock()
	if n.rceAborted[req.TxnID] {
		// The coordinator aborted while the ops above were executing
		// (lock waits make that window wide). Registering the branch
		// now would create a zombie: prepared, lock-holding, and
		// already presumed-aborted by its coordinator.
		delete(n.rceAborted, req.TxnID)
		n.mu.Unlock()
		_ = tx.Abort()
		reply.OK = false
		reply.Err = "aborted by coordinator during execution"
		n.send(msg.From, kindRCEExecAck, &reply)
		return
	}
	n.rceBranches[req.TxnID] = &rceBranch{tx: tx, prepared: time.Now()}
	n.mu.Unlock()
	if n.cfg.Counters != nil {
		n.cfg.Counters.IncCompOps(int64(len(req.Ops)))
	}
	n.send(msg.From, kindRCEExecAck, &reply)
}

// handleRCECtl commits or aborts a prepared RCE branch.
func (n *Node) handleRCECtl(msg network.Message, commit bool) {
	var req txnCtlMsg
	if err := wire.Decode(msg.Payload, &req); err != nil {
		return
	}
	n.resolveTxn(req.TxnID, commit)
	ackKind := kindRCEAbortAck
	if commit {
		ackKind = kindRCECommitAck
	}
	n.send(msg.From, ackKind, &ackMsg{TxnID: req.TxnID, OK: true})
}

// handleLaunch inserts a fresh agent container into the input queue.
func (n *Node) handleLaunch(msg network.Message) {
	var req launchMsg
	if err := wire.Decode(msg.Payload, &req); err != nil {
		return
	}
	reply := ackMsg{TxnID: req.ID, OK: true}
	if err := n.queue.Enqueue(req.ID, req.Data); err != nil {
		reply.OK = false
		reply.Err = err.Error()
	}
	n.send(msg.From, kindAgentLaunchAck, &reply)
}

// handleDoneAck garbage-collects a durable completion record once the
// owner acknowledged the notification.
func (n *Node) handleDoneAck(msg network.Message) {
	var ack ackMsg
	if err := wire.Decode(msg.Payload, &ack); err != nil {
		return
	}
	_ = n.store.Apply(stableDelDone(ack.TxnID))
}

// tick drives every retry loop: unacknowledged control messages, in-doubt
// prepared work, and undelivered completion notifications.
func (n *Node) tick() {
	n.mu.Lock()
	ctls := make([]pendingCtl, 0, len(n.pendingCtl))
	for _, p := range n.pendingCtl {
		ctls = append(ctls, p)
	}
	staleBranches := make([]string, 0)
	for id, b := range n.rceBranches {
		if time.Since(b.prepared) > 2*n.cfg.AckTimeout {
			staleBranches = append(staleBranches, id)
		}
	}
	n.mu.Unlock()

	for _, p := range ctls {
		n.send(p.to, p.kind, &txnCtlMsg{TxnID: p.txnID})
	}
	// In-doubt staged queue entries: ask their coordinators.
	if staged, err := n.queue.StagedTxns(); err == nil {
		for _, id := range staged {
			if co := coordinatorOf(id); co != "" && co != n.cfg.Name {
				n.send(co, kindTxnQuery, &txnCtlMsg{TxnID: id})
			}
		}
	}
	// Stale prepared branches: coordinator may have aborted silently.
	for _, id := range staleBranches {
		if co := coordinatorOf(id); co != "" && co != n.cfg.Name {
			n.send(co, kindTxnQuery, &txnCtlMsg{TxnID: id})
		}
	}
	// Undelivered completion notifications.
	n.resendDone()
}

// execCompOps runs compensating operations in the order given (the caller
// arranges reverse log order). a may be nil for shipped resource batches.
func (n *Node) execCompOps(tx *txn.Tx, a *agent.Agent, ops []*core.OpEntry) error {
	for _, op := range ops {
		if err := n.execCompOp(tx, a, op); err != nil {
			return err
		}
	}
	return nil
}
