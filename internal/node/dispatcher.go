package node

import (
	"strings"

	"repro/internal/agent"
	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/protocol"
	"repro/internal/trace"
	"repro/internal/txn"
	"repro/internal/wire"
)

// dispatch is the message-handling goroutine: it decodes inbound
// protocol messages into events for the protocol machine. There is no
// ticker — every retry and in-doubt cycle runs on the node's timer
// wheel, armed and canceled by the machine itself.
func (n *Node) dispatch() {
	for {
		select {
		case <-n.stop:
			return
		case msg, ok := <-n.ep.Recv():
			if !ok {
				return
			}
			n.handle(msg)
		}
	}
}

// step feeds one event through the protocol machine (serialized under
// pmu) and applies the returned effects. Effects are applied outside
// the machine lock, in emission order, by the same caller — they are
// idempotent or state-guarded, so concurrent steppers interleaving
// their effect application is safe.
//
// All messages the transition batch emits — including those of nested
// transitions its effects trigger — are collected per destination and
// flushed in one endpoint call per peer when the outermost step
// returns, so a commit fan-out or an ack+status pair coalesces on the
// wire instead of paying one network hop each.
func (n *Node) step(ev protocol.Event) {
	if n.cfg.NoCoalesce {
		n.stepInto(ev, nil)
		return
	}
	var b outBatch
	n.stepInto(ev, &b)
	b.flush(n)
}

// stepInto is step with the caller's outbound batch: nested transitions
// (StageEntry, ResolveStaged outcomes) join the enclosing batch rather
// than flushing early.
func (n *Node) stepInto(ev protocol.Event, b *outBatch) {
	tr := n.cfg.Tracer
	var name, txnID, agentID, before string
	if tr != nil {
		name, txnID, agentID = protocol.EventInfo(ev)
	}
	n.pmu.Lock()
	if tr != nil {
		before = n.machine.StateOf(txnID, agentID)
	}
	effs := n.machine.Step(ev)
	var after string
	if tr != nil {
		after = n.machine.StateOf(txnID, agentID)
	}
	n.pmu.Unlock()
	if tr != nil {
		tr.Rec(trace.OpTransition, txnID, agentID, name, before, after, int64(len(effs)))
	}
	if n.cfg.Counters != nil {
		n.cfg.Counters.IncProtocolTransition()
	}
	for _, eff := range effs {
		n.applyEffect(eff, b)
	}
}

// stepAll feeds a batch frame's per-transaction events through the
// machine under one shared outbound batch, so the replies to a
// coalesced frame coalesce on the way back too.
func (n *Node) stepAll(evs []protocol.Event) {
	if n.cfg.NoCoalesce {
		for _, ev := range evs {
			n.stepInto(ev, nil)
		}
		return
	}
	var b outBatch
	for _, ev := range evs {
		n.stepInto(ev, &b)
	}
	b.flush(n)
}

// onTimer is the wheel's fire callback: a timer event like any other,
// except for the two driver-level timers (the GC-stager linger and the
// per-peer hold-buffer lingers), which never reach the machine.
func (n *Node) onTimer(id string) {
	if id == stagerFlushID {
		n.flushCtlStage()
		return
	}
	if peer, ok := strings.CutPrefix(id, holdPrefix); ok {
		n.flushHeld(peer)
		return
	}
	if tr := n.cfg.Tracer; tr != nil {
		txnID, agentID := protocol.TimerInfo(id)
		tr.Rec(trace.OpTimerFire, txnID, agentID, id, "", "", 0)
	}
	n.step(protocol.TimerFired{ID: id})
}

// handle translates one wire message into a protocol event. All
// decision logic lives in the machine; this switch only decodes and,
// where a decision needs a stable-storage fact (the presumed-abort
// decision record), reads it to enrich the event. Protocol payloads go
// through protocol.Decode, which accepts both the binary fast path and
// legacy gob — the node never needs to know which format a peer runs.
func (n *Node) handle(msg network.Message) {
	if tr := n.cfg.Tracer; tr != nil {
		tr.Rec(trace.OpWireRecv, "", "", msg.Kind, msg.From, "", int64(len(msg.Payload)))
	}
	switch msg.Kind {
	case protocol.KindEnqueuePrepare:
		var req protocol.PrepareMsg
		if err := protocol.Decode(msg.Payload, &req); err != nil {
			return
		}
		n.step(protocol.PrepareReceived{TxnID: req.TxnID, EntryID: req.EntryID, From: msg.From, Data: req.Data})
	case protocol.KindEnqueueCommit, protocol.KindEnqueueAbort:
		var req protocol.CtlMsg
		if err := protocol.Decode(msg.Payload, &req); err != nil {
			return
		}
		n.step(protocol.CtlReceived{TxnID: req.TxnID, From: msg.From, Commit: msg.Kind == protocol.KindEnqueueCommit})
	case protocol.KindRCECommit, protocol.KindRCEAbort:
		var req protocol.CtlMsg
		if err := protocol.Decode(msg.Payload, &req); err != nil {
			return
		}
		n.step(protocol.CtlReceived{TxnID: req.TxnID, From: msg.From, Commit: msg.Kind == protocol.KindRCECommit, RCE: true})
	case protocol.KindTxnQuery:
		var req protocol.CtlMsg
		if err := protocol.Decode(msg.Payload, &req); err != nil {
			return
		}
		decided, err := n.mgr.Decided(req.TxnID)
		if err != nil {
			return
		}
		n.step(protocol.QueryReceived{TxnID: req.TxnID, From: msg.From, StoreDecided: decided})
	case protocol.KindCtlBatch:
		// One multi-transaction resend frame explodes into the exact
		// per-transaction events the unbatched kinds produce; replies
		// share one outbound batch.
		var req protocol.CtlBatchMsg
		if err := protocol.Decode(msg.Payload, &req); err != nil {
			return
		}
		evs := make([]protocol.Event, 0, len(req.Items))
		for _, it := range req.Items {
			evs = append(evs, protocol.CtlReceived{TxnID: it.TxnID, From: msg.From, Commit: it.Commit, RCE: it.RCE})
		}
		n.stepAll(evs)
	case protocol.KindQueryBatch:
		var req protocol.QueryBatchMsg
		if err := protocol.Decode(msg.Payload, &req); err != nil {
			return
		}
		evs := make([]protocol.Event, 0, len(req.TxnIDs))
		for _, txnID := range req.TxnIDs {
			decided, err := n.mgr.Decided(txnID)
			if err != nil {
				continue
			}
			evs = append(evs, protocol.QueryReceived{TxnID: txnID, From: msg.From, StoreDecided: decided})
		}
		n.stepAll(evs)
	case protocol.KindTxnStatus:
		var st protocol.StatusMsg
		if err := protocol.Decode(msg.Payload, &st); err != nil {
			return
		}
		n.step(protocol.StatusReceived{TxnID: st.TxnID, Committed: st.Committed})
	case protocol.KindRCEExec:
		var req protocol.RCEExecMsg
		if err := protocol.Decode(msg.Payload, &req); err != nil {
			return
		}
		n.step(protocol.RCEExecReceived{TxnID: req.TxnID, From: msg.From, Ops: req.Ops})
	case protocol.KindEnqueuePrepareAck, protocol.KindRCEExecAck,
		protocol.KindEnqueueCommitAck, protocol.KindEnqueueAbortAck,
		protocol.KindRCECommitAck, protocol.KindRCEAbortAck:
		var ack protocol.AckMsg
		if err := protocol.Decode(msg.Payload, &ack); err != nil {
			return
		}
		n.step(protocol.AckReceived{Kind: msg.Kind, TxnID: ack.TxnID, From: msg.From, OK: ack.OK, Err: ack.Err})
	case kindAgentLaunch:
		n.handleLaunch(msg)
	case kindMemberAnnounce:
		if n.members != nil {
			n.handleAnnounce(msg)
		}
	case kindAgentDoneAck:
		var ack protocol.AckMsg
		if err := protocol.Decode(msg.Payload, &ack); err != nil {
			return
		}
		n.step(protocol.DoneAcked{AgentID: ack.TxnID})
	}
}

// applyEffect executes one machine effect. Mechanics only — queue and
// store operations, transaction settles, sends, timers; any outcome the
// machine must know about loops back in as another event. Sends join
// the enclosing transition's outbound batch b (nil with NoCoalesce).
func (n *Node) applyEffect(eff protocol.Effect, b *outBatch) {
	switch e := eff.(type) {
	case protocol.SendMsg:
		n.sendTo(b, e.To, e.Kind, e.Payload)
	case protocol.DeliverAck:
		n.deliverAck(e.Kind, e.TxnID, protocol.AckMsg{TxnID: e.TxnID, OK: e.OK, Err: e.Err})
	case protocol.StageEntry:
		// Membership: a draining (Left) node and an already-adopted agent
		// epoch are refused before anything touches stable storage — the
		// coordinator sees a NOT-OK ack and aborts, same as a full queue.
		err := n.adoptionGate(e)
		if err == nil {
			err = n.queue.Prepare(e.TxnID, e.EntryID, e.Data)
		}
		if err == nil {
			n.stepInto(protocol.StageOutcome{TxnID: e.TxnID, OK: true}, b)
		}
		reply := protocol.AckMsg{TxnID: e.TxnID, OK: err == nil}
		if err != nil {
			reply.Err = err.Error()
		}
		n.sendTo(b, e.From, e.AckKind, &reply)
	case protocol.ResolveStaged:
		var err error
		if e.Commit {
			err = n.queue.CommitStaged(e.TxnID)
		} else {
			err = n.queue.AbortStaged(e.TxnID)
		}
		if err != nil {
			// The entry is still durably staged but the machine already
			// dropped it: re-enter the in-doubt cycle so the query timer
			// retries the verdict — the replacement for the old
			// dispatcher tick re-deriving in-doubt work from
			// queue.StagedTxns() every cycle. (The coordinator keeps its
			// commit obligation too: refused ctl acks do not retire it.)
			n.stepInto(protocol.RecoveredStaged{TxnID: e.TxnID}, b)
		}
		if err == nil {
			n.resolveAdoption(e.TxnID, e.Commit)
		}
		if e.AckTo != "" {
			reply := protocol.AckMsg{TxnID: e.TxnID, OK: err == nil}
			if err != nil {
				reply.Err = err.Error()
			}
			n.sendTo(b, e.AckTo, e.AckKind, &reply)
		}
	case protocol.CommitBranch:
		if tx := n.takeBranchTx(e.TxnID); tx != nil {
			_ = tx.CommitPrepared()
		}
	case protocol.AbortBranch:
		if tx := n.takeBranchTx(e.TxnID); tx != nil {
			_ = tx.Abort()
		}
	case protocol.ResolveBranchRecord:
		_ = n.mgr.ResolveBranch(e.TxnID, e.Commit)
	case protocol.ExecBranch:
		// Executed asynchronously: compensating operations wait on
		// resource locks, and a blocked dispatcher could not deliver
		// the acknowledgements the worker's own transaction needs —
		// classic head-of-line blocking.
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.runBranchExec(e.TxnID, e.Ops)
		}()
	case protocol.ClearDecision:
		n.stageCtlOp(n.mgr.ClearDecisionOp(e.TxnID))
	case protocol.ResendDone:
		n.sendDone(b, e.AgentID)
	case protocol.DropDone:
		n.stageCtlOp(stableDelDone(e.AgentID))
	case protocol.ArmTimer:
		if tr := n.cfg.Tracer; tr != nil {
			txnID, agentID := protocol.TimerInfo(e.ID)
			tr.Rec(trace.OpTimerArm, txnID, agentID, e.ID, "", "", int64(e.D))
		}
		if n.wheel != nil {
			n.wheel.Schedule(e.ID, e.D)
		}
	case protocol.CancelTimer:
		if tr := n.cfg.Tracer; tr != nil {
			txnID, agentID := protocol.TimerInfo(e.ID)
			tr.Rec(trace.OpTimerCancel, txnID, agentID, e.ID, "", "", 0)
		}
		if n.wheel != nil {
			n.wheel.Cancel(e.ID)
		}
	case protocol.CountCompOps:
		if n.cfg.Counters != nil {
			n.cfg.Counters.IncCompOps(e.N)
		}
	}
}

// runBranchExec executes a resource-compensation-entry list inside a
// branch of the coordinator's compensation transaction — the
// resource-node half of Figure 5b. On success the prepared transaction
// is parked for the coordinator's verdict; the machine decides (in the
// BranchPrepared transition) whether the branch is acknowledged or —
// if an abort overtook the execution — settled immediately.
func (n *Node) runBranchExec(txnID string, ops []*core.OpEntry) {
	tx := n.mgr.BeginWithID(txnID)
	err := n.execCompOps(tx, nil, ops)
	if err == nil {
		err = tx.Prepare()
	}
	if err != nil {
		_ = tx.Abort()
		n.step(protocol.BranchPrepared{TxnID: txnID, OK: false, Err: err.Error()})
		return
	}
	n.parkBranchTx(txnID, tx)
	n.step(protocol.BranchPrepared{TxnID: txnID, OK: true})
}

func (n *Node) parkBranchTx(txnID string, tx *txn.Tx) {
	n.mu.Lock()
	n.branchTx[txnID] = tx
	n.mu.Unlock()
}

func (n *Node) takeBranchTx(txnID string) *txn.Tx {
	n.mu.Lock()
	defer n.mu.Unlock()
	tx, ok := n.branchTx[txnID]
	if !ok {
		return nil
	}
	delete(n.branchTx, txnID)
	return tx
}

// sendDone (re)sends one durable completion record to its owner,
// joining the enclosing transition's outbound batch when one is active
// so a coalesced done-resend timer emits one frame group per owner.
func (n *Node) sendDone(b *outBatch, agentID string) {
	raw, ok, err := n.store.Get(doneKey(agentID))
	if err != nil || !ok {
		return
	}
	var rec doneRec
	if err := wire.Decode(raw, &rec); err != nil {
		return
	}
	n.sendTo(b, rec.Owner, kindAgentDone, &rec.Msg)
}

// handleLaunch inserts a fresh agent container into the input queue.
func (n *Node) handleLaunch(msg network.Message) {
	var req launchMsg
	if err := wire.Decode(msg.Payload, &req); err != nil {
		return
	}
	reply := protocol.AckMsg{TxnID: req.ID, OK: true}
	if err := n.queue.Enqueue(req.ID, req.Data); err != nil {
		reply.OK = false
		reply.Err = err.Error()
	}
	n.send(msg.From, kindAgentLaunchAck, &reply)
}

// execCompOps runs compensating operations in the order given (the caller
// arranges reverse log order). a may be nil for shipped resource batches.
func (n *Node) execCompOps(tx *txn.Tx, a *agent.Agent, ops []*core.OpEntry) error {
	for _, op := range ops {
		if err := n.execCompOp(tx, a, op); err != nil {
			return err
		}
	}
	return nil
}
