package node

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/protocol"
	"repro/internal/txn"
)

// Coordinator driver shims. The decision logic — when a transaction is
// active, how queries are answered, which control messages go out and
// when they stop being resent — lives in the protocol machine's
// coordinator role; these helpers only sequence the worker's blocking
// calls (register a waiter, feed the event, await the ack).

// prepareEnqueueRemote runs the prepare phase of the queue hand-off: the
// destination durably stages the container under this transaction's ID.
// The machine marks the transaction active before the prepare message
// leaves, so in-doubt queries from the participant are answered
// "pending" rather than "abort" while the decision is still open.
func (n *Node) prepareEnqueueRemote(tx *txn.Tx, dest, entryID string, data []byte) (protocol.Participant, error) {
	ch := n.registerWaiter(protocol.KindEnqueuePrepareAck, tx.ID())
	n.step(protocol.CoordPrepareEnqueue{TxnID: tx.ID(), Dest: dest, EntryID: entryID, Data: data})
	if _, err := n.await(ch, protocol.KindEnqueuePrepareAck, tx.ID()); err != nil {
		return protocol.Participant{}, err
	}
	return protocol.Participant{Node: dest, Kind: protocol.PartQueue}, nil
}

// prepareRCERemote ships a resource-compensation-entry list to the
// resource node (Figure 5b); the participant acknowledges once the
// branch is durably prepared. The caller awaits the returned channel
// after running its own agent compensation entries concurrently.
func (n *Node) prepareRCERemote(tx *txn.Tx, dest string, ops []*core.OpEntry) (protocol.Participant, chan protocol.AckMsg) {
	ch := n.registerWaiter(protocol.KindRCEExecAck, tx.ID())
	n.step(protocol.CoordPrepareRCE{TxnID: tx.ID(), Dest: dest, Ops: ops})
	return protocol.Participant{Node: dest, Kind: protocol.PartRCE}, ch
}

// commitDistributed finishes the coordinator side: with remote
// participants, the commit decision record joins the local commit batch
// (atomic "decide"), then the machine drives the participants to commit
// reliably. Without participants it is a plain local commit.
//
// onCommit (may be nil) runs immediately before the commit is applied:
// metric increments belong there, because the instant the commit lands its
// effects are visible to concurrent workers and remote nodes — a counter
// bumped *after* could be missed by a snapshot taken on completion of the
// chain this commit enables. If the commit itself fails (store I/O error;
// never in the simulated environment) the count is one high — the retry
// recounts — which is harmless for advisory metrics.
func (n *Node) commitDistributed(tx *txn.Tx, parts []protocol.Participant, onCommit func()) error {
	if len(parts) > 0 {
		tx.AddCommitOps(n.mgr.DecisionOp(tx.ID()))
	}
	if onCommit != nil {
		onCommit()
	}
	if err := tx.Commit(); err != nil {
		n.abortParts(tx, parts)
		_ = tx.Abort()
		return fmt.Errorf("node %s: commit: %w", n.cfg.Name, err)
	}
	n.step(protocol.CoordDecided{TxnID: tx.ID(), Commit: true, Parts: parts})
	return nil
}

// abortParts notifies prepared participants of an abort (best effort:
// presumed abort lets them resolve on their own if the message is lost)
// and closes the coordinator decision, so queries answer "abort".
func (n *Node) abortParts(tx *txn.Tx, parts []protocol.Participant) {
	n.step(protocol.CoordDecided{TxnID: tx.ID(), Commit: false, Parts: parts})
}
