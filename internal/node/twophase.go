package node

import (
	"fmt"

	"repro/internal/txn"
)

// remotePrep is a remote participant that acknowledged prepare and awaits
// the coordinator's decision.
type remotePrep struct {
	node       string
	commitKind string
	abortKind  string
}

func (n *Node) markActive(txnID string) {
	n.mu.Lock()
	n.activeTxns[txnID] = true
	n.mu.Unlock()
}

func (n *Node) unmarkActive(txnID string) {
	n.mu.Lock()
	delete(n.activeTxns, txnID)
	n.mu.Unlock()
}

// prepareEnqueueRemote runs the prepare phase of the queue hand-off: the
// destination durably stages the container under this transaction's ID.
// The transaction is marked active first so in-doubt queries from the
// participant are answered "pending" rather than "abort" while the
// decision is still open.
func (n *Node) prepareEnqueueRemote(tx *txn.Tx, dest, entryID string, data []byte) (remotePrep, error) {
	n.markActive(tx.ID())
	ch := n.registerWaiter(kindEnqueuePrepareAck, tx.ID())
	n.send(dest, kindEnqueuePrepare, &enqueuePrepareMsg{TxnID: tx.ID(), EntryID: entryID, Data: data})
	if _, err := n.await(ch, kindEnqueuePrepareAck, tx.ID()); err != nil {
		return remotePrep{}, err
	}
	return remotePrep{node: dest, commitKind: kindEnqueueCommit, abortKind: kindEnqueueAbort}, nil
}

// prepareRCERemote ships a resource-compensation-entry list to the
// resource node (Figure 5b) and waits for the acknowledgement, which the
// participant sends once the branch is durably prepared.
func (n *Node) prepareRCERemote(tx *txn.Tx, dest string, msg *rceExecMsg) (remotePrep, chan ackMsg) {
	n.markActive(tx.ID())
	ch := n.registerWaiter(kindRCEExecAck, tx.ID())
	n.send(dest, kindRCEExec, msg)
	return remotePrep{node: dest, commitKind: kindRCECommit, abortKind: kindRCEAbort}, ch
}

// commitDistributed finishes the coordinator side: with remote
// participants, the commit decision record joins the local commit batch
// (atomic "decide"), then the participants are driven to commit reliably.
// Without participants it is a plain local commit.
//
// onCommit (may be nil) runs immediately before the commit is applied:
// metric increments belong there, because the instant the commit lands its
// effects are visible to concurrent workers and remote nodes — a counter
// bumped *after* could be missed by a snapshot taken on completion of the
// chain this commit enables. If the commit itself fails (store I/O error;
// never in the simulated environment) the count is one high — the retry
// recounts — which is harmless for advisory metrics.
func (n *Node) commitDistributed(tx *txn.Tx, parts []remotePrep, onCommit func()) error {
	if len(parts) > 0 {
		tx.AddCommitOps(n.mgr.DecisionOp(tx.ID()))
	}
	if onCommit != nil {
		onCommit()
	}
	if err := tx.Commit(); err != nil {
		n.abortParts(tx, parts)
		_ = tx.Abort()
		n.unmarkActive(tx.ID())
		return fmt.Errorf("node %s: commit: %w", n.cfg.Name, err)
	}
	for _, p := range parts {
		n.sendCtlReliable(p.node, p.commitKind, tx.ID())
	}
	n.unmarkActive(tx.ID())
	return nil
}

// abortParts notifies prepared participants of an abort (best effort:
// presumed abort lets them resolve on their own if the message is lost).
// The coordinator is unmarked active afterwards so queries answer "abort".
func (n *Node) abortParts(tx *txn.Tx, parts []remotePrep) {
	for _, p := range parts {
		n.send(p.node, p.abortKind, &txnCtlMsg{TxnID: tx.ID()})
	}
	n.unmarkActive(tx.ID())
}
