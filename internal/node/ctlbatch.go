package node

import (
	"repro/internal/network"
	"repro/internal/protocol"
	"repro/internal/stable"
	"repro/internal/trace"
)

// Control-plane batching, driver half (the machine half is the per-peer
// timer coalescing in internal/protocol/timers.go):
//
//   - decision-record GC staging: ClearDecision and DropDone effects from
//     concurrent transitions buffer into one bounded staging slice and
//     apply as a single stable group commit, flushed when the buffer
//     fills or after a RetryDelay linger. Only the garbage-collection
//     deletes stage — the decision record itself is still written inside
//     the transaction's own commit batch, so the durability-ordering
//     invariant (no control send leaves before its decision record is
//     stable) holds without the stager ever gating a send.
//
//   - ack piggybacking: non-blocking replies (commit/abort acks, status
//     answers) park per peer for up to a RetryDelay linger; the next
//     outbound transition batch headed to that peer drains them into its
//     frame group, so the ack rides a write the node was making anyway.
//     A reply the sender blocks on (prepare acks, exec acks, done acks)
//     never parks.
//
// Both are disabled by Config.NoCtlBatch; piggybacking additionally by
// NoCoalesce, which removes the batches rides would attach to.

const (
	// ctlStageMax bounds the GC staging buffer; a full buffer flushes
	// immediately instead of waiting for the linger timer.
	ctlStageMax = 64
	// stagerFlushID is the wheel timer draining the stager after its
	// linger; holdPrefix marks the per-peer hold-buffer linger timers.
	// Both are driver-level timers: onTimer intercepts them before the
	// protocol machine sees the fire. Neither collides with a protocol
	// timer kind.
	stagerFlushID = "stager|flush"
	holdPrefix    = "hold|"
)

// stageCtlOp buffers one control-plane GC operation for the next group
// commit (or applies it directly when batching is off or the wheel is
// not running). Losing staged deletes on a crash is safe: a surviving
// decision record answers queries with the decision it records, and a
// surviving done record only restarts the idempotent done/ack cycle.
func (n *Node) stageCtlOp(op stable.Op) {
	if n.cfg.NoCtlBatch || n.wheel == nil {
		_ = n.store.Apply(op)
		return
	}
	n.stagerMu.Lock()
	n.stagerOps = append(n.stagerOps, op)
	full := len(n.stagerOps) >= ctlStageMax
	arm := !full && !n.stagerArmed
	if arm {
		n.stagerArmed = true
	}
	n.stagerMu.Unlock()
	if full {
		n.flushCtlStage()
	} else if arm {
		n.wheel.Schedule(stagerFlushID, n.cfg.RetryDelay)
	}
}

// flushCtlStage applies every staged GC operation as one stable group
// commit.
func (n *Node) flushCtlStage() {
	n.stagerMu.Lock()
	ops := n.stagerOps
	n.stagerOps = nil
	n.stagerArmed = false
	n.stagerMu.Unlock()
	if len(ops) == 0 {
		return
	}
	_ = n.store.Apply(ops...)
	if n.cfg.Counters != nil {
		n.cfg.Counters.ObserveDecisionBatch(len(ops))
	}
	if tr := n.cfg.Tracer; tr != nil {
		tr.Rec(trace.OpCtlFlush, "", "", "", "", "", int64(len(ops)))
	}
}

// piggybackKind reports whether a reply kind is safe to park: nothing
// blocks on it, and a RetryDelay of extra latency sits far inside the
// sender's RetryInterval resend cadence.
func piggybackKind(kind string) bool {
	switch kind {
	case protocol.KindEnqueueCommitAck, protocol.KindEnqueueAbortAck,
		protocol.KindRCECommitAck, protocol.KindRCEAbortAck,
		protocol.KindTxnStatus:
		return true
	}
	return false
}

// holdForRide parks one encoded reply for peer to, arming the linger
// timer on the first hold. Reports whether the message was parked
// (false: the caller sends it normally).
func (n *Node) holdForRide(to, kind string, payload []byte) bool {
	if n.cfg.NoCtlBatch || n.cfg.NoCoalesce || n.wheel == nil || !piggybackKind(kind) {
		return false
	}
	n.holdMu.Lock()
	if n.held == nil {
		n.held = make(map[string][]network.Outgoing)
		n.heldArmed = make(map[string]bool)
	}
	n.held[to] = append(n.held[to], network.Outgoing{Kind: kind, Payload: payload})
	arm := !n.heldArmed[to]
	if arm {
		n.heldArmed[to] = true
	}
	n.holdMu.Unlock()
	if arm {
		n.wheel.Schedule(holdPrefix+to, n.cfg.RetryDelay)
	}
	return true
}

// takeHeld removes and returns every message parked for peer.
func (n *Node) takeHeld(peer string) []network.Outgoing {
	n.holdMu.Lock()
	msgs := n.held[peer]
	if msgs != nil {
		delete(n.held, peer)
		delete(n.heldArmed, peer)
	}
	n.holdMu.Unlock()
	return msgs
}

// flushHeld sends a peer's parked replies in their own frame group — the
// linger expired with no outbound batch materialising.
func (n *Node) flushHeld(peer string) {
	msgs := n.takeHeld(peer)
	if len(msgs) == 0 {
		return
	}
	// Unknown-destination errors: lost messages, like send.
	_ = network.SendAll(n.ep, peer, msgs)
}
