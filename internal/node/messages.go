package node

import (
	"repro/internal/agent"
	"repro/internal/protocol"
	"repro/internal/wire"
)

// The protocol message kinds and payloads (q.*, rce.*, txn.*) live in
// internal/protocol; this file keeps only the node-runtime messages:
// agent launch and completion notification.
const (
	kindAgentLaunch    = "agent.launch"
	kindAgentLaunchAck = "agent.launch.ack"
	kindAgentDone      = "agent.done"
	kindAgentDoneAck   = "agent.done.ack"
)

// Mode distinguishes the two kinds of work a queued container requests.
type Mode int

// Container modes.
const (
	// ModeStep: execute the next step of the itinerary (§2).
	ModeStep Mode = iota + 1
	// ModeRollback: execute the next compensation transaction of a
	// partial rollback towards savepoint SpID (§4.3).
	ModeRollback
)

// Container is the unit stored in agent input queues and transferred
// between nodes: the agent (with its attached rollback log) plus the
// processing mode.
type Container struct {
	Mode  Mode
	SpID  string // rollback target savepoint (ModeRollback only)
	Agent *agent.Agent
}

// EncodeContainer serializes a container for queue storage / transfer.
func EncodeContainer(c *Container) ([]byte, error) { return wire.Encode(c) }

// DecodeContainer deserializes a container.
func DecodeContainer(data []byte) (*Container, error) {
	var c Container
	if err := wire.Decode(data, &c); err != nil {
		return nil, err
	}
	return &c, nil
}

// launchMsg inserts a fresh agent container into the node's input queue.
type launchMsg struct {
	ID   string // request correlation + queue entry ID
	Data []byte
}

// doneMsg reports agent completion (or permanent failure) to its owner.
type doneMsg struct {
	AgentID string
	Failed  bool
	Reason  string
	Data    []byte // final agent container
}

// Exported message kinds for collectors (owners) built outside this
// package.
const (
	// KindAgentDone is the completion notification an owner receives.
	KindAgentDone = kindAgentDone
	// KindAgentDoneAck acknowledges a completion notification.
	KindAgentDoneAck = kindAgentDoneAck
)

// Done is the decoded form of a completion notification.
type Done struct {
	AgentID string
	Failed  bool
	Reason  string
	Agent   *agent.Agent
}

// DecodeDone decodes a KindAgentDone payload.
func DecodeDone(payload []byte) (Done, error) {
	var dm doneMsg
	if err := wire.Decode(payload, &dm); err != nil {
		return Done{}, err
	}
	d := Done{AgentID: dm.AgentID, Failed: dm.Failed, Reason: dm.Reason}
	if len(dm.Data) > 0 {
		cont, err := DecodeContainer(dm.Data)
		if err != nil {
			return Done{}, err
		}
		d.Agent = cont.Agent
	}
	return d, nil
}

// EncodeDoneAck builds the KindAgentDoneAck payload for agentID.
func EncodeDoneAck(agentID string) ([]byte, error) {
	return wire.Encode(&protocol.AckMsg{TxnID: agentID, OK: true})
}

// KindAgentLaunch is the message kind inserting a fresh agent container
// into a node's input queue; external launchers (agentctl) send it.
const KindAgentLaunch = kindAgentLaunch

// EncodeLaunch builds a KindAgentLaunch payload.
func EncodeLaunch(id string, container []byte) ([]byte, error) {
	return wire.Encode(&launchMsg{ID: id, Data: container})
}

var _ = registerMessages()

func registerMessages() struct{} {
	wire.RegisterName("node.Container", &Container{})
	wire.RegisterName("node.launch", &launchMsg{})
	wire.RegisterName("node.done", &doneMsg{})
	return struct{}{}
}
