package node

import (
	"fmt"

	"repro/internal/agent"
	"repro/internal/protocol"
	"repro/internal/wire"
)

// The protocol message kinds and payloads (q.*, rce.*, txn.*) live in
// internal/protocol; this file keeps only the node-runtime messages:
// agent launch and completion notification.
const (
	kindAgentLaunch    = "agent.launch"
	kindAgentLaunchAck = "agent.launch.ack"
	kindAgentDone      = "agent.done"
	kindAgentDoneAck   = "agent.done.ack"
)

// Mode distinguishes the two kinds of work a queued container requests.
type Mode int

// Container modes.
const (
	// ModeStep: execute the next step of the itinerary (§2).
	ModeStep Mode = iota + 1
	// ModeRollback: execute the next compensation transaction of a
	// partial rollback towards savepoint SpID (§4.3).
	ModeRollback
)

// Container is the unit stored in agent input queues and transferred
// between nodes: the agent (with its attached rollback log) plus the
// processing mode.
type Container struct {
	Mode  Mode
	SpID  string // rollback target savepoint (ModeRollback only)
	Agent *agent.Agent
	// Epoch versions migration hand-offs of this container. Zero on the
	// ordinary step/rollback paths; the rebalancer bumps it before each
	// migration so a destination can refuse adopting an agent epoch it
	// has already adopted (duplicate-adoption guard, see membership.go).
	Epoch int64
}

// EncodeContainer serializes a container for queue storage / transfer.
func EncodeContainer(c *Container) ([]byte, error) { return wire.Encode(c) }

// DecodeContainer deserializes a container.
func DecodeContainer(data []byte) (*Container, error) {
	var c Container
	if err := wire.Decode(data, &c); err != nil {
		return nil, err
	}
	return &c, nil
}

// launchMsg inserts a fresh agent container into the node's input queue.
type launchMsg struct {
	ID   string // request correlation + queue entry ID
	Data []byte
}

// doneMsg reports agent completion (or permanent failure) to its owner.
type doneMsg struct {
	AgentID string
	Failed  bool
	Reason  string
	Data    []byte // final agent container
}

// typeDone is doneMsg's binary type byte. The node-runtime partition is
// 0x10–0x1F (the protocol messages own 0x01–0x0F); never reuse a value.
const typeDone = 0x10

// AppendTo implements wire.BinaryMessage: completion notifications carry
// the full final agent container, so they ride the fast path alongside
// the protocol messages.
func (m *doneMsg) AppendTo(buf []byte) []byte {
	buf = append(buf, wire.BinaryVersion, typeDone)
	buf = wire.AppendString(buf, m.AgentID)
	buf = wire.AppendBool(buf, m.Failed)
	buf = wire.AppendString(buf, m.Reason)
	return wire.AppendBytes(buf, m.Data)
}

// DecodeFrom implements wire.BinaryMessage. Data aliases the input.
func (m *doneMsg) DecodeFrom(data []byte) error {
	typ, rest, err := wire.SplitBinary(data)
	if err != nil {
		return err
	}
	if typ != typeDone {
		return fmt.Errorf("%w: message type 0x%02x, want done 0x%02x", wire.ErrCorrupt, typ, typeDone)
	}
	if m.AgentID, rest, err = wire.ReadString(rest); err != nil {
		return err
	}
	if m.Failed, rest, err = wire.ReadBool(rest); err != nil {
		return err
	}
	if m.Reason, rest, err = wire.ReadString(rest); err != nil {
		return err
	}
	if m.Data, rest, err = wire.ReadBytes(rest); err != nil {
		return err
	}
	return wire.Done(rest)
}

// Exported message kinds for collectors (owners) built outside this
// package.
const (
	// KindAgentDone is the completion notification an owner receives.
	KindAgentDone = kindAgentDone
	// KindAgentDoneAck acknowledges a completion notification.
	KindAgentDoneAck = kindAgentDoneAck
)

// Done is the decoded form of a completion notification.
type Done struct {
	AgentID string
	Failed  bool
	Reason  string
	Agent   *agent.Agent
}

// DecodeDone decodes a KindAgentDone payload, binary or legacy gob.
func DecodeDone(payload []byte) (Done, error) {
	var dm doneMsg
	if wire.Binary(payload) {
		if err := dm.DecodeFrom(payload); err != nil {
			return Done{}, err
		}
	} else if err := wire.Decode(payload, &dm); err != nil {
		return Done{}, err
	}
	d := Done{AgentID: dm.AgentID, Failed: dm.Failed, Reason: dm.Reason}
	if len(dm.Data) > 0 {
		cont, err := DecodeContainer(dm.Data)
		if err != nil {
			return Done{}, err
		}
		d.Agent = cont.Agent
	}
	return d, nil
}

// EncodeDoneAck builds the KindAgentDoneAck payload for agentID. All
// nodes decode acks with format sniffing, so the binary form is safe to
// send to gob-configured peers too.
func EncodeDoneAck(agentID string) ([]byte, error) {
	ack := protocol.AckMsg{TxnID: agentID, OK: true}
	return ack.AppendTo(nil), nil
}

// KindAgentLaunch is the message kind inserting a fresh agent container
// into a node's input queue; external launchers (agentctl) send it.
const KindAgentLaunch = kindAgentLaunch

// EncodeLaunch builds a KindAgentLaunch payload.
func EncodeLaunch(id string, container []byte) ([]byte, error) {
	return wire.Encode(&launchMsg{ID: id, Data: container})
}

var _ = registerMessages()

func registerMessages() struct{} {
	wire.RegisterName("node.Container", &Container{})
	wire.RegisterName("node.launch", &launchMsg{})
	wire.RegisterName("node.done", &doneMsg{})
	return struct{}{}
}
