package node

import (
	"repro/internal/agent"
	"repro/internal/core"
	"repro/internal/wire"
)

// Message kinds of the node protocol. The q.* family implements the
// two-phase hand-off of agent containers between input queues (the remote
// half of a distributed step/compensation transaction); the rce.* family
// ships resource-compensation-entry lists to the resource node in the
// optimized rollback (Figure 5b); txn.query resolves in-doubt participants
// after crashes (presumed abort).
const (
	kindEnqueuePrepare    = "q.prepare"
	kindEnqueuePrepareAck = "q.prepare.ack"
	kindEnqueueCommit     = "q.commit"
	kindEnqueueCommitAck  = "q.commit.ack"
	kindEnqueueAbort      = "q.abort"
	kindEnqueueAbortAck   = "q.abort.ack"

	kindTxnQuery  = "txn.query"
	kindTxnStatus = "txn.status"

	kindRCEExec      = "rce.exec"
	kindRCEExecAck   = "rce.exec.ack"
	kindRCECommit    = "rce.commit"
	kindRCECommitAck = "rce.commit.ack"
	kindRCEAbort     = "rce.abort"
	kindRCEAbortAck  = "rce.abort.ack"

	kindAgentLaunch    = "agent.launch"
	kindAgentLaunchAck = "agent.launch.ack"
	kindAgentDone      = "agent.done"
	kindAgentDoneAck   = "agent.done.ack"
)

// Mode distinguishes the two kinds of work a queued container requests.
type Mode int

// Container modes.
const (
	// ModeStep: execute the next step of the itinerary (§2).
	ModeStep Mode = iota + 1
	// ModeRollback: execute the next compensation transaction of a
	// partial rollback towards savepoint SpID (§4.3).
	ModeRollback
)

// Container is the unit stored in agent input queues and transferred
// between nodes: the agent (with its attached rollback log) plus the
// processing mode.
type Container struct {
	Mode  Mode
	SpID  string // rollback target savepoint (ModeRollback only)
	Agent *agent.Agent
}

// EncodeContainer serializes a container for queue storage / transfer.
func EncodeContainer(c *Container) ([]byte, error) { return wire.Encode(c) }

// DecodeContainer deserializes a container.
func DecodeContainer(data []byte) (*Container, error) {
	var c Container
	if err := wire.Decode(data, &c); err != nil {
		return nil, err
	}
	return &c, nil
}

// enqueuePrepareMsg asks the destination to durably stage a container
// insertion under the coordinator's transaction ID.
type enqueuePrepareMsg struct {
	TxnID   string
	EntryID string
	Data    []byte
}

// ackMsg acknowledges a protocol request. OK=false carries the refusal
// reason (e.g. node still recovering).
type ackMsg struct {
	TxnID string
	OK    bool
	Err   string
}

// txnCtlMsg carries commit/abort/query instructions for a transaction.
type txnCtlMsg struct {
	TxnID string
}

// txnStatusMsg answers a txn.query: Committed=false means abort (presumed
// abort: no decision record implies the transaction never committed).
type txnStatusMsg struct {
	TxnID     string
	Committed bool
}

// rceExecMsg ships the resource compensation entries of one step to the
// node where the step executed, to be run inside the (distributed)
// compensation transaction identified by TxnID (§4.4.1).
type rceExecMsg struct {
	TxnID string
	Ops   []*core.OpEntry
}

// launchMsg inserts a fresh agent container into the node's input queue.
type launchMsg struct {
	ID   string // request correlation + queue entry ID
	Data []byte
}

// doneMsg reports agent completion (or permanent failure) to its owner.
type doneMsg struct {
	AgentID string
	Failed  bool
	Reason  string
	Data    []byte // final agent container
}

// Exported message kinds for collectors (owners) built outside this
// package.
const (
	// KindAgentDone is the completion notification an owner receives.
	KindAgentDone = kindAgentDone
	// KindAgentDoneAck acknowledges a completion notification.
	KindAgentDoneAck = kindAgentDoneAck
)

// Done is the decoded form of a completion notification.
type Done struct {
	AgentID string
	Failed  bool
	Reason  string
	Agent   *agent.Agent
}

// DecodeDone decodes a KindAgentDone payload.
func DecodeDone(payload []byte) (Done, error) {
	var dm doneMsg
	if err := wire.Decode(payload, &dm); err != nil {
		return Done{}, err
	}
	d := Done{AgentID: dm.AgentID, Failed: dm.Failed, Reason: dm.Reason}
	if len(dm.Data) > 0 {
		cont, err := DecodeContainer(dm.Data)
		if err != nil {
			return Done{}, err
		}
		d.Agent = cont.Agent
	}
	return d, nil
}

// EncodeDoneAck builds the KindAgentDoneAck payload for agentID.
func EncodeDoneAck(agentID string) ([]byte, error) {
	return wire.Encode(&ackMsg{TxnID: agentID, OK: true})
}

// KindAgentLaunch is the message kind inserting a fresh agent container
// into a node's input queue; external launchers (agentctl) send it.
const KindAgentLaunch = kindAgentLaunch

// EncodeLaunch builds a KindAgentLaunch payload.
func EncodeLaunch(id string, container []byte) ([]byte, error) {
	return wire.Encode(&launchMsg{ID: id, Data: container})
}

var _ = registerMessages()

func registerMessages() struct{} {
	wire.RegisterName("node.Container", &Container{})
	wire.RegisterName("node.enqueuePrepare", &enqueuePrepareMsg{})
	wire.RegisterName("node.ack", &ackMsg{})
	wire.RegisterName("node.txnCtl", &txnCtlMsg{})
	wire.RegisterName("node.txnStatus", &txnStatusMsg{})
	wire.RegisterName("node.rceExec", &rceExecMsg{})
	wire.RegisterName("node.launch", &launchMsg{})
	wire.RegisterName("node.done", &doneMsg{})
	return struct{}{}
}
