package node

import (
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/protocol"
	"repro/internal/resource"
	"repro/internal/stable"
)

// TestRCEAbortOvertakesPrepare reproduces the livelock precursor found by
// the chaos harness (seed 2): the coordinator's presumed abort arrives
// while the participant's RCE execution is still running (its lock wait
// makes that window wide). The participant must NOT register a prepared
// branch afterwards — a branch prepared after its coordinator aborted is
// a zombie that holds resource locks until the stale-branch query cycle,
// and under retry pressure those zombie holds chain into a livelock.
//
// With the protocol core this is the executing→executingAborted state
// edge; here the full driver is exercised: a gated compensation keeps the
// execution in flight while the abort verdict lands, then the prepared
// branch must be aborted, its locks released, and the coordinator
// refused. The exhaustive event-order coverage lives in
// internal/protocol's permutation test.
func TestRCEAbortOvertakesPrepare(t *testing.T) {
	sim := network.NewSim(network.SimConfig{})
	defer sim.Close()
	ep, err := sim.Endpoint("p")
	if err != nil {
		t.Fatal(err)
	}
	coEp, err := sim.Endpoint("co")
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	reg := agent.NewRegistry()
	if err := reg.RegisterComp("t.comp", func(ctx agent.CompContext) error {
		<-gate // hold the execution in flight (stands in for a lock wait)
		r, err := ctx.Resource("bank")
		if err != nil {
			return err
		}
		return r.(*resource.Bank).Withdraw(ctx.Tx(), "acct", 10)
	}); err != nil {
		t.Fatal(err)
	}
	store := stable.NewMemStore(nil)
	n, err := New(Config{Name: "p"}, ep, store, reg, func(st stable.Store) (resource.Resource, error) {
		return resource.NewBank(st, "bank", true)
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	defer n.Stop()
	<-n.Ready()

	tx, err := n.mgr.Begin()
	if err != nil {
		t.Fatal(err)
	}
	r, _ := n.Resource("bank")
	bank := r.(*resource.Bank)
	if err := bank.OpenAccount(tx, "acct", 100); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	const txnID = "co#7"
	ops := []*core.OpEntry{
		{Kind: core.OpResource, Op: "t.comp", Params: core.NewParams().Set("bank", "bank")},
	}

	// Execution starts and blocks on the gate; the abort verdict
	// overtakes it; then the execution finishes and prepares.
	n.step(protocol.RCEExecReceived{TxnID: txnID, From: "co", Ops: ops})
	n.step(protocol.StatusReceived{TxnID: txnID, Committed: false})
	close(gate)

	// The coordinator must be refused, not acknowledged.
	select {
	case msg := <-coEp.Recv():
		if msg.Kind != protocol.KindRCEExecAck {
			t.Fatalf("unexpected message %s", msg.Kind)
		}
		var ack protocol.AckMsg
		if err := decodeInto(msg.Payload, &ack); err != nil {
			t.Fatal(err)
		}
		if ack.OK {
			t.Error("zombie branch acknowledged for an aborted transaction")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no exec ack delivered")
	}

	n.mu.Lock()
	_, parked := n.branchTx[txnID]
	n.mu.Unlock()
	if parked {
		t.Error("zombie branch transaction parked for an aborted transaction")
	}

	// The branch's effects were rolled back and its locks released: a
	// fresh transaction can use the bank immediately (no 2s lock wait).
	done := make(chan error, 1)
	go func() {
		tx2, err := n.mgr.Begin()
		if err != nil {
			done <- err
			return
		}
		defer tx2.Commit()
		bal, err := bank.Balance(tx2, "acct")
		if err == nil && bal != 100 {
			t.Errorf("balance = %d, want 100 (aborted compensation leaked)", bal)
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("bank lock still held by the aborted branch")
	}

	// An abort with no in-flight execution must not leave branch state.
	n.step(protocol.StatusReceived{TxnID: "co#8", Committed: false})
	n.pmu.Lock()
	stats := n.machine.Stats()
	n.pmu.Unlock()
	if stats.BranchesExec != 0 || stats.BranchesPrepared != 0 {
		t.Errorf("stray branch state after resolution: %+v", stats)
	}
}

func decodeInto(payload []byte, v any) error {
	return protocol.Decode(payload, v)
}
