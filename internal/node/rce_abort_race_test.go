package node

import (
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/resource"
	"repro/internal/stable"
	"repro/internal/wire"
)

// TestRCEAbortOvertakesPrepare reproduces the livelock precursor found by
// the chaos harness (seed 2): the coordinator's presumed abort arrives
// while the participant's RCE execution is still running (its lock wait
// makes that window wide). The participant must NOT register a prepared
// branch afterwards — a branch prepared after its coordinator aborted is
// a zombie that holds resource locks until the stale-branch query cycle,
// and under retry pressure those zombie holds chain into a livelock.
func TestRCEAbortOvertakesPrepare(t *testing.T) {
	sim := network.NewSim(network.SimConfig{})
	defer sim.Close()
	ep, err := sim.Endpoint("p")
	if err != nil {
		t.Fatal(err)
	}
	reg := agent.NewRegistry()
	if err := reg.RegisterComp("t.comp", func(ctx agent.CompContext) error {
		r, err := ctx.Resource("bank")
		if err != nil {
			return err
		}
		return r.(*resource.Bank).Withdraw(ctx.Tx(), "acct", 10)
	}); err != nil {
		t.Fatal(err)
	}
	store := stable.NewMemStore(nil)
	n, err := New(Config{Name: "p"}, ep, store, reg, func(st stable.Store) (resource.Resource, error) {
		return resource.NewBank(st, "bank", true)
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	defer n.Stop()
	<-n.Ready()

	tx, err := n.mgr.Begin()
	if err != nil {
		t.Fatal(err)
	}
	r, _ := n.Resource("bank")
	bank := r.(*resource.Bank)
	if err := bank.OpenAccount(tx, "acct", 100); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	const txnID = "co#7"
	payload, err := wire.Encode(&rceExecMsg{TxnID: txnID, Ops: []*core.OpEntry{
		{Kind: core.OpResource, Op: "t.comp", Params: core.NewParams().Set("bank", "bank")},
	}})
	if err != nil {
		t.Fatal(err)
	}

	// The abort overtakes: it is resolved while the exec is marked
	// in-flight (in the live race the exec goroutine is blocked on the
	// bank lock at this point).
	n.mu.Lock()
	n.rceInFlight[txnID] = true
	n.mu.Unlock()
	n.resolveTxn(txnID, false)
	n.mu.Lock()
	poisoned := n.rceAborted[txnID]
	n.mu.Unlock()
	if !poisoned {
		t.Fatal("abort during in-flight execution was not recorded")
	}

	n.handleRCEExec(network.Message{From: "q", To: "p", Kind: kindRCEExec, Payload: payload})

	n.mu.Lock()
	_, live := n.rceBranches[txnID]
	n.mu.Unlock()
	if live {
		t.Error("zombie branch registered for an aborted transaction")
	}
	// The branch's effects were rolled back and its locks released: a
	// fresh transaction can use the bank immediately (no 2s lock wait).
	done := make(chan error, 1)
	go func() {
		tx2, err := n.mgr.Begin()
		if err != nil {
			done <- err
			return
		}
		defer tx2.Commit()
		bal, err := bank.Balance(tx2, "acct")
		if err == nil && bal != 100 {
			t.Errorf("balance = %d, want 100 (aborted compensation leaked)", bal)
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("bank lock still held by the aborted branch")
	}

	// An abort with no in-flight execution must not leave a tombstone.
	n.resolveTxn("co#8", false)
	n.mu.Lock()
	stray := n.rceAborted["co#8"]
	n.mu.Unlock()
	if stray {
		t.Error("tombstone recorded without an in-flight execution")
	}
}
