package node

import (
	"testing"

	"repro/internal/network"
	"repro/internal/protocol"
)

// TestAllKindsHaveFrameCodes pins every message kind the node or the
// protocol layer can put on the wire to a static frame-table code, so a
// newly added kind cannot silently fall back to the inline-string
// encoding (which costs len(kind) extra bytes per frame).
func TestAllKindsHaveFrameCodes(t *testing.T) {
	kinds := []string{
		protocol.KindEnqueuePrepare,
		protocol.KindEnqueuePrepareAck,
		protocol.KindEnqueueCommit,
		protocol.KindEnqueueCommitAck,
		protocol.KindEnqueueAbort,
		protocol.KindEnqueueAbortAck,
		protocol.KindTxnQuery,
		protocol.KindTxnStatus,
		protocol.KindRCEExec,
		protocol.KindRCEExecAck,
		protocol.KindRCECommit,
		protocol.KindRCECommitAck,
		protocol.KindRCEAbort,
		protocol.KindRCEAbortAck,
		kindAgentLaunch,
		kindAgentLaunchAck,
		kindAgentDone,
		kindAgentDoneAck,
		kindMemberAnnounce,
		protocol.KindCtlBatch,
		protocol.KindQueryBatch,
	}
	seen := make(map[byte]string, len(kinds))
	for _, k := range kinds {
		code, ok := network.FrameKindCode(k)
		if !ok {
			t.Errorf("kind %q has no frame-table code", k)
			continue
		}
		if code == 0 {
			t.Errorf("kind %q maps to the reserved inline-string code 0", k)
		}
		if prev, dup := seen[code]; dup {
			t.Errorf("kinds %q and %q share frame code %d", prev, k, code)
		}
		seen[code] = k
	}
}
