package node

import (
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/core"
	"repro/internal/itinerary"
	"repro/internal/network"
	"repro/internal/protocol"
	"repro/internal/resource"
	"repro/internal/stable"
	"repro/internal/wire"
)

// TestProtocolTimersOnVirtualClock drives the full in-doubt query cycle
// and the completion-resend cycle on a manually advanced clock: a
// participant stages a hand-off whose coordinator goes silent, and no
// query leaves the node until the virtual clock moves — each Advance
// then fires exactly one deterministic query. The coordinator's verdict
// commits the stage, the agent runs, and the unacknowledged completion
// notification is re-sent once per Advance until acked. This is the
// wheel-driven replacement for the old per-tick polling dispatcher.
func TestProtocolTimersOnVirtualClock(t *testing.T) {
	vc := network.NewVirtualClock(time.Time{})
	sim := network.NewSim(network.SimConfig{})
	defer sim.Close()
	ep, err := sim.Endpoint("p")
	if err != nil {
		t.Fatal(err)
	}
	coEp, err := sim.Endpoint("co")
	if err != nil {
		t.Fatal(err)
	}
	ownEp, err := sim.Endpoint("own")
	if err != nil {
		t.Fatal(err)
	}

	reg := agent.NewRegistry()
	if err := reg.RegisterStep("noop", func(ctx agent.StepContext) error { return nil }); err != nil {
		t.Fatal(err)
	}
	n, err := New(Config{Name: "p", RetryDelay: 10 * time.Millisecond, Clock: vc}, ep,
		stable.NewMemStore(nil), reg,
		func(st stable.Store) (resource.Resource, error) { return resource.NewBank(st, "bank", true) })
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	defer n.Stop()
	<-n.Ready()

	// A real one-step agent container, staged under a remote
	// coordinator's transaction.
	it, err := itinerary.New(&itinerary.Sub{ID: "s", Entries: []itinerary.Entry{
		itinerary.Step{Method: "noop", Loc: "p"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	a, entered, err := agent.New("agent-vc", "own", it)
	if err != nil {
		t.Fatal(err)
	}
	if err := AppendInitialSavepoints(a, entered, core.StateLogging); err != nil {
		t.Fatal(err)
	}
	data, err := EncodeContainer(&Container{Mode: ModeStep, Agent: a})
	if err != nil {
		t.Fatal(err)
	}
	payload, err := wire.Encode(&protocol.PrepareMsg{TxnID: "co#1", EntryID: a.ID, Data: data})
	if err != nil {
		t.Fatal(err)
	}
	if err := coEp.Send("p", protocol.KindEnqueuePrepare, payload); err != nil {
		t.Fatal(err)
	}
	if kind := recvKind(t, coEp, 2*time.Second); kind != protocol.KindEnqueuePrepareAck {
		t.Fatalf("expected prepare ack, got %s", kind)
	}

	// The coordinator goes silent. The staged entry is in-doubt, but no
	// query may leave the node while the virtual clock is frozen.
	assertNoMessage(t, coEp, 80*time.Millisecond)

	// Each Advance past the retry interval fires exactly one query.
	for i := 0; i < 3; i++ {
		vc.Advance(50 * time.Millisecond)
		if kind := recvKind(t, coEp, 2*time.Second); kind != protocol.KindTxnQuery {
			t.Fatalf("advance %d: expected txn query, got %s", i, kind)
		}
		assertNoMessage(t, coEp, 30*time.Millisecond)
	}

	// The verdict commits the stage; the agent runs to completion and
	// the owner is notified immediately (no timer involved).
	status, err := wire.Encode(&protocol.StatusMsg{TxnID: "co#1", Committed: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := coEp.Send("p", protocol.KindTxnStatus, status); err != nil {
		t.Fatal(err)
	}
	if kind := recvKind(t, ownEp, 5*time.Second); kind != KindAgentDone {
		t.Fatalf("expected agent done, got %s", kind)
	}

	// Unacknowledged completion: re-sent exactly once per Advance.
	assertNoMessage(t, ownEp, 80*time.Millisecond)
	vc.Advance(50 * time.Millisecond)
	if kind := recvKind(t, ownEp, 2*time.Second); kind != KindAgentDone {
		t.Fatalf("expected done resend, got %s", kind)
	}
	ack, err := EncodeDoneAck(a.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := ownEp.Send("p", KindAgentDoneAck, ack); err != nil {
		t.Fatal(err)
	}
	// Give the ack a moment to cancel the timer, then advance: silence.
	time.Sleep(50 * time.Millisecond)
	vc.Advance(200 * time.Millisecond)
	assertNoMessage(t, ownEp, 80*time.Millisecond)
}

func recvKind(t *testing.T, ep network.Endpoint, timeout time.Duration) string {
	t.Helper()
	select {
	case msg, ok := <-ep.Recv():
		if !ok {
			t.Fatal("endpoint closed")
		}
		return msg.Kind
	case <-time.After(timeout):
		t.Fatal("no message within timeout")
		return ""
	}
}

func assertNoMessage(t *testing.T, ep network.Endpoint, quiet time.Duration) {
	t.Helper()
	select {
	case msg := <-ep.Recv():
		t.Fatalf("unexpected message %s from %s", msg.Kind, msg.From)
	case <-time.After(quiet):
	}
}
