package node

import (
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/core"
	"repro/internal/itinerary"
	"repro/internal/network"
	"repro/internal/protocol"
	"repro/internal/resource"
	"repro/internal/stable"
	"repro/internal/wire"
)

// TestProtocolTimersOnVirtualClock drives the full in-doubt query cycle
// and the completion-resend cycle on a manually advanced clock: a
// participant stages a hand-off whose coordinator goes silent, and no
// query leaves the node until the virtual clock moves — each Advance
// then fires exactly one deterministic query. The coordinator's verdict
// commits the stage, the agent runs, and the unacknowledged completion
// notification is re-sent once per Advance until acked. This is the
// wheel-driven replacement for the old per-tick polling dispatcher.
func TestProtocolTimersOnVirtualClock(t *testing.T) {
	vc := network.NewVirtualClock(time.Time{})
	sim := network.NewSim(network.SimConfig{})
	defer sim.Close()
	ep, err := sim.Endpoint("p")
	if err != nil {
		t.Fatal(err)
	}
	coEp, err := sim.Endpoint("co")
	if err != nil {
		t.Fatal(err)
	}
	ownEp, err := sim.Endpoint("own")
	if err != nil {
		t.Fatal(err)
	}

	reg := agent.NewRegistry()
	if err := reg.RegisterStep("noop", func(ctx agent.StepContext) error { return nil }); err != nil {
		t.Fatal(err)
	}
	n, err := New(Config{Name: "p", RetryDelay: 10 * time.Millisecond, Clock: vc}, ep,
		stable.NewMemStore(nil), reg,
		func(st stable.Store) (resource.Resource, error) { return resource.NewBank(st, "bank", true) })
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	defer n.Stop()
	<-n.Ready()

	// A real one-step agent container, staged under a remote
	// coordinator's transaction.
	it, err := itinerary.New(&itinerary.Sub{ID: "s", Entries: []itinerary.Entry{
		itinerary.Step{Method: "noop", Loc: "p"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	a, entered, err := agent.New("agent-vc", "own", it)
	if err != nil {
		t.Fatal(err)
	}
	if err := AppendInitialSavepoints(a, entered, core.StateLogging); err != nil {
		t.Fatal(err)
	}
	data, err := EncodeContainer(&Container{Mode: ModeStep, Agent: a})
	if err != nil {
		t.Fatal(err)
	}
	payload, err := wire.Encode(&protocol.PrepareMsg{TxnID: "co#1", EntryID: a.ID, Data: data})
	if err != nil {
		t.Fatal(err)
	}
	if err := coEp.Send("p", protocol.KindEnqueuePrepare, payload); err != nil {
		t.Fatal(err)
	}
	if kind := recvKind(t, coEp, 2*time.Second); kind != protocol.KindEnqueuePrepareAck {
		t.Fatalf("expected prepare ack, got %s", kind)
	}

	// The coordinator goes silent. The staged entry is in-doubt, but no
	// query may leave the node while the virtual clock is frozen.
	assertNoMessage(t, coEp, 80*time.Millisecond)

	// Each Advance past the retry interval fires exactly one query.
	for i := 0; i < 3; i++ {
		vc.Advance(50 * time.Millisecond)
		if kind := recvKind(t, coEp, 2*time.Second); kind != protocol.KindTxnQuery {
			t.Fatalf("advance %d: expected txn query, got %s", i, kind)
		}
		assertNoMessage(t, coEp, 30*time.Millisecond)
	}

	// The verdict commits the stage; the agent runs to completion and
	// the owner is notified immediately (no timer involved).
	status, err := wire.Encode(&protocol.StatusMsg{TxnID: "co#1", Committed: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := coEp.Send("p", protocol.KindTxnStatus, status); err != nil {
		t.Fatal(err)
	}
	if kind := recvKind(t, ownEp, 5*time.Second); kind != KindAgentDone {
		t.Fatalf("expected agent done, got %s", kind)
	}

	// Unacknowledged completion: re-sent exactly once per Advance.
	assertNoMessage(t, ownEp, 80*time.Millisecond)
	vc.Advance(50 * time.Millisecond)
	if kind := recvKind(t, ownEp, 2*time.Second); kind != KindAgentDone {
		t.Fatalf("expected done resend, got %s", kind)
	}
	ack, err := EncodeDoneAck(a.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := ownEp.Send("p", KindAgentDoneAck, ack); err != nil {
		t.Fatal(err)
	}
	// Give the ack a moment to cancel the timer, then advance: silence.
	time.Sleep(50 * time.Millisecond)
	vc.Advance(200 * time.Millisecond)
	assertNoMessage(t, ownEp, 80*time.Millisecond)
}

// TestQueryBatchOnVirtualClock stages two hand-offs under the same
// silent remote coordinator and single-steps the clock: the coalesced
// per-peer query timer fires once per Advance, and once both staged
// entries share the due bucket one Advance emits a single query.batch
// frame carrying both transactions — the wire-level half of the
// per-peer coalescing that timers_test.go pins at the machine level.
func TestQueryBatchOnVirtualClock(t *testing.T) {
	vc := network.NewVirtualClock(time.Time{})
	sim := network.NewSim(network.SimConfig{})
	defer sim.Close()
	ep, err := sim.Endpoint("p")
	if err != nil {
		t.Fatal(err)
	}
	coEp, err := sim.Endpoint("co")
	if err != nil {
		t.Fatal(err)
	}

	reg := agent.NewRegistry()
	if err := reg.RegisterStep("noop", func(ctx agent.StepContext) error { return nil }); err != nil {
		t.Fatal(err)
	}
	n, err := New(Config{Name: "p", RetryDelay: 10 * time.Millisecond, Clock: vc}, ep,
		stable.NewMemStore(nil), reg,
		func(st stable.Store) (resource.Resource, error) { return resource.NewBank(st, "bank", true) })
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	defer n.Stop()
	<-n.Ready()

	stage := func(txn, agentID string) {
		t.Helper()
		it, err := itinerary.New(&itinerary.Sub{ID: "s", Entries: []itinerary.Entry{
			itinerary.Step{Method: "noop", Loc: "p"},
		}})
		if err != nil {
			t.Fatal(err)
		}
		a, entered, err := agent.New(agentID, "own", it)
		if err != nil {
			t.Fatal(err)
		}
		if err := AppendInitialSavepoints(a, entered, core.StateLogging); err != nil {
			t.Fatal(err)
		}
		data, err := EncodeContainer(&Container{Mode: ModeStep, Agent: a})
		if err != nil {
			t.Fatal(err)
		}
		payload, err := wire.Encode(&protocol.PrepareMsg{TxnID: txn, EntryID: a.ID, Data: data})
		if err != nil {
			t.Fatal(err)
		}
		if err := coEp.Send("p", protocol.KindEnqueuePrepare, payload); err != nil {
			t.Fatal(err)
		}
		if kind := recvKind(t, coEp, 2*time.Second); kind != protocol.KindEnqueuePrepareAck {
			t.Fatalf("expected prepare ack for %s, got %s", txn, kind)
		}
	}
	stage("co#1", "agent-qb1")
	stage("co#2", "agent-qb2")

	// Frozen clock: both entries are in doubt but nothing leaves.
	assertNoMessage(t, coEp, 80*time.Millisecond)

	// First fire drains only the first entry (the second was enqueued
	// while the timer ticked and is promoted): a lone survivor still
	// travels as the legacy single-transaction query.
	vc.Advance(50 * time.Millisecond)
	msg := recvMsg(t, coEp, 2*time.Second)
	if msg.Kind != protocol.KindTxnQuery {
		t.Fatalf("first advance: expected %s, got %s", protocol.KindTxnQuery, msg.Kind)
	}

	// Second fire finds both due: exactly one query.batch frame naming
	// both transactions, and nothing else.
	vc.Advance(50 * time.Millisecond)
	msg = recvMsg(t, coEp, 2*time.Second)
	if msg.Kind != protocol.KindQueryBatch {
		t.Fatalf("second advance: expected %s, got %s", protocol.KindQueryBatch, msg.Kind)
	}
	var qb protocol.QueryBatchMsg
	if err := protocol.Decode(msg.Payload, &qb); err != nil {
		t.Fatalf("decode query batch: %v", err)
	}
	got := map[string]bool{}
	for _, id := range qb.TxnIDs {
		got[id] = true
	}
	if len(qb.TxnIDs) != 2 || !got["co#1"] || !got["co#2"] {
		t.Fatalf("query batch = %v, want co#1+co#2", qb.TxnIDs)
	}
	assertNoMessage(t, coEp, 30*time.Millisecond)

	// Presumed abort resolves both; the next fire drains to silence.
	for _, txn := range []string{"co#1", "co#2"} {
		status, err := wire.Encode(&protocol.StatusMsg{TxnID: txn, Committed: false})
		if err != nil {
			t.Fatal(err)
		}
		if err := coEp.Send("p", protocol.KindTxnStatus, status); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(50 * time.Millisecond)
	vc.Advance(200 * time.Millisecond)
	assertNoMessage(t, coEp, 80*time.Millisecond)
}

func recvMsg(t *testing.T, ep network.Endpoint, timeout time.Duration) network.Message {
	t.Helper()
	select {
	case msg, ok := <-ep.Recv():
		if !ok {
			t.Fatal("endpoint closed")
		}
		return msg
	case <-time.After(timeout):
		t.Fatal("no message within timeout")
		return network.Message{}
	}
}

func recvKind(t *testing.T, ep network.Endpoint, timeout time.Duration) string {
	t.Helper()
	select {
	case msg, ok := <-ep.Recv():
		if !ok {
			t.Fatal("endpoint closed")
		}
		return msg.Kind
	case <-time.After(timeout):
		t.Fatal("no message within timeout")
		return ""
	}
}

func assertNoMessage(t *testing.T, ep network.Endpoint, quiet time.Duration) {
	t.Helper()
	select {
	case msg := <-ep.Recv():
		t.Fatalf("unexpected message %s from %s", msg.Kind, msg.From)
	case <-time.After(quiet):
	}
}
