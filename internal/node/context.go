package node

import (
	"fmt"

	"repro/internal/agent"
	"repro/internal/core"
	"repro/internal/resource"
	"repro/internal/txn"
)

// stepCtx implements agent.StepContext for one step transaction.
type stepCtx struct {
	node *Node
	a    *agent.Agent
	tx   *txn.Tx
	seq  int

	ops      []*core.OpEntry
	saveReqs []string
}

var _ agent.StepContext = (*stepCtx)(nil)

func (c *stepCtx) NodeName() string { return c.node.cfg.Name }
func (c *stepCtx) AgentID() string  { return c.a.ID }
func (c *stepCtx) StepSeq() int     { return c.seq }
func (c *stepCtx) SRO() *agent.Space {
	return c.a.SRO
}
func (c *stepCtx) WRO() *agent.Space { return c.a.WRO }
func (c *stepCtx) Tx() *txn.Tx       { return c.tx }

func (c *stepCtx) Resource(name string) (resource.Resource, bool) {
	return c.node.Resource(name)
}

func (c *stepCtx) LogComp(kind core.OpKind, op string, params core.Params) {
	if params == nil {
		params = core.NewParams()
	}
	c.ops = append(c.ops, &core.OpEntry{Kind: kind, Op: op, Params: params})
}

func (c *stepCtx) Savepoint(id string) {
	c.saveReqs = append(c.saveReqs, id)
}

func (c *stepCtx) Rollback(spID string) error {
	return &agent.RollbackRequest{SpID: spID}
}

func (c *stepCtx) RollbackCurrentSub() error {
	return c.RollbackEnclosing(1)
}

func (c *stepCtx) RollbackEnclosing(levels int) error {
	ids, err := c.a.Itin.EnclosingSubs(c.a.Cursor)
	if err != nil {
		return fmt.Errorf("node %s: rollback scope: %w", c.node.cfg.Name, err)
	}
	if levels < 1 || levels > len(ids) {
		return fmt.Errorf("node %s: rollback scope %d of %d levels", c.node.cfg.Name, levels, len(ids))
	}
	return c.Rollback(ids[len(ids)-levels])
}

// compCtx implements agent.CompContext for one compensating operation,
// enforcing the access rules of §4.3/§4.4.1.
type compCtx struct {
	node *Node
	op   *core.OpEntry
	tx   *txn.Tx
	a    *agent.Agent // nil when executing a shipped RCE batch
}

var _ agent.CompContext = (*compCtx)(nil)

func (c *compCtx) NodeName() string    { return c.node.cfg.Name }
func (c *compCtx) Kind() core.OpKind   { return c.op.Kind }
func (c *compCtx) Params() core.Params { return c.op.Params }
func (c *compCtx) Tx() *txn.Tx         { return c.tx }

func (c *compCtx) WRO() (*agent.Space, error) {
	if c.op.Kind == core.OpResource {
		return nil, fmt.Errorf("node: resource compensation %q must not access the agent (§4.4.1)", c.op.Op)
	}
	if c.a == nil {
		return nil, fmt.Errorf("node: compensation %q executed without the agent present", c.op.Op)
	}
	return c.a.WRO, nil
}

func (c *compCtx) Resource(name string) (resource.Resource, error) {
	if c.op.Kind == core.OpAgent {
		return nil, fmt.Errorf("node: agent compensation %q must not access resources (§4.4.1)", c.op.Op)
	}
	r, ok := c.node.Resource(name)
	if !ok {
		return nil, fmt.Errorf("node %s: no resource %q", c.node.cfg.Name, name)
	}
	return r, nil
}

// execCompOp resolves and runs one compensating operation. An unknown
// operation name is permanent: the step that logged it cannot be rolled
// back (§3.2: non-compensable operations).
func (n *Node) execCompOp(tx *txn.Tx, a *agent.Agent, op *core.OpEntry) error {
	fn, ok := n.registry.Comp(op.Op)
	if !ok {
		return permanent(fmt.Errorf("node %s: unknown compensating operation %q", n.cfg.Name, op.Op))
	}
	if err := fn(&compCtx{node: n, op: op, tx: tx, a: a}); err != nil {
		return fmt.Errorf("node %s: compensation %q: %w", n.cfg.Name, op.Op, err)
	}
	return nil
}
