package node

import (
	"fmt"

	"repro/internal/agent"
	"repro/internal/protocol"
	"repro/internal/stable"
	"repro/internal/trace"
	"repro/internal/txn"
)

// runCompensation executes one compensation transaction of a partial
// rollback — Figure 4b (basic) and Figure 5b (optimized) of the paper.
// The transactional mechanics live here; every routing decision (where
// the next hop runs, whether entries ship as an RCE list) is computed
// by the pure functions in internal/protocol.
//
// The container was routed here by the previous hop: in basic mode this is
// always the node where the step being compensated executed; in optimized
// mode the agent only travels when the step contains a mixed compensation
// entry, otherwise it stays put and the resource compensation entries are
// shipped to the resource node instead.
func (n *Node) runCompensation(entry *stable.Entry, c *Container, attempt int) error {
	a := c.Agent
	spID := c.SpID
	// Strongly reversible objects are not accessible during compensation:
	// they still hold the "old" state and are restored only when the
	// savepoint is reached (§4.3, Figure 3).
	a.SRO.Freeze(true)

	tx, err := n.mgr.Begin()
	if err != nil {
		return err
	}
	if tr := n.cfg.Tracer; tr != nil {
		tr.Rec(trace.OpAgentStep, tx.ID(), a.ID, "compensate", "", "", int64(attempt))
	}
	tx.AddCommitOps(n.queue.RemoveOp(entry))

	reached, _ := protocol.PopToTarget(a.Log, spID)
	var parts []protocol.Participant
	if !reached {
		parts, err = n.compensateLastStep(tx, a, attempt)
		if err != nil {
			abortErr := tx.Abort()
			n.abortParts(tx, parts)
			if n.cfg.Counters != nil {
				n.cfg.Counters.IncCompTxnAbort()
			}
			if abortErr != nil {
				return abortErr
			}
			return err
		}
		reached, _ = protocol.PopToTarget(a.Log, spID)
	}

	var next *Container
	var dest string
	if reached {
		// Restore the strongly reversible objects from the savepoint
		// entry — without deleting it from the log (§4.3) — and start
		// the next step transaction at the restored cursor position.
		img, err := a.Log.ReconstructSRO(spID)
		if err != nil {
			_ = tx.Abort()
			n.abortParts(tx, parts)
			return permanent(fmt.Errorf("node %s: restore savepoint %q: %w", n.cfg.Name, spID, err))
		}
		a.SRO.Freeze(false)
		if err := a.RestoreSystemImage(img); err != nil {
			_ = tx.Abort()
			n.abortParts(tx, parts)
			return permanent(err)
		}
		step, err := a.Itin.StepAt(a.Cursor)
		if err != nil {
			_ = tx.Abort()
			n.abortParts(tx, parts)
			return permanent(fmt.Errorf("node %s: restored cursor: %w", n.cfg.Name, err))
		}
		next = &Container{Mode: ModeStep, Agent: a}
		dest = protocol.PickDestination(step.Loc, step.Alt, attempt)
	} else {
		// More steps to compensate: route the agent (or not — Figure
		// 5a's destination rule) to the next compensation transaction.
		eos, ok := protocol.PeekEOS(a.Log)
		if !ok {
			_ = tx.Abort()
			n.abortParts(tx, parts)
			return permanent(fmt.Errorf("node %s: agent %s: savepoint %q unreachable during rollback", n.cfg.Name, a.ID, spID))
		}
		next = &Container{Mode: ModeRollback, SpID: spID, Agent: a}
		dest = protocol.CompensationDest(eos, n.cfg.Optimized, n.cfg.Name)
	}

	a.SRO.Freeze(false) // clear runtime-only flag before serialization
	var onCommit func()
	if n.cfg.Counters != nil {
		onCommit = n.cfg.Counters.IncCompTxn
	}
	if err := n.shipContainer(tx, next, dest, parts, onCommit); err != nil {
		if n.cfg.Counters != nil {
			n.cfg.Counters.IncCompTxnAbort()
		}
		return err
	}
	return nil
}

// compensateLastStep pops the last executed step off the log (EOS, then
// operation entries until BOS — protocol.PopLastStep yields them already
// in the reverse execution order compensations must run in, §4.2) and
// executes its compensating operations inside tx. In the optimized
// algorithm without mixed entries, agent compensation entries run
// locally concurrently with the resource compensation entries shipped to
// the resource node; the remote branch is returned as a prepared
// participant.
func (n *Node) compensateLastStep(tx *txn.Tx, a *agent.Agent, attempt int) ([]protocol.Participant, error) {
	eos, ops, err := protocol.PopLastStep(a.Log)
	if err != nil {
		return nil, permanent(fmt.Errorf("node %s: %w", n.cfg.Name, err))
	}
	if len(ops) == 0 {
		return nil, nil
	}

	if protocol.CompensateLocally(eos, n.cfg.Optimized, n.cfg.Name) {
		// Basic algorithm, or mixed entries (the agent was brought to
		// the resource node), or the agent already resides there:
		// execute everything locally in log order.
		if err := n.execCompOps(tx, a, ops); err != nil {
			return nil, err
		}
		if n.cfg.Counters != nil {
			n.cfg.Counters.IncCompOps(int64(len(ops)))
		}
		return nil, nil
	}

	// Figure 5b: group the entries, ship the resource compensation
	// entries, run the agent compensation entries concurrently, then
	// wait for the ACK.
	aces, rces, err := protocol.SplitCompOps(ops)
	if err != nil {
		return nil, permanent(fmt.Errorf("node %s: %w", n.cfg.Name, err))
	}
	var parts []protocol.Participant
	var ackCh chan protocol.AckMsg
	if len(rces) > 0 {
		dest := protocol.PickDestination(eos.Node, eos.AltNodes, attempt)
		prep, ch := n.prepareRCERemote(tx, dest, rces)
		parts = append(parts, prep)
		ackCh = ch
		if n.cfg.Counters != nil {
			n.cfg.Counters.IncRemoteCompBatch()
		}
	}
	if err := n.execCompOps(tx, a, aces); err != nil {
		if ackCh != nil {
			n.dropWaiter(protocol.KindRCEExecAck, tx.ID())
		}
		return parts, err
	}
	if n.cfg.Counters != nil {
		n.cfg.Counters.IncCompOps(int64(len(aces)))
	}
	if ackCh != nil {
		if _, err := n.await(ackCh, protocol.KindRCEExecAck, tx.ID()); err != nil {
			return parts, fmt.Errorf("node %s: remote compensation on %s: %w", n.cfg.Name, eos.Node, err)
		}
	}
	return parts, nil
}
