package node

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/membership"
	"repro/internal/network"
	"repro/internal/protocol"
	"repro/internal/stable"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Membership integration: announcement flooding, ring-based step routing
// and the rebalancer that migrates misplaced agents through the ordinary
// 2PC hand-off.
//
// The node is (as everywhere) only the driver: the view/ring logic lives
// in internal/membership, the hand-off logic in internal/protocol. A
// migration is exactly a worker hand-off — destructive read of the queue
// entry committed atomically with the coordinator decision, the staged
// copy on the destination committed by the same decision — so the
// conservation and exactly-once arguments of the step path carry over
// verbatim. What membership adds on top:
//
//   - the claim fence (stable.Queue.SetFence) keeps step workers off
//     entries the rebalancer is about to move, and TryClaim gives the
//     rebalancer the same exclusion against workers — an agent is never
//     simultaneously executing and migrating, so in-flight transactions
//     drain on the source before its entries transfer;
//   - Container.Epoch, bumped per migration, lets a destination refuse
//     adopting an agent epoch it has already adopted (a volatile guard —
//     2PC is the real exactly-once mechanism, the epoch check is the
//     belt-and-braces against a confused or replayed coordinator);
//   - a node whose own status is Left refuses new adoptions entirely and
//     its ring (which no longer contains it) drains every ring-placed
//     agent to the new owners.
const kindMemberAnnounce = "member.announce"

// RingLoc is the itinerary location sentinel resolved through the
// membership ring at execution time: "@ring" places the step on the
// owner of the agent's ID, "@ring:<key>" on the owner of <key>. Steps
// with ordinary node names bypass the ring entirely (and are therefore
// never rebalanced — their placement is the itinerary author's).
const RingLoc = "@ring"

// RingKey extracts the placement key of a ring-routed location, if loc
// is one.
func RingKey(loc, agentID string) (string, bool) {
	if loc == RingLoc {
		return agentID, true
	}
	if strings.HasPrefix(loc, RingLoc+":") {
		return loc[len(RingLoc)+1:], true
	}
	return "", false
}

// announceMsg carries one node's full membership view. Announcements are
// low-rate (only view *changes* flood), so the gob fallback encoding is
// fine — no binary codec, no frame-size concerns.
type announceMsg struct {
	Members []membership.Member
}

func init() { wire.RegisterName("node.memberAnnounce", &announceMsg{}) }

// Membership returns the node's membership manager (nil when the node
// runs with static wiring).
func (n *Node) Membership() *membership.Manager { return n.members }

// Adopted returns how many distinct agents this node has adopted through
// committed migrations since it started (volatile, like the guard map).
func (n *Node) Adopted() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.adopted)
}

// Announce floods the node's current view to every known live peer.
// Start calls it once at boot (a recovered or joining node re-learns the
// present through the anti-entropy replies it provokes) and the
// announcement handler calls it after every view-changing merge.
func (n *Node) Announce() {
	if n.members == nil {
		return
	}
	view := n.members.View()
	for _, peer := range n.members.Peers() {
		n.send(peer, kindMemberAnnounce, &announceMsg{Members: view.Members})
	}
}

// AnnounceStatus records a local status transition (the driver API for
// join/leave/suspect events — deterministic operator/cluster input, not
// a timer-based failure detector) and floods the new view.
func (n *Node) AnnounceStatus(name string, s membership.Status) {
	if n.members == nil {
		return
	}
	if entry, changed := n.members.SetStatus(name, s); changed {
		if tr := n.cfg.Tracer; tr != nil {
			tr.Rec(trace.OpMember, "", "", "set-status", entry.Name, entry.Status.String(), entry.Epoch)
		}
		if n.cfg.Counters != nil {
			n.cfg.Counters.IncRingChange()
		}
		n.Announce()
	}
}

// handleAnnounce merges one flooded view. A merge that changes the local
// view re-floods it (so news reaches everyone transitively); a sender
// whose view was missing something gets a direct reply (so lagging and
// freshly restarted nodes converge without waiting for the next change).
func (n *Node) handleAnnounce(msg network.Message) {
	var am announceMsg
	if err := wire.Decode(msg.Payload, &am); err != nil {
		return
	}
	if n.cfg.Counters != nil {
		n.cfg.Counters.IncMemberAnnounce()
	}
	changed, remoteStale := n.members.Merge(membership.View{Members: am.Members})
	if changed {
		if tr := n.cfg.Tracer; tr != nil {
			tr.Rec(trace.OpMember, "", "", "merge", msg.From, "", int64(len(am.Members)))
		}
		if n.cfg.Counters != nil {
			n.cfg.Counters.IncRingChange()
		}
		n.Announce()
	}
	if remoteStale && msg.From != n.cfg.Name {
		view := n.members.View()
		n.send(msg.From, kindMemberAnnounce, &announceMsg{Members: view.Members})
	}
}

// ringDest resolves a ring-routed step location to the current owner.
// An empty ring (impossible while the node itself is Alive) falls back
// to self so the step keeps making local progress.
func (n *Node) ringDest(key string) string {
	if owner := n.members.Ring().Owner(key); owner != "" {
		return owner
	}
	return n.cfg.Name
}

// --- adoption guard ---------------------------------------------------

// stagingAdoption remembers, per staged transaction, which agent epoch a
// commit would adopt. Volatile by design: after a crash the 2PC in-doubt
// resolution re-derives everything that matters from stable storage.
type stagingAdoption struct {
	agentID string
	epoch   int64
}

// adoptionGate vets one StageEntry before it is durably prepared. It
// refuses when this node has Left (a draining node must not accept new
// agents) or when the container carries a migration epoch the node has
// already adopted (duplicate adoption). On acceptance of a migration
// container it parks the (txn, agent, epoch) so resolveAdoption can
// record the adoption if the transaction commits.
func (n *Node) adoptionGate(e protocol.StageEntry) error {
	if n.members == nil {
		return nil
	}
	if n.members.Left() {
		return errors.New("node left the cluster (draining)")
	}
	c, err := DecodeContainer(e.Data)
	if err != nil || c.Epoch == 0 {
		return nil // not a migration container (or not ours to judge)
	}
	agentID := e.EntryID
	if c.Agent != nil {
		agentID = c.Agent.ID
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.adopted[agentID] >= c.Epoch {
		if tr := n.cfg.Tracer; tr != nil {
			tr.Rec(trace.OpMigrate, e.TxnID, agentID, "refuse", e.From, "", c.Epoch)
		}
		if n.cfg.Counters != nil {
			n.cfg.Counters.IncAdoptionRefusal()
		}
		return fmt.Errorf("agent %s epoch %d already adopted", agentID, c.Epoch)
	}
	n.adopting[e.TxnID] = stagingAdoption{agentID: agentID, epoch: c.Epoch}
	return nil
}

// resolveAdoption settles the adoption bookkeeping of one staged
// transaction: a commit records the agent epoch as adopted, an abort
// just forgets the staging. No-op for ordinary (non-migration) entries.
func (n *Node) resolveAdoption(txnID string, commit bool) {
	if n.members == nil {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	rec, ok := n.adopting[txnID]
	if !ok {
		return
	}
	delete(n.adopting, txnID)
	if commit && rec.epoch > n.adopted[rec.agentID] {
		n.adopted[rec.agentID] = rec.epoch
	}
}

// --- rebalancer -------------------------------------------------------

// rebalanceLoop is the per-node rebalancer goroutine: woken by view
// changes (and, while migrations are pending or the node is draining, by
// queue activity), it sweeps the input queue and migrates every
// ring-placed agent whose owner is no longer this node. No ticker — the
// loop is signal-driven, so it is deterministic under a VirtualClock; the
// clock only paces retries of failed hand-offs.
func (n *Node) rebalanceLoop() {
	defer n.wg.Done()
	select {
	case <-n.ready:
	case <-n.stop:
		return
	}
	for {
		changed := n.members.Changed()
		notify := n.queue.Notify()
		pending := n.rebalanceSweep()
		if n.members.Left() {
			pending = true // draining: late arrivals must migrate too
		}
		if pending {
			select {
			case <-n.stop:
				return
			case <-changed:
			case <-notify:
			case <-n.clock.After(n.cfg.RetryDelay * 5):
			}
		} else {
			select {
			case <-n.stop:
				return
			case <-changed:
			}
		}
	}
}

// rebalanceSweep lists the queue, fences every misplaced ring-placed
// agent against the step workers, and migrates the unclaimed ones. It
// reports whether work remains (entries in flight under a worker claim,
// or hand-offs that aborted and need a retry).
func (n *Node) rebalanceSweep() (pending bool) {
	ring := n.members.Ring()
	entries, err := n.queue.Entries()
	if err != nil {
		return true
	}
	type move struct {
		e    *stable.Entry
		dest string
	}
	var moves []move
	fenced := make(map[string]bool)
	for _, e := range entries {
		dest, ok := n.migrationDest(ring, e)
		if !ok || dest == n.cfg.Name {
			continue
		}
		fenced[e.ID] = true
		moves = append(moves, move{e: e, dest: dest})
	}
	// The fence map is frozen from here on (SetFence readers see it
	// concurrently); a fresh sweep installs a fresh map.
	if len(fenced) == 0 {
		n.queue.SetFence(nil)
		return false
	}
	n.queue.SetFence(func(id string) bool { return fenced[id] })
	// still collects the moves that remain queued after this pass. The
	// fence keys are agent IDs, so a fence left behind after a successful
	// migration would block the same agent's NEXT visit to this node (a
	// later ring-routed hand-off back here) forever — the final fence must
	// cover exactly the entries that still need moving, nothing else.
	still := make(map[string]bool)
	attempted := 0
	for _, mv := range moves {
		select {
		case <-n.stop:
			return true
		default:
		}
		// Migration-burst throttle: a view change over a deep queue would
		// otherwise convert the whole misplaced backlog into one burst of
		// back-to-back distributed hand-offs, starving step workers of
		// store and lock bandwidth exactly when a joining node spikes
		// load. Overflow moves stay fenced (so workers do not race the
		// next pass for them) and retry on the next sweep.
		if n.cfg.MigrateBurst > 0 && attempted >= n.cfg.MigrateBurst {
			still[mv.e.ID] = true
			pending = true
			continue
		}
		claimed, ok, err := n.queue.TryClaim(mv.e)
		if err != nil || !ok {
			// A worker holds it (its in-flight transaction drains before
			// the agent can move) or it was consumed since the listing;
			// the worker's Release re-triggers the sweep.
			if err != nil || n.stillQueued(mv.e) {
				still[mv.e.ID] = true
				pending = true
			}
			continue
		}
		attempted++
		if err := n.migrateEntry(claimed, mv.dest); err != nil {
			n.queue.Release(claimed)
			if n.cfg.Counters != nil {
				n.cfg.Counters.IncMigrationAbort()
			}
			if tr := n.cfg.Tracer; tr != nil {
				tr.Rec(trace.OpMigrate, "", claimed.ID, "abort", n.cfg.Name, mv.dest, 0)
			}
			still[mv.e.ID] = true
			pending = true
			continue
		}
		// The hand-off removed the entry durably; Release just drops the
		// claim bookkeeping (and wakes anyone waiting on the queue).
		n.queue.Release(claimed)
	}
	if len(still) == 0 {
		n.queue.SetFence(nil)
	} else {
		n.queue.SetFence(func(id string) bool { return still[id] })
	}
	return pending
}

// stillQueued reports whether a TryClaim miss left the entry behind (a
// worker claim) rather than consumed it.
func (n *Node) stillQueued(e *stable.Entry) bool {
	entries, err := n.queue.Entries()
	if err != nil {
		return true
	}
	for _, cur := range entries {
		if cur.ID == e.ID {
			return true
		}
	}
	return false
}

// migrationDest decides where a queued container belongs under ring. Only
// ring-placed step containers move: explicit-location steps and rollback
// containers are bound to this node by their itinerary or their log (a
// compensation must run where its step ran) and keep executing here even
// during a drain.
func (n *Node) migrationDest(ring *membership.Ring, e *stable.Entry) (string, bool) {
	c, err := DecodeContainer(e.Data)
	if err != nil || c.Agent == nil || c.Mode != ModeStep {
		return "", false
	}
	step, err := c.Agent.Itin.StepAt(c.Agent.Cursor)
	if err != nil {
		return "", false
	}
	key, ok := RingKey(step.Loc, c.Agent.ID)
	if !ok {
		return "", false
	}
	owner := ring.Owner(key)
	if owner == "" {
		return "", false
	}
	return owner, true
}

// migrateEntry hands one claimed entry to dest as a 2PC queue hand-off —
// the same coordinator path as a step's shipContainer, minus the step:
// remove-from-source joins the coordinator's commit batch, the container
// (with a bumped migration epoch) is staged on dest, and one decision
// commits both. A crash at any point leaves the agent in exactly one
// input queue (§4.3 carries over: before the decision the staged copy
// dies by presumed abort; after it, removal is already durable).
func (n *Node) migrateEntry(e *stable.Entry, dest string) error {
	c, err := DecodeContainer(e.Data)
	if err != nil || c.Agent == nil {
		return fmt.Errorf("node %s: migrate %q: corrupt container", n.cfg.Name, e.ID)
	}
	c.Epoch++
	data, err := EncodeContainer(c)
	if err != nil {
		return err
	}
	tx, err := n.mgr.Begin()
	if err != nil {
		return err
	}
	if tr := n.cfg.Tracer; tr != nil {
		tr.Rec(trace.OpMigrate, tx.ID(), c.Agent.ID, "start", n.cfg.Name, dest, int64(len(data)))
	}
	tx.AddCommitOps(n.queue.RemoveOp(e))
	prep, err := n.prepareEnqueueRemote(tx, dest, c.Agent.ID, data)
	if err != nil {
		n.abortParts(tx, nil)
		_ = tx.Abort()
		return fmt.Errorf("node %s: migrate %s to %s: %w", n.cfg.Name, c.Agent.ID, dest, err)
	}
	var onCommit func()
	if n.cfg.Counters != nil {
		onCommit = func() { n.cfg.Counters.IncMigration(int64(len(data))) }
	}
	if err := n.commitDistributed(tx, []protocol.Participant{prep}, onCommit); err != nil {
		return err
	}
	if tr := n.cfg.Tracer; tr != nil {
		tr.Rec(trace.OpMigrate, tx.ID(), c.Agent.ID, "commit", n.cfg.Name, dest, int64(len(data)))
	}
	return nil
}
