// Package node implements the agent-system node runtime: exactly-once step
// execution (§2, after [11]), the basic rollback mechanism of Figure 4 and
// the optimized mechanism of Figure 5, over the substrates in
// internal/{network,stable,txn,resource}.
//
// Concurrency model. Each node runs a dispatcher goroutine handling
// protocol messages (queue hand-off two-phase commit, remote compensation
// batches, in-doubt resolution, completion notifications) and a sched.Pool
// of Config.Workers step workers draining the agent input queue through
// volatile claim/lease hand-out (default 1: the paper's serial node model).
// Workers block on acknowledgements from remote participants; the
// dispatcher never blocks on a worker. Concurrent step transactions are
// serialized by the txn layer's strict 2PL; the pool additionally avoids
// co-scheduling steps whose registered resource hints collide.
//
// Crash behaviour. A node's volatile state (in-flight transactions, locks,
// pending acks) is lost on Stop/crash; its stable store (input queue,
// resource states, prepared branches, decision records) survives. On
// restart the node first resolves in-doubt prepared work with the
// respective coordinators (presumed abort), then re-loads resources, then
// resumes processing — exactly the recovery the paper's mechanism relies
// on (§4.3: the agent and log still reside in the input queue, enabling the
// algorithm to restart the transaction).
package node

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/agent"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/resource"
	"repro/internal/sched"
	"repro/internal/stable"
	"repro/internal/txn"
	"repro/internal/wire"
)

// ResourceFactory constructs (or re-loads after a crash) one resource
// manager from the node's stable store.
type ResourceFactory func(store stable.Store) (resource.Resource, error)

// Config configures a node runtime.
type Config struct {
	// Name is the node's network name.
	Name string
	// Optimized selects the Figure-5 rollback algorithm (avoid agent
	// transfers, ship RCE lists, run ACEs concurrently); false selects
	// the basic Figure-4 algorithm.
	Optimized bool
	// LogMode selects state or transition logging for savepoints (§4.2).
	LogMode core.LogMode
	// AckTimeout bounds waits for remote acknowledgements.
	AckTimeout time.Duration
	// RetryDelay is the back-off between attempts of failed work.
	RetryDelay time.Duration
	// MaxAttempts bounds retries of a queue container before the agent
	// is reported failed to its owner. 0 means unbounded.
	MaxAttempts int
	// Workers is the number of concurrent step-transaction workers
	// draining the input queue (the internal/sched pool). The default 1
	// reproduces the paper's one-step-at-a-time node model; higher
	// values run independent step transactions in parallel under 2PL.
	Workers int
	// SagaBaseline restores weakly reversible objects from savepoint
	// before-images, the saga-style behaviour the paper rejects (§4.1).
	// For the S16b ablation only — it demonstrably corrupts agents whose
	// compensations produce information (see the baseline tests).
	SagaBaseline bool
	// Counters receives metrics; may be nil.
	Counters *metrics.Counters
}

func (c *Config) fillDefaults() {
	if c.LogMode == 0 {
		c.LogMode = core.StateLogging
	}
	if c.AckTimeout == 0 {
		c.AckTimeout = 2 * time.Second
	}
	if c.RetryDelay == 0 {
		c.RetryDelay = 10 * time.Millisecond
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 25
	}
	if c.Workers < 1 {
		c.Workers = 1
	}
}

// Node is one agent-system node.
type Node struct {
	cfg       Config
	ep        network.Endpoint
	store     stable.Store
	queue     *stable.Queue
	mgr       *txn.Manager
	registry  *agent.Registry
	factories []ResourceFactory

	mu          sync.Mutex
	resources   map[string]resource.Resource
	waiters     map[string]chan ackMsg
	activeTxns  map[string]bool // distributed txns this node coordinates
	rceBranches map[string]*rceBranch
	rceInFlight map[string]bool
	rceAborted  map[string]bool
	pendingCtl  map[string]pendingCtl
	pool        *sched.Pool // step scheduler; set once recovery completes

	ready chan struct{}
	stop  chan struct{}
	wg    sync.WaitGroup
}

// rceBranch is a live prepared remote-compensation branch (participant
// side of Figure 5b's distributed compensation transaction).
type rceBranch struct {
	tx       *txn.Tx
	prepared time.Time
}

// pendingCtl is a commit/abort notification that must be delivered
// reliably; it is resent on every tick until acknowledged.
type pendingCtl struct {
	to    string
	kind  string
	txnID string
}

// New creates a node runtime attached to the given endpoint and store. The
// registry provides the step and compensation code (the code-mobility
// substitution); factories construct the node's resources.
func New(cfg Config, ep network.Endpoint, store stable.Store, registry *agent.Registry, factories ...ResourceFactory) (*Node, error) {
	cfg.fillDefaults()
	if cfg.Name == "" {
		cfg.Name = ep.Name()
	}
	if strings.Contains(cfg.Name, "#") {
		return nil, fmt.Errorf("node: name %q must not contain '#'", cfg.Name)
	}
	mgr, err := txn.NewManager(cfg.Name, store)
	if err != nil {
		return nil, err
	}
	return &Node{
		cfg:         cfg,
		ep:          ep,
		store:       store,
		queue:       stable.NewQueue(store, "q/"),
		mgr:         mgr,
		registry:    registry,
		factories:   factories,
		resources:   make(map[string]resource.Resource),
		waiters:     make(map[string]chan ackMsg),
		activeTxns:  make(map[string]bool),
		rceBranches: make(map[string]*rceBranch),
		rceInFlight: make(map[string]bool),
		rceAborted:  make(map[string]bool),
		pendingCtl:  make(map[string]pendingCtl),
		ready:       make(chan struct{}),
		stop:        make(chan struct{}),
	}, nil
}

// Name returns the node name.
func (n *Node) Name() string { return n.cfg.Name }

// Queue exposes the node's agent input queue (tests and launchers).
func (n *Node) Queue() *stable.Queue { return n.queue }

// Resource returns the named local resource manager.
func (n *Node) Resource(name string) (resource.Resource, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	r, ok := n.resources[name]
	return r, ok
}

// Manager exposes the transaction manager (tests and setup code).
func (n *Node) Manager() *txn.Manager { return n.mgr }

// Start launches the dispatcher and worker. It returns immediately;
// recovery (in-doubt resolution, resource loading) happens in the
// background and gates queue processing.
func (n *Node) Start() {
	n.wg.Add(2)
	go func() {
		defer n.wg.Done()
		n.dispatch()
	}()
	go func() {
		defer n.wg.Done()
		n.recoverThenWork()
	}()
}

// Stop halts the node, abandoning volatile state (the crash case). The
// stable store is left intact; a new Node on the same store recovers.
// Closing the stop channel first unblocks workers waiting on remote
// acknowledgements, so the scheduler pool drains promptly: in-flight step
// attempts finish (committed work stands, aborted work is still queued),
// and claims on never-started entries are released.
func (n *Node) Stop() {
	n.mu.Lock()
	select {
	case <-n.stop:
	default:
		close(n.stop)
	}
	pool := n.pool
	n.mu.Unlock()
	if pool != nil {
		pool.Stop()
	}
	n.wg.Wait()
}

// Ready returns a channel closed when recovery completed.
func (n *Node) Ready() <-chan struct{} { return n.ready }

func (n *Node) isReady() bool {
	select {
	case <-n.ready:
		return true
	default:
		return false
	}
}

// coordinatorOf extracts the coordinator node from a transaction ID
// ("node#seq").
func coordinatorOf(txnID string) string {
	if i := strings.LastIndex(txnID, "#"); i >= 0 {
		return txnID[:i]
	}
	return ""
}

// --- ack plumbing -----------------------------------------------------

func ackKey(kind, id string) string { return kind + "|" + id }

// awaitAck registers interest in an acknowledgement before the request is
// sent; await then blocks for it.
func (n *Node) registerWaiter(kind, id string) chan ackMsg {
	ch := make(chan ackMsg, 1)
	n.mu.Lock()
	n.waiters[ackKey(kind, id)] = ch
	n.mu.Unlock()
	return ch
}

func (n *Node) dropWaiter(kind, id string) {
	n.mu.Lock()
	delete(n.waiters, ackKey(kind, id))
	n.mu.Unlock()
}

func (n *Node) deliverAck(kind, id string, msg ackMsg) {
	n.mu.Lock()
	ch, ok := n.waiters[ackKey(kind, id)]
	if ok {
		delete(n.waiters, ackKey(kind, id))
	}
	n.mu.Unlock()
	if ok {
		ch <- msg
	}
}

// errAckTimeout marks a missing acknowledgement (retryable).
var errAckTimeout = errors.New("node: acknowledgement timed out")

func (n *Node) await(ch chan ackMsg, kind, id string) (ackMsg, error) {
	timer := time.NewTimer(n.cfg.AckTimeout)
	defer timer.Stop()
	select {
	case msg := <-ch:
		if !msg.OK {
			return msg, fmt.Errorf("node: %s refused: %s", kind, msg.Err)
		}
		return msg, nil
	case <-timer.C:
		n.dropWaiter(kind, id)
		return ackMsg{}, fmt.Errorf("%w: %s %s", errAckTimeout, kind, id)
	case <-n.stop:
		n.dropWaiter(kind, id)
		return ackMsg{}, errors.New("node: stopped")
	}
}

// send marshals and transmits a protocol message (fire and forget; the
// simulated network only fails permanently for unknown destinations).
func (n *Node) send(to, kind string, payload any) {
	data, err := encodePayload(payload)
	if err != nil {
		return
	}
	// Unknown-destination errors are treated like a lost message: the
	// protocol's retries and presumed abort recover, exactly as for a
	// crashed destination.
	_ = n.ep.Send(to, kind, data)
}

// sendCtlReliable transmits a commit/abort control message and re-sends it
// on every tick until the acknowledgement arrives.
func (n *Node) sendCtlReliable(to, kind, txnID string) {
	n.mu.Lock()
	n.pendingCtl[ackKey(kind, txnID)] = pendingCtl{to: to, kind: kind, txnID: txnID}
	n.mu.Unlock()
	n.send(to, kind, &txnCtlMsg{TxnID: txnID})
}

// ctlAcked clears a reliable control send; it returns true when the ack
// was the first one.
func (n *Node) ctlAcked(kind, txnID string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	key := ackKey(kind, txnID)
	if _, ok := n.pendingCtl[key]; !ok {
		return false
	}
	delete(n.pendingCtl, key)
	return true
}

// hasPendingCtl reports whether any reliable control message for txnID is
// still unacknowledged (a multi-participant commit must keep its decision
// record until every participant confirmed).
func (n *Node) hasPendingCtl(txnID string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, p := range n.pendingCtl {
		if p.txnID == txnID {
			return true
		}
	}
	return false
}

func encodePayload(payload any) ([]byte, error) {
	if payload == nil {
		return nil, nil
	}
	data, err := wire.Encode(payload)
	if err != nil {
		return nil, fmt.Errorf("node: encode payload: %w", err)
	}
	return data, nil
}
