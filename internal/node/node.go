// Package node implements the agent-system node runtime: exactly-once step
// execution (§2, after [11]), the basic rollback mechanism of Figure 4 and
// the optimized mechanism of Figure 5, over the substrates in
// internal/{network,stable,txn,resource}.
//
// Protocol architecture. Every 2PC / RCE / rollback decision lives in the
// pure state machines of internal/protocol; this package is the driver
// around them. The dispatcher goroutine decodes inbound messages into
// protocol events, workers feed local decisions (prepare shipped, commit
// decided, branch executed) in as events too, and a single
// network.TimerWheel per node turns timer-fire callbacks into events —
// Machine.Step is always serialized under one mutex. The effects a
// transition returns (outbound messages, staged-queue operations, branch
// commits/aborts, decision-record GC, timer arm/cancel) are applied by
// the same caller, outside the machine lock. Timers therefore cost O(1)
// goroutines per node — not one polling loop per in-flight transaction —
// and a network.VirtualClock advances every protocol timer
// deterministically.
//
// Concurrency model. Each node runs a dispatcher goroutine handling
// protocol messages and a sched.Pool of Config.Workers step workers
// draining the agent input queue through volatile claim/lease hand-out
// (default 1: the paper's serial node model). Workers block on
// acknowledgements from remote participants; the dispatcher never blocks
// on a worker. Concurrent step transactions are serialized by the txn
// layer's strict 2PL; the pool additionally avoids co-scheduling steps
// whose registered resource hints collide.
//
// Crash behaviour. A node's volatile state (in-flight transactions, locks,
// pending acks, the protocol machine) is lost on Stop/crash; its stable
// store (input queue, resource states, prepared branches, decision
// records) survives. On restart the node first resolves in-doubt prepared
// work with the respective coordinators (presumed abort) by replaying the
// survivors into a fresh machine, then re-loads resources, then resumes
// processing — exactly the recovery the paper's mechanism relies on
// (§4.3: the agent and log still reside in the input queue, enabling the
// algorithm to restart the transaction).
package node

import (
	"errors"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"time"

	"repro/internal/agent"
	"repro/internal/core"
	"repro/internal/membership"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/protocol"
	"repro/internal/resource"
	"repro/internal/sched"
	"repro/internal/stable"
	"repro/internal/trace"
	"repro/internal/txn"
	"repro/internal/wire"
)

// ResourceFactory constructs (or re-loads after a crash) one resource
// manager from the node's stable store.
type ResourceFactory func(store stable.Store) (resource.Resource, error)

// Config configures a node runtime.
type Config struct {
	// Name is the node's network name.
	Name string
	// Optimized selects the Figure-5 rollback algorithm (avoid agent
	// transfers, ship RCE lists, run ACEs concurrently); false selects
	// the basic Figure-4 algorithm.
	Optimized bool
	// LogMode selects state or transition logging for savepoints (§4.2).
	LogMode core.LogMode
	// AckTimeout bounds waits for remote acknowledgements.
	AckTimeout time.Duration
	// RetryDelay is the back-off between attempts of failed work.
	RetryDelay time.Duration
	// MaxAttempts bounds retries of a queue container before the agent
	// is reported failed to its owner. 0 means unbounded.
	MaxAttempts int
	// Workers is the number of concurrent step-transaction workers
	// draining the input queue (the internal/sched pool). The default 1
	// reproduces the paper's one-step-at-a-time node model; higher
	// values run independent step transactions in parallel under 2PL.
	Workers int
	// SagaBaseline restores weakly reversible objects from savepoint
	// before-images, the saga-style behaviour the paper rejects (§4.1).
	// For the S16b ablation only — it demonstrably corrupts agents whose
	// compensations produce information (see the baseline tests).
	SagaBaseline bool
	// WireGob forces gob encoding for all outbound payloads, disabling
	// the binary fast-path codec. Inbound decoding always auto-detects,
	// so a WireGob node and a binary node interoperate; the flag exists
	// for rolling upgrades, A/B benchmarks and the mixed-version tests.
	WireGob bool
	// NoCoalesce sends each protocol message individually instead of
	// grouping the sends of one machine transition per destination (the
	// batching half of the wire fast path). A/B benchmarks only.
	NoCoalesce bool
	// NoCtlBatch disables the PR-10 cross-transaction control-plane
	// batching end to end: the protocol machine arms per-transaction
	// resend/query timers again (eagerly canceled), decision-record GC
	// applies one store transaction per decision instead of staging into
	// a group commit, and acks never linger for piggybacking. A/B
	// benchmarks and the loadgen -noctlbatch flag only.
	NoCtlBatch bool
	// MigrateBurst bounds the migration hand-offs the rebalancer
	// attempts per sweep, so one view change cannot convert the whole
	// misplaced backlog into a single burst that spikes step latency.
	// Overflow moves stay fenced and retry on the next sweep. The
	// default is 8; negative means unbounded.
	MigrateBurst int
	// Clock drives the node's protocol timers (ack timeouts, control
	// resends, in-doubt queries, notification resends) through its
	// timer wheel; nil uses the wall clock. A network.VirtualClock
	// makes every protocol timer manually advanceable.
	Clock network.Clock
	// Counters receives metrics; may be nil.
	Counters *metrics.Counters
	// Tracer receives the node's causal event records: every protocol
	// transition, timer arm/fire/cancel, wire send/receive/batch-flush,
	// and stable-transaction outcome. May be nil (all record calls are
	// nil-safe and free). Build it over the same Clock as the node so
	// traces are deterministic under a VirtualClock.
	Tracer *trace.Tracer
	// Logger receives structured runtime events (permanent agent
	// failures, recovery problems) with node/agent/txn attributes; nil
	// discards them.
	Logger *slog.Logger
	// Membership, when set, turns on the membership layer: the node
	// floods view announcements, resolves "@ring" step locations through
	// the manager's consistent-hash ring, and runs a rebalancer that
	// migrates misplaced ring-placed agents via 2PC hand-offs (see
	// membership.go). Nil keeps the static-wiring behaviour.
	Membership *membership.Manager
}

func (c *Config) fillDefaults() {
	if c.LogMode == 0 {
		c.LogMode = core.StateLogging
	}
	if c.AckTimeout == 0 {
		c.AckTimeout = 2 * time.Second
	}
	if c.RetryDelay == 0 {
		c.RetryDelay = 10 * time.Millisecond
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 25
	}
	if c.Workers < 1 {
		c.Workers = 1
	}
	if c.MigrateBurst == 0 {
		c.MigrateBurst = 8
	}
	if c.Clock == nil {
		c.Clock = network.WallClock()
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.DiscardHandler)
	}
}

// Node is one agent-system node.
type Node struct {
	cfg       Config
	ep        network.Endpoint
	store     stable.Store
	queue     *stable.Queue
	mgr       *txn.Manager
	registry  *agent.Registry
	factories []ResourceFactory
	clock     network.Clock
	wheel     *network.TimerWheel

	// pmu serializes Machine.Step; the machine itself is pure and
	// single-threaded. Never hold mu and pmu together.
	pmu     sync.Mutex
	machine *protocol.Machine

	// members is cfg.Membership (nil without the membership layer);
	// adopted/adopting (under mu) back the duplicate-adoption guard.
	members  *membership.Manager
	adopted  map[string]int64
	adopting map[string]stagingAdoption

	mu        sync.Mutex
	resources map[string]resource.Resource
	waiters   map[string]chan protocol.AckMsg
	branchTx  map[string]*txn.Tx // prepared RCE branch transactions, parked for the verdict
	pool      *sched.Pool        // step scheduler; set once recovery completes

	// Control-plane write stager (PR-10): decision-record clears and
	// done-record drops from concurrent transitions coalesce into one
	// group Apply, flushed on size or after a short linger.
	stagerMu    sync.Mutex
	stagerOps   []stable.Op
	stagerArmed bool

	// Ack piggyback hold buffers (PR-10): non-blocking responses parked
	// per peer until an outbound batch heads that way or the linger
	// timer flushes them.
	holdMu    sync.Mutex
	held      map[string][]network.Outgoing
	heldArmed map[string]bool

	ready chan struct{}
	stop  chan struct{}
	wg    sync.WaitGroup
}

// New creates a node runtime attached to the given endpoint and store. The
// registry provides the step and compensation code (the code-mobility
// substitution); factories construct the node's resources.
func New(cfg Config, ep network.Endpoint, store stable.Store, registry *agent.Registry, factories ...ResourceFactory) (*Node, error) {
	cfg.fillDefaults()
	if cfg.Name == "" {
		cfg.Name = ep.Name()
	}
	if strings.Contains(cfg.Name, "#") {
		return nil, fmt.Errorf("node: name %q must not contain '#'", cfg.Name)
	}
	mgr, err := txn.NewManager(cfg.Name, store)
	if err != nil {
		return nil, err
	}
	if tr := cfg.Tracer; tr != nil {
		// Stable-transaction outcomes (commit, abort, prepare,
		// commit-prepared) land in the same ring as the protocol events
		// they settle.
		mgr.SetTraceHook(func(op, id string) {
			tr.Rec(trace.OpStable, id, "", op, "", "", 0)
		})
	}
	n := &Node{
		cfg:      cfg,
		ep:       ep,
		store:    store,
		queue:    stable.NewQueue(store, "q/"),
		mgr:      mgr,
		registry: registry,
		clock:    cfg.Clock,
		machine: protocol.NewMachine(protocol.Config{
			Node:          cfg.Name,
			RetryInterval: cfg.RetryDelay * 5,
			StaleAfter:    2 * cfg.AckTimeout,
			NoCtlBatch:    cfg.NoCtlBatch,
		}),
		factories: factories,
		members:   cfg.Membership,
		adopted:   make(map[string]int64),
		adopting:  make(map[string]stagingAdoption),
		resources: make(map[string]resource.Resource),
		waiters:   make(map[string]chan protocol.AckMsg),
		branchTx:  make(map[string]*txn.Tx),
		ready:     make(chan struct{}),
		stop:      make(chan struct{}),
	}
	return n, nil
}

// Name returns the node name.
func (n *Node) Name() string { return n.cfg.Name }

// Queue exposes the node's agent input queue (tests and launchers).
func (n *Node) Queue() *stable.Queue { return n.queue }

// Resource returns the named local resource manager.
func (n *Node) Resource(name string) (resource.Resource, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	r, ok := n.resources[name]
	return r, ok
}

// Manager exposes the transaction manager (tests and setup code).
func (n *Node) Manager() *txn.Manager { return n.mgr }

// Start launches the timer wheel, the dispatcher and the worker pool. It
// returns immediately; recovery (in-doubt resolution, resource loading)
// happens in the background and gates queue processing.
func (n *Node) Start() {
	var obs network.TimerObserver
	if n.cfg.Counters != nil {
		obs = n.cfg.Counters
	}
	n.wheel = network.NewTimerWheel(n.clock, n.onTimer, obs)
	n.wg.Add(2)
	go func() {
		defer n.wg.Done()
		n.dispatch()
	}()
	go func() {
		defer n.wg.Done()
		n.recoverThenWork()
	}()
	if n.members != nil {
		n.wg.Add(1)
		go n.rebalanceLoop()
		// Introduce ourselves: a joining (or restarting) node's first
		// announcement provokes anti-entropy replies that teach it the
		// present view.
		n.Announce()
	}
}

// Stop halts the node, abandoning volatile state (the crash case). The
// stable store is left intact; a new Node on the same store recovers.
// Closing the stop channel first unblocks workers waiting on remote
// acknowledgements, so the scheduler pool drains promptly: in-flight step
// attempts finish (committed work stands, aborted work is still queued),
// and claims on never-started entries are released. The timer wheel is
// stopped before waiting so no further timer events fire.
func (n *Node) Stop() {
	n.mu.Lock()
	select {
	case <-n.stop:
	default:
		close(n.stop)
	}
	pool := n.pool
	wheel := n.wheel
	n.mu.Unlock()
	if pool != nil {
		pool.Stop()
	}
	if wheel != nil {
		wheel.Stop()
	}
	n.wg.Wait()
	// Courtesy drain of the GC stager: the ops are crash-safe to lose,
	// but a clean stop should not leave avoidable garbage behind.
	n.flushCtlStage()
}

// Ready returns a channel closed when recovery completed. (The protocol
// machine tracks readiness itself via the ReadyReached event; this
// channel is the public API for launchers and the cluster.)
func (n *Node) Ready() <-chan struct{} { return n.ready }

// --- ack plumbing -----------------------------------------------------

func ackKey(kind, id string) string { return kind + "|" + id }

// registerWaiter registers interest in an acknowledgement before the
// request is sent; await then blocks for it. The machine's DeliverAck
// effect fulfils it.
func (n *Node) registerWaiter(kind, id string) chan protocol.AckMsg {
	ch := make(chan protocol.AckMsg, 1)
	n.mu.Lock()
	n.waiters[ackKey(kind, id)] = ch
	n.mu.Unlock()
	return ch
}

func (n *Node) dropWaiter(kind, id string) {
	n.mu.Lock()
	delete(n.waiters, ackKey(kind, id))
	n.mu.Unlock()
}

func (n *Node) deliverAck(kind, id string, msg protocol.AckMsg) {
	n.mu.Lock()
	ch, ok := n.waiters[ackKey(kind, id)]
	if ok {
		delete(n.waiters, ackKey(kind, id))
	}
	n.mu.Unlock()
	if ok {
		ch <- msg
	}
}

// errAckTimeout marks a missing acknowledgement (retryable).
var errAckTimeout = errors.New("node: acknowledgement timed out")

func (n *Node) await(ch chan protocol.AckMsg, kind, id string) (protocol.AckMsg, error) {
	timeout, cancel := network.ClockTimer(n.clock, n.cfg.AckTimeout)
	defer cancel()
	select {
	case msg := <-ch:
		if !msg.OK {
			return msg, fmt.Errorf("node: %s refused: %s", kind, msg.Err)
		}
		return msg, nil
	case <-timeout:
		n.dropWaiter(kind, id)
		return protocol.AckMsg{}, fmt.Errorf("%w: %s %s", errAckTimeout, kind, id)
	case <-n.stop:
		n.dropWaiter(kind, id)
		return protocol.AckMsg{}, errors.New("node: stopped")
	}
}

// send marshals and transmits a protocol message (fire and forget; the
// simulated network only fails permanently for unknown destinations).
func (n *Node) send(to, kind string, payload any) {
	data, err := n.encodePayload(payload)
	if err != nil {
		return
	}
	n.traceSend(to, kind, payload, len(data))
	// Unknown-destination errors are treated like a lost message: the
	// protocol's retries and presumed abort recover, exactly as for a
	// crashed destination.
	_ = n.ep.Send(to, kind, data)
}

// traceSend records one outbound protocol message in the trace ring.
func (n *Node) traceSend(to, kind string, payload any, bytes int) {
	tr := n.cfg.Tracer
	if tr == nil {
		return
	}
	txnID, agentID := payloadSubject(payload)
	tr.Rec(trace.OpWireSend, txnID, agentID, kind, to, "", int64(bytes))
}

// payloadSubject pulls the transaction and/or agent a protocol payload
// concerns, for trace records.
func payloadSubject(payload any) (txnID, agentID string) {
	switch p := payload.(type) {
	case *protocol.PrepareMsg:
		return p.TxnID, p.EntryID
	case *protocol.CtlMsg:
		return p.TxnID, ""
	case *protocol.AckMsg:
		return p.TxnID, ""
	case *protocol.StatusMsg:
		return p.TxnID, ""
	case *protocol.RCEExecMsg:
		return p.TxnID, ""
	case *doneMsg:
		return "", p.AgentID
	case *launchMsg:
		return "", p.ID
	default:
		return "", ""
	}
}

// sendTo routes a protocol send through the current transition's
// outbound batch when one is active, so every message a machine
// transition emits to the same destination rides one endpoint call (and
// with the Sim, one mailbox hop; with TCP, usually one socket write).
// With a nil batch — or NoCoalesce — it degenerates to send.
func (n *Node) sendTo(b *outBatch, to, kind string, payload any) {
	if b == nil {
		n.send(to, kind, payload)
		return
	}
	data, err := n.encodePayload(payload)
	if err != nil {
		return
	}
	n.traceSend(to, kind, payload, len(data))
	if n.holdForRide(to, kind, data) {
		return
	}
	b.add(to, kind, data)
}

// encodePayload serializes one outbound payload: the hand-rolled binary
// codec for the high-volume protocol messages (unless Config.WireGob
// pins the legacy format), gob for everything else. Receivers sniff the
// version byte, so both formats coexist on one link.
func (n *Node) encodePayload(payload any) ([]byte, error) {
	if payload == nil {
		return nil, nil
	}
	if !n.cfg.WireGob {
		if bm, ok := payload.(wire.BinaryMessage); ok {
			return bm.AppendTo(nil), nil
		}
	}
	data, err := wire.Encode(payload)
	if err != nil {
		return nil, fmt.Errorf("node: encode payload: %w", err)
	}
	return data, nil
}

// outBatch accumulates the sends of one protocol transition grouped by
// destination, preserving first-send order between destinations and
// message order within one.
type outBatch struct {
	order  []string
	byDest map[string][]network.Outgoing
}

func (b *outBatch) add(to, kind string, payload []byte) {
	if b.byDest == nil {
		b.byDest = make(map[string][]network.Outgoing, 2)
	}
	if _, ok := b.byDest[to]; !ok {
		b.order = append(b.order, to)
	}
	b.byDest[to] = append(b.byDest[to], network.Outgoing{Kind: kind, Payload: payload})
}

func (b *outBatch) flush(n *Node) {
	for _, to := range b.order {
		msgs := b.byDest[to]
		// A batch headed to a peer picks up that peer's parked replies:
		// the piggyback ride.
		if rides := n.takeHeld(to); len(rides) > 0 {
			if n.cfg.Counters != nil {
				n.cfg.Counters.IncAckPiggybacked(int64(len(rides)))
			}
			if tr := n.cfg.Tracer; tr != nil {
				for _, r := range rides {
					tr.Rec(trace.OpPiggyback, "", "", r.Kind, to, "", int64(len(r.Payload)))
				}
			}
			msgs = append(msgs, rides...)
		}
		if tr := n.cfg.Tracer; tr != nil {
			tr.Rec(trace.OpBatchFlush, "", "", "", to, "", int64(len(msgs)))
		}
		// Unknown-destination errors: lost messages, like send.
		_ = network.SendAll(n.ep, to, msgs)
	}
	b.order = b.order[:0]
	clear(b.byDest)
}
