package node

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/agent"
	"repro/internal/core"
	"repro/internal/itinerary"
)

func TestCoordinatorOf(t *testing.T) {
	cases := map[string]string{
		"nodeA#42":    "nodeA",
		"a#b#7":       "a#b", // last separator wins
		"noseparator": "",
	}
	for id, want := range cases {
		if got := coordinatorOf(id); got != want {
			t.Errorf("coordinatorOf(%q) = %q, want %q", id, got, want)
		}
	}
}

func TestPermanentErrorClassification(t *testing.T) {
	base := errors.New("boom")
	if isPermanent(base) {
		t.Error("plain error classified permanent")
	}
	p := permanent(base)
	if !isPermanent(p) {
		t.Error("permanent error not recognized")
	}
	wrapped := fmt.Errorf("context: %w", p)
	if !isPermanent(wrapped) {
		t.Error("wrapped permanent error not recognized")
	}
	if !errors.Is(wrapped, base) {
		t.Error("cause lost through permanent wrapper")
	}
}

func TestPopToTarget(t *testing.T) {
	mkLog := func() *core.Log {
		l := &core.Log{}
		if err := l.AppendSavepoint("base", map[string][]byte{}, core.StateLogging, true); err != nil {
			t.Fatal(err)
		}
		l.Append(&core.BeginStepEntry{Node: "n", Seq: 0})
		l.Append(&core.EndStepEntry{Node: "n", Seq: 0})
		if err := l.AppendSavepoint("target", map[string][]byte{}, core.StateLogging, true); err != nil {
			t.Fatal(err)
		}
		if err := l.AppendSpecialSavepoint("stale1", "target", true); err != nil {
			t.Fatal(err)
		}
		if err := l.AppendSpecialSavepoint("stale2", "target", true); err != nil {
			t.Fatal(err)
		}
		return l
	}

	// Target buried under stale savepoints: they are popped, target kept.
	l := mkLog()
	reached, popped := popToTarget(l, "target")
	if !reached || popped != 2 {
		t.Errorf("reached=%v popped=%d, want true/2", reached, popped)
	}
	if !l.LastIsSavepoint("target") {
		t.Errorf("log after pops: %s", l)
	}

	// Target not in the trailing savepoint run: everything trailing is
	// popped (Figure 4b's savepoint pop), reached=false.
	l2 := mkLog()
	reached, popped = popToTarget(l2, "base")
	if reached || popped != 3 {
		t.Errorf("reached=%v popped=%d, want false/3", reached, popped)
	}
	if _, ok := l2.Last().(*core.EndStepEntry); !ok {
		t.Errorf("log after pops: %s", l2)
	}

	// Non-savepoint tail: nothing popped.
	l3 := &core.Log{}
	l3.Append(&core.EndStepEntry{Node: "n"})
	reached, popped = popToTarget(l3, "x")
	if reached || popped != 0 {
		t.Errorf("reached=%v popped=%d, want false/0", reached, popped)
	}
}

func TestPeekEOS(t *testing.T) {
	l := &core.Log{}
	if _, ok := peekEOS(l); ok {
		t.Error("peekEOS on empty log")
	}
	l.Append(&core.BeginStepEntry{Node: "n", Seq: 0})
	l.Append(&core.EndStepEntry{Node: "resnode", Seq: 0, HasMixed: true})
	if err := l.AppendSavepoint("sp", map[string][]byte{}, core.StateLogging, true); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendSpecialSavepoint("sp2", "sp", true); err != nil {
		t.Fatal(err)
	}
	eos, ok := peekEOS(l)
	if !ok || eos.Node != "resnode" || !eos.HasMixed {
		t.Errorf("peekEOS = %+v, %v", eos, ok)
	}
	// A BOS directly at the tail (malformed for peeking) yields no EOS.
	l2 := &core.Log{}
	l2.Append(&core.BeginStepEntry{Node: "n"})
	if _, ok := peekEOS(l2); ok {
		t.Error("peekEOS found EOS behind a BOS tail")
	}
}

func TestPickDestination(t *testing.T) {
	n := &Node{}
	alts := []string{"alt1", "alt2"}
	for attempt := 1; attempt <= 3; attempt++ {
		if got := n.pickDestination("primary", alts, attempt); got != "primary" {
			t.Errorf("attempt %d: %q, want primary", attempt, got)
		}
	}
	if got := n.pickDestination("primary", alts, 4); got != "alt1" {
		t.Errorf("attempt 4: %q, want alt1", got)
	}
	if got := n.pickDestination("primary", alts, 5); got != "alt2" {
		t.Errorf("attempt 5: %q, want alt2", got)
	}
	if got := n.pickDestination("primary", alts, 6); got != "alt1" {
		t.Errorf("attempt 6: %q, want alt1 (wrap)", got)
	}
	// Without alternatives the primary is used forever.
	if got := n.pickDestination("primary", nil, 99); got != "primary" {
		t.Errorf("no alts: %q", got)
	}
}

func TestContainerRoundTrip(t *testing.T) {
	it, err := itinerary.New(&itinerary.Sub{ID: "s", Entries: []itinerary.Entry{
		itinerary.Step{Method: "m", Loc: "l"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	a, _, err := agent.New("a1", "owner", it)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.WRO.Set("k", "v"); err != nil {
		t.Fatal(err)
	}
	data, err := EncodeContainer(&Container{Mode: ModeRollback, SpID: "sp9", Agent: a})
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeContainer(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Mode != ModeRollback || got.SpID != "sp9" || got.Agent.ID != "a1" {
		t.Errorf("container = %+v", got)
	}
	var v string
	if err := got.Agent.WRO.MustGet("k", &v); err != nil || v != "v" {
		t.Errorf("agent data lost: %q, %v", v, err)
	}
}

func TestNodeNameValidation(t *testing.T) {
	if _, err := New(Config{Name: "bad#name"}, nil, nil, nil); err == nil {
		t.Error("node name with '#' accepted")
	}
}

func TestDoneMessageRoundTrip(t *testing.T) {
	it, err := itinerary.New(&itinerary.Sub{ID: "s", Entries: []itinerary.Entry{
		itinerary.Step{Method: "m", Loc: "l"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	a, _, err := agent.New("agent-7", "owner", it)
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeContainer(&Container{Mode: ModeStep, Agent: a})
	if err != nil {
		t.Fatal(err)
	}
	payload, err := wireEncodeDone(doneMsg{AgentID: "agent-7", Failed: true, Reason: "why", Data: data})
	if err != nil {
		t.Fatal(err)
	}
	done, err := DecodeDone(payload)
	if err != nil {
		t.Fatal(err)
	}
	if done.AgentID != "agent-7" || !done.Failed || done.Reason != "why" || done.Agent == nil {
		t.Errorf("done = %+v", done)
	}
}

func wireEncodeDone(m doneMsg) ([]byte, error) { return encodePayload(&m) }

func TestCtlAckBookkeeping(t *testing.T) {
	n := &Node{
		pendingCtl: make(map[string]pendingCtl),
		waiters:    make(map[string]chan ackMsg),
	}
	n.pendingCtl[ackKey(kindEnqueueCommit, "t1")] = pendingCtl{to: "x", kind: kindEnqueueCommit, txnID: "t1"}
	n.pendingCtl[ackKey(kindRCECommit, "t1")] = pendingCtl{to: "y", kind: kindRCECommit, txnID: "t1"}
	if !n.hasPendingCtl("t1") {
		t.Error("pending ctl not found")
	}
	if !n.ctlAcked(kindEnqueueCommit, "t1") {
		t.Error("first ack not recognized")
	}
	if n.ctlAcked(kindEnqueueCommit, "t1") {
		t.Error("duplicate ack recognized twice")
	}
	if !n.hasPendingCtl("t1") {
		t.Error("second participant's ctl lost")
	}
	if !n.ctlAcked(kindRCECommit, "t1") {
		t.Error("second ack not recognized")
	}
	if n.hasPendingCtl("t1") {
		t.Error("ctl lingers after all acks")
	}
}
