package node

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/agent"
	"repro/internal/itinerary"
)

func TestPermanentErrorClassification(t *testing.T) {
	base := errors.New("boom")
	if isPermanent(base) {
		t.Error("plain error classified permanent")
	}
	p := permanent(base)
	if !isPermanent(p) {
		t.Error("permanent error not recognized")
	}
	wrapped := fmt.Errorf("context: %w", p)
	if !isPermanent(wrapped) {
		t.Error("wrapped permanent error not recognized")
	}
	if !errors.Is(wrapped, base) {
		t.Error("cause lost through permanent wrapper")
	}
}

func TestContainerRoundTrip(t *testing.T) {
	it, err := itinerary.New(&itinerary.Sub{ID: "s", Entries: []itinerary.Entry{
		itinerary.Step{Method: "m", Loc: "l"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	a, _, err := agent.New("a1", "owner", it)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.WRO.Set("k", "v"); err != nil {
		t.Fatal(err)
	}
	data, err := EncodeContainer(&Container{Mode: ModeRollback, SpID: "sp9", Agent: a})
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeContainer(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Mode != ModeRollback || got.SpID != "sp9" || got.Agent.ID != "a1" {
		t.Errorf("container = %+v", got)
	}
	var v string
	if err := got.Agent.WRO.MustGet("k", &v); err != nil || v != "v" {
		t.Errorf("agent data lost: %q, %v", v, err)
	}
}

func TestNodeNameValidation(t *testing.T) {
	if _, err := New(Config{Name: "bad#name"}, nil, nil, nil); err == nil {
		t.Error("node name with '#' accepted")
	}
}

func TestDoneMessageRoundTrip(t *testing.T) {
	it, err := itinerary.New(&itinerary.Sub{ID: "s", Entries: []itinerary.Entry{
		itinerary.Step{Method: "m", Loc: "l"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	a, _, err := agent.New("agent-7", "owner", it)
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeContainer(&Container{Mode: ModeStep, Agent: a})
	if err != nil {
		t.Fatal(err)
	}
	payload, err := wireEncodeDone(doneMsg{AgentID: "agent-7", Failed: true, Reason: "why", Data: data})
	if err != nil {
		t.Fatal(err)
	}
	done, err := DecodeDone(payload)
	if err != nil {
		t.Fatal(err)
	}
	if done.AgentID != "agent-7" || !done.Failed || done.Reason != "why" || done.Agent == nil {
		t.Errorf("done = %+v", done)
	}
}

func wireEncodeDone(m doneMsg) ([]byte, error) {
	n := &Node{}
	return n.encodePayload(&m)
}
