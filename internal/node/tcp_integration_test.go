package node_test

import (
	"path/filepath"
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/core"
	"repro/internal/demo"
	"repro/internal/network"
	"repro/internal/node"
	"repro/internal/resource"
	"repro/internal/stable"
)

// tcpNode is one "process": a TCP endpoint + file store + node runtime.
type tcpNode struct {
	name    string
	dataDir string
	ep      *network.TCPEndpoint
	n       *node.Node
}

// startTCPNode boots (or re-boots, crash-recovery style) one node.
func startTCPNode(t *testing.T, name, listen string, peers map[string]string, dataDir string, reg *agent.Registry, factories ...node.ResourceFactory) *tcpNode {
	t.Helper()
	ep, err := network.NewTCP(network.TCPConfig{Name: name, Listen: listen, Peers: peers})
	if err != nil {
		t.Fatal(err)
	}
	store, err := stable.OpenFileStore(dataDir, nil)
	if err != nil {
		t.Fatal(err)
	}
	n, err := node.New(node.Config{
		Name:       name,
		Optimized:  true,
		RetryDelay: 2 * time.Millisecond,
		AckTimeout: time.Second,
	}, ep, store, reg, factories...)
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	select {
	case <-n.Ready():
	case <-time.After(5 * time.Second):
		t.Fatalf("node %s never became ready", name)
	}
	return &tcpNode{name: name, dataDir: dataDir, ep: ep, n: n}
}

func (tn *tcpNode) stop() {
	tn.n.Stop()
	tn.ep.Close()
}

// TestTCPMultiProcess runs the demo shopping scenario (with its partial
// rollback) across three node runtimes connected by real TCP sockets with
// file-backed stable stores — the multi-process deployment of S15. It then
// "kills" the shop node (stopping runtime and listener) and restarts it on
// the same data directory, verifying the durable resource state survived.
func TestTCPMultiProcess(t *testing.T) {
	ports := map[string]string{
		"A":   "127.0.0.1:17841",
		"B":   "127.0.0.1:17842",
		"C":   "127.0.0.1:17843",
		"ctl": "127.0.0.1:17840",
	}
	reg := agent.NewRegistry()
	if err := demo.Register(reg); err != nil {
		t.Fatal(err)
	}
	base := t.TempDir()

	bankF := func(st stable.Store) (resource.Resource, error) { return resource.NewBank(st, "bank", false) }
	shopF := func(st stable.Store) (resource.Resource, error) {
		return resource.NewShop(st, "shop", resource.ShopConfig{Currency: "USD", Mode: resource.RefundCash, FeePercent: 10})
	}
	dirF := func(st stable.Store) (resource.Resource, error) { return resource.NewDirectory(st, "dir") }

	a := startTCPNode(t, "A", ports["A"], ports, filepath.Join(base, "a"), reg, bankF)
	b := startTCPNode(t, "B", ports["B"], ports, filepath.Join(base, "b"), reg, shopF)
	c := startTCPNode(t, "C", ports["C"], ports, filepath.Join(base, "c"), reg, dirF)
	t.Cleanup(func() { a.stop(); c.stop() })

	// Seed the three nodes.
	seed := func(tn *tcpNode, f func() error) {
		t.Helper()
		if err := f(); err != nil {
			t.Fatal(err)
		}
	}
	tx, err := a.n.Manager().Begin()
	if err != nil {
		t.Fatal(err)
	}
	r, _ := a.n.Resource("bank")
	seed(a, func() error { return r.(*resource.Bank).OpenAccount(tx, "alice", 1000) })
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx2, err := b.n.Manager().Begin()
	if err != nil {
		t.Fatal(err)
	}
	rs, _ := b.n.Resource("shop")
	seed(b, func() error { return rs.(*resource.Shop).Restock(tx2, "book", 5, 100) })
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	tx3, err := c.n.Manager().Begin()
	if err != nil {
		t.Fatal(err)
	}
	rd, _ := c.n.Resource("dir")
	seed(c, func() error { return rd.(*resource.Directory).Put(tx3, "review/book", "bad") })
	if err := tx3.Commit(); err != nil {
		t.Fatal(err)
	}

	// Launch via a ctl endpoint, like cmd/agentctl does.
	ctl, err := network.NewTCP(network.TCPConfig{Name: "ctl", Listen: ports["ctl"], Peers: ports})
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()

	ag, entered, err := demo.NewAgent("tcp-shopper", "alice", "A", "B", "C")
	if err != nil {
		t.Fatal(err)
	}
	ag.Owner = "ctl"
	if err := node.AppendInitialSavepoints(ag, entered, core.StateLogging); err != nil {
		t.Fatal(err)
	}
	data, err := node.EncodeContainer(&node.Container{Mode: node.ModeStep, Agent: ag})
	if err != nil {
		t.Fatal(err)
	}
	launch, err := node.EncodeLaunch("tcp-shopper", data)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctl.Send("A", node.KindAgentLaunch, launch); err != nil {
		t.Fatal(err)
	}

	var done node.Done
	deadline := time.NewTimer(30 * time.Second)
	defer deadline.Stop()
waitLoop:
	for {
		select {
		case msg, ok := <-ctl.Recv():
			if !ok {
				t.Fatal("ctl endpoint closed")
			}
			if msg.Kind != node.KindAgentDone {
				continue
			}
			done, err = node.DecodeDone(msg.Payload)
			if err != nil {
				t.Fatal(err)
			}
			if ack, err := node.EncodeDoneAck(done.AgentID); err == nil {
				_ = ctl.Send(msg.From, node.KindAgentDoneAck, ack)
			}
			break waitLoop
		case <-deadline.C:
			t.Fatal("agent never completed over TCP")
		}
	}
	if done.Failed {
		t.Fatalf("agent failed: %s", done.Reason)
	}
	var decision string
	if err := done.Agent.SRO.MustGet("decision", &decision); err != nil || decision != "skip" {
		t.Fatalf("decision = %q, %v; want skip (rollback ran)", decision, err)
	}
	w, err := demo.Wallet(done.Agent.WRO)
	if err != nil {
		t.Fatal(err)
	}
	if w.Total("USD") != 500 {
		t.Errorf("wallet = %d, want 500", w.Total("USD"))
	}

	// "Kill" the shop process and restart it on the same data directory:
	// the durable resource state (incl. the compensated stock and the
	// kept refund fee) must survive.
	b.stop()
	b2 := startTCPNode(t, "B", ports["B"], ports, filepath.Join(base, "b"), reg, shopF)
	t.Cleanup(b2.stop)
	tx4, err := b2.n.Manager().Begin()
	if err != nil {
		t.Fatal(err)
	}
	rs2, ok := b2.n.Resource("shop")
	if !ok {
		t.Fatal("shop missing after restart")
	}
	stock, err := rs2.(*resource.Shop).StockOf(tx4, "book")
	if err != nil {
		t.Fatal(err)
	}
	_ = tx4.Abort()
	if stock != 5 {
		t.Errorf("stock after restart = %d, want 5 (compensated purchase persisted)", stock)
	}
}
