package perfmodel

import (
	"testing"
	"testing/quick"
	"time"
)

var lan = Link{Latency: 200 * time.Microsecond, ThroughputBps: 10e6}

func TestMixedAlwaysMigrates(t *testing.T) {
	st := Step{AgentBytes: 1 << 20, EntryBytes: 16, Ops: 1, HasMixed: true}
	s, _ := Pick(st, lan)
	if s != MigrateAgent {
		t.Errorf("mixed step picked %v, want migrate-agent", s)
	}
}

func TestSmallEntriesPreferShipping(t *testing.T) {
	// A fat agent with a tiny compensation list: shipping must win.
	st := Step{AgentBytes: 256 << 10, EntryBytes: 128, Ops: 2}
	s, cost := Pick(st, lan)
	if s != ShipEntries {
		t.Errorf("picked %v (cost %v), want ship-entries", s, cost)
	}
	if Cost(ShipEntries, st, lan) >= Cost(MigrateAgent, st, lan) {
		t.Error("shipping not cheaper than migrating for a fat agent")
	}
}

func TestTinyAgentCanPreferMigration(t *testing.T) {
	// An agent smaller than the compensation payload over a slow link:
	// migrating (2 round trips each way but tiny payload) can beat
	// shipping a huge entry list.
	slow := Link{Latency: time.Microsecond, ThroughputBps: 1e6}
	st := Step{AgentBytes: 100, EntryBytes: 1 << 20, Ops: 4}
	s, _ := Pick(st, slow)
	if s == ShipEntries {
		t.Errorf("picked ship-entries for a tiny agent with a huge entry list")
	}
}

func TestRPCWinsForSingleSmallOpOverFastLink(t *testing.T) {
	// RPC costs one round trip per op (+commit); shipping costs two.
	// With one tiny op and equal payloads, RPC and shipping tie on
	// round trips (2 each); with high throughput the payload term
	// vanishes, so compare exact costs instead of the picked winner.
	st := Step{AgentBytes: 64 << 10, EntryBytes: 64, Ops: 1}
	rpc := Cost(RPC, st, lan)
	ship := Cost(ShipEntries, st, lan)
	if rpc > ship {
		t.Errorf("rpc %v > ship %v for a single op", rpc, ship)
	}
}

func TestRPCLosesForManyOps(t *testing.T) {
	st := Step{AgentBytes: 64 << 10, EntryBytes: 4096, Ops: 32}
	if Cost(RPC, st, lan) <= Cost(ShipEntries, st, lan) {
		t.Error("32 RPC round trips not more expensive than one shipped batch")
	}
}

func TestCostMonotoneInBytes(t *testing.T) {
	err := quick.Check(func(a, b uint16) bool {
		small := Step{AgentBytes: int(a), EntryBytes: 64, Ops: 1}
		big := Step{AgentBytes: int(a) + int(b), EntryBytes: 64, Ops: 1}
		return Cost(MigrateAgent, big, lan) >= Cost(MigrateAgent, small, lan)
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

func TestPickIsCheapest(t *testing.T) {
	err := quick.Check(func(agentKB, entryKB uint8, ops uint8) bool {
		st := Step{
			AgentBytes: int(agentKB) << 10,
			EntryBytes: int(entryKB) << 10,
			Ops:        int(ops%16) + 1,
		}
		picked, cost := Pick(st, lan)
		for _, s := range []Strategy{MigrateAgent, ShipEntries, RPC} {
			if Cost(s, st, lan) < cost {
				return false
			}
		}
		_ = picked
		return true
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}

func TestCrossover(t *testing.T) {
	entry := 4096
	cross := CrossoverAgentBytes(entry, lan)
	if cross <= 0 {
		t.Skip("latency term dominates; shipping always wins on this link")
	}
	below := Step{AgentBytes: cross / 2, EntryBytes: entry, Ops: 2}
	above := Step{AgentBytes: cross * 2, EntryBytes: entry, Ops: 2}
	if Cost(MigrateAgent, below, lan) > Cost(ShipEntries, below, lan) {
		t.Error("below the crossover, migrating should not lose")
	}
	if Cost(MigrateAgent, above, lan) <= Cost(ShipEntries, above, lan) {
		t.Error("above the crossover, shipping should win")
	}
}

func TestCrossoverLatencyOnly(t *testing.T) {
	if got := CrossoverAgentBytes(1<<20, Link{Latency: time.Millisecond}); got != 0 {
		t.Errorf("latency-only crossover = %d, want 0", got)
	}
}

func TestStrategyString(t *testing.T) {
	for s, want := range map[Strategy]string{
		MigrateAgent: "migrate-agent",
		ShipEntries:  "ship-entries",
		RPC:          "rpc",
		Strategy(9):  "Strategy(9)",
	} {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(s), got, want)
		}
	}
}
