// Package perfmodel implements the further optimization sketched at the
// end of §4.4.1: "if the access to resources within the mixed compensation
// entries and the resource compensation entries may be performed using
// RPC … a performance model similar to that introduced in [16] can be used
// to determine if the agent or the resource compensation objects should be
// transferred to the node where the resources reside or if RPC should be
// used to access the resources."
//
// Following Straßer & Schwehm's PDPTA'97 model, the cost of executing a
// remote interaction is expressed in transmitted bytes and round trips
// over a link with latency L (one way) and throughput B:
//
//	time(bytes, rtts) = 2·L·rtts + bytes/B
//
// Three strategies compensate one step remotely:
//
//	MigrateAgent   move the whole agent container to the resource node
//	               and back (2 transfers, each one round trip of the
//	               hand-off protocol plus the container bytes).
//	ShipEntries    send only the resource compensation entries and
//	               commit the branch (Figure 5b: exec + ack, commit).
//	RPC            call each compensating operation individually
//	               (one round trip per operation plus its parameters).
//
// Pick returns the cheapest strategy; the experiment table T-perf checks
// the model's crossovers against the measured Figure-5 behaviour.
package perfmodel

import (
	"fmt"
	"time"
)

// Strategy is a remote-compensation execution strategy.
type Strategy int

// Strategies considered by the model.
const (
	// MigrateAgent moves the agent to the resource node (the basic
	// algorithm's only option, and required for mixed entries).
	MigrateAgent Strategy = iota + 1
	// ShipEntries sends the resource-compensation-entry list (Figure 5b).
	ShipEntries
	// RPC invokes each compensating operation in its own round trip.
	RPC
)

// String returns the strategy name.
func (s Strategy) String() string {
	switch s {
	case MigrateAgent:
		return "migrate-agent"
	case ShipEntries:
		return "ship-entries"
	case RPC:
		return "rpc"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Link models the network between the agent node and the resource node.
type Link struct {
	// Latency is the one-way message latency.
	Latency time.Duration
	// ThroughputBps is the usable throughput in bytes per second.
	ThroughputBps float64
}

// transfer returns the time to move the given payload with the given
// number of request/response round trips.
func (l Link) transfer(bytes int, roundTrips int) time.Duration {
	if l.ThroughputBps <= 0 {
		return time.Duration(roundTrips) * 2 * l.Latency
	}
	wire := time.Duration(float64(bytes) / l.ThroughputBps * float64(time.Second))
	return time.Duration(roundTrips)*2*l.Latency + wire
}

// Step describes one step's compensation workload for the decision.
type Step struct {
	// AgentBytes is the encoded agent container size (incl. log).
	AgentBytes int
	// EntryBytes is the encoded size of the step's resource
	// compensation entries.
	EntryBytes int
	// Ops is the number of compensating operations in the step.
	Ops int
	// HasMixed marks a step with a mixed compensation entry: the agent
	// must be present, only MigrateAgent is legal (§4.4.1).
	HasMixed bool
}

// Cost returns the modelled completion time of strategy s for the step.
func Cost(s Strategy, st Step, link Link) time.Duration {
	switch s {
	case MigrateAgent:
		// Hand-off there (prepare/ack + commit ≈ 2 round trips carrying
		// the container) and back.
		oneWay := link.transfer(st.AgentBytes, 2)
		return 2 * oneWay
	case ShipEntries:
		// exec+ack carrying the entry list, then commit+ack (Figure 5b).
		return link.transfer(st.EntryBytes, 2)
	case RPC:
		// One round trip per operation, parameters spread across them,
		// plus the branch commit.
		perOp := st.EntryBytes
		if st.Ops > 0 {
			perOp = st.EntryBytes / st.Ops
		}
		var total time.Duration
		for i := 0; i < st.Ops; i++ {
			total += link.transfer(perOp, 1)
		}
		return total + link.transfer(0, 1)
	default:
		return 0
	}
}

// Pick returns the cheapest legal strategy for the step and its modelled
// cost. Mixed steps always migrate (the paper's rule).
func Pick(st Step, link Link) (Strategy, time.Duration) {
	if st.HasMixed {
		return MigrateAgent, Cost(MigrateAgent, st, link)
	}
	best, bestCost := MigrateAgent, Cost(MigrateAgent, st, link)
	for _, s := range []Strategy{ShipEntries, RPC} {
		if c := Cost(s, st, link); c < bestCost {
			best, bestCost = s, c
		}
	}
	return best, bestCost
}

// CrossoverAgentBytes returns the agent size above which ShipEntries beats
// MigrateAgent for the given entry size (the break-even the paper's
// optimization banks on). It solves Cost(Migrate)=Cost(Ship) for
// AgentBytes; below the returned size migrating is no worse.
func CrossoverAgentBytes(entryBytes int, link Link) int {
	if link.ThroughputBps <= 0 {
		return 0 // latency-only model: shipping always wins (2 vs 8 L)
	}
	// 2*(4L + A/B) = 4L + E/B  =>  A = (E - 4*L*B)/2
	lb := link.Latency.Seconds() * link.ThroughputBps
	a := (float64(entryBytes) - 4*lb) / 2
	if a < 0 {
		return 0
	}
	return int(a)
}
