// Package chaos is a deterministic, seed-driven fault-injection harness
// for the agent system. A seed expands into a Schedule — a timed sequence
// of node crashes/recoveries, link partitions/heals, probabilistic message
// faults (drop, duplicate, reorder) and latency spikes — which Run
// executes against a multi-node cluster while a rollback-heavy workload
// is in flight, then checks the §4.3 global invariants: exactly-once step
// execution, per-agent FIFO order, compensation of every rolled-back
// effect, empty input queues, and (for durable engines) stores that
// reopen cleanly through their real recovery path.
//
// The seed-replay contract: the same seed with the same Options always
// expands to the identical Schedule, and the network's per-message fault
// RNG is seeded from it too, so replays face the same fault windows with
// statistically identical fault intensity. Exact per-message drop/dup
// decisions still depend on goroutine timing (which message reaches the
// RNG first), so a racy violation may take a few replays to re-fire —
// the schedule it fires under is identical every time:
//
//	go test ./internal/chaos -run 'TestChaos$' -chaos-seed=<N> \
//	    -chaos-store=<engine> -chaos-workers=<W>
package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"repro/internal/network"
)

// Op is one kind of schedule event.
type Op int

const (
	// OpCrash stops a node abruptly (volatile state lost; with a durable
	// engine the store handle is closed too, so OpRecover reopens it
	// through real crash recovery).
	OpCrash Op = iota
	// OpRecover boots a fresh runtime on the crashed node's store.
	OpRecover
	// OpPartition cuts the link between two nodes.
	OpPartition
	// OpHeal restores a cut link.
	OpHeal
	// OpFaults installs probabilistic message faults on a link.
	OpFaults
	// OpClearFaults removes the faults installed on a link.
	OpClearFaults
	// OpJoin boots an additional node mid-run (membership churn): it
	// announces itself, and every node's rebalancer migrates its ring
	// share of live agents over — while the surrounding crash/partition
	// windows keep firing.
	OpJoin
	// OpLeave drains a previously joined node back out: Left status
	// floods, its agents migrate to the new owners, then it detaches.
	OpLeave
	// OpKillPermanent kills a node *with its disk* — the permanent
	// failure class the paper's own recovery excludes. The cluster
	// promotes the most caught-up surviving replica of the node's shard
	// and reboots the identity on it (cluster.KillPermanent); requires a
	// run with replication (Options.Repl) and quorum acks. The executor
	// waits for the replication factor to be restored before the next
	// event, so a schedule may contain several kills.
	OpKillPermanent
)

func (o Op) String() string {
	switch o {
	case OpCrash:
		return "crash"
	case OpRecover:
		return "recover"
	case OpPartition:
		return "partition"
	case OpHeal:
		return "heal"
	case OpFaults:
		return "faults"
	case OpClearFaults:
		return "clear-faults"
	case OpJoin:
		return "join"
	case OpLeave:
		return "leave"
	case OpKillPermanent:
		return "kill-permanent"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// Event is one timed fault action. At is the offset from workload start.
type Event struct {
	At     time.Duration
	Op     Op
	Node   string             // OpCrash / OpRecover
	A, B   string             // link events
	Faults network.LinkFaults // OpFaults
}

func (e Event) String() string {
	switch e.Op {
	case OpCrash, OpRecover, OpJoin, OpLeave, OpKillPermanent:
		return fmt.Sprintf("t=%-8s %-12s %s", e.At, e.Op, e.Node)
	case OpFaults:
		return fmt.Sprintf("t=%-8s %-12s %s<->%s drop=%.2f dup=%.2f reorder=%.2f delay=%s spike=%s",
			e.At, e.Op, e.A, e.B, e.Faults.Drop, e.Faults.Duplicate, e.Faults.Reorder,
			e.Faults.Delay, e.Faults.Extra)
	default:
		return fmt.Sprintf("t=%-8s %-12s %s<->%s", e.At, e.Op, e.A, e.B)
	}
}

// Schedule is the fully expanded fault plan of one seed.
type Schedule struct {
	Seed   int64
	Nodes  []string
	Events []Event // sorted by At
}

// Counts reports how many crash, partition and message-fault windows the
// schedule contains.
func (s *Schedule) Counts() (crashes, partitions, faultWindows int) {
	for _, e := range s.Events {
		switch e.Op {
		case OpCrash:
			crashes++
		case OpPartition:
			partitions++
		case OpFaults:
			faultWindows++
		}
	}
	return
}

func (s *Schedule) String() string {
	var b strings.Builder
	crashes, parts, faults := s.Counts()
	joins, kills := 0, 0
	for _, e := range s.Events {
		switch e.Op {
		case OpJoin:
			joins++
		case OpKillPermanent:
			kills++
		}
	}
	fmt.Fprintf(&b, "chaos schedule seed=%d nodes=%v (%d crashes, %d partitions, %d fault windows, %d joins, %d kills)\n",
		s.Seed, s.Nodes, crashes, parts, faults, joins, kills)
	for _, e := range s.Events {
		fmt.Fprintf(&b, "  %s\n", e)
	}
	return b.String()
}

// GenConfig bounds the schedule generator. The zero value of every field
// picks a sensible default.
type GenConfig struct {
	Nodes   []string      // cluster node names (required)
	Horizon time.Duration // window in which fault windows open (default 1.2s)
	Faults  int           // number of fault windows to draw (default 6)

	MinHold time.Duration // minimum fault-window length (default 30ms)
	MaxHold time.Duration // maximum fault-window length (default 250ms)

	MaxDrop      float64       // drop-probability cap (default 0.25)
	MaxDuplicate float64       // duplicate-probability cap (default 0.25)
	MaxReorder   float64       // reorder-probability cap (default 0.25)
	MaxSpike     time.Duration // latency-spike cap (default 2ms)

	// Churn is the number of membership-churn draws: each boots
	// JoinNames[i] somewhere in the first half of the horizon (so its
	// rebalancing overlaps the crash/partition windows), and about half
	// the joins are followed by a drain-out leave of the same node later
	// on. Only previously joined nodes ever leave — the original Nodes
	// stay, because the workload's completion notifications and the
	// crash/partition draws target them. Zero disables churn.
	Churn     int
	JoinNames []string // names for joined nodes; must cover Churn draws

	// Kills is the number of permanent-kill draws. Each targets a
	// distinct original node at a time outside that node's crash windows
	// (the kill itself subsumes a crash, and mixing the two on one node
	// would shadow the window's recover event). Zero disables kills.
	// Requires a replicated run; the harness enforces quorum acks.
	Kills int
}

func (g *GenConfig) fillDefaults() {
	if g.Horizon <= 0 {
		g.Horizon = 1200 * time.Millisecond
	}
	if g.Faults <= 0 {
		g.Faults = 6
	}
	if g.MinHold <= 0 {
		g.MinHold = 30 * time.Millisecond
	}
	if g.MaxHold <= g.MinHold {
		g.MaxHold = g.MinHold + 220*time.Millisecond
	}
	if g.MaxDrop <= 0 {
		g.MaxDrop = 0.25
	}
	if g.MaxDuplicate <= 0 {
		g.MaxDuplicate = 0.25
	}
	if g.MaxReorder <= 0 {
		g.MaxReorder = 0.25
	}
	if g.MaxSpike <= 0 {
		g.MaxSpike = 2 * time.Millisecond
	}
}

// interval is a closed fault window used to keep per-target windows
// disjoint, so every opening event has exactly one closing event and no
// event cancels another window early.
type interval struct{ from, to time.Duration }

func overlaps(ivs []interval, iv interval) bool {
	for _, o := range ivs {
		if iv.from <= o.to && o.from <= iv.to {
			return true
		}
	}
	return false
}

// Generate deterministically expands a seed into a schedule: the same
// seed and config always yield the same event sequence.
func Generate(seed int64, cfg GenConfig) Schedule {
	cfg.fillDefaults()
	rng := rand.New(rand.NewSource(seed))
	nodes := append([]string(nil), cfg.Nodes...)
	sort.Strings(nodes)
	if len(nodes) < 2 {
		// Every fault kind needs a pair (or a survivor); nothing to do.
		return Schedule{Seed: seed, Nodes: nodes}
	}

	crashed := make(map[string][]interval)
	linked := make(map[string][]interval) // keyed "a|b", covers partition + fault windows

	var events []Event
	pickWindow := func() (time.Duration, time.Duration) {
		at := time.Duration(rng.Int63n(int64(cfg.Horizon)))
		hold := cfg.MinHold + time.Duration(rng.Int63n(int64(cfg.MaxHold-cfg.MinHold)))
		return at, hold
	}
	pickPair := func() (string, string) {
		i := rng.Intn(len(nodes))
		j := rng.Intn(len(nodes) - 1)
		if j >= i {
			j++
		}
		if nodes[i] > nodes[j] {
			i, j = j, i
		}
		return nodes[i], nodes[j]
	}

	for f := 0; f < cfg.Faults; f++ {
		kind := rng.Intn(10)
		// A few attempts to place the window without overlapping an
		// existing window on the same target; crowded schedules just
		// skip the draw (the schedule stays valid, only lighter).
		for attempt := 0; attempt < 4; attempt++ {
			at, hold := pickWindow()
			iv := interval{at, at + hold}
			switch {
			case kind < 3: // crash + recover
				n := nodes[rng.Intn(len(nodes))]
				if overlaps(crashed[n], iv) {
					continue
				}
				crashed[n] = append(crashed[n], iv)
				events = append(events,
					Event{At: at, Op: OpCrash, Node: n},
					Event{At: at + hold, Op: OpRecover, Node: n})
			case kind < 5: // partition + heal
				a, b := pickPair()
				key := a + "|" + b
				if overlaps(linked[key], iv) {
					continue
				}
				linked[key] = append(linked[key], iv)
				events = append(events,
					Event{At: at, Op: OpPartition, A: a, B: b},
					Event{At: at + hold, Op: OpHeal, A: a, B: b})
			default: // message faults + clear
				a, b := pickPair()
				key := a + "|" + b
				if overlaps(linked[key], iv) {
					continue
				}
				linked[key] = append(linked[key], iv)
				var lf network.LinkFaults
				// Draw one to three fault dimensions for the window.
				for _, dim := range rng.Perm(4)[:1+rng.Intn(3)] {
					switch dim {
					case 0:
						lf.Drop = cfg.MaxDrop * rng.Float64()
					case 1:
						lf.Duplicate = cfg.MaxDuplicate * rng.Float64()
					case 2:
						lf.Reorder = cfg.MaxReorder * rng.Float64()
						lf.Delay = time.Millisecond + time.Duration(rng.Int63n(int64(4*time.Millisecond)))
					case 3:
						lf.Extra = time.Duration(rng.Int63n(int64(cfg.MaxSpike)))
					}
				}
				if !lf.Active() {
					lf.Drop = cfg.MaxDrop * rng.Float64()
				}
				events = append(events,
					Event{At: at, Op: OpFaults, A: a, B: b, Faults: lf},
					Event{At: at + hold, Op: OpClearFaults, A: a, B: b})
			}
			break
		}
	}
	// Permanent kills, after the crash draws so each can dodge its
	// target's crash windows. Targets are distinct original nodes: the
	// identity is reborn synchronously on a promoted replica, so later
	// windows (and the workload) keep addressing it.
	killed := make(map[string]bool)
	for k := 0; k < cfg.Kills && k < len(nodes); k++ {
		for attempt := 0; attempt < 6; attempt++ {
			n := nodes[rng.Intn(len(nodes))]
			at := time.Duration(rng.Int63n(int64(cfg.Horizon)))
			if killed[n] || overlaps(crashed[n], interval{at, at}) {
				continue
			}
			killed[n] = true
			events = append(events, Event{At: at, Op: OpKillPermanent, Node: n})
			break
		}
	}
	for i := 0; i < cfg.Churn && i < len(cfg.JoinNames); i++ {
		name := cfg.JoinNames[i]
		at := time.Duration(rng.Int63n(int64(cfg.Horizon/2) + 1))
		events = append(events, Event{At: at, Op: OpJoin, Node: name})
		if rng.Intn(2) == 0 {
			// Drain back out later in the horizon, leaving room for the
			// join's rebalancing to actually move agents first.
			lo := at + cfg.Horizon/4
			leaveAt := lo + time.Duration(rng.Int63n(int64(cfg.Horizon-lo)+1))
			events = append(events, Event{At: leaveAt, Op: OpLeave, Node: name})
		}
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	return Schedule{Seed: seed, Nodes: nodes, Events: events}
}
