package chaos

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/agent"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/itinerary"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/node"
	"repro/internal/resource"
	"repro/internal/stable"
	_ "repro/internal/stable/wal" // registers the wal engine for stable.Open
	"repro/internal/trace"
	"repro/internal/txn"
)

// Options configures one chaos run. The zero value of every field picks a
// default; only Seed distinguishes runs.
type Options struct {
	Seed    int64
	Nodes   int    // cluster size (default 3)
	Workers int    // scheduler workers per node (default 1)
	Agents  int    // concurrent agents (default 12)
	Steps   int    // work steps per agent before the decide step (default 5)
	Store   string // stable engine per node: mem|file|wal (default mem)
	Dir     string // root for durable engines (temp dir when empty)
	Wire    string // wire format: binary (coalesced fast path, default) | gob (legacy)

	// NoCtlBatch disables cross-transaction control-plane batching
	// (node.Config.NoCtlBatch): per-txn resend timers, unstaged GC
	// writes, no ack piggybacking. Matrix cells run both settings so
	// a batching bug cannot hide behind the default.
	NoCtlBatch bool

	// RollbackRatio is the fraction of agents whose decide step triggers
	// a partial rollback of the whole sub-itinerary. Zero picks the
	// default 1/3; pass a negative value for a workload with no
	// rollbacks at all. Rolled-back agents must compensate every
	// deposit exactly once.
	RollbackRatio float64

	// StepWork is per-step service time spent inside the step
	// transaction (default 12ms). It stretches the workload across the
	// schedule horizon so fault windows actually intersect live traffic
	// — without it the agents finish before the first fault opens.
	StepWork time.Duration

	Gen     GenConfig     // generator bounds; Nodes is filled in
	Timeout time.Duration // workload-completion bound (default 2min)

	// SkipCompensation deliberately registers a no-op compensation for
	// the deposit — an injected protocol violation the invariant checker
	// must catch (used to validate the harness itself).
	SkipCompensation bool

	// Churn draws this many membership join (and ~half as many leave)
	// events into the schedule, so crashes and partitions fire while
	// live agents migrate between nodes. Churn cells run the workload
	// ring-placed ("@ring:<key>" locations instead of fixed node names)
	// and with rollbacks disabled: a compensation targets the concrete
	// node its step ran on, which may have permanently left.
	Churn int

	// Repl is the number of follower replicas of each node's store
	// (stable.ReplSpec.Followers); 0 disables replication. With
	// replication on, every node's engine (mem included) is wrapped in
	// the repl primary and the node hosts replicas of its neighbours'
	// shards.
	Repl int
	// ReplAcks selects the ack mode when Repl > 0: "quorum" (default —
	// Apply blocks until a majority of copies is durable) or "async"
	// (ship-and-return; an unreplicated tail can die with a machine).
	ReplAcks string
	// Kills draws this many permanent-kill events into the schedule:
	// distinct nodes whose disk is destroyed with the machine and whose
	// identity fails over onto the most caught-up surviving replica.
	// Requires Repl > 0 with quorum acks (with async acks a kill
	// genuinely loses acknowledged data — the harness refuses the
	// combination rather than report it as a protocol violation) and is
	// mutually exclusive with Churn.
	Kills int
}

func (o *Options) fillDefaults() {
	if o.Nodes <= 0 {
		o.Nodes = 3
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.Agents <= 0 {
		o.Agents = 12
	}
	if o.Steps <= 0 {
		o.Steps = 5
	}
	if o.Store == "" {
		o.Store = "mem"
	}
	if o.Wire == "" {
		o.Wire = "binary"
	}
	if o.Churn > 0 {
		o.RollbackRatio = -1 // see the Churn comment: no rollbacks under churn
	}
	if o.RollbackRatio == 0 {
		o.RollbackRatio = 1.0 / 3
	}
	if o.RollbackRatio < 0 {
		o.RollbackRatio = 0
	}
	if o.StepWork == 0 {
		o.StepWork = 12 * time.Millisecond
	}
	if o.Timeout <= 0 {
		o.Timeout = 2 * time.Minute
	}
}

// Violation is one detected invariant breach.
type Violation struct {
	Invariant string // short name: conservation, fifo, agent-failed, ...
	Detail    string
}

func (v Violation) String() string { return v.Invariant + ": " + v.Detail }

// Result reports one executed chaos run.
type Result struct {
	Seed       int64
	Schedule   Schedule
	Elapsed    time.Duration
	Completed  int // agents that delivered a result
	RolledBack int // agents that went through a partial rollback
	Violations []Violation
	Metrics    metrics.Snapshot  // counter diff over the run
	Faults     network.LinkStats // injected message-fault totals
	// PostMortem is the causal per-agent timeline dump built from the
	// cluster's trace rings when any invariant was violated: one block
	// per implicated agent with its last transaction, last protocol
	// state edge and timeline tail. Empty on clean runs. It is derived
	// from wall-clock trace timestamps and therefore NOT part of the
	// deterministic replay contract (Schedule and Violations are).
	PostMortem string
}

// Failed reports whether any invariant was violated.
func (r *Result) Failed() bool { return len(r.Violations) > 0 }

// Summary is a one-line digest for logs and tables.
func (r *Result) Summary() string {
	crashes, parts, faults := r.Schedule.Counts()
	kills := 0
	for _, e := range r.Schedule.Events {
		if e.Op == OpKillPermanent {
			kills++
		}
	}
	verdict := "OK"
	if r.Failed() {
		verdict = fmt.Sprintf("VIOLATIONS=%d", len(r.Violations))
	}
	return fmt.Sprintf("seed=%d crashes=%d kills=%d partitions=%d faultwins=%d drops=%d dups=%d reorders=%d agents=%d rolledback=%d elapsed=%s %s",
		r.Seed, crashes, kills, parts, faults, r.Faults.Drops, r.Faults.Dups, r.Faults.Reorders,
		r.Completed, r.RolledBack, r.Elapsed.Round(time.Millisecond), verdict)
}

const (
	chaosDeposit = 1
	sinkAccount  = "sink"
)

func nodeName(i int) string { return fmt.Sprintf("w%d", i) }

func agentID(i int) string { return fmt.Sprintf("chaos%04d", i) }

// storeSpec builds the run's stable.Spec: chaos constructs every store
// through the unified stable.Open path (via cluster.Options.Store), so
// the engines come from the registry — the wal engine via its blank
// import above.
func storeSpec(opts Options, counters *metrics.Counters) (stable.Spec, error) {
	spec := stable.Spec{Engine: opts.Store, Dir: opts.Dir, Counters: counters}
	known := false
	for _, e := range stable.Engines() {
		if e == spec.Engine {
			known = true
		}
	}
	if !known {
		return stable.Spec{}, fmt.Errorf("chaos: unknown store backend %q (want one of %v)", opts.Store, stable.Engines())
	}
	if opts.Repl > 0 {
		acks := stable.AcksQuorum
		switch opts.ReplAcks {
		case "", "quorum":
		case "async":
			acks = 1
		default:
			return stable.Spec{}, fmt.Errorf("chaos: unknown repl ack mode %q (want quorum or async)", opts.ReplAcks)
		}
		spec.Repl = stable.ReplSpec{Followers: opts.Repl, Acks: acks}
	}
	return spec, nil
}

// spreadFlags marks round(ratio*n) of n slots true, spread evenly.
func spreadFlags(n int, ratio float64) []bool {
	out := make([]bool, n)
	k := int(math.Round(ratio * float64(n)))
	if k > n {
		k = n
	}
	if k <= 0 {
		return out
	}
	stride := float64(n) / float64(k)
	for j := 0; j < k; j++ {
		out[int(float64(j)*stride)] = true
	}
	return out
}

// Run executes one seeded chaos run: build the cluster, launch the
// workload, execute the seed's fault schedule concurrently, quiesce, wait
// for every agent, then check the global invariants. An error return
// means the harness itself could not run; protocol misbehaviour is
// reported through Result.Violations instead.
func Run(opts Options) (*Result, error) {
	return run(opts, nil)
}

// RunSchedule executes a hand-crafted (or previously captured) schedule
// instead of expanding one from the seed; everything else matches Run.
func RunSchedule(opts Options, sched Schedule) (*Result, error) {
	return run(opts, &sched)
}

func run(opts Options, fixed *Schedule) (*Result, error) {
	opts.fillDefaults()
	if opts.Store != "mem" && opts.Dir == "" {
		dir, err := os.MkdirTemp("", "chaos-"+opts.Store)
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		opts.Dir = dir
	}

	switch opts.Wire {
	case "binary", "gob":
	default:
		return nil, fmt.Errorf("chaos: unknown wire format %q (want binary or gob)", opts.Wire)
	}
	if opts.Kills > 0 {
		if opts.Churn > 0 {
			return nil, fmt.Errorf("chaos: Kills and Churn cannot be combined (a drain can target an identity mid-failover)")
		}
		if opts.Repl <= 0 {
			return nil, fmt.Errorf("chaos: Kills requires replication (Repl > 0): a permanent kill destroys the disk")
		}
		if opts.ReplAcks == "async" {
			return nil, fmt.Errorf("chaos: async acks cannot survive permanent kills (the unreplicated tail dies with the machine); use quorum")
		}
	}

	counters := &metrics.Counters{}
	spec, err := storeSpec(opts, counters)
	if err != nil {
		return nil, err
	}
	cl := cluster.New(cluster.Options{
		Optimized:   true,
		Latency:     200 * time.Microsecond,
		RetryDelay:  2 * time.Millisecond,
		AckTimeout:  150 * time.Millisecond,
		MaxAttempts: 5000,
		Workers:     opts.Workers,
		WireGob:     opts.Wire == "gob",
		NoCtlBatch:  opts.NoCtlBatch,
		Counters:    counters,
		Store:       spec,      // durable engines run real recovery on crash
		FaultSeed:   opts.Seed, // probabilistic faults replay with the seed
		Membership:  opts.Churn > 0,
	})
	names := make([]string, opts.Nodes)
	for i := range names {
		names[i] = nodeName(i)
		bank := func(store stable.Store) (resource.Resource, error) {
			return resource.NewBank(store, "bank", true)
		}
		if err := cl.AddNode(names[i], node.ResourceFactory(bank)); err != nil {
			return nil, err
		}
	}
	if err := registerWorkload(cl, opts); err != nil {
		return nil, err
	}
	if err := cl.Start(); err != nil {
		return nil, err
	}
	defer cl.Close()
	for _, n := range names {
		if err := openSink(cl, n); err != nil {
			return nil, err
		}
	}

	sched := Schedule{}
	if fixed != nil {
		sched = *fixed
	} else {
		sched = Generate(opts.Seed, genConfig(opts, names))
	}
	res := &Result{Seed: opts.Seed, Schedule: sched}

	rollback := spreadFlags(opts.Agents, opts.RollbackRatio)
	chans := make([]<-chan cluster.Result, opts.Agents)
	before := counters.Snapshot()
	start := time.Now()
	for i := 0; i < opts.Agents; i++ {
		ch, err := launchAgent(cl, i, rollback[i], opts)
		if err != nil {
			return nil, err
		}
		chans[i] = ch
	}

	execDone := make(chan error, 1)
	go func() { execDone <- execute(cl, sched, start) }()

	deadline := time.NewTimer(opts.Timeout)
	defer deadline.Stop()
	results := make([]cluster.Result, opts.Agents)
	got := make([]bool, opts.Agents)
	timedOut := false
	for i, ch := range chans {
		if timedOut {
			select { // non-blocking: pick up agents that did finish
			case r := <-ch:
				results[i], got[i] = r, true
				res.Completed++
			default:
			}
			continue
		}
	wait:
		select {
		case r := <-ch:
			results[i], got[i] = r, true
			res.Completed++
		case err := <-execDone:
			// A schedule step itself failed (e.g. a node would not
			// recover): fail fast with the real cause instead of
			// letting the workload run into the timeout.
			if err != nil {
				return nil, err
			}
			execDone = nil
			goto wait
		case <-deadline.C:
			timedOut = true
		}
	}
	var stuck []string
	if timedOut {
		for i, ok := range got {
			if !ok {
				stuck = append(stuck, agentID(i))
			}
		}
		res.Violations = append(res.Violations, Violation{
			Invariant: "progress",
			Detail: fmt.Sprintf("agents %v never completed within %s (crashes and partitions were all healed)",
				stuck, opts.Timeout),
		})
	}
	res.Elapsed = time.Since(start)
	if execDone != nil {
		if err := <-execDone; err != nil {
			return nil, err
		}
	}
	// Recovered nodes load their resources in the background; the checks
	// below read them, so wait for every node to finish recovery.
	if err := cl.AwaitReady(30 * time.Second); err != nil {
		return nil, err
	}

	checkAgents(res, results, got, rollback, opts)
	if err := checkConservation(res, cl, rollback, opts); err != nil {
		return nil, err
	}
	// cl.NodeNames(), not names: joined churn nodes (and drained-out
	// leavers, whose queues must have emptied) are checked too.
	if err := checkQueuesEmpty(res, cl, cl.NodeNames()); err != nil {
		return nil, err
	}
	res.Metrics = counters.Snapshot().Sub(before)
	res.Faults = cl.LinkFaultStats()
	cl.Close()
	if err := checkStoresReopen(res, cl, names); err != nil {
		return nil, err
	}
	sortViolations(res.Violations)
	if res.Failed() {
		// A progress violation focuses the dump on the stuck agents;
		// any other violation dumps every agent with trace records.
		res.PostMortem = buildPostMortem(cl, res, stuck)
		writeTimelineArtifact(opts, res)
	}
	return res, nil
}

// buildPostMortem renders the causal per-agent timelines from the
// cluster's trace rings (which outlive cluster shutdown). agents nil
// means every agent that left records.
func buildPostMortem(cl *cluster.Cluster, res *Result, agents []string) string {
	rs := cl.TraceRecords()
	if len(rs) == 0 {
		return ""
	}
	pms := trace.BuildPostMortem(rs, agents)
	if len(pms) == 0 {
		return ""
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "causal post-mortem: seed %d, %d violation(s)\n", res.Seed, len(res.Violations))
	for _, v := range res.Violations {
		sb.WriteString("  " + v.String() + "\n")
	}
	sb.WriteString("\n")
	trace.WritePostMortem(&sb, pms)
	return sb.String()
}

// writeTimelineArtifact saves the post-mortem next to the schedule
// artifact CI already collects (CHAOS_ARTIFACT_DIR), so a failing seed's
// causal timelines outlive the job log. Best-effort: artifact I/O must
// never mask the violation itself.
func writeTimelineArtifact(opts Options, res *Result) {
	dir := os.Getenv("CHAOS_ARTIFACT_DIR")
	if dir == "" || res.PostMortem == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	name := filepath.Join(dir, fmt.Sprintf("seed-%d-%s-w%d-timeline.txt", opts.Seed, opts.Store, opts.Workers))
	_ = os.WriteFile(name, []byte(res.PostMortem), 0o644)
}

// genConfig threads the run's node names into the generator bounds.
func genConfig(opts Options, names []string) GenConfig {
	g := opts.Gen
	g.Nodes = names
	g.Kills = opts.Kills
	if opts.Churn > 0 {
		g.Churn = opts.Churn
		for i := 0; i < opts.Churn; i++ {
			g.JoinNames = append(g.JoinNames, joinName(i))
		}
	}
	return g
}

func joinName(i int) string { return fmt.Sprintf("j%d", i) }

// openSink opens the shared sink account on one node's bank.
func openSink(cl *cluster.Cluster, name string) error {
	nd, ok := cl.Node(name)
	if !ok {
		return fmt.Errorf("chaos: no node %q", name)
	}
	return cl.WithTx(name, func(tx *txn.Tx, _ *node.Node) error {
		r, _ := nd.Resource("bank")
		return r.(*resource.Bank).OpenAccount(tx, sinkAccount, 0)
	})
}

// registerWorkload registers the chaos steps and compensations: every
// work step deposits into the node-local bank and logs the withdrawing
// compensation; step 0 also logs the agent-side rollback marker. The
// decide step triggers a partial rollback once for flagged agents.
func registerWorkload(cl *cluster.Cluster, opts Options) error {
	reg := cl.Registry()
	if err := reg.RegisterStep("chaos.work", func(ctx agent.StepContext) error {
		// Per-agent FIFO trace: committed step order within the pass.
		var trace []int
		if _, err := ctx.SRO().Get("trace", &trace); err != nil {
			return err
		}
		trace = append(trace, ctx.StepSeq())
		if err := ctx.SRO().Set("trace", trace); err != nil {
			return err
		}
		// Post-rollback pass: the compensation marker tells the agent the
		// first pass was undone; it reacts by not re-buying (§3.2), so a
		// rolled-back agent's net deposit must be exactly zero.
		if noted, err := ctx.WRO().Has("note"); err != nil {
			return err
		} else if noted {
			return nil
		}
		r, ok := ctx.Resource("bank")
		if !ok {
			return fmt.Errorf("chaos.work: no bank on %s", ctx.NodeName())
		}
		if err := r.(*resource.Bank).Deposit(ctx.Tx(), sinkAccount, chaosDeposit); err != nil {
			return err
		}
		if opts.StepWork > 0 {
			time.Sleep(opts.StepWork) // service time, inside the transaction
		}
		ctx.LogComp(core.OpResource, "chaos.comp", core.NewParams().
			Set("bank", "bank").Set("amt", int64(chaosDeposit)))
		if ctx.StepSeq() == 0 {
			// Rollback marker: the compensation records in the WRO that
			// the first pass was undone (survives the rollback, §3.2).
			ctx.LogComp(core.OpAgent, "chaos.mark", core.NewParams())
		}
		return nil
	}); err != nil {
		return err
	}
	if err := reg.RegisterStep("chaos.decide", func(ctx agent.StepContext) error {
		var rb bool
		if _, err := ctx.WRO().Get("rb", &rb); err != nil {
			return err
		}
		if rb {
			if noted, err := ctx.WRO().Has("note"); err != nil {
				return err
			} else if !noted {
				return ctx.RollbackCurrentSub()
			}
		}
		return ctx.SRO().Set("done", true)
	}); err != nil {
		return err
	}
	if err := reg.RegisterComp("chaos.comp", func(ctx agent.CompContext) error {
		if opts.SkipCompensation {
			return nil // injected violation: the deposit is never undone
		}
		var bank string
		if err := ctx.Params().Get("bank", &bank); err != nil {
			return err
		}
		var amt int64
		if err := ctx.Params().Get("amt", &amt); err != nil {
			return err
		}
		r, err := ctx.Resource(bank)
		if err != nil {
			return err
		}
		return r.(*resource.Bank).Withdraw(ctx.Tx(), sinkAccount, amt)
	}); err != nil {
		return err
	}
	return reg.RegisterComp("chaos.mark", func(ctx agent.CompContext) error {
		wro, err := ctx.WRO()
		if err != nil {
			return err
		}
		return wro.Set("note", true)
	})
}

// launchAgent builds and launches agent i: Steps work steps round-robin
// over the nodes plus a final decide step back at its start node.
func launchAgent(cl *cluster.Cluster, i int, rollback bool, opts Options) (<-chan cluster.Result, error) {
	id := agentID(i)
	start := i % opts.Nodes
	sub := &itinerary.Sub{ID: "job-" + id}
	for s := 0; s < opts.Steps; s++ {
		loc := nodeName((start + s) % opts.Nodes)
		if opts.Churn > 0 {
			// Ring-placed: churn can move the step to whichever node owns
			// the key when the hand-off happens.
			loc = fmt.Sprintf("%s:%s-s%d", node.RingLoc, id, s)
		}
		sub.Entries = append(sub.Entries, itinerary.Step{Method: "chaos.work", Loc: loc})
	}
	decideLoc := nodeName(start)
	if opts.Churn > 0 {
		decideLoc = node.RingLoc
	}
	sub.Entries = append(sub.Entries, itinerary.Step{Method: "chaos.decide", Loc: decideLoc})
	it, err := itinerary.New(sub)
	if err != nil {
		return nil, err
	}
	a, entered, err := agent.New(id, "", it)
	if err != nil {
		return nil, err
	}
	if err := a.WRO.Set("rb", rollback); err != nil {
		return nil, err
	}
	return cl.Launch(a, entered, nodeName(start))
}

// execute applies the schedule against the cluster in real time, then
// quiesces: every crashed node is recovered, every partition healed and
// every fault cleared, so the workload is guaranteed to finish (§4.3
// assumes crashes and network failures are temporary). Leaves run
// asynchronously: a drain can only finish once the nodes holding the new
// owners are reachable again, which may require recover/heal events that
// come later in the schedule.
func execute(cl *cluster.Cluster, sched Schedule, start time.Time) error {
	var leaves sync.WaitGroup
	leaveErr := make(chan error, len(sched.Events))
	for _, ev := range sched.Events {
		if d := time.Until(start.Add(ev.At)); d > 0 {
			time.Sleep(d)
		}
		switch ev.Op {
		case OpCrash:
			_ = cl.Crash(ev.Node) // already crashed: the window was skipped
		case OpRecover:
			if err := recoverNode(cl, ev.Node); err != nil {
				return err
			}
		case OpPartition:
			cl.SetLink(ev.A, ev.B, false)
		case OpHeal:
			cl.SetLink(ev.A, ev.B, true)
		case OpFaults:
			cl.SetLinkFaults(ev.A, ev.B, ev.Faults)
		case OpClearFaults:
			cl.SetLinkFaults(ev.A, ev.B, network.LinkFaults{})
		case OpJoin:
			if err := joinNode(cl, ev.Node); err != nil {
				return err
			}
		case OpLeave:
			leaves.Add(1)
			go func(name string) {
				defer leaves.Done()
				if err := cl.Leave(name, time.Minute); err != nil {
					leaveErr <- fmt.Errorf("chaos: leave %s: %w", name, err)
				}
			}(ev.Node)
		case OpKillPermanent:
			// The most severe fault subsumes the milder network chaos:
			// end every open partition/fault window early, because this
			// executor must block until the replication factor is back
			// (the scheduled heal/clear events it would starve become
			// harmless no-ops).
			cl.HealAllLinks()
			cl.ClearLinkFaults()
			if err := cl.KillPermanent(ev.Node); err != nil {
				return fmt.Errorf("chaos: kill-permanent %s: %w", ev.Node, err)
			}
			// Quorum tolerates one lost copy at a time: the survivors
			// must finish re-replicating before the schedule may take
			// the next machine down.
			if err := cl.AwaitReplication(30 * time.Second); err != nil {
				return err
			}
		}
	}
	for _, n := range cl.CrashedNodes() {
		if err := recoverNode(cl, n); err != nil {
			return err
		}
	}
	cl.HealAllLinks()
	cl.ClearLinkFaults()
	leaves.Wait()
	select {
	case err := <-leaveErr:
		return err
	default:
		return nil
	}
}

// joinNode boots one churn node with the workload's bank and sink.
func joinNode(cl *cluster.Cluster, name string) error {
	bank := func(store stable.Store) (resource.Resource, error) {
		return resource.NewBank(store, "bank", true)
	}
	if err := cl.Join(name, node.ResourceFactory(bank)); err != nil {
		return err
	}
	return openSink(cl, name)
}

// recoverNode recovers one crashed node, tolerating "not crashed".
func recoverNode(cl *cluster.Cluster, name string) error {
	if err := cl.Recover(name); err != nil {
		for _, c := range cl.CrashedNodes() {
			if c == name {
				return err // genuinely failed to come back: harness error
			}
		}
	}
	return nil
}

// checkAgents validates per-agent invariants: every agent completed
// without failure, committed its steps in FIFO order exactly once
// (trace == 0..Steps-1 even across a rollback, whose savepoint restore
// rewinds both the step counter and the trace), and took the rollback
// path it was assigned.
func checkAgents(res *Result, results []cluster.Result, got []bool, rollback []bool, opts Options) {
	want := make([]int, opts.Steps)
	for i := range want {
		want[i] = i
	}
	for i, r := range results {
		if !got[i] {
			continue // already a progress violation
		}
		if r.Failed {
			res.Violations = append(res.Violations, Violation{
				Invariant: "agent-failed",
				Detail:    fmt.Sprintf("agent %s: %s", r.AgentID, r.Reason),
			})
			continue
		}
		if r.Agent == nil {
			res.Violations = append(res.Violations, Violation{
				Invariant: "agent-lost",
				Detail:    fmt.Sprintf("agent %d: result without agent state", i),
			})
			continue
		}
		var trace []int
		if _, err := r.Agent.SRO.Get("trace", &trace); err != nil {
			res.Violations = append(res.Violations, Violation{Invariant: "fifo", Detail: err.Error()})
			continue
		}
		if !equalInts(trace, want) {
			res.Violations = append(res.Violations, Violation{
				Invariant: "fifo",
				Detail:    fmt.Sprintf("agent %s: committed step trace %v, want %v", r.AgentID, trace, want),
			})
		}
		noted, err := r.Agent.WRO.Has("note")
		if err != nil {
			res.Violations = append(res.Violations, Violation{Invariant: "rollback", Detail: err.Error()})
			continue
		}
		if noted != rollback[i] {
			res.Violations = append(res.Violations, Violation{
				Invariant: "rollback",
				Detail:    fmt.Sprintf("agent %s: rollback marker=%v, assigned rollback=%v", r.AgentID, noted, rollback[i]),
			})
		}
		if noted {
			res.RolledBack++
		}
		var done bool
		if err := r.Agent.SRO.MustGet("done", &done); err != nil || !done {
			res.Violations = append(res.Violations, Violation{
				Invariant: "completion",
				Detail:    fmt.Sprintf("agent %s: done flag missing (%v)", r.AgentID, err),
			})
		}
	}
}

// checkConservation sums the sink accounts: agents that completed without
// a rollback contribute Steps deposits, rolled-back agents exactly zero —
// any drift means a step executed twice, a compensation was lost, or a
// compensation ran twice.
func checkConservation(res *Result, cl *cluster.Cluster, rollback []bool, opts Options) error {
	var total int64
	for _, n := range cl.NodeNames() {
		nd, ok := cl.Node(n)
		if !ok {
			return fmt.Errorf("chaos: node %s missing after quiesce", n)
		}
		if err := cl.WithTx(n, func(tx *txn.Tx, _ *node.Node) error {
			r, _ := nd.Resource("bank")
			bal, err := r.(*resource.Bank).Balance(tx, sinkAccount)
			if err != nil {
				return err
			}
			total += bal
			return nil
		}); err != nil {
			return err
		}
	}
	straight := 0
	for _, rb := range rollback {
		if !rb {
			straight++
		}
	}
	want := int64(straight * opts.Steps * chaosDeposit)
	if total != want {
		res.Violations = append(res.Violations, Violation{
			Invariant: "conservation",
			Detail: fmt.Sprintf("sink total %d, want %d (%d straight-through agents × %d steps; drift means a lost or duplicated step/compensation)",
				total, want, straight, opts.Steps),
		})
	}
	return nil
}

// checkQueuesEmpty asserts no agent container is stranded in any input
// queue after every result was delivered.
func checkQueuesEmpty(res *Result, cl *cluster.Cluster, names []string) error {
	for _, n := range names {
		nd, ok := cl.Node(n)
		if !ok {
			return fmt.Errorf("chaos: node %s missing after quiesce", n)
		}
		depth, err := nd.Queue().Len()
		if err != nil {
			return err
		}
		if depth != 0 {
			res.Violations = append(res.Violations, Violation{
				Invariant: "queue-drained",
				Detail:    fmt.Sprintf("node %s input queue holds %d entries after completion", n, depth),
			})
		}
	}
	return nil
}

// checkStoresReopen reopens every durable store after the cluster shut
// down — the cold-restart conformance check: the engine must recover
// (checkpoint load + tail replay for wal), and the recovered queue must
// be empty. The spec comes from the cluster because a permanent-kill
// failover re-homes a node's primary onto the promoted replica's
// directory, not the node's original one.
func checkStoresReopen(res *Result, cl *cluster.Cluster, names []string) error {
	for _, n := range names {
		spec, ok := cl.NodeStoreSpec(n)
		if !ok {
			return nil // volatile engine: nothing to reopen
		}
		st, err := stable.Open(spec)
		if err != nil {
			res.Violations = append(res.Violations, Violation{
				Invariant: "store-recovery",
				Detail:    fmt.Sprintf("node %s: reopen after shutdown failed: %v", n, err),
			})
			continue
		}
		q := stable.NewQueue(st, "q/")
		depth, err := q.Len()
		if err != nil {
			res.Violations = append(res.Violations, Violation{
				Invariant: "store-recovery",
				Detail:    fmt.Sprintf("node %s: queue scan on reopened store failed: %v", n, err),
			})
		} else if depth != 0 {
			res.Violations = append(res.Violations, Violation{
				Invariant: "store-recovery",
				Detail:    fmt.Sprintf("node %s: reopened store holds %d queue entries", n, depth),
			})
		}
		_ = stable.Close(st)
	}
	return nil
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sortViolations orders violations by invariant then detail, for stable
// output.
func sortViolations(v []Violation) {
	sort.Slice(v, func(i, j int) bool {
		if v[i].Invariant != v[j].Invariant {
			return v[i].Invariant < v[j].Invariant
		}
		return v[i].Detail < v[j].Detail
	})
}
