package chaos_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/chaos"
)

// The chaos sweep is driven by flags so CI can fan it out over seed
// ranges × store engines × worker counts, and so any failing seed is
// replayed with one command:
//
//	go test ./internal/chaos -run 'TestChaos$' -chaos-seed=<N> \
//	    -chaos-store=<engine> -chaos-workers=<W>
var (
	chaosSeeds   = flag.Int("chaos-seeds", 3, "number of consecutive seeds to sweep")
	chaosSeed    = flag.Int64("chaos-seed", -1, "replay exactly this seed (prints its schedule)")
	chaosBase    = flag.Int64("chaos-base-seed", 1, "first seed of the sweep")
	chaosStore   = flag.String("chaos-store", "mem", "stable engine per node: mem|file|wal")
	chaosWorkers = flag.Int("chaos-workers", 1, "scheduler workers per node")
	chaosWire    = flag.String("chaos-wire", "binary", "wire format: binary|gob")
	chaosNoCtl   = flag.Bool("chaos-noctlbatch", false, "disable cross-transaction control-plane batching (legacy per-txn timers)")
	chaosChurn   = flag.Int("chaos-churn", 0, "membership churn draws per seed (joins + leaves; 0 disables)")
	chaosRepl    = flag.Int("chaos-repl", 0, "follower replicas per shard (0 disables replication)")
	chaosAcks    = flag.String("chaos-repl-acks", "quorum", "replication ack mode: quorum|async")
	chaosKill    = flag.Int("chaos-kill", 0, "permanent-kill draws per seed (requires -chaos-repl with quorum acks)")
)

func chaosOptions(seed int64) chaos.Options {
	return chaos.Options{
		Seed:       seed,
		Store:      *chaosStore,
		Workers:    *chaosWorkers,
		Wire:       *chaosWire,
		NoCtlBatch: *chaosNoCtl,
		Churn:      *chaosChurn,
		Repl:       *chaosRepl,
		ReplAcks:   *chaosAcks,
		Kills:      *chaosKill,
	}
}

// runSeed executes one seed and fails the test on any invariant
// violation, printing the exact schedule and the one-line repro command.
func runSeed(t *testing.T, seed int64, verbose bool) {
	t.Helper()
	res, err := chaos.Run(chaosOptions(seed))
	if err != nil {
		t.Fatalf("seed %d: harness error: %v", seed, err)
	}
	if verbose {
		t.Logf("\n%s", res.Schedule.String())
	}
	t.Logf("%s", res.Summary())
	if !res.Failed() {
		return
	}
	report := fmt.Sprintf("chaos seed %d (store=%s workers=%d wire=%s) violated %d invariant(s):\n",
		seed, *chaosStore, *chaosWorkers, *chaosWire, len(res.Violations))
	for _, v := range res.Violations {
		report += "  " + v.String() + "\n"
	}
	report += "\n" + res.Schedule.String()
	repro := fmt.Sprintf("go test ./internal/chaos -run 'TestChaos$' -chaos-seed=%d -chaos-store=%s -chaos-workers=%d -chaos-wire=%s",
		seed, *chaosStore, *chaosWorkers, *chaosWire)
	if *chaosRepl > 0 {
		repro += fmt.Sprintf(" -chaos-repl=%d -chaos-repl-acks=%s -chaos-kill=%d", *chaosRepl, *chaosAcks, *chaosKill)
	}
	report += fmt.Sprintf("\nreproduce with:\n  %s\n", repro)
	writeArtifact(t, seed, report)
	t.Errorf("%s", report)
}

// writeArtifact saves the failure report where CI uploads artifacts from
// (CHAOS_ARTIFACT_DIR), so failing seeds + schedules outlive the job log.
func writeArtifact(t *testing.T, seed int64, report string) {
	t.Helper()
	dir := os.Getenv("CHAOS_ARTIFACT_DIR")
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("chaos artifact dir: %v", err)
		return
	}
	name := filepath.Join(dir, fmt.Sprintf("seed-%d-%s-w%d.txt", seed, *chaosStore, *chaosWorkers))
	if err := os.WriteFile(name, []byte(report), 0o644); err != nil {
		t.Logf("chaos artifact write: %v", err)
	}
}

// TestChaos sweeps -chaos-seeds consecutive seeds (or replays the one
// seed given with -chaos-seed) on the engine × worker combination from
// the flags, checking every global invariant per seed.
func TestChaos(t *testing.T) {
	if *chaosSeed >= 0 {
		runSeed(t, *chaosSeed, true)
		return
	}
	n := *chaosSeeds
	if testing.Short() && n > 2 {
		n = 2
	}
	for seed := *chaosBase; seed < *chaosBase+int64(n); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runSeed(t, seed, false)
		})
	}
}

// TestChaosScheduleDeterministic: the same seed must expand to the same
// schedule, byte for byte — the replay contract.
func TestChaosScheduleDeterministic(t *testing.T) {
	cfg := chaos.GenConfig{Nodes: []string{"w0", "w1", "w2"}}
	a := chaos.Generate(77, cfg)
	b := chaos.Generate(77, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed expanded differently:\n%s\nvs\n%s", a.String(), b.String())
	}
	if len(a.Events) == 0 {
		t.Fatal("seed 77 generated an empty schedule")
	}
	if a.String() != b.String() {
		t.Error("schedule rendering diverged")
	}
	c := chaos.Generate(78, cfg)
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Error("different seeds produced identical schedules")
	}
	// Every opening event has its closing event.
	open := map[string]int{}
	for _, e := range a.Events {
		switch e.Op {
		case chaos.OpCrash:
			open["c"+e.Node]++
		case chaos.OpRecover:
			open["c"+e.Node]--
		case chaos.OpPartition:
			open["p"+e.A+e.B]++
		case chaos.OpHeal:
			open["p"+e.A+e.B]--
		case chaos.OpFaults:
			open["f"+e.A+e.B]++
		case chaos.OpClearFaults:
			open["f"+e.A+e.B]--
		}
	}
	for k, n := range open {
		if n != 0 {
			t.Errorf("unbalanced window %q: %d", k, n)
		}
	}
}

// TestChaosDetectsInjectedViolation: a deliberately skipped compensation
// must surface as a conservation violation, the run must produce a
// causal per-agent post-mortem (written to CHAOS_ARTIFACT_DIR), and the
// failing seed must reproduce the identical schedule and verdict — the
// property the CI repro command relies on.
func TestChaosDetectsInjectedViolation(t *testing.T) {
	artifacts := t.TempDir()
	t.Setenv("CHAOS_ARTIFACT_DIR", artifacts)
	opts := chaos.Options{
		Seed:             9,
		Agents:           4,
		Steps:            3,
		RollbackRatio:    1.0, // every agent rolls back, so every deposit must be compensated
		SkipCompensation: true,
		Gen:              chaos.GenConfig{Faults: 2, Horizon: 300 * time.Millisecond},
		Timeout:          time.Minute,
	}
	first, err := chaos.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !first.Failed() {
		t.Fatal("skipped compensation went undetected")
	}
	found := false
	for _, v := range first.Violations {
		if v.Invariant == "conservation" {
			found = true
		}
	}
	if !found {
		t.Errorf("no conservation violation among %v", first.Violations)
	}

	// The violated run must carry a causal post-mortem naming, for each
	// implicated agent, its last transaction and last protocol state
	// edge, and the same text must land as a timeline artifact.
	if first.PostMortem == "" {
		t.Fatal("violated run produced no post-mortem")
	}
	// Transaction IDs are "<node>#<seq>", so "last txn w" pins an
	// actual offending txn ID, not just the label.
	for _, want := range []string{"agent chaos0000", "last txn w", "#", "last edge", "→"} {
		if !strings.Contains(first.PostMortem, want) {
			t.Errorf("post-mortem missing %q:\n%s", want, first.PostMortem)
		}
	}
	data, err := os.ReadFile(filepath.Join(artifacts, "seed-9-mem-w1-timeline.txt"))
	if err != nil {
		t.Fatalf("timeline artifact not written: %v", err)
	}
	if string(data) != first.PostMortem {
		t.Error("timeline artifact differs from Result.PostMortem")
	}

	second, err := chaos.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first.Schedule, second.Schedule) {
		t.Errorf("replay expanded a different schedule:\n%s\nvs\n%s",
			first.Schedule.String(), second.Schedule.String())
	}
	if !second.Failed() {
		t.Error("replay of the failing seed did not reproduce the violation")
	}
}

// TestChaosChurn runs seeds whose schedules include membership churn:
// nodes join (and some drain back out) while crashes, partitions and
// message faults fire, so live agents migrate under fire. Conservation
// and exactly-once must hold across the migrations.
func TestChaosChurn(t *testing.T) {
	for _, seed := range []int64{11, 12} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			res, err := chaos.Run(chaos.Options{
				Seed:    seed,
				Churn:   2,
				Agents:  10,
				Steps:   4,
				Gen:     chaos.GenConfig{Faults: 4, Horizon: 900 * time.Millisecond},
				Timeout: time.Minute,
			})
			if err != nil {
				t.Fatalf("harness error: %v", err)
			}
			joins := 0
			for _, e := range res.Schedule.Events {
				if e.Op == chaos.OpJoin {
					joins++
				}
			}
			if joins == 0 {
				t.Fatalf("churn run drew no joins:\n%s", res.Schedule.String())
			}
			t.Logf("%s migrations=%d aborts=%d refusals=%d",
				res.Summary(), res.Metrics.Migrations, res.Metrics.MigrationAborts, res.Metrics.AdoptionRefusals)
			for _, v := range res.Violations {
				t.Errorf("violation: %s", v)
			}
			if t.Failed() {
				t.Logf("\n%s", res.Schedule.String())
			}
		})
	}
}

// TestChaosKillPermanent runs seeds whose schedules include permanent
// kills — machine death with the disk — on a replicated cluster with
// quorum acks. The killed node's agents must complete on the promoted
// replica with zero lost or duplicated steps; the executor restores the
// replication factor between kills, so a seed may kill several machines.
func TestChaosKillPermanent(t *testing.T) {
	for _, tc := range []struct {
		store string
		seed  int64
	}{
		{"mem", 21}, {"wal", 22},
	} {
		tc := tc
		t.Run(fmt.Sprintf("%s/seed=%d", tc.store, tc.seed), func(t *testing.T) {
			res, err := chaos.Run(chaos.Options{
				Seed:    tc.seed,
				Store:   tc.store,
				Repl:    2,
				Kills:   2,
				Agents:  10,
				Steps:   4,
				Gen:     chaos.GenConfig{Faults: 4, Horizon: 900 * time.Millisecond},
				Timeout: time.Minute,
			})
			if err != nil {
				t.Fatalf("harness error: %v", err)
			}
			kills := 0
			for _, e := range res.Schedule.Events {
				if e.Op == chaos.OpKillPermanent {
					kills++
				}
			}
			if kills == 0 {
				t.Fatalf("kill run drew no kills:\n%s", res.Schedule.String())
			}
			t.Logf("%s", res.Summary())
			for _, v := range res.Violations {
				t.Errorf("violation: %s", v)
			}
			if t.Failed() {
				t.Logf("\n%s", res.Schedule.String())
			}
		})
	}
}

// TestChaosKillRequiresQuorum: the harness must refuse the combinations
// a permanent kill genuinely cannot survive, instead of reporting the
// resulting data loss as a protocol violation.
func TestChaosKillRequiresQuorum(t *testing.T) {
	if _, err := chaos.Run(chaos.Options{Seed: 1, Kills: 1, Repl: 2, ReplAcks: "async"}); err == nil {
		t.Error("async acks + permanent kills was not rejected")
	}
	if _, err := chaos.Run(chaos.Options{Seed: 1, Kills: 1}); err == nil {
		t.Error("permanent kills without replication was not rejected")
	}
	if _, err := chaos.Run(chaos.Options{Seed: 1, Kills: 1, Repl: 2, Churn: 1}); err == nil {
		t.Error("permanent kills + churn was not rejected")
	}
}

// TestChaosDurableEngines runs one seed per durable engine so the store
// reopen path (real crash recovery under ReopenStores) is exercised even
// without the CI matrix.
func TestChaosDurableEngines(t *testing.T) {
	if testing.Short() {
		t.Skip("durable chaos runs")
	}
	for _, store := range []string{"file", "wal"} {
		store := store
		t.Run(store, func(t *testing.T) {
			res, err := chaos.Run(chaos.Options{
				Seed:   3,
				Store:  store,
				Agents: 8,
				Steps:  4,
				Gen:    chaos.GenConfig{Faults: 4, Horizon: 800 * time.Millisecond},
			})
			if err != nil {
				t.Fatalf("harness error: %v", err)
			}
			t.Logf("%s", res.Summary())
			for _, v := range res.Violations {
				t.Errorf("violation: %s", v)
			}
		})
	}
}
