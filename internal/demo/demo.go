// Package demo is the step/compensation library shared by the
// multi-process deployment binaries (cmd/agentnode, cmd/agentctl). Since
// Go has no code mobility, every node process registers this library at
// startup — the stand-in for agent code being available on every node
// (see the substitution note in DESIGN.md).
//
// The library implements the paper's running shopping scenario: withdraw
// digital cash (mixed compensation), buy goods (mixed compensation with a
// refund fee), check a review and, if it is bad and no refund note is
// present, partially roll back the trip.
package demo

import (
	"errors"
	"fmt"

	"repro/internal/agent"
	"repro/internal/core"
	"repro/internal/itinerary"
	"repro/internal/resource"
)

// WalletKey is the WRO key holding the agent's digital cash.
const WalletKey = "wallet"

// Wallet reads the cash wallet from a data space.
func Wallet(sp *agent.Space) (resource.Cash, error) {
	var c resource.Cash
	if _, err := sp.Get(WalletKey, &c); err != nil {
		return nil, err
	}
	return c, nil
}

// Register installs the demo steps and compensations into reg.
func Register(reg *agent.Registry) error {
	regs := []func(*agent.Registry) error{registerSteps, registerComps}
	for _, f := range regs {
		if err := f(reg); err != nil {
			return err
		}
	}
	return nil
}

func registerSteps(reg *agent.Registry) error {
	if err := reg.RegisterStep("demo.getcash", func(ctx agent.StepContext) error {
		r, ok := ctx.Resource("bank")
		if !ok {
			return errors.New("demo.getcash: no bank on " + ctx.NodeName())
		}
		var acct string
		if err := ctx.WRO().MustGet("acct", &acct); err != nil {
			return err
		}
		cash, err := r.(*resource.Bank).IssueCash(ctx.Tx(), acct, "USD", 500)
		if err != nil {
			return err
		}
		if err := ctx.WRO().Set(WalletKey, cash); err != nil {
			return err
		}
		ctx.LogComp(core.OpMixed, "demo.comp.getcash", core.NewParams().Set("acct", acct))
		return nil
	}); err != nil {
		return err
	}
	if err := reg.RegisterStep("demo.buy", func(ctx agent.StepContext) error {
		if noted, err := ctx.WRO().Has("note"); err != nil {
			return err
		} else if noted {
			return ctx.SRO().Set("decision", "skip")
		}
		w, err := Wallet(ctx.WRO())
		if err != nil {
			return err
		}
		r, ok := ctx.Resource("shop")
		if !ok {
			return errors.New("demo.buy: no shop on " + ctx.NodeName())
		}
		shop := r.(*resource.Shop)
		price, err := shop.PriceOf(ctx.Tx(), "book")
		if err != nil {
			return err
		}
		change, err := shop.Buy(ctx.Tx(), "book", 1, w)
		if err != nil {
			return err
		}
		if err := ctx.WRO().Set(WalletKey, change); err != nil {
			return err
		}
		if err := ctx.SRO().Set("decision", "bought"); err != nil {
			return err
		}
		ctx.LogComp(core.OpMixed, "demo.comp.buy", core.NewParams().
			Set("item", "book").Set("qty", 1).Set("paid", price))
		return nil
	}); err != nil {
		return err
	}
	return reg.RegisterStep("demo.check", func(ctx agent.StepContext) error {
		r, ok := ctx.Resource("dir")
		if !ok {
			return errors.New("demo.check: no directory on " + ctx.NodeName())
		}
		review, _, err := r.(*resource.Directory).Lookup(ctx.Tx(), "review/book")
		if err != nil {
			return err
		}
		if err := ctx.SRO().Set("review", review); err != nil {
			return err
		}
		noted, err := ctx.WRO().Has("note")
		if err != nil {
			return err
		}
		if review == "bad" && !noted {
			return ctx.RollbackCurrentSub()
		}
		return ctx.SRO().Set("done", true)
	})
}

func registerComps(reg *agent.Registry) error {
	if err := reg.RegisterComp("demo.comp.getcash", func(ctx agent.CompContext) error {
		var acct string
		if err := ctx.Params().Get("acct", &acct); err != nil {
			return err
		}
		r, err := ctx.Resource("bank")
		if err != nil {
			return err
		}
		wro, err := ctx.WRO()
		if err != nil {
			return err
		}
		w, err := Wallet(wro)
		if err != nil {
			return err
		}
		if err := r.(*resource.Bank).RedeemCash(ctx.Tx(), acct, "USD", w); err != nil {
			return err
		}
		return wro.Set(WalletKey, resource.Cash{})
	}); err != nil {
		return err
	}
	return reg.RegisterComp("demo.comp.buy", func(ctx agent.CompContext) error {
		var item string
		var qty int
		var paid int64
		if err := ctx.Params().Get("item", &item); err != nil {
			return err
		}
		if err := ctx.Params().Get("qty", &qty); err != nil {
			return err
		}
		if err := ctx.Params().Get("paid", &paid); err != nil {
			return err
		}
		r, err := ctx.Resource("shop")
		if err != nil {
			return err
		}
		refund, _, err := r.(*resource.Shop).Refund(ctx.Tx(), item, qty, paid)
		if err != nil {
			return err
		}
		wro, err := ctx.WRO()
		if err != nil {
			return err
		}
		w, err := Wallet(wro)
		if err != nil {
			return err
		}
		if err := wro.Set(WalletKey, append(w, refund...)); err != nil {
			return err
		}
		return wro.Set("note", "refunded")
	})
}

// Itinerary builds the demo shopping itinerary over the three given node
// names (bank node, shop node, directory node).
func Itinerary(bankNode, shopNode, dirNode string) (*itinerary.Itinerary, error) {
	return itinerary.New(&itinerary.Sub{ID: "trip", Entries: []itinerary.Entry{
		itinerary.Step{Method: "demo.getcash", Loc: bankNode},
		itinerary.Step{Method: "demo.buy", Loc: shopNode},
		itinerary.Step{Method: "demo.check", Loc: dirNode},
	}})
}

// NewAgent builds a demo shopping agent with the given account name.
func NewAgent(id, acct, bankNode, shopNode, dirNode string) (*agent.Agent, []string, error) {
	it, err := Itinerary(bankNode, shopNode, dirNode)
	if err != nil {
		return nil, nil, err
	}
	a, entered, err := agent.New(id, "", it)
	if err != nil {
		return nil, nil, err
	}
	if err := a.WRO.Set("acct", acct); err != nil {
		return nil, nil, err
	}
	return a, entered, nil
}

// SeedSpec describes one resource seeding directive parsed from the
// agentnode command line, e.g. "bank:acct=alice:1000".
type SeedSpec struct {
	Resource string
	Key      string
	Amount   int64
	Extra    int64
}

// FormatHint returns the accepted -seed syntaxes.
func FormatHint() string {
	return "bank:acct=<name>:<balance> | shop:item=<name>:<qty>:<price> | dir:key=<k>:<v>"
}

// String renders the spec for logs.
func (s SeedSpec) String() string {
	return fmt.Sprintf("%s %s (%d/%d)", s.Resource, s.Key, s.Amount, s.Extra)
}
