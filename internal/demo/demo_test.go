package demo_test

import (
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/cluster"
	"repro/internal/demo"
	"repro/internal/node"
	"repro/internal/resource"
	"repro/internal/stable"
	"repro/internal/txn"
)

// TestDemoScenario runs the library shared by the multi-process binaries
// on a simulated cluster: rollback, refund fee, second-pass skip.
func TestDemoScenario(t *testing.T) {
	cl := cluster.New(cluster.Options{RetryDelay: 2 * time.Millisecond})
	defer cl.Close()
	if err := cl.AddNode("A", func(s stable.Store) (resource.Resource, error) {
		return resource.NewBank(s, "bank", false)
	}); err != nil {
		t.Fatal(err)
	}
	if err := cl.AddNode("B", func(s stable.Store) (resource.Resource, error) {
		return resource.NewShop(s, "shop", resource.ShopConfig{Currency: "USD", Mode: resource.RefundCash, FeePercent: 10})
	}); err != nil {
		t.Fatal(err)
	}
	if err := cl.AddNode("C", func(s stable.Store) (resource.Resource, error) {
		return resource.NewDirectory(s, "dir")
	}); err != nil {
		t.Fatal(err)
	}
	if err := demo.Register(cl.Registry()); err != nil {
		t.Fatal(err)
	}
	if err := cl.Start(); err != nil {
		t.Fatal(err)
	}
	seed := func(nodeName string, f func(tx *txn.Tx, n *node.Node) error) {
		t.Helper()
		if err := cl.WithTx(nodeName, f); err != nil {
			t.Fatal(err)
		}
	}
	seed("A", func(tx *txn.Tx, n *node.Node) error {
		r, _ := n.Resource("bank")
		return r.(*resource.Bank).OpenAccount(tx, "alice", 1000)
	})
	seed("B", func(tx *txn.Tx, n *node.Node) error {
		r, _ := n.Resource("shop")
		return r.(*resource.Shop).Restock(tx, "book", 5, 100)
	})
	seed("C", func(tx *txn.Tx, n *node.Node) error {
		r, _ := n.Resource("dir")
		return r.(*resource.Directory).Put(tx, "review/book", "bad")
	})

	a, entered, err := demo.NewAgent("demo1", "alice", "A", "B", "C")
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Run(a, entered, "A", 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed {
		t.Fatalf("agent failed: %s", res.Reason)
	}
	var decision, review string
	if err := res.Agent.SRO.MustGet("decision", &decision); err != nil || decision != "skip" {
		t.Errorf("decision = %q, %v", decision, err)
	}
	if err := res.Agent.SRO.MustGet("review", &review); err != nil || review != "bad" {
		t.Errorf("review = %q, %v", review, err)
	}
	w, err := demo.Wallet(res.Agent.WRO)
	if err != nil {
		t.Fatal(err)
	}
	if w.Total("USD") != 500 {
		t.Errorf("wallet = %d, want 500", w.Total("USD"))
	}
}

func TestDemoRegisterTwiceFails(t *testing.T) {
	reg := agent.NewRegistry()
	if err := demo.Register(reg); err != nil {
		t.Fatal(err)
	}
	if err := demo.Register(reg); err == nil {
		t.Error("double registration succeeded")
	}
}

func TestDemoItineraryShape(t *testing.T) {
	it, err := demo.Itinerary("x", "y", "z")
	if err != nil {
		t.Fatal(err)
	}
	c, entered, err := it.Start()
	if err != nil {
		t.Fatal(err)
	}
	if len(entered) != 1 || entered[0] != "trip" {
		t.Errorf("entered = %v", entered)
	}
	step, err := it.StepAt(c)
	if err != nil || step.Loc != "x" {
		t.Errorf("first step = %+v, %v", step, err)
	}
}
