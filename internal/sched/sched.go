// Package sched implements the node's concurrent step scheduler: a pool
// of N workers draining one agent input queue (stable.Queue) with
// claim/lease hand-out, conflict-aware dispatch and bounded admission.
//
// The paper's node model (§2) executes one step transaction at a time;
// the strict-2PL transaction layer underneath makes step transactions
// safe to run concurrently, so the pool generalizes the serial work loop
// without touching the exactly-once or rollback guarantees:
//
//   - Claims are volatile leases on queue entries (stable.Queue.Claim).
//     An entry is only *removed* by the step transaction's own commit
//     batch, exactly as before, so a crash releases every claim and
//     recovery replays the queue unchanged (§4.3's "the agent still
//     resides in the input queue").
//   - Per-agent FIFO order is preserved by the queue: a younger entry of
//     an agent is never handed out while an older one is leased.
//   - Conflict-aware dispatch: tasks carry advisory resource keys
//     (Config.Hints); a ready task whose keys collide with running work —
//     or with a busy transaction lock (Config.Busy, backed by
//     txn.Lock.Busy) — is passed over when a non-conflicting task is
//     ready. If every ready task conflicts, the oldest runs anyway: 2PL
//     serializes it, and workers never starve.
//   - Bounded admission: at most Workers+Backlog entries are leased at
//     once, so a deep queue stays on stable storage instead of in memory
//     (backpressure against unbounded claim slurping).
//   - Abort/retry: a retryable failure (2PL lock conflict, remote ack
//     timeout, §2's "abort and restart the step transaction") releases
//     the lease and puts the agent on a RetryDelay cooldown; permanent
//     failures and exhausted attempts are handed to Config.Fail.
package sched

import (
	"errors"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/stable"
	"repro/internal/trace"
	"repro/internal/txn"
)

// pollInterval bounds the dispatcher's sleep when no wakeup source is
// armed (safety net; the broadcast Notify normally wakes it).
const pollInterval = 50 * time.Millisecond

// Config configures a Pool. Queue and Exec are mandatory.
type Config struct {
	// Workers is the number of concurrent step executors (min 1).
	Workers int
	// Backlog is how many claimed-but-not-running tasks the dispatcher
	// may hold ready beyond the running set — the admission bound is
	// Workers+Backlog leases. Default: Workers.
	Backlog int
	// RetryDelay is the cooldown before a retryable failure is retried.
	RetryDelay time.Duration
	// MaxAttempts bounds attempts per container before Fail is called.
	// 0 means unbounded.
	MaxAttempts int

	// Queue is the agent input queue drained by the pool.
	Queue *stable.Queue
	// Exec processes one claimed entry (attempt starts at 1). A nil
	// return completes the task; the entry must have been removed
	// durably by Exec's own transaction.
	Exec func(e *stable.Entry, attempt int) error
	// Permanent classifies errors that retrying cannot fix; may be nil
	// (every error retryable until MaxAttempts).
	Permanent func(err error) bool
	// Fail handles a permanently failed entry (it should remove the
	// entry durably); may be nil.
	Fail func(e *stable.Entry, cause error)

	// Hints returns advisory resource-conflict keys for an entry; may be
	// nil (no conflict avoidance). Called once per claim, outside the
	// pool lock — it may decode the container.
	Hints func(e *stable.Entry) []string
	// Busy reports whether the transaction lock behind a conflict key is
	// currently held (txn.Lock.Busy); may be nil.
	Busy func(key string) bool

	// Counters receives scheduler metrics; may be nil.
	Counters *metrics.Counters
	// Tracer receives claim/retry/abort records (nil-safe).
	Tracer *trace.Tracer
}

// task is one leased queue entry awaiting or undergoing execution.
type task struct {
	entry *stable.Entry
	keys  []string
}

// Pool runs Config.Workers workers over the input queue. Start launches
// it; Stop drains it (running attempts finish, leases on never-started
// tasks are released).
type Pool struct {
	cfg Config

	mu       sync.Mutex
	cond     *sync.Cond // wakes workers when ready grows or stop is set
	ready    []*task    // leased, awaiting a worker, oldest first
	running  int
	runKeys  map[string]int // conflict-key multiset of running tasks
	attempts map[string]int // per-container attempt counts (by agent ID)
	cooldown map[string]time.Time
	stopped  bool

	slotFree chan struct{} // cap 1: a lease or admission slot was freed
	stop     chan struct{}
	wg       sync.WaitGroup
}

// New creates a pool; it does not start any goroutine.
func New(cfg Config) *Pool {
	if cfg.Queue == nil || cfg.Exec == nil {
		panic("sched: Config.Queue and Config.Exec are required")
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.Backlog <= 0 {
		cfg.Backlog = cfg.Workers
	}
	if cfg.RetryDelay <= 0 {
		cfg.RetryDelay = 10 * time.Millisecond
	}
	p := &Pool{
		cfg:      cfg,
		runKeys:  make(map[string]int),
		attempts: make(map[string]int),
		cooldown: make(map[string]time.Time),
		slotFree: make(chan struct{}, 1),
		stop:     make(chan struct{}),
	}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// Start launches the dispatcher and the workers.
func (p *Pool) Start() {
	p.wg.Add(1 + p.cfg.Workers)
	go func() {
		defer p.wg.Done()
		p.dispatcher()
	}()
	for i := 0; i < p.cfg.Workers; i++ {
		go func() {
			defer p.wg.Done()
			p.worker()
		}()
	}
}

// Stop drains the pool: no new tasks are dispatched, running attempts
// finish (the caller should first unblock anything Exec waits on, e.g.
// by closing the node's stop channel), and leases on tasks that never
// started are released. Stop is idempotent.
func (p *Pool) Stop() {
	p.mu.Lock()
	already := p.stopped
	p.stopped = true
	p.cond.Broadcast()
	p.mu.Unlock()
	if !already {
		close(p.stop)
	}
	p.wg.Wait()
	p.mu.Lock()
	ready := p.ready
	p.ready = nil
	p.mu.Unlock()
	for _, t := range ready {
		p.cfg.Queue.Release(t.entry)
	}
}

// dispatcher claims entries into the bounded ready set and sleeps on the
// queue's broadcast Notify, freed slots, or cooldown expiry.
func (p *Pool) dispatcher() {
	for {
		select {
		case <-p.stop:
			return
		default:
		}
		// Grab the notify channel BEFORE trying to claim: a signal
		// between the failed claim and the wait then still wakes us.
		ch := p.cfg.Queue.Notify()
		claimed, wait := p.tryClaim()
		if claimed {
			continue
		}
		timer := time.NewTimer(wait)
		select {
		case <-p.stop:
			timer.Stop()
			return
		case <-ch:
			timer.Stop()
		case <-p.slotFree:
			timer.Stop()
		case <-timer.C:
		}
	}
}

// tryClaim leases at most one entry; it reports whether it did, and
// otherwise how long the dispatcher may sleep (bounded by the nearest
// cooldown expiry).
func (p *Pool) tryClaim() (bool, time.Duration) {
	p.mu.Lock()
	if p.stopped || len(p.ready)+p.running >= p.cfg.Workers+p.cfg.Backlog {
		p.mu.Unlock()
		return false, pollInterval
	}
	now := time.Now()
	wait := pollInterval
	var cooling map[string]bool
	for id, until := range p.cooldown {
		if !now.Before(until) {
			delete(p.cooldown, id)
			continue
		}
		if cooling == nil {
			cooling = make(map[string]bool, len(p.cooldown))
		}
		cooling[id] = true
		if d := until.Sub(now); d < wait {
			wait = d
		}
	}
	p.mu.Unlock()
	// The claim scan (store keys + entry decode) and the hint decode run
	// outside the pool lock: finishing workers must not queue behind
	// store I/O. The cooldown snapshot may miss a cooldown set after the
	// unlock — the claimed entry then just retries a little early, which
	// is harmless (cooldowns are advisory back-off, not correctness).
	var skip func(id string) bool
	if cooling != nil {
		skip = func(id string) bool { return cooling[id] }
	}
	e, depth, err := p.cfg.Queue.Claim(skip)
	if err != nil || e == nil {
		return false, wait
	}
	var keys []string
	if p.cfg.Hints != nil {
		keys = p.cfg.Hints(e)
	}
	if p.cfg.Counters != nil {
		p.cfg.Counters.IncSchedClaim(int64(depth))
	}
	p.cfg.Tracer.Rec(trace.OpSchedClaim, "", e.ID, "", "", "", int64(depth))
	t := &task{entry: e, keys: keys}
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		p.cfg.Queue.Release(e)
		return false, pollInterval
	}
	p.ready = append(p.ready, t)
	p.cond.Broadcast()
	p.mu.Unlock()
	return true, 0
}

func (p *Pool) worker() {
	for {
		t := p.take()
		if t == nil {
			return
		}
		p.exec(t)
	}
}

// take blocks until a ready task is dispatchable (or the pool stops).
func (p *Pool) take() *task {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.stopped {
			return nil
		}
		if t := p.selectLocked(); t != nil {
			p.running++
			for _, k := range t.keys {
				p.runKeys[k]++
			}
			return t
		}
		p.cond.Wait()
	}
}

// selectLocked picks the oldest ready task whose conflict keys do not
// collide with running work or a busy lock; if every ready task
// conflicts, the oldest is taken anyway — 2PL serializes it and no
// worker starves. Passing over the head to a younger non-conflicting
// task is what the claim-conflict counter records.
func (p *Pool) selectLocked() *task {
	if len(p.ready) == 0 {
		return nil
	}
	pick := -1
	for i, t := range p.ready {
		if !p.conflictsLocked(t) {
			pick = i
			break
		}
	}
	if pick < 0 {
		pick = 0
	} else if pick > 0 && p.cfg.Counters != nil {
		p.cfg.Counters.IncClaimConflict()
	}
	t := p.ready[pick]
	p.ready = append(p.ready[:pick], p.ready[pick+1:]...)
	return t
}

func (p *Pool) conflictsLocked(t *task) bool {
	for _, k := range t.keys {
		if p.runKeys[k] > 0 {
			return true
		}
		if p.cfg.Busy != nil && p.cfg.Busy(k) {
			return true
		}
	}
	return false
}

// exec runs one attempt and settles the task: done, retry-after-cooldown,
// or permanent failure.
func (p *Pool) exec(t *task) {
	p.mu.Lock()
	attempt := p.attempts[t.entry.ID] + 1
	p.mu.Unlock()

	c := p.cfg.Counters
	if c != nil {
		c.StepStarted()
	}
	start := time.Now()
	err := p.cfg.Exec(t.entry, attempt)
	if c != nil {
		c.StepFinished(time.Since(start), err == nil)
	}

	settled := err == nil
	if err != nil {
		perm := p.cfg.Permanent != nil && p.cfg.Permanent(err)
		if !perm && p.cfg.MaxAttempts > 0 && attempt >= p.cfg.MaxAttempts {
			perm = true
		}
		if !perm {
			if c != nil {
				c.IncSchedRetry()
				if errors.Is(err, txn.ErrLockTimeout) {
					c.IncLockConflictAbort()
				}
			}
			if p.cfg.Tracer != nil {
				p.cfg.Tracer.Rec(trace.OpSchedRetry, "", t.entry.ID, err.Error(), "", "", int64(attempt))
			}
		} else if p.cfg.Tracer != nil {
			p.cfg.Tracer.Rec(trace.OpSchedAbort, "", t.entry.ID, err.Error(), "", "", int64(attempt))
		}
		if perm && p.cfg.Fail != nil {
			p.cfg.Fail(t.entry, err)
			settled = true
		}
		// perm without a Fail handler: the entry is still queued, so it
		// is NOT settled — keep the attempt count and cooldown, or the
		// poisoned entry would spin hot forever with a fresh attempt
		// counter.
	}

	p.mu.Lock()
	p.running--
	for _, k := range t.keys {
		if p.runKeys[k] <= 1 {
			delete(p.runKeys, k)
		} else {
			p.runKeys[k]--
		}
	}
	if settled {
		delete(p.attempts, t.entry.ID)
		delete(p.cooldown, t.entry.ID)
	} else {
		p.attempts[t.entry.ID] = attempt
		p.cooldown[t.entry.ID] = time.Now().Add(p.cfg.RetryDelay)
	}
	p.mu.Unlock()

	// Release after settling: on success/failure the entry is already
	// durably gone (Exec/Fail removed it in their transactions); on retry
	// it becomes claimable again once the cooldown lapses.
	p.cfg.Queue.Release(t.entry)
	select {
	case p.slotFree <- struct{}{}:
	default:
	}
}
