package sched

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/stable"
)

// harness wires a pool to a fresh in-memory queue with an Exec that
// records the execution order and removes entries like a committed step
// transaction would.
type harness struct {
	store stable.Store
	queue *stable.Queue

	mu    sync.Mutex
	order []string
}

func newHarness() *harness {
	s := stable.NewMemStore(nil)
	return &harness{store: s, queue: stable.NewQueue(s, "q/")}
}

func (h *harness) record(id string) {
	h.mu.Lock()
	h.order = append(h.order, id)
	h.mu.Unlock()
}

func (h *harness) executed() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]string(nil), h.order...)
}

// consume removes the entry durably, as a step transaction's commit batch
// does.
func (h *harness) consume(e *stable.Entry) error {
	return h.store.Apply(h.queue.RemoveOp(e))
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestPoolProcessesAllExactlyOnce(t *testing.T) {
	h := newHarness()
	const n = 50
	for i := 0; i < n; i++ {
		if err := h.queue.Enqueue(fmt.Sprintf("a%02d", i), nil); err != nil {
			t.Fatal(err)
		}
	}
	var c metrics.Counters
	p := New(Config{
		Workers: 4,
		Queue:   h.queue,
		Exec: func(e *stable.Entry, attempt int) error {
			h.record(e.ID)
			time.Sleep(time.Millisecond) // hold the slot so concurrency builds
			return h.consume(e)
		},
		Counters: &c,
	})
	p.Start()
	waitFor(t, "all entries processed", func() bool {
		ln, _ := h.queue.Len()
		return ln == 0
	})
	p.Stop()
	got := h.executed()
	if len(got) != n {
		t.Fatalf("executed %d entries, want %d (duplicates or losses)", len(got), n)
	}
	seen := make(map[string]bool)
	for _, id := range got {
		if seen[id] {
			t.Errorf("entry %s executed twice", id)
		}
		seen[id] = true
	}
	s := c.Snapshot()
	if s.SchedClaims != n {
		t.Errorf("claims = %d, want %d", s.SchedClaims, n)
	}
	if s.SchedInFlightPeak < 2 {
		t.Errorf("in-flight peak = %d, want >= 2", s.SchedInFlightPeak)
	}
	if ln := c.StepLatency().Count; ln != n {
		t.Errorf("latency samples = %d, want %d", ln, n)
	}
}

func TestPoolRetryThenSuccess(t *testing.T) {
	h := newHarness()
	if err := h.queue.Enqueue("flaky", nil); err != nil {
		t.Fatal(err)
	}
	var c metrics.Counters
	var attempts []int
	var mu sync.Mutex
	p := New(Config{
		Workers:    2,
		RetryDelay: time.Millisecond,
		Queue:      h.queue,
		Exec: func(e *stable.Entry, attempt int) error {
			mu.Lock()
			attempts = append(attempts, attempt)
			mu.Unlock()
			if attempt < 3 {
				return errors.New("transient")
			}
			return h.consume(e)
		},
		Counters: &c,
	})
	p.Start()
	waitFor(t, "retry success", func() bool {
		ln, _ := h.queue.Len()
		return ln == 0
	})
	p.Stop()
	mu.Lock()
	defer mu.Unlock()
	if len(attempts) != 3 || attempts[0] != 1 || attempts[1] != 2 || attempts[2] != 3 {
		t.Errorf("attempts = %v, want [1 2 3]", attempts)
	}
	if s := c.Snapshot(); s.SchedRetries != 2 {
		t.Errorf("retries = %d, want 2", s.SchedRetries)
	}
}

func TestPoolPermanentFailure(t *testing.T) {
	h := newHarness()
	if err := h.queue.Enqueue("doomed", nil); err != nil {
		t.Fatal(err)
	}
	permErr := errors.New("permanent")
	var failed atomic.Int32
	p := New(Config{
		Workers:    1,
		RetryDelay: time.Millisecond,
		Queue:      h.queue,
		Exec: func(e *stable.Entry, attempt int) error {
			return permErr
		},
		Permanent: func(err error) bool { return errors.Is(err, permErr) },
		Fail: func(e *stable.Entry, cause error) {
			failed.Add(1)
			_ = h.consume(e)
		},
	})
	p.Start()
	waitFor(t, "permanent failure handled", func() bool { return failed.Load() == 1 })
	p.Stop()
	if ln, _ := h.queue.Len(); ln != 0 {
		t.Errorf("failed entry still queued (len %d)", ln)
	}
}

func TestPoolMaxAttemptsExhaustion(t *testing.T) {
	h := newHarness()
	if err := h.queue.Enqueue("limited", nil); err != nil {
		t.Fatal(err)
	}
	var execs, failed atomic.Int32
	p := New(Config{
		Workers:     1,
		RetryDelay:  time.Millisecond,
		MaxAttempts: 3,
		Queue:       h.queue,
		Exec: func(e *stable.Entry, attempt int) error {
			execs.Add(1)
			return errors.New("always transient")
		},
		Fail: func(e *stable.Entry, cause error) {
			failed.Add(1)
			_ = h.consume(e)
		},
	})
	p.Start()
	waitFor(t, "attempts exhausted", func() bool { return failed.Load() == 1 })
	p.Stop()
	if n := execs.Load(); n != 3 {
		t.Errorf("executed %d attempts, want 3", n)
	}
}

// TestPoolConflictAwareDispatch parks the single worker on a filler task
// while the dispatcher leases one task whose conflict key is busy and one
// whose key is free; the free one must run first even though the busy one
// is older.
func TestPoolConflictAwareDispatch(t *testing.T) {
	h := newHarness()
	for _, id := range []string{"filler", "old-busy", "young-free"} {
		if err := h.queue.Enqueue(id, nil); err != nil {
			t.Fatal(err)
		}
	}
	var busy atomic.Bool
	busy.Store(true)
	release := make(chan struct{})
	var c metrics.Counters
	p := New(Config{
		Workers: 1,
		Backlog: 2,
		Queue:   h.queue,
		Hints: func(e *stable.Entry) []string {
			switch e.ID {
			case "old-busy":
				return []string{"k-busy"}
			case "young-free":
				return []string{"k-free"}
			}
			return nil
		},
		Busy: func(key string) bool { return key == "k-busy" && busy.Load() },
		Exec: func(e *stable.Entry, attempt int) error {
			if e.ID == "filler" {
				<-release
			}
			if e.ID == "young-free" {
				busy.Store(false) // lock released before the old task runs
			}
			h.record(e.ID)
			return h.consume(e)
		},
		Counters: &c,
	})
	p.Start()
	// Wait until both conflict tasks are leased into the ready set, then
	// let the worker pick.
	waitFor(t, "backlog leased", func() bool { return h.queue.Claimed() == 3 })
	close(release)
	waitFor(t, "all done", func() bool {
		ln, _ := h.queue.Len()
		return ln == 0
	})
	p.Stop()
	got := h.executed()
	want := []string{"filler", "young-free", "old-busy"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("execution order = %v, want %v", got, want)
		}
	}
	if s := c.Snapshot(); s.SchedClaimConflicts < 1 {
		t.Errorf("claim conflicts = %d, want >= 1", s.SchedClaimConflicts)
	}
}

// TestPoolBoundedAdmission checks backpressure: with every worker wedged,
// the pool leases at most Workers+Backlog entries, leaving the rest on
// stable storage.
func TestPoolBoundedAdmission(t *testing.T) {
	h := newHarness()
	const n = 20
	for i := 0; i < n; i++ {
		if err := h.queue.Enqueue(fmt.Sprintf("a%02d", i), nil); err != nil {
			t.Fatal(err)
		}
	}
	release := make(chan struct{})
	p := New(Config{
		Workers: 2,
		Backlog: 3,
		Queue:   h.queue,
		Exec: func(e *stable.Entry, attempt int) error {
			<-release
			return h.consume(e)
		},
	})
	p.Start()
	waitFor(t, "admission filled", func() bool { return h.queue.Claimed() == 5 })
	time.Sleep(20 * time.Millisecond) // give an over-admitting bug time to show
	if cl := h.queue.Claimed(); cl != 5 {
		t.Errorf("claimed %d entries, admission bound is 5", cl)
	}
	close(release)
	waitFor(t, "drained", func() bool {
		ln, _ := h.queue.Len()
		return ln == 0
	})
	p.Stop()
}

// TestPoolStopDrains checks that Stop waits for the running attempt and
// releases the leases of never-started tasks.
func TestPoolStopDrains(t *testing.T) {
	h := newHarness()
	for i := 0; i < 4; i++ {
		if err := h.queue.Enqueue(fmt.Sprintf("a%d", i), nil); err != nil {
			t.Fatal(err)
		}
	}
	started := make(chan struct{})
	release := make(chan struct{})
	var finished atomic.Bool
	p := New(Config{
		Workers: 1,
		Backlog: 2,
		Queue:   h.queue,
		Exec: func(e *stable.Entry, attempt int) error {
			close(started)
			<-release
			finished.Store(true)
			return h.consume(e)
		},
	})
	p.Start()
	<-started
	waitFor(t, "backlog leased", func() bool { return h.queue.Claimed() == 3 })
	done := make(chan struct{})
	go func() {
		p.Stop()
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("Stop returned while an attempt was still running")
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	<-done
	if !finished.Load() {
		t.Error("running attempt did not finish before Stop returned")
	}
	if cl := h.queue.Claimed(); cl != 0 {
		t.Errorf("%d leases leaked after Stop", cl)
	}
	if ln, _ := h.queue.Len(); ln != 3 {
		t.Errorf("queue len after drain = %d, want 3 unprocessed", ln)
	}
}

// TestPoolPerAgentFIFOUnderConcurrency floods the pool with interleaved
// per-agent sequences and asserts each agent's entries execute in order.
func TestPoolPerAgentFIFO(t *testing.T) {
	h := newHarness()
	const agents, perAgent = 4, 5
	// Entries are enqueued round-robin: a0#0 a1#0 ... a0#1 a1#1 ...
	for s := 0; s < perAgent; s++ {
		for a := 0; a < agents; a++ {
			id := fmt.Sprintf("agent%d", a)
			if err := h.queue.Enqueue(id, []byte(fmt.Sprintf("%d", s))); err != nil {
				t.Fatal(err)
			}
		}
	}
	var mu sync.Mutex
	seen := make(map[string][]string)
	p := New(Config{
		Workers: 8,
		Queue:   h.queue,
		Exec: func(e *stable.Entry, attempt int) error {
			mu.Lock()
			seen[e.ID] = append(seen[e.ID], string(e.Data))
			mu.Unlock()
			return h.consume(e)
		},
	})
	p.Start()
	waitFor(t, "drained", func() bool {
		ln, _ := h.queue.Len()
		return ln == 0
	})
	p.Stop()
	mu.Lock()
	defer mu.Unlock()
	for a := 0; a < agents; a++ {
		id := fmt.Sprintf("agent%d", a)
		if len(seen[id]) != perAgent {
			t.Fatalf("agent %s: %d executions, want %d", id, len(seen[id]), perAgent)
		}
		for s := 0; s < perAgent; s++ {
			if seen[id][s] != fmt.Sprintf("%d", s) {
				t.Errorf("agent %s executed out of order: %v", id, seen[id])
				break
			}
		}
	}
}

// TestPoolPermanentWithoutFailHandlerBacksOff: a permanent error with no
// Fail handler must not settle the still-queued entry — the attempt
// count and cooldown persist, so the poisoned entry retries at the
// cooldown rate instead of spinning hot with a fresh counter.
func TestPoolPermanentWithoutFailHandler(t *testing.T) {
	h := newHarness()
	if err := h.queue.Enqueue("poison", nil); err != nil {
		t.Fatal(err)
	}
	permErr := errors.New("permanent")
	var execs atomic.Int32
	p := New(Config{
		Workers:    2,
		RetryDelay: 20 * time.Millisecond,
		Queue:      h.queue,
		Exec: func(e *stable.Entry, attempt int) error {
			execs.Add(1)
			return permErr
		},
		Permanent: func(err error) bool { return errors.Is(err, permErr) },
	})
	p.Start()
	time.Sleep(100 * time.Millisecond)
	p.Stop()
	// 100ms / 20ms cooldown => ~5 attempts; a hot loop would be in the
	// thousands.
	if n := execs.Load(); n > 20 {
		t.Errorf("%d attempts in 100ms: cooldown not applied to unhandled permanent failure", n)
	}
	if n := execs.Load(); n == 0 {
		t.Error("entry never attempted")
	}
}
