package sched

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/stable"
)

// The pool claims through stable.Queue.Claim, so an installed claim fence
// (the migration/drain gate) keeps workers off fenced agents without any
// scheduler-side coordination: unfenced agents drain normally, fenced
// ones sit untouched until the fence lifts, then drain too.
func TestPoolRespectsQueueFence(t *testing.T) {
	h := newHarness()
	const n = 10
	for i := 0; i < n; i++ {
		if err := h.queue.Enqueue(fmt.Sprintf("a%02d", i), nil); err != nil {
			t.Fatal(err)
		}
	}
	fenced := func(id string) bool { return id < "a05" }
	h.queue.SetFence(fenced)

	p := New(Config{
		Workers: 4,
		Queue:   h.queue,
		Exec: func(e *stable.Entry, attempt int) error {
			h.record(e.ID)
			return h.consume(e)
		},
	})
	p.Start()
	defer p.Stop()

	waitFor(t, "unfenced half processed", func() bool { return len(h.executed()) == n/2 })
	// Give the pool a beat: it must NOT touch the fenced half.
	time.Sleep(20 * time.Millisecond)
	for _, id := range h.executed() {
		if fenced(id) {
			t.Fatalf("pool executed fenced agent %s", id)
		}
	}
	if l, _ := h.queue.Len(); l != n/2 {
		t.Fatalf("queue len %d, want the fenced half (%d) still queued", l, n/2)
	}

	h.queue.SetFence(nil)
	waitFor(t, "fenced half drains after lift", func() bool { return len(h.executed()) == n })
}
