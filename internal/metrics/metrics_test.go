package metrics

import (
	"sync"
	"testing"
)

func TestCountersSnapshot(t *testing.T) {
	var c Counters
	c.IncMessages(100)
	c.IncMessages(50)
	c.IncAgentTransfer(1024)
	c.IncStepTxn()
	c.IncStepTxnAbort()
	c.IncCompTxn()
	c.IncCompTxnAbort()
	c.IncCompOps(3)
	c.IncRemoteCompBatch()
	c.IncSavepoints()
	c.IncStableWrite(10)

	s := c.Snapshot()
	want := Snapshot{
		Messages: 2, BytesSent: 150,
		AgentTransfers: 1, AgentTransferByte: 1024,
		StepTxns: 1, StepTxnAborts: 1,
		CompTxns: 1, CompTxnAborts: 1,
		CompOps: 3, RemoteCompBatches: 1,
		Savepoints:   1,
		StableWrites: 1, StableBytes: 10,
	}
	if s != want {
		t.Errorf("snapshot = %+v, want %+v", s, want)
	}
}

func TestObserveLogBytesKeepsPeak(t *testing.T) {
	var c Counters
	c.ObserveLogBytes(100)
	c.ObserveLogBytes(50) // smaller: ignored
	c.ObserveLogBytes(200)
	c.ObserveLogBytes(150)
	if got := c.Snapshot().LogBytesPeak; got != 200 {
		t.Errorf("peak = %d, want 200", got)
	}
}

func TestSnapshotSub(t *testing.T) {
	var c Counters
	c.IncMessages(10)
	before := c.Snapshot()
	c.IncMessages(5)
	c.IncStepTxn()
	diff := c.Snapshot().Sub(before)
	if diff.Messages != 1 || diff.BytesSent != 5 || diff.StepTxns != 1 {
		t.Errorf("diff = %+v", diff)
	}
}

func TestCountersConcurrent(t *testing.T) {
	var c Counters
	var wg sync.WaitGroup
	const (
		workers = 8
		perW    = 1000
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				c.IncMessages(1)
				c.IncCompOps(2)
				c.ObserveLogBytes(int64(i))
			}
		}()
	}
	wg.Wait()
	s := c.Snapshot()
	if s.Messages != workers*perW {
		t.Errorf("messages = %d, want %d", s.Messages, workers*perW)
	}
	if s.CompOps != 2*workers*perW {
		t.Errorf("compOps = %d", s.CompOps)
	}
	if s.LogBytesPeak != perW-1 {
		t.Errorf("peak = %d, want %d", s.LogBytesPeak, perW-1)
	}
}
