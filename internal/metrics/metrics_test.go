package metrics

import (
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestCountersSnapshot(t *testing.T) {
	var c Counters
	c.IncMessages(100)
	c.IncMessages(50)
	c.IncAgentTransfer(1024)
	c.IncStepTxn()
	c.IncStepTxnAbort()
	c.IncCompTxn()
	c.IncCompTxnAbort()
	c.IncCompOps(3)
	c.IncRemoteCompBatch()
	c.IncSavepoints()
	c.IncStableWrite(10)
	c.IncNetFaultDrop()
	c.IncNetFaultDup()
	c.IncNetFaultReorder()
	c.IncNetUnreachableDrop()
	c.IncMailboxDrop()

	s := c.Snapshot()
	want := Snapshot{
		Messages: 2, BytesSent: 150,
		AgentTransfers: 1, AgentTransferByte: 1024,
		StepTxns: 1, StepTxnAborts: 1,
		CompTxns: 1, CompTxnAborts: 1,
		CompOps: 3, RemoteCompBatches: 1,
		Savepoints:   1,
		StableWrites: 1, StableBytes: 10,
		NetFaultDrops: 1, NetFaultDups: 1, NetFaultReorders: 1,
		NetUnreachableDrops: 1, MailboxDrops: 1,
	}
	if !reflect.DeepEqual(s, want) {
		t.Errorf("snapshot = %+v, want %+v", s, want)
	}
}

func TestWireAndBatchCounters(t *testing.T) {
	var c Counters
	c.ObserveNetBatch(1)
	c.ObserveNetBatch(3)
	c.ObserveNetBatch(100)
	c.ObserveNetBatch(0) // empty flush: ignored
	c.AddWireBytes("q.prepare", 64)
	c.AddWireBytes("q.prepare", 36)
	c.AddWireBytes("q.commit", 8)

	s := c.Snapshot()
	if s.NetBatches != 3 || s.NetBatchedMsgs != 104 {
		t.Errorf("batches=%d msgs=%d", s.NetBatches, s.NetBatchedMsgs)
	}
	last := len(s.NetBatchSize) - 1
	if s.NetBatchSize[0] != 1 || s.NetBatchSize[2] != 1 || s.NetBatchSize[last] != 1 {
		t.Errorf("histogram = %v", s.NetBatchSize)
	}
	if s.WireBytesByKind["q.prepare"] != 100 || s.WireBytesByKind["q.commit"] != 8 {
		t.Errorf("byKind = %v", s.WireBytesByKind)
	}
	if s.WireMsgsByKind["q.prepare"] != 2 || s.WireMsgsByKind["q.commit"] != 1 {
		t.Errorf("msgsByKind = %v", s.WireMsgsByKind)
	}

	d := c.Snapshot().Sub(s)
	if d.NetBatches != 0 || len(d.WireBytesByKind) != 0 || len(d.WireMsgsByKind) != 0 {
		t.Errorf("self-diff not empty: %+v", d)
	}
	c.ObserveNetBatch(2)
	c.AddWireBytes("q.commit", 5)
	d = c.Snapshot().Sub(s)
	if d.NetBatches != 1 || d.NetBatchSize[1] != 1 || d.WireBytesByKind["q.commit"] != 5 {
		t.Errorf("diff = %+v", d)
	}
	if d.WireMsgsByKind["q.commit"] != 1 || len(d.WireMsgsByKind) != 1 {
		t.Errorf("msg diff = %v", d.WireMsgsByKind)
	}
	if lbl := BatchBucketLabel(0); lbl != "1" {
		t.Errorf("label 0 = %q", lbl)
	}
	if lbl := BatchBucketLabel(len(BatchSizeBuckets)); lbl != ">64" {
		t.Errorf("overflow label = %q", lbl)
	}
}

// TestKindMapSubEdgeCases pins the Snapshot/Sub map-diff semantics both
// per-kind maps share: zero deltas are dropped, keys present only in
// the subtrahend come back negated, and an all-zero diff is nil so that
// equal snapshots compare equal to the zero Snapshot.
func TestKindMapSubEdgeCases(t *testing.T) {
	s := Snapshot{
		WireBytesByKind: map[string]int64{"a": 10, "b": 5, "zero": 0},
		WireMsgsByKind:  map[string]int64{"a": 2, "b": 5},
	}
	o := Snapshot{
		WireBytesByKind: map[string]int64{"a": 4, "only-o": 7, "ghost": 0},
		WireMsgsByKind:  map[string]int64{"a": 2, "b": 1},
	}
	d := s.Sub(o)
	wantBytes := map[string]int64{"a": 6, "b": 5, "only-o": -7}
	if !reflect.DeepEqual(d.WireBytesByKind, wantBytes) {
		t.Errorf("bytes diff = %v, want %v", d.WireBytesByKind, wantBytes)
	}
	// "a" has a zero message delta and must be dropped.
	wantMsgs := map[string]int64{"b": 4}
	if !reflect.DeepEqual(d.WireMsgsByKind, wantMsgs) {
		t.Errorf("msgs diff = %v, want %v", d.WireMsgsByKind, wantMsgs)
	}
	// Symmetry: an all-zero diff yields nil maps, never an empty map.
	if d := s.Sub(s); d.WireBytesByKind != nil || d.WireMsgsByKind != nil {
		t.Errorf("self-diff maps not nil: %+v", d)
	}
	// One side entirely empty: the other side's values pass through.
	if d := s.Sub(Snapshot{}); d.WireBytesByKind["b"] != 5 || d.WireMsgsByKind["a"] != 2 {
		t.Errorf("empty-o diff = %+v", d)
	}
	if d := (Snapshot{}).Sub(s); d.WireBytesByKind["b"] != -5 || d.WireMsgsByKind["a"] != -2 {
		t.Errorf("empty-s diff = %+v", d)
	}
}

func TestObserveLogBytesKeepsPeak(t *testing.T) {
	var c Counters
	c.ObserveLogBytes(100)
	c.ObserveLogBytes(50) // smaller: ignored
	c.ObserveLogBytes(200)
	c.ObserveLogBytes(150)
	if got := c.Snapshot().LogBytesPeak; got != 200 {
		t.Errorf("peak = %d, want 200", got)
	}
}

func TestSnapshotSub(t *testing.T) {
	var c Counters
	c.IncMessages(10)
	before := c.Snapshot()
	c.IncMessages(5)
	c.IncStepTxn()
	diff := c.Snapshot().Sub(before)
	if diff.Messages != 1 || diff.BytesSent != 5 || diff.StepTxns != 1 {
		t.Errorf("diff = %+v", diff)
	}
}

func TestCountersConcurrent(t *testing.T) {
	var c Counters
	var wg sync.WaitGroup
	const (
		workers = 8
		perW    = 1000
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				c.IncMessages(1)
				c.IncCompOps(2)
				c.ObserveLogBytes(int64(i))
			}
		}()
	}
	wg.Wait()
	s := c.Snapshot()
	if s.Messages != workers*perW {
		t.Errorf("messages = %d, want %d", s.Messages, workers*perW)
	}
	if s.CompOps != 2*workers*perW {
		t.Errorf("compOps = %d", s.CompOps)
	}
	if s.LogBytesPeak != perW-1 {
		t.Errorf("peak = %d, want %d", s.LogBytesPeak, perW-1)
	}
}

func TestSchedulerCounters(t *testing.T) {
	var c Counters
	c.IncSchedClaim(5)
	c.IncSchedClaim(3)
	c.IncClaimConflict()
	c.IncLockConflictAbort()
	c.IncSchedRetry()
	if n := c.StepStarted(); n != 1 {
		t.Errorf("in-flight after start = %d", n)
	}
	c.StepStarted()
	c.StepFinished(10*time.Millisecond, true)
	c.StepFinished(20*time.Millisecond, false) // failed attempt: busy, no latency sample
	s := c.Snapshot()
	if s.SchedClaims != 2 || s.SchedQueueDepthPeak != 5 {
		t.Errorf("claims=%d depthPeak=%d", s.SchedClaims, s.SchedQueueDepthPeak)
	}
	if s.SchedClaimConflicts != 1 || s.SchedLockAborts != 1 || s.SchedRetries != 1 {
		t.Errorf("conflicts=%d lockAborts=%d retries=%d",
			s.SchedClaimConflicts, s.SchedLockAborts, s.SchedRetries)
	}
	if s.SchedInFlightPeak != 2 || c.InFlight() != 0 {
		t.Errorf("inFlightPeak=%d inFlight=%d", s.SchedInFlightPeak, c.InFlight())
	}
	if s.SchedWorkerBusyNanos != int64(30*time.Millisecond) {
		t.Errorf("busy=%d", s.SchedWorkerBusyNanos)
	}
	d := s.Sub(Snapshot{SchedClaims: 1, SchedInFlightPeak: 99})
	if d.SchedClaims != 1 || d.SchedInFlightPeak != 2 {
		t.Errorf("diff claims=%d peak=%d", d.SchedClaims, d.SchedInFlightPeak)
	}
}

func TestStepLatencyPercentiles(t *testing.T) {
	var c Counters
	if s := c.StepLatency(); s != (LatencySummary{}) {
		t.Errorf("empty latency = %+v", s)
	}
	for i := 1; i <= 1000; i++ {
		c.StepStarted()
		c.StepFinished(time.Duration(i)*time.Millisecond, true)
	}
	s := c.StepLatency()
	if s.Count != 1000 {
		t.Errorf("n = %d", s.Count)
	}
	if s.P50 < 450*time.Millisecond || s.P50 > 550*time.Millisecond {
		t.Errorf("p50 = %v", s.P50)
	}
	if s.P90 < 850*time.Millisecond || s.P90 > 950*time.Millisecond {
		t.Errorf("p90 = %v", s.P90)
	}
	if s.P99 < 950*time.Millisecond || s.P99 > time.Second {
		t.Errorf("p99 = %v", s.P99)
	}
	if s.P999 < s.P99 || s.P999 > time.Second {
		t.Errorf("p999 = %v", s.P999)
	}
	var total int64
	for _, n := range s.Buckets {
		total += n
	}
	if total != 1000 {
		t.Errorf("bucket total = %d, want 1000 (buckets %v)", total, s.Buckets)
	}
}

func TestStepLatencyBuckets(t *testing.T) {
	var c Counters
	obs := func(d time.Duration) {
		c.StepStarted()
		c.StepFinished(d, true)
	}
	obs(50 * time.Microsecond)  // cell 0 (≤100µs)
	obs(100 * time.Microsecond) // cell 0 (boundary is inclusive)
	obs(2 * time.Millisecond)   // cell 3 (≤3ms)
	obs(time.Minute)            // overflow cell
	s := c.StepLatency()
	last := len(s.Buckets) - 1
	if s.Buckets[0] != 2 || s.Buckets[3] != 1 || s.Buckets[last] != 1 {
		t.Errorf("buckets = %v", s.Buckets)
	}
	if lbl := LatencyBucketLabel(3); lbl != "le_3ms" {
		t.Errorf("label 3 = %q", lbl)
	}
	if lbl := LatencyBucketLabel(last); lbl != "inf" {
		t.Errorf("overflow label = %q", lbl)
	}
}

func TestStepLatencyRingBounded(t *testing.T) {
	var c Counters
	for i := 0; i < latRingSize+100; i++ {
		c.StepStarted()
		c.StepFinished(time.Millisecond, true)
	}
	s := c.StepLatency()
	if s.Count != int64(latRingSize+100) {
		t.Errorf("count = %d", s.Count)
	}
	var resident int64
	for _, n := range s.Buckets {
		resident += n
	}
	if resident != int64(latRingSize) {
		t.Errorf("reservoir holds %d samples, want %d", resident, latRingSize)
	}
}
