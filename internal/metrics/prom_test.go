package metrics

import (
	"bufio"
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// promSnapshot is a fixed input exercising every exposition shape: plain
// counters, peaks (gauges), both kind-labeled maps, the batch histogram
// and the latency summary.
func promSnapshot() (Snapshot, LatencySummary) {
	var c Counters
	c.IncMessages(100)
	c.IncMessages(28)
	c.IncAgentTransfer(4096)
	c.IncStepTxn()
	c.IncStepTxnAbort()
	c.IncCompOps(7)
	c.ObserveLogBytes(512)
	c.ObserveNetBatch(1)
	c.ObserveNetBatch(3)
	c.ObserveNetBatch(70)
	c.ObserveDecisionBatch(1)
	c.ObserveDecisionBatch(12)
	c.IncAckPiggybacked(4)
	c.AddWireBytes("q.prepare", 64)
	c.AddWireBytes("q.prepare", 36)
	c.AddWireBytes("a.commit", 8)
	c.IncSchedClaim(5)
	c.StepStarted()
	c.StepFinished(200*time.Microsecond, true)
	c.StepStarted()
	c.StepFinished(2*time.Millisecond, true)
	c.StepStarted()
	c.StepFinished(40*time.Millisecond, true)
	return c.Snapshot(), c.StepLatency()
}

func TestWritePrometheusGolden(t *testing.T) {
	s, lat := promSnapshot()
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, s, lat); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "prom.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition drifted from golden file; run `go test ./internal/metrics -run Prometheus -update` if intentional.\n--- got ---\n%s", buf.String())
	}
}

// TestWritePrometheusStrictFormat runs the output through a strict text
// exposition (0.0.4) scanner: every line must be a well-formed TYPE
// comment or sample, every sample must belong to a declared family, and
// no family may be declared twice.
func TestWritePrometheusStrictFormat(t *testing.T) {
	s, lat := promSnapshot()
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, s, lat); err != nil {
		t.Fatal(err)
	}
	families := scanExposition(t, buf.Bytes())

	// Spot-check samples the rest of the PR depends on.
	for _, name := range []string{
		"repro_messages_total", "repro_wire_bytes_by_kind_total",
		"repro_wire_msgs_by_kind_total", "repro_net_batch_size",
		"repro_log_bytes_peak", "repro_step_latency_seconds",
		"repro_step_latency_reservoir", "repro_wal_rotations_total",
	} {
		if _, ok := families[name]; !ok {
			t.Errorf("family %q missing from exposition", name)
		}
	}
	if typ := families["repro_log_bytes_peak"]; typ != "gauge" {
		t.Errorf("peak exposed as %q, want gauge", typ)
	}
	if typ := families["repro_net_batch_size"]; typ != "histogram" {
		t.Errorf("batch histogram exposed as %q", typ)
	}
}

// scanExposition validates data line by line and returns the family →
// type map. It fails the test on the first malformed line.
func scanExposition(t *testing.T, data []byte) map[string]string {
	t.Helper()
	families := map[string]string{}
	sc := bufio.NewScanner(bytes.NewReader(data))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			t.Fatalf("line %d: empty line in exposition", lineNo)
		}
		if strings.HasPrefix(line, "#") {
			parts := strings.Fields(line)
			if len(parts) != 4 || parts[1] != "TYPE" {
				t.Fatalf("line %d: malformed comment %q", lineNo, line)
			}
			switch parts[3] {
			case "counter", "gauge", "histogram", "summary":
			default:
				t.Fatalf("line %d: unknown metric type %q", lineNo, parts[3])
			}
			if _, dup := families[parts[2]]; dup {
				t.Fatalf("line %d: duplicate TYPE for %q", lineNo, parts[2])
			}
			families[parts[2]] = parts[3]
			continue
		}
		name, rest := splitMetricName(line)
		if name == "" {
			t.Fatalf("line %d: no metric name in %q", lineNo, line)
		}
		if !validMetricName(name) {
			t.Fatalf("line %d: invalid metric name %q", lineNo, name)
		}
		if strings.HasPrefix(rest, "{") {
			end := strings.Index(rest, "}")
			if end < 0 {
				t.Fatalf("line %d: unterminated label set in %q", lineNo, line)
			}
			validateLabels(t, lineNo, rest[1:end])
			rest = rest[end+1:]
		}
		if !strings.HasPrefix(rest, " ") {
			t.Fatalf("line %d: missing value separator in %q", lineNo, line)
		}
		if _, err := strconv.ParseFloat(strings.TrimSpace(rest), 64); err != nil {
			t.Fatalf("line %d: bad sample value in %q: %v", lineNo, line, err)
		}
		if _, ok := families[familyOf(name)]; !ok {
			t.Fatalf("line %d: sample %q has no TYPE declaration", lineNo, name)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return families
}

func splitMetricName(line string) (name, rest string) {
	for i, r := range line {
		if r == '{' || r == ' ' {
			return line[:i], line[i:]
		}
	}
	return line, ""
}

func validMetricName(s string) bool {
	for i, r := range s {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return s != ""
}

func validateLabels(t *testing.T, lineNo int, labels string) {
	t.Helper()
	for _, pair := range strings.Split(labels, ",") {
		eq := strings.Index(pair, "=")
		if eq <= 0 {
			t.Fatalf("line %d: malformed label pair %q", lineNo, pair)
		}
		if !validMetricName(pair[:eq]) {
			t.Fatalf("line %d: invalid label name %q", lineNo, pair[:eq])
		}
		val := pair[eq+1:]
		if len(val) < 2 || val[0] != '"' || val[len(val)-1] != '"' {
			t.Fatalf("line %d: unquoted label value %q", lineNo, val)
		}
	}
}

// familyOf strips histogram/summary sample suffixes to recover the
// declared family name.
func familyOf(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			return base
		}
	}
	return name
}
