// Package metrics collects counters for the experiments in EXPERIMENTS.md.
//
// A single Counters value is shared by the network, the stable stores and
// the node runtimes of one cluster; all methods are safe for concurrent
// use. Snapshots are plain structs so experiment harnesses can diff them.
package metrics

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// latRingSize bounds the step-latency reservoir: percentiles are computed
// over the most recent latRingSize observations.
const latRingSize = 8192

// Counters accumulates event counts for one cluster run.
// The zero value is ready to use.
type Counters struct {
	messages          atomic.Int64
	bytesSent         atomic.Int64
	agentTransfers    atomic.Int64
	agentTransferByte atomic.Int64
	stepTxns          atomic.Int64
	stepTxnAborts     atomic.Int64
	compTxns          atomic.Int64
	compTxnAborts     atomic.Int64
	compOps           atomic.Int64
	remoteCompBatches atomic.Int64
	savepoints        atomic.Int64
	logBytesPeak      atomic.Int64
	stableWrites      atomic.Int64
	stableBytes       atomic.Int64

	// Scheduler (internal/sched) instrumentation.
	schedClaims     atomic.Int64
	claimConflicts  atomic.Int64
	lockAborts      atomic.Int64
	schedRetries    atomic.Int64
	inFlight        atomic.Int64
	inFlightPeak    atomic.Int64
	queueDepthPeak  atomic.Int64
	workerBusyNanos atomic.Int64

	// Network fault-injection (internal/network.Sim) instrumentation.
	netFaultDrops       atomic.Int64
	netFaultDups        atomic.Int64
	netFaultReorders    atomic.Int64
	netUnreachableDrops atomic.Int64
	mailboxDrops        atomic.Int64

	// Wire / coalescing instrumentation: transport-level batches (one
	// write or mailbox hop carrying ≥1 frames) and bytes on the wire per
	// message kind.
	netBatches     atomic.Int64
	netBatchedMsgs atomic.Int64
	netBatchHist   [len(BatchSizeBuckets) + 1]atomic.Int64

	// Control-plane batching (internal/node's GC stager and ack
	// piggybacking) instrumentation.
	decisionBatches   atomic.Int64
	decisionOps       atomic.Int64
	decisionBatchHist [len(BatchSizeBuckets) + 1]atomic.Int64
	ackPiggybacked    atomic.Int64

	wireMu          sync.Mutex
	wireBytesByKind map[string]int64
	wireMsgsByKind  map[string]int64

	// Protocol core (internal/protocol driven by internal/node)
	// instrumentation.
	protocolTransitions atomic.Int64
	timersArmed         atomic.Int64
	timersFired         atomic.Int64
	timersCanceled      atomic.Int64

	// Membership / migration (internal/membership driven by
	// internal/node's rebalancer) instrumentation.
	memberAnnounces  atomic.Int64
	ringChanges      atomic.Int64
	migrations       atomic.Int64
	migrationBytes   atomic.Int64
	migrationAborts  atomic.Int64
	adoptionRefusals atomic.Int64

	// WAL storage engine (internal/stable/wal) instrumentation.
	walRotations      atomic.Int64
	walCompactions    atomic.Int64
	walCompactedBytes atomic.Int64
	walCheckpoints    atomic.Int64
	fsyncs            atomic.Int64
	fsyncNanos        atomic.Int64

	// Replicated storage (internal/stable/repl) instrumentation.
	replBatches   atomic.Int64
	replAcks      atomic.Int64
	replSnapshots atomic.Int64

	latMu    sync.Mutex
	latCount int64
	latRing  []time.Duration
}

// Snapshot is a point-in-time copy of all counters.
type Snapshot struct {
	Messages          int64 // network messages delivered
	BytesSent         int64 // payload bytes put on the (simulated) wire
	AgentTransfers    int64 // agent containers moved to a *different* node
	AgentTransferByte int64 // encoded bytes of transferred agent containers
	StepTxns          int64 // committed step transactions
	StepTxnAborts     int64 // aborted step transactions
	CompTxns          int64 // committed compensation transactions
	CompTxnAborts     int64 // aborted compensation transactions
	CompOps           int64 // individual compensating operations executed
	RemoteCompBatches int64 // RCE lists shipped to a resource node (Fig. 5)
	Savepoints        int64 // savepoint entries written
	LogBytesPeak      int64 // largest encoded rollback log observed
	StableWrites      int64 // writes to stable storage
	StableBytes       int64 // bytes written to stable storage

	SchedClaims          int64 // queue entries claimed by scheduler workers
	SchedClaimConflicts  int64 // dispatches reordered past a conflicting task
	SchedLockAborts      int64 // step attempts aborted on 2PL lock conflicts
	SchedRetries         int64 // retryable step attempt failures
	SchedInFlightPeak    int64 // peak concurrently executing steps
	SchedQueueDepthPeak  int64 // peak observed input-queue depth
	SchedWorkerBusyNanos int64 // cumulative worker time spent executing

	NetFaultDrops       int64 // messages dropped by injected link faults
	NetFaultDups        int64 // duplicate deliveries injected by link faults
	NetFaultReorders    int64 // messages delayed past later traffic (reorder faults)
	NetUnreachableDrops int64 // messages lost to partitions / crashed destinations
	MailboxDrops        int64 // messages dropped at a full or closed mailbox

	NetBatches      int64                            // transport batches flushed (≥1 frames each)
	NetBatchedMsgs  int64                            // messages carried inside those batches
	NetBatchSize    [len(BatchSizeBuckets) + 1]int64 // frames-per-batch histogram (see BatchSizeBuckets)
	WireBytesByKind map[string]int64                 // payload bytes on the wire per message kind
	WireMsgsByKind  map[string]int64                 // messages on the wire per message kind

	DecisionBatches   int64                            // control-plane GC group commits flushed
	DecisionOps       int64                            // decision/done GC ops carried inside those commits
	DecisionBatchSize [len(BatchSizeBuckets) + 1]int64 // ops-per-commit histogram (see BatchSizeBuckets)
	AckPiggybacked    int64                            // acks/status replies that rode an existing outbound batch

	ProtocolTransitions int64 // protocol state-machine events processed
	TimersArmed         int64 // protocol timers armed on the wheel
	TimersFired         int64 // protocol timers that fired
	TimersCanceled      int64 // protocol timers canceled before firing

	MemberAnnounces  int64 // membership announcements received over the wire
	RingChanges      int64 // local ring rebuilds after a view change
	Migrations       int64 // agents migrated off this node by the rebalancer
	MigrationBytes   int64 // encoded container bytes moved by migrations
	MigrationAborts  int64 // migration hand-offs aborted (retried later)
	AdoptionRefusals int64 // duplicate adoptions refused by the epoch guard

	WALRotations      int64 // WAL segments sealed and rotated
	WALCompactions    int64 // cold segments compacted and deleted
	WALCompactedBytes int64 // garbage bytes reclaimed by compaction
	WALCheckpoints    int64 // index checkpoints persisted
	Fsyncs            int64 // fsync calls issued by stable storage
	FsyncNanos        int64 // cumulative time spent in fsync

	ReplBatches   int64 // committed batches shipped to follower replicas
	ReplAcks      int64 // follower flush acknowledgements received
	ReplSnapshots int64 // full-snapshot catch-ups streamed to followers
}

// IncMessages records one delivered network message carrying n payload bytes.
func (c *Counters) IncMessages(n int64) {
	c.messages.Add(1)
	c.bytesSent.Add(n)
}

// IncAgentTransfer records an agent container of n encoded bytes moving
// between two distinct nodes.
func (c *Counters) IncAgentTransfer(n int64) {
	c.agentTransfers.Add(1)
	c.agentTransferByte.Add(n)
}

// IncStepTxn records a committed step transaction.
func (c *Counters) IncStepTxn() { c.stepTxns.Add(1) }

// IncStepTxnAbort records an aborted step transaction.
func (c *Counters) IncStepTxnAbort() { c.stepTxnAborts.Add(1) }

// IncCompTxn records a committed compensation transaction.
func (c *Counters) IncCompTxn() { c.compTxns.Add(1) }

// IncCompTxnAbort records an aborted compensation transaction.
func (c *Counters) IncCompTxnAbort() { c.compTxnAborts.Add(1) }

// IncCompOps records n executed compensating operations.
func (c *Counters) IncCompOps(n int64) { c.compOps.Add(n) }

// IncRemoteCompBatch records one RCE list shipped to a resource node.
func (c *Counters) IncRemoteCompBatch() { c.remoteCompBatches.Add(1) }

// IncSavepoints records one savepoint entry written to a rollback log.
func (c *Counters) IncSavepoints() { c.savepoints.Add(1) }

// ObserveLogBytes tracks the peak encoded size of a rollback log.
func (c *Counters) ObserveLogBytes(n int64) {
	for {
		cur := c.logBytesPeak.Load()
		if n <= cur || c.logBytesPeak.CompareAndSwap(cur, n) {
			return
		}
	}
}

// IncStableWrite records one stable-storage write of n bytes.
func (c *Counters) IncStableWrite(n int64) {
	c.stableWrites.Add(1)
	c.stableBytes.Add(n)
}

// IncSchedClaim records one claimed queue entry and the queue depth
// observed at claim time (peak-tracked).
func (c *Counters) IncSchedClaim(depth int64) {
	c.schedClaims.Add(1)
	peakMax(&c.queueDepthPeak, depth)
}

// IncClaimConflict records one conflict-aware dispatch decision: a ready
// task was passed over because its resource set collided with running work.
func (c *Counters) IncClaimConflict() { c.claimConflicts.Add(1) }

// IncLockConflictAbort records a step attempt aborted by a 2PL lock
// conflict between concurrent transactions.
func (c *Counters) IncLockConflictAbort() { c.lockAborts.Add(1) }

// IncSchedRetry records a retryable step attempt failure.
func (c *Counters) IncSchedRetry() { c.schedRetries.Add(1) }

// IncNetFaultDrop records one message dropped by an injected link fault.
func (c *Counters) IncNetFaultDrop() { c.netFaultDrops.Add(1) }

// IncNetFaultDup records one injected duplicate delivery.
func (c *Counters) IncNetFaultDup() { c.netFaultDups.Add(1) }

// IncNetFaultReorder records one message held back past later traffic.
func (c *Counters) IncNetFaultReorder() { c.netFaultReorders.Add(1) }

// IncNetUnreachableDrop records one message lost to a partitioned link or
// a crashed destination.
func (c *Counters) IncNetUnreachableDrop() { c.netUnreachableDrops.Add(1) }

// IncMailboxDrop records one message dropped at a full or closed mailbox.
func (c *Counters) IncMailboxDrop() { c.mailboxDrops.Add(1) }

// BatchSizeBuckets holds the upper bounds of the frames-per-batch
// histogram cells; a batch of n frames lands in the first cell whose
// bound is ≥ n, and the histogram has one extra unbounded cell at the
// end for anything larger.
var BatchSizeBuckets = [...]int64{1, 2, 4, 8, 16, 32, 64}

// BatchBucketLabel returns the display label of histogram cell i.
func BatchBucketLabel(i int) string {
	if i >= len(BatchSizeBuckets) {
		return fmt.Sprintf(">%d", BatchSizeBuckets[len(BatchSizeBuckets)-1])
	}
	if i == 0 {
		return "1"
	}
	return fmt.Sprintf("%d-%d", BatchSizeBuckets[i-1]+1, BatchSizeBuckets[i])
}

// ObserveNetBatch records one transport batch carrying frames messages —
// one conn.Write on the TCP endpoint or one mailbox hop in the simulator.
func (c *Counters) ObserveNetBatch(frames int) {
	if frames <= 0 {
		return
	}
	c.netBatches.Add(1)
	c.netBatchedMsgs.Add(int64(frames))
	i := 0
	for i < len(BatchSizeBuckets) && int64(frames) > BatchSizeBuckets[i] {
		i++
	}
	c.netBatchHist[i].Add(1)
}

// ObserveDecisionBatch records one control-plane GC group commit
// carrying ops staged decision-record clears / done-record drops.
func (c *Counters) ObserveDecisionBatch(ops int) {
	if ops <= 0 {
		return
	}
	c.decisionBatches.Add(1)
	c.decisionOps.Add(int64(ops))
	i := 0
	for i < len(BatchSizeBuckets) && int64(ops) > BatchSizeBuckets[i] {
		i++
	}
	c.decisionBatchHist[i].Add(1)
}

// IncAckPiggybacked records n non-blocking replies that rode an outbound
// batch already headed to their peer instead of flushing their own frame.
func (c *Counters) IncAckPiggybacked(n int64) { c.ackPiggybacked.Add(n) }

// AddWireBytes attributes one wire message of n payload bytes to its
// message kind (every transport calls it exactly once per message, so
// it also maintains the per-kind message counts).
func (c *Counters) AddWireBytes(kind string, n int64) {
	c.wireMu.Lock()
	if c.wireBytesByKind == nil {
		c.wireBytesByKind = make(map[string]int64)
		c.wireMsgsByKind = make(map[string]int64)
	}
	c.wireBytesByKind[kind] += n
	c.wireMsgsByKind[kind]++
	c.wireMu.Unlock()
}

// IncProtocolTransition records one event processed by a node's
// protocol state machine.
func (c *Counters) IncProtocolTransition() { c.protocolTransitions.Add(1) }

// IncTimerArmed records one protocol timer armed (or re-armed) on a
// node's timer wheel.
func (c *Counters) IncTimerArmed() { c.timersArmed.Add(1) }

// IncTimerFired records one protocol timer firing.
func (c *Counters) IncTimerFired() { c.timersFired.Add(1) }

// IncTimerCanceled records one protocol timer canceled before firing.
func (c *Counters) IncTimerCanceled() { c.timersCanceled.Add(1) }

// IncMemberAnnounce records one membership announcement received.
func (c *Counters) IncMemberAnnounce() { c.memberAnnounces.Add(1) }

// IncRingChange records one local consistent-hash ring rebuild.
func (c *Counters) IncRingChange() { c.ringChanges.Add(1) }

// IncMigration records one agent migrated off this node (container of n
// encoded bytes handed to its new owner through the 2PC hand-off).
func (c *Counters) IncMigration(n int64) {
	c.migrations.Add(1)
	c.migrationBytes.Add(n)
}

// IncMigrationAbort records one migration hand-off that aborted (the
// rebalancer retries on the next sweep).
func (c *Counters) IncMigrationAbort() { c.migrationAborts.Add(1) }

// IncAdoptionRefusal records a duplicate adoption refused by the
// destination's agent-epoch guard.
func (c *Counters) IncAdoptionRefusal() { c.adoptionRefusals.Add(1) }

// IncWALRotation records one WAL segment sealed and a new one opened.
func (c *Counters) IncWALRotation() { c.walRotations.Add(1) }

// IncWALCompaction records one compacted segment and the garbage bytes it
// held (reclaimed disk space).
func (c *Counters) IncWALCompaction(reclaimed int64) {
	c.walCompactions.Add(1)
	c.walCompactedBytes.Add(reclaimed)
}

// IncWALCheckpoint records one persisted index checkpoint.
func (c *Counters) IncWALCheckpoint() { c.walCheckpoints.Add(1) }

// ObserveFsync records one fsync call and its duration.
func (c *Counters) ObserveFsync(d time.Duration) {
	c.fsyncs.Add(1)
	c.fsyncNanos.Add(int64(d))
}

// IncReplBatch records one committed batch shipped to follower replicas.
func (c *Counters) IncReplBatch() { c.replBatches.Add(1) }

// IncReplAck records one follower flush acknowledgement received.
func (c *Counters) IncReplAck() { c.replAcks.Add(1) }

// IncReplSnapshot records one full-snapshot catch-up streamed to a
// lagging or freshly (re)joined follower.
func (c *Counters) IncReplSnapshot() { c.replSnapshots.Add(1) }

// StepStarted marks one step entering execution; it returns the current
// in-flight count. Pair with StepFinished.
func (c *Counters) StepStarted() int64 {
	n := c.inFlight.Add(1)
	peakMax(&c.inFlightPeak, n)
	return n
}

// StepFinished marks one step leaving execution after busy time d,
// recording its latency for percentile reporting when ok.
func (c *Counters) StepFinished(d time.Duration, ok bool) {
	c.inFlight.Add(-1)
	c.workerBusyNanos.Add(int64(d))
	if !ok {
		return
	}
	c.latMu.Lock()
	if c.latRing == nil {
		c.latRing = make([]time.Duration, 0, latRingSize)
	}
	if len(c.latRing) < latRingSize {
		c.latRing = append(c.latRing, d)
	} else {
		c.latRing[c.latCount%latRingSize] = d
	}
	c.latCount++
	c.latMu.Unlock()
}

// InFlight returns the number of steps currently executing.
func (c *Counters) InFlight() int64 { return c.inFlight.Load() }

// LatencyBuckets holds the upper bounds of the step-latency histogram
// cells; observations above the last bound land in the overflow cell.
var LatencyBuckets = [...]time.Duration{
	100 * time.Microsecond, 300 * time.Microsecond,
	time.Millisecond, 3 * time.Millisecond, 10 * time.Millisecond,
	30 * time.Millisecond, 100 * time.Millisecond, 300 * time.Millisecond,
	time.Second, 3 * time.Second,
}

// LatencyBucketLabel returns a stable label for histogram cell i, e.g.
// "le_3ms" or "inf" for the overflow cell.
func LatencyBucketLabel(i int) string {
	if i >= len(LatencyBuckets) {
		return "inf"
	}
	return "le_" + LatencyBuckets[i].String()
}

// LatencySummary describes the distribution of the most recent
// successful step executions, computed from a bounded reservoir.
type LatencySummary struct {
	P50, P90, P99, P999 time.Duration
	Count               int64 // total observations, not bounded by the reservoir
	// Buckets is the reservoir histogram: cell i counts observations
	// ≤ LatencyBuckets[i]; the final cell is unbounded.
	Buckets [len(LatencyBuckets) + 1]int64
}

// StepLatency reports percentiles and a histogram of the most recent
// successful step executions (bounded reservoir) plus the total number
// observed.
func (c *Counters) StepLatency() LatencySummary {
	c.latMu.Lock()
	buf := append([]time.Duration(nil), c.latRing...)
	n := c.latCount
	c.latMu.Unlock()
	sum := LatencySummary{Count: n}
	if len(buf) == 0 {
		return sum
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	pct := func(p float64) time.Duration {
		i := int(p * float64(len(buf)-1))
		return buf[i]
	}
	sum.P50, sum.P90, sum.P99, sum.P999 = pct(0.50), pct(0.90), pct(0.99), pct(0.999)
	// buf is sorted, so walk the bucket bounds in lockstep.
	b := 0
	for _, d := range buf {
		for b < len(LatencyBuckets) && d > LatencyBuckets[b] {
			b++
		}
		sum.Buckets[b]++
	}
	return sum
}

func peakMax(peak *atomic.Int64, n int64) {
	for {
		cur := peak.Load()
		if n <= cur || peak.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Snapshot returns a copy of the current counter values.
func (c *Counters) Snapshot() Snapshot {
	var hist, dhist [len(BatchSizeBuckets) + 1]int64
	for i := range c.netBatchHist {
		hist[i] = c.netBatchHist[i].Load()
		dhist[i] = c.decisionBatchHist[i].Load()
	}
	c.wireMu.Lock()
	bytesByKind := copyKindMap(c.wireBytesByKind)
	msgsByKind := copyKindMap(c.wireMsgsByKind)
	c.wireMu.Unlock()
	return Snapshot{
		NetBatches:      c.netBatches.Load(),
		NetBatchedMsgs:  c.netBatchedMsgs.Load(),
		NetBatchSize:    hist,
		WireBytesByKind: bytesByKind,
		WireMsgsByKind:  msgsByKind,

		DecisionBatches:   c.decisionBatches.Load(),
		DecisionOps:       c.decisionOps.Load(),
		DecisionBatchSize: dhist,
		AckPiggybacked:    c.ackPiggybacked.Load(),

		Messages:          c.messages.Load(),
		BytesSent:         c.bytesSent.Load(),
		AgentTransfers:    c.agentTransfers.Load(),
		AgentTransferByte: c.agentTransferByte.Load(),
		StepTxns:          c.stepTxns.Load(),
		StepTxnAborts:     c.stepTxnAborts.Load(),
		CompTxns:          c.compTxns.Load(),
		CompTxnAborts:     c.compTxnAborts.Load(),
		CompOps:           c.compOps.Load(),
		RemoteCompBatches: c.remoteCompBatches.Load(),
		Savepoints:        c.savepoints.Load(),
		LogBytesPeak:      c.logBytesPeak.Load(),
		StableWrites:      c.stableWrites.Load(),
		StableBytes:       c.stableBytes.Load(),

		SchedClaims:          c.schedClaims.Load(),
		SchedClaimConflicts:  c.claimConflicts.Load(),
		SchedLockAborts:      c.lockAborts.Load(),
		SchedRetries:         c.schedRetries.Load(),
		SchedInFlightPeak:    c.inFlightPeak.Load(),
		SchedQueueDepthPeak:  c.queueDepthPeak.Load(),
		SchedWorkerBusyNanos: c.workerBusyNanos.Load(),

		NetFaultDrops:       c.netFaultDrops.Load(),
		NetFaultDups:        c.netFaultDups.Load(),
		NetFaultReorders:    c.netFaultReorders.Load(),
		NetUnreachableDrops: c.netUnreachableDrops.Load(),
		MailboxDrops:        c.mailboxDrops.Load(),

		ProtocolTransitions: c.protocolTransitions.Load(),
		TimersArmed:         c.timersArmed.Load(),
		TimersFired:         c.timersFired.Load(),
		TimersCanceled:      c.timersCanceled.Load(),

		MemberAnnounces:  c.memberAnnounces.Load(),
		RingChanges:      c.ringChanges.Load(),
		Migrations:       c.migrations.Load(),
		MigrationBytes:   c.migrationBytes.Load(),
		MigrationAborts:  c.migrationAborts.Load(),
		AdoptionRefusals: c.adoptionRefusals.Load(),

		WALRotations:      c.walRotations.Load(),
		WALCompactions:    c.walCompactions.Load(),
		WALCompactedBytes: c.walCompactedBytes.Load(),
		WALCheckpoints:    c.walCheckpoints.Load(),
		Fsyncs:            c.fsyncs.Load(),
		FsyncNanos:        c.fsyncNanos.Load(),

		ReplBatches:   c.replBatches.Load(),
		ReplAcks:      c.replAcks.Load(),
		ReplSnapshots: c.replSnapshots.Load(),
	}
}

// copyKindMap returns a copy of m, or nil if m is empty.
func copyKindMap(m map[string]int64) map[string]int64 {
	if len(m) == 0 {
		return nil
	}
	out := make(map[string]int64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// subKindMap returns the per-key difference s - o, dropping zero deltas
// and negating keys present only in o. Returns nil when every delta is
// zero (or both maps are empty) so that equal snapshots diff to the
// zero Snapshot.
func subKindMap(s, o map[string]int64) map[string]int64 {
	if len(s) == 0 && len(o) == 0 {
		return nil
	}
	out := make(map[string]int64, len(s))
	for k, v := range s {
		if d := v - o[k]; d != 0 {
			out[k] = d
		}
	}
	for k, v := range o {
		if _, ok := s[k]; !ok && v != 0 {
			out[k] = -v
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Sub returns the component-wise difference s - o.
func (s Snapshot) Sub(o Snapshot) Snapshot {
	var hist, dhist [len(BatchSizeBuckets) + 1]int64
	for i := range hist {
		hist[i] = s.NetBatchSize[i] - o.NetBatchSize[i]
		dhist[i] = s.DecisionBatchSize[i] - o.DecisionBatchSize[i]
	}
	return Snapshot{
		NetBatches:      s.NetBatches - o.NetBatches,
		NetBatchedMsgs:  s.NetBatchedMsgs - o.NetBatchedMsgs,
		NetBatchSize:    hist,
		WireBytesByKind: subKindMap(s.WireBytesByKind, o.WireBytesByKind),
		WireMsgsByKind:  subKindMap(s.WireMsgsByKind, o.WireMsgsByKind),

		DecisionBatches:   s.DecisionBatches - o.DecisionBatches,
		DecisionOps:       s.DecisionOps - o.DecisionOps,
		DecisionBatchSize: dhist,
		AckPiggybacked:    s.AckPiggybacked - o.AckPiggybacked,

		Messages:          s.Messages - o.Messages,
		BytesSent:         s.BytesSent - o.BytesSent,
		AgentTransfers:    s.AgentTransfers - o.AgentTransfers,
		AgentTransferByte: s.AgentTransferByte - o.AgentTransferByte,
		StepTxns:          s.StepTxns - o.StepTxns,
		StepTxnAborts:     s.StepTxnAborts - o.StepTxnAborts,
		CompTxns:          s.CompTxns - o.CompTxns,
		CompTxnAborts:     s.CompTxnAborts - o.CompTxnAborts,
		CompOps:           s.CompOps - o.CompOps,
		RemoteCompBatches: s.RemoteCompBatches - o.RemoteCompBatches,
		Savepoints:        s.Savepoints - o.Savepoints,
		LogBytesPeak:      s.LogBytesPeak, // peak is not differential
		StableWrites:      s.StableWrites - o.StableWrites,
		StableBytes:       s.StableBytes - o.StableBytes,

		SchedClaims:          s.SchedClaims - o.SchedClaims,
		SchedClaimConflicts:  s.SchedClaimConflicts - o.SchedClaimConflicts,
		SchedLockAborts:      s.SchedLockAborts - o.SchedLockAborts,
		SchedRetries:         s.SchedRetries - o.SchedRetries,
		SchedInFlightPeak:    s.SchedInFlightPeak, // peak is not differential
		SchedQueueDepthPeak:  s.SchedQueueDepthPeak,
		SchedWorkerBusyNanos: s.SchedWorkerBusyNanos - o.SchedWorkerBusyNanos,

		NetFaultDrops:       s.NetFaultDrops - o.NetFaultDrops,
		NetFaultDups:        s.NetFaultDups - o.NetFaultDups,
		NetFaultReorders:    s.NetFaultReorders - o.NetFaultReorders,
		NetUnreachableDrops: s.NetUnreachableDrops - o.NetUnreachableDrops,
		MailboxDrops:        s.MailboxDrops - o.MailboxDrops,

		ProtocolTransitions: s.ProtocolTransitions - o.ProtocolTransitions,
		TimersArmed:         s.TimersArmed - o.TimersArmed,
		TimersFired:         s.TimersFired - o.TimersFired,
		TimersCanceled:      s.TimersCanceled - o.TimersCanceled,

		MemberAnnounces:  s.MemberAnnounces - o.MemberAnnounces,
		RingChanges:      s.RingChanges - o.RingChanges,
		Migrations:       s.Migrations - o.Migrations,
		MigrationBytes:   s.MigrationBytes - o.MigrationBytes,
		MigrationAborts:  s.MigrationAborts - o.MigrationAborts,
		AdoptionRefusals: s.AdoptionRefusals - o.AdoptionRefusals,

		WALRotations:      s.WALRotations - o.WALRotations,
		WALCompactions:    s.WALCompactions - o.WALCompactions,
		WALCompactedBytes: s.WALCompactedBytes - o.WALCompactedBytes,
		WALCheckpoints:    s.WALCheckpoints - o.WALCheckpoints,
		Fsyncs:            s.Fsyncs - o.Fsyncs,
		FsyncNanos:        s.FsyncNanos - o.FsyncNanos,

		ReplBatches:   s.ReplBatches - o.ReplBatches,
		ReplAcks:      s.ReplAcks - o.ReplAcks,
		ReplSnapshots: s.ReplSnapshots - o.ReplSnapshots,
	}
}
