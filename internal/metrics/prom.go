package metrics

import (
	"fmt"
	"io"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"time"
)

// WritePrometheus renders a Snapshot plus a step-latency summary in the
// Prometheus text exposition format (version 0.0.4). The metric set is
// derived from the Snapshot struct by reflection so new counters appear
// on /metrics without touching this file:
//
//   - int64 fields become counters named repro_<snake_case>_total,
//     except fields whose name contains "Peak", which are gauges
//     (repro_<snake_case>) because they are not monotone across
//     Snapshot.Sub windows;
//   - map[string]int64 fields become one counter with a kind="…" label
//     per key, emitted in sorted key order;
//   - the NetBatchSize and DecisionBatchSize arrays become classic
//     cumulative histograms over BatchSizeBuckets with
//     _sum = NetBatchedMsgs / DecisionOps and
//     _count = NetBatches / DecisionBatches.
//
// The latency summary is emitted as repro_step_latency_seconds quantile
// samples plus the reservoir histogram as cumulative le="…" gauges.
// Output is fully deterministic for a given input, which the golden
// test relies on.
func WritePrometheus(w io.Writer, s Snapshot, lat LatencySummary) error {
	bw := &errWriter{w: w}
	v := reflect.ValueOf(s)
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		name := "repro_" + snakeCase(f.Name)
		switch {
		case f.Name == "NetBatchSize":
			writeBatchHistogram(bw, "repro_net_batch_size", s.NetBatchSize, s.NetBatchedMsgs, s.NetBatches)
		case f.Name == "DecisionBatchSize":
			writeBatchHistogram(bw, "repro_decision_batch_size", s.DecisionBatchSize, s.DecisionOps, s.DecisionBatches)
		case f.Type.Kind() == reflect.Int64:
			if strings.Contains(f.Name, "Peak") {
				bw.printf("# TYPE %s gauge\n%s %d\n", name, name, v.Field(i).Int())
			} else {
				bw.printf("# TYPE %s_total counter\n%s_total %d\n", name, name, v.Field(i).Int())
			}
		case f.Type.Kind() == reflect.Map:
			writeKindCounter(bw, name, v.Field(i).Interface().(map[string]int64))
		}
	}
	writeLatency(bw, lat)
	return bw.err
}

// errWriter folds write errors so the exposition loop stays linear.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

func writeKindCounter(w *errWriter, name string, m map[string]int64) {
	w.printf("# TYPE %s_total counter\n", name)
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		w.printf("%s_total{kind=%q} %d\n", name, k, m[k])
	}
}

func writeBatchHistogram(w *errWriter, name string, hist [len(BatchSizeBuckets) + 1]int64, sum, count int64) {
	w.printf("# TYPE %s histogram\n", name)
	var cum int64
	for i, n := range hist {
		cum += n
		le := "+Inf"
		if i < len(BatchSizeBuckets) {
			le = strconv.FormatInt(BatchSizeBuckets[i], 10)
		}
		w.printf("%s_bucket{le=%q} %d\n", name, le, cum)
	}
	w.printf("%s_sum %d\n%s_count %d\n", name, sum, name, count)
}

func writeLatency(w *errWriter, lat LatencySummary) {
	const name = "repro_step_latency_seconds"
	w.printf("# TYPE %s summary\n", name)
	for _, q := range []struct {
		q string
		d time.Duration
	}{{"0.5", lat.P50}, {"0.9", lat.P90}, {"0.99", lat.P99}, {"0.999", lat.P999}} {
		w.printf("%s{quantile=%q} %s\n", name, q.q, formatSeconds(q.d))
	}
	w.printf("%s_count %d\n", name, lat.Count)
	// The reservoir histogram is a sliding window, not a monotone
	// counter, so it is exposed as cumulative gauges rather than a
	// Prometheus histogram.
	const res = "repro_step_latency_reservoir"
	w.printf("# TYPE %s gauge\n", res)
	var cum int64
	for i, n := range lat.Buckets {
		cum += n
		le := "+Inf"
		if i < len(LatencyBuckets) {
			le = formatSeconds(LatencyBuckets[i])
		}
		w.printf("%s{le=%q} %d\n", res, le, cum)
	}
}

// formatSeconds renders a duration as a Prometheus float in seconds
// without scientific notation or trailing zeros.
func formatSeconds(d time.Duration) string {
	return strconv.FormatFloat(d.Seconds(), 'f', -1, 64)
}

// snakeCase converts a Go field name to snake_case, keeping acronym
// runs intact: "NetBatchedMsgs" → "net_batched_msgs", "WALRotations" →
// "wal_rotations", "SchedWorkerBusyNanos" → "sched_worker_busy_nanos".
func snakeCase(s string) string {
	var b strings.Builder
	rs := []rune(s)
	for i, r := range rs {
		if r >= 'A' && r <= 'Z' {
			// Start a new word at an upper preceded by a lower, or at
			// the last upper of an acronym run followed by a lower.
			if i > 0 && (isLower(rs[i-1]) || (i+1 < len(rs) && isLower(rs[i+1]))) {
				b.WriteByte('_')
			}
			b.WriteRune(r - 'A' + 'a')
		} else {
			b.WriteRune(r)
		}
	}
	return b.String()
}

func isLower(r rune) bool { return r >= 'a' && r <= 'z' }
