// Package membership grows the fixed 4-node wiring of the earlier PRs
// into a dynamic node set: a node-local membership view (join / leave /
// suspect, merged from flooded announcements over the ordinary wire
// layer) and a consistent-hash ring that places agent home queues by
// key instead of by static cluster.Options wiring.
//
// Everything here is deliberately passive and deterministic: the package
// holds no goroutines, no timers and no clock — views converge because
// every merge that changes a view re-broadcasts it (a join-semilattice
// flood), so the same event order yields the same view on every node,
// including under network.VirtualClock schedules.
package membership

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultVNodes is the fixed virtual-node count per member. 128 points
// per node keeps the ownership shares within a few percent of 1/N for
// the cluster sizes this repo simulates while keeping ring rebuilds
// (sort of N×128 points) trivially cheap.
const DefaultVNodes = 128

// hashKey is the stable placement hash: FNV-1a 64 followed by a
// splitmix64-style finalizer. The finalizer matters — raw FNV-1a moves a
// hash by only ~prime (≈2^40) when the last byte changes, so sequential
// keys ("agent0001", "agent0002", …) would cluster inside one ring arc
// and all land on the same owner. The avalanche spreads them uniformly.
// Stability matters as much as quality: every node must map the same key
// to the same point forever, across processes and releases — never
// change these constants.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

type point struct {
	hash  uint64
	owner string
}

// Ring is an immutable consistent-hash ring over a member set. Build one
// with NewRing; derive ownership with Owner and churn deltas with
// Changes. Immutability is what makes it safe to hand to the scheduler
// and the rebalancer without locks — a membership change builds a new
// Ring rather than mutating the old one.
type Ring struct {
	points  []point
	members []string // sorted, deduplicated
	vnodes  int
}

// NewRing builds a ring with vnodes virtual points per member (0 means
// DefaultVNodes). Member order does not matter; duplicates collapse.
func NewRing(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seen := make(map[string]bool, len(members))
	uniq := make([]string, 0, len(members))
	for _, m := range members {
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		uniq = append(uniq, m)
	}
	sort.Strings(uniq)
	r := &Ring{members: uniq, vnodes: vnodes}
	r.points = make([]point, 0, len(uniq)*vnodes)
	for _, m := range uniq {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, point{hashKey(m + "#" + strconv.Itoa(i)), m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.owner < b.owner // total order even on hash collisions
	})
	return r
}

// Owner returns the member owning key, or "" on an empty ring. The owner
// is the first virtual point at or clockwise after the key's hash.
func (r *Ring) Owner(key string) string {
	if r == nil || len(r.points) == 0 {
		return ""
	}
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap
	}
	return r.points[i].owner
}

// VNodes returns the virtual-point count per member.
func (r *Ring) VNodes() int {
	if r == nil {
		return 0
	}
	return r.vnodes
}

// Members returns the sorted member set (shared slice; do not mutate).
func (r *Ring) Members() []string {
	if r == nil {
		return nil
	}
	return r.members
}

// Shares returns each member's owned fraction of the hash space, summing
// to 1 on a non-empty ring. It is what /ring reports and what the
// bounded-movement tests bound.
func (r *Ring) Shares() map[string]float64 {
	out := make(map[string]float64)
	if r == nil || len(r.points) == 0 {
		return out
	}
	const whole = float64(1<<63) * 2 // 2^64
	for i, p := range r.points {
		var span uint64
		if i == 0 {
			// Arc from the last point, wrapping through 0, to the first.
			span = r.points[0].hash - r.points[len(r.points)-1].hash // wraps mod 2^64
		} else {
			span = p.hash - r.points[i-1].hash
		}
		out[p.owner] += float64(span) / whole
	}
	return out
}

// Change is one arc of the hash space whose owner differs between two
// rings: keys hashing into (Start, End] move From -> To.
type Change struct {
	Start, End uint64 // (Start, End] clockwise; End may wrap below Start
	From, To   string
}

// Changes diffs two rings and returns the arcs whose ownership moved.
// The union of the returned arcs is exactly the set of keys for which
// old.Owner != new.Owner, so a rebalancer walking the diff touches every
// displaced key and nothing else.
func Changes(old, new *Ring) []Change {
	if old == nil || new == nil || len(old.points) == 0 || len(new.points) == 0 {
		return nil
	}
	// Boundaries of ownership arcs are the union of both point sets.
	cuts := make([]uint64, 0, len(old.points)+len(new.points))
	for _, p := range old.points {
		cuts = append(cuts, p.hash)
	}
	for _, p := range new.points {
		cuts = append(cuts, p.hash)
	}
	sort.Slice(cuts, func(i, j int) bool { return cuts[i] < cuts[j] })
	cuts = dedupU64(cuts)

	ownerAt := func(r *Ring, h uint64) string {
		i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
		if i == len(r.points) {
			i = 0
		}
		return r.points[i].owner
	}
	var out []Change
	for i, end := range cuts {
		start := cuts[(i+len(cuts)-1)%len(cuts)] // previous cut (wraps)
		// Every key in (start, end] owns to the point at `end` in each
		// ring, because no boundary of either ring lies strictly inside.
		fo, no := ownerAt(old, end), ownerAt(new, end)
		if fo == no {
			continue
		}
		// Merge with the previous change when the arcs are adjacent and
		// carry the same movement (keeps the diff compact).
		if n := len(out); n > 0 && out[n-1].End == start && out[n-1].From == fo && out[n-1].To == no {
			out[n-1].End = end
			continue
		}
		out = append(out, Change{Start: start, End: end, From: fo, To: no})
	}
	return out
}

// MovedFraction is the fraction of the hash space whose owner differs
// between the rings — the quantity the "bounded movement" invariant
// limits to ~1/N on a single join or leave.
func MovedFraction(old, new *Ring) float64 {
	const whole = float64(1<<63) * 2
	var moved float64
	for _, c := range Changes(old, new) {
		moved += float64(c.End-c.Start) / whole // wraps mod 2^64
	}
	return moved
}

func dedupU64(s []uint64) []uint64 {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}
