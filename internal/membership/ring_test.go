package membership

import (
	"fmt"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("agent%05d", i)
	}
	return out
}

func names(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("w%d", i)
	}
	return out
}

// Ownership is a partition: every key has exactly one owner and that
// owner is a ring member — no orphan keys, no key owned twice.
func TestRingOwnershipIsPartition(t *testing.T) {
	r := NewRing(names(5), 0)
	members := map[string]bool{}
	for _, m := range r.Members() {
		members[m] = true
	}
	for _, k := range keys(10000) {
		o := r.Owner(k)
		if o == "" {
			t.Fatalf("key %s has no owner", k)
		}
		if !members[o] {
			t.Fatalf("key %s owned by non-member %q", k, o)
		}
		if again := r.Owner(k); again != o {
			t.Fatalf("key %s owner unstable: %q then %q", k, o, again)
		}
	}
}

// Two rings built from the same view agree on every key — ownership is a
// pure function of the member set, never of build order or node
// identity.
func TestRingDeterministicAcrossNodes(t *testing.T) {
	a := NewRing([]string{"w0", "w1", "w2", "w3"}, 0)
	b := NewRing([]string{"w3", "w1", "w0", "w2", "w1"}, 0) // shuffled + dup
	for _, k := range keys(5000) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("key %s: owners diverge (%q vs %q)", k, a.Owner(k), b.Owner(k))
		}
	}
}

// A single join or leave moves a bounded slice of the key space: roughly
// the joining/leaving node's share (~1/N), never a reshuffle. The bound
// below is 2x the fair share to absorb virtual-node variance.
func TestRingBoundedMovement(t *testing.T) {
	for _, n := range []int{3, 4, 8, 16} {
		old := NewRing(names(n), 0)
		joined := NewRing(append(names(n), "newcomer"), 0)
		fair := 1.0 / float64(n+1)
		if f := MovedFraction(old, joined); f > 2*fair {
			t.Fatalf("join at n=%d moved %.3f of the space, want <= %.3f", n, f, 2*fair)
		} else if f == 0 {
			t.Fatalf("join at n=%d moved nothing", n)
		}
		// Every moved key must move TO the newcomer on a join...
		for _, c := range Changes(old, joined) {
			if c.To != "newcomer" {
				t.Fatalf("join moved arc to %q, not the newcomer", c.To)
			}
		}
		// ...and FROM the leaver on a leave (the reverse diff).
		for _, c := range Changes(joined, old) {
			if c.From != "newcomer" {
				t.Fatalf("leave moved arc from %q, not the leaver", c.From)
			}
		}
		// Sampled cross-check: the Changes arcs are exactly the keys
		// whose Owner differs.
		moved := 0
		for _, k := range keys(4000) {
			if old.Owner(k) != joined.Owner(k) {
				moved++
				if joined.Owner(k) != "newcomer" {
					t.Fatalf("key %s moved to %q", k, joined.Owner(k))
				}
			}
		}
		if frac := float64(moved) / 4000; frac > 2*fair {
			t.Fatalf("join at n=%d moved %.3f of sampled keys, want <= %.3f", n, frac, 2*fair)
		}
	}
}

// Shares sum to 1 and stay within a sane factor of fair (vnode variance).
func TestRingShares(t *testing.T) {
	r := NewRing(names(5), 0)
	sum := 0.0
	for m, s := range r.Shares() {
		sum += s
		if s < 0.2/5 || s > 3.0/5 {
			t.Fatalf("member %s share %.4f wildly off fair %.4f", m, s, 0.2)
		}
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("shares sum to %.6f, want 1", sum)
	}
}

func TestRingEmptyAndNil(t *testing.T) {
	var nilRing *Ring
	if o := nilRing.Owner("x"); o != "" {
		t.Fatalf("nil ring owner = %q", o)
	}
	empty := NewRing(nil, 0)
	if o := empty.Owner("x"); o != "" {
		t.Fatalf("empty ring owner = %q", o)
	}
	if cs := Changes(empty, NewRing(names(2), 0)); cs != nil {
		t.Fatalf("changes vs empty ring = %v, want nil", cs)
	}
}
