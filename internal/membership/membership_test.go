package membership

import "testing"

func TestMergeSemilattice(t *testing.T) {
	a := Member{Name: "w0", Status: Alive, Epoch: 1}
	s := Member{Name: "w0", Status: Suspect, Epoch: 1}
	l := Member{Name: "w0", Status: Left, Epoch: 2}
	stale := Member{Name: "w0", Status: Alive, Epoch: 3}

	if got := merge(a, s); got != s {
		t.Fatalf("equal-epoch merge = %+v, want the more advanced status", got)
	}
	if got := merge(s, a); got != s {
		t.Fatalf("merge not commutative: %+v", got)
	}
	if got := merge(l, s); got != l {
		t.Fatalf("higher epoch lost: %+v", got)
	}
	// A later epoch resurrects deliberately (operator re-admits a node).
	if got := merge(l, stale); got != stale {
		t.Fatalf("epoch 3 should win over Left@2: %+v", got)
	}
	if got := merge(a, a); got != a {
		t.Fatalf("merge not idempotent: %+v", got)
	}
}

func TestManagerMergeAndFloodHints(t *testing.T) {
	m := NewManager("w0", 8, Member{Name: "w1"}, Member{Name: "w2"})
	if got, _ := m.View().Get("w0"); got.Epoch != 1 || got.Status != Alive {
		t.Fatalf("self entry = %+v", got)
	}

	// A remote view with news changes us; our extra knowledge marks the
	// remote stale so the caller replies (anti-entropy).
	changed, stale := m.Merge(View{Members: []Member{
		{Name: "w1", Status: Alive, Epoch: 1},
		{Name: "w3", Status: Alive, Epoch: 1},
	}})
	if !changed {
		t.Fatal("merge with news reported no change")
	}
	if !stale {
		t.Fatal("remote missing w0/w2 should read as stale")
	}

	// Re-merging the same view is a no-op (idempotent flood).
	if changed, _ := m.Merge(View{Members: []Member{
		{Name: "w1", Status: Alive, Epoch: 1},
		{Name: "w3", Status: Alive, Epoch: 1},
	}}); changed {
		t.Fatal("idempotent re-merge reported a change")
	}

	// A stale entry cannot downgrade a newer one.
	m.SetStatus("w3", Left)
	if changed, stale := m.Merge(View{Members: []Member{{Name: "w3", Status: Alive, Epoch: 1}}}); changed || !stale {
		t.Fatalf("stale merge changed=%v stale=%v, want false,true", changed, stale)
	}
	if m.Status("w3") != Left {
		t.Fatal("stale announcement resurrected a Left member")
	}
}

func TestManagerRingTracksStatus(t *testing.T) {
	m := NewManager("w0", 8, Member{Name: "w1"}, Member{Name: "w2"})
	inRing := func(name string) bool {
		for _, mm := range m.Ring().Members() {
			if mm == name {
				return true
			}
		}
		return false
	}
	if !inRing("w0") || !inRing("w1") || !inRing("w2") {
		t.Fatalf("seed members missing from ring: %v", m.Ring().Members())
	}
	// Suspect members keep their ring slice (temporary-fault model)...
	m.SetStatus("w1", Suspect)
	if !inRing("w1") {
		t.Fatal("suspect member dropped from ring")
	}
	// ...only Left removes them.
	m.SetStatus("w1", Left)
	if inRing("w1") {
		t.Fatal("left member still on ring")
	}
	if got := m.Peers(); len(got) != 1 || got[0] != "w2" {
		t.Fatalf("peers = %v, want [w2]", got)
	}
}

func TestManagerChangedSignal(t *testing.T) {
	m := NewManager("w0", 8)
	ch := m.Changed()
	select {
	case <-ch:
		t.Fatal("changed fired before any change")
	default:
	}
	m.SetStatus("w9", Alive)
	select {
	case <-ch:
	default:
		t.Fatal("changed did not fire on a view change")
	}
	// SetStatus to the same status is a no-op and must not signal.
	ch = m.Changed()
	if _, ok := m.SetStatus("w9", Alive); ok {
		t.Fatal("idempotent SetStatus reported a change")
	}
	select {
	case <-ch:
		t.Fatal("changed fired on a no-op")
	default:
	}
}

func TestManagerLeftAndConvergence(t *testing.T) {
	// Three managers converging by exchanging views pairwise in an
	// arbitrary order reach the same view — the semilattice property the
	// wire flood relies on.
	ms := []*Manager{
		NewManager("w0", 8, Member{Name: "w1"}, Member{Name: "w2"}),
		NewManager("w1", 8, Member{Name: "w0"}),
		NewManager("w2", 8),
	}
	ms[0].SetStatus("w0", Suspect)
	ms[2].SetStatus("w2", Left)
	if !ms[2].Left() {
		t.Fatal("w2 manager does not report itself Left")
	}
	for i := 0; i < 3; i++ { // a few rounds of all-pairs exchange
		for _, a := range ms {
			for _, b := range ms {
				b.Merge(a.View())
			}
		}
	}
	want := ms[0].View()
	for _, m := range ms[1:] {
		if !m.View().Equal(want) {
			t.Fatalf("views diverged:\n%v\nvs\n%v", want, m.View())
		}
	}
	if o := ms[0].Ring().Owner("k"); o == "w2" {
		t.Fatal("left node still owns keys after convergence")
	}
}
