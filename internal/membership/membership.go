package membership

import (
	"fmt"
	"sort"
	"sync"
)

// Status is a member's lifecycle state. Alive and Suspect members stay
// on the ring — the paper's fault model treats failures as temporary, so
// suspicion must not move an agent's home (that would turn every blip
// into a migration storm). Only Left removes a member from the ring;
// leaving is permanent and drains the node first.
type Status uint8

const (
	Alive Status = iota
	Suspect
	Left
)

func (s Status) String() string {
	switch s {
	case Alive:
		return "alive"
	case Suspect:
		return "suspect"
	case Left:
		return "left"
	default:
		return fmt.Sprintf("status(%d)", uint8(s))
	}
}

// Member is one node's entry in a view. Epoch is a per-member version
// bumped by the member itself (or the operator acting on it) whenever
// its status changes; merges take the higher epoch, so stale
// announcements can never resurrect a Left node or un-suspect a node
// behind its back.
type Member struct {
	Name   string
	Status Status
	Epoch  int64
}

// merge resolves two entries for the same member: higher epoch wins; at
// equal epochs the more advanced status wins (Left > Suspect > Alive).
// The operation is commutative, associative and idempotent — a
// join-semilattice — which is what makes flooding converge regardless of
// delivery order or duplication.
func merge(a, b Member) Member {
	if b.Epoch > a.Epoch {
		return b
	}
	if b.Epoch == a.Epoch && b.Status > a.Status {
		return b
	}
	return a
}

// View is a membership snapshot: one entry per known member, sorted by
// name. Views are value-like; Manager hands out copies.
type View struct {
	Members []Member
}

// Get returns the entry for name, if present.
func (v View) Get(name string) (Member, bool) {
	for _, m := range v.Members {
		if m.Name == name {
			return m, true
		}
	}
	return Member{}, false
}

// ringMembers lists the members that own ring space (Alive + Suspect).
func (v View) ringMembers() []string {
	out := make([]string, 0, len(v.Members))
	for _, m := range v.Members {
		if m.Status != Left {
			out = append(out, m.Name)
		}
	}
	return out
}

// Equal reports whether two views carry the same entries.
func (v View) Equal(o View) bool {
	if len(v.Members) != len(o.Members) {
		return false
	}
	for i := range v.Members {
		if v.Members[i] != o.Members[i] {
			return false
		}
	}
	return true
}

// Manager holds one node's membership view and its derived ring. It is
// pure state: the owning node feeds it announcements (Merge) and local
// transitions (SetStatus), and reads back the ring, the view and a
// change signal. All methods are safe for concurrent use.
type Manager struct {
	mu     sync.Mutex
	self   string
	vnodes int
	byName map[string]Member
	ring   *Ring
	// changed is a broadcast edge: closed and replaced whenever the view
	// changes. Waiters grab the current channel and select on it.
	changed chan struct{}
}

// NewManager builds a manager for node self seeded with the given
// members. Seeds with epoch 0 act as hints ("announce to these") that
// any real entry overrides; self is always present as Alive epoch 1.
func NewManager(self string, vnodes int, seed ...Member) *Manager {
	m := &Manager{
		self:    self,
		vnodes:  vnodes,
		byName:  make(map[string]Member, len(seed)+1),
		changed: make(chan struct{}),
	}
	for _, s := range seed {
		if s.Name == "" {
			continue
		}
		m.byName[s.Name] = s
	}
	if cur, ok := m.byName[self]; !ok || cur.Epoch < 1 {
		m.byName[self] = Member{Name: self, Status: Alive, Epoch: 1}
	}
	m.rebuildLocked()
	return m
}

// Self returns the owning node's name.
func (m *Manager) Self() string { return m.self }

// View returns a copy of the current view, sorted by member name.
func (m *Manager) View() View {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.viewLocked()
}

func (m *Manager) viewLocked() View {
	out := make([]Member, 0, len(m.byName))
	for _, e := range m.byName {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return View{Members: out}
}

// Ring returns the current ring (immutable; never nil).
func (m *Manager) Ring() *Ring {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ring
}

// Status returns the recorded status of name (Alive epoch 0 if unknown).
func (m *Manager) Status(name string) Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.byName[name].Status
}

// Left reports whether the owning node has announced its own departure —
// the node's drain condition.
func (m *Manager) Left() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.byName[m.self].Status == Left
}

// Changed returns a channel closed at the next view change. Grab a fresh
// one after every wake-up.
func (m *Manager) Changed() <-chan struct{} {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.changed
}

// Merge folds a remote view in, entry by entry. It returns whether the
// local view changed (caller should re-broadcast: the flood rule) and
// whether the remote view was missing anything the local one knows
// (caller should reply to the sender so a restarted or lagging node
// re-learns the present — the anti-entropy rule).
func (m *Manager) Merge(remote View) (changed, remoteStale bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	seen := make(map[string]bool, len(remote.Members))
	for _, r := range remote.Members {
		if r.Name == "" {
			continue
		}
		seen[r.Name] = true
		cur, ok := m.byName[r.Name]
		if !ok {
			m.byName[r.Name] = r
			changed = true
			continue
		}
		next := merge(cur, r)
		if next != cur {
			m.byName[r.Name] = next
			changed = true
		}
		if merge(r, cur) != r { // local entry is ahead of the remote one
			remoteStale = true
		}
	}
	for name := range m.byName {
		if !seen[name] {
			remoteStale = true
		}
	}
	if changed {
		m.rebuildLocked()
		m.signalLocked()
	}
	return changed, remoteStale
}

// SetStatus records a local status transition for name, bumping its
// epoch past everything seen so far, and returns the new entry (to be
// announced). Setting the current status again is a no-op.
func (m *Manager) SetStatus(name string, s Status) (Member, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	cur := m.byName[name]
	if cur.Name != "" && cur.Status == s {
		return cur, false
	}
	next := Member{Name: name, Status: s, Epoch: cur.Epoch + 1}
	m.byName[name] = next
	m.rebuildLocked()
	m.signalLocked()
	return next, true
}

// Peers lists every known member except self that has not Left — the
// announcement fan-out set.
func (m *Manager) Peers() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.byName))
	for name, e := range m.byName {
		if name == m.self || e.Status == Left {
			continue
		}
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func (m *Manager) rebuildLocked() {
	m.ring = NewRing(m.viewLocked().ringMembers(), m.vnodes)
}

func (m *Manager) signalLocked() {
	close(m.changed)
	m.changed = make(chan struct{})
}
