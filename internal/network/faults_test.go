package network

import (
	"testing"
	"time"

	"repro/internal/metrics"
)

func TestLinkFaultDropCountedNotSilent(t *testing.T) {
	counters := &metrics.Counters{}
	sim := NewSim(SimConfig{Counters: counters})
	defer sim.Close()
	a, _ := sim.Endpoint("a")
	if _, err := sim.Endpoint("b"); err != nil {
		t.Fatal(err)
	}
	sim.SetLinkFaults("a", "b", LinkFaults{Drop: 1.0})
	const n = 7
	for i := 0; i < n; i++ {
		if err := a.Send("b", "k", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	s := counters.Snapshot()
	if s.NetFaultDrops != n {
		t.Errorf("NetFaultDrops = %d, want %d", s.NetFaultDrops, n)
	}
	if s.Messages != 0 {
		t.Errorf("Messages = %d, want 0 (all dropped before the wire)", s.Messages)
	}
	if st := sim.LinkStats("a", "b"); st.Drops != n {
		t.Errorf("link drops = %d, want %d", st.Drops, n)
	}
	// Clearing the faults restores delivery.
	sim.SetLinkFaults("a", "b", LinkFaults{})
	ep, _ := sim.Endpoint("b")
	if err := a.Send("b", "k", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, ok := recvOne(t, ep, time.Second); !ok {
		t.Fatal("message lost after faults cleared")
	}
}

func TestLinkFaultDuplicate(t *testing.T) {
	counters := &metrics.Counters{}
	sim := NewSim(SimConfig{Counters: counters})
	defer sim.Close()
	a, _ := sim.Endpoint("a")
	b, _ := sim.Endpoint("b")
	sim.SetLinkFaults("a", "b", LinkFaults{Duplicate: 1.0})
	if err := a.Send("b", "k", []byte("x")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, ok := recvOne(t, b, time.Second); !ok {
			t.Fatalf("copy %d never arrived", i)
		}
	}
	s := counters.Snapshot()
	if s.NetFaultDups != 1 {
		t.Errorf("NetFaultDups = %d, want 1", s.NetFaultDups)
	}
	if st := sim.LinkStats("a", "b"); st.Dups != 1 {
		t.Errorf("link dups = %d, want 1", st.Dups)
	}
}

func TestLinkFaultReorderOvertakes(t *testing.T) {
	counters := &metrics.Counters{}
	sim := NewSim(SimConfig{Counters: counters})
	defer sim.Close()
	a, _ := sim.Endpoint("a")
	b, _ := sim.Endpoint("b")
	// First message held back 30ms; second sent fault-free right after.
	sim.SetLinkFaults("a", "b", LinkFaults{Reorder: 1.0, Delay: 30 * time.Millisecond})
	if err := a.Send("b", "k", []byte("slow")); err != nil {
		t.Fatal(err)
	}
	sim.SetLinkFaults("a", "b", LinkFaults{})
	if err := a.Send("b", "k", []byte("fast")); err != nil {
		t.Fatal(err)
	}
	first, ok := recvOne(t, b, time.Second)
	if !ok || string(first.Payload) != "fast" {
		t.Fatalf("first delivery = %+v, want the overtaking message", first)
	}
	second, ok := recvOne(t, b, time.Second)
	if !ok || string(second.Payload) != "slow" {
		t.Fatalf("second delivery = %+v, want the held-back message", second)
	}
	if got := counters.Snapshot().NetFaultReorders; got != 1 {
		t.Errorf("NetFaultReorders = %d, want 1", got)
	}
}

// TestFaultSeedReproducible: the same FaultSeed must make the same
// drop/duplicate decisions — the contract chaos seed-replay rests on.
func TestFaultSeedReproducible(t *testing.T) {
	run := func() LinkStats {
		sim := NewSim(SimConfig{FaultSeed: 42})
		defer sim.Close()
		a, _ := sim.Endpoint("a")
		if _, err := sim.Endpoint("b"); err != nil {
			t.Fatal(err)
		}
		sim.SetLinkFaults("a", "b", LinkFaults{Drop: 0.4, Duplicate: 0.3})
		for i := 0; i < 200; i++ {
			if err := a.Send("b", "k", nil); err != nil {
				t.Fatal(err)
			}
		}
		return sim.LinkStats("a", "b")
	}
	first, second := run(), run()
	if first != second {
		t.Errorf("same seed diverged: %+v vs %+v", first, second)
	}
	if first.Drops == 0 || first.Dups == 0 {
		t.Errorf("faults never fired: %+v", first)
	}
}

func TestUnreachableDropsCounted(t *testing.T) {
	counters := &metrics.Counters{}
	sim := NewSim(SimConfig{Counters: counters})
	defer sim.Close()
	a, _ := sim.Endpoint("a")
	if _, err := sim.Endpoint("b"); err != nil {
		t.Fatal(err)
	}
	sim.SetLink("a", "b", false)
	if err := a.Send("b", "k", nil); err != nil {
		t.Fatal(err)
	}
	if got := counters.Snapshot().NetUnreachableDrops; got != 1 {
		t.Errorf("after partition: NetUnreachableDrops = %d, want 1", got)
	}
	sim.SetLink("a", "b", true)
	sim.Crash("b")
	if err := a.Send("b", "k", nil); err != nil {
		t.Fatal(err)
	}
	if got := counters.Snapshot().NetUnreachableDrops; got != 2 {
		t.Errorf("after crash: NetUnreachableDrops = %d, want 2", got)
	}
}

// TestMailboxOverflowCounted: with a bounded mailbox, overflowing messages
// are dropped through the guarded path and counted, never lost silently.
func TestMailboxOverflowCounted(t *testing.T) {
	counters := &metrics.Counters{}
	sim := NewSim(SimConfig{Counters: counters, MailboxCap: 2})
	defer sim.Close()
	a, _ := sim.Endpoint("a")
	b, _ := sim.Endpoint("b")
	const n = 10
	for i := 0; i < n; i++ {
		if err := a.Send("b", "k", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Nobody read yet: at most cap(2)+1 (one resting in the pump) got
	// through; the rest must be on the drop counter.
	drops := counters.Snapshot().MailboxDrops
	if drops < n-3 {
		t.Errorf("MailboxDrops = %d, want >= %d", drops, n-3)
	}
	var delivered int64
	for {
		if _, ok := recvOne(t, b, 100*time.Millisecond); !ok {
			break
		}
		delivered++
	}
	if delivered+drops != n {
		t.Errorf("delivered %d + dropped %d != sent %d", delivered, drops, n)
	}
}

// TestVirtualClockDelivery: with a virtual clock, latency-delayed messages
// sit undelivered until the clock is advanced — deterministic time.
func TestVirtualClockDelivery(t *testing.T) {
	vc := NewVirtualClock(time.Time{})
	sim := NewSim(SimConfig{Latency: 10 * time.Millisecond, Clock: vc})
	defer sim.Close()
	a, _ := sim.Endpoint("a")
	b, _ := sim.Endpoint("b")
	if err := a.Send("b", "k", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, ok := recvOne(t, b, 50*time.Millisecond); ok {
		t.Fatal("message delivered before the virtual clock advanced")
	}
	if vc.Pending() != 1 {
		t.Fatalf("pending timers = %d, want 1", vc.Pending())
	}
	vc.Advance(10 * time.Millisecond)
	if _, ok := recvOne(t, b, time.Second); !ok {
		t.Fatal("message not delivered after Advance")
	}
}

func TestVirtualClockFiresInDeadlineOrder(t *testing.T) {
	vc := NewVirtualClock(time.Time{})
	late := vc.After(30 * time.Millisecond)
	early := vc.After(10 * time.Millisecond)
	vc.Advance(5 * time.Millisecond)
	select {
	case <-early:
		t.Fatal("timer fired early")
	default:
	}
	vc.Advance(25 * time.Millisecond)
	select {
	case <-early:
	default:
		t.Fatal("early timer did not fire")
	}
	select {
	case <-late:
	default:
		t.Fatal("late timer did not fire")
	}
	if got := vc.Now(); got != (time.Time{}).Add(30*time.Millisecond) {
		t.Errorf("Now = %v", got)
	}
	if ch := vc.After(0); ch == nil {
		t.Fatal("After(0) nil")
	} else {
		select {
		case <-ch:
		default:
			t.Fatal("After(0) did not fire immediately")
		}
	}
}
