// Package network provides the message transport connecting nodes.
//
// The paper's prototype ran on a real LAN. For controlled, reproducible
// experiments this package implements a simulated network with per-message
// latency, byte accounting, link partitions and node crash semantics
// (messages to a crashed node are dropped, mirroring a down host). The
// Endpoint interface is also implemented by a TCP transport (tcp.go) so the
// same node runtime runs across real processes.
package network

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Message is one datagram between two named nodes. Delivery within the
// simulator is reliable and FIFO per sender unless a fault is injected;
// the paper assumes reliable data transfer (§4.3).
type Message struct {
	From    string
	To      string
	Kind    string
	Payload []byte
}

// Endpoint is one node's attachment to the network.
type Endpoint interface {
	// Name returns the node name this endpoint is bound to.
	Name() string
	// Send transmits a message. It returns an error only for permanent
	// conditions (unknown destination, closed network); messages lost to
	// injected faults are dropped silently, as on a real network.
	Send(to, kind string, payload []byte) error
	// Recv returns the channel of inbound messages. The channel is closed
	// when the endpoint is detached or the network shuts down.
	Recv() <-chan Message
}

// Errors returned by the simulated network.
var (
	ErrUnknownNode   = errors.New("network: unknown node")
	ErrNetworkClosed = errors.New("network: closed")
)

// SimConfig configures a simulated network.
type SimConfig struct {
	// Latency is the one-way delivery delay applied to every message.
	// Zero delivers synchronously (still via the mailbox, never inline).
	Latency time.Duration
	// Counters receives message/byte accounting; may be nil.
	Counters *metrics.Counters
}

// Sim is an in-process network connecting named endpoints.
type Sim struct {
	cfg SimConfig

	mu      sync.Mutex
	eps     map[string]*simEndpoint
	down    map[string]bool            // crashed nodes
	epoch   map[string]int             // incarnation per node; bumped by Crash
	blocked map[string]map[string]bool // symmetric link partitions
	closed  bool

	wg   sync.WaitGroup // in-flight delayed deliveries
	stop chan struct{}
}

// NewSim creates an empty simulated network.
func NewSim(cfg SimConfig) *Sim {
	return &Sim{
		cfg:     cfg,
		eps:     make(map[string]*simEndpoint),
		down:    make(map[string]bool),
		epoch:   make(map[string]int),
		blocked: make(map[string]map[string]bool),
		stop:    make(chan struct{}),
	}
}

// Endpoint attaches (or re-attaches) the named node and returns its
// endpoint. Re-attaching replaces the previous endpoint: its Recv channel
// is closed and queued messages are discarded, modelling the loss of
// volatile state on a crash/restart.
func (s *Sim) Endpoint(name string) (Endpoint, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrNetworkClosed
	}
	if old, ok := s.eps[name]; ok {
		old.close()
	}
	ep := newSimEndpoint(name, s)
	s.eps[name] = ep
	delete(s.down, name)
	return ep, nil
}

// Crash marks a node as down: its endpoint is detached, all messages to it
// are dropped until Endpoint is called again for the same name, and
// messages already in flight are lost (they were addressed to the previous
// incarnation).
func (s *Sim) Crash(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ep, ok := s.eps[name]; ok {
		ep.close()
		delete(s.eps, name)
	}
	s.down[name] = true
	s.epoch[name]++
}

// SetLink enables or disables the (symmetric) link between nodes a and b.
func (s *Sim) SetLink(a, b string, up bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if up {
		delete(s.blockedFor(a), b)
		delete(s.blockedFor(b), a)
		return
	}
	s.blockedFor(a)[b] = true
	s.blockedFor(b)[a] = true
}

func (s *Sim) blockedFor(name string) map[string]bool {
	m := s.blocked[name]
	if m == nil {
		m = make(map[string]bool)
		s.blocked[name] = m
	}
	return m
}

// Close shuts the network down, waits for in-flight deliveries to drain and
// closes all endpoint channels.
func (s *Sim) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.stop)
	eps := make([]*simEndpoint, 0, len(s.eps))
	for _, ep := range s.eps {
		eps = append(eps, ep)
	}
	s.eps = make(map[string]*simEndpoint)
	s.mu.Unlock()

	s.wg.Wait()
	for _, ep := range eps {
		ep.close()
	}
}

// send routes a message, applying faults and latency.
func (s *Sim) send(msg Message) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrNetworkClosed
	}
	if s.blocked[msg.From][msg.To] {
		s.mu.Unlock()
		return nil // partitioned: silently lost
	}
	if s.down[msg.To] {
		s.mu.Unlock()
		return nil // destination crashed: silently lost
	}
	if _, ok := s.eps[msg.To]; !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownNode, msg.To)
	}
	lat := s.cfg.Latency
	epoch := s.epoch[msg.To]
	s.mu.Unlock()

	if s.cfg.Counters != nil {
		s.cfg.Counters.IncMessages(int64(len(msg.Payload)))
	}
	if lat <= 0 {
		s.deliver(msg, epoch)
		return nil
	}
	s.wg.Add(1)
	timer := time.NewTimer(lat)
	go func() {
		defer s.wg.Done()
		defer timer.Stop()
		select {
		case <-timer.C:
			s.deliver(msg, epoch)
		case <-s.stop:
		}
	}()
	return nil
}

// deliver places a message in the destination mailbox, re-checking faults
// at delivery time: messages in flight when the destination crashed are
// lost even if a new incarnation is already up (epoch mismatch).
func (s *Sim) deliver(msg Message, epoch int) {
	s.mu.Lock()
	ep, ok := s.eps[msg.To]
	if s.closed || !ok || s.down[msg.To] || s.epoch[msg.To] != epoch || s.blocked[msg.From][msg.To] {
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
	ep.enqueue(msg)
}

// simEndpoint is one node's attachment to the simulated network. Its
// unbounded mailbox ensures senders in the protocol never block on a slow
// receiver — otherwise an injected crash of the receiver could wedge the
// sender's step transaction forever.
type simEndpoint struct {
	name string
	sim  *Sim
	mb   *mailbox
}

var _ Endpoint = (*simEndpoint)(nil)

func newSimEndpoint(name string, sim *Sim) *simEndpoint {
	return &simEndpoint{name: name, sim: sim, mb: newMailbox()}
}

func (e *simEndpoint) Name() string { return e.name }

func (e *simEndpoint) Send(to, kind string, payload []byte) error {
	return e.sim.send(Message{From: e.name, To: to, Kind: kind, Payload: payload})
}

func (e *simEndpoint) Recv() <-chan Message { return e.mb.Recv() }

func (e *simEndpoint) enqueue(msg Message) { e.mb.enqueue(msg) }

func (e *simEndpoint) close() { e.mb.close() }
