// Package network provides the message transport connecting nodes.
//
// The paper's prototype ran on a real LAN. For controlled, reproducible
// experiments this package implements a simulated network with per-message
// latency, byte accounting, link partitions and node crash semantics
// (messages to a crashed node are dropped, mirroring a down host). The
// Endpoint interface is also implemented by a TCP transport (tcp.go) so the
// same node runtime runs across real processes.
package network

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Message is one datagram between two named nodes. Delivery within the
// simulator is reliable and FIFO per sender unless a fault is injected;
// the paper assumes reliable data transfer (§4.3).
type Message struct {
	From    string
	To      string
	Kind    string
	Payload []byte
}

// Endpoint is one node's attachment to the network.
type Endpoint interface {
	// Name returns the node name this endpoint is bound to.
	Name() string
	// Send transmits a message. It returns an error only for permanent
	// conditions (unknown destination, closed network); messages lost to
	// injected faults are dropped silently, as on a real network.
	Send(to, kind string, payload []byte) error
	// Recv returns the channel of inbound messages. The channel is closed
	// when the endpoint is detached or the network shuts down.
	Recv() <-chan Message
}

// Outgoing is one message of a same-destination batch.
type Outgoing struct {
	Kind    string
	Payload []byte
}

// BatchSender is implemented by endpoints that can deliver a batch of
// same-destination messages in one transport hop (one mailbox pass in
// the simulator, one coalesced write on TCP). Semantics per message are
// identical to Send called in order; only the transport cost is shared.
type BatchSender interface {
	SendBatch(to string, msgs []Outgoing) error
}

// SendAll delivers a same-destination batch through ep, using its
// BatchSender fast path when available and falling back to per-message
// Send otherwise.
func SendAll(ep Endpoint, to string, msgs []Outgoing) error {
	if len(msgs) == 1 {
		return ep.Send(to, msgs[0].Kind, msgs[0].Payload)
	}
	if bs, ok := ep.(BatchSender); ok {
		return bs.SendBatch(to, msgs)
	}
	for _, m := range msgs {
		if err := ep.Send(to, m.Kind, m.Payload); err != nil {
			return err
		}
	}
	return nil
}

// Errors returned by the simulated network.
var (
	ErrUnknownNode   = errors.New("network: unknown node")
	ErrNetworkClosed = errors.New("network: closed")
)

// hostOf maps an endpoint name to the host (node) it lives on. A node
// may attach several endpoints — e.g. "w1" for the protocol plane and
// "w1!repl" for the storage replication plane — that share the node's
// fate: one partition blocks both, one crash detaches both. The host is
// the name up to the first '!'.
func hostOf(name string) string {
	if i := strings.IndexByte(name, '!'); i >= 0 {
		return name[:i]
	}
	return name
}

// SimConfig configures a simulated network.
type SimConfig struct {
	// Latency is the one-way delivery delay applied to every message.
	// Zero delivers synchronously (still via the mailbox, never inline).
	Latency time.Duration
	// Counters receives message/byte accounting; may be nil.
	Counters *metrics.Counters
	// FaultSeed seeds the RNG driving probabilistic link faults, making a
	// fault run reproducible. Zero seeds with 1.
	FaultSeed int64
	// MailboxCap bounds each endpoint's inbound mailbox; messages
	// arriving at a full mailbox are dropped and counted
	// (Counters.MailboxDrops). Zero keeps the mailbox unbounded.
	MailboxCap int
	// Clock drives delayed deliveries; nil uses the wall clock. A
	// VirtualClock makes latency-delayed delivery deterministic.
	Clock Clock
}

// LinkFaults configures probabilistic fault injection on one directed
// link. The zero value injects nothing.
type LinkFaults struct {
	// Drop is the probability a message on the link is lost.
	Drop float64
	// Duplicate is the probability a message is delivered twice.
	Duplicate float64
	// Reorder is the probability a message is held back by Delay so
	// later messages on the link overtake it.
	Reorder float64
	// Delay is the hold-back applied to reordered messages; zero
	// defaults to 1ms plus four times the base latency.
	Delay time.Duration
	// Extra is added to every message's latency (a latency spike).
	Extra time.Duration
}

// Active reports whether any fault is configured.
func (f LinkFaults) Active() bool {
	return f.Drop > 0 || f.Duplicate > 0 || f.Reorder > 0 || f.Extra > 0
}

// LinkStats counts the faults injected on one directed link.
type LinkStats struct {
	Drops    int64 // messages dropped
	Dups     int64 // duplicate deliveries injected
	Reorders int64 // messages held back past later traffic
}

func (s LinkStats) add(o LinkStats) LinkStats {
	return LinkStats{Drops: s.Drops + o.Drops, Dups: s.Dups + o.Dups, Reorders: s.Reorders + o.Reorders}
}

// Sim is an in-process network connecting named endpoints.
type Sim struct {
	cfg   SimConfig
	clock Clock

	mu      sync.Mutex
	eps     map[string]*simEndpoint
	down    map[string]bool                  // crashed nodes
	epoch   map[string]int                   // incarnation per node; bumped by Crash
	blocked map[string]map[string]bool       // symmetric link partitions
	faults  map[string]map[string]LinkFaults // directed link fault injection
	stats   map[string]map[string]*LinkStats // injected-fault accounting per link
	rng     *rand.Rand                       // fault decisions; guarded by mu
	closed  bool

	wg   sync.WaitGroup // in-flight delayed deliveries
	stop chan struct{}
}

// NewSim creates an empty simulated network.
func NewSim(cfg SimConfig) *Sim {
	seed := cfg.FaultSeed
	if seed == 0 {
		seed = 1
	}
	clock := cfg.Clock
	if clock == nil {
		clock = WallClock()
	}
	return &Sim{
		cfg:     cfg,
		clock:   clock,
		eps:     make(map[string]*simEndpoint),
		down:    make(map[string]bool),
		epoch:   make(map[string]int),
		blocked: make(map[string]map[string]bool),
		faults:  make(map[string]map[string]LinkFaults),
		stats:   make(map[string]map[string]*LinkStats),
		rng:     rand.New(rand.NewSource(seed)),
		stop:    make(chan struct{}),
	}
}

// Endpoint attaches (or re-attaches) the named node and returns its
// endpoint. Re-attaching replaces the previous endpoint: its Recv channel
// is closed and queued messages are discarded, modelling the loss of
// volatile state on a crash/restart.
func (s *Sim) Endpoint(name string) (Endpoint, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrNetworkClosed
	}
	if old, ok := s.eps[name]; ok {
		old.close()
	}
	ep := newSimEndpoint(name, s)
	s.eps[name] = ep
	delete(s.down, hostOf(name))
	return ep, nil
}

// Crash marks a node as down: every endpoint attached to the host is
// detached, all messages to or from it are dropped until Endpoint is
// called again for the same host, and messages already in flight toward
// it are lost (they were addressed to the previous incarnation).
func (s *Sim) Crash(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for epName, ep := range s.eps {
		if hostOf(epName) == name {
			ep.close()
			delete(s.eps, epName)
			s.epoch[epName]++
		}
	}
	s.down[name] = true
	s.epoch[name]++
}

// SetLink enables or disables the (symmetric) link between nodes a and b.
func (s *Sim) SetLink(a, b string, up bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if up {
		delete(s.blockedFor(a), b)
		delete(s.blockedFor(b), a)
		return
	}
	s.blockedFor(a)[b] = true
	s.blockedFor(b)[a] = true
}

func (s *Sim) blockedFor(name string) map[string]bool {
	m := s.blocked[name]
	if m == nil {
		m = make(map[string]bool)
		s.blocked[name] = m
	}
	return m
}

// SetLinkFaults installs fault injection on the directed link from → to
// (a zero LinkFaults removes it). Faults apply on top of partitions: a
// blocked link loses everything regardless.
func (s *Sim) SetLinkFaults(from, to string, f LinkFaults) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !f.Active() {
		if m, ok := s.faults[from]; ok {
			delete(m, to)
			if len(m) == 0 {
				delete(s.faults, from)
			}
		}
		return
	}
	m := s.faults[from]
	if m == nil {
		m = make(map[string]LinkFaults)
		s.faults[from] = m
	}
	m[to] = f
}

// ClearLinkFaults removes all installed link faults.
func (s *Sim) ClearLinkFaults() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.faults = make(map[string]map[string]LinkFaults)
}

// HealAll removes every link partition.
func (s *Sim) HealAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.blocked = make(map[string]map[string]bool)
}

// LinkStats returns the injected-fault counts of the directed link
// from → to.
func (s *Sim) LinkStats(from, to string) LinkStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if st := s.stats[from][to]; st != nil {
		return *st
	}
	return LinkStats{}
}

// TotalLinkStats returns the injected-fault counts summed over all links.
func (s *Sim) TotalLinkStats() LinkStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total LinkStats
	for _, m := range s.stats {
		for _, st := range m {
			total = total.add(*st)
		}
	}
	return total
}

// statsFor returns the mutable stats cell of one directed link. Caller
// holds s.mu.
func (s *Sim) statsFor(from, to string) *LinkStats {
	m := s.stats[from]
	if m == nil {
		m = make(map[string]*LinkStats)
		s.stats[from] = m
	}
	st := m[to]
	if st == nil {
		st = &LinkStats{}
		m[to] = st
	}
	return st
}

// Close shuts the network down, waits for in-flight deliveries to drain and
// closes all endpoint channels.
func (s *Sim) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.stop)
	eps := make([]*simEndpoint, 0, len(s.eps))
	for _, ep := range s.eps {
		eps = append(eps, ep)
	}
	s.eps = make(map[string]*simEndpoint)
	s.mu.Unlock()

	s.wg.Wait()
	for _, ep := range eps {
		ep.close()
	}
}

// send routes a message, applying faults and latency. Every injected or
// topological loss is counted — faults must never vanish silently, or a
// chaos run cannot be audited against its schedule.
func (s *Sim) send(msg Message) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrNetworkClosed
	}
	hostFrom, hostTo := hostOf(msg.From), hostOf(msg.To)
	if s.blocked[hostFrom][hostTo] || s.down[hostTo] || s.down[hostFrom] {
		s.mu.Unlock()
		// Partitioned link or crashed host on either end: lost, and
		// counted. A crashed sender cannot transmit — its endpoint
		// object may survive in a stopping goroutine, but the host it
		// modeled is gone.
		if s.cfg.Counters != nil {
			s.cfg.Counters.IncNetUnreachableDrop()
		}
		return nil
	}
	if _, ok := s.eps[msg.To]; !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownNode, msg.To)
	}
	lat := s.cfg.Latency
	var dup, reorder bool
	if f := s.faults[hostFrom][hostTo]; f.Active() {
		st := s.statsFor(hostFrom, hostTo)
		if f.Drop > 0 && s.rng.Float64() < f.Drop {
			st.Drops++
			s.mu.Unlock()
			if s.cfg.Counters != nil {
				s.cfg.Counters.IncNetFaultDrop()
			}
			return nil
		}
		lat += f.Extra
		if f.Duplicate > 0 && s.rng.Float64() < f.Duplicate {
			dup = true
			st.Dups++
		}
		if f.Reorder > 0 && s.rng.Float64() < f.Reorder {
			reorder = true
			st.Reorders++
			delay := f.Delay
			if delay <= 0 {
				delay = time.Millisecond + 4*s.cfg.Latency
			}
			lat += delay
		}
	}
	epoch := s.epoch[msg.To]
	s.mu.Unlock()

	if s.cfg.Counters != nil {
		s.cfg.Counters.IncMessages(int64(len(msg.Payload)))
		s.cfg.Counters.AddWireBytes(msg.Kind, int64(len(msg.Payload)))
		if dup {
			s.cfg.Counters.IncNetFaultDup()
		}
		if reorder {
			s.cfg.Counters.IncNetFaultReorder()
		}
	}
	s.dispatch(msg, epoch, lat)
	if dup {
		s.dispatch(msg, epoch, lat)
	}
	return nil
}

// sendBatch routes a same-destination batch as one delivery hop. Faults
// are still rolled per message — a batched frame must not weaken chaos
// coverage — with the fates: dropped messages leave the batch (counted),
// duplicated messages ride the same batch twice, reordered messages are
// pulled out and dispatched individually with their hold-back delay so
// later batches overtake them. The survivors share one latency wait and
// one mailbox pass at the destination.
func (s *Sim) sendBatch(from, to string, msgs []Outgoing) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrNetworkClosed
	}
	hostFrom, hostTo := hostOf(from), hostOf(to)
	if s.blocked[hostFrom][hostTo] || s.down[hostTo] || s.down[hostFrom] {
		s.mu.Unlock()
		if s.cfg.Counters != nil {
			for range msgs {
				s.cfg.Counters.IncNetUnreachableDrop()
			}
		}
		return nil
	}
	if _, ok := s.eps[to]; !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownNode, to)
	}
	lat := s.cfg.Latency
	var batch, held []Message
	var heldLat []time.Duration
	var drops, dups, reorders int
	var sentBytes []int64 // payload size per surviving original, for counters
	var sentKinds []string
	if f := s.faults[hostFrom][hostTo]; f.Active() {
		st := s.statsFor(hostFrom, hostTo)
		lat += f.Extra
		for _, m := range msgs {
			msg := Message{From: from, To: to, Kind: m.Kind, Payload: m.Payload}
			if f.Drop > 0 && s.rng.Float64() < f.Drop {
				st.Drops++
				drops++
				continue
			}
			sentBytes = append(sentBytes, int64(len(m.Payload)))
			sentKinds = append(sentKinds, m.Kind)
			dup := f.Duplicate > 0 && s.rng.Float64() < f.Duplicate
			if dup {
				st.Dups++
				dups++
			}
			if f.Reorder > 0 && s.rng.Float64() < f.Reorder {
				st.Reorders++
				reorders++
				delay := f.Delay
				if delay <= 0 {
					delay = time.Millisecond + 4*s.cfg.Latency
				}
				for i := 0; i < 1+btoi(dup); i++ {
					held = append(held, msg)
					heldLat = append(heldLat, lat+delay)
				}
				continue
			}
			batch = append(batch, msg)
			if dup {
				batch = append(batch, msg)
			}
		}
	} else {
		batch = make([]Message, len(msgs))
		sentBytes = make([]int64, len(msgs))
		sentKinds = make([]string, len(msgs))
		for i, m := range msgs {
			batch[i] = Message{From: from, To: to, Kind: m.Kind, Payload: m.Payload}
			sentBytes[i] = int64(len(m.Payload))
			sentKinds[i] = m.Kind
		}
	}
	epoch := s.epoch[to]
	s.mu.Unlock()

	if c := s.cfg.Counters; c != nil {
		for i, n := range sentBytes {
			c.IncMessages(n)
			c.AddWireBytes(sentKinds[i], n)
		}
		for i := 0; i < drops; i++ {
			c.IncNetFaultDrop()
		}
		for i := 0; i < dups; i++ {
			c.IncNetFaultDup()
		}
		for i := 0; i < reorders; i++ {
			c.IncNetFaultReorder()
		}
		c.ObserveNetBatch(len(batch))
	}
	if len(batch) > 0 {
		s.dispatchBatch(batch, epoch, lat)
	}
	for i, msg := range held {
		s.dispatch(msg, epoch, heldLat[i])
	}
	return nil
}

func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}

// dispatch delivers a message after lat on the configured clock. The
// default wall clock keeps a cancelable timer so a Close with deliveries
// in flight releases them immediately; a custom Clock's waiter is simply
// abandoned (a VirtualClock fires and frees it on the next Advance past
// its deadline).
func (s *Sim) dispatch(msg Message, epoch int, lat time.Duration) {
	if lat <= 0 {
		s.deliver(msg, epoch)
		return
	}
	s.wg.Add(1)
	var due <-chan time.Time
	var cancel func() bool
	if s.cfg.Clock == nil {
		timer := time.NewTimer(lat)
		due, cancel = timer.C, timer.Stop
	} else {
		due = s.clock.After(lat)
	}
	go func() {
		defer s.wg.Done()
		if cancel != nil {
			defer cancel()
		}
		select {
		case <-due:
			s.deliver(msg, epoch)
		case <-s.stop:
		}
	}()
}

// dispatchBatch is dispatch for a whole batch: one timer wait, one
// delivery pass. All messages of a batch share From/To.
func (s *Sim) dispatchBatch(batch []Message, epoch int, lat time.Duration) {
	if lat <= 0 {
		s.deliverBatch(batch, epoch)
		return
	}
	s.wg.Add(1)
	var due <-chan time.Time
	var cancel func() bool
	if s.cfg.Clock == nil {
		timer := time.NewTimer(lat)
		due, cancel = timer.C, timer.Stop
	} else {
		due = s.clock.After(lat)
	}
	go func() {
		defer s.wg.Done()
		if cancel != nil {
			defer cancel()
		}
		select {
		case <-due:
			s.deliverBatch(batch, epoch)
		case <-s.stop:
		}
	}()
}

// deliverBatch places a whole batch in the destination mailbox as one
// hop, with the same delivery-time re-checks as deliver.
func (s *Sim) deliverBatch(batch []Message, epoch int) {
	from, to := batch[0].From, batch[0].To
	s.mu.Lock()
	ep, ok := s.eps[to]
	if s.closed || !ok || s.down[hostOf(to)] || s.epoch[to] != epoch || s.blocked[hostOf(from)][hostOf(to)] {
		closed := s.closed
		s.mu.Unlock()
		if !closed && s.cfg.Counters != nil {
			for range batch {
				s.cfg.Counters.IncNetUnreachableDrop()
			}
		}
		return
	}
	s.mu.Unlock()
	ep.mb.enqueueAll(batch)
}

// deliver places a message in the destination mailbox, re-checking faults
// at delivery time: messages in flight when the destination crashed are
// lost even if a new incarnation is already up (epoch mismatch).
func (s *Sim) deliver(msg Message, epoch int) {
	s.mu.Lock()
	ep, ok := s.eps[msg.To]
	if s.closed || !ok || s.down[hostOf(msg.To)] || s.epoch[msg.To] != epoch || s.blocked[hostOf(msg.From)][hostOf(msg.To)] {
		closed := s.closed
		s.mu.Unlock()
		if !closed && s.cfg.Counters != nil {
			s.cfg.Counters.IncNetUnreachableDrop()
		}
		return
	}
	s.mu.Unlock()
	ep.enqueue(msg)
}

// simEndpoint is one node's attachment to the simulated network. Its
// unbounded mailbox ensures senders in the protocol never block on a slow
// receiver — otherwise an injected crash of the receiver could wedge the
// sender's step transaction forever.
type simEndpoint struct {
	name string
	sim  *Sim
	mb   *mailbox
}

var (
	_ Endpoint    = (*simEndpoint)(nil)
	_ BatchSender = (*simEndpoint)(nil)
)

func newSimEndpoint(name string, sim *Sim) *simEndpoint {
	var onDrop func()
	if c := sim.cfg.Counters; c != nil {
		onDrop = c.IncMailboxDrop
	}
	return &simEndpoint{name: name, sim: sim, mb: newBoundedMailbox(sim.cfg.MailboxCap, onDrop)}
}

func (e *simEndpoint) Name() string { return e.name }

func (e *simEndpoint) Send(to, kind string, payload []byte) error {
	return e.sim.send(Message{From: e.name, To: to, Kind: kind, Payload: payload})
}

// SendBatch implements BatchSender: the batch shares one latency wait and
// one mailbox pass, with faults still rolled per message.
func (e *simEndpoint) SendBatch(to string, msgs []Outgoing) error {
	if len(msgs) == 0 {
		return nil
	}
	return e.sim.sendBatch(e.name, to, msgs)
}

func (e *simEndpoint) Recv() <-chan Message { return e.mb.Recv() }

func (e *simEndpoint) enqueue(msg Message) { e.mb.enqueue(msg) }

func (e *simEndpoint) close() { e.mb.close() }
