package network

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/wire"
)

// TCPConfig configures a TCP endpoint for real multi-process deployments
// (cmd/agentnode). Every process knows its peers by name → address; the
// protocol's retries and presumed abort handle lost connections exactly
// like lost messages in the simulator.
type TCPConfig struct {
	// Name is this node's protocol name.
	Name string
	// Listen is the address to accept peer connections on, e.g.
	// ":7001". Empty disables listening (a pure client such as
	// agentctl).
	Listen string
	// Peers maps node names to "host:port" addresses.
	Peers map[string]string
	// DialTimeout bounds connection attempts (default 2s).
	DialTimeout time.Duration
	// Counters receives message/byte accounting; may be nil.
	Counters *metrics.Counters
	// LegacyGob sends outbound messages as a persistent gob stream — the
	// pre-binary wire format — instead of binary frames. Inbound always
	// auto-detects per connection, so a LegacyGob endpoint and a binary
	// endpoint interoperate in both directions; the flag exists for
	// rolling upgrades and the mixed-version tests.
	LegacyGob bool
	// FlushBytes forces a flush once this many bytes are pending on one
	// peer connection (default 64 KiB).
	FlushBytes int
	// FlushLinger is how long a non-full pending buffer may wait for
	// more messages before it is written out (default 50µs — long enough
	// to coalesce a burst of protocol sends into one write, short enough
	// to be invisible next to network latency). Negative disables the
	// wait: the flusher writes as soon as it runs, still coalescing
	// whatever accumulated while the previous write was in flight.
	FlushLinger time.Duration
	// Clock drives the linger timer; nil uses the wall clock. With a
	// VirtualClock, lingers only elapse on Advance, keeping simulated
	// runs deterministic.
	Clock Clock
}

// TCPEndpoint implements Endpoint over TCP with per-link write
// coalescing: each outbound connection owns a pending buffer and a
// flusher goroutine. Senders only append encoded frames to the buffer —
// cheap, under a short mutex — while the flusher performs the slow
// conn.Write, so a stalled peer never blocks a sender and many frames
// ride one syscall. Outbound connections are cached per destination and
// re-dialed on error; a failed send is dropped silently (the caller's
// protocol retries), matching the simulator's crashed-destination
// semantics.
//
// The outbound format is binary frames (frame.go) by default, or one
// persistent gob stream per connection with LegacyGob — in gob mode the
// encode session writes into the same pending buffer, so coalescing and
// the no-write-under-encode-lock property hold for both formats.
type TCPEndpoint struct {
	cfg      TCPConfig
	clock    Clock
	listener net.Listener
	mb       *mailbox

	mu      sync.Mutex
	conns   map[string]*peerConn
	inbound map[net.Conn]struct{}
	closed  bool

	wg sync.WaitGroup
}

var (
	_ Endpoint    = (*TCPEndpoint)(nil)
	_ BatchSender = (*TCPEndpoint)(nil)
)

// NewTCP creates a TCP endpoint and, if configured, starts accepting peer
// connections.
func NewTCP(cfg TCPConfig) (*TCPEndpoint, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("network: tcp endpoint needs a name")
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.FlushBytes <= 0 {
		cfg.FlushBytes = 64 << 10
	}
	if cfg.FlushLinger == 0 {
		cfg.FlushLinger = 50 * time.Microsecond
	}
	ep := &TCPEndpoint{
		cfg:     cfg,
		clock:   cfg.Clock,
		mb:      newMailbox(),
		conns:   make(map[string]*peerConn),
		inbound: make(map[net.Conn]struct{}),
	}
	if ep.clock == nil {
		ep.clock = WallClock()
	}
	if cfg.Listen != "" {
		l, err := net.Listen("tcp", cfg.Listen)
		if err != nil {
			return nil, fmt.Errorf("network: listen %s: %w", cfg.Listen, err)
		}
		ep.listener = l
		ep.wg.Add(1)
		go func() {
			defer ep.wg.Done()
			ep.accept()
		}()
	}
	return ep, nil
}

// Name implements Endpoint.
func (e *TCPEndpoint) Name() string { return e.cfg.Name }

// Recv implements Endpoint.
func (e *TCPEndpoint) Recv() <-chan Message { return e.mb.Recv() }

// Addr returns the actual listen address (useful with ":0" in tests).
func (e *TCPEndpoint) Addr() string {
	if e.listener == nil {
		return ""
	}
	return e.listener.Addr().String()
}

// Send implements Endpoint. Transient failures (peer down, broken
// connection) drop the message silently after one reconnect attempt; an
// unknown peer name is a permanent error.
func (e *TCPEndpoint) Send(to, kind string, payload []byte) error {
	addr, ok := e.cfg.Peers[to]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownNode, to)
	}
	if len(payload) > wire.MaxMessageSize {
		// Rejected locally before any bytes hit a stream, like the gob
		// session's size check: the connection stays usable.
		return nil
	}
	msg := Message{From: e.cfg.Name, To: to, Kind: kind, Payload: payload}
	if e.cfg.Counters != nil {
		e.cfg.Counters.IncMessages(int64(len(payload)))
		e.cfg.Counters.AddWireBytes(kind, int64(len(payload)))
	}
	if err := e.writeTo(to, addr, &msg); err != nil {
		// One reconnect attempt: the cached connection may be stale.
		if err := e.writeTo(to, addr, &msg); err != nil {
			return nil // dropped, like a message to a crashed node
		}
	}
	return nil
}

// SendBatch implements BatchSender: all frames of the batch are staged
// under one buffer lock and one flusher wake-up, so they ride the same
// write unless the flusher is already mid-flush.
func (e *TCPEndpoint) SendBatch(to string, msgs []Outgoing) error {
	addr, ok := e.cfg.Peers[to]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownNode, to)
	}
	kept := msgs[:0:0]
	for _, m := range msgs {
		if len(m.Payload) > wire.MaxMessageSize {
			continue // rejected locally, connection unaffected
		}
		kept = append(kept, m)
		if e.cfg.Counters != nil {
			e.cfg.Counters.IncMessages(int64(len(m.Payload)))
			e.cfg.Counters.AddWireBytes(m.Kind, int64(len(m.Payload)))
		}
	}
	if len(kept) == 0 {
		return nil
	}
	if err := e.batchTo(to, addr, kept); err != nil {
		if err := e.batchTo(to, addr, kept); err != nil {
			return nil // dropped, like messages to a crashed node
		}
	}
	return nil
}

func (e *TCPEndpoint) writeTo(to, addr string, msg *Message) error {
	pc, err := e.conn(to, addr)
	if err != nil {
		return err
	}
	if e.cfg.LegacyGob {
		if err := pc.enc.Encode(msg); err != nil {
			// The stream is undefined after an encode error (the session
			// state diverged from the receiver); a fresh dial restarts it.
			e.dropConn(to, pc)
			return err
		}
		return nil
	}
	return pc.enqueue(func(buf []byte) []byte { return appendFrame(buf, msg) }, 1)
}

func (e *TCPEndpoint) batchTo(to, addr string, msgs []Outgoing) error {
	pc, err := e.conn(to, addr)
	if err != nil {
		return err
	}
	if e.cfg.LegacyGob {
		for _, m := range msgs {
			msg := Message{From: e.cfg.Name, To: to, Kind: m.Kind, Payload: m.Payload}
			if err := pc.enc.Encode(&msg); err != nil {
				e.dropConn(to, pc)
				return err
			}
		}
		return nil
	}
	return pc.enqueue(func(buf []byte) []byte {
		for _, m := range msgs {
			msg := Message{From: e.cfg.Name, To: to, Kind: m.Kind, Payload: m.Payload}
			buf = appendFrame(buf, &msg)
		}
		return buf
	}, len(msgs))
}

func (e *TCPEndpoint) conn(to, addr string) (*peerConn, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrNetworkClosed
	}
	if pc, ok := e.conns[to]; ok {
		e.mu.Unlock()
		return pc, nil
	}
	e.mu.Unlock()

	c, err := net.DialTimeout("tcp", addr, e.cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		_ = c.Close()
		return nil, ErrNetworkClosed
	}
	if old, ok := e.conns[to]; ok {
		// Lost a race with a concurrent dial; keep the existing one.
		e.mu.Unlock()
		_ = c.Close()
		return old, nil
	}
	pc := newPeerConn(e, to, c)
	e.conns[to] = pc
	e.wg.Add(1)
	e.mu.Unlock()
	go func() {
		defer e.wg.Done()
		pc.flusher()
	}()
	return pc, nil
}

func (e *TCPEndpoint) dropConn(to string, pc *peerConn) {
	e.mu.Lock()
	if e.conns[to] == pc {
		delete(e.conns, to)
	}
	e.mu.Unlock()
	pc.shutdown(false)
}

// accept serves inbound peer connections.
func (e *TCPEndpoint) accept() {
	for {
		conn, err := e.listener.Accept()
		if err != nil {
			return // listener closed
		}
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			_ = conn.Close()
			return
		}
		e.inbound[conn] = struct{}{}
		e.mu.Unlock()
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			defer func() {
				e.mu.Lock()
				delete(e.inbound, conn)
				e.mu.Unlock()
				_ = conn.Close()
			}()
			e.serve(conn)
		}()
	}
}

// serve decodes one inbound connection into the mailbox. The first byte
// classifies the stream — binary frames lead with wire.FrameMagic, which
// can never start a gob stream — so a binary-codec node keeps accepting
// connections from legacy gob peers (the whole fallback story; see
// DESIGN.md "Wire format"). A decode error in either format poisons the
// stream (there is no per-message resynchronization), so the connection
// is dropped and the peer re-dials — the protocol's retries cover the
// gap.
func (e *TCPEndpoint) serve(conn net.Conn) {
	br := bufio.NewReader(conn)
	first, err := br.Peek(1)
	if err != nil {
		return
	}
	if first[0] == wire.FrameMagic {
		for {
			msg, err := readFrame(br)
			if err != nil {
				return
			}
			if msg.To != e.cfg.Name {
				continue // misrouted
			}
			e.mb.enqueue(msg)
		}
	}
	dec := wire.NewStreamDecoder(br)
	for {
		var msg Message
		if err := dec.Decode(&msg); err != nil {
			return
		}
		if msg.To != e.cfg.Name {
			continue // misrouted
		}
		e.mb.enqueue(msg)
	}
}

// Close shuts the endpoint down: the listener stops, pending outbound
// buffers get a final flush, connections close and the Recv channel is
// closed.
func (e *TCPEndpoint) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	outs := make([]*peerConn, 0, len(e.conns))
	for _, pc := range e.conns {
		outs = append(outs, pc)
	}
	ins := make([]net.Conn, 0, len(e.inbound))
	for c := range e.inbound {
		ins = append(ins, c)
	}
	e.conns = make(map[string]*peerConn)
	e.mu.Unlock()

	if e.listener != nil {
		_ = e.listener.Close()
	}
	for _, pc := range outs {
		// Graceful: the flusher drains the pending buffer, then closes
		// the connection itself — never close the conn under its feet.
		pc.shutdown(true)
	}
	for _, c := range ins {
		_ = c.Close()
	}
	e.wg.Wait()
	e.mb.close()
}

// maxPendingRetain caps the capacity a drained pending buffer keeps for
// reuse, so one burst does not pin memory for the connection's lifetime.
const maxPendingRetain = 1 << 20

// peerConn is one cached outbound connection: a pending write buffer
// senders append encoded frames to, and a flusher goroutine that owns
// the actual conn.Write. In LegacyGob mode the persistent encode session
// stages each message and appends it to the same pending buffer via
// pendingWriter, so the encode mutex is never held across a socket
// write in either mode.
type peerConn struct {
	ep *TCPEndpoint
	to string
	c  net.Conn

	enc *wire.StreamEncoder // LegacyGob only

	mu      sync.Mutex
	pending []byte
	frames  int
	broken  bool
	drain   bool // graceful shutdown: flush what is pending, then close

	kick chan struct{} // cap 1: pending became non-empty
	full chan struct{} // cap 1: pending passed FlushBytes, skip the linger
	done chan struct{}
	once sync.Once

	spare []byte // recycled buffer, owned by the flusher
}

func newPeerConn(e *TCPEndpoint, to string, c net.Conn) *peerConn {
	pc := &peerConn{
		ep:   e,
		to:   to,
		c:    c,
		kick: make(chan struct{}, 1),
		full: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	if e.cfg.LegacyGob {
		pc.enc = wire.NewStreamEncoder(pendingWriter{pc})
	}
	return pc
}

// enqueue stages frames frames built by build into the pending buffer
// and wakes the flusher. It fails only on a broken connection, which the
// caller treats like a dead peer (re-dial once, then drop).
func (pc *peerConn) enqueue(build func([]byte) []byte, frames int) error {
	pc.mu.Lock()
	if pc.broken || pc.drain {
		pc.mu.Unlock()
		return net.ErrClosed
	}
	pc.pending = build(pc.pending)
	pc.frames += frames
	n := len(pc.pending)
	pc.mu.Unlock()
	pc.signal(n)
	return nil
}

// pendingWriter routes a gob session's staged messages into the pending
// buffer. The StreamEncoder calls Write exactly once per message.
type pendingWriter struct{ pc *peerConn }

func (w pendingWriter) Write(p []byte) (int, error) {
	if err := w.pc.enqueue(func(buf []byte) []byte { return append(buf, p...) }, 1); err != nil {
		return 0, err
	}
	return len(p), nil
}

func (pc *peerConn) signal(pendingBytes int) {
	ch := pc.kick
	if pendingBytes >= pc.ep.cfg.FlushBytes {
		ch = pc.full
	}
	select {
	case ch <- struct{}{}:
	default:
	}
}

// shutdown retires the connection. graceful lets the flusher drain the
// pending buffer first (endpoint Close); otherwise pending frames are
// dropped like in-flight messages to a crashed node (write error path).
func (pc *peerConn) shutdown(graceful bool) {
	pc.mu.Lock()
	if graceful {
		pc.drain = true
	} else {
		pc.broken = true
		pc.pending = nil
		pc.frames = 0
	}
	pc.mu.Unlock()
	pc.once.Do(func() { close(pc.done) })
	if !graceful {
		_ = pc.c.Close()
	}
}

// flusher owns conn.Write for this connection. After a wake-up it
// lingers briefly (FlushLinger on the endpoint clock) so a burst of
// sends coalesces into one write, unless the buffer already passed
// FlushBytes.
func (pc *peerConn) flusher() {
	linger := pc.ep.cfg.FlushLinger
	for {
		select {
		case <-pc.done:
			pc.flush()
			pc.mu.Lock()
			pc.broken = true
			pc.mu.Unlock()
			_ = pc.c.Close()
			return
		case <-pc.full:
		case <-pc.kick:
			if linger > 0 {
				t, cancel := ClockTimer(pc.ep.clock, linger)
				select {
				case <-t:
				case <-pc.full:
				case <-pc.done:
				}
				cancel()
			}
		}
		if !pc.flush() {
			return
		}
	}
}

// flush writes the pending buffer until it is empty. It returns false
// once the connection is broken (including a failed write, which drops
// the connection for everyone).
func (pc *peerConn) flush() bool {
	for {
		pc.mu.Lock()
		if pc.broken {
			pc.mu.Unlock()
			return false
		}
		if len(pc.pending) == 0 {
			pc.mu.Unlock()
			return true
		}
		buf, frames := pc.pending, pc.frames
		pc.pending = pc.spare
		pc.spare = nil
		pc.frames = 0
		pc.mu.Unlock()

		_, err := pc.c.Write(buf)
		if err != nil {
			pc.ep.dropConn(pc.to, pc)
			return false
		}
		if c := pc.ep.cfg.Counters; c != nil {
			c.ObserveNetBatch(frames)
		}
		if cap(buf) <= maxPendingRetain {
			pc.spare = buf[:0] // spare is only ever touched by this goroutine
		}
	}
}
