package network

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/wire"
)

// TCPConfig configures a TCP endpoint for real multi-process deployments
// (cmd/agentnode). Every process knows its peers by name → address; the
// protocol's retries and presumed abort handle lost connections exactly
// like lost messages in the simulator.
type TCPConfig struct {
	// Name is this node's protocol name.
	Name string
	// Listen is the address to accept peer connections on, e.g.
	// ":7001". Empty disables listening (a pure client such as
	// agentctl).
	Listen string
	// Peers maps node names to "host:port" addresses.
	Peers map[string]string
	// DialTimeout bounds connection attempts (default 2s).
	DialTimeout time.Duration
	// Counters receives message/byte accounting; may be nil.
	Counters *metrics.Counters
}

// TCPEndpoint implements Endpoint over TCP with persistent per-connection
// gob streams: each outbound connection carries one encode session, so gob
// type descriptors cross the wire once per connection instead of once per
// message, and each message costs only its value bytes. Outbound
// connections are cached per destination and re-dialed on error; a failed
// send is dropped silently (the caller's protocol retries), matching the
// simulator's crashed-destination semantics.
type TCPEndpoint struct {
	cfg      TCPConfig
	listener net.Listener
	mb       *mailbox

	mu      sync.Mutex
	conns   map[string]*peerConn
	inbound map[net.Conn]struct{}
	closed  bool

	wg sync.WaitGroup
}

// peerConn is one cached outbound connection with its encode session. The
// session's internal lock serializes concurrent senders, so messages never
// interleave on the stream.
type peerConn struct {
	c   net.Conn
	enc *wire.StreamEncoder
}

var _ Endpoint = (*TCPEndpoint)(nil)

// NewTCP creates a TCP endpoint and, if configured, starts accepting peer
// connections.
func NewTCP(cfg TCPConfig) (*TCPEndpoint, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("network: tcp endpoint needs a name")
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	ep := &TCPEndpoint{
		cfg:     cfg,
		mb:      newMailbox(),
		conns:   make(map[string]*peerConn),
		inbound: make(map[net.Conn]struct{}),
	}
	if cfg.Listen != "" {
		l, err := net.Listen("tcp", cfg.Listen)
		if err != nil {
			return nil, fmt.Errorf("network: listen %s: %w", cfg.Listen, err)
		}
		ep.listener = l
		ep.wg.Add(1)
		go func() {
			defer ep.wg.Done()
			ep.accept()
		}()
	}
	return ep, nil
}

// Name implements Endpoint.
func (e *TCPEndpoint) Name() string { return e.cfg.Name }

// Recv implements Endpoint.
func (e *TCPEndpoint) Recv() <-chan Message { return e.mb.Recv() }

// Addr returns the actual listen address (useful with ":0" in tests).
func (e *TCPEndpoint) Addr() string {
	if e.listener == nil {
		return ""
	}
	return e.listener.Addr().String()
}

// Send implements Endpoint. Transient failures (peer down, broken
// connection) drop the message silently after one reconnect attempt; an
// unknown peer name is a permanent error.
func (e *TCPEndpoint) Send(to, kind string, payload []byte) error {
	addr, ok := e.cfg.Peers[to]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownNode, to)
	}
	msg := Message{From: e.cfg.Name, To: to, Kind: kind, Payload: payload}
	if e.cfg.Counters != nil {
		e.cfg.Counters.IncMessages(int64(len(payload)))
	}
	if err := e.writeTo(to, addr, &msg); err != nil {
		// One reconnect attempt: the cached connection may be stale.
		if err := e.writeTo(to, addr, &msg); err != nil {
			return nil // dropped, like a message to a crashed node
		}
	}
	return nil
}

func (e *TCPEndpoint) writeTo(to, addr string, msg *Message) error {
	pc, err := e.conn(to, addr)
	if err != nil {
		return err
	}
	if err := pc.enc.Encode(msg); err != nil {
		// The stream is undefined after an encode error (a partial
		// message may be on the wire); a fresh dial restarts it.
		e.dropConn(to, pc)
		return err
	}
	return nil
}

func (e *TCPEndpoint) conn(to, addr string) (*peerConn, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrNetworkClosed
	}
	if pc, ok := e.conns[to]; ok {
		e.mu.Unlock()
		return pc, nil
	}
	e.mu.Unlock()

	c, err := net.DialTimeout("tcp", addr, e.cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		_ = c.Close()
		return nil, ErrNetworkClosed
	}
	if old, ok := e.conns[to]; ok {
		// Lost a race with a concurrent dial; keep the existing one.
		_ = c.Close()
		return old, nil
	}
	pc := &peerConn{c: c, enc: wire.NewStreamEncoder(c)}
	e.conns[to] = pc
	return pc, nil
}

func (e *TCPEndpoint) dropConn(to string, pc *peerConn) {
	e.mu.Lock()
	if e.conns[to] == pc {
		delete(e.conns, to)
	}
	e.mu.Unlock()
	_ = pc.c.Close()
}

// accept serves inbound peer connections.
func (e *TCPEndpoint) accept() {
	for {
		conn, err := e.listener.Accept()
		if err != nil {
			return // listener closed
		}
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			_ = conn.Close()
			return
		}
		e.inbound[conn] = struct{}{}
		e.mu.Unlock()
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			defer func() {
				e.mu.Lock()
				delete(e.inbound, conn)
				e.mu.Unlock()
				_ = conn.Close()
			}()
			e.serve(conn)
		}()
	}
}

// serve decodes one inbound connection's persistent gob stream into the
// mailbox. A decode error poisons the whole stream (unlike the old framed
// protocol there is no per-message resynchronization), so the connection
// is dropped and the peer re-dials — the protocol's retries cover the gap.
func (e *TCPEndpoint) serve(conn net.Conn) {
	dec := wire.NewStreamDecoder(conn)
	for {
		var msg Message
		if err := dec.Decode(&msg); err != nil {
			return
		}
		if msg.To != e.cfg.Name {
			continue // misrouted
		}
		e.mb.enqueue(msg)
	}
}

// Close shuts the endpoint down: the listener stops, cached connections
// close and the Recv channel is closed.
func (e *TCPEndpoint) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	conns := make([]net.Conn, 0, len(e.conns)+len(e.inbound))
	for _, pc := range e.conns {
		conns = append(conns, pc.c)
	}
	for c := range e.inbound {
		conns = append(conns, c)
	}
	e.conns = make(map[string]*peerConn)
	e.mu.Unlock()

	if e.listener != nil {
		_ = e.listener.Close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
	e.wg.Wait()
	e.mb.close()
}
